// Tests for the controller model checker and the test-suite generator, and
// the strongest synthesis property we have: verify() proves exhaustively
// that synthesized controllers implement their specifications.
#include <gtest/gtest.h>

#include "ltl/parser.hpp"
#include "synth/bounded.hpp"
#include "synth/mealy_export.hpp"
#include "synth/symbolic_engine.hpp"
#include "synth/verify.hpp"

namespace synth = speccc::synth;
namespace ltl = speccc::ltl;
using synth::IoSignature;
using synth::Word;

namespace {

/// A hand-written 2-state machine: emits out one step after in.
synth::MealyMachine delay_machine() {
  synth::MealyMachine m(IoSignature{{"in"}, {"out"}});
  const int s0 = m.add_state();
  const int s1 = m.add_state();
  m.set_transition(s0, 0, 0, s0);
  m.set_transition(s0, 1, 0, s1);
  m.set_transition(s1, 0, 1, s0);
  m.set_transition(s1, 1, 1, s1);
  return m;
}

TEST(Verify, DelayMachineSatisfiesItsContract) {
  const auto machine = delay_machine();
  const auto good = synth::verify(machine, ltl::parse("G (in -> X out)"));
  EXPECT_TRUE(good.holds);
  EXPECT_FALSE(good.counterexample.has_value());
}

TEST(Verify, ViolationYieldsConcreteCounterexample) {
  const auto machine = delay_machine();
  // The machine does NOT satisfy "out never fires".
  const auto bad = synth::verify(machine, ltl::parse("G !out"));
  ASSERT_FALSE(bad.holds);
  ASSERT_TRUE(bad.counterexample.has_value());
  // The counterexample trace must indeed violate the property.
  EXPECT_FALSE(ltl::evaluate(ltl::parse("G !out"), bad.counterexample->trace));
}

TEST(Verify, LivenessCounterexampleLoops) {
  const auto machine = delay_machine();
  // "eventually out" fails only on the all-zero input: the counterexample
  // must be a genuine infinite loop of silence.
  const auto result = synth::verify(machine, ltl::parse("F out"));
  ASSERT_FALSE(result.holds);
  const auto& cex = *result.counterexample;
  EXPECT_FALSE(ltl::evaluate(ltl::parse("F out"), cex.trace));
  EXPECT_LT(cex.loop_start, cex.inputs.size());
}

TEST(Verify, SynthesizedControllersAreCorrectByConstruction) {
  // Synthesize, then model-check the controller against every requirement:
  // exhaustive, not sampled.
  const std::vector<std::string> specs = {
      "G (req -> F grant)",
      "G (grant -> X !grant)",
      "G (cancel -> !grant)",
  };
  std::vector<ltl::Formula> formulas;
  for (const auto& s : specs) formulas.push_back(ltl::parse(s));
  // Drop the cancel conflict: synthesize first two only plus the cancel
  // safety (realizable because cancel only blocks the instantaneous grant).
  const IoSignature sig{{"req", "cancel"}, {"grant"}};
  synth::SymbolicOptions options;
  options.extract = true;
  const auto outcome = synth::symbolic_synthesize(
      {formulas[0], formulas[1]}, sig, options);
  ASSERT_TRUE(outcome.has_value());
  ASSERT_EQ(outcome->verdict, synth::Realizability::kRealizable);
  ASSERT_TRUE(outcome->controller.has_value());
  for (std::size_t i = 0; i < 2; ++i) {
    const auto check = synth::verify(*outcome->controller, formulas[i]);
    EXPECT_TRUE(check.holds) << specs[i];
  }
}

TEST(Verify, BoundedControllersAreCorrectByConstruction) {
  const ltl::Formula spec = ltl::parse("G (in -> X X out) && G (!in -> F !out)");
  const auto outcome = synth::bounded_synthesize(spec, {{"in"}, {"out"}});
  ASSERT_EQ(outcome.verdict, synth::Realizability::kRealizable);
  ASSERT_TRUE(outcome.controller.has_value());
  const auto check = synth::verify(*outcome.controller, spec);
  EXPECT_TRUE(check.holds);
}

// ---- Test-suite generation ----------------------------------------------------

TEST(TransitionTour, CoversEveryTransition) {
  const auto machine = delay_machine();
  const auto suite = synth::transition_tour(machine);
  // 2 states x 2 inputs = 4 transitions, each covered by some case.
  std::set<std::pair<int, Word>> covered;
  for (const auto& test : suite) {
    int state = machine.initial();
    for (Word in : test.inputs) {
      covered.insert({state, in});
      state = machine.next(state, in);
    }
  }
  EXPECT_EQ(covered.size(), 4u);
}

TEST(TransitionTour, ExpectedOutputsMatchTheMachine) {
  const auto machine = delay_machine();
  for (const auto& test : synth::transition_tour(machine)) {
    int state = machine.initial();
    const bool ok = synth::replay(test, [&](Word in) {
      const Word out = machine.output(state, in);
      state = machine.next(state, in);
      return out;
    });
    EXPECT_TRUE(ok);
  }
}

TEST(TransitionTour, CatchesFaultyImplementations) {
  const auto machine = delay_machine();
  const auto suite = synth::transition_tour(machine);
  // A buggy implementation that never raises out: some test must fail.
  bool some_failed = false;
  for (const auto& test : suite) {
    if (!synth::replay(test, [](Word) { return Word{0}; })) some_failed = true;
  }
  EXPECT_TRUE(some_failed);
}

// ---- Export -------------------------------------------------------------------

TEST(Export, DotContainsAllTransitions) {
  const auto machine = delay_machine();
  const std::string dot = synth::to_dot(machine, "delay");
  EXPECT_NE(dot.find("digraph delay"), std::string::npos);
  EXPECT_NE(dot.find("s0 -> s1"), std::string::npos);
  EXPECT_NE(dot.find("in / -"), std::string::npos);   // input without output
  EXPECT_NE(dot.find("- / out"), std::string::npos);  // output without input
}

TEST(Export, CsvRoundTripsTransitionCount) {
  const auto machine = delay_machine();
  const std::string csv = synth::to_csv(machine);
  // Header + 4 transitions.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
}

}  // namespace
