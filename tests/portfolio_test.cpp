// Substrate portfolio racing: SubstrateSpec parsing, the builtin registry,
// and the PortfolioRunner's first-verdict-wins semantics -- above all the
// race determinism contract, proved the strong way: racing on vs racing
// off must produce byte-identical canonical batch output over the paper's
// Table I corpus for every jobs count and cache mode.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "batch/batch.hpp"
#include "batch/corpus_tasks.hpp"
#include "cache/store.hpp"
#include "core/portfolio.hpp"
#include "core/substrate.hpp"
#include "difftest/harness.hpp"
#include "ltl/parser.hpp"
#include "util/diagnostics.hpp"

namespace batch = speccc::batch;
namespace core = speccc::core;
namespace ltl = speccc::ltl;
namespace synth = speccc::synth;
namespace util = speccc::util;

using core::SubstrateSpec;
using synth::Realizability;

namespace {

// ---------------------------------------------------------------------------
// SubstrateSpec parsing

TEST(SubstrateSpec, ParsesAutoSoloAndRace) {
  EXPECT_TRUE(SubstrateSpec::parse("auto").is_auto());
  const SubstrateSpec solo = SubstrateSpec::parse("bounded");
  EXPECT_EQ(solo.mode, SubstrateSpec::Mode::kSolo);
  ASSERT_EQ(solo.substrates.size(), 1u);
  EXPECT_EQ(solo.substrates.front(), "bounded");
  const SubstrateSpec race = SubstrateSpec::parse("race:tableau,symbolic");
  EXPECT_EQ(race.mode, SubstrateSpec::Mode::kRace);
  ASSERT_EQ(race.substrates.size(), 2u);
  EXPECT_EQ(race.substrates[0], "tableau");
  EXPECT_EQ(race.substrates[1], "symbolic");
}

TEST(SubstrateSpec, RoundTripsThroughToString) {
  for (const char* text :
       {"auto", "tableau", "bounded", "symbolic", "race:tableau,bounded",
        "race:tableau,bounded,symbolic", "race:symbolic,bounded"}) {
    const SubstrateSpec spec = SubstrateSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text);
    EXPECT_EQ(SubstrateSpec::parse(spec.to_string()), spec) << text;
  }
}

TEST(SubstrateSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)SubstrateSpec::parse(""), util::InvalidInputError);
  EXPECT_THROW((void)SubstrateSpec::parse("sat"), util::InvalidInputError);
  EXPECT_THROW((void)SubstrateSpec::parse("race:"), util::InvalidInputError);
  EXPECT_THROW((void)SubstrateSpec::parse("race:tableau"),
               util::InvalidInputError);
  EXPECT_THROW((void)SubstrateSpec::parse("race:tableau,"),
               util::InvalidInputError);
  EXPECT_THROW((void)SubstrateSpec::parse("race:tableau,tableau"),
               util::InvalidInputError);
  EXPECT_THROW((void)SubstrateSpec::parse("race:tableau,warp"),
               util::InvalidInputError);
}

TEST(SubstrateSpec, FromEngineShimMapsTheOldEnum) {
  EXPECT_TRUE(SubstrateSpec::from_engine(synth::Engine::kAuto).is_auto());
  EXPECT_EQ(SubstrateSpec::from_engine(synth::Engine::kSymbolic).to_string(),
            "symbolic");
  EXPECT_EQ(SubstrateSpec::from_engine(synth::Engine::kBounded).to_string(),
            "bounded");
}

// ---------------------------------------------------------------------------
// Registry and the builtin substrates

TEST(SubstrateRegistry, GlobalHoldsTheThreeBuiltins) {
  const core::SubstrateRegistry& registry = core::SubstrateRegistry::global();
  EXPECT_EQ(registry.names(), core::builtin_substrate_names());
  for (const std::string& name : core::builtin_substrate_names()) {
    const core::Substrate* substrate = registry.find(name);
    ASSERT_NE(substrate, nullptr) << name;
    EXPECT_EQ(substrate->name(), name);
  }
  EXPECT_EQ(registry.find("warp"), nullptr);
}

TEST(SubstrateRegistry, ResolvePreservesSpecOrderAndRejectsAuto) {
  const core::SubstrateRegistry& registry = core::SubstrateRegistry::global();
  const auto racers =
      registry.resolve(SubstrateSpec::parse("race:symbolic,tableau"));
  ASSERT_EQ(racers.size(), 2u);
  EXPECT_EQ(racers[0]->name(), "symbolic");
  EXPECT_EQ(racers[1]->name(), "tableau");
  EXPECT_THROW((void)registry.resolve(SubstrateSpec{}),
               util::InvalidInputError);
}

TEST(TableauSubstrate, UnsatIsUnrealizableSatAbstains) {
  const core::Substrate* tableau =
      core::SubstrateRegistry::global().find("tableau");
  ASSERT_NE(tableau, nullptr);
  const synth::IoSignature signature{{"p"}, {"q"}};
  const synth::SynthesisOptions options;
  // (G p) & (G !p) is unsatisfiable: unrealizable under ANY partition.
  const auto unsat = tableau->check(
      {ltl::parse("G p"), ltl::parse("G !p")}, signature, options, {});
  EXPECT_EQ(unsat.verdict, Realizability::kUnrealizable);
  EXPECT_EQ(unsat.substrate_used, "tableau");
  // A satisfiable conjunction proves nothing about realizability.
  const auto sat = tableau->check({ltl::parse("G (p -> F q)")}, signature,
                                  options, {});
  EXPECT_EQ(sat.verdict, Realizability::kUnknown);
}

// ---------------------------------------------------------------------------
// Test doubles for pinning race semantics without timing luck

/// Answers a fixed verdict immediately.
class InstantSubstrate final : public core::Substrate {
 public:
  InstantSubstrate(std::string name, Realizability verdict)
      : name_(std::move(name)), verdict_(verdict) {}

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] synth::SynthesisResult check(
      const std::vector<ltl::Formula>&, const synth::IoSignature&,
      const synth::SynthesisOptions&, const core::CancelFn&) const override {
    synth::SynthesisResult result;
    result.verdict = verdict_;
    return result;
  }

 private:
  std::string name_;
  Realizability verdict_;
};

/// Never answers on its own: polls the cancel predicate every millisecond
/// until it fires (then unwinds like a real cancelled engine), or a
/// generous deadline passes (then abstains, keeping the test hang-proof).
class SlowSubstrate final : public core::Substrate {
 public:
  explicit SlowSubstrate(std::atomic<bool>* observed_cancel)
      : observed_cancel_(observed_cancel) {}

  [[nodiscard]] std::string_view name() const override { return "slow"; }

  [[nodiscard]] synth::SynthesisResult check(
      const std::vector<ltl::Formula>&, const synth::IoSignature&,
      const synth::SynthesisOptions&,
      const core::CancelFn& cancelled) const override {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      if (cancelled && cancelled()) {
        if (observed_cancel_ != nullptr) observed_cancel_->store(true);
        throw util::CancelledError("slow substrate cancelled");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    synth::SynthesisResult result;
    result.verdict = Realizability::kUnknown;
    return result;
  }

 private:
  std::atomic<bool>* observed_cancel_;
};

/// Always throws, standing in for an inapplicable substrate.
class ErroringSubstrate final : public core::Substrate {
 public:
  ErroringSubstrate(std::string name, std::string message)
      : name_(std::move(name)), message_(std::move(message)) {}

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] synth::SynthesisResult check(
      const std::vector<ltl::Formula>&, const synth::IoSignature&,
      const synth::SynthesisOptions&, const core::CancelFn&) const override {
    throw util::InvalidInputError(message_);
  }

 private:
  std::string name_;
  std::string message_;
};

SubstrateSpec race_of(std::vector<std::string> names) {
  SubstrateSpec spec;
  spec.mode = SubstrateSpec::Mode::kRace;
  spec.substrates = std::move(names);
  return spec;
}

const std::vector<ltl::Formula>& dummy_formulas() {
  static const std::vector<ltl::Formula> formulas = {ltl::parse("G p")};
  return formulas;
}

const synth::IoSignature& dummy_signature() {
  static const synth::IoSignature signature{{"p"}, {"q"}};
  return signature;
}

// ---------------------------------------------------------------------------
// PortfolioRunner semantics

TEST(PortfolioRunner, WinnerVerdictUsedAndLoserCancelled) {
  std::atomic<bool> slow_saw_cancel{false};
  core::SubstrateRegistry registry;
  registry.add(std::make_unique<SlowSubstrate>(&slow_saw_cancel));
  registry.add(
      std::make_unique<InstantSubstrate>("instant", Realizability::kRealizable));

  // The slow racer is listed FIRST (it runs inline on the caller thread),
  // so the win must come from the threaded racer flipping the flag.
  const core::PortfolioRunner runner(registry, race_of({"slow", "instant"}));
  core::PortfolioStats stats;
  const synth::SynthesisResult result = runner.run(
      dummy_formulas(), dummy_signature(), synth::SynthesisOptions{}, {},
      &stats);

  EXPECT_EQ(result.verdict, Realizability::kRealizable);
  EXPECT_EQ(result.substrate_used, "instant");
  EXPECT_TRUE(slow_saw_cancel.load());
  EXPECT_EQ(stats.winner, "instant");
  ASSERT_EQ(stats.runs.size(), 2u);
  EXPECT_EQ(stats.runs[0].name, "slow");
  EXPECT_TRUE(stats.runs[0].cancelled);
  EXPECT_FALSE(stats.runs[0].won);
  EXPECT_EQ(stats.runs[1].name, "instant");
  EXPECT_TRUE(stats.runs[1].won);
  EXPECT_FALSE(stats.runs[1].cancelled);
}

TEST(PortfolioRunner, AllAbstainBreaksTiesInSpecOrder) {
  core::SubstrateRegistry registry;
  registry.add(
      std::make_unique<InstantSubstrate>("ab1", Realizability::kUnknown));
  registry.add(
      std::make_unique<InstantSubstrate>("ab2", Realizability::kUnknown));
  // Identical abstentions either way round: the first-listed racer's
  // result is the result, independent of which thread finished first.
  for (const auto& order : {race_of({"ab1", "ab2"}), race_of({"ab2", "ab1"})}) {
    const core::PortfolioRunner runner(registry, order);
    core::PortfolioStats stats;
    const synth::SynthesisResult result =
        runner.run(dummy_formulas(), dummy_signature(),
                   synth::SynthesisOptions{}, {}, &stats);
    EXPECT_EQ(result.verdict, Realizability::kUnknown);
    EXPECT_EQ(result.substrate_used, order.substrates.front());
    EXPECT_TRUE(stats.winner.empty());
  }
}

TEST(PortfolioRunner, AbstainersNeverOutrankADefiniteVerdict) {
  core::SubstrateRegistry registry;
  registry.add(
      std::make_unique<InstantSubstrate>("ab1", Realizability::kUnknown));
  registry.add(std::make_unique<InstantSubstrate>(
      "definite", Realizability::kUnrealizable));
  const core::PortfolioRunner runner(registry, race_of({"ab1", "definite"}));
  const synth::SynthesisResult result = runner.run(
      dummy_formulas(), dummy_signature(), synth::SynthesisOptions{}, {});
  EXPECT_EQ(result.verdict, Realizability::kUnrealizable);
  EXPECT_EQ(result.substrate_used, "definite");
}

TEST(PortfolioRunner, AllErroredRethrowsTheFirstListedError) {
  core::SubstrateRegistry registry;
  registry.add(std::make_unique<ErroringSubstrate>("e1", "first error"));
  registry.add(std::make_unique<ErroringSubstrate>("e2", "second error"));
  const core::PortfolioRunner runner(registry, race_of({"e1", "e2"}));
  core::PortfolioStats stats;
  try {
    (void)runner.run(dummy_formulas(), dummy_signature(),
                     synth::SynthesisOptions{}, {}, &stats);
    FAIL() << "expected the first racer's error to propagate";
  } catch (const util::InvalidInputError& e) {
    EXPECT_STREQ(e.what(), "first error");
  }
  ASSERT_EQ(stats.runs.size(), 2u);
  EXPECT_EQ(stats.runs[0].error, "first error");
  EXPECT_EQ(stats.runs[1].error, "second error");
}

TEST(PortfolioRunner, ErrorBesideAnAbstainerYieldsTheAbstention) {
  core::SubstrateRegistry registry;
  registry.add(std::make_unique<ErroringSubstrate>("e1", "inapplicable"));
  registry.add(
      std::make_unique<InstantSubstrate>("ab1", Realizability::kUnknown));
  const core::PortfolioRunner runner(registry, race_of({"e1", "ab1"}));
  const synth::SynthesisResult result = runner.run(
      dummy_formulas(), dummy_signature(), synth::SynthesisOptions{}, {});
  EXPECT_EQ(result.verdict, Realizability::kUnknown);
  EXPECT_EQ(result.substrate_used, "ab1");
}

TEST(PortfolioRunner, ExternalCancelWithoutAWinnerThrowsCancelled) {
  core::SubstrateRegistry registry;
  registry.add(std::make_unique<SlowSubstrate>(nullptr));
  registry.add(
      std::make_unique<InstantSubstrate>("ab1", Realizability::kUnknown));
  const core::PortfolioRunner runner(registry, race_of({"ab1", "slow"}));
  const core::CancelFn external = [] { return true; };
  EXPECT_THROW((void)runner.run(dummy_formulas(), dummy_signature(),
                                synth::SynthesisOptions{}, external),
               util::CancelledError);
}

TEST(PortfolioRunner, SoloSpecIsAOneLaneRace) {
  core::SubstrateRegistry registry;
  registry.add(
      std::make_unique<InstantSubstrate>("only", Realizability::kRealizable));
  SubstrateSpec spec;
  spec.mode = SubstrateSpec::Mode::kSolo;
  spec.substrates = {"only"};
  const core::PortfolioRunner runner(registry, spec);
  core::PortfolioStats stats;
  const synth::SynthesisResult result = runner.run(
      dummy_formulas(), dummy_signature(), synth::SynthesisOptions{}, {},
      &stats);
  EXPECT_EQ(result.verdict, Realizability::kRealizable);
  EXPECT_EQ(stats.winner, "only");
}

// ---------------------------------------------------------------------------
// The determinism contract: race on == race off, byte for byte

TEST(PortfolioDeterminism, RaceMatchesAutoOnTableOneForAllJobsAndCaches) {
  const std::vector<batch::SpecTask> tasks = batch::table1_tasks();
  ASSERT_EQ(tasks.size(), 22u);

  batch::BatchOptions baseline_options;
  baseline_options.jobs = 1;
  const std::string baseline =
      batch::canonical(batch::check(tasks, baseline_options));

  for (const int jobs : {1, 4, 8}) {
    for (const bool cache_on : {false, true}) {
      batch::BatchOptions options;
      options.jobs = jobs;
      options.pipeline.substrate =
          SubstrateSpec::parse("race:tableau,bounded,symbolic");
      if (cache_on) {
        options.pipeline.cache =
            std::make_shared<speccc::cache::Store>(speccc::cache::StoreOptions{});
      }
      const std::string raced = batch::canonical(batch::check(tasks, options));
      EXPECT_EQ(raced, baseline)
          << "race-on canonical output diverged at jobs=" << jobs
          << " cache=" << (cache_on ? "on" : "off");
    }
  }
}

TEST(PortfolioDeterminism, RaceMatchesAutoOnTheStandingSlowSeed) {
  // Seed 6 / spec case 21 is the standing slow spec of the fuzz corpus
  // (the bench_portfolio pin); racing must neither change its verdict nor
  // its canonical row.
  const auto spec = speccc::difftest::generated_spec(6, 21);
  const std::vector<batch::SpecTask> tasks = {{spec.name, spec.requirements}};

  batch::BatchOptions auto_options;
  auto_options.jobs = 1;
  const std::string baseline =
      batch::canonical(batch::check(tasks, auto_options));

  batch::BatchOptions race_options;
  race_options.jobs = 1;
  race_options.pipeline.substrate =
      SubstrateSpec::parse("race:tableau,bounded,symbolic");
  const batch::BatchReport report = batch::check(tasks, race_options);
  EXPECT_EQ(batch::canonical(report), baseline);
  ASSERT_EQ(report.results.size(), 1u);
  ASSERT_TRUE(report.results.front().portfolio.has_value());
  EXPECT_EQ(report.results.front().portfolio->runs.size(), 3u);
}

TEST(PortfolioDeterminism, RacedReportCarriesNonCanonicalStats) {
  const std::vector<batch::SpecTask> tasks = {batch::table1_tasks().front()};
  batch::BatchOptions options;
  options.jobs = 1;
  options.pipeline.substrate = SubstrateSpec::parse("race:bounded,symbolic");
  const batch::BatchReport report = batch::check(tasks, options);
  ASSERT_EQ(report.results.size(), 1u);
  const batch::TaskResult& result = report.results.front();
  ASSERT_TRUE(result.portfolio.has_value());
  EXPECT_FALSE(result.substrate.empty());
  EXPECT_EQ(result.portfolio->runs.size(), 2u);
  // The canonical line must NOT mention the (timing-dependent) winner.
  const std::string line = batch::canonical_line(result);
  EXPECT_EQ(line.find(result.substrate), std::string::npos)
      << "canonical line leaked the winning substrate: " << line;
}

}  // namespace
