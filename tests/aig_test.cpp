// Tests for the AIG layer: structural-hashing invariants, simulation,
// ISOP generation, and an exhaustive brute-force cross-check of both CNF
// encoders (cut mapper and Tseitin) on seeded random circuits.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "aig/cnf.hpp"
#include "sat/solver.hpp"
#include "util/diagnostics.hpp"

namespace aig = speccc::aig;
namespace sat = speccc::sat;

namespace {

TEST(Aig, ConstantsAndComplementEdges) {
  EXPECT_EQ(aig::Aig::edge_true().negated(), aig::Aig::edge_false());
  EXPECT_EQ(aig::Aig::edge_false().negated(), aig::Aig::edge_true());
  const aig::Edge t = aig::Aig::edge_true();
  EXPECT_EQ(t.negated().negated(), t);
  EXPECT_TRUE(t.is_constant());
}

TEST(Aig, MkAndFoldsConstantsAndIdentities) {
  aig::Aig g;
  const aig::Edge a = g.add_input();
  EXPECT_EQ(g.mk_and(a, aig::Aig::edge_true()), a);
  EXPECT_EQ(g.mk_and(aig::Aig::edge_true(), a), a);
  EXPECT_EQ(g.mk_and(a, aig::Aig::edge_false()), aig::Aig::edge_false());
  EXPECT_EQ(g.mk_and(a, a), a);
  EXPECT_EQ(g.mk_and(a, a.negated()), aig::Aig::edge_false());
  // None of the folded calls created a node.
  EXPECT_EQ(g.num_ands(), 0u);
}

TEST(Aig, StructuralHashingSharesGates) {
  aig::Aig g;
  const aig::Edge a = g.add_input();
  const aig::Edge b = g.add_input();
  const aig::Edge ab = g.mk_and(a, b);
  // Same gate again, in either operand order, is the same edge and no new
  // node; the unique table reports the hits.
  const std::size_t hits_before = g.strash_hits();
  EXPECT_EQ(g.mk_and(a, b), ab);
  EXPECT_EQ(g.mk_and(b, a), ab);
  EXPECT_EQ(g.num_ands(), 1u);
  EXPECT_EQ(g.strash_hits(), hits_before + 2);
  // A function and its negation share the node through the complement bit.
  EXPECT_EQ(g.mk_and(a, b).negated().node(), ab.node());
  // Derived gates share structure: xor built twice costs nodes once.
  const aig::Edge x1 = g.mk_xor(a, b);
  const std::size_t nodes_after_first = g.num_nodes();
  const aig::Edge x2 = g.mk_xor(a, b);
  EXPECT_EQ(x1, x2);
  EXPECT_EQ(g.num_nodes(), nodes_after_first);
}

TEST(Aig, EvaluateAllMatchesFullAdderSemantics) {
  aig::Aig g;
  const aig::Edge a = g.add_input();
  const aig::Edge b = g.add_input();
  const aig::Edge cin = g.add_input();
  const aig::Edge sum = g.mk_xor(g.mk_xor(a, b), cin);
  const aig::Edge cout =
      g.mk_or(g.mk_and(a, b), g.mk_and(g.mk_xor(a, b), cin));
  for (int m = 0; m < 8; ++m) {
    const std::vector<bool> in = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    const int total = (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
    EXPECT_EQ(g.evaluate(sum, in), (total & 1) != 0) << "minterm " << m;
    EXPECT_EQ(g.evaluate(cout, in), total >= 2) << "minterm " << m;
  }
}

TEST(Aig, TruthTableHelpers) {
  EXPECT_EQ(aig::tt_full(2), 0xFull);
  EXPECT_EQ(aig::tt_full(6), ~0ull);
  EXPECT_EQ(aig::tt_var(0, 2), 0b1010ull);
  EXPECT_EQ(aig::tt_var(1, 2), 0b1100ull);
}

// Evaluate a cube list at minterm m (variable i reads bit i of m).
bool cubes_cover(const std::vector<aig::Cube>& cubes, unsigned m) {
  for (const aig::Cube& cube : cubes) {
    if ((m & cube.mask) == (cube.value & cube.mask)) return true;
  }
  return false;
}

TEST(Aig, IsopCoversExactlyTheOnSet) {
  // Fully specified functions (upper == on): the ISOP must equal the
  // function, minterm for minterm, across a seeded sweep of 4-var tables.
  speccc::util::Rng rng(0x1505u);
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t on = rng.next() & aig::tt_full(4);
    std::vector<aig::Cube> cubes;
    const std::uint64_t cover = aig::isop(on, on, 4, cubes);
    EXPECT_EQ(cover, on);
    for (unsigned m = 0; m < 16; ++m) {
      EXPECT_EQ(cubes_cover(cubes, m), ((on >> m) & 1) != 0)
          << "round " << round << " minterm " << m;
    }
  }
}

TEST(Aig, IsopStaysInsideTheUpperBound) {
  // Incompletely specified functions: the cover contains every on-minterm
  // and never leaves [on, upper].
  speccc::util::Rng rng(0x2a2au);
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t on = rng.next() & aig::tt_full(4);
    const std::uint64_t upper = on | (rng.next() & aig::tt_full(4));
    std::vector<aig::Cube> cubes;
    const std::uint64_t cover = aig::isop(on, upper, 4, cubes);
    EXPECT_EQ(cover & ~upper, 0u) << "cover leaves the upper bound";
    EXPECT_EQ(on & ~cover, 0u) << "cover misses an on-minterm";
    for (unsigned m = 0; m < 16; ++m) {
      EXPECT_EQ(cubes_cover(cubes, m), ((cover >> m) & 1) != 0);
    }
  }
}

/// ClauseSink adapter feeding a plain solver (what smt::Builder does,
/// without the Builder).
class SolverSink : public aig::ClauseSink {
 public:
  explicit SolverSink(sat::Solver& solver) : solver_(solver) {}
  int new_var() override { return solver_.new_var(); }
  void add_clause(const sat::Clause& clause) override {
    solver_.add_clause(clause);
  }

 private:
  sat::Solver& solver_;
};

/// Draw a random circuit over `inputs` PIs, returning the root edge.
aig::Edge random_circuit(aig::Aig& g, speccc::util::Rng& rng,
                         std::size_t inputs, std::size_t gates) {
  std::vector<aig::Edge> pool;
  for (std::size_t i = 0; i < inputs; ++i) pool.push_back(g.add_input());
  for (std::size_t i = 0; i < gates; ++i) {
    aig::Edge a = pool[rng.below(pool.size())];
    aig::Edge b = pool[rng.below(pool.size())];
    if (rng.chance(1, 2)) a = a.negated();
    if (rng.chance(1, 2)) b = b.negated();
    switch (rng.below(3)) {
      case 0: pool.push_back(g.mk_and(a, b)); break;
      case 1: pool.push_back(g.mk_or(a, b)); break;
      default: pool.push_back(g.mk_xor(a, b)); break;
    }
  }
  return pool.back();
}

// Exhaustive encoder cross-check: for every input assignment, the CNF
// under input assumptions forces the root literal to the circuit's
// simulated value. Run for both encoder lanes over seeded random circuits.
class AigEncoderTest
    : public ::testing::TestWithParam<aig::CnfOptions::Encoder> {};

TEST_P(AigEncoderTest, CnfMatchesSimulationExhaustively) {
  constexpr std::size_t kInputs = 5;
  for (int round = 0; round < 10; ++round) {
    speccc::util::Rng rng(static_cast<std::uint64_t>(round) * 2654435761u + 99);
    aig::Aig g;
    const aig::Edge root = random_circuit(g, rng, kInputs, 40);
    if (root.is_constant()) continue;  // folded away; nothing to map

    sat::Solver solver;
    SolverSink sink(solver);
    aig::CnfOptions options;
    options.encoder = GetParam();
    aig::CnfMapper mapper(g, sink, options);
    const sat::Lit root_lit = mapper.literal(root);

    // Collect the PI literals (allocating any the mapped cone left out).
    std::vector<sat::Lit> pi;
    std::vector<aig::Edge> pi_edges;
    for (std::uint32_t n = 1; n <= kInputs; ++n) {
      ASSERT_TRUE(g.is_input(n));
      pi_edges.push_back(aig::Edge::from_code(n << 1));
      pi.push_back(mapper.literal(pi_edges.back()));
    }

    for (unsigned m = 0; m < (1u << kInputs); ++m) {
      std::vector<bool> in;
      std::vector<sat::Lit> assumptions;
      for (std::size_t i = 0; i < kInputs; ++i) {
        const bool v = ((m >> i) & 1) != 0;
        in.push_back(v);
        assumptions.push_back(v ? pi[i] : pi[i].negated());
      }
      const bool expected = g.evaluate(root, in);
      assumptions.push_back(expected ? root_lit : root_lit.negated());
      EXPECT_EQ(solver.solve(assumptions), sat::Result::kSat)
          << "round " << round << " minterm " << m;
      assumptions.back() = assumptions.back().negated();
      EXPECT_EQ(solver.solve(assumptions), sat::Result::kUnsat)
          << "round " << round << " minterm " << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Encoders, AigEncoderTest,
                         ::testing::Values(aig::CnfOptions::Encoder::kCutMap,
                                           aig::CnfOptions::Encoder::kTseitin));

TEST(Aig, WideCutsStayExhaustivelyCorrect) {
  // The same exhaustive check at the k = 6 ceiling, where truth tables
  // use all 64 bits.
  constexpr std::size_t kInputs = 6;
  // A random draw can fold its last gate to a constant; take the first
  // seed whose root survives (seed 3 does, and this keeps the test
  // robust if the draw sequence ever changes).
  aig::Aig g;
  aig::Edge root = aig::Aig::edge_true();
  for (std::uint64_t seed = 1; root.is_constant() && seed <= 16; ++seed) {
    aig::Aig fresh;
    speccc::util::Rng rng(seed * 0xabcdefu);
    const aig::Edge candidate = random_circuit(fresh, rng, kInputs, 60);
    if (!candidate.is_constant()) {
      speccc::util::Rng replay(seed * 0xabcdefu);
      root = random_circuit(g, replay, kInputs, 60);
    }
  }
  ASSERT_FALSE(root.is_constant());

  sat::Solver solver;
  SolverSink sink(solver);
  aig::CnfOptions options;
  options.cut_size = 6;
  aig::CnfMapper mapper(g, sink, options);
  const sat::Lit root_lit = mapper.literal(root);
  std::vector<sat::Lit> pi;
  for (std::uint32_t n = 1; n <= kInputs; ++n) {
    pi.push_back(mapper.literal(aig::Edge::from_code(n << 1)));
  }
  for (unsigned m = 0; m < (1u << kInputs); ++m) {
    std::vector<bool> in;
    std::vector<sat::Lit> assumptions;
    for (std::size_t i = 0; i < kInputs; ++i) {
      const bool v = ((m >> i) & 1) != 0;
      in.push_back(v);
      assumptions.push_back(v ? pi[i] : pi[i].negated());
    }
    assumptions.push_back(g.evaluate(root, in) ? root_lit
                                               : root_lit.negated());
    EXPECT_EQ(solver.solve(assumptions), sat::Result::kSat) << "minterm " << m;
  }
}

TEST(Aig, IncrementalFlushTreatsEarlierConesAsLeaves) {
  // Map one cone, then a second cone that reuses the first: the second
  // flush must not re-emit the shared logic, and the literals handed out
  // for shared nodes must be stable.
  aig::Aig g;
  const aig::Edge a = g.add_input();
  const aig::Edge b = g.add_input();
  const aig::Edge c = g.add_input();
  const aig::Edge shared = g.mk_xor(a, b);
  const aig::Edge root1 = g.mk_and(shared, c);
  const aig::Edge root2 = g.mk_or(shared, c.negated());

  sat::Solver solver;
  SolverSink sink(solver);
  aig::CnfMapper mapper(g, sink, {});
  const sat::Lit lit1 = mapper.literal(root1);
  const std::size_t clauses_after_first = mapper.stats().clauses;
  const auto shared_lit = mapper.existing_literal(shared);
  const sat::Lit lit2 = mapper.literal(root2);
  EXPECT_GT(mapper.stats().flushes, 1u);
  EXPECT_GT(mapper.stats().clauses, clauses_after_first);
  if (shared_lit.has_value()) {
    // If the first cover mapped the shared node, its literal is stable.
    EXPECT_EQ(mapper.existing_literal(shared)->code(), shared_lit->code());
  }
  // Both roots stay correct after the incremental flush.
  for (unsigned m = 0; m < 8; ++m) {
    const std::vector<bool> in = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    std::vector<sat::Lit> assumptions;
    for (std::uint32_t n = 1; n <= 3; ++n) {
      const sat::Lit l = mapper.literal(aig::Edge::from_code(n << 1));
      assumptions.push_back(in[n - 1] ? l : l.negated());
    }
    assumptions.push_back(g.evaluate(root1, in) ? lit1 : lit1.negated());
    assumptions.push_back(g.evaluate(root2, in) ? lit2 : lit2.negated());
    EXPECT_EQ(solver.solve(assumptions), sat::Result::kSat) << "minterm " << m;
  }
}

}  // namespace
