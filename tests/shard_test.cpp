// Tests for distributed corpus sharding (src/shard): the round-robin
// splitter's determinism and remainder handling, and the subprocess
// coordinator's headline contract -- the merged canonical report of a
// K-way sharded run is byte-identical to the unsharded `batch::check`
// baseline, for every shard count, cache mode, and warm/cold snapshot
// state, and stays byte-identical when workers are killed, fail with
// nonzero exits, or time out (the fault battery drives wrapper scripts
// keyed on SPECCC_SHARD_INDEX / SPECCC_SHARD_ATTEMPT).
//
// The worker binaries come from the build tree: SPECCC_BATCH_BIN and
// SPECCC_SHARD_BIN are compile definitions set in tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>

#include "batch/batch.hpp"
#include "batch/corpus_tasks.hpp"
#include "difftest/harness.hpp"
#include "shard/coordinator.hpp"
#include "shard/splitter.hpp"

namespace batch = speccc::batch;
namespace shard = speccc::shard;
namespace fs = std::filesystem;

namespace {

/// A per-test scratch directory under gtest's temp root.
std::string test_dir() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = ::testing::TempDir() + "speccc_shard/" +
                          info->test_suite_name() + "." + info->name();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct Baseline {
  std::string canonical;
  int exit_code = 0;  // what the speccc_batch CLI would return
};

/// The unsharded ground truth, computed in-process: the exact canonical
/// bytes `speccc_batch --corpus table1 --generate N --seed S --canonical`
/// prints (tasks in the same order: corpus first, generated appended),
/// plus the exit code that CLI run would end with.
Baseline unsharded_baseline(bool table1, int generate, std::uint64_t seed) {
  std::vector<batch::SpecTask> tasks;
  if (table1) tasks = batch::table1_tasks();
  for (int index = 0; index < generate; ++index) {
    auto spec = speccc::difftest::generated_spec(seed, index);
    tasks.push_back({std::move(spec.name), std::move(spec.requirements)});
  }
  const batch::BatchReport report = batch::check(tasks, {});
  Baseline baseline;
  baseline.canonical = batch::canonical(report);
  if (report.errors > 0 || report.budget_exhausted > 0 ||
      report.cancelled > 0 || report.disagreements > 0) {
    baseline.exit_code = 3;
  } else {
    baseline.exit_code = report.all_consistent() ? 0 : 2;
  }
  return baseline;
}

std::string unsharded_canonical(bool table1, int generate,
                                std::uint64_t seed) {
  return unsharded_baseline(table1, generate, seed).canonical;
}

/// Write an executable /bin/sh wrapper that (conditionally) misbehaves and
/// otherwise execs the real speccc_batch. The condition sees the
/// coordinator's SPECCC_SHARD_INDEX / SPECCC_SHARD_ATTEMPT exports, so
/// faults are deterministic per (shard, attempt).
std::string write_wrapper(const std::string& dir, const std::string& name,
                          const std::string& fault_lines) {
  const std::string path = dir + "/" + name;
  {
    std::ofstream out(path);
    out << "#!/bin/sh\n"
        << fault_lines << "exec \"" << SPECCC_BATCH_BIN << "\" \"$@\"\n";
  }
  ::chmod(path.c_str(), 0755);
  return path;
}

/// Run a shell command, capturing stdout/stderr to files. Returns the
/// exit code (or -signal when terminated).
int run_command(const std::string& command, const std::string& stdout_path,
                const std::string& stderr_path) {
  const std::string full =
      command + " > " + stdout_path + " 2> " + stderr_path;
  const int status = std::system(full.c_str());
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

shard::CoordinatorOptions coordinator_options(
    std::size_t shards, std::vector<std::string> worker_args) {
  shard::CoordinatorOptions options;
  options.shards = shards;
  options.worker_command = {SPECCC_BATCH_BIN};
  options.worker_args = std::move(worker_args);
  return options;
}

}  // namespace

// ---- shard/splitter.hpp -----------------------------------------------------

TEST(Splitter, RoundRobinDealIsDeterministicAndOwnsEveryKthIndex) {
  const auto assignment = shard::split_round_robin(10, 4);
  ASSERT_EQ(assignment.size(), 4u);
  EXPECT_EQ(assignment[0], (std::vector<std::size_t>{0, 4, 8}));
  EXPECT_EQ(assignment[1], (std::vector<std::size_t>{1, 5, 9}));
  EXPECT_EQ(assignment[2], (std::vector<std::size_t>{2, 6}));
  EXPECT_EQ(assignment[3], (std::vector<std::size_t>{3, 7}));
  EXPECT_EQ(shard::split_round_robin(10, 4), assignment);  // pure function
}

TEST(Splitter, ShardSizesMatchTheDealForEveryRemainder) {
  for (std::size_t count = 0; count <= 21; ++count) {
    for (std::size_t shards = 1; shards <= 8; ++shards) {
      const auto assignment = shard::split_round_robin(count, shards);
      std::size_t total = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        EXPECT_EQ(assignment[s].size(), shard::shard_size(count, shards, s))
            << "count=" << count << " shards=" << shards << " s=" << s;
        total += assignment[s].size();
        for (const std::size_t index : assignment[s]) {
          EXPECT_EQ(shard::shard_of(index, shards), s);
        }
      }
      EXPECT_EQ(total, count);
      // Earlier shards take the remainder: sizes are non-increasing.
      for (std::size_t s = 1; s < shards; ++s) {
        EXPECT_GE(assignment[s - 1].size(), assignment[s].size());
      }
    }
  }
}

TEST(Splitter, InterleavingTheShardsRestoresGlobalInputOrder) {
  const std::size_t count = 17, shards = 5;
  const auto assignment = shard::split_round_robin(count, shards);
  std::vector<std::size_t> merged;
  for (std::size_t row = 0; merged.size() < count; ++row) {
    for (std::size_t s = 0; s < shards; ++s) {
      if (row < assignment[s].size()) merged.push_back(assignment[s][row]);
    }
  }
  std::vector<std::size_t> expected(count);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(merged, expected);  // the coordinator's merge rule
}

TEST(Splitter, SingleShardOwnsEverythingInOrder) {
  const auto assignment = shard::split_round_robin(6, 1);
  ASSERT_EQ(assignment.size(), 1u);
  EXPECT_EQ(assignment[0], (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
}

// ---- merged canonical == unsharded canonical --------------------------------

// The headline determinism contract: for every shard count and cache
// mode, the merged canonical report over all 22 Table I rows plus a
// fixed-seed generated corpus is byte-identical to the in-process
// unsharded baseline.
TEST(ShardCoordinator, MergedCanonicalIsByteIdenticalAcrossShardCountsAndCacheModes) {
  const Baseline baseline = unsharded_baseline(true, 12, 3);
  ASSERT_FALSE(baseline.canonical.empty());
  const std::vector<std::string> inputs = {"--corpus",   "table1", "--generate",
                                           "12",         "--seed", "3"};
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (const bool cache : {false, true}) {
      std::vector<std::string> args = inputs;
      if (cache) args.push_back("--cache");
      const shard::MergedReport report =
          shard::run_sharded(coordinator_options(shards, args));
      ASSERT_TRUE(report.complete)
          << "shards=" << shards << " cache=" << cache << ": "
          << report.merge_error;
      EXPECT_EQ(shard::canonical(report), baseline.canonical)
          << "shards=" << shards << " cache=" << cache;
      EXPECT_EQ(report.exit_code(), baseline.exit_code);
      EXPECT_EQ(report.worker_failures, 0u);
      EXPECT_EQ(report.cache_enabled, cache);
    }
  }
}

TEST(ShardCoordinator, MoreShardsThanTasksLeavesEmptyShardsAndStillMerges) {
  const std::string baseline = unsharded_canonical(false, 3, 7);
  const shard::MergedReport report = shard::run_sharded(
      coordinator_options(8, {"--generate", "3", "--seed", "7"}));
  ASSERT_TRUE(report.complete) << report.merge_error;
  EXPECT_EQ(shard::canonical(report), baseline);
  EXPECT_EQ(report.specs(), 3u);
  std::size_t empty = 0;
  for (const shard::ShardOutcome& outcome : report.shards) {
    EXPECT_TRUE(outcome.completed);
    if (outcome.specs == 0) ++empty;
  }
  EXPECT_EQ(empty, 5u);  // shards 3..7 legitimately got nothing
}

// ---- fault injection --------------------------------------------------------

TEST(ShardFaults, KilledWorkerIsRetriedAndTheMergeStaysByteIdentical) {
  const std::string dir = test_dir();
  // Shard 1's first attempt dies of SIGKILL before producing output.
  const std::string wrapper = write_wrapper(
      dir, "killer",
      "if [ \"$SPECCC_SHARD_INDEX\" = \"1\" ] && "
      "[ \"$SPECCC_SHARD_ATTEMPT\" = \"0\" ]; then kill -9 $$; fi\n");
  shard::CoordinatorOptions options =
      coordinator_options(3, {"--generate", "8", "--seed", "5"});
  options.worker_command = {wrapper};
  const Baseline baseline = unsharded_baseline(false, 8, 5);
  const shard::MergedReport report = shard::run_sharded(options);
  ASSERT_TRUE(report.complete) << report.merge_error;
  EXPECT_EQ(shard::canonical(report), baseline.canonical);
  // The crash is a non-canonical statistic, never silently dropped --
  // and it does not leak into the exit code once the retry recovered.
  EXPECT_EQ(report.worker_failures, 1u);
  EXPECT_EQ(report.retries_used, 1u);
  ASSERT_EQ(report.shards[1].attempts.size(), 2u);
  EXPECT_TRUE(report.shards[1].attempts[0].signalled);
  EXPECT_EQ(report.shards[1].attempts[0].term_signal, SIGKILL);
  EXPECT_NE(report.shards[1].attempts[0].failure.find("signal"),
            std::string::npos);
  EXPECT_EQ(report.exit_code(), baseline.exit_code);
}

TEST(ShardFaults, NonzeroExitIsRetriedAndCountedInStats) {
  const std::string dir = test_dir();
  const std::string wrapper = write_wrapper(
      dir, "flaky",
      "if [ \"$SPECCC_SHARD_INDEX\" = \"0\" ] && "
      "[ \"$SPECCC_SHARD_ATTEMPT\" = \"0\" ]; then exit 9; fi\n");
  shard::CoordinatorOptions options =
      coordinator_options(2, {"--generate", "6", "--seed", "5"});
  options.worker_command = {wrapper};
  const shard::MergedReport report = shard::run_sharded(options);
  ASSERT_TRUE(report.complete) << report.merge_error;
  EXPECT_EQ(shard::canonical(report), unsharded_canonical(false, 6, 5));
  EXPECT_EQ(report.worker_failures, 1u);
  ASSERT_EQ(report.shards[0].attempts.size(), 2u);
  EXPECT_EQ(report.shards[0].attempts[0].exit_code, 9);
  EXPECT_NE(report.shards[0].attempts[0].failure.find("exit code 9"),
            std::string::npos);
  EXPECT_EQ(report.shards[1].retries(), 0u);  // the healthy shard ran once
}

TEST(ShardFaults, TimedOutWorkerIsKilledAndRetried) {
  const std::string dir = test_dir();
  const std::string wrapper = write_wrapper(
      dir, "hanger",
      "if [ \"$SPECCC_SHARD_INDEX\" = \"0\" ] && "
      "[ \"$SPECCC_SHARD_ATTEMPT\" = \"0\" ]; then sleep 300; fi\n");
  shard::CoordinatorOptions options =
      coordinator_options(2, {"--generate", "4", "--seed", "5"});
  options.worker_command = {wrapper};
  // Far above any healthy attempt's wall clock (even on a loaded CI
  // machine), far below the hung attempt's sleep.
  options.worker_timeout_seconds = 10.0;
  const shard::MergedReport report = shard::run_sharded(options);
  ASSERT_TRUE(report.complete) << report.merge_error;
  EXPECT_EQ(shard::canonical(report), unsharded_canonical(false, 4, 5));
  ASSERT_EQ(report.shards[0].attempts.size(), 2u);
  EXPECT_TRUE(report.shards[0].attempts[0].timed_out);
  EXPECT_NE(report.shards[0].attempts[0].failure.find("timed out"),
            std::string::npos);
}

TEST(ShardFaults, ExhaustedRetriesYieldStructuredErrorAndExitCode3) {
  const std::string dir = test_dir();
  // Shard 1 fails every attempt; the healthy shards must still complete.
  const std::string wrapper = write_wrapper(
      dir, "dead",
      "if [ \"$SPECCC_SHARD_INDEX\" = \"1\" ]; then exit 9; fi\n");
  shard::CoordinatorOptions options =
      coordinator_options(2, {"--generate", "4", "--seed", "5"});
  options.worker_command = {wrapper};
  options.retries = 1;
  const shard::MergedReport report = shard::run_sharded(options);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.exit_code(), 3);
  EXPECT_TRUE(report.rows.empty());  // no partial canonical output
  EXPECT_TRUE(report.shards[0].completed);
  EXPECT_FALSE(report.shards[1].completed);
  EXPECT_EQ(report.shards[1].attempts.size(), 2u);  // retries + 1
  EXPECT_NE(report.shards[1].error.find("failed after 2 attempts"),
            std::string::npos);
  EXPECT_EQ(report.worker_failures, 2u);
}

// ---- warm-start snapshots through the CLI tools -----------------------------

TEST(ShardSnapshot, WarmStartFromMergedSnapshotIsByteIdenticalWithZeroMisses) {
  const std::string dir = test_dir();
  const std::string snap = dir + "/warm.snap";
  const std::string inputs = "--generate 10 --seed 5";
  const std::string baseline = unsharded_canonical(false, 10, 5);

  // Cold sharded run that writes the merged snapshot.
  int exit_code = run_command(
      std::string(SPECCC_SHARD_BIN) + " " + inputs +
          " --shards 4 --canonical --quiet --cache-snapshot ," + snap,
      dir + "/cold.out", dir + "/cold.err");
  EXPECT_EQ(exit_code, 0) << slurp(dir + "/cold.err");
  EXPECT_EQ(slurp(dir + "/cold.out"), baseline);
  ASSERT_TRUE(fs::exists(snap));

  // Warm sharded run from the merged snapshot: same bytes.
  exit_code = run_command(
      std::string(SPECCC_SHARD_BIN) + " " + inputs +
          " --shards 2 --canonical --quiet --cache-snapshot " + snap + ",",
      dir + "/warm.out", dir + "/warm.err");
  EXPECT_EQ(exit_code, 0) << slurp(dir + "/warm.err");
  EXPECT_EQ(slurp(dir + "/warm.out"), baseline);

  // Warm unsharded run: byte-identical AND fully served from the
  // snapshot -- zero misses on both cache levels (--cache-stats prints
  // the counters to stderr in canonical mode).
  exit_code = run_command(
      std::string(SPECCC_BATCH_BIN) + " " + inputs +
          " --canonical --quiet --cache-stats --cache-snapshot " + snap + ",",
      dir + "/batch.out", dir + "/batch.err");
  EXPECT_EQ(exit_code, 0) << slurp(dir + "/batch.err");
  EXPECT_EQ(slurp(dir + "/batch.out"), baseline);
  const std::string stats = slurp(dir + "/batch.err");
  EXPECT_NE(stats.find(" 0 misses, L2 "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" 0 misses, 0 evictions"), std::string::npos) << stats;
}

TEST(ShardSnapshot, RejectedSnapshotIsAStructuredFailureNotAColdStart) {
  const std::string dir = test_dir();
  const std::string snap = dir + "/bad.snap";
  {
    // Long enough to carry a full header, but not a snapshot.
    std::ofstream out(snap, std::ios::binary);
    out << std::string(64, 'x');
  }
  const int exit_code = run_command(
      std::string(SPECCC_BATCH_BIN) +
          " --generate 2 --seed 5 --canonical --quiet --cache-snapshot " +
          snap + ",",
      dir + "/out", dir + "/err");
  EXPECT_EQ(exit_code, 1);
  EXPECT_TRUE(slurp(dir + "/out").empty());  // no silent cold-start report
  const std::string err = slurp(dir + "/err");
  EXPECT_NE(err.find("cache snapshot rejected"), std::string::npos) << err;
  EXPECT_NE(err.find("bad-magic"), std::string::npos) << err;
}

// ---- speccc_shard CLI surface -----------------------------------------------

TEST(ShardCli, CliMergedReportMatchesBatchCliByteForByte) {
  const std::string dir = test_dir();
  const std::string inputs = "--corpus table1";
  const int batch_exit =
      run_command(std::string(SPECCC_BATCH_BIN) + " " + inputs +
                      " --canonical --quiet",
                  dir + "/batch.out", dir + "/batch.err");
  const int shard_exit =
      run_command(std::string(SPECCC_SHARD_BIN) + " " + inputs +
                      " --shards 3 --canonical --quiet --json " +
                      dir + "/report.json",
                  dir + "/shard.out", dir + "/shard.err");
  // Same bytes, same exit code -- sharding is invisible to callers.
  EXPECT_EQ(shard_exit, batch_exit) << slurp(dir + "/shard.err");
  EXPECT_EQ(slurp(dir + "/shard.out"), slurp(dir + "/batch.out"));
  const std::string json = slurp(dir + "/report.json");
  EXPECT_NE(json.find("\"shards\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"worker_failures\": 0"), std::string::npos);
}
