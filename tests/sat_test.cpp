// Tests for the CDCL SAT solver, including a brute-force cross-check on
// random small instances.
#include <gtest/gtest.h>

#include <vector>

#include "sat/solver.hpp"
#include "util/diagnostics.hpp"

namespace sat = speccc::sat;
using sat::Lit;

namespace {

TEST(Sat, EmptyInstanceIsSat) {
  sat::Solver s;
  EXPECT_EQ(s.solve(), sat::Result::kSat);
}

TEST(Sat, UnitPropagationChains) {
  sat::Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  const int c = s.new_var();
  s.add_unit(Lit(a, true));
  s.add_binary(Lit(a, false), Lit(b, true));   // a -> b
  s.add_binary(Lit(b, false), Lit(c, true));   // b -> c
  ASSERT_EQ(s.solve(), sat::Result::kSat);
  EXPECT_TRUE(s.value(a));
  EXPECT_TRUE(s.value(b));
  EXPECT_TRUE(s.value(c));
}

TEST(Sat, DirectContradiction) {
  sat::Solver s;
  const int a = s.new_var();
  s.add_unit(Lit(a, true));
  s.add_unit(Lit(a, false));
  EXPECT_EQ(s.solve(), sat::Result::kUnsat);
}

TEST(Sat, RequiresSearch) {
  sat::Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  // (a || b) && (!a || b) && (a || !b) -- forces a=b=true.
  s.add_binary(Lit(a, true), Lit(b, true));
  s.add_binary(Lit(a, false), Lit(b, true));
  s.add_binary(Lit(a, true), Lit(b, false));
  ASSERT_EQ(s.solve(), sat::Result::kSat);
  EXPECT_TRUE(s.value(a));
  EXPECT_TRUE(s.value(b));
}

TEST(Sat, XorChainUnsat) {
  // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is unsatisfiable.
  sat::Solver s;
  const int x1 = s.new_var();
  const int x2 = s.new_var();
  const int x3 = s.new_var();
  auto add_xor_eq_true = [&s](int u, int v) {
    s.add_binary(Lit(u, true), Lit(v, true));
    s.add_binary(Lit(u, false), Lit(v, false));
  };
  add_xor_eq_true(x1, x2);
  add_xor_eq_true(x2, x3);
  add_xor_eq_true(x1, x3);
  EXPECT_EQ(s.solve(), sat::Result::kUnsat);
}

TEST(Sat, PigeonHole4Into3IsUnsat) {
  // p_{i,j}: pigeon i sits in hole j. Classic hard UNSAT family (small size).
  constexpr int kPigeons = 4;
  constexpr int kHoles = 3;
  sat::Solver s;
  int var[kPigeons][kHoles];
  for (auto& row : var) {
    for (int& v : row) v = s.new_var();
  }
  for (int i = 0; i < kPigeons; ++i) {
    sat::Clause c;
    for (int j = 0; j < kHoles; ++j) c.push_back(Lit(var[i][j], true));
    s.add_clause(c);
  }
  for (int j = 0; j < kHoles; ++j) {
    for (int i1 = 0; i1 < kPigeons; ++i1) {
      for (int i2 = i1 + 1; i2 < kPigeons; ++i2) {
        s.add_binary(Lit(var[i1][j], false), Lit(var[i2][j], false));
      }
    }
  }
  EXPECT_EQ(s.solve(), sat::Result::kUnsat);
}

TEST(Sat, AssumptionsDoNotPersist) {
  sat::Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  s.add_binary(Lit(a, false), Lit(b, true));  // a -> b
  ASSERT_EQ(s.solve({Lit(a, true)}), sat::Result::kSat);
  EXPECT_TRUE(s.value(b));
  ASSERT_EQ(s.solve({Lit(b, false)}), sat::Result::kSat);
  EXPECT_FALSE(s.value(a));
  // Contradictory assumptions fail without poisoning the instance.
  EXPECT_EQ(s.solve({Lit(a, true), Lit(b, false)}), sat::Result::kUnsat);
  EXPECT_EQ(s.solve(), sat::Result::kSat);
}

TEST(Sat, TautologicalClauseIgnored) {
  sat::Solver s;
  const int a = s.new_var();
  s.add_clause({Lit(a, true), Lit(a, false)});
  ASSERT_EQ(s.solve(), sat::Result::kSat);
}

// Brute-force cross-check on pseudo-random 3-CNF instances near the phase
// transition.
class SatRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SatRandomTest, AgreesWithBruteForce) {
  speccc::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  constexpr int kVars = 10;
  const int clauses = 10 + GetParam() % 35;

  std::vector<sat::Clause> formula;
  for (int i = 0; i < clauses; ++i) {
    sat::Clause c;
    for (int k = 0; k < 3; ++k) {
      c.push_back(Lit(static_cast<int>(rng.below(kVars)), rng.chance(1, 2)));
    }
    formula.push_back(c);
  }

  bool brute_sat = false;
  for (int m = 0; m < (1 << kVars) && !brute_sat; ++m) {
    bool all = true;
    for (const auto& c : formula) {
      bool some = false;
      for (Lit l : c) {
        const bool v = ((m >> l.var()) & 1) != 0;
        if (v == l.positive()) {
          some = true;
          break;
        }
      }
      if (!some) {
        all = false;
        break;
      }
    }
    brute_sat = all;
  }

  sat::Solver s;
  for (int v = 0; v < kVars; ++v) (void)s.new_var();
  for (const auto& c : formula) s.add_clause(c);
  const bool solver_sat = s.solve() == sat::Result::kSat;
  EXPECT_EQ(solver_sat, brute_sat);

  if (solver_sat) {
    // The model must satisfy every clause.
    for (const auto& c : formula) {
      bool some = false;
      for (Lit l : c) {
        if (s.value(l.var()) == l.positive()) {
          some = true;
          break;
        }
      }
      EXPECT_TRUE(some) << "model does not satisfy a clause";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SatRandomTest, ::testing::Range(0, 40));

}  // namespace
