// Tests for the CDCL SAT solver, including a brute-force cross-check on
// random small instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sat/solver.hpp"
#include "util/diagnostics.hpp"

namespace sat = speccc::sat;
using sat::Lit;

namespace {

TEST(Sat, EmptyInstanceIsSat) {
  sat::Solver s;
  EXPECT_EQ(s.solve(), sat::Result::kSat);
}

TEST(Sat, UnitPropagationChains) {
  sat::Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  const int c = s.new_var();
  s.add_unit(Lit(a, true));
  s.add_binary(Lit(a, false), Lit(b, true));   // a -> b
  s.add_binary(Lit(b, false), Lit(c, true));   // b -> c
  ASSERT_EQ(s.solve(), sat::Result::kSat);
  EXPECT_TRUE(s.value(a));
  EXPECT_TRUE(s.value(b));
  EXPECT_TRUE(s.value(c));
}

TEST(Sat, DirectContradiction) {
  sat::Solver s;
  const int a = s.new_var();
  s.add_unit(Lit(a, true));
  s.add_unit(Lit(a, false));
  EXPECT_EQ(s.solve(), sat::Result::kUnsat);
}

TEST(Sat, RequiresSearch) {
  sat::Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  // (a || b) && (!a || b) && (a || !b) -- forces a=b=true.
  s.add_binary(Lit(a, true), Lit(b, true));
  s.add_binary(Lit(a, false), Lit(b, true));
  s.add_binary(Lit(a, true), Lit(b, false));
  ASSERT_EQ(s.solve(), sat::Result::kSat);
  EXPECT_TRUE(s.value(a));
  EXPECT_TRUE(s.value(b));
}

TEST(Sat, XorChainUnsat) {
  // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is unsatisfiable.
  sat::Solver s;
  const int x1 = s.new_var();
  const int x2 = s.new_var();
  const int x3 = s.new_var();
  auto add_xor_eq_true = [&s](int u, int v) {
    s.add_binary(Lit(u, true), Lit(v, true));
    s.add_binary(Lit(u, false), Lit(v, false));
  };
  add_xor_eq_true(x1, x2);
  add_xor_eq_true(x2, x3);
  add_xor_eq_true(x1, x3);
  EXPECT_EQ(s.solve(), sat::Result::kUnsat);
}

TEST(Sat, PigeonHole4Into3IsUnsat) {
  // p_{i,j}: pigeon i sits in hole j. Classic hard UNSAT family (small size).
  constexpr int kPigeons = 4;
  constexpr int kHoles = 3;
  sat::Solver s;
  int var[kPigeons][kHoles];
  for (auto& row : var) {
    for (int& v : row) v = s.new_var();
  }
  for (int i = 0; i < kPigeons; ++i) {
    sat::Clause c;
    for (int j = 0; j < kHoles; ++j) c.push_back(Lit(var[i][j], true));
    s.add_clause(c);
  }
  for (int j = 0; j < kHoles; ++j) {
    for (int i1 = 0; i1 < kPigeons; ++i1) {
      for (int i2 = i1 + 1; i2 < kPigeons; ++i2) {
        s.add_binary(Lit(var[i1][j], false), Lit(var[i2][j], false));
      }
    }
  }
  EXPECT_EQ(s.solve(), sat::Result::kUnsat);
}

TEST(Sat, AssumptionsDoNotPersist) {
  sat::Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  s.add_binary(Lit(a, false), Lit(b, true));  // a -> b
  ASSERT_EQ(s.solve({Lit(a, true)}), sat::Result::kSat);
  EXPECT_TRUE(s.value(b));
  ASSERT_EQ(s.solve({Lit(b, false)}), sat::Result::kSat);
  EXPECT_FALSE(s.value(a));
  // Contradictory assumptions fail without poisoning the instance.
  EXPECT_EQ(s.solve({Lit(a, true), Lit(b, false)}), sat::Result::kUnsat);
  EXPECT_EQ(s.solve(), sat::Result::kSat);
}

TEST(Sat, CoreIsASubsetOfTheAssumptions) {
  sat::Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  const int c = s.new_var();
  s.add_binary(Lit(a, false), Lit(b, true));  // a -> b
  const std::vector<Lit> assumptions = {Lit(c, true), Lit(a, true),
                                        Lit(b, false)};
  ASSERT_EQ(s.solve(assumptions), sat::Result::kUnsat);
  // The conflict rests on a and !b only; c is an innocent bystander. The
  // core keeps assumption order.
  EXPECT_EQ(s.core(), (std::vector<Lit>{Lit(a, true), Lit(b, false)}));
  EXPECT_FALSE(s.assumption_failed(Lit(c, true)));
  EXPECT_TRUE(s.assumption_failed(Lit(a, true)));
  EXPECT_TRUE(s.assumption_failed(Lit(b, false)));
}

TEST(Sat, CoreIsUnsatWhenReasserted) {
  // The core() contract: asserting exactly the core literals again yields
  // kUnsat. Exercised on a conflict that needs real propagation, not just
  // a directly falsified assumption.
  sat::Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  const int c = s.new_var();
  const int d = s.new_var();
  s.add_binary(Lit(a, false), Lit(b, true));  // a -> b
  s.add_binary(Lit(b, false), Lit(c, true));  // b -> c
  ASSERT_EQ(s.solve({Lit(d, true), Lit(a, true), Lit(c, false)}),
            sat::Result::kUnsat);
  const std::vector<Lit> core = s.core();
  EXPECT_EQ(core, (std::vector<Lit>{Lit(a, true), Lit(c, false)}));
  EXPECT_EQ(s.solve(core), sat::Result::kUnsat);
  // And the instance itself is still satisfiable without assumptions.
  EXPECT_EQ(s.solve(), sat::Result::kSat);
}

TEST(Sat, CoreIsEmptyWhenClausesAloneAreUnsat) {
  sat::Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  s.add_unit(Lit(a, true));
  s.add_unit(Lit(a, false));
  ASSERT_EQ(s.solve({Lit(b, true)}), sat::Result::kUnsat);
  EXPECT_TRUE(s.core().empty());
}

TEST(Sat, IncrementalSolvingReusesLearnedClauses) {
  // The incremental contract behind the diag MUS shrinker: conflict
  // clauses learned by one assumption query persist, so re-running a
  // related query resolves the same conflicts cheaper. Pigeonhole (5
  // pigeons, 4 holes) gated behind a selector gives a query hard enough
  // to force real learning.
  constexpr int kPigeons = 5;
  constexpr int kHoles = 4;
  sat::Solver s;
  int var[kPigeons][kHoles];
  for (auto& row : var) {
    for (int& v : row) v = s.new_var();
  }
  const Lit selector(s.new_var(), true);
  for (int i = 0; i < kPigeons; ++i) {
    sat::Clause c{selector.negated()};
    for (int j = 0; j < kHoles; ++j) c.push_back(Lit(var[i][j], true));
    s.add_clause(c);
  }
  for (int j = 0; j < kHoles; ++j) {
    for (int i1 = 0; i1 < kPigeons; ++i1) {
      for (int i2 = i1 + 1; i2 < kPigeons; ++i2) {
        s.add_ternary(selector.negated(), Lit(var[i1][j], false),
                      Lit(var[i2][j], false));
      }
    }
  }
  ASSERT_EQ(s.solve({selector}), sat::Result::kUnsat);
  const auto first_conflicts = s.stats().conflicts;
  EXPECT_GT(first_conflicts, 0u);
  EXPECT_GT(s.stats().learned, 0u);
  ASSERT_EQ(s.solve({selector}), sat::Result::kUnsat);
  const auto second_conflicts = s.stats().conflicts - first_conflicts;
  // Stats are cumulative; the second identical query must resolve with
  // strictly fewer conflicts than the first thanks to the kept clauses.
  EXPECT_LT(second_conflicts, first_conflicts);
}

TEST(Sat, PigeonholeCoreBlamesTheSelector) {
  // Regression pin for analyze_final on a conflict reached deep in search
  // (not by direct assumption falsification): the gated pigeonhole above
  // is unsat exactly because of the selector, and the core says so.
  constexpr int kPigeons = 4;
  constexpr int kHoles = 3;
  sat::Solver s;
  int var[kPigeons][kHoles];
  for (auto& row : var) {
    for (int& v : row) v = s.new_var();
  }
  const Lit gate(s.new_var(), true);
  const Lit spare(s.new_var(), true);
  for (int i = 0; i < kPigeons; ++i) {
    sat::Clause c{gate.negated()};
    for (int j = 0; j < kHoles; ++j) c.push_back(Lit(var[i][j], true));
    s.add_clause(c);
  }
  for (int j = 0; j < kHoles; ++j) {
    for (int i1 = 0; i1 < kPigeons; ++i1) {
      for (int i2 = i1 + 1; i2 < kPigeons; ++i2) {
        s.add_ternary(gate.negated(), Lit(var[i1][j], false),
                      Lit(var[i2][j], false));
      }
    }
  }
  ASSERT_EQ(s.solve({spare, gate}), sat::Result::kUnsat);
  EXPECT_EQ(s.core(), (std::vector<Lit>{gate}));
  EXPECT_FALSE(s.assumption_failed(spare));
}

TEST(Sat, TautologicalClauseIgnored) {
  sat::Solver s;
  const int a = s.new_var();
  s.add_clause({Lit(a, true), Lit(a, false)});
  ASSERT_EQ(s.solve(), sat::Result::kSat);
}

namespace {

/// Gated pigeonhole: PHP(pigeons, holes) clauses, all guarded by
/// `selector` so the block is active only under that assumption. Every
/// clause is also appended to `added` so tests can verify models against
/// the full instance.
void add_gated_pigeonhole(sat::Solver& s, Lit selector, int pigeons, int holes,
                          std::vector<sat::Clause>& added) {
  std::vector<std::vector<int>> var(static_cast<std::size_t>(pigeons),
                                    std::vector<int>(static_cast<std::size_t>(holes)));
  for (auto& row : var) {
    for (int& v : row) v = s.new_var();
  }
  const auto add = [&](sat::Clause clause) {
    added.push_back(clause);
    s.add_clause(std::move(clause));
  };
  for (int i = 0; i < pigeons; ++i) {
    sat::Clause c{selector.negated()};
    for (int j = 0; j < holes; ++j) {
      c.push_back(Lit(var[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], true));
    }
    add(std::move(c));
  }
  for (int j = 0; j < holes; ++j) {
    for (int i1 = 0; i1 < pigeons; ++i1) {
      for (int i2 = i1 + 1; i2 < pigeons; ++i2) {
        add({selector.negated(),
             Lit(var[static_cast<std::size_t>(i1)][static_cast<std::size_t>(j)], false),
             Lit(var[static_cast<std::size_t>(i2)][static_cast<std::size_t>(j)], false)});
      }
    }
  }
}

bool model_satisfies(const sat::Solver& s, const std::vector<sat::Clause>& clauses) {
  for (const sat::Clause& clause : clauses) {
    bool satisfied = false;
    for (const Lit l : clause) {
      if (s.value(l.var()) == l.positive()) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

}  // namespace

TEST(Sat, RestartsUnderAssumptionsKeepTheCoreAndModelContracts) {
  // A gated PHP(7,6) forces far more than 64 conflicts, so the Luby
  // schedule restarts several times mid-solve. Every restart backtracks
  // to level 0 and must re-assert the assumption trail; this pins that
  // the kUnsat core contract and the kSat model contract both survive
  // that churn.
  sat::Solver s;
  std::vector<sat::Clause> added;
  const Lit gate(s.new_var(), true);
  add_gated_pigeonhole(s, gate, 7, 6, added);

  ASSERT_EQ(s.solve({gate}), sat::Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 64u);  // enough to cross the first restart
  EXPECT_GT(s.stats().restarts, 0u);
  EXPECT_EQ(s.core(), (std::vector<Lit>{gate}));  // blames the gate alone
  // Re-asserting the same failed assumption stays kUnsat (the learned
  // clauses from the restarted search must not have corrupted anything).
  ASSERT_EQ(s.solve({gate}), sat::Result::kUnsat);
  EXPECT_EQ(s.core(), (std::vector<Lit>{gate}));
  // Releasing the gate is satisfiable, and the model really satisfies
  // every clause of the instance.
  ASSERT_EQ(s.solve({gate.negated()}), sat::Result::kSat);
  EXPECT_FALSE(s.value(gate.var()));
  EXPECT_TRUE(model_satisfies(s, added));
}

TEST(Sat, DefaultCapLeavesShortRunsUntouched) {
  // The default learned-clause cap is far above anything a pipeline-sized
  // query learns, so existing behavior is preserved: no reductions fire.
  sat::Solver s;
  std::vector<sat::Clause> added;
  const Lit gate(s.new_var(), true);
  add_gated_pigeonhole(s, gate, 5, 4, added);
  ASSERT_EQ(s.solve({gate}), sat::Result::kUnsat);
  EXPECT_EQ(s.learned_cap(), sat::Solver::kDefaultLearnedCap);
  EXPECT_EQ(s.stats().reductions, 0u);
  EXPECT_EQ(s.stats().deleted, 0u);
}

TEST(Sat, LearnedClauseReductionPlateausLongIncrementalRuns) {
  // The long-lived-process bugfix: before reduction existed, learned
  // clauses accumulated without bound across incremental solve() calls.
  // Eight independent gated pigeonhole blocks queried selector-by-selector
  // generate thousands of learned clauses; with a small cap the live
  // learned count and the clause database must plateau instead.
  constexpr std::size_t kCap = 100;
  sat::Solver s;
  s.set_learned_cap(kCap);
  std::vector<sat::Clause> added;
  std::vector<Lit> gates;
  for (int block = 0; block < 8; ++block) {
    const Lit gate(s.new_var(), true);
    gates.push_back(gate);
    add_gated_pigeonhole(s, gate, 5, 4, added);
  }

  const std::size_t originals = s.num_clauses() - s.num_learned();
  std::size_t live_peak = 0;
  for (int round = 0; round < 2; ++round) {
    for (const Lit gate : gates) {
      ASSERT_EQ(s.solve({gate}), sat::Result::kUnsat);
      EXPECT_EQ(s.core(), (std::vector<Lit>{gate}));
      live_peak = std::max(live_peak, s.num_learned());
    }
  }

  const sat::Solver::Stats& stats = s.stats();
  // The cap actually bit: far more clauses were learned than survive.
  EXPECT_GT(stats.learned, 2 * kCap);
  EXPECT_GT(stats.reductions, 0u);
  EXPECT_GT(stats.deleted, 0u);
  // Live learned = learned - deleted, and it plateaued near the cap
  // (reduction keeps glue and locked clauses, so allow headroom; the
  // point is "bounded", not "exact").
  EXPECT_EQ(s.num_learned(), stats.learned - stats.deleted);
  EXPECT_LE(live_peak, 2 * kCap);
  EXPECT_LE(s.num_clauses(), originals + 2 * kCap);
  // The database stays sound after many reductions: a satisfiable query
  // still produces a genuine model over the whole instance.
  ASSERT_EQ(s.solve({gates[0].negated()}), sat::Result::kSat);
}

TEST(Sat, ArenaCompactionKeepsWatchersAndReasonsIntact) {
  // reduce_learned() compacts the flat clause arena in place, remapping
  // watcher refs and trail reasons. A tiny cap forces many compactions
  // while solving continues incrementally; any stale ref would corrupt
  // propagation and show up as a wrong verdict or a bogus model. New
  // clauses added *between* compactions must interleave correctly with
  // relocated ones.
  constexpr std::size_t kCap = 50;
  sat::Solver s;
  s.set_learned_cap(kCap);
  std::vector<sat::Clause> added;
  std::vector<Lit> gates;
  for (int block = 0; block < 4; ++block) {
    const Lit gate(s.new_var(), true);
    gates.push_back(gate);
    add_gated_pigeonhole(s, gate, 5, 4, added);
    // Query every gate so far after each growth step: the arena holds a
    // mix of pre- and post-compaction clauses at every round.
    for (const Lit g : gates) {
      ASSERT_EQ(s.solve({g}), sat::Result::kUnsat);
    }
  }
  EXPECT_GT(s.stats().reductions, 1u);
  // Satisfiable query after heavy relocation: the model must satisfy the
  // entire original instance, proving no watcher points at garbage.
  ASSERT_EQ(s.solve({gates[0].negated(), gates[1].negated(),
                     gates[2].negated(), gates[3].negated()}),
            sat::Result::kSat);
  EXPECT_TRUE(model_satisfies(s, added));
}

TEST(Sat, BinaryClausesPropagateLikeArenaClauses) {
  // Binary clauses never enter the arena: each lives in its two watcher
  // lists and its reason is a tagged literal code. Cross-check random
  // 2-CNF instances (pure binary propagation) against brute force, the
  // same contract SatRandomTest pins for arena clauses.
  for (int instance = 0; instance < 30; ++instance) {
    speccc::util::Rng rng(static_cast<std::uint64_t>(instance) * 104729 + 7);
    constexpr int kVars = 12;
    const int clauses = 12 + instance;
    std::vector<sat::Clause> formula;
    for (int i = 0; i < clauses; ++i) {
      formula.push_back({Lit(static_cast<int>(rng.below(kVars)), rng.chance(1, 2)),
                         Lit(static_cast<int>(rng.below(kVars)), rng.chance(1, 2))});
    }
    bool brute_sat = false;
    for (int m = 0; m < (1 << kVars) && !brute_sat; ++m) {
      bool all = true;
      for (const auto& c : formula) {
        bool some = false;
        for (Lit l : c) {
          if ((((m >> l.var()) & 1) != 0) == l.positive()) {
            some = true;
            break;
          }
        }
        if (!some) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }
    sat::Solver s;
    for (int v = 0; v < kVars; ++v) (void)s.new_var();
    for (const auto& c : formula) s.add_clause(c);
    ASSERT_EQ(s.solve() == sat::Result::kSat, brute_sat)
        << "2-CNF instance " << instance;
    if (brute_sat) {
      EXPECT_TRUE(model_satisfies(s, formula)) << "2-CNF instance " << instance;
    }
  }
}

TEST(Sat, BinaryReasonsReachAssumptionCores) {
  // analyze_final must walk binary (tagged-literal) reasons just like
  // arena reasons: a conflict reached purely through a binary implication
  // chain still blames exactly the assumptions it rests on.
  sat::Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  const int c = s.new_var();
  const int d = s.new_var();
  const int spare = s.new_var();
  s.add_binary(Lit(a, false), Lit(b, true));  // a -> b
  s.add_binary(Lit(b, false), Lit(c, true));  // b -> c
  s.add_binary(Lit(c, false), Lit(d, true));  // c -> d
  ASSERT_EQ(s.solve({Lit(spare, true), Lit(a, true), Lit(d, false)}),
            sat::Result::kUnsat);
  EXPECT_EQ(s.core(), (std::vector<Lit>{Lit(a, true), Lit(d, false)}));
  // Copy before re-solving: solve() rebuilds core_ in place.
  const std::vector<Lit> core = s.core();
  EXPECT_EQ(s.solve(core), sat::Result::kUnsat);
}

TEST(Sat, AssumptionCoresSurviveArenaRelocation) {
  // Core extraction walks trail reasons into the arena; after compactions
  // those refs point at relocated clauses. The core contract (subset, in
  // order, unsat when re-asserted) must hold on a solver whose arena has
  // been reshuffled multiple times.
  constexpr std::size_t kCap = 60;
  sat::Solver s;
  s.set_learned_cap(kCap);
  std::vector<sat::Clause> added;
  std::vector<Lit> gates;
  for (int block = 0; block < 6; ++block) {
    const Lit gate(s.new_var(), true);
    gates.push_back(gate);
    add_gated_pigeonhole(s, gate, 5, 4, added);
  }
  for (int round = 0; round < 2; ++round) {
    for (std::size_t g = 0; g < gates.size(); ++g) {
      // Pad the query with innocent negated gates so the core has to
      // discriminate, not just echo the assumption vector.
      std::vector<Lit> assumptions;
      for (std::size_t other = 0; other < gates.size(); ++other) {
        if (other != g) assumptions.push_back(gates[other].negated());
      }
      assumptions.push_back(gates[g]);
      ASSERT_EQ(s.solve(assumptions), sat::Result::kUnsat);
      EXPECT_EQ(s.core(), (std::vector<Lit>{gates[g]}));
      const std::vector<Lit> core = s.core();  // copy: solve() rebuilds core_
      EXPECT_EQ(s.solve(core), sat::Result::kUnsat);
    }
  }
  EXPECT_GT(s.stats().reductions, 0u);
}

// Brute-force cross-check on pseudo-random 3-CNF instances near the phase
// transition.
class SatRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SatRandomTest, AgreesWithBruteForce) {
  speccc::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  constexpr int kVars = 10;
  const int clauses = 10 + GetParam() % 35;

  std::vector<sat::Clause> formula;
  for (int i = 0; i < clauses; ++i) {
    sat::Clause c;
    for (int k = 0; k < 3; ++k) {
      c.push_back(Lit(static_cast<int>(rng.below(kVars)), rng.chance(1, 2)));
    }
    formula.push_back(c);
  }

  bool brute_sat = false;
  for (int m = 0; m < (1 << kVars) && !brute_sat; ++m) {
    bool all = true;
    for (const auto& c : formula) {
      bool some = false;
      for (Lit l : c) {
        const bool v = ((m >> l.var()) & 1) != 0;
        if (v == l.positive()) {
          some = true;
          break;
        }
      }
      if (!some) {
        all = false;
        break;
      }
    }
    brute_sat = all;
  }

  sat::Solver s;
  for (int v = 0; v < kVars; ++v) (void)s.new_var();
  for (const auto& c : formula) s.add_clause(c);
  const bool solver_sat = s.solve() == sat::Result::kSat;
  EXPECT_EQ(solver_sat, brute_sat);

  if (solver_sat) {
    // The model must satisfy every clause.
    for (const auto& c : formula) {
      bool some = false;
      for (Lit l : c) {
        if (s.value(l.var()) == l.positive()) {
          some = true;
          break;
        }
      }
      EXPECT_TRUE(some) << "model does not satisfy a clause";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SatRandomTest, ::testing::Range(0, 40));

}  // namespace
