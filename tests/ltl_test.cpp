// Tests for the LTL core: hash-consing, printing, parsing round-trips,
// rewriting, and lasso-trace semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "difftest/random.hpp"
#include "ltl/formula.hpp"
#include "ltl/parser.hpp"
#include "ltl/patterns.hpp"
#include "ltl/rewrite.hpp"
#include "ltl/trace.hpp"
#include "util/diagnostics.hpp"

namespace ltl = speccc::ltl;
using ltl::Formula;

namespace {

Formula a() { return ltl::ap("a"); }
Formula b() { return ltl::ap("b"); }
Formula c() { return ltl::ap("c"); }

TEST(Formula, HashConsingGivesPointerEquality) {
  Formula f1 = ltl::land(a(), ltl::next(b()));
  Formula f2 = ltl::land(a(), ltl::next(b()));
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(f1.hash(), f2.hash());
}

TEST(Formula, NeutralSimplifications) {
  EXPECT_EQ(ltl::lnot(ltl::lnot(a())), a());
  EXPECT_EQ(ltl::land(a(), ltl::tru()), a());
  EXPECT_EQ(ltl::land(a(), ltl::fls()), ltl::fls());
  EXPECT_EQ(ltl::lor(a(), ltl::tru()), ltl::tru());
  EXPECT_EQ(ltl::lor(a(), ltl::fls()), a());
  EXPECT_EQ(ltl::always(ltl::always(a())), ltl::always(a()));
  EXPECT_EQ(ltl::eventually(ltl::eventually(a())), ltl::eventually(a()));
}

TEST(Formula, NaryFlattening) {
  Formula f = ltl::land(ltl::land(a(), b()), c());
  Formula g = ltl::land({a(), b(), c()});
  EXPECT_EQ(f, g);
  EXPECT_EQ(f.arity(), 3u);
}

TEST(Formula, FlatteningPreservesOrder) {
  Formula f = ltl::land({c(), a(), b()});
  EXPECT_EQ(ltl::to_string(f), "c && a && b");
}

TEST(Formula, DuplicateOperandsDropped) {
  EXPECT_EQ(ltl::land({a(), a(), b()}), ltl::land(a(), b()));
  EXPECT_EQ(ltl::lor({a(), a()}), a());
}

TEST(Formula, AtomsCollectsAllPropositions) {
  Formula f = ltl::always(ltl::implies(ltl::land(a(), b()), ltl::next(c())));
  const auto atoms = f.atoms();
  EXPECT_EQ(atoms, (std::set<std::string>{"a", "b", "c"}));
}

TEST(Formula, LengthCountsTreeUnfolding) {
  // G (a -> b): always, implies, a, b => 4 nodes.
  Formula f = ltl::always(ltl::implies(a(), b()));
  EXPECT_EQ(f.length(), 4u);
}

TEST(Formula, IsPropositional) {
  EXPECT_TRUE(ltl::implies(a(), ltl::lor(b(), c())).is_propositional());
  EXPECT_FALSE(ltl::next(a()).is_propositional());
  EXPECT_FALSE(ltl::land(a(), ltl::eventually(b())).is_propositional());
}

TEST(Printer, MatchesPaperShapes) {
  Formula req17 = ltl::always(ltl::implies(ltl::ap("enter_auto_control_mode"),
                                           ltl::eventually(ltl::ap("inflate_cuff"))));
  EXPECT_EQ(ltl::to_string(req17),
            "G (enter_auto_control_mode -> F inflate_cuff)");
  EXPECT_EQ(ltl::to_string(req17, ltl::Style::kPaper),
            "□ (enter_auto_control_mode → ♦ inflate_cuff)");
}

TEST(Printer, NextChains) {
  Formula f = ltl::always(
      ltl::implies(ltl::lnot(ltl::ap("air_ok")), ltl::next_n(ltl::ap("term"), 3)));
  EXPECT_EQ(ltl::to_string(f), "G (!air_ok -> X X X term)");
}

TEST(Printer, PrecedenceParens) {
  Formula f = ltl::land(ltl::lor(a(), b()), c());
  EXPECT_EQ(ltl::to_string(f), "(a || b) && c");
  Formula g = ltl::lor(ltl::land(a(), b()), c());
  EXPECT_EQ(ltl::to_string(g), "a && b || c");
}

TEST(Parser, RoundTripsSimpleFormulas) {
  const std::vector<std::string> inputs = {
      "a",
      "!a",
      "a && b",
      "a || b && c",
      "(a || b) && c",
      "a -> b -> c",
      "a <-> b",
      "X X a",
      "G (a -> F b)",
      "a U b",
      "a W b",
      "a R b",
      "G (a -> (b W c))",
      "true",
      "false",
  };
  for (const auto& in : inputs) {
    Formula f = ltl::parse(in);
    Formula g = ltl::parse(ltl::to_string(f));
    EXPECT_EQ(f, g) << "round trip failed for: " << in;
  }
}

TEST(Parser, BindingStrengths) {
  // U binds looser than || and &&, tighter than ->.
  EXPECT_EQ(ltl::parse("a || b U c"), ltl::until(ltl::lor(a(), b()), c()));
  EXPECT_EQ(ltl::parse("a U b -> c"), ltl::implies(ltl::until(a(), b()), c()));
  EXPECT_EQ(ltl::parse("!a && b"), ltl::land(ltl::lnot(a()), b()));
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW((void)ltl::parse(""), speccc::util::ParseError);
  EXPECT_THROW((void)ltl::parse("a &&"), speccc::util::ParseError);
  EXPECT_THROW((void)ltl::parse("(a"), speccc::util::ParseError);
  EXPECT_THROW((void)ltl::parse("a b"), speccc::util::ParseError);
  EXPECT_THROW((void)ltl::parse("a & b"), speccc::util::ParseError);
  EXPECT_THROW((void)ltl::parse("->"), speccc::util::ParseError);
}

// Round-trip property: under hash-consing, parse(to_string(f)) must return
// the very same node for arbitrary formulas, not just the hand-picked list
// above. The difftest generator supplies the arbitrary part.
TEST(Parser, RoundTripsRandomFormulas) {
  speccc::difftest::FormulaConfig config;
  config.max_depth = 5;
  speccc::util::Rng rng(20260730);
  for (int i = 0; i < 300; ++i) {
    const Formula f = speccc::difftest::random_formula(rng, config);
    EXPECT_EQ(ltl::parse(ltl::to_string(f)), f)
        << "round trip failed for: " << ltl::to_string(f);
  }
}

TEST(Parser, RoundTripsThePaperStyleTooDeepNesting) {
  // Regression guard for printer precedence: deeply right-nested binary
  // temporal operators round-trip without parenthesis loss.
  const std::string in = "a U (b W (c R (a U b)))";
  const Formula f = ltl::parse(in);
  EXPECT_EQ(ltl::parse(ltl::to_string(f)), f);
}

TEST(Rewrite, NnfPushesNegations) {
  Formula f = ltl::lnot(ltl::always(ltl::implies(a(), ltl::eventually(b()))));
  // !G(a -> F b) == F (a && G !b)
  Formula expected =
      ltl::eventually(ltl::land(a(), ltl::always(ltl::lnot(b()))));
  EXPECT_EQ(ltl::nnf(f), expected);
}

TEST(Rewrite, NnfHandlesUntilDualities) {
  EXPECT_EQ(ltl::nnf(ltl::lnot(ltl::until(a(), b()))),
            ltl::release(ltl::lnot(a()), ltl::lnot(b())));
  EXPECT_EQ(ltl::nnf(ltl::lnot(ltl::release(a(), b()))),
            ltl::until(ltl::lnot(a()), ltl::lnot(b())));
  EXPECT_EQ(ltl::nnf(ltl::lnot(ltl::next(a()))), ltl::next(ltl::lnot(a())));
}

TEST(Rewrite, NnfIsIdempotent) {
  const std::vector<std::string> inputs = {
      "!(a U (b && !c))", "!(a W b)", "!(a <-> b)", "!G F a", "!(a -> b)"};
  for (const auto& in : inputs) {
    Formula f = ltl::nnf(ltl::parse(in));
    EXPECT_EQ(f, ltl::nnf(f)) << in;
  }
}

TEST(Rewrite, WeakUntilElimination) {
  Formula f = ltl::weak_until(a(), b());
  Formula g = ltl::eliminate_weak_until(f);
  EXPECT_EQ(g, ltl::release(b(), ltl::lor(a(), b())));
}

TEST(Rewrite, SubstituteReplacesAtoms) {
  Formula f = ltl::always(ltl::implies(a(), ltl::next(b())));
  Formula g = ltl::substitute(f, {{"a", ltl::land(b(), c())}});
  EXPECT_EQ(g, ltl::always(ltl::implies(ltl::land(b(), c()), ltl::next(b()))));
}

TEST(Rewrite, MaxNextChain) {
  EXPECT_EQ(ltl::max_next_chain(ltl::parse("a")), 0u);
  EXPECT_EQ(ltl::max_next_chain(ltl::parse("X a")), 1u);
  EXPECT_EQ(ltl::max_next_chain(ltl::parse("G (a -> X X X b)")), 3u);
  EXPECT_EQ(ltl::max_next_chain(ltl::parse("X X a && X b")), 2u);
}

TEST(Rewrite, SyntacticSafety) {
  EXPECT_TRUE(ltl::is_syntactic_safety(ltl::parse("G (a -> X b)")));
  EXPECT_TRUE(ltl::is_syntactic_safety(ltl::parse("G (a -> (b W c))")));
  EXPECT_FALSE(ltl::is_syntactic_safety(ltl::parse("G (a -> F b)")));
  EXPECT_FALSE(ltl::is_syntactic_safety(ltl::parse("a U b")));
  // Negation flips: !(F a) is safety.
  EXPECT_TRUE(ltl::is_syntactic_safety(ltl::parse("!F a")));
}

// ---- Lasso semantics --------------------------------------------------------

ltl::Lasso make_lasso(std::initializer_list<ltl::Valuation> steps,
                      std::size_t loop_start) {
  return ltl::Lasso(std::vector<ltl::Valuation>(steps), loop_start);
}

TEST(Trace, PropositionalEvaluation) {
  auto w = make_lasso({{"a"}, {"b"}}, 1);
  EXPECT_TRUE(ltl::evaluate(ltl::parse("a"), w, 0));
  EXPECT_FALSE(ltl::evaluate(ltl::parse("b"), w, 0));
  EXPECT_TRUE(ltl::evaluate(ltl::parse("a -> !b"), w, 0));
  EXPECT_TRUE(ltl::evaluate(ltl::parse("X b"), w, 0));
  EXPECT_TRUE(ltl::evaluate(ltl::parse("X X b"), w, 0));  // loop on b
}

TEST(Trace, AlwaysOnLoop) {
  // a holds only in the prefix; loop has b.
  auto w = make_lasso({{"a"}, {"b"}}, 1);
  EXPECT_FALSE(ltl::evaluate(ltl::parse("G a"), w, 0));
  EXPECT_TRUE(ltl::evaluate(ltl::parse("G b"), w, 1));
  EXPECT_TRUE(ltl::evaluate(ltl::parse("X G b"), w, 0));
  EXPECT_TRUE(ltl::evaluate(ltl::parse("F G b"), w, 0));
}

TEST(Trace, EventuallyFindsLaterStep) {
  auto w = make_lasso({{}, {}, {"goal"}, {}}, 3);
  EXPECT_TRUE(ltl::evaluate(ltl::parse("F goal"), w, 0));
  // Once past the goal, it never recurs (loop excludes it).
  EXPECT_FALSE(ltl::evaluate(ltl::parse("F goal"), w, 3));
  EXPECT_FALSE(ltl::evaluate(ltl::parse("G F goal"), w, 0));
}

TEST(Trace, UntilSemantics) {
  auto w = make_lasso({{"p"}, {"p"}, {"q"}, {}}, 3);
  EXPECT_TRUE(ltl::evaluate(ltl::parse("p U q"), w, 0));
  EXPECT_FALSE(ltl::evaluate(ltl::parse("p U r"), w, 0));
  // Weak until is satisfied by G p even without the release.
  auto w2 = make_lasso({{"p"}}, 0);
  EXPECT_TRUE(ltl::evaluate(ltl::parse("p W q"), w2, 0));
  EXPECT_FALSE(ltl::evaluate(ltl::parse("p U q"), w2, 0));
}

TEST(Trace, ReleaseSemantics) {
  // a R b: b must hold up to and including the first a.
  auto w = make_lasso({{"b"}, {"a", "b"}, {}}, 2);
  EXPECT_TRUE(ltl::evaluate(ltl::parse("a R b"), w, 0));
  auto w2 = make_lasso({{"b"}, {"a"}, {}}, 2);
  EXPECT_FALSE(ltl::evaluate(ltl::parse("a R b"), w2, 0));
  auto w3 = make_lasso({{"b"}}, 0);
  EXPECT_TRUE(ltl::evaluate(ltl::parse("a R b"), w3, 0));  // b forever
}

TEST(Trace, PaperFootnoteFormulaOnWitness) {
  // G (out <-> X X X in): satisfied by a trace where out anticipates in by
  // exactly 3 steps (all-empty trace works trivially).
  auto w = make_lasso({{}}, 0);
  EXPECT_TRUE(ltl::evaluate(ltl::parse("G (out <-> X X X in)"), w, 0));
  auto w2 = make_lasso({{"out"}, {}, {}, {"in"}}, 3);
  EXPECT_FALSE(ltl::evaluate(ltl::parse("G (out <-> X X X in)"), w2, 0));
}

// ---- Lasso edge cases -------------------------------------------------------

TEST(Lasso, SingleStepLoop) {
  // One position that loops on itself: successor(0) == 0.
  auto w = make_lasso({{"p"}}, 0);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.successor(0), 0u);
  EXPECT_TRUE(ltl::evaluate(ltl::parse("G p"), w, 0));
  EXPECT_TRUE(ltl::evaluate(ltl::parse("X p"), w, 0));
  EXPECT_TRUE(ltl::evaluate(ltl::parse("X X X p"), w, 0));
  EXPECT_FALSE(ltl::evaluate(ltl::parse("F q"), w, 0));
}

TEST(Lasso, LoopStartAtLastPosition) {
  // The loop is the single final position: the suffix stutters forever.
  auto w = make_lasso({{"a"}, {}, {"p"}}, 2);
  EXPECT_EQ(w.successor(0), 1u);
  EXPECT_EQ(w.successor(1), 2u);
  EXPECT_EQ(w.successor(2), 2u);
  EXPECT_TRUE(ltl::evaluate(ltl::parse("F G p"), w, 0));
  EXPECT_TRUE(ltl::evaluate(ltl::parse("G (a -> F p)"), w, 0));
  // a never recurs once the loop is entered.
  EXPECT_FALSE(ltl::evaluate(ltl::parse("G F a"), w, 0));
}

TEST(Lasso, WrapAroundSuccessor) {
  // Loop of length 3 starting at 1: the last position wraps to 1, not 0.
  auto w = make_lasso({{"a"}, {"p"}, {}, {"q"}}, 1);
  EXPECT_EQ(w.successor(3), 1u);
  // X at the last position reads the loop start.
  EXPECT_TRUE(ltl::evaluate(ltl::parse("X p"), w, 3));
  // a lives only in the never-revisited prefix.
  EXPECT_TRUE(ltl::evaluate(ltl::parse("a && !F X X X X a"), w, 0));
  EXPECT_TRUE(ltl::evaluate(ltl::parse("G F q"), w, 0));
  EXPECT_TRUE(ltl::evaluate(ltl::parse("G F p"), w, 3));
}

TEST(Lasso, EvaluateAtLaterPositions) {
  auto w = make_lasso({{"p"}, {"q"}, {"r"}}, 1);
  EXPECT_TRUE(ltl::evaluate(ltl::parse("q"), w, 1));
  EXPECT_TRUE(ltl::evaluate(ltl::parse("G (q || r)"), w, 1));
  EXPECT_FALSE(ltl::evaluate(ltl::parse("F p"), w, 1));
}

TEST(Lasso, RejectsMalformedShapes) {
  // Empty step list and out-of-range loop start violate the contract.
  EXPECT_THROW(ltl::Lasso(std::vector<ltl::Valuation>{}, 0),
               speccc::util::InternalError);
  EXPECT_THROW(make_lasso({{"p"}, {}}, 2), speccc::util::InternalError);
  auto w = make_lasso({{"p"}}, 0);
  EXPECT_THROW((void)w.at(1), speccc::util::InternalError);
  EXPECT_THROW((void)w.successor(1), speccc::util::InternalError);
}

// Property sweep: NNF preserves lasso semantics on a family of formulas and
// deterministic pseudo-random lassos.
class NnfSemanticsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(NnfSemanticsTest, NnfPreservesSemantics) {
  Formula f = ltl::parse(GetParam());
  Formula g = ltl::nnf(f);
  Formula h = ltl::eliminate_weak_until(f);
  speccc::util::Rng rng(1234);
  for (int trial = 0; trial < 64; ++trial) {
    const std::size_t len = 1 + rng.below(6);
    const std::size_t loop = rng.below(len);
    std::vector<ltl::Valuation> steps(len);
    for (auto& step : steps) {
      for (const char* name : {"a", "b", "c"}) {
        if (rng.chance(1, 2)) step.insert(name);
      }
    }
    ltl::Lasso w(steps, loop);
    EXPECT_EQ(ltl::evaluate(f, w), ltl::evaluate(g, w))
        << "nnf mismatch on " << GetParam();
    EXPECT_EQ(ltl::evaluate(f, w), ltl::evaluate(h, w))
        << "W-elimination mismatch on " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NnfSemanticsTest,
    ::testing::Values("!(a U b)", "!(a W b)", "!(a R b)", "!(a <-> b)",
                      "!G (a -> F b)", "!(a -> (b U c))", "G (a -> X X b)",
                      "!F (a && X b)", "a W (b && c)", "!(a U (b W c))",
                      "G F a -> F G b", "!(X a <-> F b)"));

// ---- Pattern recognition ----------------------------------------------------

TEST(Patterns, TemplateConstructors) {
  EXPECT_EQ(ltl::to_string(ltl::response(a(), b())), "G (a -> F b)");
  EXPECT_EQ(ltl::to_string(ltl::delayed_implication(a(), b(), 2)),
            "G (a -> X X b)");
  // W binds tighter than ->, so the canonical form needs no inner parens.
  EXPECT_EQ(ltl::to_string(ltl::until_template(a(), b(), c())),
            "G (a -> !c -> b W c)");
}

TEST(Patterns, RecognizeInvariant) {
  auto p = ltl::recognize_pattern(ltl::parse("G (a -> b || c)"));
  ASSERT_TRUE(p.has_value());
  // G of a propositional implication is an implication pattern.
  EXPECT_EQ(p->kind, ltl::PatternKind::kImplication);
  EXPECT_EQ(p->guard, a());
  EXPECT_EQ(p->delay, 0u);
}

TEST(Patterns, RecognizePureInvariant) {
  auto p = ltl::recognize_pattern(ltl::parse("G (!a || b)"));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, ltl::PatternKind::kInvariant);
}

TEST(Patterns, RecognizeDelayedImplication) {
  auto p = ltl::recognize_pattern(ltl::parse("G (a && b -> X X X c)"));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, ltl::PatternKind::kImplication);
  EXPECT_EQ(p->delay, 3u);
  EXPECT_EQ(p->consequent, c());
}

TEST(Patterns, RecognizeGuardDelayed) {
  // The paper's Req-28 shape.
  auto p = ltl::recognize_pattern(ltl::parse("G (X X X !bp -> trigger)"));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, ltl::PatternKind::kGuardDelayed);
  EXPECT_EQ(p->delay, 3u);
}

TEST(Patterns, RecognizeResponse) {
  auto p = ltl::recognize_pattern(ltl::parse("G (a -> F b)"));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, ltl::PatternKind::kResponse);
}

TEST(Patterns, RecognizeNestedGuards) {
  // Req-17.4 shape: G (a -> (b -> c)).
  auto p = ltl::recognize_pattern(ltl::parse("G (a -> (b && !d -> c))"));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, ltl::PatternKind::kImplication);
  EXPECT_EQ(p->guard, ltl::land(a(), ltl::land(b(), ltl::lnot(ltl::ap("d")))));
}

TEST(Patterns, RecognizeWeakUntil) {
  // Req-49 shape.
  auto p = ltl::recognize_pattern(
      ltl::parse("G (btn -> (!press -> (btn W press)))"));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, ltl::PatternKind::kWeakUntil);
  EXPECT_EQ(p->guard, ltl::land(ltl::ap("btn"), ltl::lnot(ltl::ap("press"))));
  EXPECT_EQ(p->consequent, ltl::ap("btn"));
  EXPECT_EQ(p->release, ltl::ap("press"));
}

TEST(Patterns, RecognizeExistence) {
  auto p = ltl::recognize_pattern(ltl::parse("F done"));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, ltl::PatternKind::kExistence);
}

TEST(Patterns, RejectsOutsideFragment) {
  EXPECT_FALSE(ltl::recognize_pattern(ltl::parse("G (a -> F X b)")).has_value());
  EXPECT_FALSE(ltl::recognize_pattern(ltl::parse("G F a -> G F b")).has_value());
  EXPECT_FALSE(ltl::recognize_pattern(ltl::parse("a U b")).has_value());
  EXPECT_FALSE(
      ltl::recognize_pattern(ltl::parse("G (F a -> b)")).has_value());
}

}  // namespace
