// Tests for the Mealy machine type and the util support library.
#include <gtest/gtest.h>

#include "synth/mealy.hpp"
#include "util/diagnostics.hpp"
#include "util/strings.hpp"

namespace synth = speccc::synth;
namespace util = speccc::util;
using synth::Word;

namespace {

synth::MealyMachine toggler() {
  // One input bit, one output bit; output mirrors the machine's parity.
  synth::MealyMachine m(synth::IoSignature{{"tick"}, {"phase"}});
  const int even = m.add_state();
  const int odd = m.add_state();
  m.set_transition(even, 0, 0, even);
  m.set_transition(even, 1, 1, odd);
  m.set_transition(odd, 0, 1, odd);
  m.set_transition(odd, 1, 0, even);
  return m;
}

TEST(Mealy, RunProducesCombinedValuations) {
  const auto m = toggler();
  const auto steps = m.run({1, 0, 1});
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0], (speccc::ltl::Valuation{"tick", "phase"}));
  EXPECT_EQ(steps[1], (speccc::ltl::Valuation{"phase"}));
  EXPECT_EQ(steps[2], (speccc::ltl::Valuation{"tick"}));
}

TEST(Mealy, LassoDetectsJointPeriod) {
  const auto m = toggler();
  // Loop input "1": machine alternates states; the joint period is 2.
  const auto lasso = m.lasso({}, {1});
  EXPECT_EQ(lasso.loop_start(), 0u);
  EXPECT_EQ(lasso.size(), 2u);
}

TEST(Mealy, LassoWithPrefix) {
  const auto m = toggler();
  const auto lasso = m.lasso({1, 1, 1}, {0});
  // After the prefix the state is odd; input 0 loops in odd: period 1.
  EXPECT_EQ(lasso.loop_start(), 3u);
  EXPECT_EQ(lasso.size(), 4u);
  EXPECT_TRUE(lasso.holds("phase", 3));
}

TEST(Mealy, MissingTransitionChecks) {
  synth::MealyMachine m(synth::IoSignature{{"a"}, {"b"}});
  const int s = m.add_state();
  m.set_transition(s, 0, 0, s);
  EXPECT_TRUE(m.has_transition(s, 0));
  EXPECT_FALSE(m.has_transition(s, 1));
  EXPECT_THROW((void)m.output(s, 1), util::InternalError);
}

TEST(Strings, Basics) {
  EXPECT_EQ(util::to_lower("AbC"), "abc");
  EXPECT_EQ(util::trim("  x  "), "x");
  EXPECT_EQ(util::split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(util::split("a,b,,c", ',', false),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(util::join({"x", "y"}, "_"), "x_y");
  EXPECT_TRUE(util::starts_with("foobar", "foo"));
  EXPECT_TRUE(util::ends_with("foobar", "bar"));
  EXPECT_TRUE(util::is_identifier("ab_c3"));
  EXPECT_FALSE(util::is_identifier("a b"));
  EXPECT_FALSE(util::is_identifier(""));
}

TEST(Rng, DeterministicAndBounded) {
  util::Rng a(42);
  util::Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  util::Rng c(7);
  for (int i = 0; i < 200; ++i) {
    const auto v = c.below(10);
    EXPECT_LT(v, 10u);
    const int r = c.range(3, 5);
    EXPECT_GE(r, 3);
    EXPECT_LE(r, 5);
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  util::Stopwatch watch;
  // Can't assert much without sleeping; just sanity.
  EXPECT_GE(watch.seconds(), 0.0);
  watch.reset();
  EXPECT_GE(watch.milliseconds(), 0.0);
}

TEST(Diagnostics, CheckMacroThrowsInternalError) {
  EXPECT_THROW(speccc_check(false, "boom"), util::InternalError);
  EXPECT_NO_THROW(speccc_check(true, "fine"));
  try {
    speccc_check(1 == 2, "numbers disagree");
  } catch (const util::InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

}  // namespace
