// Tests for the Buechi substrate: cube semantics, GPVW translation checked
// against the LTL lasso semantics (the strongest property we have), pruning,
// and membership.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automata/buchi.hpp"
#include "automata/gpvw.hpp"
#include "ltl/parser.hpp"
#include "ltl/trace.hpp"
#include "util/diagnostics.hpp"

namespace automata = speccc::automata;
namespace ltl = speccc::ltl;

namespace {

TEST(Cube, ConsistencyAndMatching) {
  automata::Cube c;
  c.pos.insert("a");
  c.neg.insert("b");
  EXPECT_TRUE(c.consistent());
  EXPECT_TRUE(c.matches({"a"}));
  EXPECT_TRUE(c.matches({"a", "c"}));
  EXPECT_FALSE(c.matches({"a", "b"}));
  EXPECT_FALSE(c.matches({}));

  automata::Cube contradictory = c.meet(automata::Cube{{"b"}, {}});
  EXPECT_FALSE(contradictory.consistent());
}

TEST(Cube, EmptyCubeMatchesEverything) {
  automata::Cube c;
  EXPECT_TRUE(c.consistent());
  EXPECT_TRUE(c.matches({}));
  EXPECT_TRUE(c.matches({"x", "y"}));
}

ltl::Lasso make_lasso(std::vector<ltl::Valuation> steps, std::size_t loop) {
  return ltl::Lasso(std::move(steps), loop);
}

TEST(Gpvw, SingleProposition) {
  const auto nbw = automata::ltl_to_nbw(ltl::parse("a"));
  EXPECT_TRUE(automata::accepts_lasso(nbw, make_lasso({{"a"}}, 0)));
  EXPECT_FALSE(automata::accepts_lasso(nbw, make_lasso({{}}, 0)));
}

TEST(Gpvw, AlwaysEventually) {
  const auto nbw = automata::ltl_to_nbw(ltl::parse("G F a"));
  EXPECT_TRUE(automata::accepts_lasso(nbw, make_lasso({{}, {"a"}}, 0)));
  EXPECT_FALSE(automata::accepts_lasso(nbw, make_lasso({{"a"}, {}}, 1)));
}

TEST(Gpvw, UntilRequiresRelease) {
  const auto nbw = automata::ltl_to_nbw(ltl::parse("a U b"));
  EXPECT_TRUE(automata::accepts_lasso(nbw, make_lasso({{"a"}, {"b"}, {}}, 2)));
  EXPECT_TRUE(automata::accepts_lasso(nbw, make_lasso({{"b"}, {}}, 1)));
  // a forever without b: not accepted (strong until).
  EXPECT_FALSE(automata::accepts_lasso(nbw, make_lasso({{"a"}}, 0)));
}

TEST(Gpvw, UnsatisfiableFormulaHasEmptyLanguage) {
  const auto nbw = automata::ltl_to_nbw(ltl::parse("a && !a"));
  EXPECT_FALSE(automata::accepts_lasso(nbw, make_lasso({{"a"}}, 0)));
  EXPECT_FALSE(automata::accepts_lasso(nbw, make_lasso({{}}, 0)));
}

TEST(Gpvw, FalseConstant) {
  const auto nbw = automata::ltl_to_nbw(ltl::parse("false"));
  EXPECT_FALSE(automata::accepts_lasso(nbw, make_lasso({{}}, 0)));
}

TEST(Gpvw, PaperFootnoteAutomaton) {
  // G (out <-> X X X in): the NBW must accept the anticipating trace and
  // reject a violating one.
  const auto nbw = automata::ltl_to_nbw(ltl::parse("G (out <-> X X X in)"));
  EXPECT_TRUE(automata::accepts_lasso(nbw, make_lasso({{}}, 0)));
  // out true now but in false three steps later (all-empty loop).
  EXPECT_FALSE(automata::accepts_lasso(nbw, make_lasso({{"out"}, {}}, 1)));
}

TEST(Gpvw, UcwViewIsComplementConstruction) {
  // UCW for phi is NBW for !phi: a word satisfies phi iff the NBW rejects.
  const ltl::Formula phi = ltl::parse("G (a -> F b)");
  const auto ucw = automata::ucw_for(phi);
  const auto good = make_lasso({{"a"}, {"b"}}, 1);
  const auto bad = make_lasso({{"a"}, {}}, 1);
  EXPECT_TRUE(ltl::evaluate(phi, good));
  EXPECT_FALSE(automata::accepts_lasso(ucw, good));
  EXPECT_FALSE(ltl::evaluate(phi, bad));
  EXPECT_TRUE(automata::accepts_lasso(ucw, bad));
}

TEST(Gpvw, BoundedConstructionMatchesUnboundedUnderGenerousCap) {
  for (const char* text : {"G (a -> F b)", "a U (b R c)", "G (a -> X X b)"}) {
    const ltl::Formula phi = ltl::parse(text);
    const auto bounded = automata::ltl_to_nbw_bounded(phi, 100'000);
    ASSERT_TRUE(bounded.has_value()) << text;
    EXPECT_EQ(bounded->num_states(), automata::ltl_to_nbw(phi).num_states())
        << text;
  }
}

TEST(Gpvw, BoundedConstructionGivesUpUnderTightCap) {
  // Two interleaved Next chains under G force more than two tableau nodes.
  const ltl::Formula phi =
      ltl::parse("G (a -> X X X b) && G (c -> X X d) && G (b -> F c)");
  EXPECT_FALSE(automata::ltl_to_nbw_bounded(phi, 2).has_value());
  EXPECT_FALSE(automata::ucw_for_bounded(phi, 2).has_value());
  // The unbounded entry point still succeeds.
  EXPECT_GT(automata::ltl_to_nbw(phi).num_states(), 2u);
}

TEST(Prune, KeepsLanguage) {
  const ltl::Formula phi = ltl::parse("F (a && X a)");
  const auto nbw = automata::ltl_to_nbw(phi);  // ltl_to_nbw already prunes
  EXPECT_TRUE(automata::accepts_lasso(nbw, make_lasso({{}, {"a"}, {"a"}, {}}, 3)));
  EXPECT_FALSE(automata::accepts_lasso(nbw, make_lasso({{"a"}, {}}, 1)));
}

TEST(Prune, EmptyLanguageCollapses) {
  automata::Buchi b;
  b.initial = 0;
  b.transitions.assign(2, {});
  b.accepting = {false, true};
  // Accepting state unreachable; no cycles at all.
  b.transitions[1].push_back({automata::Cube{}, 1});
  const auto pruned = automata::prune(b);
  EXPECT_EQ(pruned.num_states(), 1u);
  EXPECT_FALSE(automata::accepts_lasso(pruned, make_lasso({{}}, 0)));
}

// The central property test: GPVW agrees with the trace semantics on a
// formula family x lasso family grid.
class GpvwSemanticsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GpvwSemanticsTest, AgreesWithTraceSemantics) {
  const ltl::Formula f = ltl::parse(GetParam());
  const auto nbw = automata::ltl_to_nbw(f);

  speccc::util::Rng rng(0xbadc0ffeULL);
  for (int trial = 0; trial < 80; ++trial) {
    const std::size_t len = 1 + rng.below(6);
    const std::size_t loop = rng.below(len);
    std::vector<ltl::Valuation> steps(len);
    for (auto& step : steps) {
      for (const char* name : {"a", "b", "c"}) {
        if (rng.chance(1, 2)) step.insert(name);
      }
    }
    const ltl::Lasso w(steps, loop);
    EXPECT_EQ(ltl::evaluate(f, w), automata::accepts_lasso(nbw, w))
        << "formula " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GpvwSemanticsTest,
    ::testing::Values("a", "!a", "X a", "X X b", "F a", "G a", "a U b",
                      "a W b", "a R b", "G F a", "F G a", "G (a -> F b)",
                      "G (a -> X X b)", "(a U b) U c", "G (a -> (b W c))",
                      "F (a && X (b U c))", "G (a -> X b) && F c",
                      "!(a U b) || F c", "G ((a && !b) -> X (b R c))",
                      "a U (b U c)", "G (a <-> X b)"));

}  // namespace
