// Tests for the diagnosis engine (diag/diag.hpp): deletion-based MUS
// shrinking and the rotation/grow MCS enumeration, over both oracles --
// sat_group_oracle (incremental assumption cores, brute-force verified)
// and synthesis_oracle (planted-fault specs where the ground-truth MUSes
// are known by construction) -- plus pinned end-to-end pipeline diagnoses
// of the hand-written multi-fault specs in examples/specs/faults/.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "corpus/loaders.hpp"
#include "diag/diag.hpp"
#include "difftest/harness.hpp"
#include "difftest/oracle.hpp"
#include "sat/solver.hpp"
#include "util/diagnostics.hpp"

namespace diag = speccc::diag;
namespace difftest = speccc::difftest;
namespace sat = speccc::sat;

namespace {

using Index = std::size_t;
using Subset = std::vector<Index>;

Subset without(const Subset& set, Index element) {
  Subset out;
  for (Index e : set) {
    if (e != element) out.push_back(e);
  }
  return out;
}

Subset universe_of(std::size_t n) {
  Subset out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

// A group CNF instance: groups of clauses enabled per-group by selector
// assumptions, the classic MUS-extraction encoding.
struct GroupInstance {
  std::vector<std::vector<sat::Clause>> groups;
  sat::Solver solver;
  std::vector<sat::Lit> selectors;

  explicit GroupInstance(std::vector<std::vector<sat::Clause>> g, int num_vars)
      : groups(std::move(g)) {
    for (int v = 0; v < num_vars; ++v) solver.new_var();
    for (const auto& group : groups) {
      const sat::Lit selector(solver.new_var(), true);
      selectors.push_back(selector);
      for (sat::Clause clause : group) {
        clause.push_back(selector.negated());  // selector -> clause
        solver.add_clause(std::move(clause));
      }
    }
  }
};

// Independent consistency check: a fresh solver with only the chosen
// groups' clauses asserted outright -- no selectors, no shared learned
// clauses -- so the incremental oracle is verified against first
// principles, not against itself.
bool brute_force_consistent(const std::vector<std::vector<sat::Clause>>& groups,
                            int num_vars, const Subset& subset) {
  sat::Solver fresh;
  for (int v = 0; v < num_vars; ++v) fresh.new_var();
  for (Index g : subset) {
    for (const sat::Clause& clause : groups[g]) fresh.add_clause(clause);
  }
  return fresh.solve() == sat::Result::kSat;
}

sat::Lit lit(int var, bool positive) { return sat::Lit(var, positive); }

TEST(Diagnose, ConsistentGroupsYieldAnEmptyDiagnosis) {
  // x, y, x || y: jointly satisfiable.
  GroupInstance inst({{{lit(0, true)}}, {{lit(1, true)}},
                      {{lit(0, true), lit(1, true)}}},
                     2);
  const auto oracle = diag::sat_group_oracle(inst.solver, inst.selectors);
  const diag::Diagnosis d = diag::diagnose(inst.groups.size(), oracle);
  EXPECT_TRUE(d.consistent());
  EXPECT_TRUE(d.mus.empty());
  EXPECT_TRUE(d.correction_sets.empty());
  EXPECT_EQ(d.checks, 1u);  // one universe query settles it
}

TEST(Diagnose, PinsTheContradictoryGroupPair) {
  // Groups: {x}, {!x}, {y}, {x || y}. The only MUS is {0, 1}; the two
  // repairs are dropping either unit.
  GroupInstance inst({{{lit(0, true)}},
                      {{lit(0, false)}},
                      {{lit(1, true)}},
                      {{lit(0, true), lit(1, true)}}},
                     2);
  const auto oracle = diag::sat_group_oracle(inst.solver, inst.selectors);
  const diag::Diagnosis d = diag::diagnose(inst.groups.size(), oracle);
  EXPECT_FALSE(d.consistent());
  EXPECT_EQ(d.mus, (Subset{0, 1}));
  EXPECT_EQ(d.correction_sets,
            (std::vector<Subset>{{0}, {1}}));
}

TEST(Diagnose, CoreJumpsPruneInnocentGroups) {
  // Eight innocent tautologies around one contradiction: the solver's
  // assumption core should let the shrinker jump straight past the
  // bystanders instead of deleting them one by one.
  std::vector<std::vector<sat::Clause>> groups;
  for (int v = 1; v <= 8; ++v) groups.push_back({{lit(v, true)}});
  groups.push_back({{lit(0, true)}});
  groups.push_back({{lit(0, false)}});
  GroupInstance inst(std::move(groups), 9);
  const auto oracle = diag::sat_group_oracle(inst.solver, inst.selectors);
  diag::Options options;
  options.max_correction_sets = 0;  // measure the MUS extraction alone
  const diag::Diagnosis d = diag::diagnose(inst.groups.size(), oracle, options);
  EXPECT_EQ(d.mus, (Subset{8, 9}));
  // 1 universe query + at most 2 per MUS element; without core jumps the
  // deletion loop alone would need 10+ calls.
  EXPECT_LE(d.checks, 1u + 2u * d.mus.size() + 2u);
}

TEST(Diagnose, RandomGroupInstancesSatisfyTheMusAndMcsProperties) {
  // Random group CNF sweep, every diagnosis verified against a fresh
  // non-incremental solver: the MUS is inconsistent and minimal, every
  // MCS's removal restores consistency and is minimal.
  int inconsistent_seen = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    speccc::util::Rng rng(seed * 0x9e3779b97f4a7c15ULL);
    const int num_vars = rng.range(3, 5);
    const int num_groups = rng.range(3, 8);
    std::vector<std::vector<sat::Clause>> groups;
    for (int g = 0; g < num_groups; ++g) {
      std::vector<sat::Clause> group;
      const int num_clauses = rng.range(1, 2);
      for (int c = 0; c < num_clauses; ++c) {
        sat::Clause clause;
        const int width = rng.range(1, 3);
        for (int k = 0; k < width; ++k) {
          clause.push_back(lit(rng.range(0, num_vars - 1), rng.chance(1, 2)));
        }
        group.push_back(std::move(clause));
      }
      groups.push_back(std::move(group));
    }

    GroupInstance inst(groups, num_vars);
    const auto oracle = diag::sat_group_oracle(inst.solver, inst.selectors);
    diag::Options options;
    options.max_correction_sets = 3;
    const diag::Diagnosis d =
        diag::diagnose(groups.size(), oracle, options);
    const Subset universe = universe_of(groups.size());

    if (d.consistent()) {
      EXPECT_TRUE(brute_force_consistent(groups, num_vars, universe))
          << "seed " << seed;
      continue;
    }
    ++inconsistent_seen;
    EXPECT_FALSE(brute_force_consistent(groups, num_vars, d.mus))
        << "seed " << seed << ": reported MUS is consistent";
    for (Index e : d.mus) {
      EXPECT_TRUE(brute_force_consistent(groups, num_vars, without(d.mus, e)))
          << "seed " << seed << ": MUS not minimal at element " << e;
    }
    EXPECT_FALSE(d.correction_sets.empty()) << "seed " << seed;
    for (const Subset& mcs : d.correction_sets) {
      Subset rest = universe;
      for (Index e : mcs) rest = without(rest, e);
      EXPECT_TRUE(brute_force_consistent(groups, num_vars, rest))
          << "seed " << seed << ": removing the MCS does not repair";
      for (Index e : mcs) {
        // Minimality: putting any MCS element back breaks it again.
        Subset back = rest;
        back.insert(std::lower_bound(back.begin(), back.end(), e), e);
        EXPECT_FALSE(brute_force_consistent(groups, num_vars, back))
            << "seed " << seed << ": MCS not minimal at element " << e;
      }
    }
  }
  // The sweep must actually exercise the inconsistent path to have teeth.
  EXPECT_GE(inconsistent_seen, 5);
}

TEST(SynthesisOracle, PlantedFaultSpecsShrinkToExactlyOnePlantedFault) {
  // Ground-truth workload: every planted fault uses fresh vocabulary
  // disjoint from the base spec and the other faults, so each MUS of the
  // spec is exactly one planted index set (difftest/random.hpp). The
  // heavy sweep lives in difftest_test; this is the fast tier-1 slice.
  for (const auto& [seed, index] : {std::pair<std::uint64_t, int>{1, 0},
                                    {1, 1},
                                    {2, 0},
                                    {2, 1}}) {
    const difftest::PlantedSpec spec =
        difftest::generated_planted_spec(seed, index);
    ASSERT_GE(spec.faults.size(), 2u);
    const difftest::SpecCase sc = difftest::build_spec_case(spec.requirements);
    const auto oracle = diag::synthesis_oracle(sc.requirements, sc.signature);

    const Subset universe = universe_of(sc.requirements.size());
    const auto full = oracle(universe);
    ASSERT_TRUE(full.has_value())
        << spec.name << ": planted spec not inconsistent";

    std::size_t checks = 0;
    const Subset mus = diag::shrink_mus(*full, oracle, checks);
    EXPECT_NE(std::find(spec.faults.begin(), spec.faults.end(), mus),
              spec.faults.end())
        << spec.name << ": MUS is not a planted fault";
    for (Index e : mus) {
      EXPECT_FALSE(oracle(without(mus, e)).has_value())
          << spec.name << ": MUS not minimal at element " << e;
    }
  }
}

TEST(SynthesisOracle, CorrectionSetRemovalRestoresConsistency) {
  const difftest::PlantedSpec spec = difftest::generated_planted_spec(3, 0);
  const difftest::SpecCase sc = difftest::build_spec_case(spec.requirements);
  const auto oracle = diag::synthesis_oracle(sc.requirements, sc.signature);
  const Subset universe = universe_of(sc.requirements.size());
  ASSERT_TRUE(oracle(universe).has_value());

  std::size_t checks = 0;
  const auto sets = diag::correction_sets(universe, oracle, 2, checks);
  ASSERT_FALSE(sets.empty());
  for (const Subset& mcs : sets) {
    Subset rest = universe;
    for (Index e : mcs) rest = without(rest, e);
    EXPECT_FALSE(oracle(rest).has_value())
        << spec.name << ": MCS removal must restore consistency";
  }
}

// ---------------------------------------------------------------------------
// Pinned end-to-end diagnoses of the hand-written multi-fault specs. The
// sentences mirror examples/specs/faults/*.txt (which scripts/check.sh
// smokes through the CLI); the pins here are the library-level contract.

std::vector<std::string> ids_of(const speccc::core::PipelineResult& result,
                                const Subset& indices) {
  std::vector<std::string> out;
  for (Index i : indices) {
    out.push_back(result.translation.requirements.at(i).id);
  }
  return out;
}

speccc::core::PipelineResult diagnose_spec(const std::string& name,
                                           const std::string& document) {
  speccc::core::PipelineOptions options;
  options.localization.max_correction_sets = 4;
  const speccc::core::Pipeline pipeline(options);
  std::istringstream in(document);
  return pipeline.run(name, speccc::corpus::load_requirements(in));
}

TEST(PipelineDiagnosis, PinsThePumpInterlockDiagnosis) {
  const auto result = diagnose_spec("pump_interlock",
      "R1: If the start button is pressed, the pump is activated.\n"
      "R2: If the pressure sensor is detected, the alarm is raised.\n"
      "R3: If the start button is pressed, the status light is updated.\n"
      "R4: If the leak detector is detected, the drain valve is activated.\n"
      "R5: If the pressure sensor is detected, the alarm is not raised.\n"
      "R6: When the mode button is pressed, eventually the monitor light is "
      "activated.\n"
      "R7: If the leak detector is detected, the drain valve is not "
      "activated.\n");
  EXPECT_FALSE(result.consistent);
  ASSERT_TRUE(result.refinement.has_value());
  const auto& loc = result.refinement->localization;
  EXPECT_EQ(ids_of(result, loc.core),
            (std::vector<std::string>{"R4", "R7"}));
  ASSERT_EQ(loc.correction_sets.size(), 4u);
  EXPECT_EQ(ids_of(result, loc.correction_sets[0]),
            (std::vector<std::string>{"R2", "R4"}));
  EXPECT_EQ(ids_of(result, loc.correction_sets[1]),
            (std::vector<std::string>{"R2", "R7"}));
  EXPECT_EQ(ids_of(result, loc.correction_sets[2]),
            (std::vector<std::string>{"R4", "R5"}));
  EXPECT_EQ(ids_of(result, loc.correction_sets[3]),
            (std::vector<std::string>{"R5", "R7"}));
}

TEST(PipelineDiagnosis, PinsTheReservationDiagnosis) {
  // Fault A is the 3-sentence chain R1+R2+R3 (pairwise consistent,
  // jointly inconsistent); fault B the direct contradiction R4 vs R5.
  const auto result = diagnose_spec("reservation",
      "R1: If the booking request is received, the ticket is issued.\n"
      "R2: If the ticket is issued, the confirmation message is sent.\n"
      "R3: If the booking request is received, the confirmation message is "
      "not sent.\n"
      "R4: If the cancel button is pressed, the refund notice is displayed.\n"
      "R5: If the cancel button is pressed, the refund notice is not "
      "displayed.\n"
      "R6: If the payment card is detected, the receipt record is stored.\n");
  EXPECT_FALSE(result.consistent);
  ASSERT_TRUE(result.refinement.has_value());
  const auto& loc = result.refinement->localization;
  EXPECT_EQ(ids_of(result, loc.core),
            (std::vector<std::string>{"R4", "R5"}));
  ASSERT_EQ(loc.correction_sets.size(), 4u);
  EXPECT_EQ(ids_of(result, loc.correction_sets[0]),
            (std::vector<std::string>{"R1", "R5"}));
  EXPECT_EQ(ids_of(result, loc.correction_sets[1]),
            (std::vector<std::string>{"R2", "R5"}));
  EXPECT_EQ(ids_of(result, loc.correction_sets[2]),
            (std::vector<std::string>{"R3", "R4"}));
  EXPECT_EQ(ids_of(result, loc.correction_sets[3]),
            (std::vector<std::string>{"R3", "R5"}));
}

TEST(PipelineDiagnosis, PinsTheVentMonitorDiagnosis) {
  const auto result = diagnose_spec("vent_monitor",
      "R1: If the heat sensor is detected, the cooling fan is activated.\n"
      "R2: If the heat sensor is detected, the cooling fan is not "
      "activated.\n"
      "R3: If the test button is pressed, the status report is displayed in "
      "10 seconds.\n"
      "R4: When the power switch is pressed, eventually the standby light is "
      "activated.\n"
      "R5: If the smoke detector is detected, the vent flap is activated.\n"
      "R6: If the smoke detector is detected, the vent flap is not "
      "activated.\n");
  EXPECT_FALSE(result.consistent);
  ASSERT_TRUE(result.refinement.has_value());
  const auto& loc = result.refinement->localization;
  EXPECT_EQ(ids_of(result, loc.core),
            (std::vector<std::string>{"R5", "R6"}));
  // The rotation search found three distinct repairs here (cap is 4).
  ASSERT_EQ(loc.correction_sets.size(), 3u);
  EXPECT_EQ(ids_of(result, loc.correction_sets[0]),
            (std::vector<std::string>{"R1", "R6"}));
  EXPECT_EQ(ids_of(result, loc.correction_sets[1]),
            (std::vector<std::string>{"R2", "R5"}));
  EXPECT_EQ(ids_of(result, loc.correction_sets[2]),
            (std::vector<std::string>{"R2", "R6"}));
}

TEST(PipelineDiagnosis, ConsistentSpecCarriesNoDiagnosis) {
  const auto result = diagnose_spec("all_fine",
      "R1: If the start button is pressed, the pump is activated.\n"
      "R2: If the stop button is pressed, the status light is updated.\n");
  EXPECT_TRUE(result.consistent);
  EXPECT_FALSE(result.refinement.has_value());
}

}  // namespace
