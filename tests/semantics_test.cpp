// Tests for semantic reasoning (paper Section IV-D, Algorithm 1) and the
// proposition-reduction decisions.
#include <gtest/gtest.h>

#include "nlp/syntax.hpp"
#include "semantics/antonyms.hpp"
#include "semantics/reasoning.hpp"
#include "util/diagnostics.hpp"

namespace nlp = speccc::nlp;
namespace sem = speccc::semantics;

namespace {

const nlp::Lexicon& lex() {
  static nlp::Lexicon lexicon = nlp::Lexicon::builtin();
  return lexicon;
}

std::vector<nlp::Sentence> parse_all(const std::vector<std::string>& texts) {
  std::vector<nlp::Sentence> out;
  for (const auto& t : texts) out.push_back(nlp::parse_sentence(t, lex()));
  return out;
}

TEST(AntonymDictionary, PairsAndPolarity) {
  sem::AntonymDictionary dict;
  dict.add_pair("available", "unavailable");
  EXPECT_TRUE(dict.contains("available"));
  EXPECT_EQ(dict.polarity("available"), sem::Polarity::kPositive);
  EXPECT_EQ(dict.polarity("unavailable"), sem::Polarity::kNegative);
  EXPECT_EQ(dict.polarity("ready"), sem::Polarity::kUnknown);
  EXPECT_TRUE(dict.antonyms("available").count("unavailable") > 0);
  EXPECT_EQ(dict.positive_form("unavailable"), "available");
}

TEST(AntonymDictionary, MultiplePartnersAllowed) {
  sem::AntonymDictionary dict;
  dict.add_pair("available", "unavailable");
  dict.add_pair("available", "lost");
  EXPECT_EQ(dict.antonyms("available").size(), 2u);
  EXPECT_EQ(dict.positive_form("lost"), "available");
}

TEST(AntonymDictionary, ContradictoryPolarityRejected) {
  sem::AntonymDictionary dict;
  dict.add_pair("high", "low");
  EXPECT_THROW(dict.add_pair("low", "high"), speccc::util::InvalidInputError);
  EXPECT_THROW(dict.add_pair("on", "on"), speccc::util::InvalidInputError);
}

TEST(Reasoning, PaperExampleFindsAvailablePair) {
  // Req-32/44: pulse wave depends on both available and unavailable.
  const auto spec = parse_all({
      "If pulse wave or arterial line is available, and cuff is selected, "
      "corroboration is triggered.",
      "If pulse wave and arterial line are unavailable, and cuff is "
      "selected, manual mode is started.",
  });
  const auto result = sem::reason(spec, sem::AntonymDictionary::builtin());
  ASSERT_FALSE(result.pairs.empty());
  EXPECT_NE(std::find(result.pairs.begin(), result.pairs.end(),
                      std::make_pair(std::string("available"),
                                     std::string("unavailable"))),
            result.pairs.end());
  // Both words are colored blue.
  EXPECT_EQ(result.wordset.at("available").color, sem::Color::kBlue);
  EXPECT_EQ(result.wordset.at("unavailable").color, sem::Color::kBlue);
}

TEST(Reasoning, SingletonGroupsStayGreen) {
  // Only one candidate for the subject: Algorithm 1 skips the group.
  const auto spec = parse_all({"The cuff is available."});
  const auto result = sem::reason(spec, sem::AntonymDictionary::builtin());
  ASSERT_TRUE(result.wordset.count("available") > 0);
  EXPECT_EQ(result.wordset.at("available").color, sem::Color::kGreen);
  EXPECT_TRUE(result.pairs.empty());
}

TEST(Reasoning, OnlineResolverCalledForUnknownWords) {
  // Words missing from the dictionary trigger the injectable resolver
  // (Algorithm 1's online(w)).
  sem::AntonymDictionary empty_dict;
  const auto spec = parse_all({
      "The valve is open.",
      "The valve is closed.",
  });
  std::size_t calls = 0;
  const sem::AntonymResolver online = [&calls](const std::string& w) {
    ++calls;
    if (w == "open") return std::set<std::string>{"closed"};
    if (w == "closed") return std::set<std::string>{"open"};
    return std::set<std::string>{};
  };
  const auto result = sem::reason(spec, empty_dict, online);
  EXPECT_GT(result.resolver_calls, 0u);
  EXPECT_EQ(result.resolver_calls, calls);
  EXPECT_EQ(result.wordset.at("open").color, sem::Color::kBlue);
}

TEST(Reasoning, NoResolverNoPairs) {
  sem::AntonymDictionary empty_dict;
  const auto spec = parse_all({
      "The valve is open.",
      "The valve is closed.",
  });
  const auto result = sem::reason(spec, empty_dict, nullptr);
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_EQ(result.wordset.at("open").color, sem::Color::kGreen);
}

TEST(Reducer, DictionaryPolarityFolds) {
  const auto spec = parse_all({"The pulse wave is unavailable."});
  const auto dict = sem::AntonymDictionary::builtin();
  sem::PropositionReducer reducer(sem::reason(spec, dict), dict);

  const auto pos = reducer.decide("pulse_wave", "available");
  EXPECT_TRUE(pos.fold);
  EXPECT_FALSE(pos.negate);

  const auto neg = reducer.decide("pulse_wave", "unavailable");
  EXPECT_TRUE(neg.fold);
  EXPECT_TRUE(neg.negate);
  EXPECT_TRUE(neg.by_polarity_only);  // partner never occurred in the spec
}

TEST(Reducer, UnknownWordsDoNotFold) {
  const auto spec = parse_all({"The infusate is ready."});
  const auto dict = sem::AntonymDictionary::builtin();
  sem::PropositionReducer reducer(sem::reason(spec, dict), dict);
  const auto r = reducer.decide("infusate", "ready");
  EXPECT_FALSE(r.fold);
}

TEST(Reducer, BluePairedWordsWithoutPolarityFoldBySecondElement) {
  // Custom dictionary-free pair found via the resolver: the pair ordering
  // decides the sign.
  sem::AntonymDictionary empty_dict;
  const auto spec = parse_all({
      "The door is open.",
      "The door is closed.",
  });
  const sem::AntonymResolver online = [](const std::string& w) {
    if (w == "open") return std::set<std::string>{"closed"};
    if (w == "closed") return std::set<std::string>{"open"};
    return std::set<std::string>{};
  };
  sem::PropositionReducer reducer(sem::reason(spec, empty_dict, online),
                                  empty_dict);
  const auto open = reducer.decide("door", "open");
  const auto closed = reducer.decide("door", "closed");
  EXPECT_TRUE(open.fold);
  EXPECT_TRUE(closed.fold);
  // Exactly one of the two is the negative form.
  EXPECT_NE(open.negate, closed.negate);
}

}  // namespace
