// Tests for the bit-blasting layer: arithmetic circuits against native
// integer arithmetic, and the bound-search minimizer.
#include <gtest/gtest.h>

#include "smt/bitblast.hpp"
#include "util/diagnostics.hpp"

namespace smt = speccc::smt;
namespace sat = speccc::sat;

namespace {

TEST(Smt, ConstantsRoundTrip) {
  sat::Solver solver;
  smt::Builder b(solver);
  const smt::BitVec c = b.constant(42, 8);
  ASSERT_EQ(b.solve(), sat::Result::kSat);
  EXPECT_EQ(b.model_value(c), 42u);
}

TEST(Smt, AdditionMatchesNative) {
  sat::Solver solver;
  smt::Builder b(solver);
  const smt::BitVec x = b.var(6);
  const smt::BitVec y = b.var(6);
  b.require_eq(x, b.constant(37, 6));
  b.require_eq(y, b.constant(25, 6));
  const smt::BitVec sum = b.add(x, y);
  ASSERT_EQ(b.solve(), sat::Result::kSat);
  EXPECT_EQ(b.model_value(sum), 62u);
}

TEST(Smt, MultiplicationMatchesNative) {
  sat::Solver solver;
  smt::Builder b(solver);
  const smt::BitVec x = b.var(6);
  const smt::BitVec y = b.var(6);
  b.require_eq(x, b.constant(13, 6));
  b.require_eq(y, b.constant(11, 6));
  const smt::BitVec prod = b.mul(x, y);
  ASSERT_EQ(b.solve(), sat::Result::kSat);
  EXPECT_EQ(b.model_value(prod), 143u);
}

TEST(Smt, ComparatorSemantics) {
  sat::Solver solver;
  smt::Builder b(solver);
  const smt::BitVec x = b.constant(9, 5);
  const smt::BitVec y = b.constant(17, 5);
  b.require(b.ult(x, y));
  b.require(b.ule(x, x));
  b.require(b.ult(y, x).negated());
  EXPECT_EQ(b.solve(), sat::Result::kSat);
}

TEST(Smt, SolveForFactorization) {
  // Find x, y >= 2 with x * y == 91 (7 * 13).
  sat::Solver solver;
  smt::Builder b(solver);
  const smt::BitVec x = b.var(5);
  const smt::BitVec y = b.var(5);
  b.require(b.ule(b.constant(2, 5), x));
  b.require(b.ule(b.constant(2, 5), y));
  b.require_eq(b.mul(x, y), b.constant(91, 10));
  ASSERT_EQ(b.solve(), sat::Result::kSat);
  const std::uint64_t xv = b.model_value(x);
  const std::uint64_t yv = b.model_value(y);
  EXPECT_EQ(xv * yv, 91u);
  EXPECT_GE(xv, 2u);
  EXPECT_GE(yv, 2u);
}

TEST(Smt, PrimeHasNoFactorization) {
  sat::Solver solver;
  smt::Builder b(solver);
  const smt::BitVec x = b.var(5);
  const smt::BitVec y = b.var(5);
  b.require(b.ule(b.constant(2, 5), x));
  b.require(b.ule(b.constant(2, 5), y));
  b.require_eq(b.mul(x, y), b.constant(97, 10));
  EXPECT_EQ(b.solve(), sat::Result::kUnsat);
}

TEST(Smt, MinimizeFindsGlobalMinimum) {
  // Minimize x subject to x * x >= 20, x <= 31: answer 5.
  sat::Solver solver;
  smt::Builder b(solver);
  const smt::BitVec x = b.var(5);
  b.require(b.ule(b.constant(20, 10), b.mul(x, x)));
  const auto best = b.minimize(x);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 5u);
  EXPECT_EQ(b.model_value(x), 5u);
}

TEST(Smt, MinimizeOnUnsatReturnsNullopt) {
  sat::Solver solver;
  smt::Builder b(solver);
  const smt::BitVec x = b.var(4);
  b.require(b.ult(x, b.constant(3, 4)));
  b.require(b.ule(b.constant(7, 4), x));
  EXPECT_FALSE(b.minimize(x).has_value());
}

TEST(Smt, SelectActsAsMux) {
  sat::Solver solver;
  smt::Builder b(solver);
  const smt::Bit sel = b.fresh();
  const smt::BitVec v = b.select(sel, b.constant(10, 4), b.constant(3, 4));
  b.require(sel);
  ASSERT_EQ(b.solve(), sat::Result::kSat);
  EXPECT_EQ(b.model_value(v), 10u);
}

TEST(Smt, TseitinLaneAgreesWithCutMap) {
  // The same factorization instance through both encoder lanes: verdicts
  // agree, and the Tseitin model is just as real.
  for (const auto encoder : {speccc::aig::CnfOptions::Encoder::kCutMap,
                             speccc::aig::CnfOptions::Encoder::kTseitin}) {
    smt::BuilderOptions options;
    options.cnf.encoder = encoder;
    {
      sat::Solver solver;
      smt::Builder b(solver, options);
      const smt::BitVec x = b.var(5);
      const smt::BitVec y = b.var(5);
      b.require(b.ule(b.constant(2, 5), x));
      b.require(b.ule(b.constant(2, 5), y));
      b.require_eq(b.mul(x, y), b.constant(91, 10));
      ASSERT_EQ(b.solve(), sat::Result::kSat);
      EXPECT_EQ(b.model_value(x) * b.model_value(y), 91u);
    }
    {
      sat::Solver solver;
      smt::Builder b(solver, options);
      const smt::BitVec x = b.var(5);
      const smt::BitVec y = b.var(5);
      b.require(b.ule(b.constant(2, 5), x));
      b.require(b.ule(b.constant(2, 5), y));
      b.require_eq(b.mul(x, y), b.constant(97, 10));
      EXPECT_EQ(b.solve(), sat::Result::kUnsat);
    }
  }
}

TEST(Smt, CutMapEmitsSmallerCnfThanTseitinOnMultipliers) {
  // The headline economy of the cut mapper (and the PR acceptance bar):
  // at least 25% fewer clauses than per-gate Tseitin on the multiplier
  // family.
  const auto encode = [](speccc::aig::CnfOptions::Encoder encoder) {
    sat::Solver solver;
    smt::BuilderOptions options;
    options.cnf.encoder = encoder;
    smt::Builder b(solver, options);
    const smt::BitVec x = b.var(8);
    const smt::BitVec y = b.var(8);
    b.require_eq(b.mul(x, y), b.constant(12345, 16));
    b.flush();
    return b.cnf_stats();
  };
  const speccc::aig::CnfStats mapped =
      encode(speccc::aig::CnfOptions::Encoder::kCutMap);
  const speccc::aig::CnfStats tseitin =
      encode(speccc::aig::CnfOptions::Encoder::kTseitin);
  EXPECT_LE(mapped.clauses * 4, tseitin.clauses * 3)
      << "mapped " << mapped.clauses << " vs tseitin " << tseitin.clauses;
  EXPECT_LT(mapped.vars, tseitin.vars);
}

TEST(Smt, IncrementalFlushMapsOnlyNewCones) {
  // The descending-bound contract: a second solve() with one more
  // comparator re-maps only the fresh cone. Flush count advances and the
  // incremental clause growth is far below the cost of a full re-encode.
  sat::Solver solver;
  smt::Builder b(solver);
  const smt::BitVec x = b.var(8);
  const smt::BitVec y = b.var(8);
  const smt::BitVec prod = b.mul(x, y);
  b.require_eq(prod, b.constant(143, 16));
  ASSERT_EQ(b.solve(), sat::Result::kSat);
  const std::size_t clauses_after_first = b.cnf_stats().clauses;
  const std::size_t flushes_after_first = b.cnf_stats().flushes;
  b.require(b.ule_const(x, 12));
  ASSERT_EQ(b.solve(), sat::Result::kSat);
  EXPECT_GT(b.cnf_stats().flushes, flushes_after_first);
  const std::size_t growth = b.cnf_stats().clauses - clauses_after_first;
  EXPECT_GT(growth, 0u);
  EXPECT_LT(growth, clauses_after_first / 2)
      << "incremental flush re-emitted most of the circuit";
  EXPECT_EQ(b.model_value(x) * b.model_value(y), 143u);
  EXPECT_LE(b.model_value(x), 12u);
}

// Property sweep: circuit arithmetic equals native arithmetic for a grid of
// operand values.
class SmtArithmeticTest : public ::testing::TestWithParam<int> {};

TEST_P(SmtArithmeticTest, AddMulCompareAgainstNative) {
  speccc::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const std::uint64_t a = rng.below(200);
  const std::uint64_t bv = rng.below(200);

  sat::Solver solver;
  smt::Builder b(solver);
  const smt::BitVec x = b.constant(a, 9);
  const smt::BitVec y = b.constant(bv, 9);
  const smt::BitVec sum = b.add(x, y);
  const smt::BitVec prod = b.mul(x, y);
  const smt::Bit lt = b.ult(x, y);
  ASSERT_EQ(b.solve(), sat::Result::kSat);
  EXPECT_EQ(b.model_value(sum), a + bv);
  EXPECT_EQ(b.model_value(prod), a * bv);
  const bool lt_val = b.value(lt);
  EXPECT_EQ(lt_val, a < bv);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SmtArithmeticTest, ::testing::Range(0, 25));

}  // namespace
