// Tests for the NL -> LTL translator, anchored by the paper's appendix: all
// thirty CARA working-mode requirements must translate to the published
// formulas (modulo documented normalizations, see corpus/cara.hpp).
#include <gtest/gtest.h>

#include "corpus/cara.hpp"
#include "ltl/formula.hpp"
#include "nlp/lexicon.hpp"
#include "semantics/antonyms.hpp"
#include "translate/translator.hpp"
#include "util/diagnostics.hpp"

namespace translate = speccc::translate;
namespace ltl = speccc::ltl;
using speccc::corpus::GoldenRequirement;

namespace {

const speccc::nlp::Lexicon& lex() {
  static auto lexicon = speccc::nlp::Lexicon::builtin();
  return lexicon;
}
const speccc::semantics::AntonymDictionary& dict() {
  static auto dictionary = speccc::semantics::AntonymDictionary::builtin();
  return dictionary;
}

translate::TranslationResult translate_texts(
    const std::vector<translate::RequirementText>& texts,
    translate::Options options = {},
    const translate::TickMapper& mapper = nullptr) {
  const translate::Translator tr(lex(), dict(), options);
  return tr.translate(texts, mapper);
}

std::string translate_one(const std::string& text,
                          translate::Options options = {}) {
  const auto result = translate_texts({{"t", text}}, options);
  return ltl::to_string(result.requirements[0].formula);
}

// ---- The golden corpus: raw (pre-abstraction) forms -------------------------

class CaraGoldenTest : public ::testing::TestWithParam<GoldenRequirement> {};

TEST_P(CaraGoldenTest, RawTranslationMatchesAppendix) {
  const GoldenRequirement& golden = GetParam();
  // Translate the whole corpus (semantic reasoning needs global context),
  // then check this requirement.
  const auto result = translate_texts(speccc::corpus::cara_working_mode_texts());
  const auto it = std::find_if(
      result.requirements.begin(), result.requirements.end(),
      [&golden](const auto& r) { return r.id == golden.id; });
  ASSERT_NE(it, result.requirements.end());
  const std::string expected =
      golden.expected_raw.empty() && golden.id != "Req-28" &&
              golden.id != "Req-42"
          ? golden.expected
          : golden.expected_raw;
  if (!expected.empty()) {
    EXPECT_EQ(ltl::to_string(it->formula), expected) << golden.text;
  }
  // Timed requirements harvest their tick counts.
  if (golden.id == "Req-08") {
    EXPECT_EQ(it->delays, std::vector<unsigned>{3});
  }
  if (golden.id == "Req-28") {
    EXPECT_EQ(it->delays, std::vector<unsigned>{180});
  }
  if (golden.id == "Req-42") {
    EXPECT_EQ(it->delays, std::vector<unsigned>{60});
  }
}

INSTANTIATE_TEST_SUITE_P(
    Appendix, CaraGoldenTest,
    ::testing::ValuesIn(speccc::corpus::cara_working_mode()),
    [](const ::testing::TestParamInfo<GoldenRequirement>& info) {
      std::string name = info.param.id;
      for (char& c : name) {
        if (c == '-' || c == '.') c = '_';
      }
      return name;
    });

TEST(CaraGolden, AbstractedFormsMatchAppendix) {
  // The appendix lists the formulas after abstraction with d = 60 (the
  // paper's Section IV-E example): Req-08 loses its X's, Req-28 keeps 3,
  // Req-42 keeps 1.
  const translate::TickMapper mapper = [](unsigned ticks) -> unsigned {
    switch (ticks) {
      case 3: return 0;
      case 180: return 3;
      case 60: return 1;
      default: return ticks;
    }
  };
  const auto result =
      translate_texts(speccc::corpus::cara_working_mode_texts(), {}, mapper);
  for (const auto& golden : speccc::corpus::cara_working_mode()) {
    const auto it = std::find_if(
        result.requirements.begin(), result.requirements.end(),
        [&golden](const auto& r) { return r.id == golden.id; });
    ASSERT_NE(it, result.requirements.end());
    EXPECT_EQ(ltl::to_string(it->formula), golden.expected) << golden.id;
  }
}

// ---- Feature-level translation tests ----------------------------------------

TEST(Translator, NextModeStrictEmitsX) {
  translate::Options strict;
  strict.next_mode = translate::NextMode::kStrict;
  EXPECT_EQ(translate_one("If the cuff is selected, next the alarm is issued.",
                          strict),
            "G (select_cuff -> X issue_alarm)");
  // Appendix mode drops the X (default).
  EXPECT_EQ(translate_one("If the cuff is selected, next the alarm is issued."),
            "G (select_cuff -> issue_alarm)");
}

TEST(Translator, SemanticReasoningToggle) {
  translate::Options no_reasoning;
  no_reasoning.semantic_reasoning = false;
  // Without reduction the complements stay in the proposition names.
  EXPECT_EQ(translate_one("If the cuff is available, the alarm is issued.",
                          no_reasoning),
            "G (available_cuff -> issue_alarm)");
  EXPECT_EQ(translate_one("If the cuff is available, the alarm is issued."),
            "G (cuff -> issue_alarm)");
}

TEST(Translator, ReductionCountsPropositions) {
  // Section IV-D's point: reasoning reduces the proposition count.
  const std::vector<translate::RequirementText> texts = {
      {"a", "If the pulse wave is available, the alarm is issued."},
      {"b", "If the pulse wave is unavailable, the alarm is silenced."},
  };
  translate::Options no_reasoning;
  no_reasoning.semantic_reasoning = false;
  const auto with = translate_texts(texts);
  const auto without = translate_texts(texts, no_reasoning);
  EXPECT_LT(with.propositions.size(), without.propositions.size());
  EXPECT_TRUE(with.propositions.count("pulse_wave") > 0);
  EXPECT_TRUE(without.propositions.count("available_pulse_wave") > 0);
  EXPECT_TRUE(without.propositions.count("unavailable_pulse_wave") > 0);
}

TEST(Translator, ExistencePattern) {
  EXPECT_EQ(translate_one("Eventually the cuff is inflated."),
            "F inflate_cuff");
}

TEST(Translator, UniversalityWrapsEverythingElse) {
  EXPECT_EQ(translate_one("The alarm is disabled."), "G !alarm");
  EXPECT_EQ(translate_one("Always the alarm is disabled."), "G !alarm");
}

TEST(Translator, FutureTenseBecomesEventually) {
  EXPECT_EQ(translate_one("If the pump is detected, the alarm will be "
                          "issued."),
            "G (detect_pump -> F issue_alarm)");
  // "should" is not future.
  EXPECT_EQ(translate_one("If the pump is detected, the alarm should be "
                          "issued."),
            "G (detect_pump -> issue_alarm)");
}

TEST(Translator, TimedConstraintOverridesFuture) {
  EXPECT_EQ(
      translate_one("If the pump is detected, the alarm will be issued in 2 "
                    "seconds."),
      "G (detect_pump -> X X issue_alarm)");
}

TEST(Translator, MinutesConvertToSeconds) {
  const auto result = translate_texts(
      {{"t", "If the pump is detected, the alarm is issued in 2 minutes."}});
  EXPECT_EQ(result.requirements[0].delays, std::vector<unsigned>{120});
}

TEST(Translator, PronounResolution) {
  EXPECT_EQ(
      translate_one("When the start button is enabled, the start button is "
                    "enabled until it is pressed."),
      "G (start_button -> !press_start_button -> start_button W "
      "press_start_button)");
}

TEST(Translator, MultiSubjectDistribution) {
  EXPECT_EQ(translate_one("If the cuff and the pulse wave are unavailable, "
                          "the alarm is issued."),
            "G (!cuff && !pulse_wave -> issue_alarm)");
  EXPECT_EQ(translate_one("If the cuff or the pulse wave is unavailable, "
                          "the alarm is issued."),
            "G (!cuff || !pulse_wave -> issue_alarm)");
}

TEST(Translator, PrepositionalPredicates) {
  translate::Options strict;
  strict.next_mode = translate::NextMode::kStrict;
  EXPECT_EQ(
      translate_one(
          "If the robot is in room 1, next the robot is in room 1 or room 2.",
          strict),
      "G (robot_in_room_1 -> X (robot_in_room_1 || robot_in_room_2))");
}

TEST(Translator, ThetasCollectsDistinctDelays) {
  const auto result = translate_texts({
      {"a", "If the pump is detected, the alarm is issued in 3 seconds."},
      {"b", "If the valve is selected, the alarm is issued in 60 seconds."},
      {"c", "If the door is detected, the alarm is issued in 3 seconds."},
  });
  EXPECT_EQ(result.thetas(), (std::vector<std::uint32_t>{3, 60}));
}

TEST(Translator, UngrammaticalInputThrows) {
  EXPECT_THROW(
      (void)translate_texts({{"bad", "This no grammar very wrong."}}),
      speccc::util::ParseError);
}

}  // namespace
