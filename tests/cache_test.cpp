// Tests for the cross-spec memoization layer (cache/store.hpp): canonical
// digest stability, lexicon fingerprint invalidation, store semantics
// (hit/miss counters, FIFO/LRU eviction under the exact global
// max_entries cap, per-thread accounting), and the
// cached-equals-uncached contract at the translator and pipeline levels.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/store.hpp"
#include "core/pipeline.hpp"
#include "ltl/formula.hpp"
#include "ltl/parser.hpp"
#include "nlp/lexicon.hpp"
#include "semantics/antonyms.hpp"
#include "translate/translator.hpp"
#include "util/digest.hpp"

namespace cache = speccc::cache;
namespace ltl = speccc::ltl;
namespace nlp = speccc::nlp;
using speccc::util::Digest;
using speccc::util::DigestBuilder;

namespace {

std::vector<speccc::translate::RequirementText> door_lock_spec() {
  return {
      {"R1", "If the door button is pressed, the lock signal is updated."},
      {"R2", "When the door sensor is detected, eventually the alarm is raised."},
      {"R3",
       "If the battery status is measured, the monitor light is activated in "
       "10 seconds."},
  };
}

}  // namespace

// ---- util::Digest -----------------------------------------------------------

TEST(DigestBuilder, AppendersAreDomainSeparatedAndOrderSensitive) {
  const Digest a = DigestBuilder().str("ab").str("c").finalize();
  const Digest b = DigestBuilder().str("a").str("bc").finalize();
  EXPECT_NE(a, b);  // length prefixes prevent concatenation aliasing

  const Digest c = DigestBuilder().u64(0).finalize();
  const Digest d = DigestBuilder().str("").finalize();
  EXPECT_NE(c, d);  // tag bytes separate the appender kinds

  EXPECT_EQ(DigestBuilder("x").u64(7).finalize(),
            DigestBuilder("x").u64(7).finalize());
  EXPECT_NE(DigestBuilder("x").u64(7).finalize(),
            DigestBuilder("y").u64(7).finalize());
}

TEST(DigestBuilder, HexRendersBothLanes) {
  const Digest d{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(d.hex(), "0123456789abcdeffedcba9876543210");
}

// ---- ltl::canonical_digest --------------------------------------------------

// The digest is a persistent cache-key format: these pinned values detect
// any accidental change to the algorithm (which would silently invalidate
// — or worse, mis-match — every key derived from formulas).
TEST(CanonicalDigest, PinnedValuesAreStable) {
  EXPECT_EQ(ltl::canonical_digest(ltl::parse("G (a -> b)")).hex(),
            "8e66b93de56689d491d35e4e908126d3");
  EXPECT_EQ(ltl::canonical_digest(ltl::parse("a U b")).hex(),
            "00910f8019924b33dd8cb0a04dd9c5a7");
  EXPECT_EQ(ltl::canonical_digest(ltl::tru()).hex(),
            "47c7742b0513c67ae146072891946d32");
}

TEST(CanonicalDigest, StructurallyEqualFormulasAgreeHoweverBuilt) {
  const ltl::Formula parsed = ltl::parse("G (a -> b)");
  const ltl::Formula built =
      ltl::always(ltl::implies(ltl::ap("a"), ltl::ap("b")));
  EXPECT_EQ(ltl::canonical_digest(parsed), ltl::canonical_digest(built));

  // Print/parse round trip preserves the digest.
  EXPECT_EQ(ltl::canonical_digest(ltl::parse(ltl::to_string(parsed))),
            ltl::canonical_digest(parsed));
}

TEST(CanonicalDigest, DistinguishesStructureOperatorsAndNames) {
  const auto d = [](const char* text) {
    return ltl::canonical_digest(ltl::parse(text));
  };
  EXPECT_NE(d("a U b"), d("b U a"));      // child order
  EXPECT_NE(d("a U b"), d("a W b"));      // operator
  EXPECT_NE(d("a && b"), d("a || b"));    // n-ary operator
  EXPECT_NE(d("F alpha"), d("F alphb"));  // proposition name
  EXPECT_NE(d("X a"), d("X X a"));        // depth
}

TEST(CanonicalDigest, DeepNextChainsDoNotRecurse) {
  // Timed requirements produce X-chains hundreds deep; the walk must be
  // iterative (this would overflow a naive recursion at -O0 sanitizer
  // stack sizes long before 50k).
  const ltl::Formula deep = ltl::next_n(ltl::ap("p"), 50'000);
  const ltl::Formula deep2 = ltl::next_n(ltl::ap("p"), 50'000);
  EXPECT_EQ(ltl::canonical_digest(deep), ltl::canonical_digest(deep2));
}

// ---- nlp::Lexicon::fingerprint ----------------------------------------------

TEST(LexiconFingerprint, ContentDeterminesFingerprintNotInsertionOrder) {
  nlp::Lexicon a;
  a.add("door", nlp::Pos::kNoun);
  a.add_verb("press");
  a.add("red", nlp::Pos::kAdjective);

  nlp::Lexicon b;
  b.add("red", nlp::Pos::kAdjective);
  b.add_verb("press");
  b.add("door", nlp::Pos::kNoun);

  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // Pinned on a fixed hand-composed lexicon (NOT on builtin(), whose
  // vocabulary may legitimately grow): detects accidental changes to the
  // fingerprint algorithm, a persistent cache-key format.
  EXPECT_EQ(a.fingerprint().hex(), "98f0377d91e0468e578e70bcd5e318f6");
}

TEST(LexiconFingerprint, AnyVocabularyEditChangesTheFingerprint) {
  nlp::Lexicon base = nlp::Lexicon::builtin();
  const Digest before = base.fingerprint();

  nlp::Lexicon with_word = base;
  with_word.add("flux", nlp::Pos::kNoun);
  EXPECT_NE(with_word.fingerprint(), before);

  nlp::Lexicon with_verb = base;
  with_verb.add_verb("flux");
  EXPECT_NE(with_verb.fingerprint(), before);
  EXPECT_NE(with_verb.fingerprint(), with_word.fingerprint());

  nlp::Lexicon with_irregular = base;
  with_irregular.add_irregular_verb("floxen", "flux", nlp::VerbForm::kPast);
  EXPECT_NE(with_irregular.fingerprint(), before);
}

// ---- key derivation ---------------------------------------------------------

TEST(CacheKeys, SentenceKeyNormalizesWhitespaceButPreservesCase) {
  EXPECT_EQ(cache::normalize_sentence("  the  Air Ok\tsignal \n"),
            "the Air Ok signal");

  const Digest lex = nlp::Lexicon::builtin().fingerprint();
  EXPECT_EQ(cache::sentence_key(cache::normalize_sentence("a   b"), lex),
            cache::sentence_key(cache::normalize_sentence(" a b "), lex));
  // Case is meaningful (proper names): never folded by normalization.
  EXPECT_NE(cache::sentence_key("the Air Ok signal", lex),
            cache::sentence_key("the air ok signal", lex));
  // The lexicon fingerprint is part of the key: vocabulary edits
  // invalidate by changing the key, not by purging entries.
  nlp::Lexicon extended = nlp::Lexicon::builtin();
  extended.add("flux", nlp::Pos::kNoun);
  EXPECT_NE(cache::sentence_key("a b", lex),
            cache::sentence_key("a b", extended.fingerprint()));
}

TEST(CacheKeys, SynthesisKeyCoversFormulasSignatureAndOptions) {
  const std::vector<ltl::Formula> formulas{ltl::parse("G (a -> b)")};
  speccc::synth::IoSignature signature{{"a"}, {"b"}};
  speccc::synth::SynthesisOptions options;

  const Digest base = cache::synthesis_key(formulas, signature, options);
  EXPECT_EQ(base, cache::synthesis_key(formulas, signature, options));

  speccc::synth::IoSignature flipped{{"b"}, {"a"}};
  EXPECT_NE(base, cache::synthesis_key(formulas, flipped, options));

  speccc::synth::SynthesisOptions bounded = options;
  bounded.engine = speccc::synth::Engine::kBounded;
  EXPECT_NE(base, cache::synthesis_key(formulas, signature, bounded));

  // Refinement and synthesis artifacts never share keys even for equal
  // inputs (separate domains).
  EXPECT_NE(base, cache::refinement_key(formulas, signature, options));
}

// ---- cache::Store -----------------------------------------------------------

TEST(Store, CountsHitsAndMissesPerLevel) {
  cache::Store store;
  const Digest key = cache::satisfiability_key(ltl::parse("F p"));

  EXPECT_FALSE(store.find_satisfiable(key).has_value());
  store.put_satisfiable(key, true);
  const auto hit = store.find_satisfiable(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit);

  const cache::StatsSnapshot stats = store.stats();
  EXPECT_EQ(stats.l2_misses, 1u);
  EXPECT_EQ(stats.l2_hits, 1u);
  EXPECT_EQ(stats.l1_hits + stats.l1_misses, 0u);
  EXPECT_EQ(stats.hits(), 1u);
  EXPECT_EQ(stats.misses(), 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(Store, EvictsOldestFirstUnderMaxEntries) {
  cache::StoreOptions options;
  options.shards = 1;  // single shard: eviction order is exactly FIFO
  options.max_entries = 4;
  cache::Store store(options);

  std::vector<Digest> keys;
  for (int i = 0; i < 6; ++i) {
    keys.push_back(DigestBuilder("test").u64(i).finalize());
    store.put_satisfiable(keys.back(), i % 2 == 0);
  }

  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.stats().evictions, 2u);
  EXPECT_FALSE(store.find_satisfiable(keys[0]).has_value());  // evicted
  EXPECT_FALSE(store.find_satisfiable(keys[1]).has_value());  // evicted
  for (int i = 2; i < 6; ++i) {
    EXPECT_TRUE(store.find_satisfiable(keys[i]).has_value()) << i;
  }
}

TEST(Store, GlobalCapIsExactEvenWhenShardsDoNotDivideIt) {
  // Regression pin: the cap used to be ceiling-split per shard, so
  // shards=4 with max_entries=10 could hold up to 12 entries. The cap is
  // documented GLOBAL and enforced exactly: per-shard caps differ by at
  // most one and sum to max_entries.
  cache::StoreOptions options;
  options.shards = 4;
  options.max_entries = 10;  // not divisible by 4
  cache::Store store(options);

  for (int i = 0; i < 200; ++i) {
    store.put_satisfiable(DigestBuilder("cap").u64(i).finalize(), true);
  }
  EXPECT_LE(store.size(), 10u);
  // Keys spread over 4 shards; 200 inserts certainly filled every shard,
  // so the store sits exactly at the global cap.
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.stats().evictions, 200u - 10u);
}

TEST(Store, CapBelowShardCountStillAdmitsSomewhereAndNeverExceeds) {
  // The documented corner: max_entries < shards leaves some shards with a
  // zero cap; they decline inserts (a miss there only costs
  // recomputation), while the store still never exceeds the global cap.
  cache::StoreOptions options;
  options.shards = 8;
  options.max_entries = 3;
  cache::Store store(options);
  for (int i = 0; i < 100; ++i) {
    store.put_satisfiable(DigestBuilder("tiny").u64(i).finalize(), true);
  }
  EXPECT_LE(store.size(), 3u);
  EXPECT_GT(store.size(), 0u);
}

TEST(Store, LruKeepsRecentlyUsedWhereFifoEvictsByAge) {
  // Same access pattern under both policies: insert A then B (cap 2),
  // touch A, insert C. FIFO evicts A (oldest inserted); LRU evicts B
  // (least recently used) because the touch refreshed A.
  const Digest a = DigestBuilder("ev").u64(1).finalize();
  const Digest b = DigestBuilder("ev").u64(2).finalize();
  const Digest c = DigestBuilder("ev").u64(3).finalize();

  for (const cache::Eviction policy :
       {cache::Eviction::kFifo, cache::Eviction::kLru}) {
    cache::StoreOptions options;
    options.shards = 1;
    options.max_entries = 2;
    options.eviction = policy;
    cache::Store store(options);

    store.put_satisfiable(a, true);
    store.put_satisfiable(b, true);
    EXPECT_TRUE(store.find_satisfiable(a).has_value());  // touch A
    store.put_satisfiable(c, true);

    EXPECT_EQ(store.size(), 2u);
    EXPECT_TRUE(store.find_satisfiable(c).has_value());
    if (policy == cache::Eviction::kFifo) {
      EXPECT_FALSE(store.find_satisfiable(a).has_value()) << "fifo";
      EXPECT_TRUE(store.find_satisfiable(b).has_value()) << "fifo";
    } else {
      EXPECT_TRUE(store.find_satisfiable(a).has_value()) << "lru";
      EXPECT_FALSE(store.find_satisfiable(b).has_value()) << "lru";
    }
  }
  EXPECT_STREQ(cache::eviction_name(cache::Eviction::kFifo), "fifo");
  EXPECT_STREQ(cache::eviction_name(cache::Eviction::kLru), "lru");
}

TEST(Store, ThreadStatsAttributeWorkToTheCallingThread) {
  // Per-request accounting for the serve layer: the thread-local snapshot
  // delta scopes hits/misses to exactly what THIS thread did, regardless
  // of what other threads do to the same (or any) store.
  cache::Store store;
  const Digest here = DigestBuilder("tls").u64(1).finalize();
  const Digest there = DigestBuilder("tls").u64(2).finalize();

  std::thread other([&] {
    for (int i = 0; i < 5; ++i) {
      (void)store.find_satisfiable(there);  // 5 misses on the other thread
    }
  });
  other.join();

  const cache::StatsSnapshot before = cache::Store::thread_stats();
  (void)store.find_satisfiable(here);  // miss
  store.put_satisfiable(here, true);
  (void)store.find_satisfiable(here);  // hit
  const cache::StatsSnapshot delta =
      cache::Store::thread_stats().since(before);
  EXPECT_EQ(delta.l2_misses, 1u);
  EXPECT_EQ(delta.l2_hits, 1u);
  EXPECT_EQ(delta.evictions, 0u);
  // The shared counters saw everything, including the other thread.
  EXPECT_EQ(store.stats().l2_misses, 6u);
}

TEST(Store, PutIsFirstWriterWinsAndIdempotent) {
  cache::Store store;
  const Digest key = DigestBuilder("test").u64(1).finalize();
  store.put_satisfiable(key, true);
  store.put_satisfiable(key, false);  // racing duplicate: ignored
  EXPECT_TRUE(*store.find_satisfiable(key));
  EXPECT_EQ(store.size(), 1u);
}

// ---- translator + pipeline integration --------------------------------------

TEST(TranslatorCache, CachedTranslationIsIdenticalAndHitsOnReuse) {
  const nlp::Lexicon lexicon = nlp::Lexicon::builtin();
  const auto dictionary = speccc::semantics::AntonymDictionary::builtin();
  const auto spec = door_lock_spec();

  const speccc::translate::Translator plain(lexicon, dictionary);
  const auto expected = plain.translate(spec);

  cache::Store store;
  const speccc::translate::Translator cached(lexicon, dictionary, {}, &store);
  const auto first = cached.translate(spec);
  const auto second = cached.translate(spec);

  ASSERT_EQ(first.requirements.size(), expected.requirements.size());
  for (std::size_t i = 0; i < expected.requirements.size(); ++i) {
    EXPECT_EQ(first.requirements[i].formula, expected.requirements[i].formula);
    EXPECT_EQ(second.requirements[i].formula, expected.requirements[i].formula);
    EXPECT_EQ(first.requirements[i].text, expected.requirements[i].text);
  }
  const cache::StatsSnapshot stats = store.stats();
  EXPECT_EQ(stats.l1_misses, spec.size());  // first pass parsed
  EXPECT_EQ(stats.l1_hits, spec.size());    // second pass fully cached
}

TEST(PipelineCache, CachedRunMatchesUncachedAndSkipsRecomputation) {
  const auto spec = door_lock_spec();

  const speccc::core::Pipeline uncached;
  const auto expected = uncached.run("door_lock", spec);

  speccc::core::PipelineOptions options;
  options.cache = std::make_shared<cache::Store>();
  const speccc::core::Pipeline pipeline(options);
  const auto first = pipeline.run("door_lock", spec);
  const cache::StatsSnapshot after_first = options.cache->stats();
  const auto second = pipeline.run("door_lock", spec);
  const cache::StatsSnapshot after_second = options.cache->stats();

  for (const auto* run : {&first, &second}) {
    EXPECT_EQ(run->consistent, expected.consistent);
    EXPECT_EQ(run->num_formulas(), expected.num_formulas());
    EXPECT_EQ(run->partition.inputs, expected.partition.inputs);
    EXPECT_EQ(run->partition.outputs, expected.partition.outputs);
    EXPECT_EQ(run->unsatisfiable_requirements,
              expected.unsatisfiable_requirements);
    EXPECT_EQ(run->synthesis.verdict, expected.synthesis.verdict);
  }
  // The repeated run decides nothing anew: every level-2 lookup hits.
  EXPECT_GT(after_second.l2_hits, after_first.l2_hits);
  EXPECT_EQ(after_second.l2_misses, after_first.l2_misses);
  EXPECT_EQ(after_second.l1_misses, after_first.l1_misses);
}
