// Tests for the cross-spec memoization layer (cache/store.hpp): canonical
// digest stability, lexicon fingerprint invalidation, store semantics
// (hit/miss counters, FIFO/LRU eviction under the exact global
// max_entries cap, per-thread accounting), the cached-equals-uncached
// contract at the translator and pipeline levels, and the persistent
// snapshot format (cache/snapshot.hpp): round trips, pinned golden
// bytes, structured rejection of damaged files, and Store::merge.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/snapshot.hpp"
#include "cache/store.hpp"
#include "core/pipeline.hpp"
#include "ltl/formula.hpp"
#include "ltl/parser.hpp"
#include "nlp/lexicon.hpp"
#include "semantics/antonyms.hpp"
#include "translate/translator.hpp"
#include "util/digest.hpp"

namespace cache = speccc::cache;
namespace ltl = speccc::ltl;
namespace nlp = speccc::nlp;
using speccc::util::Digest;
using speccc::util::DigestBuilder;

namespace {

std::vector<speccc::translate::RequirementText> door_lock_spec() {
  return {
      {"R1", "If the door button is pressed, the lock signal is updated."},
      {"R2", "When the door sensor is detected, eventually the alarm is raised."},
      {"R3",
       "If the battery status is measured, the monitor light is activated in "
       "10 seconds."},
  };
}

}  // namespace

// ---- util::Digest -----------------------------------------------------------

TEST(DigestBuilder, AppendersAreDomainSeparatedAndOrderSensitive) {
  const Digest a = DigestBuilder().str("ab").str("c").finalize();
  const Digest b = DigestBuilder().str("a").str("bc").finalize();
  EXPECT_NE(a, b);  // length prefixes prevent concatenation aliasing

  const Digest c = DigestBuilder().u64(0).finalize();
  const Digest d = DigestBuilder().str("").finalize();
  EXPECT_NE(c, d);  // tag bytes separate the appender kinds

  EXPECT_EQ(DigestBuilder("x").u64(7).finalize(),
            DigestBuilder("x").u64(7).finalize());
  EXPECT_NE(DigestBuilder("x").u64(7).finalize(),
            DigestBuilder("y").u64(7).finalize());
}

TEST(DigestBuilder, HexRendersBothLanes) {
  const Digest d{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(d.hex(), "0123456789abcdeffedcba9876543210");
}

// ---- ltl::canonical_digest --------------------------------------------------

// The digest is a persistent cache-key format: these pinned values detect
// any accidental change to the algorithm (which would silently invalidate
// — or worse, mis-match — every key derived from formulas).
TEST(CanonicalDigest, PinnedValuesAreStable) {
  EXPECT_EQ(ltl::canonical_digest(ltl::parse("G (a -> b)")).hex(),
            "8e66b93de56689d491d35e4e908126d3");
  EXPECT_EQ(ltl::canonical_digest(ltl::parse("a U b")).hex(),
            "00910f8019924b33dd8cb0a04dd9c5a7");
  EXPECT_EQ(ltl::canonical_digest(ltl::tru()).hex(),
            "47c7742b0513c67ae146072891946d32");
}

TEST(CanonicalDigest, StructurallyEqualFormulasAgreeHoweverBuilt) {
  const ltl::Formula parsed = ltl::parse("G (a -> b)");
  const ltl::Formula built =
      ltl::always(ltl::implies(ltl::ap("a"), ltl::ap("b")));
  EXPECT_EQ(ltl::canonical_digest(parsed), ltl::canonical_digest(built));

  // Print/parse round trip preserves the digest.
  EXPECT_EQ(ltl::canonical_digest(ltl::parse(ltl::to_string(parsed))),
            ltl::canonical_digest(parsed));
}

TEST(CanonicalDigest, DistinguishesStructureOperatorsAndNames) {
  const auto d = [](const char* text) {
    return ltl::canonical_digest(ltl::parse(text));
  };
  EXPECT_NE(d("a U b"), d("b U a"));      // child order
  EXPECT_NE(d("a U b"), d("a W b"));      // operator
  EXPECT_NE(d("a && b"), d("a || b"));    // n-ary operator
  EXPECT_NE(d("F alpha"), d("F alphb"));  // proposition name
  EXPECT_NE(d("X a"), d("X X a"));        // depth
}

TEST(CanonicalDigest, DeepNextChainsDoNotRecurse) {
  // Timed requirements produce X-chains hundreds deep; the walk must be
  // iterative (this would overflow a naive recursion at -O0 sanitizer
  // stack sizes long before 50k).
  const ltl::Formula deep = ltl::next_n(ltl::ap("p"), 50'000);
  const ltl::Formula deep2 = ltl::next_n(ltl::ap("p"), 50'000);
  EXPECT_EQ(ltl::canonical_digest(deep), ltl::canonical_digest(deep2));
}

// ---- nlp::Lexicon::fingerprint ----------------------------------------------

TEST(LexiconFingerprint, ContentDeterminesFingerprintNotInsertionOrder) {
  nlp::Lexicon a;
  a.add("door", nlp::Pos::kNoun);
  a.add_verb("press");
  a.add("red", nlp::Pos::kAdjective);

  nlp::Lexicon b;
  b.add("red", nlp::Pos::kAdjective);
  b.add_verb("press");
  b.add("door", nlp::Pos::kNoun);

  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // Pinned on a fixed hand-composed lexicon (NOT on builtin(), whose
  // vocabulary may legitimately grow): detects accidental changes to the
  // fingerprint algorithm, a persistent cache-key format.
  EXPECT_EQ(a.fingerprint().hex(), "98f0377d91e0468e578e70bcd5e318f6");
}

TEST(LexiconFingerprint, AnyVocabularyEditChangesTheFingerprint) {
  nlp::Lexicon base = nlp::Lexicon::builtin();
  const Digest before = base.fingerprint();

  nlp::Lexicon with_word = base;
  with_word.add("flux", nlp::Pos::kNoun);
  EXPECT_NE(with_word.fingerprint(), before);

  nlp::Lexicon with_verb = base;
  with_verb.add_verb("flux");
  EXPECT_NE(with_verb.fingerprint(), before);
  EXPECT_NE(with_verb.fingerprint(), with_word.fingerprint());

  nlp::Lexicon with_irregular = base;
  with_irregular.add_irregular_verb("floxen", "flux", nlp::VerbForm::kPast);
  EXPECT_NE(with_irregular.fingerprint(), before);
}

// ---- key derivation ---------------------------------------------------------

TEST(CacheKeys, SentenceKeyNormalizesWhitespaceButPreservesCase) {
  EXPECT_EQ(cache::normalize_sentence("  the  Air Ok\tsignal \n"),
            "the Air Ok signal");

  const Digest lex = nlp::Lexicon::builtin().fingerprint();
  EXPECT_EQ(cache::sentence_key(cache::normalize_sentence("a   b"), lex),
            cache::sentence_key(cache::normalize_sentence(" a b "), lex));
  // Case is meaningful (proper names): never folded by normalization.
  EXPECT_NE(cache::sentence_key("the Air Ok signal", lex),
            cache::sentence_key("the air ok signal", lex));
  // The lexicon fingerprint is part of the key: vocabulary edits
  // invalidate by changing the key, not by purging entries.
  nlp::Lexicon extended = nlp::Lexicon::builtin();
  extended.add("flux", nlp::Pos::kNoun);
  EXPECT_NE(cache::sentence_key("a b", lex),
            cache::sentence_key("a b", extended.fingerprint()));
}

TEST(CacheKeys, SynthesisKeyCoversFormulasSignatureAndOptions) {
  const std::vector<ltl::Formula> formulas{ltl::parse("G (a -> b)")};
  speccc::synth::IoSignature signature{{"a"}, {"b"}};
  speccc::synth::SynthesisOptions options;

  const Digest base = cache::synthesis_key(formulas, signature, options);
  EXPECT_EQ(base, cache::synthesis_key(formulas, signature, options));

  speccc::synth::IoSignature flipped{{"b"}, {"a"}};
  EXPECT_NE(base, cache::synthesis_key(formulas, flipped, options));

  speccc::synth::SynthesisOptions bounded = options;
  bounded.engine = speccc::synth::Engine::kBounded;
  EXPECT_NE(base, cache::synthesis_key(formulas, signature, bounded));

  // Refinement and synthesis artifacts never share keys even for equal
  // inputs (separate domains).
  EXPECT_NE(base, cache::refinement_key(formulas, signature, options));
}

// ---- cache::Store -----------------------------------------------------------

TEST(Store, CountsHitsAndMissesPerLevel) {
  cache::Store store;
  const Digest key = cache::satisfiability_key(ltl::parse("F p"));

  EXPECT_FALSE(store.find_satisfiable(key).has_value());
  store.put_satisfiable(key, true);
  const auto hit = store.find_satisfiable(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit);

  const cache::StatsSnapshot stats = store.stats();
  EXPECT_EQ(stats.l2_misses, 1u);
  EXPECT_EQ(stats.l2_hits, 1u);
  EXPECT_EQ(stats.l1_hits + stats.l1_misses, 0u);
  EXPECT_EQ(stats.hits(), 1u);
  EXPECT_EQ(stats.misses(), 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(Store, EvictsOldestFirstUnderMaxEntries) {
  cache::StoreOptions options;
  options.shards = 1;  // single shard: eviction order is exactly FIFO
  options.max_entries = 4;
  cache::Store store(options);

  std::vector<Digest> keys;
  for (int i = 0; i < 6; ++i) {
    keys.push_back(DigestBuilder("test").u64(i).finalize());
    store.put_satisfiable(keys.back(), i % 2 == 0);
  }

  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.stats().evictions, 2u);
  EXPECT_FALSE(store.find_satisfiable(keys[0]).has_value());  // evicted
  EXPECT_FALSE(store.find_satisfiable(keys[1]).has_value());  // evicted
  for (int i = 2; i < 6; ++i) {
    EXPECT_TRUE(store.find_satisfiable(keys[i]).has_value()) << i;
  }
}

TEST(Store, GlobalCapIsExactEvenWhenShardsDoNotDivideIt) {
  // Regression pin: the cap used to be ceiling-split per shard, so
  // shards=4 with max_entries=10 could hold up to 12 entries. The cap is
  // documented GLOBAL and enforced exactly: per-shard caps differ by at
  // most one and sum to max_entries.
  cache::StoreOptions options;
  options.shards = 4;
  options.max_entries = 10;  // not divisible by 4
  cache::Store store(options);

  for (int i = 0; i < 200; ++i) {
    store.put_satisfiable(DigestBuilder("cap").u64(i).finalize(), true);
  }
  EXPECT_LE(store.size(), 10u);
  // Keys spread over 4 shards; 200 inserts certainly filled every shard,
  // so the store sits exactly at the global cap.
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.stats().evictions, 200u - 10u);
}

TEST(Store, CapBelowShardCountStillAdmitsSomewhereAndNeverExceeds) {
  // The documented corner: max_entries < shards leaves some shards with a
  // zero cap; they decline inserts (a miss there only costs
  // recomputation), while the store still never exceeds the global cap.
  cache::StoreOptions options;
  options.shards = 8;
  options.max_entries = 3;
  cache::Store store(options);
  for (int i = 0; i < 100; ++i) {
    store.put_satisfiable(DigestBuilder("tiny").u64(i).finalize(), true);
  }
  EXPECT_LE(store.size(), 3u);
  EXPECT_GT(store.size(), 0u);
}

TEST(Store, LruKeepsRecentlyUsedWhereFifoEvictsByAge) {
  // Same access pattern under both policies: insert A then B (cap 2),
  // touch A, insert C. FIFO evicts A (oldest inserted); LRU evicts B
  // (least recently used) because the touch refreshed A.
  const Digest a = DigestBuilder("ev").u64(1).finalize();
  const Digest b = DigestBuilder("ev").u64(2).finalize();
  const Digest c = DigestBuilder("ev").u64(3).finalize();

  for (const cache::Eviction policy :
       {cache::Eviction::kFifo, cache::Eviction::kLru}) {
    cache::StoreOptions options;
    options.shards = 1;
    options.max_entries = 2;
    options.eviction = policy;
    cache::Store store(options);

    store.put_satisfiable(a, true);
    store.put_satisfiable(b, true);
    EXPECT_TRUE(store.find_satisfiable(a).has_value());  // touch A
    store.put_satisfiable(c, true);

    EXPECT_EQ(store.size(), 2u);
    EXPECT_TRUE(store.find_satisfiable(c).has_value());
    if (policy == cache::Eviction::kFifo) {
      EXPECT_FALSE(store.find_satisfiable(a).has_value()) << "fifo";
      EXPECT_TRUE(store.find_satisfiable(b).has_value()) << "fifo";
    } else {
      EXPECT_TRUE(store.find_satisfiable(a).has_value()) << "lru";
      EXPECT_FALSE(store.find_satisfiable(b).has_value()) << "lru";
    }
  }
  EXPECT_STREQ(cache::eviction_name(cache::Eviction::kFifo), "fifo");
  EXPECT_STREQ(cache::eviction_name(cache::Eviction::kLru), "lru");
}

TEST(Store, ThreadStatsAttributeWorkToTheCallingThread) {
  // Per-request accounting for the serve layer: the thread-local snapshot
  // delta scopes hits/misses to exactly what THIS thread did, regardless
  // of what other threads do to the same (or any) store.
  cache::Store store;
  const Digest here = DigestBuilder("tls").u64(1).finalize();
  const Digest there = DigestBuilder("tls").u64(2).finalize();

  std::thread other([&] {
    for (int i = 0; i < 5; ++i) {
      (void)store.find_satisfiable(there);  // 5 misses on the other thread
    }
  });
  other.join();

  const cache::StatsSnapshot before = cache::Store::thread_stats();
  (void)store.find_satisfiable(here);  // miss
  store.put_satisfiable(here, true);
  (void)store.find_satisfiable(here);  // hit
  const cache::StatsSnapshot delta =
      cache::Store::thread_stats().since(before);
  EXPECT_EQ(delta.l2_misses, 1u);
  EXPECT_EQ(delta.l2_hits, 1u);
  EXPECT_EQ(delta.evictions, 0u);
  // The shared counters saw everything, including the other thread.
  EXPECT_EQ(store.stats().l2_misses, 6u);
}

TEST(Store, PutIsFirstWriterWinsAndIdempotent) {
  cache::Store store;
  const Digest key = DigestBuilder("test").u64(1).finalize();
  store.put_satisfiable(key, true);
  store.put_satisfiable(key, false);  // racing duplicate: ignored
  EXPECT_TRUE(*store.find_satisfiable(key));
  EXPECT_EQ(store.size(), 1u);
}

// ---- translator + pipeline integration --------------------------------------

TEST(TranslatorCache, CachedTranslationIsIdenticalAndHitsOnReuse) {
  const nlp::Lexicon lexicon = nlp::Lexicon::builtin();
  const auto dictionary = speccc::semantics::AntonymDictionary::builtin();
  const auto spec = door_lock_spec();

  const speccc::translate::Translator plain(lexicon, dictionary);
  const auto expected = plain.translate(spec);

  cache::Store store;
  const speccc::translate::Translator cached(lexicon, dictionary, {}, &store);
  const auto first = cached.translate(spec);
  const auto second = cached.translate(spec);

  ASSERT_EQ(first.requirements.size(), expected.requirements.size());
  for (std::size_t i = 0; i < expected.requirements.size(); ++i) {
    EXPECT_EQ(first.requirements[i].formula, expected.requirements[i].formula);
    EXPECT_EQ(second.requirements[i].formula, expected.requirements[i].formula);
    EXPECT_EQ(first.requirements[i].text, expected.requirements[i].text);
  }
  const cache::StatsSnapshot stats = store.stats();
  EXPECT_EQ(stats.l1_misses, spec.size());  // first pass parsed
  EXPECT_EQ(stats.l1_hits, spec.size());    // second pass fully cached
}

TEST(PipelineCache, CachedRunMatchesUncachedAndSkipsRecomputation) {
  const auto spec = door_lock_spec();

  const speccc::core::Pipeline uncached;
  const auto expected = uncached.run("door_lock", spec);

  speccc::core::PipelineOptions options;
  options.cache = std::make_shared<cache::Store>();
  const speccc::core::Pipeline pipeline(options);
  const auto first = pipeline.run("door_lock", spec);
  const cache::StatsSnapshot after_first = options.cache->stats();
  const auto second = pipeline.run("door_lock", spec);
  const cache::StatsSnapshot after_second = options.cache->stats();

  for (const auto* run : {&first, &second}) {
    EXPECT_EQ(run->consistent, expected.consistent);
    EXPECT_EQ(run->num_formulas(), expected.num_formulas());
    EXPECT_EQ(run->partition.inputs, expected.partition.inputs);
    EXPECT_EQ(run->partition.outputs, expected.partition.outputs);
    EXPECT_EQ(run->unsatisfiable_requirements,
              expected.unsatisfiable_requirements);
    EXPECT_EQ(run->synthesis.verdict, expected.synthesis.verdict);
  }
  // The repeated run decides nothing anew: every level-2 lookup hits.
  EXPECT_GT(after_second.l2_hits, after_first.l2_hits);
  EXPECT_EQ(after_second.l2_misses, after_first.l2_misses);
  EXPECT_EQ(after_second.l1_misses, after_first.l1_misses);
}

// ---- persistent snapshots (cache/snapshot.hpp) ------------------------------

namespace {

namespace fs = std::filesystem;

std::string snapshot_path(const char* name) {
  const std::string dir = ::testing::TempDir() + "speccc_cache_snapshots";
  fs::create_directories(dir);
  return dir + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

std::string to_hex(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

// A hand-built two-entry store + fixed fingerprint: the snapshot of this
// store is a pure function of the FORMAT, not of any parser or pipeline
// behavior, so the golden-bytes pin below only breaks when the format
// itself changes (which must come with a version bump).
constexpr Digest kStampA{0x1111111111111111ULL, 0x2222222222222222ULL};

void fill_golden(cache::Store& store) {
  store.put_satisfiable(Digest{1, 2}, true);
  store.put_satisfiable(Digest{0x0123456789abcdefULL, 0xfedcba9876543210ULL},
                        false);
}

}  // namespace

TEST(Snapshot, PipelineRoundTripRerunsWithZeroMisses) {
  const auto spec = door_lock_spec();
  const std::string path = snapshot_path("roundtrip.snap");
  const Digest stamp = nlp::Lexicon::builtin().fingerprint();

  speccc::core::PipelineOptions options;
  options.cache = std::make_shared<cache::Store>();
  const auto expected = speccc::core::Pipeline(options).run("door_lock", spec);
  cache::save_snapshot(*options.cache, path, stamp);

  speccc::core::PipelineOptions warm_options;
  warm_options.cache = std::make_shared<cache::Store>();
  const cache::SnapshotMeta meta =
      cache::load_snapshot(*warm_options.cache, path, stamp);
  EXPECT_EQ(meta.version, cache::kSnapshotVersion);
  EXPECT_EQ(meta.lexicon_fingerprint, stamp);
  EXPECT_EQ(meta.entries, options.cache->size());
  EXPECT_EQ(warm_options.cache->size(), options.cache->size());

  // The warm store serves the rerun entirely: zero misses on both levels,
  // and the same verdict.
  const auto warm = speccc::core::Pipeline(warm_options).run("door_lock", spec);
  EXPECT_EQ(warm.consistent, expected.consistent);
  EXPECT_EQ(warm.num_formulas(), expected.num_formulas());
  EXPECT_EQ(warm.synthesis.verdict, expected.synthesis.verdict);
  const cache::StatsSnapshot stats = warm_options.cache->stats();
  EXPECT_EQ(stats.l1_misses, 0u);
  EXPECT_EQ(stats.l2_misses, 0u);
  EXPECT_GT(stats.l1_hits, 0u);
  EXPECT_GT(stats.l2_hits, 0u);
}

TEST(Snapshot, GoldenBytesArePinned) {
  // Format guard: the exact bytes of a tiny snapshot. If this pin breaks,
  // the on-disk format changed -- bump kSnapshotVersion and repin; do NOT
  // silently repin under the same version (old snapshots would be
  // misread, not rejected).
  const std::string path = snapshot_path("golden.snap");
  cache::Store store;
  fill_golden(store);
  cache::save_snapshot(store, path, kStampA);
  EXPECT_EQ(
      to_hex(read_file(path)),
      // header: magic "SPCCSNP1", version 1, fingerprint, body length 79
      "53504343534e5031"  // SPCCSNP1
      "01000000"          // version 1
      "1111111111111111" "2222222222222222"  // lexicon fingerprint hi, lo
      "4f00000000000000"  // body: 79 bytes
      // body: 5 sections in kind order, entries sorted by key
      "01" "0000000000000000"  // sentences: none
      "02" "0200000000000000"  // satisfiable: 2 entries
      "0100000000000000" "0200000000000000" "01"  // {1,2} -> true
      "efcdab8967452301" "1032547698badcfe" "00"  // {0123...,fedc...} -> false
      "03" "0000000000000000"  // synthesis: none
      "04" "0000000000000000"  // refinement: none
      "05" "0000000000000000"  // abstraction: none
      // footer: DigestBuilder("snapshot-body") checksum of the body
      "748dcd324d7d3dbdcae9cd5c8c6a481e");
}

TEST(Snapshot, SaveIsAtomicAndOverwritesInPlace) {
  const std::string path = snapshot_path("atomic.snap");
  cache::Store store;
  fill_golden(store);
  cache::save_snapshot(store, path, kStampA);
  const std::string first = read_file(path);
  cache::save_snapshot(store, path, kStampA);  // overwrite via rename
  EXPECT_EQ(read_file(path), first);
  // No temporary siblings survive a successful save.
  for (const auto& entry : fs::directory_iterator(fs::path(path).parent_path())) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << entry.path();
  }
}

TEST(Snapshot, RejectsTruncatedFiles) {
  const std::string path = snapshot_path("truncated.snap");
  cache::Store store;
  fill_golden(store);
  cache::save_snapshot(store, path, kStampA);
  const std::string bytes = read_file(path);

  // Cut mid-checksum and mid-header: both are kTruncated, and the target
  // store stays untouched either way.
  for (const std::size_t keep : {bytes.size() - 10, std::size_t{20}}) {
    write_file(path, bytes.substr(0, keep));
    cache::Store target;
    try {
      cache::load_snapshot(target, path, kStampA);
      FAIL() << "truncated snapshot (" << keep << " bytes) was accepted";
    } catch (const cache::SnapshotError& e) {
      EXPECT_EQ(e.kind(), cache::SnapshotErrorKind::kTruncated);
      EXPECT_EQ(e.path(), path);
    }
    EXPECT_EQ(target.size(), 0u);
  }
}

TEST(Snapshot, RejectsCorruptedBody) {
  const std::string path = snapshot_path("corrupted.snap");
  cache::Store store;
  fill_golden(store);
  cache::save_snapshot(store, path, kStampA);
  std::string bytes = read_file(path);
  bytes[40] = static_cast<char>(bytes[40] ^ 0x40);  // flip one body bit
  write_file(path, bytes);

  cache::Store target;
  target.put_satisfiable(Digest{9, 9}, true);  // pre-existing entry
  try {
    cache::load_snapshot(target, path, kStampA);
    FAIL() << "corrupted snapshot was accepted";
  } catch (const cache::SnapshotError& e) {
    EXPECT_EQ(e.kind(), cache::SnapshotErrorKind::kCorrupted);
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
  EXPECT_EQ(target.size(), 1u);  // rejection left the store untouched
}

TEST(Snapshot, RejectsWrongFormatVersion) {
  const std::string path = snapshot_path("version.snap");
  cache::Store store;
  fill_golden(store);
  cache::save_snapshot(store, path, kStampA);
  std::string bytes = read_file(path);
  bytes[8] = 99;  // version field follows the 8-byte magic
  write_file(path, bytes);

  cache::Store target;
  try {
    cache::load_snapshot(target, path, kStampA);
    FAIL() << "future-version snapshot was accepted";
  } catch (const cache::SnapshotError& e) {
    EXPECT_EQ(e.kind(), cache::SnapshotErrorKind::kBadVersion);
    EXPECT_NE(std::string(e.what()).find("99"), std::string::npos);
  }
}

TEST(Snapshot, RejectsForeignMagicAndMissingFiles) {
  const std::string path = snapshot_path("magic.snap");
  cache::Store store;
  fill_golden(store);
  cache::save_snapshot(store, path, kStampA);
  std::string bytes = read_file(path);
  bytes[0] = 'X';
  write_file(path, bytes);

  cache::Store target;
  EXPECT_THROW(
      try { cache::load_snapshot(target, path, kStampA); } catch
          (const cache::SnapshotError& e) {
        EXPECT_EQ(e.kind(), cache::SnapshotErrorKind::kBadMagic);
        throw;
      },
      cache::SnapshotError);
  EXPECT_THROW(
      try {
        cache::load_snapshot(target, snapshot_path("does-not-exist.snap"),
                             kStampA);
      } catch (const cache::SnapshotError& e) {
        EXPECT_EQ(e.kind(), cache::SnapshotErrorKind::kIo);
        throw;
      },
      cache::SnapshotError);
}

TEST(Snapshot, RejectsForeignLexiconFingerprint) {
  // A vocabulary edit changes the fingerprint; loading the stale snapshot
  // must fail loudly (level-1 keys embed the fingerprint, so the entries
  // would be unreachable at best).
  const std::string path = snapshot_path("fingerprint.snap");
  cache::Store store;
  fill_golden(store);
  cache::save_snapshot(store, path, kStampA);

  nlp::Lexicon edited = nlp::Lexicon::builtin();
  edited.add("flux", nlp::Pos::kNoun);
  cache::Store target;
  try {
    cache::load_snapshot(target, path, edited.fingerprint());
    FAIL() << "foreign-lexicon snapshot was accepted";
  } catch (const cache::SnapshotError& e) {
    EXPECT_EQ(e.kind(), cache::SnapshotErrorKind::kBadFingerprint);
    // The diagnostic names both fingerprints, for the operator.
    EXPECT_NE(std::string(e.what()).find(kStampA.hex()), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(edited.fingerprint().hex()),
              std::string::npos);
  }
  EXPECT_EQ(target.size(), 0u);
}

// ---- Store::merge -----------------------------------------------------------

TEST(StoreMerge, FirstWriterWinsAndOnlyNewEntriesCount) {
  cache::Store a;
  a.put_satisfiable(Digest{1, 1}, true);
  cache::Store b;
  b.put_satisfiable(Digest{1, 1}, false);  // conflicting duplicate
  b.put_satisfiable(Digest{2, 2}, true);
  b.put_sentence(cache::sentence_key("the door opens", kStampA),
                 nlp::Sentence{});

  EXPECT_EQ(a.merge(b), 2u);  // the duplicate is not an insert
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(*a.find_satisfiable(Digest{1, 1}));  // a's value survived
  EXPECT_TRUE(*a.find_satisfiable(Digest{2, 2}));
  EXPECT_EQ(a.merge(b), 0u);  // idempotent
}

TEST(StoreMerge, ShardSnapshotsMergeIntoTheUnion) {
  // The coordinator's merge path in miniature: two per-shard stores with
  // one overlapping entry, snapshotted, loaded into one store.
  const std::string path_a = snapshot_path("shard-a.snap");
  const std::string path_b = snapshot_path("shard-b.snap");
  cache::Store shard_a, shard_b;
  shard_a.put_satisfiable(Digest{1, 1}, true);
  shard_a.put_satisfiable(Digest{2, 2}, false);
  shard_b.put_satisfiable(Digest{2, 2}, false);  // shared work
  shard_b.put_satisfiable(Digest{3, 3}, true);
  cache::save_snapshot(shard_a, path_a, kStampA);
  cache::save_snapshot(shard_b, path_b, kStampA);

  cache::Store merged;
  cache::load_snapshot(merged, path_a, kStampA);
  cache::load_snapshot(merged, path_b, kStampA);
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_TRUE(*merged.find_satisfiable(Digest{1, 1}));
  EXPECT_FALSE(*merged.find_satisfiable(Digest{2, 2}));
  EXPECT_TRUE(*merged.find_satisfiable(Digest{3, 3}));
}
