// Tests for the parallel batch-checking subsystem: the determinism
// contract (N-thread verdicts byte-identical to sequential over all three
// Table I corpora and a fixed difftest seed), budget exhaustion,
// cancellation, error isolation, and the substrate-agreement pass.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "batch/batch.hpp"
#include "batch/corpus_tasks.hpp"
#include "cache/store.hpp"
#include "core/pipeline.hpp"
#include "corpus/generator.hpp"
#include "difftest/harness.hpp"
#include "difftest/random.hpp"
#include "util/diagnostics.hpp"

namespace batch = speccc::batch;
namespace difftest = speccc::difftest;

namespace {

/// The difftest spec generator with speccc_fuzz's seed derivation
/// (difftest::generated_spec): batch task k == fuzz spec case k of --seed S.
std::vector<batch::SpecTask> generated_tasks(std::uint64_t master_seed,
                                             int count) {
  std::vector<batch::SpecTask> tasks;
  for (int index = 0; index < count; ++index) {
    auto spec = difftest::generated_spec(master_seed, index);
    tasks.push_back({std::move(spec.name), std::move(spec.requirements)});
  }
  return tasks;
}

batch::BatchReport run_with_jobs(const std::vector<batch::SpecTask>& tasks,
                                 int jobs) {
  batch::BatchOptions options;
  options.jobs = jobs;
  return batch::check(tasks, options);
}

}  // namespace

// The acceptance contract: verdicts under N workers are byte-identical to
// the sequential run for N in {1, 4, 8}, over all three Table I corpora.
TEST(BatchDeterminism, ParallelMatchesSequentialOverAllThreeCorpora) {
  const std::vector<batch::SpecTask> tasks = batch::table1_tasks();
  ASSERT_EQ(tasks.size(), 22u);  // 14 CARA + 5 TELE + 3 Robot

  const std::string sequential = batch::canonical(run_with_jobs(tasks, 1));
  EXPECT_FALSE(sequential.empty());
  for (const int jobs : {4, 8}) {
    EXPECT_EQ(batch::canonical(run_with_jobs(tasks, jobs)), sequential)
        << "jobs=" << jobs;
  }
}

// The batch verdicts are the pipeline's verdicts: cross-check the report
// against direct sequential Pipeline::run calls.
TEST(BatchDeterminism, VerdictsMatchDirectPipelineRuns) {
  const std::vector<batch::SpecTask> tasks = batch::robot_tasks();
  const batch::BatchReport report = run_with_jobs(tasks, 4);
  ASSERT_EQ(report.results.size(), tasks.size());

  const speccc::core::Pipeline pipeline;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto direct = pipeline.run(tasks[i].name, tasks[i].requirements);
    EXPECT_EQ(report.results[i].name, tasks[i].name);
    EXPECT_EQ(report.results[i].status == batch::TaskStatus::kConsistent,
              direct.consistent)
        << tasks[i].name;
    EXPECT_EQ(report.results[i].formulas, direct.num_formulas());
    EXPECT_EQ(report.results[i].inputs, direct.num_inputs());
    EXPECT_EQ(report.results[i].outputs, direct.num_outputs());
  }
}

TEST(BatchDeterminism, FixedDifftestSeedMatchesSequential) {
  const std::vector<batch::SpecTask> tasks = generated_tasks(7, 10);
  const std::string sequential = batch::canonical(run_with_jobs(tasks, 1));
  EXPECT_EQ(batch::canonical(run_with_jobs(tasks, 4)), sequential);
}

// The cache acceptance contract: canonical reports are byte-identical
// with the memoization store on vs. off, for N in {1, 4, 8}, over all 22
// Table I corpus rows — both against a cold store and against a store
// pre-warmed by a previous batch (all-hits path).
TEST(BatchDeterminism, CacheOnMatchesCacheOffForAllWorkerCounts) {
  const std::vector<batch::SpecTask> tasks = batch::table1_tasks();
  const std::string uncached = batch::canonical(run_with_jobs(tasks, 1));

  batch::BatchOptions options;
  options.pipeline.cache = std::make_shared<speccc::cache::Store>();
  for (const int jobs : {1, 4, 8}) {
    options.jobs = jobs;
    const batch::BatchReport report = batch::check(tasks, options);
    EXPECT_EQ(batch::canonical(report), uncached) << "jobs=" << jobs;
    EXPECT_TRUE(report.cache_enabled);
  }
}

// The diagnosis acceptance contract: with MCS enumeration on, canonical
// reports stay byte-identical across worker counts and cache modes over
// all 22 Table I rows -- MUS and correction sets are input-pure, so they
// belong inside the canonical form like verdicts do.
TEST(BatchDeterminism, DiagnosisKeepsCanonicalAcrossJobsAndCacheModes) {
  const std::vector<batch::SpecTask> tasks = batch::table1_tasks();
  batch::BatchOptions options;
  options.pipeline.localization.max_correction_sets = 4;
  options.jobs = 1;
  const std::string sequential = batch::canonical(batch::check(tasks, options));
  // The two refined TELEPROMISE rows surface their MUS in the canonical
  // report even though refinement rescued them (mcs= stays reserved for
  // genuinely inconsistent specs).
  EXPECT_NE(sequential.find(" mus="), std::string::npos);
  EXPECT_EQ(sequential.find(" mcs="), std::string::npos);
  for (const int jobs : {4, 8}) {
    options.jobs = jobs;
    EXPECT_EQ(batch::canonical(batch::check(tasks, options)), sequential)
        << "jobs=" << jobs;
  }
  options.pipeline.cache = std::make_shared<speccc::cache::Store>();
  for (const int jobs : {1, 4, 8}) {
    options.jobs = jobs;
    EXPECT_EQ(batch::canonical(batch::check(tasks, options)), sequential)
        << "cached jobs=" << jobs;
  }
}

// Diagnosis output never changes verdicts: the canonical report with
// enumeration on equals the plain report once the diagnosis fields are
// the only difference -- over Table I they are not even that, because all
// 22 rows are consistent (the CLI smoke in scripts/check.sh diffs the two
// full reports for exactly this reason).
TEST(BatchDeterminism, DiagnosisOverConsistentCorpusMatchesPlainReport) {
  const std::vector<batch::SpecTask> tasks = batch::table1_tasks();
  const std::string plain = batch::canonical(run_with_jobs(tasks, 2));
  batch::BatchOptions options;
  options.jobs = 2;
  options.pipeline.localization.max_correction_sets = 4;
  EXPECT_EQ(batch::canonical(batch::check(tasks, options)), plain);
}

// A second batch over a warm shared store answers from the cache (the
// cross-batch reuse the revision workflow relies on) without changing a
// byte of the canonical report.
TEST(BatchCache, WarmStoreHitsAcrossBatchesAndKeepsVerdicts) {
  const std::vector<batch::SpecTask> tasks = batch::robot_tasks();
  batch::BatchOptions options;
  options.jobs = 2;
  options.pipeline.cache = std::make_shared<speccc::cache::Store>();

  const batch::BatchReport cold = batch::check(tasks, options);
  const batch::BatchReport warm = batch::check(tasks, options);

  EXPECT_EQ(batch::canonical(warm), batch::canonical(cold));
  EXPECT_GT(cold.cache_stats.misses(), 0u);
  EXPECT_GT(warm.cache_stats.hits(), 0u);
  // Every decision of the warm batch is memoized: no level-2 misses.
  EXPECT_EQ(warm.cache_stats.l2_misses, 0u);
  EXPECT_EQ(warm.cache_stats.l1_misses, 0u);
}

// Without a store the report says so and carries zeroed counters.
TEST(BatchCache, DisabledByDefault) {
  const batch::BatchReport report = run_with_jobs(batch::robot_tasks(), 1);
  EXPECT_FALSE(report.cache_enabled);
  EXPECT_EQ(report.cache_stats.hits() + report.cache_stats.misses(), 0u);
  EXPECT_EQ(batch::to_json(report).find("\"cache\""), std::string::npos);
}

TEST(BatchScheduler, ResultsKeepInputOrderAndWorkerIdsAreInRange) {
  const std::vector<batch::SpecTask> tasks = batch::telepromise_tasks();
  const batch::BatchReport report = run_with_jobs(tasks, 3);
  ASSERT_EQ(report.results.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(report.results[i].name, tasks[i].name);
    EXPECT_GE(report.results[i].worker, 0);
    EXPECT_LT(report.results[i].worker, report.jobs);
  }
  EXPECT_EQ(report.consistent + report.inconsistent + report.errors +
                report.budget_exhausted + report.cancelled,
            tasks.size());
}

TEST(BatchScheduler, BudgetExhaustionIsReportedPerTask) {
  batch::BatchOptions options;
  options.jobs = 2;
  options.task_time_budget_seconds = 1e-9;  // expires at the first poll
  const batch::BatchReport report =
      batch::check(batch::robot_tasks(), options);
  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_EQ(report.budget_exhausted, 3u);
  for (const batch::TaskResult& r : report.results) {
    EXPECT_EQ(r.status, batch::TaskStatus::kBudgetExhausted);
    EXPECT_NE(r.detail.find("cancelled before"), std::string::npos);
  }
}

TEST(BatchScheduler, PreRaisedCancelFlagDrainsTheQueue) {
  std::atomic<bool> cancel{true};
  batch::BatchOptions options;
  options.jobs = 4;
  options.cancel = &cancel;
  const batch::BatchReport report =
      batch::check(batch::table1_tasks(), options);
  EXPECT_EQ(report.cancelled, report.results.size());
  for (const batch::TaskResult& r : report.results) {
    EXPECT_EQ(r.status, batch::TaskStatus::kCancelled);
  }
}

TEST(BatchScheduler, MidBatchCancellationStopsRemainingTasks) {
  std::atomic<bool> cancel{false};
  batch::BatchOptions options;
  options.jobs = 1;  // deterministic completion order
  options.cancel = &cancel;
  options.on_result = [&](const batch::TaskResult&) { cancel = true; };
  const batch::BatchReport report =
      batch::check(batch::robot_tasks(), options);
  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_EQ(report.results[0].status, batch::TaskStatus::kConsistent);
  EXPECT_EQ(report.results[1].status, batch::TaskStatus::kCancelled);
  EXPECT_EQ(report.results[2].status, batch::TaskStatus::kCancelled);
  EXPECT_EQ(report.cancelled, 2u);
}

TEST(BatchScheduler, TaskErrorsAreIsolated) {
  std::vector<batch::SpecTask> tasks = batch::robot_tasks();
  tasks.insert(tasks.begin() + 1,
               {"broken", {{"B1", "colorless green ideas sleep furiously"}}});
  const batch::BatchReport report = run_with_jobs(tasks, 2);
  ASSERT_EQ(report.results.size(), 4u);
  EXPECT_EQ(report.results[1].status, batch::TaskStatus::kError);
  EXPECT_FALSE(report.results[1].detail.empty());
  EXPECT_EQ(report.errors, 1u);
  EXPECT_EQ(report.consistent, 3u);  // the robot rows still checked
}

TEST(BatchScheduler, EmptyBatchIsTrivial) {
  const batch::BatchReport report = batch::check({}, {});
  EXPECT_TRUE(report.results.empty());
  EXPECT_TRUE(report.all_consistent());
  EXPECT_EQ(report.steals, 0u);
}

TEST(BatchAgreement, SubstratesAgreeOnTheRobotCorpus) {
  batch::BatchOptions options;
  options.jobs = 2;
  options.check_agreement = true;
  const batch::BatchReport report =
      batch::check(batch::robot_tasks(), options);
  EXPECT_EQ(report.disagreements, 0u);
  for (const batch::TaskResult& r : report.results) {
    ASSERT_TRUE(r.agreement.checked);
    EXPECT_TRUE(r.agreement.agree()) << r.name;
    // The symbolic engine decides every robot row definitively; the
    // tableau can only abstain on these satisfiable specifications.
    EXPECT_EQ(r.agreement.verdict_of("symbolic"),
              speccc::synth::Realizability::kRealizable)
        << r.name;
    EXPECT_EQ(r.agreement.verdict_of("tableau"),
              speccc::synth::Realizability::kUnknown)
        << r.name;
  }
}

TEST(BatchReporting, JsonContainsEverySpecAndTheJobCount) {
  const batch::BatchReport report = run_with_jobs(batch::robot_tasks(), 2);
  const std::string json = batch::to_json(report);
  EXPECT_NE(json.find("\"jobs\": 2"), std::string::npos);
  for (const batch::TaskResult& r : report.results) {
    EXPECT_NE(json.find(r.name), std::string::npos);
  }
}

// The per-worker BDD manager counters are aggregated into the report and
// the JSON document, but stay out of the canonical form: they are engine
// diagnostics, not verdicts.
TEST(BatchReporting, BddStatsSurfaceInJsonButNotInCanonical) {
  const batch::BatchReport report = run_with_jobs(batch::robot_tasks(), 2);
  // Robot corpus specs sit in the symbolic engine's pattern fragment.
  EXPECT_GT(report.bdd.tasks, 0u);
  EXPECT_GT(report.bdd.peak_nodes_max, 0u);
  const std::string json = batch::to_json(report);
  EXPECT_NE(json.find("\"bdd\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_nodes_max\""), std::string::npos);
  EXPECT_NE(json.find("\"bdd_peak_nodes\""), std::string::npos);
  const std::string canon = batch::canonical(report);
  EXPECT_EQ(canon.find("bdd"), std::string::npos);
  EXPECT_EQ(canon.find("peak"), std::string::npos);
}
