// Tests for the BDD package: canonicity, boolean algebra, quantification,
// composition, and a brute-force cross-check against truth tables.
#include <gtest/gtest.h>

#include <vector>

#include "bdd/bdd.hpp"
#include "util/diagnostics.hpp"

namespace bdd = speccc::bdd;

namespace {

class BddTest : public ::testing::Test {
 protected:
  bdd::Manager mgr;
};

TEST_F(BddTest, TerminalsAreDistinct) {
  EXPECT_TRUE(mgr.bdd_true().is_true());
  EXPECT_TRUE(mgr.bdd_false().is_false());
  EXPECT_NE(mgr.bdd_true(), mgr.bdd_false());
}

TEST_F(BddTest, CanonicityIdenticalFunctionsShareNodes) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  bdd::Bdd f = mgr.bdd_or(mgr.var(a), mgr.var(b));
  bdd::Bdd g = mgr.bdd_not(mgr.bdd_and(mgr.nvar(a), mgr.nvar(b)));
  EXPECT_EQ(f, g);  // De Morgan, structurally canonical
}

TEST_F(BddTest, BasicAlgebra) {
  const int a = mgr.new_var();
  bdd::Bdd va = mgr.var(a);
  EXPECT_EQ(va & !va, mgr.bdd_false());
  EXPECT_EQ(va | !va, mgr.bdd_true());
  EXPECT_EQ(va ^ va, mgr.bdd_false());
  EXPECT_EQ(mgr.implies(mgr.bdd_false(), va), mgr.bdd_true());
  EXPECT_EQ(mgr.iff(va, va), mgr.bdd_true());
}

TEST_F(BddTest, IteMatchesDefinition) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  bdd::Bdd f = mgr.ite(mgr.var(a), mgr.var(b), mgr.var(c));
  // Evaluate all 8 assignments.
  for (int m = 0; m < 8; ++m) {
    std::vector<bool> assignment{(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    const bool expected = assignment[0] ? assignment[1] : assignment[2];
    EXPECT_EQ(mgr.evaluate(f, assignment), expected);
  }
}

TEST_F(BddTest, ExistsQuantification) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  // exists a. (a && b) == b
  bdd::Bdd f = mgr.bdd_and(mgr.var(a), mgr.var(b));
  EXPECT_EQ(mgr.exists(f, {a}), mgr.var(b));
  // exists b. (a && b) == a
  EXPECT_EQ(mgr.exists(f, {b}), mgr.var(a));
  // exists a b. (a && b) == true
  EXPECT_EQ(mgr.exists(f, {a, b}), mgr.bdd_true());
}

TEST_F(BddTest, ForallQuantification) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  // forall a. (a || b) == b
  bdd::Bdd f = mgr.bdd_or(mgr.var(a), mgr.var(b));
  EXPECT_EQ(mgr.forall(f, {a}), mgr.var(b));
  // forall a. (a && b) == false
  EXPECT_EQ(mgr.forall(mgr.bdd_and(mgr.var(a), mgr.var(b)), {a}),
            mgr.bdd_false());
}

TEST_F(BddTest, RestrictFixesVariable) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  bdd::Bdd f = mgr.ite(mgr.var(a), mgr.var(b), mgr.nvar(b));
  EXPECT_EQ(mgr.restrict_var(f, a, true), mgr.var(b));
  EXPECT_EQ(mgr.restrict_var(f, a, false), mgr.nvar(b));
}

TEST_F(BddTest, VectorComposeSubstitutesFunctions) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  // f = a && b; substitute a := (b || c): expect (b || c) && b == b.
  bdd::Bdd f = mgr.bdd_and(mgr.var(a), mgr.var(b));
  std::vector<bdd::Bdd> map(static_cast<std::size_t>(mgr.num_vars()));
  map[static_cast<std::size_t>(a)] = mgr.bdd_or(mgr.var(b), mgr.var(c));
  EXPECT_EQ(mgr.vector_compose(f, map), mgr.var(b));
}

TEST_F(BddTest, VectorComposeSimultaneous) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  // Swap a and b in f = a && !b: result should be b && !a.
  bdd::Bdd f = mgr.bdd_and(mgr.var(a), mgr.nvar(b));
  std::vector<bdd::Bdd> map(static_cast<std::size_t>(mgr.num_vars()));
  map[static_cast<std::size_t>(a)] = mgr.var(b);
  map[static_cast<std::size_t>(b)] = mgr.var(a);
  EXPECT_EQ(mgr.vector_compose(f, map), mgr.bdd_and(mgr.var(b), mgr.nvar(a)));
}

TEST_F(BddTest, PickModelReturnsSatisfyingAssignment) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  bdd::Bdd f = mgr.bdd_and(mgr.bdd_and(mgr.nvar(a), mgr.var(b)), mgr.var(c));
  const auto model = mgr.pick_model(f);
  ASSERT_EQ(model.size(), 3u);
  std::vector<bool> assignment(3, false);
  for (const auto& [v, value] : model) assignment[static_cast<std::size_t>(v)] = value;
  EXPECT_TRUE(mgr.evaluate(f, assignment));
  EXPECT_TRUE(mgr.pick_model(mgr.bdd_false()).empty());
}

TEST_F(BddTest, SatCount) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  (void)c;
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_true(), 3), 8.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_false(), 3), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.var(a), 3), 4.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_and(mgr.var(a), mgr.var(b)), 3), 2.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_or(mgr.var(a), mgr.var(b)), 3), 6.0);
}

TEST_F(BddTest, SupportListsUsedVariables) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  bdd::Bdd f = mgr.bdd_or(mgr.var(a), mgr.var(c));
  EXPECT_EQ(mgr.support(f), (std::vector<int>{a, c}));
  EXPECT_TRUE(mgr.support(mgr.bdd_true()).empty());
  (void)b;
}

TEST_F(BddTest, SizeCountsReachableNodes) {
  const int a = mgr.new_var();
  EXPECT_EQ(mgr.size(mgr.bdd_true()), 0u);
  EXPECT_EQ(mgr.size(mgr.var(a)), 1u);
}

// Brute-force cross-check: random circuits over 6 variables evaluated both
// as BDDs and directly.
class BddRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomTest, AgreesWithTruthTable) {
  speccc::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 99);
  bdd::Manager mgr;
  constexpr int kVars = 6;
  for (int i = 0; i < kVars; ++i) (void)mgr.new_var();

  // Build a random expression tree as parallel vectors of ops.
  struct Gate {
    int op;  // 0 and, 1 or, 2 xor, 3 not
    int lhs;  // negative: variable ~lhs; non-negative: gate index
    int rhs;
  };
  std::vector<Gate> gates;
  const int gate_count = 8 + static_cast<int>(rng.below(12));
  for (int g = 0; g < gate_count; ++g) {
    Gate gate;
    gate.op = static_cast<int>(rng.below(4));
    const auto operand = [&](bool allow_gate) -> int {
      if (allow_gate && g > 0 && rng.chance(1, 2)) {
        return static_cast<int>(rng.below(static_cast<std::uint64_t>(g)));
      }
      return ~static_cast<int>(rng.below(kVars));
    };
    gate.lhs = operand(true);
    gate.rhs = operand(true);
    gates.push_back(gate);
  }

  // Build the BDD bottom-up.
  std::vector<bdd::Bdd> gate_bdd;
  for (const Gate& g : gates) {
    const auto fetch = [&](int operand) {
      return operand < 0 ? mgr.var(~operand) : gate_bdd[static_cast<std::size_t>(operand)];
    };
    bdd::Bdd lhs = fetch(g.lhs);
    bdd::Bdd rhs = fetch(g.rhs);
    switch (g.op) {
      case 0: gate_bdd.push_back(lhs & rhs); break;
      case 1: gate_bdd.push_back(lhs | rhs); break;
      case 2: gate_bdd.push_back(lhs ^ rhs); break;
      default: gate_bdd.push_back(!lhs); break;
    }
  }
  bdd::Bdd f = gate_bdd.back();

  // Evaluate all 64 assignments both ways.
  for (int m = 0; m < (1 << kVars); ++m) {
    std::vector<bool> assignment(kVars);
    for (int v = 0; v < kVars; ++v) assignment[static_cast<std::size_t>(v)] = ((m >> v) & 1) != 0;
    std::vector<bool> gate_val;
    for (const Gate& g : gates) {
      const auto fetch = [&](int operand) {
        return operand < 0 ? assignment[static_cast<std::size_t>(~operand)]
                           : gate_val[static_cast<std::size_t>(operand)];
      };
      const bool lhs = fetch(g.lhs);
      const bool rhs = fetch(g.rhs);
      switch (g.op) {
        case 0: gate_val.push_back(lhs && rhs); break;
        case 1: gate_val.push_back(lhs || rhs); break;
        case 2: gate_val.push_back(lhs != rhs); break;
        default: gate_val.push_back(!lhs); break;
      }
    }
    EXPECT_EQ(mgr.evaluate(f, assignment), gate_val.back())
        << "mismatch at assignment " << m;
  }

  // Quantification cross-check: exists over var 0 equals the OR of the two
  // cofactors.
  bdd::Bdd ex = mgr.exists(f, {0});
  bdd::Bdd orcof = mgr.restrict_var(f, 0, false) | mgr.restrict_var(f, 0, true);
  EXPECT_EQ(ex, orcof);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BddRandomTest, ::testing::Range(0, 20));

}  // namespace
