// Tests for the BDD package: canonicity, boolean algebra, quantification,
// composition, complement-edge canonical-form invariants, the fused
// operators, cache hygiene, and a brute-force cross-check against truth
// tables.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "bdd/bdd.hpp"
#include "util/diagnostics.hpp"

namespace bdd = speccc::bdd;

namespace {

class BddTest : public ::testing::Test {
 protected:
  bdd::Manager mgr;
};

TEST_F(BddTest, TerminalsAreDistinct) {
  EXPECT_TRUE(mgr.bdd_true().is_true());
  EXPECT_TRUE(mgr.bdd_false().is_false());
  EXPECT_NE(mgr.bdd_true(), mgr.bdd_false());
}

TEST_F(BddTest, CanonicityIdenticalFunctionsShareNodes) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  bdd::Bdd f = mgr.bdd_or(mgr.var(a), mgr.var(b));
  bdd::Bdd g = mgr.bdd_not(mgr.bdd_and(mgr.nvar(a), mgr.nvar(b)));
  EXPECT_EQ(f, g);  // De Morgan, structurally canonical
}

TEST_F(BddTest, BasicAlgebra) {
  const int a = mgr.new_var();
  bdd::Bdd va = mgr.var(a);
  EXPECT_EQ(va & !va, mgr.bdd_false());
  EXPECT_EQ(va | !va, mgr.bdd_true());
  EXPECT_EQ(va ^ va, mgr.bdd_false());
  EXPECT_EQ(mgr.implies(mgr.bdd_false(), va), mgr.bdd_true());
  EXPECT_EQ(mgr.iff(va, va), mgr.bdd_true());
}

TEST_F(BddTest, IteMatchesDefinition) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  bdd::Bdd f = mgr.ite(mgr.var(a), mgr.var(b), mgr.var(c));
  // Evaluate all 8 assignments.
  for (int m = 0; m < 8; ++m) {
    std::vector<bool> assignment{(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    const bool expected = assignment[0] ? assignment[1] : assignment[2];
    EXPECT_EQ(mgr.evaluate(f, assignment), expected);
  }
}

TEST_F(BddTest, ExistsQuantification) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  // exists a. (a && b) == b
  bdd::Bdd f = mgr.bdd_and(mgr.var(a), mgr.var(b));
  EXPECT_EQ(mgr.exists(f, {a}), mgr.var(b));
  // exists b. (a && b) == a
  EXPECT_EQ(mgr.exists(f, {b}), mgr.var(a));
  // exists a b. (a && b) == true
  EXPECT_EQ(mgr.exists(f, {a, b}), mgr.bdd_true());
}

TEST_F(BddTest, ForallQuantification) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  // forall a. (a || b) == b
  bdd::Bdd f = mgr.bdd_or(mgr.var(a), mgr.var(b));
  EXPECT_EQ(mgr.forall(f, {a}), mgr.var(b));
  // forall a. (a && b) == false
  EXPECT_EQ(mgr.forall(mgr.bdd_and(mgr.var(a), mgr.var(b)), {a}),
            mgr.bdd_false());
}

TEST_F(BddTest, RestrictFixesVariable) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  bdd::Bdd f = mgr.ite(mgr.var(a), mgr.var(b), mgr.nvar(b));
  EXPECT_EQ(mgr.restrict_var(f, a, true), mgr.var(b));
  EXPECT_EQ(mgr.restrict_var(f, a, false), mgr.nvar(b));
}

TEST_F(BddTest, VectorComposeSubstitutesFunctions) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  // f = a && b; substitute a := (b || c): expect (b || c) && b == b.
  bdd::Bdd f = mgr.bdd_and(mgr.var(a), mgr.var(b));
  std::vector<bdd::Bdd> map(static_cast<std::size_t>(mgr.num_vars()));
  map[static_cast<std::size_t>(a)] = mgr.bdd_or(mgr.var(b), mgr.var(c));
  EXPECT_EQ(mgr.vector_compose(f, map), mgr.var(b));
}

TEST_F(BddTest, VectorComposeSimultaneous) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  // Swap a and b in f = a && !b: result should be b && !a.
  bdd::Bdd f = mgr.bdd_and(mgr.var(a), mgr.nvar(b));
  std::vector<bdd::Bdd> map(static_cast<std::size_t>(mgr.num_vars()));
  map[static_cast<std::size_t>(a)] = mgr.var(b);
  map[static_cast<std::size_t>(b)] = mgr.var(a);
  EXPECT_EQ(mgr.vector_compose(f, map), mgr.bdd_and(mgr.var(b), mgr.nvar(a)));
}

TEST_F(BddTest, PickModelReturnsSatisfyingAssignment) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  bdd::Bdd f = mgr.bdd_and(mgr.bdd_and(mgr.nvar(a), mgr.var(b)), mgr.var(c));
  const auto model = mgr.pick_model(f);
  ASSERT_EQ(model.size(), 3u);
  std::vector<bool> assignment(3, false);
  for (const auto& [v, value] : model) assignment[static_cast<std::size_t>(v)] = value;
  EXPECT_TRUE(mgr.evaluate(f, assignment));
  EXPECT_TRUE(mgr.pick_model(mgr.bdd_false()).empty());
}

TEST_F(BddTest, SatCount) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  (void)c;
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_true(), 3), 8.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_false(), 3), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.var(a), 3), 4.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_and(mgr.var(a), mgr.var(b)), 3), 2.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_or(mgr.var(a), mgr.var(b)), 3), 6.0);
}

TEST_F(BddTest, SupportListsUsedVariables) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  bdd::Bdd f = mgr.bdd_or(mgr.var(a), mgr.var(c));
  EXPECT_EQ(mgr.support(f), (std::vector<int>{a, c}));
  EXPECT_TRUE(mgr.support(mgr.bdd_true()).empty());
  (void)b;
}

TEST_F(BddTest, SizeCountsReachableNodes) {
  const int a = mgr.new_var();
  EXPECT_EQ(mgr.size(mgr.bdd_true()), 0u);
  EXPECT_EQ(mgr.size(mgr.var(a)), 1u);
}

// ---- Complement edges -------------------------------------------------------

TEST_F(BddTest, NegationIsFreeAndShared) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  bdd::Bdd f = (mgr.var(a) & mgr.var(b)) | (mgr.nvar(b) ^ mgr.var(c));
  const std::size_t nodes_before = mgr.node_count();
  bdd::Bdd nf = mgr.bdd_not(f);
  // O(1) negation: no nodes allocated, same DAG, double negation exact.
  EXPECT_EQ(mgr.node_count(), nodes_before);
  EXPECT_EQ(mgr.size(f), mgr.size(nf));
  EXPECT_EQ(mgr.bdd_not(nf), f);
  EXPECT_NE(nf, f);
  EXPECT_EQ(f & nf, mgr.bdd_false());
  EXPECT_EQ(f | nf, mgr.bdd_true());
}

TEST_F(BddTest, CanonicalFormInvariantsHoldAfterMixedWorkload) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  const int d = mgr.new_var();
  bdd::Bdd f = mgr.iff(mgr.var(a) ^ mgr.var(b), mgr.var(c) & mgr.nvar(d));
  f = f | mgr.implies(mgr.var(b), mgr.var(d));
  (void)mgr.exists(f, {a, c});
  (void)mgr.forall(f, {b});
  (void)mgr.and_exists(f, mgr.bdd_not(f) | mgr.var(a), {c, d});
  std::vector<bdd::Bdd> map(static_cast<std::size_t>(mgr.num_vars()));
  map[static_cast<std::size_t>(a)] = mgr.var(d) ^ mgr.var(b);
  (void)mgr.vector_compose(f, map);
  EXPECT_TRUE(mgr.check_canonical());
}

TEST_F(BddTest, CubeBuildsTheMinterm) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  const bdd::Bdd cube = mgr.cube({{b, false}, {a, true}, {c, true}});
  EXPECT_EQ(cube,
            mgr.var(a) & mgr.nvar(b) & mgr.var(c));
  // A repeated variable (either polarity) is rejected outright: silently
  // stacking two nodes on one level would break the arena's ordering
  // invariant for every later operation.
  EXPECT_THROW((void)mgr.cube({{a, true}, {a, false}}),
               speccc::util::InternalError);
  EXPECT_THROW((void)mgr.cube({{a, true}, {a, true}}),
               speccc::util::InternalError);
  EXPECT_TRUE(mgr.check_canonical());
}

// ---- Fused operators --------------------------------------------------------

TEST_F(BddTest, AndExistsMatchesStagedForm) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  bdd::Bdd f = mgr.bdd_or(mgr.var(a), mgr.var(b));
  bdd::Bdd g = mgr.bdd_or(mgr.nvar(a), mgr.var(c));
  EXPECT_EQ(mgr.and_exists(f, g, {a}), mgr.exists(f & g, {a}));
  EXPECT_EQ(mgr.and_exists(f, g, {a, b, c}), mgr.bdd_true());
  EXPECT_EQ(mgr.and_exists(f, mgr.bdd_not(f), {a}), mgr.bdd_false());
  // Empty quantifier set degrades to plain conjunction.
  EXPECT_EQ(mgr.and_exists(f, g, {}), f & g);
}

TEST_F(BddTest, ForallImpliesMatchesStagedForm) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  bdd::Bdd f = mgr.var(a);
  bdd::Bdd g = mgr.bdd_and(mgr.var(a), mgr.var(b));
  // forall a. (a -> a && b) == b
  EXPECT_EQ(mgr.forall_implies(f, g, {a}), mgr.var(b));
  EXPECT_EQ(mgr.forall_implies(f, g, {a}),
            mgr.forall(mgr.implies(f, g), {a}));
  // Containment test collapsing to a terminal: (a && b) -> a is valid.
  EXPECT_TRUE(mgr.forall_implies(g, f, {a, b}).is_true());
  EXPECT_FALSE(mgr.forall_implies(f, g, {a, b}).is_true());
}

TEST_F(BddTest, PreimageMatchesComposeAndExists) {
  // Two state bits, one input, one output; next s0 = in, next s1 = s0 ^ out.
  const int s0 = mgr.new_var();
  const int s1 = mgr.new_var();
  const int in = mgr.new_var();
  const int out = mgr.new_var();
  std::vector<bdd::Bdd> map(static_cast<std::size_t>(mgr.num_vars()));
  map[static_cast<std::size_t>(s0)] = mgr.var(in);
  map[static_cast<std::size_t>(s1)] = mgr.var(s0) ^ mgr.var(out);
  const bdd::Bdd target = mgr.bdd_and(mgr.var(s0), mgr.nvar(s1));
  const bdd::Bdd safe = mgr.implies(mgr.var(in), mgr.var(out));
  const bdd::Bdd fused = mgr.preimage(target, map, safe, {out});
  const bdd::Bdd staged =
      mgr.exists(safe & mgr.vector_compose(target, map), {out});
  EXPECT_EQ(fused, staged);
}

TEST_F(BddTest, CofactorFixesSeveralLiteralsInOnePass) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  bdd::Bdd f = mgr.ite(mgr.var(a), mgr.var(b) ^ mgr.var(c), mgr.nvar(c));
  EXPECT_EQ(mgr.cofactor(f, {{a, true}, {b, false}}), mgr.var(c));
  EXPECT_EQ(mgr.cofactor(f, {{a, false}}), mgr.nvar(c));
  EXPECT_EQ(mgr.cofactor(f, {}), f);
}

// ---- Cache hygiene and statistics -------------------------------------------

TEST_F(BddTest, ClearCachesIsSafeAndResultsAreStable) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  bdd::Bdd f = mgr.iff(mgr.var(a), mgr.var(b) & mgr.var(c));
  const bdd::Bdd ex = mgr.exists(f, {b});
  const bdd::Bdd product = mgr.and_exists(f, mgr.var(c), {a});
  mgr.clear_caches();
  // Handles survive, recomputation lands on the identical canonical edges,
  // and the canonical form is intact.
  EXPECT_EQ(mgr.exists(f, {b}), ex);
  EXPECT_EQ(mgr.and_exists(f, mgr.var(c), {a}), product);
  EXPECT_EQ(f & mgr.bdd_not(f), mgr.bdd_false());
  EXPECT_TRUE(mgr.check_canonical());
}

TEST_F(BddTest, StatsCountCacheAndUniqueTraffic) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  bdd::Bdd f = (mgr.var(a) | mgr.var(b)) & mgr.var(c);
  const bdd::Stats after_build = mgr.stats();
  EXPECT_GT(after_build.peak_nodes, 0u);
  // Rebuilding the same function is pure unique-table / cache traffic.
  bdd::Bdd g = (mgr.var(a) | mgr.var(b)) & mgr.var(c);
  EXPECT_EQ(f, g);
  const bdd::Stats after_rebuild = mgr.stats();
  EXPECT_EQ(after_rebuild.peak_nodes, after_build.peak_nodes);
  EXPECT_GT(after_rebuild.unique_hits + after_rebuild.cache_hits,
            after_build.unique_hits + after_build.cache_hits);
}

// ---- Deterministic models ---------------------------------------------------

TEST_F(BddTest, PickModelIsDeterministicAcrossManagers) {
  const auto build = [](bdd::Manager& m) {
    const int a = m.new_var();
    const int b = m.new_var();
    const int c = m.new_var();
    (void)a;
    return m.bdd_or(m.bdd_and(m.var(b), m.nvar(c)),
                    m.bdd_and(m.nvar(b), m.var(c)));
  };
  bdd::Bdd f = build(mgr);
  const auto first = mgr.pick_model(f);
  EXPECT_EQ(mgr.pick_model(f), first);  // repeated calls
  bdd::Manager fresh;
  EXPECT_EQ(fresh.pick_model(build(fresh)), first);  // fresh manager
}

TEST_F(BddTest, ConstrainedPickModelRespectsFixedLiterals) {
  const int a = mgr.new_var();
  const int b = mgr.new_var();
  const int c = mgr.new_var();
  bdd::Bdd f = mgr.iff(mgr.var(a), mgr.var(b) ^ mgr.var(c));
  const auto model = mgr.pick_model(f, {{a, true}, {b, false}});
  ASSERT_FALSE(model.empty());
  std::vector<bool> assignment(3, false);
  for (const auto& [v, value] : model) {
    assignment[static_cast<std::size_t>(v)] = value;
  }
  EXPECT_TRUE(assignment[0]);
  EXPECT_FALSE(assignment[1]);
  EXPECT_TRUE(mgr.evaluate(f, assignment));
  // Unsatisfiable under the fixed literals: a && !b && !c contradicts iff.
  EXPECT_TRUE(mgr.pick_model(f, {{a, true}, {b, false}, {c, false}}).empty());
  // Deterministic, like the unconstrained form.
  EXPECT_EQ(mgr.pick_model(f, {{a, true}, {b, false}}), model);
}

// Brute-force cross-check: random circuits over 6 variables evaluated both
// as BDDs and directly.
class BddRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomTest, AgreesWithTruthTable) {
  speccc::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 99);
  bdd::Manager mgr;
  constexpr int kVars = 6;
  for (int i = 0; i < kVars; ++i) (void)mgr.new_var();

  // Build a random expression tree as parallel vectors of ops.
  struct Gate {
    int op;  // 0 and, 1 or, 2 xor, 3 not
    int lhs;  // negative: variable ~lhs; non-negative: gate index
    int rhs;
  };
  std::vector<Gate> gates;
  const int gate_count = 8 + static_cast<int>(rng.below(12));
  for (int g = 0; g < gate_count; ++g) {
    Gate gate;
    gate.op = static_cast<int>(rng.below(4));
    const auto operand = [&](bool allow_gate) -> int {
      if (allow_gate && g > 0 && rng.chance(1, 2)) {
        return static_cast<int>(rng.below(static_cast<std::uint64_t>(g)));
      }
      return ~static_cast<int>(rng.below(kVars));
    };
    gate.lhs = operand(true);
    gate.rhs = operand(true);
    gates.push_back(gate);
  }

  // Build the BDD bottom-up.
  std::vector<bdd::Bdd> gate_bdd;
  for (const Gate& g : gates) {
    const auto fetch = [&](int operand) {
      return operand < 0 ? mgr.var(~operand) : gate_bdd[static_cast<std::size_t>(operand)];
    };
    bdd::Bdd lhs = fetch(g.lhs);
    bdd::Bdd rhs = fetch(g.rhs);
    switch (g.op) {
      case 0: gate_bdd.push_back(lhs & rhs); break;
      case 1: gate_bdd.push_back(lhs | rhs); break;
      case 2: gate_bdd.push_back(lhs ^ rhs); break;
      default: gate_bdd.push_back(!lhs); break;
    }
  }
  bdd::Bdd f = gate_bdd.back();

  // Evaluate all 64 assignments both ways.
  for (int m = 0; m < (1 << kVars); ++m) {
    std::vector<bool> assignment(kVars);
    for (int v = 0; v < kVars; ++v) assignment[static_cast<std::size_t>(v)] = ((m >> v) & 1) != 0;
    std::vector<bool> gate_val;
    for (const Gate& g : gates) {
      const auto fetch = [&](int operand) {
        return operand < 0 ? assignment[static_cast<std::size_t>(~operand)]
                           : gate_val[static_cast<std::size_t>(operand)];
      };
      const bool lhs = fetch(g.lhs);
      const bool rhs = fetch(g.rhs);
      switch (g.op) {
        case 0: gate_val.push_back(lhs && rhs); break;
        case 1: gate_val.push_back(lhs || rhs); break;
        case 2: gate_val.push_back(lhs != rhs); break;
        default: gate_val.push_back(!lhs); break;
      }
    }
    EXPECT_EQ(mgr.evaluate(f, assignment), gate_val.back())
        << "mismatch at assignment " << m;
  }

  // Quantification cross-check: exists over var 0 equals the OR of the two
  // cofactors.
  bdd::Bdd ex = mgr.exists(f, {0});
  bdd::Bdd orcof = mgr.restrict_var(f, 0, false) | mgr.restrict_var(f, 0, true);
  EXPECT_EQ(ex, orcof);

  // Fused operators against their staged definitions, on two random
  // operands from the same circuit.
  bdd::Bdd g = gate_bdd[gate_bdd.size() / 2];
  const std::vector<int> quantified = {1, 3, 4};
  EXPECT_EQ(mgr.and_exists(f, g, quantified),
            mgr.exists(f & g, quantified));
  EXPECT_EQ(mgr.forall_implies(f, g, quantified),
            mgr.forall(mgr.implies(f, g), quantified));

  // Signed-cube cofactor against sequential restriction.
  EXPECT_EQ(mgr.cofactor(f, {{0, true}, {2, false}, {5, true}}),
            mgr.restrict_var(mgr.restrict_var(
                                 mgr.restrict_var(f, 0, true), 2, false),
                             5, true));

  // Composition cross-check under every assignment: substituting g for
  // var 1 in f must evaluate like f with bit 1 replaced by g's value.
  std::vector<bdd::Bdd> map(static_cast<std::size_t>(mgr.num_vars()));
  map[1] = g;
  bdd::Bdd composed = mgr.vector_compose(f, map);
  for (int m = 0; m < (1 << kVars); ++m) {
    std::vector<bool> assignment(kVars);
    for (int v = 0; v < kVars; ++v) {
      assignment[static_cast<std::size_t>(v)] = ((m >> v) & 1) != 0;
    }
    std::vector<bool> substituted = assignment;
    substituted[1] = mgr.evaluate(g, assignment);
    EXPECT_EQ(mgr.evaluate(composed, assignment),
              mgr.evaluate(f, substituted));
  }

  // Constrained pick_model: whenever some completion of the fixed bits
  // satisfies f, the returned model must be one.
  const std::vector<std::pair<int, bool>> fixed = {
      {0, (GetParam() & 1) != 0}, {3, (GetParam() & 2) != 0}};
  const auto model = mgr.pick_model(f, fixed);
  bool satisfiable = false;
  for (int m = 0; m < (1 << kVars) && !satisfiable; ++m) {
    std::vector<bool> assignment(kVars);
    for (int v = 0; v < kVars; ++v) {
      assignment[static_cast<std::size_t>(v)] = ((m >> v) & 1) != 0;
    }
    bool consistent = true;
    for (const auto& [v, value] : fixed) {
      consistent = consistent && assignment[static_cast<std::size_t>(v)] == value;
    }
    satisfiable = consistent && mgr.evaluate(f, assignment);
  }
  EXPECT_EQ(!model.empty() || f.is_true(), satisfiable);
  if (!model.empty()) {
    std::vector<bool> assignment(kVars, false);
    for (const auto& [v, value] : fixed) {
      assignment[static_cast<std::size_t>(v)] = value;
    }
    for (const auto& [v, value] : model) {
      assignment[static_cast<std::size_t>(v)] = value;
    }
    EXPECT_TRUE(mgr.evaluate(f, assignment));
  }

  // The whole workload must leave the arena in canonical form.
  EXPECT_TRUE(mgr.check_canonical());
}

INSTANTIATE_TEST_SUITE_P(Sweep, BddRandomTest, ::testing::Range(0, 20));

}  // namespace
