// Tests for the game solvers: explicit safety arenas and symbolic
// generalized-Buechi games.
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "game/safety.hpp"
#include "game/symbolic.hpp"

namespace game = speccc::game;
namespace bdd = speccc::bdd;

namespace {

TEST(SafetyGame, TrivialSurvival) {
  // SAFE position looping onto itself survives.
  game::Arena arena;
  const int p = arena.add_position(game::Owner::kSafe);
  arena.add_move(p, p);
  arena.initial = p;
  const auto r = game::solve(arena);
  EXPECT_TRUE(r.initial_safe(arena));
}

TEST(SafetyGame, DeadPositionLoses) {
  game::Arena arena;
  const int p = arena.add_position(game::Owner::kSafe, /*is_dead=*/true);
  arena.add_move(p, p);
  arena.initial = p;
  EXPECT_FALSE(game::solve(arena).initial_safe(arena));
}

TEST(SafetyGame, StuckSafePlayerLoses) {
  game::Arena arena;
  const int p = arena.add_position(game::Owner::kSafe);
  arena.initial = p;
  EXPECT_FALSE(game::solve(arena).initial_safe(arena));
}

TEST(SafetyGame, StuckReachPlayerWinsForSafe) {
  game::Arena arena;
  const int p = arena.add_position(game::Owner::kReach);
  arena.initial = p;
  EXPECT_TRUE(game::solve(arena).initial_safe(arena));
}

TEST(SafetyGame, ReachPicksTheBadBranch) {
  // REACH chooses between a safe loop and a dead end: REACH wins.
  game::Arena arena;
  const int r = arena.add_position(game::Owner::kReach);
  const int safe_loop = arena.add_position(game::Owner::kSafe);
  const int doom = arena.add_position(game::Owner::kSafe, /*is_dead=*/true);
  arena.add_move(r, safe_loop);
  arena.add_move(r, doom);
  arena.add_move(safe_loop, r);
  arena.initial = r;
  const auto result = game::solve(arena);
  EXPECT_FALSE(result.initial_safe(arena));
}

TEST(SafetyGame, SafeEscapesOneBadMove) {
  // SAFE has one bad move and one good loop: SAFE wins.
  game::Arena arena;
  const int s = arena.add_position(game::Owner::kSafe);
  const int doom = arena.add_position(game::Owner::kSafe, true);
  arena.add_move(s, doom);
  arena.add_move(s, s);
  arena.initial = s;
  EXPECT_TRUE(game::solve(arena).initial_safe(arena));
}

TEST(SafetyGame, AlternatingChainAttractor) {
  // r0 -> s0 -> r1 -> s1 -> doom, with no escapes: REACH drags the play in.
  game::Arena arena;
  const int r0 = arena.add_position(game::Owner::kReach);
  const int s0 = arena.add_position(game::Owner::kSafe);
  const int r1 = arena.add_position(game::Owner::kReach);
  const int s1 = arena.add_position(game::Owner::kSafe);
  const int doom = arena.add_position(game::Owner::kSafe, true);
  arena.add_move(r0, s0);
  arena.add_move(s0, r1);
  arena.add_move(r1, s1);
  arena.add_move(s1, doom);
  arena.initial = r0;
  const auto result = game::solve(arena);
  EXPECT_FALSE(result.initial_safe(arena));
  // But s1 with an extra self-loop escapes.
  arena.add_move(s1, s0);
  const auto result2 = game::solve(arena);
  EXPECT_TRUE(result2.initial_safe(arena));
}

// ---- Symbolic games ---------------------------------------------------------

struct Fixture {
  bdd::Manager mgr;
  game::SymbolicGame g;

  Fixture() { g.manager = &mgr; }

  int in() {
    const int v = mgr.new_var();
    g.input_vars.push_back(v);
    return v;
  }
  int out() {
    const int v = mgr.new_var();
    g.output_vars.push_back(v);
    return v;
  }
  int state(bool init, std::vector<std::pair<int, bool>>& init_bits) {
    const int v = mgr.new_var();
    g.state_vars.push_back(v);
    init_bits.push_back({v, init});
    return v;
  }
  void finish(const std::vector<std::pair<int, bool>>& init_bits) {
    bdd::Bdd init = mgr.bdd_true();
    for (const auto& [v, val] : init_bits) init = init & mgr.literal(v, val);
    g.initial = init;
    if (g.safe.is_null()) g.safe = mgr.bdd_true();
  }
};

TEST(SymbolicGame, CopyInputToOutputIsRealizable) {
  // safe: out == in (combinational); no state.
  Fixture f;
  const int i = f.in();
  const int o = f.out();
  f.g.safe = f.mgr.iff(f.mgr.var(i), f.mgr.var(o));
  std::vector<std::pair<int, bool>> bits;
  f.finish(bits);
  const auto sol = game::solve(f.g);
  EXPECT_TRUE(sol.realizable);
}

TEST(SymbolicGame, OutputMustPredictNextInputIsUnrealizable) {
  // State remembers the previous output; safety: previous output == current
  // input. The environment falsifies it by playing the opposite input.
  Fixture f;
  const int i = f.in();
  const int o = f.out();
  std::vector<std::pair<int, bool>> bits;
  const int mem = f.state(false, bits);
  const int armed = f.state(false, bits);  // first step has no obligation
  f.g.next_state = {f.mgr.var(o), f.mgr.bdd_true()};
  f.g.safe = f.mgr.implies(f.mgr.var(armed),
                           f.mgr.iff(f.mgr.var(mem), f.mgr.var(i)));
  f.finish(bits);
  const auto sol = game::solve(f.g);
  EXPECT_FALSE(sol.realizable);
}

TEST(SymbolicGame, BuechiVisitRequiresControllableProgress) {
  // One state bit toggled by the output; Buechi set {bit}. System controls
  // the toggle, so it can visit infinitely often: realizable.
  Fixture f;
  (void)f.in();
  const int o = f.out();
  std::vector<std::pair<int, bool>> bits;
  const int b = f.state(false, bits);
  f.g.next_state = {f.mgr.var(o)};
  f.g.buchi = {f.mgr.var(b)};
  f.finish(bits);
  EXPECT_TRUE(game::solve(f.g).realizable);
}

TEST(SymbolicGame, BuechiUnreachableTarget) {
  // The Buechi predicate requires a state bit that never becomes true.
  Fixture f;
  (void)f.in();
  (void)f.out();
  std::vector<std::pair<int, bool>> bits;
  const int b = f.state(false, bits);
  f.g.next_state = {f.mgr.bdd_false()};  // bit stays false forever
  f.g.buchi = {f.mgr.var(b)};
  f.finish(bits);
  EXPECT_FALSE(game::solve(f.g).realizable);
}

TEST(SymbolicGame, EnvironmentControlledBuechiIsUnrealizable) {
  // The Buechi bit copies the input: the environment can starve it.
  Fixture f;
  const int i = f.in();
  (void)f.out();
  std::vector<std::pair<int, bool>> bits;
  const int b = f.state(false, bits);
  f.g.next_state = {f.mgr.var(i)};
  f.g.buchi = {f.mgr.var(b)};
  f.finish(bits);
  EXPECT_FALSE(game::solve(f.g).realizable);
}

TEST(SymbolicGame, SafetyAndLivenessInteract) {
  // Output bit feeds both a safety constraint (out must equal in) and a
  // Buechi set over a latch of out: env can force out=false forever by
  // playing in=false, starving the Buechi set: unrealizable.
  Fixture f;
  const int i = f.in();
  const int o = f.out();
  std::vector<std::pair<int, bool>> bits;
  const int latch = f.state(false, bits);
  f.g.next_state = {f.mgr.var(o)};
  f.g.safe = f.mgr.iff(f.mgr.var(i), f.mgr.var(o));
  f.g.buchi = {f.mgr.var(latch)};
  f.finish(bits);
  EXPECT_FALSE(game::solve(f.g).realizable);
}

}  // namespace
