// Tests for time abstraction (paper Section IV-E): the GCD reduction, the
// paper's worked example, and enumeration-vs-SMT backend agreement.
#include <gtest/gtest.h>

#include <tuple>

#include "timeabs/abstraction.hpp"
#include "util/diagnostics.hpp"

namespace timeabs = speccc::timeabs;
using timeabs::Backend;
using timeabs::ErrorSign;

namespace {

TEST(TimeAbs, GcdReductionPaperExample) {
  // Req-08/28/42: {3, 180, 60} -> gcd 3 -> {1, 60, 20}.
  const auto abs = timeabs::gcd_abstraction({3, 180, 60});
  EXPECT_EQ(abs.divisor, 3u);
  EXPECT_EQ(abs.reduced, (std::vector<std::uint32_t>{1, 60, 20}));
  EXPECT_EQ(abs.error_sum, 0u);
}

TEST(TimeAbs, GcdOfCoprimeLengthsIsIdentity) {
  const auto abs = timeabs::gcd_abstraction({3, 7});
  EXPECT_EQ(abs.divisor, 1u);
  EXPECT_EQ(abs.reduced, (std::vector<std::uint32_t>{3, 7}));
}

TEST(TimeAbs, GcdRejectsEmptyAndZero) {
  EXPECT_THROW((void)timeabs::gcd_abstraction({}), speccc::util::InvalidInputError);
  EXPECT_THROW((void)timeabs::gcd_abstraction({0, 3}),
               speccc::util::InvalidInputError);
}

TEST(TimeAbs, PaperOptimizationExample) {
  // Theta = {3, 180, 60}, all Delta_i >= 0, B = 5
  // => d = 60, theta' = (0, 3, 1), Delta = (3, 0, 0).
  timeabs::Request req;
  req.thetas = {3, 180, 60};
  req.error_budget = 5;
  const auto abs = timeabs::optimize_exact(req);
  EXPECT_EQ(abs.divisor, 60u);
  EXPECT_EQ(abs.reduced, (std::vector<std::uint32_t>{0, 3, 1}));
  EXPECT_EQ(abs.errors, (std::vector<std::int64_t>{3, 0, 0}));
  EXPECT_EQ(abs.reduced_sum, 4u);
  EXPECT_EQ(abs.error_sum, 3u);
}

TEST(TimeAbs, PaperExampleViaSmtBackend) {
  timeabs::Request req;
  req.thetas = {3, 180, 60};
  req.error_budget = 5;
  const auto abs = timeabs::optimize(req, Backend::kSmt);
  ASSERT_TRUE(abs.has_value());
  // The SMT backend must reach the same optimum; divisor choice among
  // equally-optimal solutions may differ, but the objective values must not.
  EXPECT_EQ(abs->reduced_sum, 4u);
  EXPECT_EQ(abs->error_sum, 3u);
  // Verify the arithmetic of the returned witness.
  for (std::size_t i = 0; i < req.thetas.size(); ++i) {
    EXPECT_EQ(static_cast<std::int64_t>(req.thetas[i]),
              static_cast<std::int64_t>(abs->reduced[i]) * abs->divisor +
                  abs->errors[i]);
  }
}

TEST(TimeAbs, ZeroBudgetDegeneratesToDivisorOfAll) {
  // With B = 0 every theta must divide exactly; best divisor is the gcd.
  timeabs::Request req;
  req.thetas = {12, 18, 30};
  req.error_budget = 0;
  const auto abs = timeabs::optimize_exact(req);
  EXPECT_EQ(abs.divisor, 6u);
  EXPECT_EQ(abs.reduced, (std::vector<std::uint32_t>{2, 3, 5}));
  EXPECT_EQ(abs.error_sum, 0u);
}

TEST(TimeAbs, LateArrivalSigns) {
  // theta = 7 with late arrivals (Delta <= 0): the best reduced sum is 1,
  // achieved exactly by d = 7 (Delta = 0), which also wins the secondary
  // objective over d = 8 (Delta = -1).
  timeabs::Request req;
  req.thetas = {7};
  req.error_budget = 1;
  req.signs = {ErrorSign::kLate};
  const auto abs = timeabs::optimize_exact(req);
  EXPECT_EQ(abs.reduced_sum, 1u);
  EXPECT_EQ(abs.divisor, 7u);
  EXPECT_EQ(abs.errors[0], 0);
  // theta = theta' * d + Delta must hold.
  EXPECT_EQ(7, static_cast<std::int64_t>(abs.reduced[0]) * abs.divisor +
                   abs.errors[0]);

  // With a tighter shape where exact division is impossible (theta = 7,
  // budget forces d = 8 to be considered): request two thetas {7, 8}; d = 8
  // yields theta' = (1, 1) with Delta = (-1, 0).
  timeabs::Request req2;
  req2.thetas = {7, 8};
  req2.error_budget = 1;
  req2.signs = {ErrorSign::kLate, ErrorSign::kLate};
  const auto abs2 = timeabs::optimize_exact(req2);
  EXPECT_EQ(abs2.divisor, 8u);
  EXPECT_EQ(abs2.reduced, (std::vector<std::uint32_t>{1, 1}));
  EXPECT_EQ(abs2.errors, (std::vector<std::int64_t>{-1, 0}));
}

TEST(TimeAbs, EitherSignPicksBestDirection) {
  // {9, 21}: with budget 2 and free signs, d = 10 gives
  // 9 = 1*10 - 1 (late), 21 = 2*10 + 1 (early): reduced sum 3, error 2.
  timeabs::Request req;
  req.thetas = {9, 21};
  req.error_budget = 2;
  req.signs = {ErrorSign::kEither, ErrorSign::kEither};
  const auto abs = timeabs::optimize_exact(req);
  EXPECT_LE(abs.reduced_sum, 3u);
  for (std::size_t i = 0; i < req.thetas.size(); ++i) {
    EXPECT_EQ(static_cast<std::int64_t>(req.thetas[i]),
              static_cast<std::int64_t>(abs.reduced[i]) * abs.divisor +
                  abs.errors[i]);
    EXPECT_LT(std::abs(abs.errors[i]), static_cast<std::int64_t>(abs.divisor));
  }
}

TEST(TimeAbs, InvalidRequestsThrow) {
  timeabs::Request empty;
  EXPECT_THROW((void)timeabs::optimize_exact(empty),
               speccc::util::InvalidInputError);

  timeabs::Request zero;
  zero.thetas = {0};
  EXPECT_THROW((void)timeabs::optimize_exact(zero),
               speccc::util::InvalidInputError);

  timeabs::Request bad_signs;
  bad_signs.thetas = {3, 5};
  bad_signs.signs = {ErrorSign::kEarly};
  EXPECT_THROW((void)timeabs::optimize_exact(bad_signs),
               speccc::util::InvalidInputError);
}

TEST(TimeAbs, SolutionAlwaysExistsWithZeroBudget) {
  // d = 1 is always feasible, so optimize never fails on valid input.
  timeabs::Request req;
  req.thetas = {13, 17, 19};
  req.error_budget = 0;
  const auto abs = timeabs::optimize_exact(req);
  EXPECT_EQ(abs.divisor, 1u);
  EXPECT_EQ(abs.reduced_sum, 13u + 17u + 19u);
}

// Property sweep: both backends agree on the objective values, and every
// witness satisfies the constraint system.
class BackendAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BackendAgreementTest, EnumerationAndSmtAgree) {
  const auto [seed, budget] = GetParam();
  speccc::util::Rng rng(static_cast<std::uint64_t>(seed) * 31337 + 5);
  timeabs::Request req;
  const int n = 1 + static_cast<int>(rng.below(3));
  for (int i = 0; i < n; ++i) {
    req.thetas.push_back(1 + static_cast<std::uint32_t>(rng.below(40)));
    const auto s = rng.below(3);
    req.signs.push_back(s == 0   ? ErrorSign::kEarly
                        : s == 1 ? ErrorSign::kLate
                                 : ErrorSign::kEither);
  }
  req.error_budget = static_cast<std::uint32_t>(budget);

  const auto exact = timeabs::optimize(req, Backend::kEnumeration);
  const auto smt = timeabs::optimize(req, Backend::kSmt);
  ASSERT_TRUE(exact.has_value());
  ASSERT_TRUE(smt.has_value());
  EXPECT_EQ(exact->reduced_sum, smt->reduced_sum)
      << "primary objective mismatch";
  EXPECT_EQ(exact->error_sum, smt->error_sum) << "secondary objective mismatch";

  for (const auto& abs : {*exact, *smt}) {
    std::uint64_t err = 0;
    for (std::size_t i = 0; i < req.thetas.size(); ++i) {
      EXPECT_EQ(static_cast<std::int64_t>(req.thetas[i]),
                static_cast<std::int64_t>(abs.reduced[i]) * abs.divisor +
                    abs.errors[i]);
      EXPECT_LT(std::abs(abs.errors[i]),
                static_cast<std::int64_t>(abs.divisor));
      switch (req.signs[i]) {
        case ErrorSign::kEarly:
          EXPECT_GE(abs.errors[i], 0);
          break;
        case ErrorSign::kLate:
          EXPECT_LE(abs.errors[i], 0);
          break;
        case ErrorSign::kEither:
          break;
      }
      err += static_cast<std::uint64_t>(std::abs(abs.errors[i]));
    }
    EXPECT_LE(err, req.error_budget);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BackendAgreementTest,
                         ::testing::Combine(::testing::Range(0, 10),
                                            ::testing::Values(0, 3, 8)));

}  // namespace
