// Tests for the differential oracle harness: the random generators, the
// cross-check oracle over the three decision substrates, the greedy
// shrinker, and the end-to-end run() acceptance bar (500 random formulas
// and 50 generated specifications per seed with zero disagreements, plus
// injected-bug detection shrunk to a minimal core).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "diag/diag.hpp"
#include "difftest/circuit.hpp"
#include "difftest/harness.hpp"
#include "difftest/oracle.hpp"
#include "difftest/random.hpp"
#include "difftest/shrink.hpp"
#include "ltl/parser.hpp"
#include "ltl/trace.hpp"
#include "refine/refine.hpp"
#include "util/diagnostics.hpp"

namespace difftest = speccc::difftest;
namespace ltl = speccc::ltl;
namespace corpus = speccc::corpus;
using speccc::util::Rng;

namespace {

bool contains_op(ltl::Formula f, ltl::Op op) {
  if (f.op() == op) return true;
  for (std::size_t i = 0; i < f.arity(); ++i) {
    if (contains_op(f.child(i), op)) return true;
  }
  return false;
}

/// An injected substrate bug: trace evaluation that mishandles weak-until.
/// The harness must catch it (tableau witnesses stop validating) and
/// shrink the counterexample to a minimal W formula.
bool broken_weak_until_evaluate(ltl::Formula f, const ltl::Lasso& lasso) {
  const bool truth = ltl::evaluate(f, lasso);
  return contains_op(f, ltl::Op::kWeakUntil) ? !truth : truth;
}

// ---- Random generators ------------------------------------------------------

TEST(RandomFormula, DeterministicForFixedSeed) {
  const difftest::FormulaConfig config;
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(difftest::random_formula(a, config),
              difftest::random_formula(b, config));
  }
}

TEST(RandomFormula, DrawsFromTheConfiguredPool) {
  difftest::FormulaConfig config;
  config.props = difftest::proposition_pool(4);
  const std::set<std::string> pool(config.props.begin(), config.props.end());
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const ltl::Formula f = difftest::random_formula(rng, config);
    for (const std::string& atom : f.atoms()) {
      EXPECT_TRUE(pool.count(atom) > 0) << atom;
    }
  }
}

TEST(RandomFormula, CoversEveryOperator) {
  difftest::FormulaConfig config;
  config.max_depth = 5;
  Rng rng(13);
  std::set<ltl::Op> seen;
  const std::function<void(ltl::Formula)> walk = [&](ltl::Formula f) {
    seen.insert(f.op());
    for (std::size_t i = 0; i < f.arity(); ++i) walk(f.child(i));
  };
  for (int i = 0; i < 400; ++i) walk(difftest::random_formula(rng, config));
  for (const ltl::Op op :
       {ltl::Op::kNot, ltl::Op::kAnd, ltl::Op::kOr, ltl::Op::kImplies,
        ltl::Op::kIff, ltl::Op::kNext, ltl::Op::kEventually, ltl::Op::kAlways,
        ltl::Op::kUntil, ltl::Op::kWeakUntil, ltl::Op::kRelease}) {
    EXPECT_TRUE(seen.count(op) > 0) << ltl::op_name(op);
  }
}

TEST(RandomLasso, WellFormedAndDeterministic) {
  const difftest::LassoConfig config;
  Rng a(3);
  Rng b(3);
  for (int i = 0; i < 100; ++i) {
    const ltl::Lasso la = difftest::random_lasso(a, config);
    const ltl::Lasso lb = difftest::random_lasso(b, config);
    ASSERT_EQ(la.size(), lb.size());
    ASSERT_LT(la.loop_start(), la.size());
    ASSERT_LE(la.size(), config.max_prefix + config.max_loop);
    for (std::size_t pos = 0; pos < la.size(); ++pos) {
      EXPECT_EQ(la.at(pos), lb.at(pos));
      for (const std::string& p : la.at(pos)) {
        EXPECT_NE(std::find(config.props.begin(), config.props.end(), p),
                  config.props.end());
      }
    }
  }
}

TEST(RandomScale, StaysInsideTheConfiguredBox) {
  const difftest::SpecConfig config;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const corpus::SpecScale scale =
        difftest::random_scale(rng, config, "box", 9);
    EXPECT_GE(scale.formulas, config.min_formulas);
    EXPECT_LE(scale.formulas, config.max_formulas);
    EXPECT_GE(scale.inputs, config.min_inputs);
    EXPECT_LE(scale.inputs, config.max_inputs);
    EXPECT_GE(scale.outputs, config.min_outputs);
    EXPECT_LE(scale.outputs, config.max_outputs);
    // Feasible for the sentence generator's per-requirement budget.
    EXPECT_LE(scale.inputs, 3 * scale.formulas);
    EXPECT_LE(scale.outputs, 2 * scale.formulas);
  }
}

// ---- Shrinker ---------------------------------------------------------------

TEST(Shrinker, CandidatesAreStrictlySmaller) {
  const ltl::Formula f = ltl::parse("G ((a U b) && c) || X d");
  for (const ltl::Formula cand : difftest::shrink_candidates(f)) {
    EXPECT_LT(cand.length(), f.length()) << ltl::to_string(cand);
    EXPECT_NE(cand, f);
  }
}

TEST(Shrinker, CandidatesIncludeSubformulasAndConstants) {
  const ltl::Formula f = ltl::parse("G (a -> b)");
  const auto candidates = difftest::shrink_candidates(f);
  const auto has = [&](ltl::Formula g) {
    return std::find(candidates.begin(), candidates.end(), g) !=
           candidates.end();
  };
  EXPECT_TRUE(has(ltl::tru()));
  EXPECT_TRUE(has(ltl::fls()));
  EXPECT_TRUE(has(ltl::parse("a -> b")));
  EXPECT_TRUE(has(ltl::parse("G a")));  // child `a -> b` shrunk to `a`
}

TEST(Shrinker, MinimizesToTheUntilCore) {
  const ltl::Formula start = ltl::parse("G ((a U b) && c) || X (d <-> e)");
  const auto fails = [](ltl::Formula f) {
    return contains_op(f, ltl::Op::kUntil);
  };
  ASSERT_TRUE(fails(start));
  const ltl::Formula shrunk = difftest::shrink_formula(start, fails);
  EXPECT_TRUE(fails(shrunk));
  EXPECT_LE(shrunk.length(), 3u) << ltl::to_string(shrunk);
}

TEST(Shrinker, ResultStillFailsWheneverInputDoes) {
  // A predicate that is NOT monotone under shrinking: exactly 5 nodes.
  const ltl::Formula start = ltl::parse("G (a -> X b)");
  const auto fails = [](ltl::Formula f) { return f.length() == 5; };
  ASSERT_TRUE(fails(start));
  EXPECT_TRUE(fails(difftest::shrink_formula(start, fails)));
}

TEST(Shrinker, SpecShrinkDropsIrrelevantRequirements) {
  const std::vector<ltl::Formula> spec = {
      ltl::parse("G (a -> b)"),
      ltl::parse("G ((a U b) || X c)"),
      ltl::parse("F d"),
  };
  const auto fails = [](const std::vector<ltl::Formula>& requirements) {
    for (const ltl::Formula f : requirements) {
      if (contains_op(f, ltl::Op::kUntil)) return true;
    }
    return false;
  };
  ASSERT_TRUE(fails(spec));
  const auto shrunk = difftest::shrink_spec(spec, fails);
  ASSERT_EQ(shrunk.size(), 1u);
  EXPECT_TRUE(contains_op(shrunk[0], ltl::Op::kUntil));
  EXPECT_LE(shrunk[0].length(), 3u) << ltl::to_string(shrunk[0]);
}

// ---- Oracle -----------------------------------------------------------------

TEST(Oracle, AcceptsCanonicalFormulas) {
  const std::vector<std::string> inputs = {
      "true",
      "false",
      "a && !a",          // unsatisfiable
      "a || !a",          // valid
      "G (a -> F b)",
      "a U (b R c)",
      "(a W b) <-> (c U d)",
      "X X (a -> b)",
      "G F a && F G !a",  // unsatisfiable conjunction of fairness constraints
  };
  for (const std::string& in : inputs) {
    Rng rng(101);
    EXPECT_EQ(difftest::check_formula(ltl::parse(in), rng), std::nullopt)
        << in;
  }
}

TEST(Oracle, CatchesABrokenTraceEvaluator) {
  difftest::OracleOptions options;
  options.evaluate = broken_weak_until_evaluate;
  Rng rng(55);
  const auto failure = difftest::check_formula(ltl::parse("a W b"), rng, options);
  ASSERT_TRUE(failure.has_value());
  // Formulas without W are still clean under the broken evaluator.
  Rng rng2(55);
  EXPECT_EQ(difftest::check_formula(ltl::parse("a U b"), rng2, options),
            std::nullopt);
}

TEST(Oracle, BuildsSpecCasesWithCoveringSignatures) {
  const corpus::SpecScale scale{"oracle", 5, 3, 3, 77, 25, 25};
  const auto spec =
      difftest::build_spec_case(corpus::generate_spec(scale, corpus::device_theme()));
  ASSERT_EQ(spec.requirements.size(), 5u);
  EXPECT_EQ(spec.signature.inputs.size(), 3u);
  EXPECT_EQ(spec.signature.outputs.size(), 3u);
  std::set<std::string> known(spec.signature.inputs.begin(),
                              spec.signature.inputs.end());
  known.insert(spec.signature.outputs.begin(), spec.signature.outputs.end());
  for (const ltl::Formula f : spec.requirements) {
    for (const std::string& atom : f.atoms()) {
      EXPECT_TRUE(known.count(atom) > 0) << atom;
    }
  }
}

TEST(Oracle, AcceptsAHandWrittenSpecCase) {
  difftest::SpecCase spec;
  spec.requirements = {ltl::parse("G (in -> out)"),
                       ltl::parse("G (req -> F out)")};
  spec.signature = {{"in", "req"}, {"out"}};
  Rng rng(9);
  EXPECT_EQ(difftest::check_spec(spec, rng), std::nullopt);
}

// ---- Harness acceptance -----------------------------------------------------

TEST(Harness, CaseSeedsAreStableAndPairwiseDistinct) {
  EXPECT_EQ(difftest::case_seed(1, difftest::CaseKind::kFormula, 0),
            difftest::case_seed(1, difftest::CaseKind::kFormula, 0));
  std::set<std::uint64_t> seeds;
  for (int i = 0; i < 100; ++i) {
    seeds.insert(difftest::case_seed(1, difftest::CaseKind::kFormula, i));
    seeds.insert(difftest::case_seed(1, difftest::CaseKind::kSpec, i));
    seeds.insert(difftest::case_seed(2, difftest::CaseKind::kFormula, i));
  }
  EXPECT_EQ(seeds.size(), 300u);
}

TEST(Harness, FiveHundredRandomFormulasNoDisagreement) {
  difftest::RunOptions options;
  options.seed = 20260730;
  options.formula_cases = 500;
  options.spec_cases = 0;
  const difftest::RunReport report = difftest::run(options);
  EXPECT_EQ(report.formulas_checked, 500);
  EXPECT_TRUE(report.ok()) << difftest::describe(report);
}

TEST(Harness, FiftyGeneratedSpecsNoDisagreement) {
  difftest::RunOptions options;
  options.seed = 20260730;
  options.formula_cases = 0;
  options.spec_cases = 50;
  const difftest::RunReport report = difftest::run(options);
  EXPECT_EQ(report.specs_checked, 50);
  EXPECT_TRUE(report.ok()) << difftest::describe(report);
}

TEST(Harness, InjectedDisagreementIsCaughtAndShrunkToAMinimalCore) {
  difftest::RunOptions options;
  options.seed = 4;
  options.formula_cases = 300;
  options.spec_cases = 0;
  options.max_failures = 3;
  options.oracle.evaluate = broken_weak_until_evaluate;
  const difftest::RunReport report = difftest::run(options);
  ASSERT_FALSE(report.ok())
      << "300 random formulas never exercised the injected W bug";
  for (const difftest::CaseFailure& failure : report.failures) {
    EXPECT_TRUE(contains_op(failure.shrunk, ltl::Op::kWeakUntil))
        << ltl::to_string(failure.shrunk);
    EXPECT_LE(failure.shrunk.length(), 5u) << ltl::to_string(failure.shrunk);
    EXPECT_FALSE(failure.shrunk_detail.empty());
    EXPECT_NE(failure.reproduce.find("--formula-case"), std::string::npos);
  }
}

TEST(Harness, PinnedPreviouslySlowSeedStaysCleanAndFast) {
  // Seed 6, spec case 21: the slowest standing case of the pre-rewrite BDD
  // engine's seed sweep (~9 s wall, dominated by extracting and model
  // checking a 512-state controller). Pinned after the complement-edge
  // engine swap (which cut its symbolic extraction ~2.6x) so future engine
  // changes keep it agreeing -- and so a substrate regression that blows
  // up this case's controller or fixpoint shows up as a timeout here
  // instead of silently in a nightly sweep. Replayable alone via
  //   speccc_fuzz --seed 6 --spec-case 21
  difftest::RunOptions options;
  options.seed = 6;
  options.formula_cases = 0;
  options.spec_cases = 50;
  options.only_spec_case = 21;
  const difftest::RunReport report = difftest::run(options);
  EXPECT_EQ(report.specs_checked, 1);
  EXPECT_TRUE(report.ok()) << difftest::describe(report);
}

// ---- Planted-fault localization oracle --------------------------------------

std::string describe_planted(const difftest::PlantedSpec& spec,
                             std::uint64_t seed, int index) {
  std::string out = spec.name + " (generated_planted_spec(" +
                    std::to_string(seed) + ", " + std::to_string(index) +
                    "))\n";
  for (std::size_t i = 0; i < spec.requirements.size(); ++i) {
    out += "  [" + std::to_string(i) + "] " + spec.requirements[i].id + ": " +
           spec.requirements[i].text + "\n";
  }
  out += "  planted faults:";
  for (const auto& fault : spec.faults) {
    out += " {";
    for (std::size_t k = 0; k < fault.size(); ++k) {
      out += (k != 0U ? "," : "") + std::to_string(fault[k]);
    }
    out += "}";
  }
  return out;
}

bool is_superset_of_some_fault(const std::vector<std::size_t>& blamed,
                               const difftest::PlantedSpec& spec) {
  for (const auto& fault : spec.faults) {
    if (std::includes(blamed.begin(), blamed.end(), fault.begin(),
                      fault.end())) {
      return true;
    }
  }
  return false;
}

// The ground-truth acceptance bar for the diag localization engine: over
// >= 50 planted-fault specs per seed, every spec is genuinely
// inconsistent, the MUS the cores path reports is verified
// minimal-inconsistent and is exactly one of the planted fault sets
// (faults use fresh disjoint vocabulary, so those are the only MUSes),
// and the legacy greedy path -- kept behind LocalizeOptions::kGreedy for
// exactly this cross-check -- blames a planted fault too.
class PlantedFaultTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlantedFaultTest, LocalizationFindsAPlantedFaultOnEverySpec) {
  const std::uint64_t seed = GetParam();
  constexpr int kSpecs = 50;
  for (int index = 0; index < kSpecs; ++index) {
    const difftest::PlantedSpec spec =
        difftest::generated_planted_spec(seed, index);
    ASSERT_GE(spec.faults.size(), 2u);
    const difftest::SpecCase sc = difftest::build_spec_case(spec.requirements);
    const auto oracle =
        speccc::diag::synthesis_oracle(sc.requirements, sc.signature);

    std::vector<std::size_t> universe(sc.requirements.size());
    for (std::size_t i = 0; i < universe.size(); ++i) universe[i] = i;
    ASSERT_TRUE(oracle(universe).has_value())
        << "planted spec not inconsistent\n"
        << describe_planted(spec, seed, index);

    speccc::refine::LocalizeOptions cores;
    cores.method = speccc::refine::LocalizeOptions::Method::kCores;
    const auto mus_loc =
        speccc::refine::localize(sc.requirements, sc.signature, {}, cores);
    EXPECT_NE(std::find(spec.faults.begin(), spec.faults.end(), mus_loc.core),
              spec.faults.end())
        << "MUS is not a planted fault set\n"
        << describe_planted(spec, seed, index);
    for (std::size_t e : mus_loc.core) {
      std::vector<std::size_t> dropped;
      for (std::size_t x : mus_loc.core) {
        if (x != e) dropped.push_back(x);
      }
      EXPECT_FALSE(oracle(dropped).has_value())
          << "MUS not minimal at element " << e << "\n"
          << describe_planted(spec, seed, index);
    }

    speccc::refine::LocalizeOptions greedy;
    greedy.method = speccc::refine::LocalizeOptions::Method::kGreedy;
    const auto greedy_loc =
        speccc::refine::localize(sc.requirements, sc.signature, {}, greedy);
    EXPECT_TRUE(is_superset_of_some_fault(greedy_loc.core, spec))
        << "greedy core does not cover any planted fault\n"
        << describe_planted(spec, seed, index);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlantedFaultTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// The circuit encoder lane: seeded random circuits must be
// equisatisfiable between the cut-based CNF mapper and the Tseitin
// fallback, round for round, with every SAT model replaying to true
// through the AIG itself. Same CI seed sweep as the other lanes.
class CircuitEquisatTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CircuitEquisatTest, EncodersAgreeOnEverySeededCircuit) {
  const difftest::CircuitReport report =
      difftest::run_circuits(GetParam(), 25);
  EXPECT_EQ(report.checked, 25);
  EXPECT_TRUE(report.ok()) << difftest::describe(report);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircuitEquisatTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Harness, SingleCaseReplayReproducesTheFailure) {
  difftest::RunOptions options;
  options.seed = 4;
  options.formula_cases = 300;
  options.spec_cases = 0;
  options.max_failures = 1;
  options.oracle.evaluate = broken_weak_until_evaluate;
  const difftest::RunReport first = difftest::run(options);
  ASSERT_FALSE(first.ok());

  difftest::RunOptions replay = options;
  replay.only_formula_case = first.failures[0].index;
  const difftest::RunReport second = difftest::run(replay);
  ASSERT_EQ(second.failures.size(), 1u);
  EXPECT_EQ(second.failures[0].detail, first.failures[0].detail);
  EXPECT_EQ(second.failures[0].shrunk, first.failures[0].shrunk);
  EXPECT_EQ(second.failures[0].case_seed, first.failures[0].case_seed);
}

TEST(Harness, DescribeListsEveryFailureWithReproduction) {
  difftest::RunOptions options;
  options.seed = 4;
  options.formula_cases = 300;
  options.spec_cases = 0;
  options.max_failures = 2;
  options.oracle.evaluate = broken_weak_until_evaluate;
  const difftest::RunReport report = difftest::run(options);
  ASSERT_FALSE(report.ok());
  const std::string text = difftest::describe(report);
  EXPECT_NE(text.find("reproduce: speccc_fuzz --seed 4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("minimized:"), std::string::npos);
}

}  // namespace
