// Tests for Buechi emptiness / LTL satisfiability with lasso witnesses.
#include <gtest/gtest.h>

#include <string>

#include "automata/emptiness.hpp"
#include "automata/gpvw.hpp"
#include "ltl/parser.hpp"
#include "ltl/trace.hpp"
#include "util/diagnostics.hpp"

namespace automata = speccc::automata;
namespace ltl = speccc::ltl;

namespace {

TEST(Satisfiability, BasicVerdicts) {
  EXPECT_TRUE(automata::satisfiable(ltl::parse("a")));
  EXPECT_TRUE(automata::satisfiable(ltl::parse("G F a")));
  EXPECT_FALSE(automata::satisfiable(ltl::parse("a && !a")));
  EXPECT_FALSE(automata::satisfiable(ltl::parse("G a && F !a")));
  EXPECT_FALSE(automata::satisfiable(ltl::parse("false")));
  EXPECT_TRUE(automata::satisfiable(ltl::parse("true")));
}

TEST(Satisfiability, Validity) {
  EXPECT_TRUE(automata::valid(ltl::parse("a || !a")));
  EXPECT_TRUE(automata::valid(ltl::parse("G a -> F a")));
  EXPECT_TRUE(automata::valid(ltl::parse("a U b -> F b")));
  EXPECT_FALSE(automata::valid(ltl::parse("F a -> G a")));
  // W does not imply eventuality.
  EXPECT_FALSE(automata::valid(ltl::parse("a W b -> F b")));
}

TEST(Satisfiability, ConflictingObligationsOverTime) {
  // Satisfiable even though instantaneously contradictory-looking.
  EXPECT_TRUE(automata::satisfiable(ltl::parse("F a && F !a")));
  EXPECT_FALSE(automata::satisfiable(ltl::parse("G (a -> X a) && a && F !a")));
}

TEST(Emptiness, WitnessIsAccepted) {
  const ltl::Formula f = ltl::parse("G (a -> F b) && F a");
  const auto nbw = automata::ltl_to_nbw(f);
  const auto witness = automata::find_accepting_lasso(nbw);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(automata::accepts_lasso(nbw, witness->lasso));
}

TEST(Emptiness, EmptyAutomatonHasNoWitness) {
  const auto nbw = automata::ltl_to_nbw(ltl::parse("a && !a"));
  EXPECT_TRUE(automata::is_empty(nbw));
}

// Property sweep: every satisfiability witness actually satisfies the
// formula under the trace semantics, and unsatisfiable formulas reject all
// random lassos.
class WitnessTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WitnessTest, WitnessSatisfiesFormula) {
  const ltl::Formula f = ltl::parse(GetParam());
  const auto witness = automata::satisfiable_witness(f);
  if (witness.has_value()) {
    EXPECT_TRUE(ltl::evaluate(f, witness->lasso))
        << "witness does not satisfy " << GetParam();
  } else {
    // Cross-check unsatisfiability on random lassos.
    speccc::util::Rng rng(31);
    for (int trial = 0; trial < 64; ++trial) {
      const std::size_t len = 1 + rng.below(5);
      std::vector<ltl::Valuation> steps(len);
      for (auto& s : steps) {
        for (const char* p : {"a", "b", "c"}) {
          if (rng.chance(1, 2)) s.insert(p);
        }
      }
      EXPECT_FALSE(ltl::evaluate(f, ltl::Lasso(steps, rng.below(len))))
          << GetParam() << " claimed unsat but a lasso satisfies it";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WitnessTest,
    ::testing::Values("a", "X X a", "F (a && b)", "G (a -> X b)",
                      "a U (b && c)", "G F a && G F !a", "a W b",
                      "G (a -> F b) && G (b -> F a) && F a",
                      "a && G (a -> X !a) && G (!a -> X a)",
                      "G a && F (b && !a)",            // unsat
                      "(a U b) && G !b",               // unsat
                      "F G a && G F !a",               // unsat
                      "X X X (a && !a) || F c"));

}  // namespace
