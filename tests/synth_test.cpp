// Tests for the synthesis engines: realizability verdicts on canonical
// specifications (including the paper's clairvoyance footnote), agreement
// between the bounded and symbolic engines, and verification that extracted
// controllers actually satisfy the specification on simulated traces.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ltl/parser.hpp"
#include "ltl/trace.hpp"
#include "synth/bounded.hpp"
#include "synth/monitors.hpp"
#include "synth/symbolic_engine.hpp"
#include "synth/synthesizer.hpp"
#include "util/diagnostics.hpp"

namespace synth = speccc::synth;
namespace ltl = speccc::ltl;
using synth::IoSignature;
using synth::Realizability;

namespace {

std::vector<ltl::Formula> parse_all(const std::vector<std::string>& texts) {
  std::vector<ltl::Formula> out;
  for (const auto& t : texts) out.push_back(ltl::parse(t));
  return out;
}

// ---- Bounded engine ---------------------------------------------------------

TEST(Bounded, EchoIsRealizable) {
  // G (in -> out) realizable by always asserting out.
  const auto outcome = synth::bounded_synthesize(
      ltl::parse("G (in -> out)"), {{"in"}, {"out"}});
  EXPECT_EQ(outcome.verdict, Realizability::kRealizable);
  ASSERT_TRUE(outcome.controller.has_value());
}

TEST(Bounded, PaperFootnoteClairvoyanceIsUnrealizable) {
  // Section I footnote: G (output <-> X X X input) demands clairvoyance.
  const auto outcome = synth::bounded_synthesize(
      ltl::parse("G (out <-> X X X in)"), {{"in"}, {"out"}});
  EXPECT_EQ(outcome.verdict, Realizability::kUnrealizable);
}

TEST(Bounded, DelayedEchoIsRealizable) {
  // The mirror image G (in -> X X out) is realizable (remember the input).
  const auto outcome = synth::bounded_synthesize(
      ltl::parse("G (in -> X X out)"), {{"in"}, {"out"}});
  EXPECT_EQ(outcome.verdict, Realizability::kRealizable);
}

TEST(Bounded, EnvironmentControlledObligationUnrealizable) {
  // G in: the system cannot force an input to hold.
  const auto outcome =
      synth::bounded_synthesize(ltl::parse("G in"), {{"in"}, {"out"}});
  EXPECT_EQ(outcome.verdict, Realizability::kUnrealizable);
}

TEST(Bounded, ResponseRealizable) {
  const auto outcome = synth::bounded_synthesize(
      ltl::parse("G (req -> F grant)"), {{"req"}, {"grant"}});
  EXPECT_EQ(outcome.verdict, Realizability::kRealizable);
}

TEST(Bounded, ConflictingObligationsUnrealizable) {
  // out and !out demanded under the same environment-controlled trigger.
  const auto outcome = synth::bounded_synthesize(
      ltl::parse("G (a -> out) && G (b -> !out)"), {{"a", "b"}, {"out"}});
  EXPECT_EQ(outcome.verdict, Realizability::kUnrealizable);
}

TEST(Bounded, UntilObligation) {
  // G (a -> (out U b)): system must hold out until the environment's b;
  // strong until makes b mandatory, which the environment can refuse.
  const auto outcome = synth::bounded_synthesize(
      ltl::parse("G (a -> (out U b))"), {{"a", "b"}, {"out"}});
  EXPECT_EQ(outcome.verdict, Realizability::kUnrealizable);
  // The weak variant is realizable: hold out forever.
  const auto weak = synth::bounded_synthesize(
      ltl::parse("G (a -> (out W b))"), {{"a", "b"}, {"out"}});
  EXPECT_EQ(weak.verdict, Realizability::kRealizable);
}

TEST(Bounded, RejectsOversizedSignatures) {
  IoSignature sig;
  for (int i = 0; i < 10; ++i) sig.inputs.push_back("i" + std::to_string(i));
  for (int i = 0; i < 10; ++i) sig.outputs.push_back("o" + std::to_string(i));
  EXPECT_THROW(
      (void)synth::bounded_synthesize(ltl::parse("G (i0 -> o0)"), sig),
      speccc::util::InvalidInputError);
}

TEST(Bounded, RejectsUnknownPropositions) {
  EXPECT_THROW((void)synth::bounded_synthesize(ltl::parse("G (x -> out)"),
                                               {{"in"}, {"out"}}),
               speccc::util::InvalidInputError);
}

TEST(Bounded, ControllerTraceSatisfiesSpec) {
  const ltl::Formula spec = ltl::parse("G (in -> X out) && G (!in -> X !out)");
  const auto outcome = synth::bounded_synthesize(spec, {{"in"}, {"out"}});
  ASSERT_EQ(outcome.verdict, Realizability::kRealizable);
  ASSERT_TRUE(outcome.controller.has_value());
  const auto& machine = *outcome.controller;

  speccc::util::Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<synth::Word> prefix;
    std::vector<synth::Word> loop;
    const std::size_t np = rng.below(4);
    const std::size_t nl = 1 + rng.below(4);
    for (std::size_t i = 0; i < np; ++i) prefix.push_back(rng.below(2) ? 1 : 0);
    for (std::size_t i = 0; i < nl; ++i) loop.push_back(rng.below(2) ? 1 : 0);
    const ltl::Lasso trace = machine.lasso(prefix, loop);
    EXPECT_TRUE(ltl::evaluate(spec, trace)) << "controller violates spec";
  }
}

// ---- Symbolic engine --------------------------------------------------------

TEST(Symbolic, CompilesPatternSpecs) {
  const auto spec = parse_all({"G (a -> out)", "G (b -> F out2)", "F done"});
  EXPECT_TRUE(synth::fragment_covers(spec));
}

TEST(Symbolic, RefusesNonPatternSpecs) {
  const auto spec = parse_all({"G (a -> out)", "G F a -> G F b"});
  EXPECT_FALSE(synth::fragment_covers(spec));
  const auto outcome =
      synth::symbolic_synthesize(spec, {{"a", "b"}, {"out"}});
  EXPECT_FALSE(outcome.has_value());
}

TEST(Symbolic, EchoRealizable) {
  const auto outcome = synth::symbolic_synthesize(
      parse_all({"G (in -> out)"}), {{"in"}, {"out"}});
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->verdict, Realizability::kRealizable);
}

TEST(Symbolic, ConflictUnrealizable) {
  const auto outcome = synth::symbolic_synthesize(
      parse_all({"G (a -> out)", "G (b -> !out)"}), {{"a", "b"}, {"out"}});
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->verdict, Realizability::kUnrealizable);
}

TEST(Symbolic, GuardDelayedRealizableByConstantOutput) {
  // The paper's Req-28 shape: G (X X X !bp -> trigger). Constant triggering
  // realizes it without clairvoyance.
  const auto outcome = synth::symbolic_synthesize(
      parse_all({"G (X X X !bp -> trigger)"}), {{"bp"}, {"trigger"}});
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->verdict, Realizability::kRealizable);
}

TEST(Symbolic, ResponseWithResetRealizable) {
  const auto spec = parse_all(
      {"G (req -> F grant)", "G (cancel -> !grant)"});
  const auto outcome =
      synth::symbolic_synthesize(spec, {{"req", "cancel"}, {"grant"}});
  ASSERT_TRUE(outcome.has_value());
  // The environment can hold cancel forever while requesting: grant must
  // eventually fire but is forbidden: unrealizable.
  EXPECT_EQ(outcome->verdict, Realizability::kUnrealizable);
}

TEST(Symbolic, ControllerSatisfiesSpecOnTraces) {
  const auto spec = parse_all({
      "G (req -> F grant)",
      "G (grant -> X !grant)",  // no two grants in a row
  });
  synth::SymbolicOptions opts;
  opts.extract = true;
  const auto outcome = synth::symbolic_synthesize(spec, {{"req"}, {"grant"}}, opts);
  ASSERT_TRUE(outcome.has_value());
  ASSERT_EQ(outcome->verdict, Realizability::kRealizable);
  ASSERT_TRUE(outcome->controller.has_value());
  const auto& machine = *outcome->controller;
  const ltl::Formula conj = ltl::land(spec);

  speccc::util::Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<synth::Word> prefix;
    std::vector<synth::Word> loop;
    for (std::size_t i = rng.below(3); i-- > 0;) prefix.push_back(rng.below(2) ? 1 : 0);
    for (std::size_t i = 1 + rng.below(3); i-- > 0;) loop.push_back(rng.below(2) ? 1 : 0);
    const ltl::Lasso trace = machine.lasso(prefix, loop);
    EXPECT_TRUE(ltl::evaluate(conj, trace))
        << "controller violates spec on trial " << trial;
  }
}

// ---- Engine agreement -------------------------------------------------------

class EngineAgreementTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineAgreementTest, SymbolicMatchesBounded) {
  // Single-formula specs over fixed small signature; both engines must
  // return the same verdict.
  const ltl::Formula f = ltl::parse(GetParam());
  const IoSignature sig{{"a", "b"}, {"x", "y"}};
  const std::vector<ltl::Formula> spec{f};

  const auto symbolic = synth::symbolic_synthesize(spec, sig);
  ASSERT_TRUE(symbolic.has_value()) << "not in fragment: " << GetParam();

  const auto bounded = synth::bounded_synthesize(f, sig);
  ASSERT_NE(bounded.verdict, Realizability::kUnknown) << GetParam();
  EXPECT_EQ(symbolic->verdict, bounded.verdict) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineAgreementTest,
    ::testing::Values(
        "G (a -> x)", "G (a -> !x)", "G (a -> X x)", "G (a -> X X x)",
        "G (a && b -> x && y)", "G (a -> F x)", "G (x -> F a)",
        "G (a -> (x W b))", "G (a -> (x U b))", "G (a -> (x W y))",
        "G (X X a -> x)", "G a", "G (a || x)", "F x", "F a",
        "G (a -> !b -> (x W b))"));

// Conjunction-level agreement: random 2-3 formula specs drawn from a pool of
// pattern templates; both engines must agree on the verdict of the whole
// specification, not just single formulas.
class ConjunctionAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(ConjunctionAgreementTest, SymbolicMatchesBoundedOnSpecs) {
  static const std::vector<std::string> pool = {
      "G (a -> x)",      "G (a -> !x)",    "G (b -> y)",   "G (b -> !y)",
      "G (a -> X y)",    "G (a -> F x)",   "G (x -> F b)", "G (a -> (x W b))",
      "G (a && b -> x)", "G (!a -> !y)",   "F x",          "G (y -> x)",
  };
  speccc::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7001 + 11);
  std::vector<ltl::Formula> spec;
  const std::size_t n = 2 + rng.below(2);
  for (std::size_t i = 0; i < n; ++i) {
    spec.push_back(ltl::parse(pool[rng.below(pool.size())]));
  }
  const IoSignature sig{{"a", "b"}, {"x", "y"}};

  const auto symbolic = synth::symbolic_synthesize(spec, sig);
  ASSERT_TRUE(symbolic.has_value());
  const auto bounded = synth::bounded_synthesize(ltl::land(spec), sig);
  if (bounded.verdict == Realizability::kUnknown) {
    GTEST_SKIP() << "bounded engine hit its k bound";
  }
  EXPECT_EQ(symbolic->verdict, bounded.verdict)
      << "spec: " << ltl::to_string(ltl::land(spec));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConjunctionAgreementTest,
                         ::testing::Range(0, 25));

// ---- Driver -----------------------------------------------------------------

TEST(Synthesizer, AutoSelectsSymbolicForPatternSpecs) {
  const auto result = synth::synthesize(parse_all({"G (a -> x)"}), {{"a"}, {"x"}});
  EXPECT_EQ(result.engine_used, synth::Engine::kSymbolic);
  EXPECT_TRUE(result.realizable());
}

TEST(Synthesizer, AutoFallsBackToBounded) {
  const auto result = synth::synthesize(
      parse_all({"G (a -> F (x && X x))"}), {{"a"}, {"x"}});
  EXPECT_EQ(result.engine_used, synth::Engine::kBounded);
  EXPECT_EQ(result.verdict, Realizability::kRealizable);
}

TEST(Synthesizer, EmptySpecThrows) {
  EXPECT_THROW((void)synth::synthesize({}, {{"a"}, {"x"}}),
               speccc::util::InvalidInputError);
}

TEST(Synthesizer, ForcedSymbolicOnNonFragmentThrows) {
  synth::SynthesisOptions opts;
  opts.engine = synth::Engine::kSymbolic;
  EXPECT_THROW((void)synth::synthesize(parse_all({"G F a -> G F x"}),
                                       {{"a"}, {"x"}}, opts),
               speccc::util::InvalidInputError);
}

}  // namespace
