// Tests for heuristic refinement (paper Section V-B): inconsistency
// localization and partition adjustment.
#include <gtest/gtest.h>

#include "ltl/parser.hpp"
#include "refine/refine.hpp"

namespace refine = speccc::refine;
namespace ltl = speccc::ltl;
using speccc::synth::IoSignature;

namespace {

std::vector<ltl::Formula> parse_all(const std::vector<std::string>& texts) {
  std::vector<ltl::Formula> out;
  for (const auto& t : texts) out.push_back(ltl::parse(t));
  return out;
}

TEST(Localize, FindsThePairOfConflictingRequirements) {
  // Formulas 1 and 3 conflict; 0 and 2 are innocent bystanders.
  const auto spec = parse_all({
      "G (a -> x)",
      "G (b -> y)",
      "G (a -> z)",
      "G (b -> !y)",
  });
  const IoSignature sig{{"a", "b"}, {"x", "y", "z"}};
  const auto loc = refine::localize(spec, sig);
  EXPECT_EQ(loc.core, (std::vector<std::size_t>{1, 3}));
  // Related requirements share propositions with the core (b, y): both core
  // members; requirement 0 and 2 share nothing.
  EXPECT_EQ(loc.related, (std::vector<std::size_t>{1, 3}));
}

TEST(Localize, FiltersRelatedRequirements) {
  const auto spec = parse_all({
      "G (a -> y && x)",  // shares y with the core
      "G (b -> y)",
      "G (b -> !y)",
  });
  const IoSignature sig{{"a", "b"}, {"x", "y"}};
  const auto loc = refine::localize(spec, sig);
  EXPECT_EQ(loc.core, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(loc.related, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Localize, CoreIsMinimal) {
  // Three-way conflict: y must hold (req 1), and both a-triggered
  // obligations are fine, but req 3 forbids y under c. Minimal core is
  // {1, 3}.
  const auto spec = parse_all({
      "G (a -> x)",
      "G y",
      "G (a -> z)",
      "G (c -> !y)",
  });
  const IoSignature sig{{"a", "c"}, {"x", "y", "z"}};
  const auto loc = refine::localize(spec, sig);
  EXPECT_EQ(loc.core, (std::vector<std::size_t>{1, 3}));
}

TEST(Refine, RealizableSpecNeedsNothing) {
  const auto spec = parse_all({"G (a -> x)"});
  speccc::partition::Partition p;
  p.inputs = {"a"};
  p.outputs = {"x"};
  const auto outcome = refine::refine(spec, p);
  EXPECT_TRUE(outcome.consistent);
  EXPECT_FALSE(outcome.adjustment.has_value());
}

TEST(Refine, FlipsMisclassifiedInputToOutput) {
  // The TELEPROMISE situation: v only occurs in antecedents, so the
  // heuristics called it an input; realizability needs the system to
  // control it.
  const auto spec = parse_all({
      "G (v -> x)",
      "G (v -> y)",
      "G (b -> !x)",
  });
  speccc::partition::Partition p;
  p.inputs = {"v", "b"};
  p.outputs = {"x", "y"};
  const auto outcome = refine::refine(spec, p);
  ASSERT_TRUE(outcome.consistent);
  ASSERT_TRUE(outcome.adjustment.has_value());
  EXPECT_EQ(outcome.adjustment->variable, "v");
  EXPECT_FALSE(outcome.adjustment->now_input);
  EXPECT_TRUE(outcome.partition.outputs.count("v") > 0);
}

TEST(Refine, GenuinelyInconsistentSpecStaysInconsistent) {
  // x and !x forced unconditionally: no partition flip can help.
  const auto spec = parse_all({
      "G x",
      "G !x",
      "G (a -> y)",
  });
  speccc::partition::Partition p;
  p.inputs = {"a"};
  p.outputs = {"x", "y"};
  const auto outcome = refine::refine(spec, p);
  EXPECT_FALSE(outcome.consistent);
  EXPECT_FALSE(outcome.adjustment.has_value());
  // The core still identifies the contradictory pair.
  EXPECT_EQ(outcome.localization.core, (std::vector<std::size_t>{0, 1}));
}

TEST(Refine, NeverLeavesSystemWithoutInputs) {
  // Only one input exists; flipping it to output would leave none, so the
  // refiner must not propose it.
  const auto spec = parse_all({
      "G (a -> x)",
      "G (a -> !x)",
  });
  speccc::partition::Partition p;
  p.inputs = {"a"};
  p.outputs = {"x"};
  const auto outcome = refine::refine(spec, p);
  EXPECT_FALSE(outcome.consistent);
}

}  // namespace
