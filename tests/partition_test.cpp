// Tests for the input/output partition heuristics (paper Section IV-F).
#include <gtest/gtest.h>

#include "ltl/parser.hpp"
#include "partition/partition.hpp"

namespace partition = speccc::partition;
namespace ltl = speccc::ltl;

namespace {

TEST(Partition, PaperReq32Example) {
  // Section IV-F's worked example: G ((available_pulse_wave ||
  // available_arterial_line) && select_cuff -> trigger_corroboration):
  // antecedent atoms are inputs, the consequent is the output.
  const auto votes = partition::classify(
      ltl::parse("G ((available_pulse_wave || available_arterial_line) && "
                 "select_cuff -> trigger_corroboration)"));
  EXPECT_EQ(votes.inputs,
            (std::set<std::string>{"available_pulse_wave",
                                   "available_arterial_line", "select_cuff"}));
  EXPECT_EQ(votes.outputs, (std::set<std::string>{"trigger_corroboration"}));
}

TEST(Partition, BothSidesWithinOneRequirementIsOutput) {
  const auto votes = partition::classify(ltl::parse("G (busy -> X busy)"));
  EXPECT_TRUE(votes.inputs.empty());
  EXPECT_EQ(votes.outputs, (std::set<std::string>{"busy"}));
}

TEST(Partition, UntilRightHandSideIsInput) {
  // Req-49 shape: the release event of W is an input, the held proposition
  // conflicts (guard + consequent) and becomes an output.
  const auto votes = partition::classify(
      ltl::parse("G (btn -> !press -> btn W press)"));
  EXPECT_EQ(votes.inputs, (std::set<std::string>{"press"}));
  EXPECT_EQ(votes.outputs, (std::set<std::string>{"btn"}));
}

TEST(Partition, CrossRequirementConflictResolvesToOutput) {
  const std::vector<ltl::Formula> spec = {
      ltl::parse("G (a -> b)"),  // b output
      ltl::parse("G (b -> c)"),  // b input here: conflict
  };
  const auto p = partition::unify(spec);
  EXPECT_EQ(p.inputs, (std::set<std::string>{"a"}));
  EXPECT_EQ(p.outputs, (std::set<std::string>{"b", "c"}));
}

TEST(Partition, NoInputPromotesSmallestOutput) {
  const std::vector<ltl::Formula> spec = {ltl::parse("G (x && y)")};
  const auto p = partition::unify(spec);
  EXPECT_EQ(p.inputs, (std::set<std::string>{"x"}));
  EXPECT_EQ(p.outputs, (std::set<std::string>{"y"}));
}

TEST(Partition, OverridesWin) {
  partition::Overrides overrides;
  overrides.forced["b"] = true;  // force b to input
  const std::vector<ltl::Formula> spec = {
      ltl::parse("G (a -> b)"),
  };
  const auto p = partition::unify(spec, overrides);
  EXPECT_TRUE(p.is_input("b"));
  EXPECT_TRUE(p.is_input("a"));
  EXPECT_TRUE(p.outputs.empty());
}

TEST(Partition, NestedImplicationsVoteEachAntecedent) {
  const auto votes =
      partition::classify(ltl::parse("G (a -> (b -> c))"));
  EXPECT_EQ(votes.inputs, (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(votes.outputs, (std::set<std::string>{"c"}));
}

TEST(Partition, NegatedConsequentStillOutput) {
  const auto votes = partition::classify(ltl::parse("G (a -> !c)"));
  EXPECT_EQ(votes.outputs, (std::set<std::string>{"c"}));
}

TEST(Partition, ResponseConsequentIsOutput) {
  const auto votes = partition::classify(ltl::parse("G (req -> F grant)"));
  EXPECT_EQ(votes.inputs, (std::set<std::string>{"req"}));
  EXPECT_EQ(votes.outputs, (std::set<std::string>{"grant"}));
}

}  // namespace
