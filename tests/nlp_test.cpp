// Tests for the NLP substrate: tokenizer, lexicon morphology, POS tagging,
// the structured-English grammar parser, and typed-dependency extraction.
#include <gtest/gtest.h>

#include "nlp/dependency.hpp"
#include "nlp/lexicon.hpp"
#include "nlp/syntax.hpp"
#include "nlp/tokenizer.hpp"
#include "util/diagnostics.hpp"

namespace nlp = speccc::nlp;
using nlp::Pos;

namespace {

const nlp::Lexicon& lex() {
  static nlp::Lexicon lexicon = nlp::Lexicon::builtin();
  return lexicon;
}

TEST(Tokenizer, SplitsWordsAndPunctuation) {
  const auto words = nlp::tokenize("When auto-control mode is entered, eventually!");
  EXPECT_EQ(words, (std::vector<std::string>{"When", "auto", "control", "mode",
                                             "is", "entered", ",", "eventually"}));
}

TEST(Tokenizer, KeepsNumbersWhole) {
  const auto words = nlp::tokenize("in 180 seconds.");
  EXPECT_EQ(words, (std::vector<std::string>{"in", "180", "seconds", "."}));
}

TEST(Morphology, RegularInflections) {
  const auto terminated = lex().analyze_verb("terminated");
  ASSERT_TRUE(terminated.has_value());
  EXPECT_EQ(terminated->lemma, "terminate");
  EXPECT_EQ(terminated->form, nlp::VerbForm::kPastParticiple);

  const auto pressed = lex().analyze_verb("pressed");
  ASSERT_TRUE(pressed.has_value());
  EXPECT_EQ(pressed->lemma, "press");

  const auto plugged = lex().analyze_verb("plugged");
  ASSERT_TRUE(plugged.has_value());
  EXPECT_EQ(plugged->lemma, "plug");  // undoubling

  const auto carried = lex().analyze_verb("carried");
  ASSERT_TRUE(carried.has_value());
  EXPECT_EQ(carried->lemma, "carry");  // -ied -> y

  const auto remains = lex().analyze_verb("remains");
  ASSERT_TRUE(remains.has_value());
  EXPECT_EQ(remains->lemma, "remain");
  EXPECT_EQ(remains->form, nlp::VerbForm::kThirdPerson);
}

TEST(Morphology, IrregularInflections) {
  const auto lost = lex().analyze_verb("lost");
  ASSERT_TRUE(lost.has_value());
  EXPECT_EQ(lost->lemma, "lose");
  const auto running = lex().analyze_verb("running");
  ASSERT_TRUE(running.has_value());
  EXPECT_EQ(running->lemma, "run");
  EXPECT_EQ(running->form, nlp::VerbForm::kGerund);
}

TEST(Morphology, NonVerbsRejected) {
  EXPECT_FALSE(lex().analyze_verb("cuff").has_value());
  EXPECT_FALSE(lex().analyze_verb("available").has_value());
}

TEST(Lexicon, TimeUnits) {
  EXPECT_EQ(lex().time_unit_seconds("seconds"), 1u);
  EXPECT_EQ(lex().time_unit_seconds("minute"), 60u);
  EXPECT_FALSE(lex().time_unit_seconds("cuff").has_value());
}

TEST(Lexicon, UnknownWordsFallBackBySuffix) {
  EXPECT_EQ(*lex().lookup("frobnicable").begin(), Pos::kAdjective);
  EXPECT_EQ(*lex().lookup("xyzzy").begin(), Pos::kNoun);
  EXPECT_EQ(*lex().lookup("rapidly").begin(), Pos::kAdverb);
}

TEST(Tagger, ContextDisambiguation) {
  const auto tokens = nlp::analyze("the control mode is running", lex());
  // "control" after determiner reads as a noun; "running" after be is the
  // progressive verb.
  EXPECT_EQ(tokens[1].pos, Pos::kNoun);
  EXPECT_EQ(tokens[3].pos, Pos::kBe);
  EXPECT_EQ(tokens[4].pos, Pos::kVerb);
  EXPECT_EQ(tokens[4].lemma, "run");
}

TEST(Tagger, CapitalizationMidSentenceIsRecorded) {
  const auto tokens = nlp::analyze("If Air Ok signal remains low", lex());
  EXPECT_TRUE(tokens[1].capitalized);   // Air
  EXPECT_TRUE(tokens[2].capitalized);   // Ok
  EXPECT_FALSE(tokens[3].capitalized);  // signal
  // Sentence-initial capitalization does not count.
  const auto first = nlp::analyze("Air is low", lex());
  EXPECT_FALSE(first[0].capitalized);
}

TEST(Tagger, BeFormsAlwaysWin) {
  const auto tokens = nlp::analyze("the pump is off", lex());
  EXPECT_EQ(tokens[2].pos, Pos::kBe);
}

// ---- Grammar parser ---------------------------------------------------------

TEST(Syntax, SimpleConditional) {
  const auto s = nlp::parse_sentence(
      "If an occlusion is detected, the alarm is issued.", lex());
  ASSERT_EQ(s.conditions.size(), 1u);
  EXPECT_EQ(s.conditions[0].subordinator, "if");
  ASSERT_EQ(s.conditions[0].clauses.size(), 1u);
  const auto& cond = s.conditions[0].clauses[0].second;
  EXPECT_EQ(cond.subjects[0].joined(), "occlusion");
  EXPECT_EQ(cond.predicate.kind, nlp::PredicateKind::kPassive);
  EXPECT_EQ(cond.predicate.verb_lemma, "detect");
  ASSERT_EQ(s.main.clauses.size(), 1u);
  EXPECT_EQ(s.main.clauses[0].second.predicate.verb_lemma, "issue");
}

TEST(Syntax, Figure2SentenceStructure) {
  // The paper's Fig. 2 example.
  const auto s = nlp::parse_sentence(
      "When auto-control mode is entered, eventually the cuff will be "
      "inflated.",
      lex());
  ASSERT_EQ(s.conditions.size(), 1u);
  EXPECT_EQ(s.conditions[0].subordinator, "when");
  EXPECT_EQ(s.conditions[0].clauses[0].second.subjects[0].joined(),
            "auto_control_mode");
  const auto& main = s.main.clauses[0].second;
  EXPECT_EQ(main.modifier, "eventually");
  EXPECT_EQ(main.subjects[0].joined(), "cuff");
  EXPECT_TRUE(main.predicate.future);
  EXPECT_EQ(main.predicate.verb_lemma, "inflate");
  // The rendered tree mentions the ingredients of Fig. 2.
  const std::string tree = nlp::syntax_tree(s);
  EXPECT_NE(tree.find("subordinator: when"), std::string::npos);
  EXPECT_NE(tree.find("modifier: eventually"), std::string::npos);
  EXPECT_NE(tree.find("auto_control_mode"), std::string::npos);
}

TEST(Syntax, SubjectCoordinationBeforePredicate) {
  const auto s = nlp::parse_sentence(
      "If arterial line and pulse wave are corroborated, the cuff is "
      "selected.",
      lex());
  const auto& cond = s.conditions[0].clauses[0].second;
  ASSERT_EQ(cond.subjects.size(), 2u);
  EXPECT_EQ(cond.subjects[0].joined(), "arterial_line");
  EXPECT_EQ(cond.subjects[1].joined(), "pulse_wave");
  EXPECT_EQ(cond.subject_conjunction, "and");
}

TEST(Syntax, ClauseCoordinationAfterPredicate) {
  const auto s = nlp::parse_sentence(
      "If the pump is detected, an alarm is issued and override selection is "
      "provided.",
      lex());
  ASSERT_EQ(s.main.clauses.size(), 2u);
  EXPECT_EQ(s.main.clauses[1].first, "and");
  EXPECT_EQ(s.main.clauses[1].second.predicate.verb_lemma, "provide");
}

TEST(Syntax, PredicatelessConjunctionSegmentMergesForward) {
  // The Req-42 shape: "..., and the arterial line, or pulse wave or cuff is
  // lost, ...".
  const auto s = nlp::parse_sentence(
      "When auto control mode is running, and the arterial line, or pulse "
      "wave or cuff is lost, an alarm should sound in 60 seconds.",
      lex());
  ASSERT_EQ(s.conditions.size(), 1u);
  ASSERT_EQ(s.conditions[0].clauses.size(), 2u);
  const auto& lost = s.conditions[0].clauses[1].second;
  ASSERT_EQ(lost.subjects.size(), 3u);
  EXPECT_EQ(lost.subject_conjunction, "or");
  const auto& main = s.main.clauses[0].second;
  EXPECT_EQ(main.predicate.kind, nlp::PredicateKind::kActive);
  EXPECT_EQ(main.predicate.verb_lemma, "sound");
  ASSERT_TRUE(main.constraint.has_value());
  EXPECT_EQ(main.constraint->value, 60u);
}

TEST(Syntax, TrailingUntilSubclause) {
  const auto s = nlp::parse_sentence(
      "When a start auto control button is enabled, the start auto control "
      "button is enabled until it is pressed.",
      lex());
  ASSERT_TRUE(s.until.has_value());
  EXPECT_EQ(s.until->subordinator, "until");
  EXPECT_TRUE(s.until->clauses[0].second.subjects[0].pronoun);
}

TEST(Syntax, TrailingConditionWithoutComma) {
  const auto s = nlp::parse_sentence(
      "The CARA will be operational whenever the LSTAT is powered on.", lex());
  ASSERT_EQ(s.conditions.size(), 1u);
  EXPECT_EQ(s.conditions[0].subordinator, "whenever");
  // The phrasal particle "on" is swallowed.
  EXPECT_EQ(s.conditions[0].clauses[0].second.predicate.verb_lemma, "power");
}

TEST(Syntax, TimeConstraintInAntecedent) {
  const auto s = nlp::parse_sentence(
      "If a valid blood pressure is unavailable in 180 seconds, manual mode "
      "should be triggered.",
      lex());
  const auto& cond = s.conditions[0].clauses[0].second;
  ASSERT_TRUE(cond.constraint.has_value());
  EXPECT_EQ(cond.constraint->value, 180u);
  EXPECT_FALSE(s.main.clauses[0].second.constraint.has_value());
}

TEST(Syntax, PrepositionalPredicateWithCoordination) {
  const auto s = nlp::parse_sentence(
      "If the robot is in room 1, next the robot is in room 1 or room 2.",
      lex());
  const auto& main = s.main.clauses[0].second;
  EXPECT_TRUE(main.next_marked);
  EXPECT_EQ(main.predicate.kind, nlp::PredicateKind::kPreposition);
  ASSERT_EQ(main.predicate.objects.size(), 2u);
  EXPECT_EQ(main.predicate.objects[0].joined(), "room_1");
  EXPECT_EQ(main.predicate.objects[1].joined(), "room_2");
  EXPECT_EQ(main.predicate.object_conjunction, "or");
}

TEST(Syntax, NestedConditionGroups) {
  const auto s = nlp::parse_sentence(
      "If override selection is provided, if override yes is pressed, next "
      "arterial line is selected.",
      lex());
  ASSERT_EQ(s.conditions.size(), 2u);
  EXPECT_EQ(s.conditions[0].subordinator, "if");
  EXPECT_EQ(s.conditions[1].subordinator, "if");
}

TEST(Syntax, ModalAndNegation) {
  const auto s = nlp::parse_sentence(
      "If the button is pressed, the door must not be closed.", lex());
  const auto& main = s.main.clauses[0].second;
  EXPECT_TRUE(main.predicate.negated);
  EXPECT_EQ(main.predicate.modals,
            (std::vector<std::string>{"must"}));
}

TEST(Syntax, RejectsUngrammaticalSentences) {
  EXPECT_THROW((void)nlp::parse_sentence("", lex()), speccc::util::ParseError);
  EXPECT_THROW((void)nlp::parse_sentence("the cuff.", lex()),
               speccc::util::ParseError);
  EXPECT_THROW((void)nlp::parse_sentence("is pressed quickly.", lex()),
               speccc::util::ParseError);
  EXPECT_THROW(
      (void)nlp::parse_sentence("If the cuff is pressed the alarm.", lex()),
      speccc::util::ParseError);
}

// ---- Dependencies -----------------------------------------------------------

TEST(Dependency, SubjectAndComplementRelations) {
  const auto s =
      nlp::parse_sentence("The pulse wave is unavailable.", lex());
  const auto deps = nlp::dependencies(s);
  EXPECT_NE(std::find(deps.begin(), deps.end(),
                      nlp::Dependency{"nsubj", "be", "pulse_wave"}),
            deps.end());
  EXPECT_NE(std::find(deps.begin(), deps.end(),
                      nlp::Dependency{"acomp", "be", "unavailable"}),
            deps.end());
}

TEST(Dependency, PassiveSubject) {
  const auto s = nlp::parse_sentence("The cuff is selected.", lex());
  const auto deps = nlp::dependencies(s);
  EXPECT_NE(std::find(deps.begin(), deps.end(),
                      nlp::Dependency{"nsubjpass", "select", "cuff"}),
            deps.end());
}

TEST(Dependency, SubjectDependentsGroupAntonymCandidates) {
  // The paper's Section IV-D example: pulse wave depends on available and
  // unavailable across two requirements.
  const auto s1 = nlp::parse_sentence(
      "If pulse wave or arterial line is available, corroboration is "
      "triggered.",
      lex());
  const auto s2 = nlp::parse_sentence(
      "If pulse wave and arterial line are unavailable, manual mode is "
      "started.",
      lex());
  auto groups1 = nlp::subject_dependents(s1);
  auto groups2 = nlp::subject_dependents(s2);
  EXPECT_TRUE(groups1["pulse_wave"].count("available") > 0);
  EXPECT_TRUE(groups2["pulse_wave"].count("unavailable") > 0);
}

TEST(Dependency, CapitalizedNameComponentsAreNotCandidates) {
  const auto s = nlp::parse_sentence("If Air Ok signal remains low, the alarm "
                                     "is issued.",
                                     lex());
  const auto groups = nlp::subject_dependents(s);
  ASSERT_TRUE(groups.count("air_ok_signal") > 0);
  EXPECT_TRUE(groups.at("air_ok_signal").count("low") > 0);
  EXPECT_FALSE(groups.at("air_ok_signal").count("ok") > 0);
}

TEST(Dependency, LowercaseAttributiveAdjectiveIsCandidate) {
  const auto s = nlp::parse_sentence(
      "If a valid blood pressure is unavailable, manual mode is started.",
      lex());
  const auto groups = nlp::subject_dependents(s);
  ASSERT_TRUE(groups.count("blood_pressure") > 0);
  EXPECT_TRUE(groups.at("blood_pressure").count("valid") > 0);
  EXPECT_TRUE(groups.at("blood_pressure").count("unavailable") > 0);
}

}  // namespace
