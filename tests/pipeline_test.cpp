// End-to-end integration tests: the full Fig. 1 pipeline over the three
// case-study corpora, reproducing the paper's Table I verdicts.
#include <gtest/gtest.h>

#include "corpus/cara.hpp"
#include "corpus/generator.hpp"
#include "corpus/robot.hpp"
#include "corpus/telepromise.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "ltl/formula.hpp"
#include "synth/verify.hpp"

namespace core = speccc::core;
namespace corpus = speccc::corpus;
namespace translate = speccc::translate;

namespace {

TEST(PipelineCara, WorkingModeSpecIsConsistent) {
  core::Pipeline pipeline;
  const auto result =
      pipeline.run("CARA working mode", corpus::cara_working_mode_texts());
  EXPECT_TRUE(result.consistent);
  EXPECT_EQ(result.num_formulas(), 30u);  // the published formula count
  EXPECT_EQ(result.synthesis.engine_used, speccc::synth::Engine::kSymbolic);
  // The partition finds the paper's 22-23 inputs (22 published; ours differ
  // by one because the published formulas carry typo-induced propositions).
  EXPECT_NEAR(static_cast<double>(result.num_inputs()), 22.0, 1.5);
}

TEST(PipelineCara, TimeAbstractionMatchesPaperExample) {
  core::Pipeline pipeline;
  const auto result =
      pipeline.run("CARA working mode", corpus::cara_working_mode_texts());
  // Theta = {3, 180, 60}, B = 5 => d = 60, theta' = (0, 3, 1), error 3.
  ASSERT_TRUE(result.abstraction.has_value());
  EXPECT_EQ(result.abstraction->divisor, 60u);
  EXPECT_EQ(result.abstraction->reduced_sum, 4u);
  EXPECT_EQ(result.abstraction->error_sum, 3u);
}

TEST(PipelineCara, GoldenFormulasAfterAbstraction) {
  core::Pipeline pipeline;
  const auto result =
      pipeline.run("CARA working mode", corpus::cara_working_mode_texts());
  for (const auto& golden : corpus::cara_working_mode()) {
    const auto it =
        std::find_if(result.translation.requirements.begin(),
                     result.translation.requirements.end(),
                     [&golden](const auto& r) { return r.id == golden.id; });
    ASSERT_NE(it, result.translation.requirements.end()) << golden.id;
    EXPECT_EQ(speccc::ltl::to_string(it->formula), golden.expected)
        << golden.id;
  }
}

TEST(PipelineCara, AbstractionDisabledKeepsRawDelays) {
  core::PipelineOptions options;
  options.time_abstraction = false;
  core::Pipeline pipeline(options);
  const auto result =
      pipeline.run("CARA raw", corpus::cara_working_mode_texts());
  EXPECT_FALSE(result.abstraction.has_value());
  // Req-28 keeps its 180 X operators; the spec remains consistent (the GCD
  // claim: abstraction preserves realizability) but the monitors are much
  // larger.
  EXPECT_TRUE(result.consistent);
  EXPECT_GT(result.synthesis.state_bits, 180u);
}

TEST(PipelineCara, ComponentRowsMatchPublishedScale) {
  core::Pipeline pipeline;
  for (const auto& component : corpus::cara_component_specs()) {
    const auto result = pipeline.run(component.name, component.requirements);
    EXPECT_TRUE(result.consistent) << component.name;
    EXPECT_EQ(result.num_formulas(),
              static_cast<std::size_t>(component.table_formulas))
        << component.name;
    EXPECT_EQ(result.num_inputs(),
              static_cast<std::size_t>(component.table_inputs))
        << component.name;
    EXPECT_EQ(result.num_outputs(),
              static_cast<std::size_t>(component.table_outputs))
        << component.name;
  }
}

TEST(PipelineTele, AllFiveApplicationsEndConsistent) {
  core::Pipeline pipeline;
  for (const auto& tele : corpus::telepromise_specs()) {
    const auto result = pipeline.run(tele.name, tele.requirements);
    EXPECT_TRUE(result.consistent) << tele.name;
    EXPECT_EQ(result.num_formulas(),
              static_cast<std::size_t>(tele.table_formulas))
        << tele.name;
    EXPECT_EQ(result.num_inputs(), static_cast<std::size_t>(tele.table_inputs))
        << tele.name;
    EXPECT_EQ(result.num_outputs(),
              static_cast<std::size_t>(tele.table_outputs))
        << tele.name;
  }
}

TEST(PipelineTele, LastTwoNeedRepartitioning) {
  // The paper: "G4LTL failed to generate controllers for the last two
  // specifications. The failure was caused by the classification of input
  // and output variables. After ... modifying the input/output variable
  // partition, the specifications are consistent."
  core::Pipeline pipeline;
  for (const auto& tele : corpus::telepromise_specs()) {
    const auto result = pipeline.run(tele.name, tele.requirements);
    if (tele.partition_trap) {
      EXPECT_FALSE(result.synthesis.realizable()) << tele.name;
      ASSERT_TRUE(result.refinement.has_value()) << tele.name;
      EXPECT_TRUE(result.refinement->consistent) << tele.name;
      ASSERT_TRUE(result.refinement->adjustment.has_value()) << tele.name;
      EXPECT_FALSE(result.refinement->adjustment->now_input);
    } else {
      EXPECT_TRUE(result.synthesis.realizable()) << tele.name;
    }
  }
}

TEST(PipelineRobot, AllScenariosConsistentInStrictMode) {
  core::PipelineOptions options;
  options.translation.next_mode = translate::NextMode::kStrict;
  core::Pipeline pipeline(options);
  for (const auto& robot : corpus::robot_specs()) {
    const auto result = pipeline.run(robot.name, robot.requirements);
    EXPECT_TRUE(result.consistent) << robot.name;
    EXPECT_EQ(result.num_formulas(),
              static_cast<std::size_t>(robot.table_formulas))
        << robot.name;
    EXPECT_EQ(result.num_inputs(), static_cast<std::size_t>(robot.table_inputs))
        << robot.name;
    EXPECT_EQ(result.num_outputs(),
              static_cast<std::size_t>(robot.table_outputs))
        << robot.name;
  }
}

TEST(PipelineRobot, MutualExclusionViolationIsCaught) {
  // Force both robots into room 1: inconsistent with mutual exclusion.
  auto spec = corpus::robot_spec(2, 3);
  spec.requirements.push_back({"Bad-1", "Robot 1 is in room 1."});
  spec.requirements.push_back({"Bad-2", "Robot 2 is in room 1."});
  core::PipelineOptions options;
  options.translation.next_mode = translate::NextMode::kStrict;
  options.refine_on_failure = false;
  core::Pipeline pipeline(options);
  const auto result = pipeline.run("bad robots", spec.requirements);
  EXPECT_FALSE(result.consistent);
}

TEST(PipelineGenerator, GeneratedSpecsAlwaysParseAndStayConsistent) {
  // Property sweep over generator scales.
  core::Pipeline pipeline;
  const corpus::Theme theme = corpus::device_theme();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    corpus::SpecScale scale{"gen", 12, 7, 9, seed, 20, 20};
    const auto texts = corpus::generate_spec(scale, theme);
    const auto result = pipeline.run("generated", texts);
    EXPECT_TRUE(result.consistent) << "seed " << seed;
    EXPECT_EQ(result.num_formulas(), 12u);
    EXPECT_EQ(result.num_inputs(), 7u) << "seed " << seed;
    EXPECT_EQ(result.num_outputs(), 9u) << "seed " << seed;
  }
}

TEST(Report, TableRowAndDescribe) {
  core::Pipeline pipeline;
  const auto result =
      pipeline.run("CARA working mode", corpus::cara_working_mode_texts());
  const auto row = core::to_row("CARA", "0", result, 34.0);
  EXPECT_EQ(row.formulas, 30u);
  EXPECT_TRUE(row.consistent);
  EXPECT_FALSE(row.refined);

  const std::string text = core::describe(result);
  EXPECT_NE(text.find("consistent"), std::string::npos);
  EXPECT_NE(text.find("time abstraction: d = 60"), std::string::npos);
}

TEST(PipelineDiagnostics, UnsatisfiableRequirementIsFlagged) {
  core::PipelineOptions options;
  options.refine_on_failure = false;
  core::Pipeline pipeline(options);
  const std::vector<translate::RequirementText> spec = {
      {"ok", "If the pump is detected, the alarm is issued."},
      // "available and not available" in one clause group: unsatisfiable.
      {"bad", "The cuff is available and the cuff is not available."},
  };
  const auto result = pipeline.run("diag", spec);
  EXPECT_FALSE(result.consistent);
  EXPECT_EQ(result.unsatisfiable_requirements,
            (std::vector<std::string>{"bad"}));
}

TEST(PipelineDiagnostics, SatisfiabilityCheckCanBeDisabled) {
  core::PipelineOptions options;
  options.satisfiability_check = false;
  options.refine_on_failure = false;
  core::Pipeline pipeline(options);
  const std::vector<translate::RequirementText> spec = {
      {"bad", "The cuff is available and the cuff is not available."},
  };
  const auto result = pipeline.run("diag", spec);
  EXPECT_TRUE(result.unsatisfiable_requirements.empty());
  EXPECT_FALSE(result.consistent);
}

TEST(PipelineRobot, ExtractedControllerIsExhaustivelyCorrect) {
  // The strongest end-to-end property: synthesize the rescue-robot
  // controller and model-check it against every translated requirement.
  core::PipelineOptions options;
  options.translation.next_mode = translate::NextMode::kStrict;
  options.synthesis.symbolic.extract = true;
  core::Pipeline pipeline(options);
  const auto spec = corpus::robot_spec(1, 4);
  const auto result = pipeline.run(spec.name, spec.requirements);
  ASSERT_TRUE(result.consistent);
  ASSERT_TRUE(result.synthesis.controller.has_value());
  for (const auto& req : result.translation.requirements) {
    const auto check =
        speccc::synth::verify(*result.synthesis.controller, req.formula);
    EXPECT_TRUE(check.holds) << req.id << ": " << req.text;
  }
}

}  // namespace
