// Tests for the long-running service layer (serve/): the JSON wire
// format, the NDJSON protocol codec, and the Service engine's contracts
// -- verdicts byte-identical to batch::check, bounded-queue backpressure
// with retry hints, priority ordering, deadline handling (never silently
// dropped), per-request cache accounting, and drain-complete shutdown.
// Everything here is in-process and socket-free by design; the TCP path
// is exercised by the CI serve smoke (speccc_serve + speccc_load).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "batch/batch.hpp"
#include "cache/store.hpp"
#include "difftest/harness.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "util/diagnostics.hpp"

namespace batch = speccc::batch;
namespace cache = speccc::cache;
namespace serve = speccc::serve;
namespace json = speccc::serve::json;
using speccc::util::ParseError;

namespace {

batch::SpecTask door_spec(std::string name = "doors") {
  return {std::move(name),
          {
              {"R1", "If the door button is pressed, the lock signal is updated."},
              {"R2",
               "When the door sensor is detected, eventually the alarm is "
               "raised."},
          }};
}

serve::Request make_request(std::string id, batch::SpecTask spec,
                            int priority = 0, double deadline_seconds = 0.0) {
  serve::Request request;
  request.id = std::move(id);
  request.spec = std::move(spec);
  request.priority = priority;
  request.deadline_seconds = deadline_seconds;
  return request;
}

}  // namespace

// ---- serve::json ------------------------------------------------------------

TEST(ServeJson, ParsesScalarsArraysAndObjects) {
  const json::Value doc =
      json::parse(R"({"a":1,"b":[true,null,"x"],"c":{"d":-2.5}})");
  ASSERT_EQ(doc.kind(), json::Kind::kObject);
  EXPECT_EQ(doc.find("a")->as_number(), 1.0);
  const json::Array& b = doc.find("b")->as_array();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_TRUE(b[0].as_bool());
  EXPECT_TRUE(b[1].is_null());
  EXPECT_EQ(b[2].as_string(), "x");
  EXPECT_EQ(doc.find("c")->find("d")->as_number(), -2.5);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(ServeJson, DecodesEscapesIncludingSurrogatePairs) {
  const json::Value doc = json::parse(R"("a\n\t\"\\é😀")");
  EXPECT_EQ(doc.as_string(), "a\n\t\"\\\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(ServeJson, RejectsMalformedDocuments) {
  EXPECT_THROW(json::parse(""), ParseError);
  EXPECT_THROW(json::parse("{"), ParseError);
  EXPECT_THROW(json::parse("{}extra"), ParseError);
  EXPECT_THROW(json::parse("{\"a\":}"), ParseError);
  EXPECT_THROW(json::parse("[1,]"), ParseError);
  EXPECT_THROW(json::parse("nul"), ParseError);
  EXPECT_THROW(json::parse("\"unterminated"), ParseError);
  EXPECT_THROW(json::parse("\"bad \\q escape\""), ParseError);
  EXPECT_THROW(json::parse("\"lone \\ud800 surrogate\""), ParseError);
  EXPECT_THROW(json::parse("1.2.3"), ParseError);
  // Depth cap: reject a pathological nesting chain rather than recurse.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(json::parse(deep), ParseError);
  // Checked accessors throw on kind mismatch.
  EXPECT_THROW((void)json::parse("42").as_string(), ParseError);
}

TEST(ServeJson, WritesDeterministicallyWithSortedKeysAndExactIntegers) {
  json::Object o;
  o["zeta"] = json::Value(std::int64_t{1234567890123});
  o["alpha"] = json::Value(0.5);
  o["mid"] = json::Value("a\"b\nc");
  std::string out;
  json::write(out, json::Value(o));
  EXPECT_EQ(out, R"({"alpha":0.5,"mid":"a\"b\nc","zeta":1234567890123})");
  // Round-trip: what we write, we parse.
  const json::Value back = json::parse(out);
  EXPECT_EQ(back.find("zeta")->as_number(), 1234567890123.0);
}

// ---- serve protocol codec ---------------------------------------------------

TEST(ServeProtocol, ParsesCheckWithStringAndObjectRequirements) {
  const serve::ParsedRequest parsed = serve::parse_request(
      R"({"method":"check","id":"r9","name":"spec-a","priority":2,)"
      R"("deadline_ms":1500,"requirements":)"
      R"(["the door is open",{"id":"lock","text":"the lock is closed"}]})");
  EXPECT_EQ(parsed.method, serve::Method::kCheck);
  EXPECT_EQ(parsed.id, "r9");
  EXPECT_EQ(parsed.request.spec.name, "spec-a");
  EXPECT_EQ(parsed.request.priority, 2);
  EXPECT_DOUBLE_EQ(parsed.request.deadline_seconds, 1.5);
  ASSERT_EQ(parsed.request.spec.requirements.size(), 2u);
  EXPECT_EQ(parsed.request.spec.requirements[0].id, "R1");  // positional default
  EXPECT_EQ(parsed.request.spec.requirements[0].text, "the door is open");
  EXPECT_EQ(parsed.request.spec.requirements[1].id, "lock");
}

TEST(ServeProtocol, CheckDefaultsIdToNameAndNameToSpec) {
  const serve::ParsedRequest named = serve::parse_request(
      R"({"method":"check","name":"n1","requirements":["x is set"]})");
  EXPECT_EQ(named.id, "n1");
  EXPECT_EQ(named.request.id, "n1");
  const serve::ParsedRequest bare =
      serve::parse_request(R"({"method":"check","requirements":["x is set"]})");
  EXPECT_EQ(bare.request.spec.name, "spec");
  EXPECT_EQ(bare.id, "spec");
}

TEST(ServeProtocol, ParsesControlMethods) {
  EXPECT_EQ(serve::parse_request(R"({"method":"ping","id":"p"})").method,
            serve::Method::kPing);
  EXPECT_EQ(serve::parse_request(R"({"method":"stats"})").method,
            serve::Method::kStats);
  EXPECT_EQ(serve::parse_request(R"({"method":"shutdown"})").method,
            serve::Method::kShutdown);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  EXPECT_THROW(serve::parse_request("not json"), ParseError);
  EXPECT_THROW(serve::parse_request("[1,2]"), ParseError);
  EXPECT_THROW(serve::parse_request(R"({"id":"x"})"), ParseError);  // no method
  EXPECT_THROW(serve::parse_request(R"({"method":"frobnicate"})"), ParseError);
  EXPECT_THROW(serve::parse_request(R"({"method":"check"})"), ParseError);
  EXPECT_THROW(
      serve::parse_request(R"({"method":"check","requirements":[]})"),
      ParseError);
  EXPECT_THROW(
      serve::parse_request(R"({"method":"check","requirements":[42]})"),
      ParseError);
  EXPECT_THROW(serve::parse_request(
                   R"({"method":"check","requirements":[""]})"),
               ParseError);
  EXPECT_THROW(
      serve::parse_request(
          R"({"method":"check","deadline_ms":-5,"requirements":["x is set"]})"),
      ParseError);
}

TEST(ServeProtocol, RendersResultWithEmbeddedCanonicalLine) {
  batch::TaskResult result;
  result.name = "doors";
  result.status = batch::TaskStatus::kConsistent;
  result.formulas = 2;
  result.inputs = 2;
  result.outputs = 2;
  result.seconds = 0.25;

  serve::Response response;
  response.id = "r1";
  response.kind = serve::ResponseKind::kResult;
  response.result = result;
  response.queue_seconds = 0.002;

  const std::string line = serve::render_response(response);
  const json::Value doc = json::parse(line);
  EXPECT_EQ(doc.find("id")->as_string(), "r1");
  EXPECT_EQ(doc.find("kind")->as_string(), "result");
  EXPECT_EQ(doc.find("status")->as_string(), "consistent");
  EXPECT_EQ(doc.find("queue_ms")->as_number(), 2.0);
  EXPECT_EQ(doc.find("run_ms")->as_number(), 250.0);
  // The canonical field is EXACTLY batch's canonical line, newline
  // stripped -- the byte-comparability bridge.
  std::string expected = batch::canonical_line(result);
  ASSERT_FALSE(expected.empty());
  expected.pop_back();  // '\n'
  EXPECT_EQ(doc.find("canonical")->as_string(), expected);
}

TEST(ServeProtocol, ParsesOptionalSubstrateField) {
  const serve::ParsedRequest raced = serve::parse_request(
      R"({"method":"check","requirements":["x is set"],)"
      R"("substrate":"race:tableau,bounded"})");
  ASSERT_TRUE(raced.request.substrate.has_value());
  EXPECT_EQ(raced.request.substrate->to_string(), "race:tableau,bounded");

  const serve::ParsedRequest plain = serve::parse_request(
      R"({"method":"check","requirements":["x is set"]})");
  EXPECT_FALSE(plain.request.substrate.has_value());

  // An unparseable spec is a protocol error like any malformed field.
  EXPECT_THROW(
      serve::parse_request(R"({"method":"check","requirements":["x is set"],)"
                           R"("substrate":"race:tableau"})"),
      ParseError);
  EXPECT_THROW(
      serve::parse_request(R"({"method":"check","requirements":["x is set"],)"
                           R"("substrate":"warp"})"),
      ParseError);
}

TEST(ServeProtocol, RendersRacedResultWithWonAndSubstrateStats) {
  batch::TaskResult result;
  result.name = "doors";
  result.status = batch::TaskStatus::kConsistent;
  result.substrate = "symbolic";
  speccc::core::PortfolioStats portfolio;
  portfolio.winner = "symbolic";
  speccc::core::SubstrateRunStats tableau_run;
  tableau_run.name = "tableau";
  tableau_run.cancelled = true;
  speccc::core::SubstrateRunStats symbolic_run;
  symbolic_run.name = "symbolic";
  symbolic_run.verdict = speccc::synth::Realizability::kRealizable;
  symbolic_run.wall_seconds = 0.004;
  symbolic_run.won = true;
  portfolio.runs = {tableau_run, symbolic_run};
  result.portfolio = portfolio;

  serve::Response response;
  response.id = "r7";
  response.kind = serve::ResponseKind::kResult;
  response.result = result;

  const json::Value doc = json::parse(serve::render_response(response));
  EXPECT_EQ(doc.find("substrate")->as_string(), "symbolic");
  EXPECT_EQ(doc.find("won")->as_string(), "symbolic");
  const auto& runs = doc.find("substrates")->as_array();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].find("name")->as_string(), "tableau");
  EXPECT_TRUE(runs[0].find("cancelled")->as_bool());
  EXPECT_EQ(runs[1].find("name")->as_string(), "symbolic");
  EXPECT_EQ(runs[1].find("verdict")->as_string(), "realizable");
  EXPECT_TRUE(runs[1].find("won")->as_bool());

  // The race diagnostics ride ALONGSIDE the canonical row, never in it:
  // the embedded field stays byte-identical to an unraced result's.
  std::string expected = batch::canonical_line(result);
  expected.pop_back();
  EXPECT_EQ(doc.find("canonical")->as_string(), expected);
  EXPECT_EQ(expected.find("won"), std::string::npos);

  // Unraced results carry neither field.
  batch::TaskResult bare;
  bare.name = "doors";
  bare.status = batch::TaskStatus::kConsistent;
  serve::Response bare_response;
  bare_response.id = "r8";
  bare_response.kind = serve::ResponseKind::kResult;
  bare_response.result = bare;
  const json::Value bare_doc =
      json::parse(serve::render_response(bare_response));
  EXPECT_EQ(bare_doc.find("won"), nullptr);
  EXPECT_EQ(bare_doc.find("substrates"), nullptr);
}

TEST(ServeProtocol, RendersRejectionAndErrorKinds) {
  serve::Response rejection;
  rejection.id = "r2";
  rejection.kind = serve::ResponseKind::kRejected;
  rejection.error = "admission queue is full";
  rejection.retry_after_seconds = 0.128;
  const json::Value doc = json::parse(serve::render_response(rejection));
  EXPECT_EQ(doc.find("kind")->as_string(), "rejected");
  EXPECT_EQ(doc.find("retry_after_ms")->as_number(), 128.0);

  const json::Value err = json::parse(serve::render_error("", "bad line"));
  EXPECT_EQ(err.find("kind")->as_string(), "error");
  EXPECT_EQ(err.find("error")->as_string(), "bad line");

  const json::Value pong = json::parse(serve::render_pong("p1"));
  EXPECT_EQ(pong.find("kind")->as_string(), "pong");
}

TEST(ServeProtocol, RendersStatsWithCacheSection) {
  serve::ServiceStats stats;
  stats.submitted = 5;
  stats.completed = 4;
  stats.workers = 2;
  cache::Store store({.shards = 4, .max_entries = 8,
                      .eviction = cache::Eviction::kLru});
  const json::Value doc =
      json::parse(serve::render_stats("s1", stats, &store));
  EXPECT_EQ(doc.find("submitted")->as_number(), 5.0);
  EXPECT_EQ(doc.find("workers")->as_number(), 2.0);
  ASSERT_NE(doc.find("cache"), nullptr);
  EXPECT_EQ(doc.find("cache")->find("eviction")->as_string(), "lru");
  // Without a store the section is absent.
  const json::Value bare = json::parse(serve::render_stats("s2", stats, nullptr));
  EXPECT_EQ(bare.find("cache"), nullptr);
}

// ---- serve::Service ---------------------------------------------------------

TEST(ServeService, VerdictsAreByteIdenticalToBatch) {
  // The determinism bridge, in-process: the same specs through
  // batch::check and through the service must render identical canonical
  // lines (the CI smoke re-proves this across the TCP transport).
  std::vector<batch::SpecTask> specs;
  for (int index = 0; index < 6; ++index) {
    auto spec = speccc::difftest::generated_spec(11, index);
    specs.push_back({std::move(spec.name), std::move(spec.requirements)});
  }
  batch::BatchOptions batch_options;
  batch_options.jobs = 1;
  const batch::BatchReport report = batch::check(specs, batch_options);

  serve::ServiceOptions options;
  options.workers = 2;
  serve::Service service(options);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const serve::Response response =
        service.check(make_request("q" + std::to_string(i), specs[i]));
    ASSERT_EQ(response.kind, serve::ResponseKind::kResult) << response.error;
    EXPECT_EQ(batch::canonical_line(response.result),
              batch::canonical_line(report.results[i]))
        << specs[i].name;
  }
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, specs.size());
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ServeService, PerRequestSubstrateOverrideKeepsCanonicalParity) {
  // A raced request must answer the same canonical line as the unraced
  // default -- mixed-substrate traffic stays byte-comparable with batch --
  // while carrying the race diagnostics alongside.
  serve::ServiceOptions options;
  options.workers = 1;
  serve::Service service(options);

  const serve::Response plain = service.check(make_request("p", door_spec()));
  ASSERT_EQ(plain.kind, serve::ResponseKind::kResult) << plain.error;

  serve::Request raced_request = make_request("r", door_spec());
  raced_request.substrate =
      speccc::core::SubstrateSpec::parse("race:tableau,bounded,symbolic");
  const serve::Response raced = service.check(std::move(raced_request));
  ASSERT_EQ(raced.kind, serve::ResponseKind::kResult) << raced.error;

  EXPECT_EQ(batch::canonical_line(raced.result),
            batch::canonical_line(plain.result));
  ASSERT_TRUE(raced.result.portfolio.has_value());
  EXPECT_EQ(raced.result.portfolio->runs.size(), 3u);
  EXPECT_FALSE(raced.result.substrate.empty());
  EXPECT_FALSE(plain.result.portfolio.has_value());
}

TEST(ServeService, BackpressureRejectsWithRetryHintAndAnswersEveryRequest) {
  serve::ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  serve::Service service(options);

  // Block the single worker inside a completion callback so the queue
  // state is deterministic while we probe admission.
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::atomic<int> answered{0};
  ASSERT_TRUE(service.submit(make_request("blocker", door_spec()),
                            [&](serve::Response) {
                              started.set_value();
                              release_future.wait();
                              ++answered;
                            }));
  started.get_future().wait();  // worker is now parked; queue is empty

  // Fill the queue exactly to capacity...
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(service.submit(make_request("fill" + std::to_string(i),
                                            door_spec()),
                               [&](serve::Response r) {
                                 EXPECT_EQ(r.kind, serve::ResponseKind::kResult);
                                 ++answered;
                               }));
  }
  // ...and the next submission bounces with a positive retry hint.
  serve::Response rejection;
  EXPECT_FALSE(service.submit(make_request("overflow", door_spec()),
                              [&](serve::Response r) {
                                rejection = std::move(r);
                                ++answered;
                              }));
  EXPECT_EQ(rejection.kind, serve::ResponseKind::kRejected);
  EXPECT_EQ(rejection.id, "overflow");
  EXPECT_GT(rejection.retry_after_seconds, 0.0);

  release.set_value();
  service.shutdown();
  // Exactly one response per submission: 1 blocker + 2 fills + 1 rejection.
  EXPECT_EQ(answered.load(), 4);
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 3u);
}

TEST(ServeService, LowerPriorityValueRunsFirstFifoWithinClass) {
  serve::ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 8;
  serve::Service service(options);

  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  ASSERT_TRUE(service.submit(make_request("blocker", door_spec()),
                            [&](serve::Response) {
                              started.set_value();
                              release_future.wait();
                            }));
  started.get_future().wait();

  std::mutex order_mutex;
  std::vector<std::string> order;
  const auto record = [&](serve::Response r) {
    std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(r.id);
  };
  // Enqueued while the worker is parked: urgent (0) beats normal (5);
  // same priority keeps submission order.
  ASSERT_TRUE(service.submit(make_request("slow-a", door_spec(), 5), record));
  ASSERT_TRUE(service.submit(make_request("urgent", door_spec(), 0), record));
  ASSERT_TRUE(service.submit(make_request("slow-b", door_spec(), 5), record));

  release.set_value();
  service.shutdown();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "urgent");
  EXPECT_EQ(order[1], "slow-a");
  EXPECT_EQ(order[2], "slow-b");
}

TEST(ServeService, ExpiredDeadlineAnswersDeadlineExceededNotSilence) {
  serve::ServiceOptions options;
  options.workers = 1;
  serve::Service service(options);

  // Park the worker so the deadline lapses while the request is queued.
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  ASSERT_TRUE(service.submit(make_request("blocker", door_spec()),
                            [&](serve::Response) {
                              started.set_value();
                              release_future.wait();
                            }));
  started.get_future().wait();

  std::promise<serve::Response> answered;
  ASSERT_TRUE(service.submit(
      make_request("doomed", door_spec(), 0, /*deadline_seconds=*/1e-9),
      [&](serve::Response r) { answered.set_value(std::move(r)); }));
  release.set_value();

  const serve::Response response = answered.get_future().get();
  EXPECT_EQ(response.kind, serve::ResponseKind::kDeadlineExceeded);
  EXPECT_EQ(response.id, "doomed");
  EXPECT_FALSE(response.error.empty());
  service.shutdown();
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  // The expired request was counted, answered, and never ran to a verdict.
  EXPECT_EQ(stats.completed, 1u);
}

TEST(ServeService, DefaultDeadlineAppliesToRequestsWithoutOne) {
  serve::ServiceOptions options;
  options.workers = 1;
  options.default_deadline_seconds = 1e-9;
  serve::Service service(options);

  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  ASSERT_TRUE(service.submit(make_request("blocker", door_spec(), 0,
                                          /*deadline_seconds=*/3600.0),
                            [&](serve::Response) {
                              started.set_value();
                              release_future.wait();
                            }));
  started.get_future().wait();
  // No explicit deadline: inherits the (immediately expiring) default.
  std::promise<serve::Response> answered;
  ASSERT_TRUE(
      service.submit(make_request("inherits", door_spec()),
                     [&](serve::Response r) { answered.set_value(std::move(r)); }));
  release.set_value();
  EXPECT_EQ(answered.get_future().get().kind,
            serve::ResponseKind::kDeadlineExceeded);
  service.shutdown();
}

TEST(ServeService, ShutdownDrainsQueuedWorkThenRejects) {
  serve::ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 16;
  serve::Service service(options);

  std::atomic<int> answered{0};
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(service.submit(
        make_request("q" + std::to_string(i), door_spec()),
        [&](serve::Response r) {
          EXPECT_EQ(r.kind, serve::ResponseKind::kResult);
          ++answered;
        }));
  }
  service.shutdown();  // must not return before every request answers
  EXPECT_EQ(answered.load(), kRequests);

  serve::Response late;
  EXPECT_FALSE(service.submit(make_request("late", door_spec()),
                              [&](serve::Response r) { late = std::move(r); }));
  EXPECT_EQ(late.kind, serve::ResponseKind::kRejected);
  EXPECT_EQ(service.stats().completed, static_cast<std::uint64_t>(kRequests));
}

TEST(ServeService, PerRequestCacheAccountingIsExact) {
  serve::ServiceOptions options;
  options.workers = 1;
  auto store = std::make_shared<cache::Store>(
      cache::StoreOptions{.eviction = cache::Eviction::kLru});
  options.pipeline.cache = store;
  serve::Service service(options);

  const serve::Response first = service.check(make_request("c1", door_spec()));
  ASSERT_EQ(first.kind, serve::ResponseKind::kResult);
  EXPECT_GT(first.result.cache.misses(), 0u);  // cold store

  const serve::Response second = service.check(make_request("c2", door_spec()));
  ASSERT_EQ(second.kind, serve::ResponseKind::kResult);
  // The identical spec re-checked against a warm store: every artifact
  // hits, nothing misses -- and the thread-local deltas attribute that to
  // THIS request exactly.
  EXPECT_EQ(second.result.cache.misses(), 0u);
  EXPECT_GT(second.result.cache.hits(), 0u);
  // And the verdicts stayed byte-identical, warm or cold.
  EXPECT_EQ(batch::canonical_line(second.result),
            batch::canonical_line(first.result));
  service.shutdown();
}
