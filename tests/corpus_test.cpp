// Tests for the corpus module: the published CARA texts, the seeded
// generators, and the file-format loaders.
#include <gtest/gtest.h>

#include <sstream>

#include "corpus/cara.hpp"
#include "corpus/generator.hpp"
#include "corpus/loaders.hpp"
#include "corpus/robot.hpp"
#include "corpus/telepromise.hpp"
#include "nlp/syntax.hpp"
#include "util/diagnostics.hpp"

namespace corpus = speccc::corpus;

namespace {

TEST(CaraCorpus, ThirtyRequirements) {
  EXPECT_EQ(corpus::cara_working_mode().size(), 30u);
  // Every text parses under the builtin lexicon.
  const auto lexicon = speccc::nlp::Lexicon::builtin();
  for (const auto& req : corpus::cara_working_mode()) {
    EXPECT_NO_THROW((void)speccc::nlp::parse_sentence(req.text, lexicon))
        << req.id;
  }
}

TEST(CaraCorpus, ComponentScalesMatchTable) {
  const auto components = corpus::cara_component_specs();
  ASSERT_EQ(components.size(), 13u);
  // Spot-check the published scales.
  EXPECT_EQ(components[0].number, "1");
  EXPECT_EQ(components[0].table_formulas, 20);
  EXPECT_EQ(components[12].number, "3.2");
  EXPECT_EQ(components[12].table_formulas, 56);
  for (const auto& c : components) {
    EXPECT_EQ(c.requirements.size(), static_cast<std::size_t>(c.table_formulas))
        << c.name;
  }
}

TEST(Generator, DeterministicForFixedSeed) {
  corpus::SpecScale scale{"det", 10, 6, 7, 99, 20, 20};
  const auto a = corpus::generate_spec(scale, corpus::device_theme());
  const auto b = corpus::generate_spec(scale, corpus::device_theme());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].text, b[i].text);
}

TEST(Generator, DifferentSeedsDiffer) {
  corpus::SpecScale a{"s", 10, 6, 7, 1, 20, 20};
  corpus::SpecScale b{"s", 10, 6, 7, 2, 20, 20};
  const auto sa = corpus::generate_spec(a, corpus::device_theme());
  const auto sb = corpus::generate_spec(b, corpus::device_theme());
  bool any_diff = false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].text != sb[i].text) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, RejectsInfeasibleScales) {
  corpus::SpecScale too_many_inputs{"bad", 2, 10, 2, 1, 0, 0};
  EXPECT_THROW(
      (void)corpus::generate_spec(too_many_inputs, corpus::device_theme()),
      speccc::util::InvalidInputError);
  corpus::SpecScale zero{"bad", 0, 1, 1, 1, 0, 0};
  EXPECT_THROW((void)corpus::generate_spec(zero, corpus::device_theme()),
               speccc::util::InvalidInputError);
}

TEST(RobotCorpus, FormulaCountsFollowTheClosedForm) {
  // 1 robot: rooms movement + 1 alive + 3 rescue + 1 existence.
  EXPECT_EQ(corpus::robot_spec(1, 4).requirements.size(), 9u);
  EXPECT_EQ(corpus::robot_spec(1, 9).requirements.size(), 14u);
  // 2 robots: 2*rooms movement + rooms exclusion + 2 alive + 3 rescue +
  // rooms existence.
  EXPECT_EQ(corpus::robot_spec(2, 5).requirements.size(), 25u);
  EXPECT_EQ(corpus::robot_spec(2, 3).requirements.size(), 17u);
}

TEST(TeleCorpus, TrapsOnlyInTheLastTwo) {
  const auto specs = corpus::telepromise_specs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_FALSE(specs[0].partition_trap);
  EXPECT_FALSE(specs[1].partition_trap);
  EXPECT_FALSE(specs[2].partition_trap);
  EXPECT_TRUE(specs[3].partition_trap);
  EXPECT_TRUE(specs[4].partition_trap);
}

// ---- Loaders ------------------------------------------------------------------

TEST(Loaders, RequirementsWithAndWithoutIds) {
  std::istringstream in(
      "# comment\n"
      "\n"
      "R1: If the pump is detected, the alarm is issued.\n"
      "The cuff is available.\n");
  const auto reqs = corpus::load_requirements(in);
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].id, "R1");
  EXPECT_EQ(reqs[0].text, "If the pump is detected, the alarm is issued.");
  EXPECT_EQ(reqs[1].id, "L4");
}

TEST(Loaders, RequirementIdWithoutSentenceThrows) {
  std::istringstream in("R1:\n");
  EXPECT_THROW((void)corpus::load_requirements(in), speccc::util::ParseError);
}

TEST(Loaders, LexiconExtension) {
  std::istringstream in(
      "flux noun\n"
      "defrag verb\n"
      "wobbly adjective\n");
  auto lexicon = speccc::nlp::Lexicon::builtin();
  corpus::load_lexicon(in, lexicon);
  EXPECT_TRUE(lexicon.lookup("flux").count(speccc::nlp::Pos::kNoun) > 0);
  EXPECT_TRUE(lexicon.analyze_verb("defragged").has_value());
  EXPECT_TRUE(lexicon.lookup("wobbly").count(speccc::nlp::Pos::kAdjective) > 0);
}

TEST(Loaders, LexiconBadPosThrows) {
  std::istringstream in("word gerundive\n");
  auto lexicon = speccc::nlp::Lexicon::builtin();
  EXPECT_THROW(corpus::load_lexicon(in, lexicon), speccc::util::ParseError);
}

TEST(Loaders, AntonymExtension) {
  std::istringstream in("armed disarmed\n");
  auto dict = speccc::semantics::AntonymDictionary::builtin();
  corpus::load_antonyms(in, dict);
  EXPECT_EQ(dict.polarity("disarmed"), speccc::semantics::Polarity::kNegative);
}

TEST(Loaders, AntonymBadLineThrows) {
  std::istringstream in("lonely\n");
  auto dict = speccc::semantics::AntonymDictionary::builtin();
  EXPECT_THROW(corpus::load_antonyms(in, dict), speccc::util::ParseError);
}

}  // namespace
