// Diagnosis cost study: MUS extraction time vs. specification size on
// generated multi-fault corpora (the planted-fault generator of
// difftest/random.hpp), the cores path against the legacy greedy
// localization it replaced, MCS enumeration, and the pure-SAT group MUS
// path whose incremental assumption cores make the shrinker cheap.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <iostream>
#include <vector>

#include "diag/diag.hpp"
#include "difftest/harness.hpp"
#include "difftest/oracle.hpp"
#include "refine/refine.hpp"
#include "sat/solver.hpp"

namespace diag = speccc::diag;
namespace difftest = speccc::difftest;
namespace refine = speccc::refine;
namespace sat = speccc::sat;

namespace {

constexpr std::uint64_t kSeed = 97;

difftest::FaultConfig sized_config(int base_formulas) {
  difftest::FaultConfig config;
  config.base.min_formulas = base_formulas;
  config.base.max_formulas = base_formulas;
  return config;
}

refine::LocalizeOptions method(refine::LocalizeOptions::Method m) {
  refine::LocalizeOptions options;
  options.method = m;
  return options;
}

/// One planted multi-fault spec per base size, generated once: the
/// benchmark measures localization, not generation or translation.
void BM_MusBySpecSize(benchmark::State& state) {
  const auto spec = difftest::generated_planted_spec(
      kSeed, 0, sized_config(static_cast<int>(state.range(0))));
  const difftest::SpecCase sc = difftest::build_spec_case(spec.requirements);
  const auto cores = method(refine::LocalizeOptions::Method::kCores);
  std::size_t checks = 0;
  for (auto _ : state) {
    const auto loc = refine::localize(sc.requirements, sc.signature, {}, cores);
    benchmark::DoNotOptimize(loc.core.data());
    checks = loc.checks;
  }
  state.counters["requirements"] = static_cast<double>(sc.requirements.size());
  state.counters["realizability_checks"] = static_cast<double>(checks);
}
BENCHMARK(BM_MusBySpecSize)
    ->RangeMultiplier(2)
    ->Range(4, 16)
    ->Unit(benchmark::kMillisecond);

/// The legacy greedy growth-and-shrink on the same corpora. Greedy stops
/// growing at the first conflict, so its cost tracks the position of the
/// earliest fault (cf. bench_refine's by-position study) while the
/// deletion path pays ~1 check per requirement wherever the fault sits.
void BM_MusGreedyBySpecSize(benchmark::State& state) {
  const auto spec = difftest::generated_planted_spec(
      kSeed, 0, sized_config(static_cast<int>(state.range(0))));
  const difftest::SpecCase sc = difftest::build_spec_case(spec.requirements);
  const auto greedy = method(refine::LocalizeOptions::Method::kGreedy);
  std::size_t checks = 0;
  for (auto _ : state) {
    const auto loc =
        refine::localize(sc.requirements, sc.signature, {}, greedy);
    benchmark::DoNotOptimize(loc.core.data());
    checks = loc.checks;
  }
  state.counters["realizability_checks"] = static_cast<double>(checks);
}
BENCHMARK(BM_MusGreedyBySpecSize)
    ->RangeMultiplier(2)
    ->Range(4, 16)
    ->Unit(benchmark::kMillisecond);

/// Full MCS enumeration (cap 4) over a mid-size multi-fault spec: the
/// rotation/grow loop costs about one realizability check per requirement
/// per enumerated set.
void BM_McsEnumeration(benchmark::State& state) {
  difftest::FaultConfig config = sized_config(8);
  config.min_faults = config.max_faults = static_cast<int>(state.range(0));
  const auto spec = difftest::generated_planted_spec(kSeed, 0, config);
  const difftest::SpecCase sc = difftest::build_spec_case(spec.requirements);
  const auto oracle = diag::synthesis_oracle(sc.requirements, sc.signature);
  std::size_t checks = 0;
  for (auto _ : state) {
    std::vector<std::size_t> universe(sc.requirements.size());
    for (std::size_t i = 0; i < universe.size(); ++i) universe[i] = i;
    const auto sets = diag::correction_sets(universe, oracle, 4, checks);
    benchmark::DoNotOptimize(sets.data());
  }
  state.counters["requirements"] = static_cast<double>(sc.requirements.size());
}
BENCHMARK(BM_McsEnumeration)
    ->DenseRange(2, 4, 1)
    ->Unit(benchmark::kMillisecond);

/// SAT-backed group MUS: N innocent unit groups around one gated
/// pigeonhole contradiction. The solver's assumption core prunes all N
/// bystanders in one jump, and clauses learned refuting the pigeonhole
/// once make every later probe of it near-free.
void BM_SatGroupMus(benchmark::State& state) {
  const int innocents = static_cast<int>(state.range(0));
  constexpr int kPigeons = 6;
  constexpr int kHoles = 5;
  for (auto _ : state) {
    state.PauseTiming();  // solver construction is not the measured path
    sat::Solver solver;
    std::vector<sat::Lit> selectors;
    for (int i = 0; i < innocents; ++i) {
      const sat::Lit sel(solver.new_var(), true);
      const sat::Lit value(solver.new_var(), true);
      solver.add_binary(sel.negated(), value);
      selectors.push_back(sel);
    }
    int var[kPigeons][kHoles];
    for (auto& row : var) {
      for (int& v : row) v = solver.new_var();
    }
    const sat::Lit gate(solver.new_var(), true);
    for (int i = 0; i < kPigeons; ++i) {
      sat::Clause clause{gate.negated()};
      for (int j = 0; j < kHoles; ++j) clause.push_back(sat::Lit(var[i][j], true));
      solver.add_clause(clause);
    }
    for (int j = 0; j < kHoles; ++j) {
      for (int i1 = 0; i1 < kPigeons; ++i1) {
        for (int i2 = i1 + 1; i2 < kPigeons; ++i2) {
          solver.add_ternary(gate.negated(), sat::Lit(var[i1][j], false),
                             sat::Lit(var[i2][j], false));
        }
      }
    }
    selectors.push_back(gate);
    state.ResumeTiming();

    const auto oracle = diag::sat_group_oracle(solver, selectors);
    diag::Options options;
    options.max_correction_sets = 0;
    const diag::Diagnosis d = diag::diagnose(selectors.size(), oracle, options);
    benchmark::DoNotOptimize(d.mus.data());
  }
}
BENCHMARK(BM_SatGroupMus)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Unit(benchmark::kMillisecond);

void print_summary() {
  std::cout << "\nMUS localization study (planted multi-fault corpora)\n";
  for (const int base : {4, 8, 16}) {
    const auto spec =
        difftest::generated_planted_spec(kSeed, 0, sized_config(base));
    const difftest::SpecCase sc = difftest::build_spec_case(spec.requirements);
    const auto cores_loc = refine::localize(
        sc.requirements, sc.signature, {},
        method(refine::LocalizeOptions::Method::kCores));
    const auto greedy_loc = refine::localize(
        sc.requirements, sc.signature, {},
        method(refine::LocalizeOptions::Method::kGreedy));
    std::cout << "  " << sc.requirements.size() << " requirements, "
              << spec.faults.size() << " planted faults: cores "
              << cores_loc.checks << " checks (|MUS| "
              << cores_loc.core.size() << "), greedy " << greedy_loc.checks
              << " checks (|core| " << greedy_loc.core.size() << ")\n";
  }
  std::cout << "  (deletion is position-independent -- about one check per "
               "requirement plus\n   two per MUS element -- and guarantees a "
               "minimal subset; greedy's cost\n   tracks the position of the "
               "earliest conflict, so it wins on documents\n   whose fault "
               "sits early and loses linearly when it sits late, cf.\n   "
               "bench_refine's by-position study.)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
