// Portfolio racing latency on the standing slow seed of the fuzz corpus
// (seed 6 / spec case 21 -- the spec whose auto path escalates into the
// expensive bounded run). The acceptance bar the CI bench job tracks:
// the raced latency must sit within a small constant factor of the
// fastest solo substrate, because the race IS the fastest substrate plus
// cancellation overhead. Each solo substrate rides alongside so a
// regression names the lane that slowed down.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/substrate.hpp"
#include "difftest/harness.hpp"

namespace {

using speccc::core::Pipeline;
using speccc::core::PipelineOptions;
using speccc::core::SubstrateSpec;

/// The pinned slow spec, generated once per process.
const speccc::difftest::GeneratedSpec& slow_seed_spec() {
  static const speccc::difftest::GeneratedSpec spec =
      speccc::difftest::generated_spec(6, 21);
  return spec;
}

void run_with_spec(benchmark::State& state, const std::string& substrate) {
  PipelineOptions options;
  options.substrate = SubstrateSpec::parse(substrate);
  // Measure the decision substrate, not stage 3: an abstaining solo lane
  // (tableau on a realizable spec) would otherwise drag refinement into
  // its lap time and the cross-lane comparison would be apples to oranges.
  options.refine_on_failure = false;
  // The difftest oracle's give-up caps, applied uniformly to every lane:
  // uncapped bounded synthesis grinds for minutes on this seed, which is
  // exactly the pathology racing routes around -- but a pinned CI bench
  // must abstain at the caps, not reproduce the grind.
  options.synthesis.bounded.max_k = 4;
  options.synthesis.bounded.max_game_positions = 20'000;
  options.synthesis.bounded.max_ucw_states = 150;
  const Pipeline pipeline(options);
  const auto& spec = slow_seed_spec();
  for (auto _ : state) {
    const auto result = pipeline.run(spec.name, spec.requirements);
    benchmark::DoNotOptimize(result.consistent);
  }
}

void BM_PortfolioSlowSeedAuto(benchmark::State& state) {
  run_with_spec(state, "auto");
}
BENCHMARK(BM_PortfolioSlowSeedAuto)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PortfolioSlowSeedSoloTableau(benchmark::State& state) {
  run_with_spec(state, "tableau");
}
BENCHMARK(BM_PortfolioSlowSeedSoloTableau)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PortfolioSlowSeedSoloBounded(benchmark::State& state) {
  run_with_spec(state, "bounded");
}
BENCHMARK(BM_PortfolioSlowSeedSoloBounded)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PortfolioSlowSeedSoloSymbolic(benchmark::State& state) {
  run_with_spec(state, "symbolic");
}
BENCHMARK(BM_PortfolioSlowSeedSoloSymbolic)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PortfolioSlowSeedRace(benchmark::State& state) {
  run_with_spec(state, "race:tableau,bounded,symbolic");
}
BENCHMARK(BM_PortfolioSlowSeedRace)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Same race with the eventual winner listed first (racer 0 runs inline on
// the caller's thread): on a single-CPU host the canonical ordering above
// pays a scheduler quantum per losing lane before the winner even starts,
// while this ordering isolates the true racing overhead -- thread spawn,
// cancellation polls, join -- over the fastest solo lane.
void BM_PortfolioSlowSeedRaceWinnerFirst(benchmark::State& state) {
  run_with_spec(state, "race:symbolic,tableau,bounded");
}
BENCHMARK(BM_PortfolioSlowSeedRaceWinnerFirst)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
