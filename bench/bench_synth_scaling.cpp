// Section VI's observation: "The performance of G4LTL are sensitive to the
// number of subformulas, the number of input and output variables, and the
// length of a formula." This harness sweeps each axis independently on
// generated specifications and reports the scaling of our engine.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/pipeline.hpp"
#include "corpus/generator.hpp"
#include "ltl/parser.hpp"
#include "synth/bounded.hpp"
#include "synth/synthesizer.hpp"

namespace {

using speccc::corpus::SpecScale;

// Axis 1: number of formulas (I/O fixed).
void BM_FormulaCount(benchmark::State& state) {
  const int formulas = static_cast<int>(state.range(0));
  SpecScale scale{"axis1", formulas, 8, 10, 42, 20, 10};
  const auto texts =
      speccc::corpus::generate_spec(scale, speccc::corpus::device_theme());
  speccc::core::Pipeline pipeline;
  for (auto _ : state) {
    auto result = pipeline.run("axis1", texts);
    benchmark::DoNotOptimize(result.consistent);
  }
  state.SetComplexityN(formulas);
}
BENCHMARK(BM_FormulaCount)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

// Axis 2: number of I/O variables (formula count fixed).
void BM_IoVariables(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  SpecScale scale{"axis2", 2 * vars, vars, vars, 43, 20, 10};
  const auto texts =
      speccc::corpus::generate_spec(scale, speccc::corpus::device_theme());
  speccc::core::Pipeline pipeline;
  for (auto _ : state) {
    auto result = pipeline.run("axis2", texts);
    benchmark::DoNotOptimize(result.consistent);
  }
  state.SetComplexityN(vars);
}
BENCHMARK(BM_IoVariables)
    ->RangeMultiplier(2)
    ->Range(4, 32)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

// Axis 3: formula length via the Next-chain depth of a single timed
// requirement (the bounded engine's counting construction).
void BM_FormulaLength(benchmark::State& state) {
  const auto delay = static_cast<std::size_t>(state.range(0));
  const auto spec = speccc::ltl::always(speccc::ltl::implies(
      speccc::ltl::ap("a"),
      speccc::ltl::next_n(speccc::ltl::ap("x"), delay)));
  const speccc::synth::IoSignature signature{{"a"}, {"x"}};
  speccc::synth::BoundedOptions options;
  options.extract = false;
  for (auto _ : state) {
    auto outcome = speccc::synth::bounded_synthesize(spec, signature, options);
    benchmark::DoNotOptimize(outcome.verdict);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FormulaLength)
    ->RangeMultiplier(2)
    ->Range(1, 8)  // the tableau is exponential in the Next-chain depth
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

// Axis 4: fraction of liveness (response) obligations -- each adds a Buechi
// set to the generalized-Buechi fixpoint.
void BM_ResponseFraction(benchmark::State& state) {
  const auto percent = static_cast<unsigned>(state.range(0));
  SpecScale scale{"axis4", 24, 10, 12, 44, percent, 10};
  const auto texts =
      speccc::corpus::generate_spec(scale, speccc::corpus::device_theme());
  speccc::core::Pipeline pipeline;
  for (auto _ : state) {
    auto result = pipeline.run("axis4", texts);
    benchmark::DoNotOptimize(result.consistent);
  }
}
BENCHMARK(BM_ResponseFraction)
    ->DenseRange(0, 80, 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
