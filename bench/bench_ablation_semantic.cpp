// Ablation for Section IV-D (semantic reasoning): with the antonym
// reduction disabled, every complement spawns its own proposition
// (available_pulse_wave AND unavailable_pulse_wave), the alphabet grows,
// and -- as the paper argues -- mutual-exclusion assumptions are silently
// lost, which can flip realizability verdicts.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/pipeline.hpp"
#include "corpus/cara.hpp"

namespace {

speccc::core::Pipeline pipeline_with(bool reasoning) {
  speccc::core::PipelineOptions options;
  options.translation.semantic_reasoning = reasoning;
  return speccc::core::Pipeline(options);
}

void BM_CaraWithReasoning(benchmark::State& state) {
  auto pipeline = pipeline_with(true);
  const auto texts = speccc::corpus::cara_working_mode_texts();
  for (auto _ : state) {
    auto result = pipeline.run("CARA", texts);
    benchmark::DoNotOptimize(result.consistent);
  }
}
BENCHMARK(BM_CaraWithReasoning)->Unit(benchmark::kMillisecond);

void BM_CaraWithoutReasoning(benchmark::State& state) {
  auto pipeline = pipeline_with(false);
  const auto texts = speccc::corpus::cara_working_mode_texts();
  for (auto _ : state) {
    auto result = pipeline.run("CARA", texts);
    benchmark::DoNotOptimize(result.consistent);
  }
}
BENCHMARK(BM_CaraWithoutReasoning)->Unit(benchmark::kMillisecond);

void print_ablation() {
  const auto texts = speccc::corpus::cara_working_mode_texts();
  auto with = pipeline_with(true).run("CARA + reasoning", texts);
  auto without = pipeline_with(false).run("CARA - reasoning", texts);
  std::cout << "\nSection IV-D ablation on the CARA working-mode spec\n";
  std::cout << "  with reasoning:    " << with.translation.propositions.size()
            << " propositions, " << with.translation.reasoning.pairs.size()
            << " antonym pairs, synthesis " << with.synthesis_seconds
            << " s, verdict "
            << (with.consistent ? "consistent" : "INCONSISTENT") << "\n";
  std::cout << "  without reasoning: "
            << without.translation.propositions.size()
            << " propositions, synthesis " << without.synthesis_seconds
            << " s, verdict "
            << (without.consistent ? "consistent" : "INCONSISTENT") << "\n";
  std::cout << "  (without reduction, available_X and unavailable_X are "
               "unrelated inputs;\n   the environment may assert both, so "
               "mutual exclusion is lost.)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_ablation();
  return 0;
}
