// Cross-spec memoization benchmarks: the cache/store.hpp workloads the
// serving story cares about, cached vs. uncached.
//
//   * BM_RepeatedTable1: the same Table I batch checked over and over
//     against one persistent store (the steady-state serving shape --
//     every sentence, formula, and verdict is warm). The acceptance bar
//     for the cache layer is >= 2x items/second over the uncached row.
//   * BM_RevisedSpec: a requirements document under revision -- each
//     iteration checks a batch where every spec differs from the previous
//     round in one sentence, so level 1 reuses most parses and level 2
//     re-decides only what changed.
//   * BM_DigestTable1: the key-derivation overhead alone (canonical
//     formula digests over all Table I specs), to keep the bookkeeping
//     honest.
//
// Arg(0) = uncached baseline, Arg(1) = cached. The uncached rows are the
// same code path with PipelineOptions::cache unset.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "batch/batch.hpp"
#include "batch/corpus_tasks.hpp"
#include "cache/store.hpp"
#include "core/pipeline.hpp"
#include "ltl/formula.hpp"

namespace {

using speccc::batch::BatchOptions;
using speccc::batch::BatchReport;
using speccc::batch::SpecTask;

/// The repeated-spec serving workload: identical batch every iteration,
/// one store for the whole benchmark run. The first (warm-up) batch pays
/// the misses outside the timed loop.
void BM_RepeatedTable1(benchmark::State& state) {
  const std::vector<SpecTask> tasks = speccc::batch::table1_tasks();
  BatchOptions options;
  options.jobs = 1;  // per-spec cost, not scheduler scaling (bench_batch has that)
  if (state.range(0) != 0) {
    options.pipeline.cache = std::make_shared<speccc::cache::Store>();
    benchmark::DoNotOptimize(speccc::batch::check(tasks, options));  // warm
  }
  std::size_t checked = 0;
  for (auto _ : state) {
    const BatchReport report = speccc::batch::check(tasks, options);
    benchmark::DoNotOptimize(report.consistent);
    checked += report.results.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(checked));
}
BENCHMARK(BM_RepeatedTable1)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Build revision r of the door-lock-style base spec: 8 requirements, one
/// of which (rotating by revision) mentions a revision-specific sensor, so
/// consecutive revisions share 7 of 8 sentences.
std::vector<SpecTask> revision_tasks(int revision) {
  static const char* kBase[] = {
      "If the door button is pressed, the lock signal is updated.",
      "When the door sensor is detected, eventually the alarm is raised.",
      "If the battery status is measured, the monitor light is activated in 10 seconds.",
      "If the supply detector is detected, the status light is activated.",
      "If the room sensor is detected, the search signal is issued.",
      "When the person detector is detected, eventually the rescue alarm is triggered.",
      "If the medic button is pressed, the delivery status is confirmed.",
      "If the order button is pressed, the confirmation message is displayed.",
  };
  constexpr int kRequirements = 8;
  std::vector<speccc::translate::RequirementText> requirements;
  for (int i = 0; i < kRequirements; ++i) {
    std::string text = kBase[i];
    if (i == revision % kRequirements) {
      text = "If the zone " + std::to_string(revision) +
             " sensor is detected, the backup signal is issued.";
    }
    requirements.push_back({"R" + std::to_string(i + 1), std::move(text)});
  }
  return {{"rev" + std::to_string(revision), std::move(requirements)}};
}

/// The revision workload: each timed iteration checks the next revision,
/// so the store is warm for everything except the edited sentence.
void BM_RevisedSpec(benchmark::State& state) {
  constexpr int kRounds = 16;
  std::vector<std::vector<SpecTask>> rounds;
  for (int r = 0; r < kRounds; ++r) rounds.push_back(revision_tasks(r));

  BatchOptions options;
  options.jobs = 1;
  if (state.range(0) != 0) {
    options.pipeline.cache = std::make_shared<speccc::cache::Store>();
    benchmark::DoNotOptimize(speccc::batch::check(rounds[0], options));  // warm
  }
  std::size_t checked = 0;
  int round = 0;
  for (auto _ : state) {
    const BatchReport report =
        speccc::batch::check(rounds[round++ % kRounds], options);
    benchmark::DoNotOptimize(report.consistent);
    checked += report.results.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(checked));
}
BENCHMARK(BM_RevisedSpec)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Key-derivation overhead: canonical digests of every Table I requirement
/// formula (the per-lookup cost a hit must amortize).
void BM_DigestTable1(benchmark::State& state) {
  const std::vector<SpecTask> tasks = speccc::batch::table1_tasks();
  std::vector<speccc::ltl::Formula> formulas;
  const speccc::core::Pipeline pipeline;
  for (const SpecTask& task : tasks) {
    const auto result = pipeline.run(task.name, task.requirements);
    for (const auto& f : result.translation.formulas()) formulas.push_back(f);
  }
  for (auto _ : state) {
    for (speccc::ltl::Formula f : formulas) {
      benchmark::DoNotOptimize(speccc::ltl::canonical_digest(f));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(formulas.size())));
}
BENCHMARK(BM_DigestTable1)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
