// Serving latency under concurrent load: the in-process serve::Service
// engine (warm per-worker pipelines, one shared LRU store, bounded
// priority admission) driven closed-loop by concurrent client threads.
// The headline numbers are the latency percentiles -- p50/p95/p99 ride on
// each benchmark row as counters (milliseconds), which is what the CI
// bench job tracks for the daemon path. BM_ServeHotSpec isolates the
// steady-state a resident daemon converges to: one hot specification
// answered from the warm store.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "batch/batch.hpp"
#include "cache/store.hpp"
#include "corpus/generator.hpp"
#include "serve/service.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using speccc::batch::SpecTask;

/// A mixed 16-spec workload at modest Table-I-like scales; seeds fixed so
/// every run serves the same specifications.
std::vector<SpecTask> workload() {
  std::vector<SpecTask> specs;
  for (int i = 0; i < 16; ++i) {
    speccc::corpus::SpecScale scale{
        "serve" + std::to_string(i), 5 + i % 4, 3 + i % 3, 3 + i % 3,
        static_cast<std::uint64_t>(i) * 9176 + 31,
        /*response_percent=*/20, /*timed_percent=*/10};
    specs.push_back({scale.name, speccc::corpus::generate_spec(
                                     scale, speccc::corpus::device_theme())});
  }
  return specs;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t low = static_cast<std::size_t>(rank);
  const std::size_t high = std::min(low + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(low);
  return sorted[low] * (1.0 - frac) + sorted[high] * frac;
}

/// Fire `requests` checks at the service from `clients` closed-loop
/// threads (one outstanding request each); returns per-request latencies
/// in seconds.
std::vector<double> drive(speccc::serve::Service& service,
                          const std::vector<SpecTask>& specs, int clients,
                          int requests) {
  std::vector<double> latencies(static_cast<std::size_t>(requests), 0.0);
  std::atomic<int> next{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const int index = next.fetch_add(1);
        if (index >= requests) return;
        speccc::serve::Request request;
        request.id = "b" + std::to_string(index);
        request.spec = specs[static_cast<std::size_t>(index) % specs.size()];
        const Clock::time_point start = Clock::now();
        const speccc::serve::Response response =
            service.check(std::move(request));
        benchmark::DoNotOptimize(response.kind);
        latencies[static_cast<std::size_t>(index)] =
            std::chrono::duration<double>(Clock::now() - start).count();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return latencies;
}

void report_percentiles(benchmark::State& state, std::vector<double> latencies) {
  std::sort(latencies.begin(), latencies.end());
  state.counters["p50_ms"] = percentile(latencies, 0.50) * 1e3;
  state.counters["p95_ms"] = percentile(latencies, 0.95) * 1e3;
  state.counters["p99_ms"] = percentile(latencies, 0.99) * 1e3;
  state.SetItemsProcessed(static_cast<std::int64_t>(latencies.size()));
}

/// Closed-loop soak at N workers with 2N concurrent clients. The service
/// (and its store) persists across iterations, exactly like a resident
/// daemon; the first iteration warms the cache, steady state dominates.
void BM_ServeClosedLoop(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const std::vector<SpecTask> specs = workload();

  speccc::serve::ServiceOptions options;
  options.workers = workers;
  options.queue_capacity = 1024;  // soak admission, not rejection
  options.pipeline.cache = std::make_shared<speccc::cache::Store>(
      speccc::cache::StoreOptions{.eviction = speccc::cache::Eviction::kLru});
  speccc::serve::Service service(options);

  std::vector<double> latencies;
  for (auto _ : state) {
    std::vector<double> round =
        drive(service, specs, /*clients=*/2 * workers, /*requests=*/64);
    latencies.insert(latencies.end(), round.begin(), round.end());
  }
  report_percentiles(state, std::move(latencies));
  service.shutdown();
}
BENCHMARK(BM_ServeClosedLoop)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// The resident-daemon steady state: one hot specification, every
/// artifact already in the store -- pure serve overhead plus cache hits.
void BM_ServeHotSpec(benchmark::State& state) {
  const std::vector<SpecTask> specs = {workload().front()};

  speccc::serve::ServiceOptions options;
  options.workers = 2;
  options.pipeline.cache = std::make_shared<speccc::cache::Store>(
      speccc::cache::StoreOptions{.eviction = speccc::cache::Eviction::kLru});
  speccc::serve::Service service(options);
  (void)drive(service, specs, 1, 1);  // warm the store

  std::vector<double> latencies;
  for (auto _ : state) {
    std::vector<double> round = drive(service, specs, /*clients=*/4,
                                      /*requests=*/64);
    latencies.insert(latencies.end(), round.begin(), round.end());
  }
  report_percentiles(state, std::move(latencies));
  service.shutdown();
}
BENCHMARK(BM_ServeHotSpec)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
