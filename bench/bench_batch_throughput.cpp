// Batch-checking throughput: the three Table I corpora and a generated
// 32-spec workload through the work-stealing scheduler at increasing
// worker counts. The specs-per-second counter is the headline number the
// CI bench job tracks (BENCH_latest.json); the jobs=1 row is the
// sequential baseline the >1 rows are compared against for the batch
// speedup.
#include <benchmark/benchmark.h>

#include <vector>

#include "batch/batch.hpp"
#include "batch/corpus_tasks.hpp"
#include "corpus/generator.hpp"

namespace {

using speccc::batch::BatchOptions;
using speccc::batch::BatchReport;
using speccc::batch::SpecTask;

void run_batch(benchmark::State& state, const std::vector<SpecTask>& tasks) {
  BatchOptions options;
  options.jobs = static_cast<int>(state.range(0));
  std::size_t checked = 0;
  for (auto _ : state) {
    const BatchReport report = speccc::batch::check(tasks, options);
    benchmark::DoNotOptimize(report.consistent);
    checked += report.results.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(checked));
}

/// All 22 Table I rows per iteration (the paper's full evaluation).
void BM_BatchTable1(benchmark::State& state) {
  const std::vector<SpecTask> tasks = speccc::batch::table1_tasks();
  run_batch(state, tasks);
}
BENCHMARK(BM_BatchTable1)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// A 32-spec generated workload (the fuzzing-throughput shape: many small
/// independent specs, where stealing matters more than per-spec cost).
void BM_BatchGenerated(benchmark::State& state) {
  std::vector<SpecTask> tasks;
  for (int i = 0; i < 32; ++i) {
    speccc::corpus::SpecScale scale{
        "gen" + std::to_string(i), 6 + i % 5, 3 + i % 3, 3 + i % 4,
        static_cast<std::uint64_t>(i) * 131 + 7,
        /*response_percent=*/20, /*timed_percent=*/15};
    tasks.push_back({scale.name, speccc::corpus::generate_spec(
                                     scale, speccc::corpus::device_theme())});
  }
  run_batch(state, tasks);
}
BENCHMARK(BM_BatchGenerated)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
