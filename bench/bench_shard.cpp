// Sharding + snapshot benchmarks: the cache/snapshot.hpp serialization
// costs and the shard/coordinator.hpp merge overhead, all in-process (the
// subprocess spawn cost is environment noise the CI bench job must not
// track).
//
//   * BM_SnapshotSave / BM_SnapshotLoad: serializing a Table-I-warm store
//     to disk and validating + loading it back -- the per-run overhead a
//     warm start pays before the first hit.
//   * BM_WarmStartTable1: the payoff row. Arg(0)=0 checks Table I against
//     a cold store; Arg(1)=1 loads the snapshot first, so the batch runs
//     all-hits. The gap is what `--cache-snapshot` buys a CI job.
//   * BM_ShardStoreMerge/K: union-merging K per-shard stores into one
//     combined store (the coordinator's snapshot-merge step after all
//     shards finish), K in {2, 4, 8}.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "batch/batch.hpp"
#include "batch/corpus_tasks.hpp"
#include "cache/snapshot.hpp"
#include "cache/store.hpp"
#include "nlp/lexicon.hpp"
#include "shard/splitter.hpp"

namespace {

using speccc::batch::BatchOptions;
using speccc::batch::SpecTask;
using speccc::cache::Store;
using speccc::cache::StoreOptions;

std::string snapshot_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("speccc_bench_shard_") + name + ".snap"))
      .string();
}

/// A store warmed by one full Table I batch (the steady-state contents a
/// shard snapshot carries).
std::shared_ptr<Store> warm_table1_store() {
  auto store = std::make_shared<Store>();
  BatchOptions options;
  options.jobs = 1;
  options.pipeline.cache = store;
  benchmark::DoNotOptimize(
      speccc::batch::check(speccc::batch::table1_tasks(), options));
  return store;
}

void BM_SnapshotSave(benchmark::State& state) {
  const auto store = warm_table1_store();
  const auto stamp = speccc::nlp::Lexicon::builtin().fingerprint();
  const std::string path = snapshot_path("save");
  for (auto _ : state) {
    speccc::cache::save_snapshot(*store, path, stamp);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() *
                                static_cast<std::int64_t>(store->size())));
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotSave)->Unit(benchmark::kMicrosecond);

void BM_SnapshotLoad(benchmark::State& state) {
  const auto store = warm_table1_store();
  const auto stamp = speccc::nlp::Lexicon::builtin().fingerprint();
  const std::string path = snapshot_path("load");
  speccc::cache::save_snapshot(*store, path, stamp);
  for (auto _ : state) {
    Store fresh;
    const auto meta = speccc::cache::load_snapshot(fresh, path, stamp);
    benchmark::DoNotOptimize(meta.entries);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() *
                                static_cast<std::int64_t>(store->size())));
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotLoad)->Unit(benchmark::kMicrosecond);

/// Cold (Arg 0) vs. snapshot-warm (Arg 1) Table I batch: the warm rows
/// pay a load_snapshot, then check everything out of the store.
void BM_WarmStartTable1(benchmark::State& state) {
  const std::vector<SpecTask> tasks = speccc::batch::table1_tasks();
  const auto stamp = speccc::nlp::Lexicon::builtin().fingerprint();
  const std::string path = snapshot_path("warm");
  speccc::cache::save_snapshot(*warm_table1_store(), path, stamp);

  std::size_t checked = 0;
  for (auto _ : state) {
    BatchOptions options;
    options.jobs = 1;
    options.pipeline.cache = std::make_shared<Store>();
    if (state.range(0) != 0) {
      speccc::cache::load_snapshot(*options.pipeline.cache, path, stamp);
    }
    const auto report = speccc::batch::check(tasks, options);
    benchmark::DoNotOptimize(report.consistent);
    checked += report.results.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(checked));
  std::remove(path.c_str());
}
BENCHMARK(BM_WarmStartTable1)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// The coordinator's merge step: K per-shard stores (each warmed by its
/// round-robin slice of Table I) union-merged into one combined store.
void BM_ShardStoreMerge(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const std::vector<SpecTask> tasks = speccc::batch::table1_tasks();
  std::vector<std::shared_ptr<Store>> shard_stores;
  for (int s = 0; s < shards; ++s) {
    std::vector<SpecTask> mine;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (speccc::shard::shard_of(i, static_cast<std::size_t>(shards)) ==
          static_cast<std::size_t>(s)) {
        mine.push_back(tasks[i]);
      }
    }
    BatchOptions options;
    options.jobs = 1;
    options.pipeline.cache = std::make_shared<Store>();
    benchmark::DoNotOptimize(speccc::batch::check(mine, options));
    shard_stores.push_back(options.pipeline.cache);
  }

  std::size_t merged = 0;
  for (auto _ : state) {
    Store combined(StoreOptions{.max_entries = 0});
    for (const auto& store : shard_stores) merged += combined.merge(*store);
    benchmark::DoNotOptimize(combined.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(merged));
}
BENCHMARK(BM_ShardStoreMerge)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
