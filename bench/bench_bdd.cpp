// BDD engine micro-benchmarks: the operations the complement-edge rewrite
// targets. Three axes tracked by the CI pinned subset:
//
//   * negation cost -- O(1) edge flips vs the textbook full-ITE pass;
//   * fused vs staged relational products -- and_exists(f, g, V) against
//     exists(f && g, V), the kernel of every symbolic fixpoint iteration;
//   * unique-table load -- raw mk() throughput through the open-addressing
//     table while thousands of distinct nodes are created.
#include <benchmark/benchmark.h>

#include <vector>

#include "bdd/bdd.hpp"
#include "util/diagnostics.hpp"

namespace {

namespace bdd = speccc::bdd;

/// n-bit ripple-carry sum of two fresh vectors; a convenient generator of
/// medium-sized shared structure (the same circuit bench_substrates sizes
/// the whole-manager adder equivalence with).
std::vector<bdd::Bdd> adder_outputs(bdd::Manager& mgr, int bits) {
  std::vector<int> xs;
  std::vector<int> ys;
  for (int i = 0; i < bits; ++i) {
    xs.push_back(mgr.new_var());
    ys.push_back(mgr.new_var());
  }
  std::vector<bdd::Bdd> out;
  bdd::Bdd carry = mgr.bdd_false();
  for (int i = 0; i < bits; ++i) {
    const auto a = mgr.var(xs[static_cast<std::size_t>(i)]);
    const auto b = mgr.var(ys[static_cast<std::size_t>(i)]);
    out.push_back(mgr.bdd_xor(mgr.bdd_xor(a, b), carry));
    carry = mgr.bdd_or(mgr.bdd_and(a, b),
                       mgr.bdd_and(carry, mgr.bdd_xor(a, b)));
  }
  out.push_back(carry);
  return out;
}

// Negation cost: 1024 negations of every output of an n-bit adder. With
// complement edges each negation is one edge flip; no nodes are created.
void BM_BddNegation(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  bdd::Manager mgr;
  const auto outputs = adder_outputs(mgr, bits);
  const std::size_t nodes_before = mgr.node_count();
  for (auto _ : state) {
    for (int round = 0; round < 1024; ++round) {
      for (const bdd::Bdd& f : outputs) {
        benchmark::DoNotOptimize(mgr.bdd_not(f));
      }
    }
  }
  speccc_check(mgr.node_count() == nodes_before,
               "negation must not allocate nodes");
}
BENCHMARK(BM_BddNegation)->DenseRange(8, 24, 8)->Unit(benchmark::kMicrosecond);

/// The two operands of a relational-product workload over n (a_i, b_i)
/// pairs: f constrains each pair, g chains a_i into b_{i+1}; quantifying
/// the a_i out of f && g is the shape of exists o. (safe && T∘f).
struct RelProduct {
  bdd::Bdd f;
  bdd::Bdd g;
  std::vector<int> quantified;
};

RelProduct relational_operands(bdd::Manager& mgr, int pairs) {
  std::vector<int> as;
  std::vector<int> bs;
  for (int i = 0; i < pairs; ++i) {
    as.push_back(mgr.new_var());
    bs.push_back(mgr.new_var());
  }
  RelProduct out;
  out.f = mgr.bdd_true();
  out.g = mgr.bdd_true();
  for (int i = 0; i < pairs; ++i) {
    out.f = mgr.bdd_and(
        out.f, mgr.bdd_or(mgr.var(as[static_cast<std::size_t>(i)]),
                          mgr.var(bs[static_cast<std::size_t>(i)])));
    const int next_b = bs[static_cast<std::size_t>((i + 1) % pairs)];
    out.g = mgr.bdd_and(
        out.g, mgr.bdd_or(mgr.nvar(as[static_cast<std::size_t>(i)]),
                          mgr.var(next_b)));
  }
  out.quantified = as;
  return out;
}

// Staged form: materialize the conjunction, then quantify -- the textbook
// (pre-rewrite) fixpoint step.
void BM_BddAndThenExists(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    bdd::Manager mgr;
    const RelProduct rp = relational_operands(mgr, pairs);
    const bdd::Bdd product = mgr.exists(mgr.bdd_and(rp.f, rp.g), rp.quantified);
    benchmark::DoNotOptimize(product.index());
  }
}
BENCHMARK(BM_BddAndThenExists)->DenseRange(8, 16, 4)->Unit(benchmark::kMicrosecond);

// Fused form: one and_exists pass, never building the conjunction.
void BM_BddAndExists(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    bdd::Manager mgr;
    const RelProduct rp = relational_operands(mgr, pairs);
    const bdd::Bdd product = mgr.and_exists(rp.f, rp.g, rp.quantified);
    benchmark::DoNotOptimize(product.index());
  }
}
BENCHMARK(BM_BddAndExists)->DenseRange(8, 16, 4)->Unit(benchmark::kMicrosecond);

// Dual fused form, same workload: forall a. (f -> g).
void BM_BddForallImplies(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    bdd::Manager mgr;
    const RelProduct rp = relational_operands(mgr, pairs);
    const bdd::Bdd result = mgr.forall_implies(rp.f, rp.g, rp.quantified);
    benchmark::DoNotOptimize(result.index());
  }
}
BENCHMARK(BM_BddForallImplies)->DenseRange(8, 16, 4)->Unit(benchmark::kMicrosecond);

// Unique-table load: a DNF of n random minterms over 24 variables creates
// thousands of distinct nodes, hammering mk() and the open-addressing
// growth path. Stats keep the honest count.
void BM_BddUniqueTableLoad(benchmark::State& state) {
  const int minterms = static_cast<int>(state.range(0));
  constexpr int kVars = 24;
  std::size_t nodes = 0;
  for (auto _ : state) {
    speccc::util::Rng rng(0xb00ULL + static_cast<std::uint64_t>(minterms));
    bdd::Manager mgr;
    for (int v = 0; v < kVars; ++v) (void)mgr.new_var();
    bdd::Bdd f = mgr.bdd_false();
    for (int m = 0; m < minterms; ++m) {
      std::vector<std::pair<int, bool>> literals;
      for (int v = 0; v < kVars; ++v) {
        literals.emplace_back(v, rng.chance(1, 2));
      }
      f = mgr.bdd_or(f, mgr.cube(literals));
    }
    nodes = mgr.node_count();
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
// Sizes start at 256 minterms and MinTime is pinned: the smaller
// workloads finish in tens of microseconds, where single-core container
// jitter swamps the signal bench_compare tracks.
BENCHMARK(BM_BddUniqueTableLoad)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->MinTime(0.25)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
