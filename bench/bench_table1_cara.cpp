// Table I / CARA (rows 0 - 3.2): realizability-checking time for the CARA
// working-mode specification and the thirteen component specifications.
//
// The paper's absolute numbers come from 2014 Java tooling; the reproduced
// quantity is the row structure (#formulas, #in, #out, every row
// consistent) and the relative cost profile. After the google-benchmark
// timings the binary prints the full reproduced table next to the published
// seconds.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "corpus/cara.hpp"

namespace {

using speccc::core::Pipeline;
using speccc::corpus::cara_component_specs;
using speccc::corpus::cara_working_mode_texts;

void BM_CaraWorkingMode(benchmark::State& state) {
  Pipeline pipeline;
  const auto texts = cara_working_mode_texts();
  for (auto _ : state) {
    auto result = pipeline.run("CARA 0", texts);
    benchmark::DoNotOptimize(result.consistent);
  }
}
BENCHMARK(BM_CaraWorkingMode)->Unit(benchmark::kMillisecond);

void BM_CaraComponent(benchmark::State& state) {
  const auto components = cara_component_specs();
  const auto& component = components[static_cast<std::size_t>(state.range(0))];
  Pipeline pipeline;
  for (auto _ : state) {
    auto result = pipeline.run(component.name, component.requirements);
    benchmark::DoNotOptimize(result.consistent);
  }
  state.SetLabel(component.number + " " + component.name);
}
BENCHMARK(BM_CaraComponent)->DenseRange(0, 12)->Unit(benchmark::kMillisecond);

void print_reproduced_table() {
  std::vector<speccc::core::TableRow> rows;
  Pipeline pipeline;
  rows.push_back(speccc::core::to_row(
      "CARA", "0", pipeline.run("Working mode and switching", cara_working_mode_texts()),
      34));
  for (const auto& component : cara_component_specs()) {
    rows.push_back(speccc::core::to_row(
        "CARA", component.number,
        pipeline.run(component.name, component.requirements),
        component.table_seconds));
  }
  std::cout << "\nReproduced Table I / CARA\n";
  speccc::core::print_table(std::cout, rows);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_reproduced_table();
  return 0;
}
