// Stage-3 cost study (paper Section V-B): how the incremental-subset
// localization scales with specification size and with the position of the
// inconsistency. The paper's strategy grows a consistent subset one
// requirement at a time, so a conflict near the end of the document costs
// proportionally more realizability checks -- measured here.
#include <benchmark/benchmark.h>

#include <iostream>

#include "corpus/generator.hpp"
#include "core/pipeline.hpp"
#include "refine/refine.hpp"
#include "translate/translator.hpp"

namespace {

using speccc::translate::RequirementText;

/// A realizable base spec with a two-requirement conflict inserted such that
/// the later conflict partner sits at `position` (0-based).
std::vector<RequirementText> spec_with_conflict(int formulas, int position) {
  speccc::corpus::SpecScale scale{"base", formulas, formulas / 2 + 1,
                                  (2 * formulas) / 3 + 1,
                                  /*seed=*/7, /*response=*/10, /*timed=*/0};
  auto texts =
      speccc::corpus::generate_spec(scale, speccc::corpus::device_theme());
  // The conflicting pair: both triggered by the same input, forcing an
  // output both ways.
  texts.insert(texts.begin(),
               {"conf-a", "If the fault signal is detected, the master alarm "
                          "is triggered."});
  const int at = std::min<int>(position, static_cast<int>(texts.size()));
  texts.insert(texts.begin() + at,
               {"conf-b", "If the fault signal is detected, the master alarm "
                          "is not triggered."});
  return texts;
}

void BM_LocalizationByPosition(benchmark::State& state) {
  const auto texts = spec_with_conflict(24, static_cast<int>(state.range(0)));
  speccc::core::PipelineOptions options;
  speccc::core::Pipeline pipeline(options);
  std::size_t checks = 0;
  for (auto _ : state) {
    auto result = pipeline.run("conflicted", texts);
    benchmark::DoNotOptimize(result.consistent);
    if (result.refinement.has_value()) checks = result.refinement->checks;
  }
  state.counters["realizability_checks"] = static_cast<double>(checks);
}
BENCHMARK(BM_LocalizationByPosition)
    ->DenseRange(2, 26, 8)
    ->Unit(benchmark::kMillisecond);

void BM_LocalizationBySpecSize(benchmark::State& state) {
  const int formulas = static_cast<int>(state.range(0));
  const auto texts = spec_with_conflict(formulas, formulas);  // conflict last
  speccc::core::Pipeline pipeline;
  for (auto _ : state) {
    auto result = pipeline.run("conflicted", texts);
    benchmark::DoNotOptimize(result.consistent);
  }
  state.SetComplexityN(formulas);
}
BENCHMARK(BM_LocalizationBySpecSize)
    ->RangeMultiplier(2)
    ->Range(8, 32)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void print_summary() {
  std::cout << "\nSection V-B localization study\n";
  for (int position : {2, 10, 18, 26}) {
    const auto texts = spec_with_conflict(24, position);
    speccc::core::Pipeline pipeline;
    const auto result = pipeline.run("conflicted", texts);
    std::cout << "  conflict at requirement " << position << ": core {";
    if (result.refinement.has_value()) {
      for (std::size_t i : result.refinement->localization.core) {
        std::cout << " " << result.translation.requirements[i].id;
      }
      std::cout << " }, " << result.refinement->checks
                << " realizability checks";
    }
    if (result.refinement.has_value() &&
        result.refinement->adjustment.has_value()) {
      std::cout << ", repartitioned '"
                << result.refinement->adjustment->variable << "'";
    }
    std::cout << ", verdict "
              << (result.consistent ? "consistent" : "INCONSISTENT") << "\n";
  }
  std::cout << "  (the checks grow linearly with the conflict position -- the "
               "incremental\n   subset growth of Section V-B. Note the "
               "heuristic repair: reclassifying\n   the shared trigger as an "
               "output makes both obligations vacuous, so the\n   report must "
               "always be reviewed against the core it prints.)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
