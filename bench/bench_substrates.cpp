// Substrate micro-benchmarks: the CDCL SAT solver, the BDD package, and the
// GPVW tableau -- the infrastructure every consistency check rides on.
#include <benchmark/benchmark.h>

#include "automata/gpvw.hpp"
#include "bdd/bdd.hpp"
#include "game/symbolic.hpp"
#include "ltl/parser.hpp"
#include "sat/solver.hpp"
#include "smt/bitblast.hpp"
#include "synth/monitors.hpp"
#include "util/diagnostics.hpp"

namespace {

// Pigeonhole: exponential for resolution-based solvers; n = 6/5 stays sane.
void BM_SatPigeonhole(benchmark::State& state) {
  const int pigeons = static_cast<int>(state.range(0));
  const int holes = pigeons - 1;
  for (auto _ : state) {
    speccc::sat::Solver solver;
    std::vector<std::vector<int>> var(static_cast<std::size_t>(pigeons));
    for (auto& row : var) {
      for (int j = 0; j < holes; ++j) row.push_back(solver.new_var());
    }
    for (int i = 0; i < pigeons; ++i) {
      speccc::sat::Clause clause;
      for (int j = 0; j < holes; ++j) {
        clause.push_back(speccc::sat::Lit(var[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], true));
      }
      solver.add_clause(clause);
    }
    for (int j = 0; j < holes; ++j) {
      for (int a = 0; a < pigeons; ++a) {
        for (int b = a + 1; b < pigeons; ++b) {
          solver.add_binary(
              speccc::sat::Lit(var[static_cast<std::size_t>(a)][static_cast<std::size_t>(j)], false),
              speccc::sat::Lit(var[static_cast<std::size_t>(b)][static_cast<std::size_t>(j)], false));
        }
      }
    }
    auto result = solver.solve();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SatPigeonhole)->DenseRange(5, 8)->Unit(benchmark::kMillisecond);

// Random 3-SAT near the phase transition (ratio 4.2).
void BM_SatRandom3Sat(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const int clauses = static_cast<int>(4.2 * vars);
  for (auto _ : state) {
    speccc::util::Rng rng(0xfeedULL + static_cast<std::uint64_t>(vars));
    speccc::sat::Solver solver;
    for (int v = 0; v < vars; ++v) (void)solver.new_var();
    for (int c = 0; c < clauses; ++c) {
      speccc::sat::Clause clause;
      for (int k = 0; k < 3; ++k) {
        clause.push_back(speccc::sat::Lit(
            static_cast<int>(rng.below(static_cast<std::uint64_t>(vars))),
            rng.chance(1, 2)));
      }
      solver.add_clause(clause);
    }
    auto result = solver.solve();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SatRandom3Sat)->RangeMultiplier(2)->Range(25, 100)->Unit(benchmark::kMillisecond);

// Bit-blasted multiplication (the Section IV-E workhorse).
void BM_SmtMultiplier(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    speccc::sat::Solver solver;
    speccc::smt::Builder builder(solver);
    const auto x = builder.var(width);
    const auto y = builder.var(width);
    builder.require_eq(builder.mul(x, y),
                       builder.constant(221, 2 * width));  // 13 * 17
    builder.require(builder.ule(builder.constant(2, width), x));
    builder.require(builder.ule(builder.constant(2, width), y));
    auto result = builder.solve();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SmtMultiplier)->DenseRange(8, 16, 4)->Unit(benchmark::kMillisecond);

// Multiplier-miter equivalence: prove x*y == y*x by refuting the miter.
// The two shift-and-add expansions are structurally different circuits, so
// this is a genuine UNSAT equivalence proof through the whole
// AIG -> cut-mapping -> CDCL stack.
void BM_SmtMultiplierMiter(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    speccc::sat::Solver solver;
    speccc::smt::Builder builder(solver);
    const auto x = builder.var(width);
    const auto y = builder.var(width);
    const auto lhs = builder.mul(x, y);
    const auto rhs = builder.mul(y, x);
    builder.require(builder.eq(lhs, rhs).negated());
    const auto result = builder.solve();
    speccc_check(result == speccc::sat::Result::kUnsat,
                 "commutativity miter must be UNSAT");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SmtMultiplierMiter)->DenseRange(4, 6)->Unit(benchmark::kMillisecond);

// CNF size of the multiplier instance under both encoders. The interesting
// output is the counters: mapped must emit substantially fewer clauses and
// variables than the per-gate Tseitin lane (the ISSUE pins >= 25% fewer
// clauses on this family).
void BM_SmtEncodingSize(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const bool mapped = state.range(1) != 0;
  std::size_t clauses = 0;
  std::size_t vars = 0;
  std::size_t literals = 0;
  for (auto _ : state) {
    speccc::sat::Solver solver;
    speccc::smt::BuilderOptions options;
    options.cnf.encoder = mapped ? speccc::aig::CnfOptions::Encoder::kCutMap
                                 : speccc::aig::CnfOptions::Encoder::kTseitin;
    speccc::smt::Builder builder(solver, options);
    const auto x = builder.var(width);
    const auto y = builder.var(width);
    builder.require_eq(builder.mul(x, y), builder.constant(221, 2 * width));
    builder.require(builder.ule(builder.constant(2, width), x));
    builder.require(builder.ule(builder.constant(2, width), y));
    builder.flush();
    clauses = builder.cnf_stats().clauses;
    vars = builder.cnf_stats().vars;
    literals = builder.cnf_stats().literals;
    benchmark::DoNotOptimize(clauses);
  }
  state.counters["clauses"] = static_cast<double>(clauses);
  state.counters["vars"] = static_cast<double>(vars);
  state.counters["literals"] = static_cast<double>(literals);
}
BENCHMARK(BM_SmtEncodingSize)
    ->ArgNames({"width", "mapped"})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({12, 0})
    ->Args({12, 1})
    ->Args({16, 0})
    ->Args({16, 1});

// BDD: the n-bit adder equivalence x + y == y + x.
void BM_BddAdderEquivalence(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  for (auto _ : state) {
    speccc::bdd::Manager mgr;
    std::vector<int> xs;
    std::vector<int> ys;
    for (int i = 0; i < bits; ++i) {
      xs.push_back(mgr.new_var());
      ys.push_back(mgr.new_var());
    }
    const auto sum = [&mgr](const std::vector<int>& a, const std::vector<int>& b) {
      std::vector<speccc::bdd::Bdd> out;
      speccc::bdd::Bdd carry = mgr.bdd_false();
      for (std::size_t i = 0; i < a.size(); ++i) {
        const auto av = mgr.var(a[i]);
        const auto bv = mgr.var(b[i]);
        out.push_back(mgr.bdd_xor(mgr.bdd_xor(av, bv), carry));
        carry = mgr.bdd_or(mgr.bdd_and(av, bv),
                           mgr.bdd_and(carry, mgr.bdd_xor(av, bv)));
      }
      return out;
    };
    const auto lhs = sum(xs, ys);
    const auto rhs = sum(ys, xs);
    bool equal = true;
    for (std::size_t i = 0; i < lhs.size(); ++i) equal = equal && lhs[i] == rhs[i];
    speccc_check(equal, "adders must be equivalent");
    benchmark::DoNotOptimize(mgr.node_count());
  }
}
BENCHMARK(BM_BddAdderEquivalence)->DenseRange(8, 32, 8)->Unit(benchmark::kMillisecond);

// Safety-game fixpoint: the uncontrollable-predecessor step computed the
// fused way (one preimage/and_exists pass per CPre, what game::cpre does
// since the complement-edge rewrite) against the staged three-pass
// formulation (compose, conjoin, quantify) on the same engine. The spec is
// n request/grant monitors -- n Buechi sets, so every nu-iteration runs n
// mu-fixpoints of CPre calls.
void BM_GameFixpoint(benchmark::State& state) {
  const int reqs = static_cast<int>(state.range(0));
  const bool fused = state.range(1) != 0;

  std::vector<speccc::ltl::Formula> spec;
  speccc::synth::IoSignature signature;
  for (int i = 0; i < reqs; ++i) {
    const std::string req = "req" + std::to_string(i);
    const std::string grant = "grant" + std::to_string(i);
    spec.push_back(speccc::ltl::parse("G (" + req + " -> F " + grant + ")"));
    spec.push_back(speccc::ltl::parse("G (" + grant + " -> X !" + req + ")"));
    signature.inputs.push_back(req);
    signature.outputs.push_back(grant);
  }

  const auto cpre_staged = [](const speccc::game::SymbolicGame& game,
                              speccc::bdd::Bdd target) {
    speccc::bdd::Manager& mgr = *game.manager;
    std::vector<speccc::bdd::Bdd> map(static_cast<std::size_t>(mgr.num_vars()));
    for (std::size_t b = 0; b < game.state_vars.size(); ++b) {
      map[static_cast<std::size_t>(game.state_vars[b])] = game.next_state[b];
    }
    const auto step = mgr.bdd_and(game.safe, mgr.vector_compose(target, map));
    return mgr.forall(mgr.exists(step, game.output_vars), game.input_vars);
  };

  for (auto _ : state) {
    speccc::bdd::Manager mgr;
    const auto compiled = speccc::synth::compile_monitors(mgr, spec, signature);
    speccc_check(compiled.has_value(), "spec must compile to monitors");
    const speccc::game::SymbolicGame& game = compiled->game;

    // nu Z. AND_j mu Y. CPre((F_j and CPre(Z)) or Y), no extraction.
    const auto cpre = [&](speccc::bdd::Bdd target) {
      return fused ? speccc::game::cpre(game, target)
                   : cpre_staged(game, target);
    };
    speccc::bdd::Bdd z = mgr.bdd_true();
    int iterations = 0;
    for (;;) {
      ++iterations;
      speccc::bdd::Bdd conj = mgr.bdd_true();
      const speccc::bdd::Bdd cpre_z = cpre(z);
      for (const speccc::bdd::Bdd& f : game.buchi) {
        const speccc::bdd::Bdd target = mgr.bdd_and(f, cpre_z);
        speccc::bdd::Bdd y = mgr.bdd_false();
        for (;;) {
          const speccc::bdd::Bdd next = mgr.bdd_or(target, cpre(y));
          if (next == y) break;
          y = next;
        }
        conj = mgr.bdd_and(conj, y);
      }
      if (conj == z) break;
      z = conj;
    }
    benchmark::DoNotOptimize(iterations);
    benchmark::DoNotOptimize(mgr.node_count());
  }
}
// MinTime pinned: one fixpoint solve is tens of microseconds, below the
// noise floor of the shared runners bench_compare tolerates.
BENCHMARK(BM_GameFixpoint)
    ->ArgNames({"reqs", "fused"})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({12, 0})
    ->Args({12, 1})
    ->MinTime(0.25)
    ->Unit(benchmark::kMillisecond);

// GPVW tableau on formulas of growing temporal depth.
void BM_GpvwNestedUntil(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  speccc::ltl::Formula f = speccc::ltl::ap("p0");
  for (int i = 1; i <= depth; ++i) {
    f = speccc::ltl::until(speccc::ltl::ap("p" + std::to_string(i)), f);
  }
  for (auto _ : state) {
    auto nbw = speccc::automata::ltl_to_nbw(f);
    benchmark::DoNotOptimize(nbw.num_states());
  }
  state.SetComplexityN(depth);
}
BENCHMARK(BM_GpvwNestedUntil)->DenseRange(1, 6)->Unit(benchmark::kMicrosecond)->Complexity();

}  // namespace

BENCHMARK_MAIN();
