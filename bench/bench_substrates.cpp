// Substrate micro-benchmarks: the CDCL SAT solver, the BDD package, and the
// GPVW tableau -- the infrastructure every consistency check rides on.
#include <benchmark/benchmark.h>

#include "automata/gpvw.hpp"
#include "bdd/bdd.hpp"
#include "ltl/parser.hpp"
#include "sat/solver.hpp"
#include "smt/bitblast.hpp"
#include "util/diagnostics.hpp"

namespace {

// Pigeonhole: exponential for resolution-based solvers; n = 6/5 stays sane.
void BM_SatPigeonhole(benchmark::State& state) {
  const int pigeons = static_cast<int>(state.range(0));
  const int holes = pigeons - 1;
  for (auto _ : state) {
    speccc::sat::Solver solver;
    std::vector<std::vector<int>> var(static_cast<std::size_t>(pigeons));
    for (auto& row : var) {
      for (int j = 0; j < holes; ++j) row.push_back(solver.new_var());
    }
    for (int i = 0; i < pigeons; ++i) {
      speccc::sat::Clause clause;
      for (int j = 0; j < holes; ++j) {
        clause.push_back(speccc::sat::Lit(var[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], true));
      }
      solver.add_clause(clause);
    }
    for (int j = 0; j < holes; ++j) {
      for (int a = 0; a < pigeons; ++a) {
        for (int b = a + 1; b < pigeons; ++b) {
          solver.add_binary(
              speccc::sat::Lit(var[static_cast<std::size_t>(a)][static_cast<std::size_t>(j)], false),
              speccc::sat::Lit(var[static_cast<std::size_t>(b)][static_cast<std::size_t>(j)], false));
        }
      }
    }
    auto result = solver.solve();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SatPigeonhole)->DenseRange(5, 8)->Unit(benchmark::kMillisecond);

// Random 3-SAT near the phase transition (ratio 4.2).
void BM_SatRandom3Sat(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const int clauses = static_cast<int>(4.2 * vars);
  for (auto _ : state) {
    speccc::util::Rng rng(0xfeedULL + static_cast<std::uint64_t>(vars));
    speccc::sat::Solver solver;
    for (int v = 0; v < vars; ++v) (void)solver.new_var();
    for (int c = 0; c < clauses; ++c) {
      speccc::sat::Clause clause;
      for (int k = 0; k < 3; ++k) {
        clause.push_back(speccc::sat::Lit(
            static_cast<int>(rng.below(static_cast<std::uint64_t>(vars))),
            rng.chance(1, 2)));
      }
      solver.add_clause(clause);
    }
    auto result = solver.solve();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SatRandom3Sat)->RangeMultiplier(2)->Range(25, 100)->Unit(benchmark::kMillisecond);

// Bit-blasted multiplication (the Section IV-E workhorse).
void BM_SmtMultiplier(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    speccc::sat::Solver solver;
    speccc::smt::Builder builder(solver);
    const auto x = builder.var(width);
    const auto y = builder.var(width);
    builder.require_eq(builder.mul(x, y),
                       builder.constant(221, 2 * width));  // 13 * 17
    builder.require(builder.ule(builder.constant(2, width), x));
    builder.require(builder.ule(builder.constant(2, width), y));
    auto result = solver.solve();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SmtMultiplier)->DenseRange(8, 16, 4)->Unit(benchmark::kMillisecond);

// BDD: the n-bit adder equivalence x + y == y + x.
void BM_BddAdderEquivalence(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  for (auto _ : state) {
    speccc::bdd::Manager mgr;
    std::vector<int> xs;
    std::vector<int> ys;
    for (int i = 0; i < bits; ++i) {
      xs.push_back(mgr.new_var());
      ys.push_back(mgr.new_var());
    }
    const auto sum = [&mgr](const std::vector<int>& a, const std::vector<int>& b) {
      std::vector<speccc::bdd::Bdd> out;
      speccc::bdd::Bdd carry = mgr.bdd_false();
      for (std::size_t i = 0; i < a.size(); ++i) {
        const auto av = mgr.var(a[i]);
        const auto bv = mgr.var(b[i]);
        out.push_back(mgr.bdd_xor(mgr.bdd_xor(av, bv), carry));
        carry = mgr.bdd_or(mgr.bdd_and(av, bv),
                           mgr.bdd_and(carry, mgr.bdd_xor(av, bv)));
      }
      return out;
    };
    const auto lhs = sum(xs, ys);
    const auto rhs = sum(ys, xs);
    bool equal = true;
    for (std::size_t i = 0; i < lhs.size(); ++i) equal = equal && lhs[i] == rhs[i];
    speccc_check(equal, "adders must be equivalent");
    benchmark::DoNotOptimize(mgr.node_count());
  }
}
BENCHMARK(BM_BddAdderEquivalence)->DenseRange(8, 32, 8)->Unit(benchmark::kMillisecond);

// GPVW tableau on formulas of growing temporal depth.
void BM_GpvwNestedUntil(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  speccc::ltl::Formula f = speccc::ltl::ap("p0");
  for (int i = 1; i <= depth; ++i) {
    f = speccc::ltl::until(speccc::ltl::ap("p" + std::to_string(i)), f);
  }
  for (auto _ : state) {
    auto nbw = speccc::automata::ltl_to_nbw(f);
    benchmark::DoNotOptimize(nbw.num_states());
  }
  state.SetComplexityN(depth);
}
BENCHMARK(BM_GpvwNestedUntil)->DenseRange(1, 6)->Unit(benchmark::kMicrosecond)->Complexity();

}  // namespace

BENCHMARK_MAIN();
