// Figure 1 (the SpecCC workflow): per-stage cost of the three-stage loop,
// and the paper's Section VI claim that "for the consistency maintenance
// between natural language and formal language, the time consumption is
// linear to the number of requirements" -- checked with google-benchmark's
// complexity fit over generated specifications of growing size.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "corpus/cara.hpp"
#include "corpus/generator.hpp"
#include "partition/partition.hpp"
#include "semantics/antonyms.hpp"
#include "translate/translator.hpp"

namespace {

using speccc::corpus::SpecScale;

std::vector<speccc::translate::RequirementText> spec_of_size(int formulas) {
  SpecScale scale{"sweep", formulas, std::max(2, formulas / 2),
                  std::max(2, (2 * formulas) / 3),
                  /*seed=*/static_cast<std::uint64_t>(formulas) * 97 + 3,
                  /*response_percent=*/15, /*timed_percent=*/10};
  return speccc::corpus::generate_spec(scale, speccc::corpus::device_theme());
}

// Stage 1 alone: NL -> LTL translation, the claimed linear stage.
void BM_Stage1Translation(benchmark::State& state) {
  const auto texts = spec_of_size(static_cast<int>(state.range(0)));
  const auto lexicon = speccc::nlp::Lexicon::builtin();
  const auto dictionary = speccc::semantics::AntonymDictionary::builtin();
  const speccc::translate::Translator translator(lexicon, dictionary, {});
  for (auto _ : state) {
    auto result = translator.translate(texts);
    benchmark::DoNotOptimize(result.requirements.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Stage1Translation)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

// Stage 2 alone: realizability checking of the already-translated (and
// time-abstracted) CARA specification, as stage 2 actually receives it.
void BM_Stage2Synthesis(benchmark::State& state) {
  speccc::core::Pipeline setup;
  const auto staged =
      setup.run("setup", speccc::corpus::cara_working_mode_texts());
  const auto formulas = staged.translation.formulas();
  const auto& partition = staged.partition;
  speccc::synth::IoSignature signature;
  signature.inputs.assign(partition.inputs.begin(), partition.inputs.end());
  signature.outputs.assign(partition.outputs.begin(), partition.outputs.end());
  for (auto _ : state) {
    auto result = speccc::synth::synthesize(formulas, signature);
    benchmark::DoNotOptimize(result.verdict);
  }
}
BENCHMARK(BM_Stage2Synthesis)->Unit(benchmark::kMillisecond);

// The full loop on the running example.
void BM_FullPipelineCara(benchmark::State& state) {
  speccc::core::Pipeline pipeline;
  const auto texts = speccc::corpus::cara_working_mode_texts();
  for (auto _ : state) {
    auto result = pipeline.run("CARA", texts);
    benchmark::DoNotOptimize(result.consistent);
  }
}
BENCHMARK(BM_FullPipelineCara)->Unit(benchmark::kMillisecond);

void print_stage_breakdown() {
  speccc::core::Pipeline pipeline;
  const auto result =
      pipeline.run("CARA working mode", speccc::corpus::cara_working_mode_texts());
  std::cout << "\nFig. 1 stage breakdown on the CARA running example\n"
            << speccc::core::describe(result);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_stage_breakdown();
  return 0;
}
