// Table I / TELE: the five TELEPROMISE application specifications,
// including the two whose consistency requires the stage-3 partition
// adjustment (paper Section VI: "G4LTL failed to generate controllers for
// the last two specifications... After locating the problem and modifying
// the input/output variable partition, the specifications are consistent").
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "corpus/telepromise.hpp"

namespace {

using speccc::core::Pipeline;

void BM_TeleSpec(benchmark::State& state) {
  const auto specs = speccc::corpus::telepromise_specs();
  const auto& spec = specs[static_cast<std::size_t>(state.range(0))];
  Pipeline pipeline;
  for (auto _ : state) {
    auto result = pipeline.run(spec.name, spec.requirements);
    benchmark::DoNotOptimize(result.consistent);
  }
  state.SetLabel(spec.name + (spec.partition_trap ? " (repartition)" : ""));
}
BENCHMARK(BM_TeleSpec)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void print_reproduced_table() {
  std::vector<speccc::core::TableRow> rows;
  Pipeline pipeline;
  int number = 1;
  for (const auto& spec : speccc::corpus::telepromise_specs()) {
    rows.push_back(speccc::core::to_row(
        "TELE", std::to_string(number++),
        pipeline.run(spec.name, spec.requirements), spec.table_seconds));
  }
  std::cout << "\nReproduced Table I / TELE\n";
  speccc::core::print_table(std::cout, rows);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_reproduced_table();
  return 0;
}
