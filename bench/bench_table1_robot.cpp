// Table I / Robot: the rescue-robot scenarios (1 robot / 4 rooms, 1 / 9,
// 2 / 5), translated in strict Next mode so the movement requirements carry
// real X operators, then checked for realizability.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "corpus/robot.hpp"

namespace {

speccc::core::Pipeline robot_pipeline() {
  speccc::core::PipelineOptions options;
  options.translation.next_mode = speccc::translate::NextMode::kStrict;
  return speccc::core::Pipeline(options);
}

void BM_RobotScenario(benchmark::State& state) {
  const auto specs = speccc::corpus::robot_specs();
  const auto& spec = specs[static_cast<std::size_t>(state.range(0))];
  auto pipeline = robot_pipeline();
  for (auto _ : state) {
    auto result = pipeline.run(spec.name, spec.requirements);
    benchmark::DoNotOptimize(result.consistent);
  }
  state.SetLabel(spec.name);
}
BENCHMARK(BM_RobotScenario)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

// Scaling beyond the paper's sizes: rooms sweep for one robot.
void BM_RobotRoomsSweep(benchmark::State& state) {
  const auto spec =
      speccc::corpus::robot_spec(1, static_cast<int>(state.range(0)));
  auto pipeline = robot_pipeline();
  for (auto _ : state) {
    auto result = pipeline.run(spec.name, spec.requirements);
    benchmark::DoNotOptimize(result.consistent);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RobotRoomsSweep)
    ->RangeMultiplier(2)
    ->Range(4, 32)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void print_reproduced_table() {
  std::vector<speccc::core::TableRow> rows;
  auto pipeline = robot_pipeline();
  int number = 1;
  for (const auto& spec : speccc::corpus::robot_specs()) {
    rows.push_back(speccc::core::to_row(
        "Robot", std::to_string(number++),
        pipeline.run(spec.name, spec.requirements), spec.table_seconds));
  }
  std::cout << "\nReproduced Table I / Robot\n";
  speccc::core::print_table(std::cout, rows);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_reproduced_table();
  return 0;
}
