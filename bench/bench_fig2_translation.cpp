// Figure 2 (the syntax tree of Req-17): micro-benchmarks of the stages that
// build it -- tokenization, tagging, grammar parsing, dependency extraction
// and LTL generation -- followed by the reproduced tree itself.
#include <benchmark/benchmark.h>

#include <iostream>

#include "ltl/formula.hpp"
#include "nlp/dependency.hpp"
#include "nlp/syntax.hpp"
#include "nlp/tokenizer.hpp"
#include "semantics/antonyms.hpp"
#include "translate/translator.hpp"

namespace {

const char* kReq17 =
    "When auto-control mode is entered, eventually the cuff will be "
    "inflated.";

const speccc::nlp::Lexicon& lexicon() {
  static auto lex = speccc::nlp::Lexicon::builtin();
  return lex;
}

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    auto words = speccc::nlp::tokenize(kReq17);
    benchmark::DoNotOptimize(words.size());
  }
}
BENCHMARK(BM_Tokenize);

void BM_Tag(benchmark::State& state) {
  const auto words = speccc::nlp::tokenize(kReq17);
  for (auto _ : state) {
    auto tokens = speccc::nlp::tag(words, lexicon());
    benchmark::DoNotOptimize(tokens.size());
  }
}
BENCHMARK(BM_Tag);

void BM_ParseSentence(benchmark::State& state) {
  for (auto _ : state) {
    auto sentence = speccc::nlp::parse_sentence(kReq17, lexicon());
    benchmark::DoNotOptimize(sentence.main.clauses.size());
  }
}
BENCHMARK(BM_ParseSentence);

void BM_Dependencies(benchmark::State& state) {
  const auto sentence = speccc::nlp::parse_sentence(kReq17, lexicon());
  for (auto _ : state) {
    auto deps = speccc::nlp::dependencies(sentence);
    benchmark::DoNotOptimize(deps.size());
  }
}
BENCHMARK(BM_Dependencies);

void BM_TranslateReq17(benchmark::State& state) {
  const auto dictionary = speccc::semantics::AntonymDictionary::builtin();
  const speccc::translate::Translator translator(lexicon(), dictionary, {});
  for (auto _ : state) {
    auto result = translator.translate({{"Req-17", kReq17}});
    benchmark::DoNotOptimize(result.requirements.size());
  }
}
BENCHMARK(BM_TranslateReq17);

void print_figure2() {
  const auto sentence = speccc::nlp::parse_sentence(kReq17, lexicon());
  std::cout << "\nReproduced Fig. 2: syntax tree of Req-17\n"
            << speccc::nlp::syntax_tree(sentence);
  const auto dictionary = speccc::semantics::AntonymDictionary::builtin();
  const speccc::translate::Translator translator(lexicon(), dictionary, {});
  const auto result = translator.translate({{"Req-17", kReq17}});
  std::cout << "formula: "
            << speccc::ltl::to_string(result.requirements[0].formula,
                                      speccc::ltl::Style::kPaper)
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure2();
  return 0;
}
