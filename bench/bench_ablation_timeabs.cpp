// Ablation for Section IV-E (time abstraction): the CARA specification
// checked with raw Next chains (180 X's for Req-28), with the conservative
// GCD reduction (d = 3), and with the optimal divisor abstraction (d = 60,
// B = 5). The monitor state-bit counts and synthesis times show exactly why
// the paper introduces the arrival-error optimization: the GCD alone "still
// produces formulas with huge amounts of Next".
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/pipeline.hpp"
#include "corpus/cara.hpp"
#include "timeabs/abstraction.hpp"

namespace {

enum class Mode { kRaw, kGcd, kOptimal };

speccc::core::PipelineResult run_mode(Mode mode) {
  speccc::core::PipelineOptions options;
  switch (mode) {
    case Mode::kRaw:
      options.time_abstraction = false;
      break;
    case Mode::kGcd:
      // The GCD is the optimum under a zero error budget.
      options.error_budget = 0;
      break;
    case Mode::kOptimal:
      options.error_budget = 5;  // the paper's B
      break;
  }
  speccc::core::Pipeline pipeline(options);
  return pipeline.run("CARA", speccc::corpus::cara_working_mode_texts());
}

void BM_TimeAbs(benchmark::State& state) {
  const Mode mode = static_cast<Mode>(state.range(0));
  for (auto _ : state) {
    auto result = run_mode(mode);
    benchmark::DoNotOptimize(result.consistent);
  }
  state.SetLabel(mode == Mode::kRaw     ? "raw X chains"
                 : mode == Mode::kGcd   ? "GCD reduction (B=0)"
                                        : "optimal abstraction (B=5)");
}
BENCHMARK(BM_TimeAbs)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

// The optimizer itself, both back-ends, on the paper's example.
void BM_OptimizerEnumeration(benchmark::State& state) {
  speccc::timeabs::Request request;
  request.thetas = {3, 180, 60};
  request.error_budget = 5;
  for (auto _ : state) {
    auto abs = speccc::timeabs::optimize(request,
                                         speccc::timeabs::Backend::kEnumeration);
    benchmark::DoNotOptimize(abs->divisor);
  }
}
BENCHMARK(BM_OptimizerEnumeration);

void BM_OptimizerSmt(benchmark::State& state) {
  speccc::timeabs::Request request;
  request.thetas = {3, 180, 60};
  request.error_budget = 5;
  for (auto _ : state) {
    auto abs =
        speccc::timeabs::optimize(request, speccc::timeabs::Backend::kSmt);
    benchmark::DoNotOptimize(abs->divisor);
  }
}
BENCHMARK(BM_OptimizerSmt)->Unit(benchmark::kMillisecond);

void print_ablation() {
  std::cout << "\nSection IV-E ablation on the CARA working-mode spec "
               "(Theta = {3, 180, 60})\n";
  for (const Mode mode : {Mode::kRaw, Mode::kGcd, Mode::kOptimal}) {
    const auto result = run_mode(mode);
    const char* label = mode == Mode::kRaw   ? "raw X chains              "
                        : mode == Mode::kGcd ? "GCD reduction (d=3, B=0)  "
                                             : "optimal (d=60, B=5)       ";
    std::cout << "  " << label << result.synthesis.state_bits
              << " monitor state bits, synthesis " << result.synthesis_seconds
              << " s, verdict "
              << (result.consistent ? "consistent" : "INCONSISTENT") << "\n";
  }
  std::cout << "  (all three agree on the verdict: the abstraction is "
               "soundness-preserving.)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_ablation();
  return 0;
}
