// Figure 2 reproduction: the syntax tree of requirement Req-17 ("When
// auto-control mode is entered, eventually the cuff will be inflated."),
// its typed dependencies, and the resulting LTL formula.
//
//   $ ./syntax_tree ["custom requirement sentence."]
#include <iostream>

#include "ltl/formula.hpp"
#include "nlp/dependency.hpp"
#include "nlp/syntax.hpp"
#include "semantics/antonyms.hpp"
#include "translate/translator.hpp"

int main(int argc, char** argv) {
  using namespace speccc;

  const std::string text =
      argc > 1 ? argv[1]
               : "When auto-control mode is entered, eventually the cuff "
                 "will be inflated.";

  const nlp::Lexicon lexicon = nlp::Lexicon::builtin();
  std::cout << "sentence: " << text << "\n\n";

  try {
    const nlp::Sentence sentence = nlp::parse_sentence(text, lexicon);

    std::cout << "=== syntax tree (paper Fig. 2) ===\n"
              << nlp::syntax_tree(sentence) << "\n";

    std::cout << "=== typed dependencies (Stanford-style) ===\n";
    for (const auto& dep : nlp::dependencies(sentence)) {
      std::cout << "  " << dep.type << "(" << dep.governor << ", "
                << dep.dependent << ")\n";
    }

    const auto dictionary = semantics::AntonymDictionary::builtin();
    const translate::Translator translator(lexicon, dictionary, {});
    const auto result = translator.translate({{"Req", text}});
    std::cout << "\n=== LTL ===\n  "
              << ltl::to_string(result.requirements[0].formula,
                                ltl::Style::kPaper)
              << "\n  " << ltl::to_string(result.requirements[0].formula)
              << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
