// Section IV-E walkthrough: the GCD reduction versus the optimal divisor
// abstraction on the paper's running example Theta = {3, 180, 60}, and the
// effect of the abstraction on monitor sizes.
//
//   $ ./time_abstraction [B]
#include <iostream>

#include "corpus/cara.hpp"
#include "core/pipeline.hpp"
#include "timeabs/abstraction.hpp"

int main(int argc, char** argv) {
  using namespace speccc;

  const std::uint32_t budget =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 5;

  const std::vector<std::uint32_t> thetas = {3, 180, 60};
  std::cout << "Theta = {3, 180, 60} (Req-08, Req-28, Req-42), B = " << budget
            << ", all arrival errors early (Delta >= 0)\n\n";

  const auto gcd = timeabs::gcd_abstraction(thetas);
  std::cout << "GCD reduction: d = " << gcd.divisor << ", theta' = {";
  for (std::size_t i = 0; i < gcd.reduced.size(); ++i) {
    std::cout << (i ? ", " : "") << gcd.reduced[i];
  }
  std::cout << "}, total X operators " << gcd.reduced_sum
            << " (conservative, zero error)\n";

  timeabs::Request request;
  request.thetas = thetas;
  request.error_budget = budget;

  for (const auto backend : {timeabs::Backend::kEnumeration, timeabs::Backend::kSmt}) {
    const auto abs = timeabs::optimize(request, backend);
    std::cout << (backend == timeabs::Backend::kEnumeration
                      ? "optimal (enumeration): "
                      : "optimal (SMT bit-blasting, the paper's route): ");
    std::cout << "d = " << abs->divisor << ", theta' = {";
    for (std::size_t i = 0; i < abs->reduced.size(); ++i) {
      std::cout << (i ? ", " : "") << abs->reduced[i];
    }
    std::cout << "}, Delta = {";
    for (std::size_t i = 0; i < abs->errors.size(); ++i) {
      std::cout << (i ? ", " : "") << abs->errors[i];
    }
    std::cout << "}, total X " << abs->reduced_sum << ", total error "
              << abs->error_sum << "\n";
  }

  // Effect on the full CARA specification: monitor state bits with and
  // without abstraction.
  std::cout << "\nEffect on the CARA working-mode monitors:\n";
  {
    core::Pipeline with;
    const auto result =
        with.run("CARA abstracted", corpus::cara_working_mode_texts());
    std::cout << "  with abstraction:    " << result.synthesis.state_bits
              << " state bits, synthesis " << result.synthesis_seconds
              << " s\n";
  }
  {
    core::PipelineOptions options;
    options.time_abstraction = false;
    core::Pipeline without(options);
    const auto result =
        without.run("CARA raw", corpus::cara_working_mode_texts());
    std::cout << "  without abstraction: " << result.synthesis.state_bits
              << " state bits, synthesis " << result.synthesis_seconds
              << " s\n";
  }
  return 0;
}
