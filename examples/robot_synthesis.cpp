// The rescue-robot scenario (Table I / Robot): translate the structured
// English in strict Next mode, synthesize a controller, and simulate a
// rescue episode, verifying the trace against the translated specification.
//
//   $ ./robot_synthesis [rooms]
#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "corpus/robot.hpp"
#include "ltl/formula.hpp"
#include "ltl/trace.hpp"

int main(int argc, char** argv) {
  using namespace speccc;

  const int rooms = argc > 1 ? std::max(2, std::atoi(argv[1])) : 4;
  const auto spec = corpus::robot_spec(1, rooms);

  std::cout << "=== " << spec.name << " ===\n";
  for (const auto& r : spec.requirements) {
    std::cout << "  " << r.text << "\n";
  }

  core::PipelineOptions options;
  options.translation.next_mode = translate::NextMode::kStrict;
  options.synthesis.symbolic.extract = true;
  core::Pipeline pipeline(options);
  const auto result = pipeline.run(spec.name, spec.requirements);
  std::cout << "\n" << core::describe(result);

  if (!result.synthesis.controller.has_value()) {
    std::cout << "no controller extracted\n";
    return 1;
  }
  const auto& machine = *result.synthesis.controller;
  std::cout << "controller states: " << machine.num_states() << "\n";

  // Simulate: the injured person appears at step 2 (input bit 0 or 1
  // depending on the signature order).
  const auto& inputs = machine.signature().inputs;
  synth::Word injured_mask = 0;
  for (std::size_t b = 0; b < inputs.size(); ++b) {
    if (inputs[b].find("injured") != std::string::npos) {
      injured_mask = synth::Word{1} << b;
    }
  }
  std::vector<synth::Word> prefix = {0, 0, injured_mask};
  std::vector<synth::Word> loop = {0};
  const ltl::Lasso trace = machine.lasso(prefix, loop);

  std::cout << "\n=== simulated episode (injured person visible at step 2) "
               "===\n";
  for (std::size_t t = 0; t < trace.size(); ++t) {
    std::cout << "  t=" << t << (t == trace.loop_start() ? " (loop)" : "")
              << " :";
    for (const auto& p : trace.at(t)) std::cout << " " << p;
    std::cout << "\n";
  }

  // Verify every requirement on the produced lasso.
  bool all_hold = true;
  for (const auto& r : result.translation.requirements) {
    if (!ltl::evaluate(r.formula, trace)) {
      std::cout << "VIOLATED: " << r.id << " " << ltl::to_string(r.formula)
                << "\n";
      all_hold = false;
    }
  }
  std::cout << (all_hold ? "\nall requirements hold on the simulated trace\n"
                         : "\ntrace violates the specification!\n");
  return all_hold ? 0 : 1;
}
