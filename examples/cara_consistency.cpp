// The paper's running example: the CARA infusion-pump working-mode
// specification (Section III, Table I row 0), end to end.
//
//   $ ./cara_consistency
//
// Prints every requirement with its translated formula (matching the
// paper's appendix), the Section IV-E time abstraction, the partition, and
// the consistency verdict.
#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "corpus/cara.hpp"
#include "ltl/formula.hpp"

int main() {
  using namespace speccc;

  core::Pipeline pipeline;
  const auto result =
      pipeline.run("CARA working mode", corpus::cara_working_mode_texts());

  std::cout << "=== CARA working-mode requirements -> LTL ===\n";
  for (const auto& r : result.translation.requirements) {
    std::cout << r.id << ": " << r.text << "\n   |- "
              << ltl::to_string(r.formula, ltl::Style::kPaper) << "\n";
  }

  std::cout << "\n=== golden check against the published appendix ===\n";
  std::size_t matches = 0;
  const auto goldens = corpus::cara_working_mode();
  for (const auto& golden : goldens) {
    for (const auto& r : result.translation.requirements) {
      if (r.id == golden.id &&
          ltl::to_string(r.formula) == golden.expected) {
        ++matches;
      }
    }
  }
  std::cout << "  " << matches << " / " << goldens.size()
            << " formulas match the published appendix\n";

  std::cout << "\n" << core::describe(result);
  return result.consistent && matches == goldens.size() ? 0 : 1;
}
