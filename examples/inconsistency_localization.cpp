// Stage 3 in action (paper Section V-B): the TELEPROMISE "Information"
// application is initially unrealizable because the partition heuristics
// classify a system-controlled status variable as an input. SpecCC
// localizes the inconsistent requirement pair, filters the related
// requirements, flips the variable, and re-checks.
//
//   $ ./inconsistency_localization
#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "corpus/telepromise.hpp"

int main() {
  using namespace speccc;

  const auto specs = corpus::telepromise_specs();
  for (const auto& tele : specs) {
    if (!tele.partition_trap) continue;

    std::cout << "=== " << tele.name << " ===\n";
    for (const auto& r : tele.requirements) {
      std::cout << "  " << r.id << ": " << r.text << "\n";
    }

    core::Pipeline pipeline;
    const auto result = pipeline.run(tele.name, tele.requirements);

    std::cout << "\ninitial synthesis: "
              << (result.synthesis.realizable() ? "realizable"
                                                : "NOT realizable")
              << "\n";
    if (result.refinement.has_value()) {
      const auto& refinement = *result.refinement;
      std::cout << "localization core:";
      for (std::size_t i : refinement.localization.core) {
        std::cout << " " << result.translation.requirements[i].id;
      }
      std::cout << "\nrelated requirements:";
      for (std::size_t i : refinement.localization.related) {
        std::cout << " " << result.translation.requirements[i].id;
      }
      std::cout << "\nrealizability checks spent: " << refinement.checks << "\n";
      if (refinement.adjustment.has_value()) {
        std::cout << "adjustment: '" << refinement.adjustment->variable
                  << "' reclassified as "
                  << (refinement.adjustment->now_input ? "input" : "output")
                  << "\n";
      }
    }
    std::cout << "final verdict: "
              << (result.consistent ? "consistent" : "INCONSISTENT") << "\n\n";
  }
  return 0;
}
