// Quickstart: the whole SpecCC loop on a four-requirement thermostat spec.
//
//   $ ./quickstart
//
// Shows: structured-English input, the translated LTL, the input/output
// partition, the realizability verdict, and a synthesized controller run on
// a sample input trace. Also demonstrates the paper's Section I footnote:
// a specification demanding clairvoyance is reported inconsistent.
#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "ltl/formula.hpp"
#include "ltl/parser.hpp"
#include "synth/bounded.hpp"

int main() {
  using namespace speccc;

  const std::vector<translate::RequirementText> spec = {
      {"R1", "If the temperature sensor is high, the fan is activated."},
      {"R2", "If the temperature sensor is low, the fan is not activated."},
      {"R3", "When the test button is pressed, eventually the status light "
             "is activated."},
      {"R4", "If the power switch is off, the alarm is raised in 2 "
             "seconds."},
  };

  std::cout << "=== requirements ===\n";
  for (const auto& r : spec) std::cout << "  " << r.id << ": " << r.text << "\n";

  core::PipelineOptions options;
  options.synthesis.symbolic.extract = true;  // build a controller
  core::Pipeline pipeline(options);
  const auto result = pipeline.run("thermostat", spec);

  std::cout << "\n=== translated formulas ===\n";
  for (const auto& r : result.translation.requirements) {
    std::cout << "  " << r.id << ": " << ltl::to_string(r.formula) << "\n";
  }

  std::cout << "\n=== partition ===\n  inputs: ";
  for (const auto& p : result.partition.inputs) std::cout << p << " ";
  std::cout << "\n  outputs:";
  for (const auto& p : result.partition.outputs) std::cout << " " << p;
  std::cout << "\n\n" << core::describe(result);

  if (result.synthesis.controller.has_value()) {
    const auto& machine = *result.synthesis.controller;
    std::cout << "\n=== controller (" << machine.num_states()
              << " states) on a sample run ===\n";
    // Inputs indexed by the signature order printed above.
    const auto& inputs = machine.signature().inputs;
    std::vector<synth::Word> stimulus = {0, 1, 2, 4, 0};
    int state = machine.initial();
    for (synth::Word in : stimulus) {
      const auto out = machine.output(state, in);
      std::cout << "  step: inputs {";
      for (std::size_t b = 0; b < inputs.size(); ++b) {
        if ((in >> b) & 1) std::cout << " " << inputs[b];
      }
      std::cout << " } -> outputs {";
      for (std::size_t b = 0; b < machine.signature().outputs.size(); ++b) {
        if ((out >> b) & 1) std::cout << " " << machine.signature().outputs[b];
      }
      std::cout << " }\n";
      state = machine.next(state, in);
    }
  }

  // The paper's footnote: G (output <-> X X X input) is unrealizable.
  std::cout << "\n=== the clairvoyance footnote ===\n";
  const auto footnote = synth::bounded_synthesize(
      ltl::parse("G (output <-> X X X input)"), {{"input"}, {"output"}});
  std::cout << "  G (output <-> X X X input): "
            << (footnote.verdict == synth::Realizability::kUnrealizable
                    ? "unrealizable, as the paper argues"
                    : "unexpected verdict!")
            << "\n";
  return 0;
}
