// SpecCC command-line front end: consistency-check a requirement document.
//
// This is the paper's Fig. 1 workflow as a tool: read one structured-English
// requirement per line, translate to LTL (Section IV), abstract time
// constants (Section IV-E), partition inputs/outputs (Section IV-F), and
// decide consistency via realizability (Section V-A), optionally exporting
// the synthesized controller. The --lexicon/--antonyms options demonstrate
// the user-extensible dictionaries of Sections IV-B and IV-D.
//
//   $ ./check_spec requirements.txt [options]
//
// Options:
//   --strict-next      translate "next" as a real X operator
//   --no-reasoning     disable Section IV-D semantic reasoning
//   --no-abstraction   disable Section IV-E time abstraction
//   --budget N         arrival-error budget B (default 5)
//   --lexicon FILE     extend the lexicon ("word pos" lines)
//   --antonyms FILE    extend the antonym dictionary ("positive negative")
//   --formulas         print the translated formulas
//   --dot FILE         write the synthesized controller as Graphviz DOT
//
// Exit code: 0 consistent, 2 inconsistent, 1 usage/parsing error.
#include <fstream>
#include <iostream>
#include <string>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "corpus/loaders.hpp"
#include "ltl/formula.hpp"
#include "synth/mealy_export.hpp"

namespace {

int usage() {
  std::cerr << "usage: check_spec requirements.txt [--strict-next] "
               "[--no-reasoning] [--no-abstraction] [--budget N] "
               "[--lexicon FILE] [--antonyms FILE] [--formulas] [--dot FILE]\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace speccc;
  if (argc < 2) return usage();

  std::string spec_path;
  std::string dot_path;
  bool print_formulas = false;
  core::PipelineOptions options;
  auto lexicon = nlp::Lexicon::builtin();
  auto dictionary = semantics::AntonymDictionary::builtin();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_arg = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << what << " needs an argument\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--strict-next") {
      options.translation.next_mode = translate::NextMode::kStrict;
    } else if (arg == "--no-reasoning") {
      options.translation.semantic_reasoning = false;
    } else if (arg == "--no-abstraction") {
      options.time_abstraction = false;
    } else if (arg == "--budget") {
      options.error_budget = static_cast<std::uint32_t>(std::stoul(next_arg("--budget")));
    } else if (arg == "--lexicon") {
      std::ifstream in(next_arg("--lexicon"));
      if (!in) {
        std::cerr << "cannot open lexicon file\n";
        return 1;
      }
      corpus::load_lexicon(in, lexicon);
    } else if (arg == "--antonyms") {
      std::ifstream in(next_arg("--antonyms"));
      if (!in) {
        std::cerr << "cannot open antonym file\n";
        return 1;
      }
      corpus::load_antonyms(in, dictionary);
    } else if (arg == "--formulas") {
      print_formulas = true;
    } else if (arg == "--dot") {
      dot_path = next_arg("--dot");
      options.synthesis.symbolic.extract = true;
    } else if (spec_path.empty() && arg[0] != '-') {
      spec_path = arg;
    } else {
      return usage();
    }
  }
  if (spec_path.empty()) return usage();

  std::ifstream in(spec_path);
  if (!in) {
    std::cerr << "cannot open " << spec_path << "\n";
    return 1;
  }

  try {
    const auto requirements = corpus::load_requirements(in);
    if (requirements.empty()) {
      std::cerr << "no requirements in " << spec_path << "\n";
      return 1;
    }
    options.lexicon = std::move(lexicon);
    options.dictionary = std::move(dictionary);
    core::Pipeline pipeline(std::move(options));
    const auto result = pipeline.run(spec_path, requirements);

    if (print_formulas) {
      for (const auto& r : result.translation.requirements) {
        std::cout << r.id << ": " << ltl::to_string(r.formula) << "\n";
      }
      std::cout << "\n";
    }
    std::cout << core::describe(result);

    if (!dot_path.empty() && result.synthesis.controller.has_value()) {
      std::ofstream dot(dot_path);
      dot << synth::to_dot(*result.synthesis.controller);
      std::cout << "controller written to " << dot_path << "\n";
    }
    return result.consistent ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
