// speccc_batch: parallel consistency checking of many specifications.
//
// Feeds a batch of requirement documents through the work-stealing
// scheduler of batch/batch.hpp -- one whole-spec Fig. 1 pipeline run per
// task, one bdd::Manager per worker -- and prints a deterministic,
// input-ordered report. The same engine serves the paper's corpus
// reproduction (--corpus), differential-fuzzing throughput (--generate,
// the exact spec cases speccc_fuzz derives from the same seed), and ad-hoc
// requirement directories.
//
//   $ ./speccc_batch --corpus table1 --jobs 4
//   $ ./speccc_batch path/to/specs/ --jobs 8 --json report.json
//   $ ./speccc_batch --manifest specs.lst --time-budget 30
//   $ ./speccc_batch --generate 64 --seed 42 --jobs 4 --crosscheck
//
// Inputs (combinable; tasks keep the listing order):
//   FILE | DIR         a requirement document (one sentence per line, see
//                      corpus/loaders.hpp), or a directory scanned for
//                      *.txt / *.spec files in name order
//   --manifest FILE    one spec path per line (# comments), relative to
//                      the manifest's directory
//   --corpus NAME      cara | tele | robot | table1 (the paper's corpora)
//   --generate N       N generated specs from the difftest spec generator
//   --seed S           master seed for --generate (default 1)
//
// Options:
//   --jobs N           worker threads (default: hardware concurrency)
//   --json FILE        write the JSON report to FILE ('-' for stdout)
//   --canonical        print the canonical (timing-free) report instead of
//                      the human summary -- the parallel-equals-sequential
//                      determinism contract in printable form
//   --time-budget S    per-task budget in seconds, enforced at pipeline
//                      stage boundaries (expired tasks: budget-exhausted)
//   --substrate SPEC   decision substrate: "auto" (default; the staged
//                      symbolic-then-bounded escalation), a single
//                      substrate name (tableau | bounded | symbolic), or
//                      "race:a,b,..." to race two or more substrates per
//                      spec, first definite verdict wins. Racing is
//                      verdict-transparent: canonical output is
//                      byte-identical race-on vs race-off (a solo
//                      substrate may abstain where auto decides). An
//                      unparseable SPEC is rejected with a diagnostic
//   --crosscheck       re-decide each spec with every registered substrate
//                      and report substrate agreement
//   --diagnose         enumerate minimal correction sets for genuinely
//                      inconsistent specs (up to 4; see below). The MUS
//                      ("mus=" in canonical output, "conflicting
//                      sentences" in the summary) is always reported when
//                      refinement ran; --diagnose adds the "mcs=" /
//                      "fix by removing" alternatives. Diagnosis output is
//                      input-pure and canonical: it never changes verdicts
//                      or exit codes, and stays byte-identical across
//                      --jobs counts and cache modes
//   --max-correction-sets N
//                      cap the enumeration at N sets (implies --diagnose)
//   --timeabs B        time-abstraction backend: enum (default; exact
//                      divisor enumeration) or smt (the paper's
//                      bit-blasting route). Canonical output is identical
//                      either way -- the optimum is unique
//   --smt-encoder E    CNF encoder for --timeabs smt: mapped (default;
//                      cut-based AIG mapping) or tseitin (per-gate lane)
//   --strict-next      translate "next" as a real X operator
//   --cache            share a cross-spec memoization store (cache/store.hpp)
//                      across the batch: repeated sentences and formulas are
//                      decided once. Canonical output is byte-identical with
//                      or without it (supported smoke: diff the two)
//   --cache-max N      cache entry cap per artifact kind (default 65536)
//   --cache-stats      implies --cache. With caching on, the human summary
//                      and the JSON report always carry the hit/miss/
//                      eviction counters; this flag additionally prints
//                      them (to stderr) in --canonical mode, whose stdout
//                      stream must stay byte-identical cache-on vs off
//   --cache-snapshot IN,OUT
//                      implies --cache. Load the persistent store snapshot
//                      IN before the batch (warm start) and save the store
//                      to OUT afterwards (atomic temp-file + rename).
//                      Either side may be empty: ",warm.snap" saves only,
//                      "warm.snap," loads only. A snapshot that is
//                      truncated, corrupted, the wrong format version, or
//                      stamped with a different lexicon fingerprint is
//                      rejected with a structured diagnostic and exit
//                      code 1 -- never a silent cold start
//   --shard-index S / --shard-count K
//                      run only shard S of a K-way round-robin deal of the
//                      task list (shard/splitter.hpp: shard S owns input
//                      indices S, S+K, S+2K, ...). Used by speccc_shard's
//                      coordinator; the canonical rows of the K shards
//                      interleaved are byte-identical to the unsharded run
//   --quiet            suppress the per-spec progress line
//
// BDD engine statistics: tasks decided by the symbolic engine carry their
// per-worker bdd::Manager counters (peak nodes, unique-table hits,
// computed-cache hits/misses/evictions). The human summary prints the
// batch aggregate, the JSON report carries both the aggregate ("bdd") and
// per-spec peak/hit counters; the canonical report never includes them
// (diagnostics, like timings and steal counts).
//
// Exit code: 0 all consistent; 2 some spec inconsistent; 3 errors, budget
// exhaustion, cancellation, or substrate disagreement; 1 usage.
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "batch/batch.hpp"
#include "cache/snapshot.hpp"
#include "cache/store.hpp"
#include "batch/corpus_tasks.hpp"
#include "corpus/generator.hpp"
#include "corpus/loaders.hpp"
#include "difftest/harness.hpp"
#include "difftest/random.hpp"
#include "nlp/lexicon.hpp"
#include "shard/splitter.hpp"
#include "timeabs/abstraction.hpp"
#include "util/diagnostics.hpp"

namespace fs = std::filesystem;

namespace {

int usage() {
  std::cerr
      << "usage: speccc_batch [FILE|DIR ...] [--manifest FILE]\n"
         "                    [--corpus cara|tele|robot|table1]\n"
         "                    [--generate N] [--seed S] [--jobs N]\n"
         "                    [--json FILE] [--canonical] [--time-budget S]\n"
         "                    [--substrate auto|NAME|race:a,b,...]\n"
         "                    [--crosscheck] [--diagnose]\n"
         "                    [--max-correction-sets N]\n"
         "                    [--timeabs enum|smt] [--smt-encoder mapped|tseitin]\n"
         "                    [--strict-next] [--quiet]\n"
         "                    [--cache] [--cache-max N] [--cache-stats]\n"
         "                    [--cache-snapshot IN,OUT]\n"
         "                    [--shard-index S --shard-count K]\n";
  return 1;
}

speccc::batch::SpecTask load_spec_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw speccc::util::InvalidInputError("cannot open " + path.string());
  }
  return {path.string(), speccc::corpus::load_requirements(in)};
}

void add_directory(const fs::path& dir,
                   std::vector<speccc::batch::SpecTask>& tasks) {
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".txt" || ext == ".spec") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) tasks.push_back(load_spec_file(file));
}

void add_manifest(const fs::path& manifest,
                  std::vector<speccc::batch::SpecTask>& tasks) {
  std::ifstream in(manifest);
  if (!in) {
    throw speccc::util::InvalidInputError("cannot open manifest " +
                                          manifest.string());
  }
  const fs::path base = manifest.parent_path();
  std::string line;
  while (std::getline(in, line)) {
    // Trim whitespace; skip blanks and comments.
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '#') continue;
    const auto end = line.find_last_not_of(" \t\r");
    const fs::path entry = line.substr(begin, end - begin + 1);
    tasks.push_back(load_spec_file(entry.is_absolute() ? entry : base / entry));
  }
}

/// The difftest spec generator, with speccc_fuzz's exact seed derivation
/// (difftest::generated_spec): task k here is spec case k of
/// `speccc_fuzz --seed S`, so a batch verdict anomaly maps straight onto
/// a fuzz reproduction command.
void add_generated(std::uint64_t master_seed, int count,
                   std::vector<speccc::batch::SpecTask>& tasks) {
  for (int index = 0; index < count; ++index) {
    auto spec = speccc::difftest::generated_spec(master_seed, index);
    tasks.push_back({std::move(spec.name), std::move(spec.requirements)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace speccc;

  std::vector<batch::SpecTask> tasks;
  batch::BatchOptions options;
  std::string json_path;
  std::uint64_t seed = 1;
  int generate_count = 0;
  bool canonical_output = false;
  bool quiet = false;
  bool use_cache = false;
  bool print_cache_stats = false;
  std::size_t cache_max = cache::StoreOptions{}.max_entries;
  std::string snapshot_in;
  std::string snapshot_out;
  bool use_snapshot = false;
  long long shard_index = -1;
  long long shard_count = 0;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next_arg = [&]() -> std::string {
        if (i + 1 >= argc) {
          std::cerr << arg << " needs an argument\n";
          std::exit(usage());
        }
        return argv[++i];
      };
      if (arg == "--jobs") {
        options.jobs = std::atoi(next_arg().c_str());
        if (options.jobs < 1) {
          std::cerr << "--jobs must be at least 1\n";
          return usage();
        }
      } else if (arg == "--json") {
        json_path = next_arg();
      } else if (arg == "--canonical") {
        canonical_output = true;
      } else if (arg == "--time-budget") {
        options.task_time_budget_seconds = std::atof(next_arg().c_str());
      } else if (arg == "--substrate") {
        const std::string spec = next_arg();
        try {
          options.pipeline.substrate = core::SubstrateSpec::parse(spec);
        } catch (const util::InvalidInputError& e) {
          std::cerr << "invalid --substrate: " << e.what() << "\n";
          return usage();
        }
      } else if (arg == "--crosscheck") {
        options.check_agreement = true;
      } else if (arg == "--diagnose") {
        if (options.pipeline.localization.max_correction_sets == 0) {
          options.pipeline.localization.max_correction_sets = 4;
        }
      } else if (arg == "--max-correction-sets") {
        const long long n = std::atoll(next_arg().c_str());
        if (n < 1) {
          std::cerr << "--max-correction-sets must be at least 1\n";
          return usage();
        }
        options.pipeline.localization.max_correction_sets =
            static_cast<std::size_t>(n);
      } else if (arg == "--strict-next") {
        options.pipeline.translation.next_mode = translate::NextMode::kStrict;
      } else if (arg == "--timeabs") {
        const std::string spec = next_arg();
        if (spec == "enum") {
          options.pipeline.timeabs_backend = timeabs::Backend::kEnumeration;
        } else if (spec == "smt") {
          options.pipeline.timeabs_backend = timeabs::Backend::kSmt;
        } else {
          std::cerr << "--timeabs must be enum or smt\n";
          return usage();
        }
      } else if (arg == "--smt-encoder") {
        const std::string spec = next_arg();
        if (spec == "mapped") {
          options.pipeline.smt_encoder = timeabs::SmtEncoder::kCutMap;
        } else if (spec == "tseitin") {
          options.pipeline.smt_encoder = timeabs::SmtEncoder::kTseitin;
        } else {
          std::cerr << "--smt-encoder must be mapped or tseitin\n";
          return usage();
        }
      } else if (arg == "--cache") {
        use_cache = true;
      } else if (arg == "--cache-max") {
        const long long n = std::atoll(next_arg().c_str());
        if (n < 1) {
          std::cerr << "--cache-max must be at least 1\n";
          return usage();
        }
        cache_max = static_cast<std::size_t>(n);
      } else if (arg == "--cache-stats") {
        use_cache = true;
        print_cache_stats = true;
      } else if (arg == "--cache-snapshot") {
        const std::string spec = next_arg();
        const auto comma = spec.find(',');
        if (comma == std::string::npos) {
          std::cerr << "--cache-snapshot needs IN,OUT (either side may be "
                       "empty)\n";
          return usage();
        }
        snapshot_in = spec.substr(0, comma);
        snapshot_out = spec.substr(comma + 1);
        use_snapshot = true;
        use_cache = true;
      } else if (arg == "--shard-index") {
        shard_index = std::atoll(next_arg().c_str());
      } else if (arg == "--shard-count") {
        shard_count = std::atoll(next_arg().c_str());
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--seed") {
        seed = static_cast<std::uint64_t>(
            std::strtoull(next_arg().c_str(), nullptr, 10));
      } else if (arg == "--generate") {
        generate_count = std::atoi(next_arg().c_str());
      } else if (arg == "--manifest") {
        add_manifest(next_arg(), tasks);
      } else if (arg == "--corpus") {
        const std::string which = next_arg();
        std::vector<batch::SpecTask> corpus_tasks;
        if (which == "cara") corpus_tasks = batch::cara_tasks();
        else if (which == "tele") corpus_tasks = batch::telepromise_tasks();
        else if (which == "robot") corpus_tasks = batch::robot_tasks();
        else if (which == "table1") corpus_tasks = batch::table1_tasks();
        else {
          std::cerr << "unknown corpus: " << which << "\n";
          return usage();
        }
        for (batch::SpecTask& t : corpus_tasks) tasks.push_back(std::move(t));
      } else if (!arg.empty() && arg[0] == '-') {
        std::cerr << "unknown option: " << arg << "\n";
        return usage();
      } else if (fs::is_directory(arg)) {
        add_directory(arg, tasks);
      } else {
        tasks.push_back(load_spec_file(arg));
      }
    }
    if (generate_count > 0) add_generated(seed, generate_count, tasks);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  if (tasks.empty()) {
    std::cerr << "no specifications to check\n";
    return usage();
  }

  // Shard selection runs after the "no specifications" check: a shard that
  // legitimately receives zero tasks (K > corpus size) is an empty report,
  // not a usage error.
  if (shard_index >= 0 || shard_count > 0) {
    if (shard_count < 1 || shard_index < 0 || shard_index >= shard_count) {
      std::cerr << "--shard-index/--shard-count need 0 <= S < K\n";
      return usage();
    }
    std::vector<batch::SpecTask> mine;
    mine.reserve(shard::shard_size(tasks.size(),
                                   static_cast<std::size_t>(shard_count),
                                   static_cast<std::size_t>(shard_index)));
    for (std::size_t index = 0; index < tasks.size(); ++index) {
      if (shard::shard_of(index, static_cast<std::size_t>(shard_count)) ==
          static_cast<std::size_t>(shard_index)) {
        mine.push_back(std::move(tasks[index]));
      }
    }
    tasks = std::move(mine);
  }

  if (use_cache) {
    cache::StoreOptions store_options;
    store_options.max_entries = cache_max;
    options.pipeline.cache = std::make_shared<cache::Store>(store_options);
  }
  if (use_snapshot && !snapshot_in.empty()) {
    try {
      const cache::SnapshotMeta meta = cache::load_snapshot(
          *options.pipeline.cache, snapshot_in, nlp::Lexicon::builtin().fingerprint());
      if (!quiet) {
        std::cerr << "cache snapshot " << snapshot_in << ": " << meta.entries
                  << " entries loaded\n";
      }
    } catch (const cache::SnapshotError& e) {
      // Never degrade to a silent cold start: a requested warm start that
      // cannot be honored is an operational error.
      std::cerr << "error: cache snapshot rejected ("
                << cache::snapshot_error_kind_name(e.kind()) << "): "
                << e.what() << "\n";
      return 1;
    }
  }

  if (!quiet) {
    options.on_result = [](const batch::TaskResult& r) {
      std::cerr << "[" << r.worker << "] " << r.name << ": "
                << batch::status_name(r.status) << " (" << r.seconds
                << "s)\n";
    };
  }

  const batch::BatchReport report = batch::check(tasks, options);

  // With --json -, stdout is reserved for the JSON document alone; the
  // human summary moves to stderr so stdout stays machine-parseable.
  std::ostream& text_out = json_path == "-" ? std::cerr : std::cout;
  if (canonical_output) {
    text_out << batch::canonical(report);
    // Keep the canonical stream byte-identical cache-on vs cache-off (and
    // jobs-1 vs jobs-N): stats go to stderr here, never into the contract.
    if (print_cache_stats) cache::print_stats(std::cerr, report.cache_stats);
  } else {
    batch::print_summary(text_out, report);
  }
  if (!json_path.empty()) {
    if (json_path == "-") {
      std::cout << batch::to_json(report);
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
      }
      out << batch::to_json(report);
      if (!quiet) std::cerr << "JSON report written to " << json_path << "\n";
    }
  }

  if (use_snapshot && !snapshot_out.empty()) {
    try {
      cache::save_snapshot(*options.pipeline.cache, snapshot_out,
                           nlp::Lexicon::builtin().fingerprint());
      if (!quiet) {
        std::cerr << "cache snapshot written to " << snapshot_out << "\n";
      }
    } catch (const cache::SnapshotError& e) {
      std::cerr << "error: cannot write cache snapshot ("
                << cache::snapshot_error_kind_name(e.kind()) << "): "
                << e.what() << "\n";
      return 1;
    }
  }

  if (report.errors > 0 || report.budget_exhausted > 0 ||
      report.cancelled > 0 || report.disagreements > 0) {
    return 3;
  }
  return report.all_consistent() ? 0 : 2;
}
