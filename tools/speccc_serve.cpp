// speccc_serve: the long-running consistency-checking daemon.
//
// Speaks the NDJSON protocol of serve/protocol.hpp over loopback TCP: one
// JSON request per line in, one JSON response per line out, responses in
// completion order correlated by "id". The resident engine
// (serve/service.hpp) keeps a pool of warm per-worker pipelines and one
// shared memoization store (LRU by default -- a resident cache should
// keep hot specifications, not cycle them out by age), admits work
// through a bounded priority queue with per-request deadlines, and
// rejects with a retry hint when the queue is full. Verdict lines embed
// the exact canonical rendering `speccc_batch --canonical` would print,
// so daemon and batch output are byte-comparable (the CI serve smoke
// diffs them).
//
//   $ ./speccc_serve --port 0 --port-file /tmp/speccc.port &
//   $ printf '{"method":"check","id":"r1","requirements":["..."]}\n' |
//       nc 127.0.0.1 $(cat /tmp/speccc.port)
//
// Options:
//   --port N              TCP port on 127.0.0.1 (default 7407; 0 picks an
//                         ephemeral port -- use --port-file to learn it)
//   --port-file FILE      write the bound port number to FILE once listening
//   --workers N           worker threads (default: hardware concurrency)
//   --queue-max N         admission queue bound (default 256); submissions
//                         beyond it are rejected with retry_after_ms
//   --default-deadline-ms N   deadline for requests that carry none
//                         (default 0 = unlimited)
//   --no-cache            run without the shared memoization store
//   --cache-max N         store entry cap per artifact kind (default 65536)
//   --eviction fifo|lru   store eviction policy (default lru; batch's FIFO
//                         default is wrong for a resident process)
//   --cache-snapshot IN,OUT   load the persistent store snapshot IN before
//                         listening (warm start) and save the store to OUT
//                         after the shutdown drain. Either side may be
//                         empty. A rejected snapshot (truncated, corrupted,
//                         wrong version, wrong lexicon fingerprint) is a
//                         startup failure with a structured diagnostic,
//                         never a silent cold start. Incompatible with
//                         --no-cache
//   --substrate SPEC      default decision substrate for every request:
//                         "auto" (default), a substrate name (tableau |
//                         bounded | symbolic), or "race:a,b,...".
//                         Per-request "substrate" fields override it.
//                         An unparseable SPEC is rejected at startup
//   --strict-next         translate "next" as a real X operator
//   --diagnose            enumerate minimal correction sets (up to 4) for
//                         inconsistent specs, like speccc_batch --diagnose
//   --max-correction-sets N   cap the enumeration (implies --diagnose)
//   --quiet               suppress the startup/shutdown notices on stderr
//
// Shutdown: SIGINT or SIGTERM (or a {"method":"shutdown"} request) stops
// accepting connections, drains every queued and in-flight request --
// responses still go out -- then exits 0. Exit codes: 0 clean shutdown,
// 1 usage or startup failure (e.g. port taken).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "cache/snapshot.hpp"
#include "cache/store.hpp"
#include "core/substrate.hpp"
#include "nlp/lexicon.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "util/diagnostics.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: speccc_serve [--port N] [--port-file FILE] [--workers N]\n"
         "                    [--queue-max N] [--default-deadline-ms N]\n"
         "                    [--no-cache] [--cache-max N]\n"
         "                    [--eviction fifo|lru]\n"
         "                    [--cache-snapshot IN,OUT]\n"
         "                    [--substrate auto|NAME|race:a,b,...]\n"
         "                    [--strict-next]\n"
         "                    [--diagnose] [--max-correction-sets N]\n"
         "                    [--quiet]\n";
  return 1;
}

// Signal handling: the handler only sets a flag and pokes a self-pipe so
// the poll()-based accept loop wakes immediately; all draining happens on
// the main thread afterwards.
std::atomic<bool> g_stop{false};
int g_wake_pipe[2] = {-1, -1};

void on_signal(int) {
  g_stop.store(true, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_wake_pipe[1], &byte, 1);
}

/// One client connection: read request lines until EOF, submit checks to
/// the service, write each response as it completes. Responses from
/// worker threads and inline errors interleave, so every send goes
/// through one mutex-guarded writer.
class Connection {
 public:
  Connection(speccc::serve::net::Socket socket, speccc::serve::Service& service,
             const speccc::cache::Store* store)
      : socket_(std::move(socket)), service_(service), store_(store) {}

  /// Returns true when the client asked for a server shutdown.
  bool run() {
    using namespace speccc::serve;
    net::LineReader reader(socket_);
    std::string line;
    bool shutdown_requested = false;
    while (!shutdown_requested && reader.read_line(line)) {
      if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos) {
        continue;
      }
      ParsedRequest parsed;
      try {
        parsed = parse_request(line);
      } catch (const std::exception& e) {
        send(render_error("", e.what()));
        continue;
      }
      switch (parsed.method) {
        case Method::kPing:
          send(render_pong(parsed.id));
          break;
        case Method::kStats:
          send(render_stats(parsed.id, service_.stats(), store_));
          break;
        case Method::kShutdown:
          send(render_shutting_down(parsed.id));
          shutdown_requested = true;
          break;
        case Method::kCheck: {
          ++in_flight_;
          service_.submit(std::move(parsed.request), [this](Response r) {
            send(render_response(r));
            --in_flight_;
          });
          break;
        }
      }
    }
    // Keep the socket alive until every submitted check has answered;
    // the callbacks capture `this`.
    while (in_flight_.load(std::memory_order_acquire) > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return shutdown_requested;
  }

 private:
  void send(std::string rendered) {
    rendered += '\n';
    std::lock_guard<std::mutex> lock(write_mutex_);
    socket_.send_all(rendered);  // peer gone = drop; service still drains
  }

  speccc::serve::net::Socket socket_;
  speccc::serve::Service& service_;
  const speccc::cache::Store* store_;
  std::mutex write_mutex_;
  std::atomic<int> in_flight_{0};
};

}  // namespace

int main(int argc, char** argv) {
  using namespace speccc;

  int port = 7407;
  std::string port_file;
  serve::ServiceOptions options;
  bool use_cache = true;
  bool quiet = false;
  std::size_t cache_max = cache::StoreOptions{}.max_entries;
  cache::Eviction eviction = cache::Eviction::kLru;
  std::string snapshot_in;
  std::string snapshot_out;
  bool use_snapshot = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_arg = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs an argument\n";
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = std::atoi(next_arg().c_str());
      if (port < 0 || port > 65535) {
        std::cerr << "--port must be in [0, 65535]\n";
        return usage();
      }
    } else if (arg == "--port-file") {
      port_file = next_arg();
    } else if (arg == "--workers") {
      options.workers = std::atoi(next_arg().c_str());
      if (options.workers < 1) {
        std::cerr << "--workers must be at least 1\n";
        return usage();
      }
    } else if (arg == "--queue-max") {
      const long long n = std::atoll(next_arg().c_str());
      if (n < 1) {
        std::cerr << "--queue-max must be at least 1\n";
        return usage();
      }
      options.queue_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--default-deadline-ms") {
      options.default_deadline_seconds = std::atof(next_arg().c_str()) / 1000.0;
    } else if (arg == "--no-cache") {
      use_cache = false;
    } else if (arg == "--cache-max") {
      const long long n = std::atoll(next_arg().c_str());
      if (n < 1) {
        std::cerr << "--cache-max must be at least 1\n";
        return usage();
      }
      cache_max = static_cast<std::size_t>(n);
    } else if (arg == "--cache-snapshot") {
      const std::string spec = next_arg();
      const auto comma = spec.find(',');
      if (comma == std::string::npos) {
        std::cerr << "--cache-snapshot needs IN,OUT (either side may be "
                     "empty)\n";
        return usage();
      }
      snapshot_in = spec.substr(0, comma);
      snapshot_out = spec.substr(comma + 1);
      use_snapshot = true;
    } else if (arg == "--eviction") {
      const std::string which = next_arg();
      if (which == "fifo") eviction = cache::Eviction::kFifo;
      else if (which == "lru") eviction = cache::Eviction::kLru;
      else {
        std::cerr << "unknown eviction policy: " << which << "\n";
        return usage();
      }
    } else if (arg == "--substrate") {
      const std::string spec = next_arg();
      try {
        options.pipeline.substrate = core::SubstrateSpec::parse(spec);
      } catch (const util::InvalidInputError& e) {
        std::cerr << "invalid --substrate: " << e.what() << "\n";
        return usage();
      }
    } else if (arg == "--strict-next") {
      options.pipeline.translation.next_mode = translate::NextMode::kStrict;
    } else if (arg == "--diagnose") {
      if (options.pipeline.localization.max_correction_sets == 0) {
        options.pipeline.localization.max_correction_sets = 4;
      }
    } else if (arg == "--max-correction-sets") {
      const long long n = std::atoll(next_arg().c_str());
      if (n < 1) {
        std::cerr << "--max-correction-sets must be at least 1\n";
        return usage();
      }
      options.pipeline.localization.max_correction_sets =
          static_cast<std::size_t>(n);
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return usage();
    }
  }

  if (use_snapshot && !use_cache) {
    std::cerr << "--cache-snapshot needs the cache (drop --no-cache)\n";
    return usage();
  }

  std::shared_ptr<cache::Store> store;
  if (use_cache) {
    cache::StoreOptions store_options;
    store_options.max_entries = cache_max;
    store_options.eviction = eviction;
    store = std::make_shared<cache::Store>(store_options);
    options.pipeline.cache = store;
  }
  if (use_snapshot && !snapshot_in.empty()) {
    try {
      const cache::SnapshotMeta meta = cache::load_snapshot(
          *store, snapshot_in, nlp::Lexicon::builtin().fingerprint());
      if (!quiet) {
        std::cerr << "speccc_serve: cache snapshot " << snapshot_in << ": "
                  << meta.entries << " entries loaded\n";
      }
    } catch (const cache::SnapshotError& e) {
      // A requested warm start that cannot be honored is a startup
      // failure, never a silent cold start.
      std::cerr << "error: cache snapshot rejected ("
                << cache::snapshot_error_kind_name(e.kind()) << "): "
                << e.what() << "\n";
      return 1;
    }
  }

  if (::pipe(g_wake_pipe) != 0) {
    std::cerr << "cannot create wake pipe\n";
    return 1;
  }
  struct sigaction sa = {};
  sa.sa_handler = on_signal;  // no SA_RESTART: accept() must return EINTR
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  std::optional<serve::net::Listener> listener;
  try {
    listener.emplace(static_cast<std::uint16_t>(port));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    if (!out) {
      std::cerr << "cannot write " << port_file << "\n";
      return 1;
    }
    out << listener->port() << "\n";
  }

  serve::Service service(options);
  if (!quiet) {
    std::cerr << "speccc_serve: listening on 127.0.0.1:" << listener->port()
              << " (" << service.options().workers << " workers, queue "
              << service.options().queue_capacity << ", cache "
              << (store ? cache::eviction_name(store->options().eviction)
                        : "off")
              << ")\n";
  }

  // Accept loop: poll on {listener, wake pipe} so a signal (or an NDJSON
  // shutdown request flipping g_stop) breaks the wait immediately.
  std::vector<std::thread> connections;
  while (!g_stop.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{listener->fd(), POLLIN, 0}, {g_wake_pipe[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0 || g_stop.load(std::memory_order_relaxed) ||
        (fds[1].revents & POLLIN) != 0) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    std::optional<serve::net::Socket> client = listener->accept_client();
    if (!client) continue;
    connections.emplace_back(
        [socket = std::move(*client), &service, &store]() mutable {
          Connection connection(std::move(socket), service, store.get());
          if (connection.run()) {
            g_stop.store(true, std::memory_order_relaxed);
            const char byte = 1;
            [[maybe_unused]] const ssize_t n = ::write(g_wake_pipe[1], &byte, 1);
          }
        });
  }

  // Drain: stop accepting (close the listener so clients see refusal, not
  // a hang), finish every connection -- each blocks until its submitted
  // checks have answered -- then drain the service queue itself.
  listener->close();
  if (!quiet) std::cerr << "speccc_serve: draining\n";
  for (std::thread& connection : connections) {
    if (connection.joinable()) connection.join();
  }
  service.shutdown();
  // The drain is complete: the store is quiescent, so the snapshot is a
  // consistent post-run image.
  if (use_snapshot && !snapshot_out.empty()) {
    try {
      cache::save_snapshot(*store, snapshot_out, nlp::Lexicon::builtin().fingerprint());
      if (!quiet) {
        std::cerr << "speccc_serve: cache snapshot written to " << snapshot_out
                  << "\n";
      }
    } catch (const cache::SnapshotError& e) {
      std::cerr << "error: cannot write cache snapshot ("
                << cache::snapshot_error_kind_name(e.kind()) << "): "
                << e.what() << "\n";
      return 1;
    }
  }
  if (!quiet) {
    const serve::ServiceStats stats = service.stats();
    std::cerr << "speccc_serve: done (" << stats.completed << " completed, "
              << stats.deadline_exceeded << " deadline-exceeded, "
              << stats.rejected << " rejected)\n";
  }
  return 0;
}
