// speccc_cnf: dump the CNF the solver would see as DIMACS.
//
// Builds one of a few canonical instances through the full
// smt::Builder -> AIG -> CNF stack and writes the emitted clause set in
// DIMACS format, so the encodings can be inspected, diffed, or fed to an
// external SAT solver. The cut-based mapper is the default lane;
// --tseitin switches to the per-gate fallback, which is the easiest way
// to see what the mapper buys:
//
//   $ ./speccc_cnf --multiplier 8 -o mapped.cnf
//   $ ./speccc_cnf --multiplier 8 --tseitin -o tseitin.cnf
//
// Instances:
//   --multiplier W    factor 221 over two W-bit operands (SAT; the
//                     BM_SmtMultiplier instance)
//   --miter W         x*y == y*x commutativity miter over W bits (UNSAT)
//   --pigeonhole N    PHP(N, N-1), native clauses without the AIG stack
//                     (UNSAT; calibrates raw-solver comparisons)
//
// Options:
//   --tseitin         per-gate Tseitin encoding instead of the cut mapper
//   --cut-size K      cut width for the mapper (2..6, default 4)
//   --solve           also solve the instance; the verdict and solver
//                     stats go to stderr, the exit code stays 0
//   -o FILE           write to FILE instead of stdout
//
// Exit code: 0 on success, 2 on usage errors.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "aig/cnf.hpp"
#include "sat/solver.hpp"
#include "smt/bitblast.hpp"

namespace {

namespace aig = speccc::aig;
namespace sat = speccc::sat;
namespace smt = speccc::smt;

int usage() {
  std::cerr << "usage: speccc_cnf (--multiplier W | --miter W | --pigeonhole N)\n"
               "                  [--tseitin] [--cut-size K] [--solve] [-o FILE]\n";
  return 2;
}

/// Collects everything the Builder sends to the solver, for the dump.
class CollectSink : public aig::ClauseSink {
 public:
  int new_var() override { return num_vars_++; }
  void add_clause(const sat::Clause& clause) override {
    clauses_.push_back(clause);
  }

  [[nodiscard]] int num_vars() const { return num_vars_; }
  [[nodiscard]] const std::vector<sat::Clause>& clauses() const {
    return clauses_;
  }

 private:
  int num_vars_ = 0;
  std::vector<sat::Clause> clauses_;
};

void write_dimacs(std::ostream& out, const std::string& comment, int num_vars,
                  const std::vector<sat::Clause>& clauses) {
  out << "c " << comment << "\n";
  out << "p cnf " << num_vars << " " << clauses.size() << "\n";
  for (const sat::Clause& clause : clauses) {
    for (const sat::Lit l : clause) {
      // DIMACS variables are 1-based; negative numbers negate.
      out << (l.positive() ? l.var() + 1 : -(l.var() + 1)) << " ";
    }
    out << "0\n";
  }
}

void build_multiplier(smt::Builder& b, std::size_t width) {
  const smt::BitVec x = b.var(width);
  const smt::BitVec y = b.var(width);
  b.require_eq(b.mul(x, y), b.constant(221, 2 * width));
  b.require(b.ule(b.constant(2, width), x));
  b.require(b.ule(b.constant(2, width), y));
}

void build_miter(smt::Builder& b, std::size_t width) {
  const smt::BitVec x = b.var(width);
  const smt::BitVec y = b.var(width);
  b.require(b.eq(b.mul(x, y), b.mul(y, x)).negated());
}

void build_pigeonhole(CollectSink& sink, sat::Solver& solver, int pigeons) {
  const int holes = pigeons - 1;
  std::vector<std::vector<int>> var(static_cast<std::size_t>(pigeons));
  for (auto& row : var) {
    for (int j = 0; j < holes; ++j) {
      row.push_back(solver.new_var());
      (void)sink.new_var();
    }
  }
  const auto add = [&](sat::Clause clause) {
    sink.add_clause(clause);
    solver.add_clause(std::move(clause));
  };
  for (int i = 0; i < pigeons; ++i) {
    sat::Clause clause;
    for (int j = 0; j < holes; ++j) {
      clause.push_back(sat::Lit(
          var[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], true));
    }
    add(std::move(clause));
  }
  for (int j = 0; j < holes; ++j) {
    for (int a = 0; a < pigeons; ++a) {
      for (int b = a + 1; b < pigeons; ++b) {
        add({sat::Lit(var[static_cast<std::size_t>(a)][static_cast<std::size_t>(j)],
                      false),
             sat::Lit(var[static_cast<std::size_t>(b)][static_cast<std::size_t>(j)],
                      false)});
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  enum class Instance { kNone, kMultiplier, kMiter, kPigeonhole };
  Instance instance = Instance::kNone;
  long long size = 0;
  bool tseitin = false;
  bool solve = false;
  int cut_size = 4;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_int = [&](long long min_value) -> long long {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs an argument\n";
        std::exit(usage());
      }
      char* end = nullptr;
      const long long value = std::strtoll(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || value < min_value) {
        std::cerr << arg << ": bad value " << argv[i] << "\n";
        std::exit(usage());
      }
      return value;
    };
    if (arg == "--multiplier") {
      instance = Instance::kMultiplier;
      size = next_int(1);
    } else if (arg == "--miter") {
      instance = Instance::kMiter;
      size = next_int(1);
    } else if (arg == "--pigeonhole") {
      instance = Instance::kPigeonhole;
      size = next_int(2);
    } else if (arg == "--tseitin") {
      tseitin = true;
    } else if (arg == "--cut-size") {
      cut_size = static_cast<int>(next_int(2));
      if (cut_size > 6) {
        std::cerr << "--cut-size: truth tables are 64-bit, so k <= 6\n";
        return usage();
      }
    } else if (arg == "--solve") {
      solve = true;
    } else if (arg == "-o") {
      if (i + 1 >= argc) {
        std::cerr << "-o needs an argument\n";
        return usage();
      }
      out_path = argv[++i];
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return usage();
    }
  }
  if (instance == Instance::kNone) {
    std::cerr << "pick an instance: --multiplier, --miter, or --pigeonhole\n";
    return usage();
  }

  sat::Solver solver;
  CollectSink collected;
  std::string comment;

  if (instance == Instance::kPigeonhole) {
    build_pigeonhole(collected, solver, static_cast<int>(size));
    comment = "speccc pigeonhole PHP(" + std::to_string(size) + "," +
              std::to_string(size - 1) + ")";
  } else {
    smt::BuilderOptions options;
    options.cnf.encoder = tseitin ? aig::CnfOptions::Encoder::kTseitin
                                  : aig::CnfOptions::Encoder::kCutMap;
    options.cnf.cut_size = cut_size;
    options.tee = &collected;
    smt::Builder builder(solver, options);
    const auto width = static_cast<std::size_t>(size);
    if (instance == Instance::kMultiplier) {
      build_multiplier(builder, width);
      comment = "speccc multiplier w" + std::to_string(size);
    } else {
      build_miter(builder, width);
      comment = "speccc commutativity miter w" + std::to_string(size);
    }
    builder.flush();
    comment += tseitin ? " (tseitin)"
                       : " (cut-mapped, k=" + std::to_string(cut_size) + ")";
    const aig::CnfStats& stats = builder.cnf_stats();
    std::cerr << "vars " << collected.num_vars() << ", clauses "
              << collected.clauses().size() << ", literals " << stats.literals
              << ", mapped gates " << stats.mapped_gates << "/"
              << stats.covered_gates << " covered\n";
  }

  if (out_path.empty()) {
    write_dimacs(std::cout, comment, collected.num_vars(),
                 collected.clauses());
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 2;
    }
    write_dimacs(out, comment, collected.num_vars(), collected.clauses());
  }

  if (solve) {
    const sat::Result result = solver.solve();
    const sat::Solver::Stats& stats = solver.stats();
    std::cerr << (result == sat::Result::kSat ? "s SATISFIABLE"
                                              : "s UNSATISFIABLE")
              << " (conflicts " << stats.conflicts << ", decisions "
              << stats.decisions << ", propagations " << stats.propagations
              << ")\n";
  }
  return 0;
}
