// speccc_load: load generator and soak client for speccc_serve.
//
// Drives the NDJSON protocol over loopback TCP with a workload of
// generated or corpus specifications, measures per-request latency, and
// verifies the protocol contract as it goes: every request gets exactly
// one well-formed response, correlated by id. Two modes:
//
//   closed-loop (default): --connections C threads, each holding one
//     connection with one request outstanding -- throughput follows
//     service capacity, the classic soak shape.
//   open-loop: --rate R sends R requests/second on one connection
//     regardless of completions (a reader thread collects responses), so
//     queueing and backpressure actually engage.
//
// Workload (same sources as speccc_batch, so outputs are comparable):
//   --generate N --seed S   N difftest-generated specs (seed-derived,
//                           identical to `speccc_batch --generate N --seed S`)
//   --corpus NAME           cara | tele | robot | table1
//   --requests M            total requests (default: workload size; larger
//                           cycles the workload round-robin)
//
// Scheduling mix:
//   --substrate SPEC        attach a per-request "substrate" field to every
//                           check ("auto", tableau | bounded | symbolic, or
//                           "race:a,b,..."); validated locally before the
//                           run, so a typo fails fast instead of filling
//                           the report with protocol errors
//   --deadline-ms D         deadline on selected requests (default none)
//   --deadline-fraction F   fraction of requests carrying the deadline
//                           (default 1.0 when --deadline-ms is set; picked
//                           deterministically: request k has a deadline iff
//                           fract(k * F) < F as computed by index striding)
//   --priority-spread P     cycle priorities 0..P-1 across requests
//
// Output and checking:
//   --canonical-out FILE    write each verdict's embedded canonical line,
//                           in request order, to FILE -- diffable against
//                           `speccc_batch --canonical` for the same
//                           workload (the CI serve smoke does exactly
//                           this). Requires every request to answer
//                           "result" (no deadlines/rejections in the run).
//   --quiet                 suppress the per-run latency report
//
// The report prints counts by response kind and latency p50/p95/p99.
// Rejections and deadline-exceeded responses are EXPECTED protocol
// outcomes, not errors. Exit codes: 0 no protocol errors; 3 protocol
// errors (missing/duplicate/malformed response, server "error" kind, or
// --canonical-out with a non-result answer); 1 usage or connect failure.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "batch/batch.hpp"
#include "batch/corpus_tasks.hpp"
#include "core/substrate.hpp"
#include "difftest/harness.hpp"
#include "serve/json.hpp"
#include "serve/net.hpp"
#include "util/diagnostics.hpp"

namespace {

using Clock = std::chrono::steady_clock;

int usage() {
  std::cerr
      << "usage: speccc_load (--port N | --port-file FILE)\n"
         "                   [--generate N] [--seed S] [--corpus NAME]\n"
         "                   [--requests M] [--connections C] [--rate R]\n"
         "                   [--substrate auto|NAME|race:a,b,...]\n"
         "                   [--duration S] [--deadline-ms D]\n"
         "                   [--deadline-fraction F] [--priority-spread P]\n"
         "                   [--canonical-out FILE] [--quiet]\n";
  return 1;
}

struct PlannedRequest {
  std::string id;
  std::string line;  // rendered NDJSON, newline-terminated
};

struct Outcome {
  std::string kind;
  std::string canonical;
  double latency_seconds = 0.0;
  bool answered = false;
};

/// Shared run state: the request plan, one outcome slot per request, and
/// the protocol-error tally.
struct Run {
  std::vector<PlannedRequest> plan;
  std::vector<Outcome> outcomes;  // indexed like plan
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> protocol_errors{0};
  std::mutex mutex;  // guards outcomes writes from reader threads
};

std::size_t index_of(const Run& run, const std::string& id) {
  // Ids are "q<index>"; anything else is a protocol error.
  if (id.size() < 2 || id[0] != 'q') return run.plan.size();
  std::size_t index = 0;
  for (std::size_t i = 1; i < id.size(); ++i) {
    if (id[i] < '0' || id[i] > '9') return run.plan.size();
    index = index * 10 + static_cast<std::size_t>(id[i] - '0');
  }
  return index < run.plan.size() ? index : run.plan.size();
}

/// Record one response line against its request. Returns false on a
/// protocol violation (unparseable, unknown id, duplicate).
bool record_response(Run& run, const std::string& line,
                     const std::map<std::size_t, Clock::time_point>& sent_at) {
  using speccc::serve::json::Kind;
  std::string kind;
  std::string id;
  std::string canonical;
  try {
    const auto doc = speccc::serve::json::parse(line);
    if (doc.kind() != Kind::kObject) throw speccc::util::ParseError("not an object");
    if (const auto* v = doc.find("id"); v != nullptr) id = v->as_string();
    if (const auto* v = doc.find("kind"); v != nullptr) kind = v->as_string();
    if (const auto* v = doc.find("canonical"); v != nullptr) {
      canonical = v->as_string();
    }
  } catch (const std::exception& e) {
    std::cerr << "protocol error: unparseable response: " << e.what() << "\n";
    return false;
  }
  const std::size_t index = index_of(run, id);
  if (index >= run.plan.size() || kind.empty()) {
    std::cerr << "protocol error: response with unknown id \"" << id << "\"\n";
    return false;
  }
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(run.mutex);
  Outcome& outcome = run.outcomes[index];
  if (outcome.answered) {
    std::cerr << "protocol error: duplicate response for \"" << id << "\"\n";
    return false;
  }
  outcome.answered = true;
  outcome.kind = kind;
  outcome.canonical = std::move(canonical);
  if (const auto it = sent_at.find(index); it != sent_at.end()) {
    outcome.latency_seconds =
        std::chrono::duration<double>(now - it->second).count();
  }
  if (kind == "error") {
    std::cerr << "protocol error: server error for \"" << id << "\": " << line
              << "\n";
    return false;
  }
  return true;
}

/// Closed-loop worker: one connection, one request outstanding at a time.
void closed_loop_worker(std::uint16_t port, Run& run) {
  speccc::serve::net::Socket socket;
  try {
    socket = speccc::serve::net::dial(port);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    run.protocol_errors.fetch_add(1);
    return;
  }
  speccc::serve::net::LineReader reader(socket);
  std::map<std::size_t, Clock::time_point> sent_at;
  std::string line;
  for (;;) {
    const std::size_t index = run.next.fetch_add(1);
    if (index >= run.plan.size()) return;
    sent_at[index] = Clock::now();
    if (!socket.send_all(run.plan[index].line)) {
      std::cerr << "protocol error: connection lost mid-run\n";
      run.protocol_errors.fetch_add(1);
      return;
    }
    if (!reader.read_line(line)) {
      std::cerr << "protocol error: connection closed before response\n";
      run.protocol_errors.fetch_add(1);
      return;
    }
    if (!record_response(run, line, sent_at)) run.protocol_errors.fetch_add(1);
  }
}

/// Open-loop run: pace sends on one connection at `rate` req/s; a reader
/// thread collects responses until all sent requests have answered or the
/// connection closes.
void open_loop_run(std::uint16_t port, Run& run, double rate,
                   double duration_seconds) {
  speccc::serve::net::Socket socket;
  try {
    socket = speccc::serve::net::dial(port);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    run.protocol_errors.fetch_add(1);
    return;
  }

  std::mutex sent_mutex;
  std::map<std::size_t, Clock::time_point> sent_at;
  std::atomic<std::size_t> sent_count{0};
  std::atomic<bool> sending_done{false};

  std::thread reader_thread([&] {
    speccc::serve::net::LineReader reader(socket);
    std::string line;
    std::size_t received = 0;
    for (;;) {
      if (sending_done.load() && received >= sent_count.load()) return;
      if (!reader.read_line(line)) {
        if (!sending_done.load() || received < sent_count.load()) {
          std::cerr << "protocol error: connection closed with "
                    << (sent_count.load() - received) << " responses pending\n";
          run.protocol_errors.fetch_add(1);
        }
        return;
      }
      ++received;
      std::map<std::size_t, Clock::time_point> snapshot;
      {
        std::lock_guard<std::mutex> lock(sent_mutex);
        snapshot = sent_at;
      }
      if (!record_response(run, line, snapshot)) {
        run.protocol_errors.fetch_add(1);
      }
    }
  });

  const Clock::time_point start = Clock::now();
  const auto interval =
      std::chrono::duration<double>(rate > 0.0 ? 1.0 / rate : 0.0);
  for (std::size_t index = 0; index < run.plan.size(); ++index) {
    const Clock::time_point slot =
        start + std::chrono::duration_cast<Clock::duration>(
                    interval * static_cast<double>(index));
    std::this_thread::sleep_until(slot);
    if (duration_seconds > 0.0 &&
        std::chrono::duration<double>(Clock::now() - start).count() >
            duration_seconds) {
      break;
    }
    {
      std::lock_guard<std::mutex> lock(sent_mutex);
      sent_at[index] = Clock::now();
    }
    sent_count.fetch_add(1);
    if (!socket.send_all(run.plan[index].line)) {
      std::cerr << "protocol error: connection lost mid-run\n";
      run.protocol_errors.fetch_add(1);
      break;
    }
  }
  sending_done.store(true);
  reader_thread.join();
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t low = static_cast<std::size_t>(rank);
  const std::size_t high = std::min(low + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(low);
  return sorted[low] * (1.0 - frac) + sorted[high] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace speccc;

  int port = 0;
  std::string port_file;
  int generate_count = 0;
  std::uint64_t seed = 1;
  std::string corpus_name;
  std::size_t requests = 0;
  int connections = 1;
  double rate = 0.0;
  double duration_seconds = 0.0;
  double deadline_ms = 0.0;
  double deadline_fraction = -1.0;
  int priority_spread = 1;
  std::string substrate_spec;
  std::string canonical_out;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_arg = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs an argument\n";
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--port") port = std::atoi(next_arg().c_str());
    else if (arg == "--port-file") port_file = next_arg();
    else if (arg == "--generate") generate_count = std::atoi(next_arg().c_str());
    else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(
          std::strtoull(next_arg().c_str(), nullptr, 10));
    } else if (arg == "--corpus") corpus_name = next_arg();
    else if (arg == "--requests") {
      requests = static_cast<std::size_t>(std::atoll(next_arg().c_str()));
    } else if (arg == "--connections") {
      connections = std::atoi(next_arg().c_str());
      if (connections < 1) {
        std::cerr << "--connections must be at least 1\n";
        return usage();
      }
    } else if (arg == "--rate") rate = std::atof(next_arg().c_str());
    else if (arg == "--duration") duration_seconds = std::atof(next_arg().c_str());
    else if (arg == "--deadline-ms") deadline_ms = std::atof(next_arg().c_str());
    else if (arg == "--deadline-fraction") {
      deadline_fraction = std::atof(next_arg().c_str());
    } else if (arg == "--priority-spread") {
      priority_spread = std::atoi(next_arg().c_str());
      if (priority_spread < 1) {
        std::cerr << "--priority-spread must be at least 1\n";
        return usage();
      }
    } else if (arg == "--substrate") {
      substrate_spec = next_arg();
      try {
        (void)core::SubstrateSpec::parse(substrate_spec);
      } catch (const util::InvalidInputError& e) {
        std::cerr << "invalid --substrate: " << e.what() << "\n";
        return usage();
      }
    } else if (arg == "--canonical-out") canonical_out = next_arg();
    else if (arg == "--quiet") quiet = true;
    else {
      std::cerr << "unknown option: " << arg << "\n";
      return usage();
    }
  }

  if (!port_file.empty()) {
    std::ifstream in(port_file);
    if (!(in >> port)) {
      std::cerr << "cannot read a port from " << port_file << "\n";
      return 1;
    }
  }
  if (port <= 0 || port > 65535) {
    std::cerr << "need --port or --port-file naming a TCP port\n";
    return usage();
  }

  // Build the workload, in the same order speccc_batch would check it.
  std::vector<batch::SpecTask> workload;
  try {
    if (!corpus_name.empty()) {
      if (corpus_name == "cara") workload = batch::cara_tasks();
      else if (corpus_name == "tele") workload = batch::telepromise_tasks();
      else if (corpus_name == "robot") workload = batch::robot_tasks();
      else if (corpus_name == "table1") workload = batch::table1_tasks();
      else {
        std::cerr << "unknown corpus: " << corpus_name << "\n";
        return usage();
      }
    }
    for (int index = 0; index < generate_count; ++index) {
      auto spec = difftest::generated_spec(seed, index);
      workload.push_back({std::move(spec.name), std::move(spec.requirements)});
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (workload.empty()) {
    std::cerr << "no workload (--generate or --corpus)\n";
    return usage();
  }
  if (requests == 0) requests = workload.size();
  if (deadline_ms > 0.0 && deadline_fraction < 0.0) deadline_fraction = 1.0;
  if (deadline_fraction < 0.0) deadline_fraction = 0.0;

  // Render every request line upfront so the send path is pure I/O.
  Run run;
  run.plan.reserve(requests);
  run.outcomes.resize(requests);
  double deadline_acc = 0.0;
  for (std::size_t k = 0; k < requests; ++k) {
    const batch::SpecTask& spec = workload[k % workload.size()];
    serve::json::Object o;
    o["method"] = serve::json::Value("check");
    o["id"] = serve::json::Value("q" + std::to_string(k));
    o["name"] = serve::json::Value(spec.name);
    serve::json::Array reqs;
    for (const translate::RequirementText& r : spec.requirements) {
      serve::json::Object item;
      item["id"] = serve::json::Value(r.id);
      item["text"] = serve::json::Value(r.text);
      reqs.push_back(serve::json::Value(std::move(item)));
    }
    o["requirements"] = serve::json::Value(std::move(reqs));
    if (!substrate_spec.empty()) {
      o["substrate"] = serve::json::Value(substrate_spec);
    }
    if (priority_spread > 1) {
      o["priority"] = serve::json::Value(
          static_cast<std::int64_t>(k % static_cast<std::size_t>(priority_spread)));
    }
    // Deterministic deadline mix: an accumulator crosses 1.0 on exactly
    // round(fraction * requests) of the indices.
    deadline_acc += deadline_fraction;
    if (deadline_ms > 0.0 && deadline_acc >= 1.0) {
      deadline_acc -= 1.0;
      o["deadline_ms"] = serve::json::Value(deadline_ms);
    }
    PlannedRequest planned;
    planned.id = "q" + std::to_string(k);
    serve::json::write(planned.line, serve::json::Value(std::move(o)));
    planned.line += '\n';
    run.plan.push_back(std::move(planned));
  }

  const Clock::time_point start = Clock::now();
  if (rate > 0.0) {
    open_loop_run(static_cast<std::uint16_t>(port), run, rate,
                  duration_seconds);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(connections));
    for (int c = 0; c < connections; ++c) {
      workers.emplace_back(closed_loop_worker, static_cast<std::uint16_t>(port),
                           std::ref(run));
    }
    for (std::thread& worker : workers) worker.join();
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Tally. Unanswered requests that were never sent (open-loop --duration
  // cut the plan short) are fine; unanswered SENT requests were already
  // counted as protocol errors by the readers.
  std::size_t results = 0, rejected = 0, deadline_exceeded = 0, unanswered = 0;
  std::vector<double> latencies;
  for (const Outcome& outcome : run.outcomes) {
    if (!outcome.answered) {
      ++unanswered;
      continue;
    }
    latencies.push_back(outcome.latency_seconds);
    if (outcome.kind == "result") ++results;
    else if (outcome.kind == "rejected") ++rejected;
    else if (outcome.kind == "deadline-exceeded") ++deadline_exceeded;
  }
  std::sort(latencies.begin(), latencies.end());

  if (!canonical_out.empty()) {
    std::ofstream out(canonical_out);
    if (!out) {
      std::cerr << "cannot write " << canonical_out << "\n";
      return 1;
    }
    for (std::size_t k = 0; k < run.outcomes.size(); ++k) {
      const Outcome& outcome = run.outcomes[k];
      if (!outcome.answered || outcome.kind != "result") {
        std::cerr << "canonical-out: request q" << k
                  << " did not answer with a result ("
                  << (outcome.answered ? outcome.kind : "unanswered")
                  << ")\n";
        run.protocol_errors.fetch_add(1);
        continue;
      }
      out << outcome.canonical << "\n";
    }
  }

  if (!quiet) {
    std::cerr << "speccc_load: " << run.plan.size() << " planned, " << results
              << " results, " << rejected << " rejected, " << deadline_exceeded
              << " deadline-exceeded, " << unanswered << " unanswered in "
              << wall << "s\n";
    if (!latencies.empty()) {
      std::cerr << "  latency p50=" << percentile(latencies, 0.50) * 1000.0
                << "ms p95=" << percentile(latencies, 0.95) * 1000.0
                << "ms p99=" << percentile(latencies, 0.99) * 1000.0 << "ms\n";
    }
  }
  return run.protocol_errors.load() == 0 ? 0 : 3;
}
