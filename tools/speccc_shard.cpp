// speccc_shard: distributed corpus checking over speccc_batch workers.
//
// Deals the task list round-robin across K `speccc_batch` subprocesses
// (shard/coordinator.hpp), merges the per-shard reports, and prints one
// input-ordered report whose canonical rendering is byte-identical to the
// equivalent unsharded `speccc_batch --canonical` run -- sharding, like
// --jobs and --cache, never touches the determinism contract. Worker
// failures (crashes, bad exits, timeouts, malformed reports) are retried
// with bounded exponential backoff and surfaced in the non-canonical
// statistics; a shard that exhausts its retries is a structured per-shard
// error and exit code 3.
//
//   $ ./speccc_shard --corpus table1 --shards 4
//   $ ./speccc_shard path/to/specs/ --shards 8 --jobs-per-shard 2 --cache
//   $ ./speccc_shard --corpus table1 --cache-snapshot warm.snap,warm.snap
//
// Inputs: exactly speccc_batch's (FILE | DIR, --manifest, --corpus,
// --generate/--seed) -- they are handed to every worker verbatim, and the
// worker selects its shard with --shard-index/--shard-count.
//
// Coordinator options:
//   --shards K           worker subprocesses (default 2)
//   --jobs-per-shard N   --jobs inside each worker (default 1)
//   --retries N          per-shard retry budget (default 2): a shard may
//                        run up to N+1 attempts before it is declared dead
//   --worker-timeout S   per-attempt wall-clock limit in seconds; expired
//                        workers are SIGKILLed and retried (default 0 =
//                        unlimited)
//   --worker CMD         worker executable (default: speccc_batch next to
//                        this binary). Test harnesses point this at
//                        fault-injection wrappers
//   --scratch DIR        keep per-shard outputs in DIR (default: a fresh
//                        temporary directory, removed afterwards)
//   --cache-snapshot IN,OUT
//                        warm-start every worker from snapshot IN, then
//                        merge the per-shard stores into snapshot OUT
//                        (either side may be empty). Implies --cache
//   --json FILE          write the merged JSON report ('-' for stdout):
//                        totals, summed cache counters, and the per-shard
//                        attempt history
//   --canonical          print the canonical merged report instead of the
//                        human summary
//   --quiet              suppress the per-shard progress notes
//
// Worker passthrough (forwarded verbatim): --cache, --cache-max,
// --time-budget, --substrate, --crosscheck, --diagnose,
// --max-correction-sets, --strict-next.
//
// Exit code (speccc_batch-compatible): 0 all consistent; 2 some spec
// inconsistent; 3 errors, shard failures, budget exhaustion, cancellation,
// or substrate disagreement; 1 usage.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "shard/coordinator.hpp"
#include "util/diagnostics.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: speccc_shard [FILE|DIR ...] [--manifest FILE]\n"
         "                    [--corpus cara|tele|robot|table1]\n"
         "                    [--generate N] [--seed S]\n"
         "                    [--shards K] [--jobs-per-shard N]\n"
         "                    [--retries N] [--worker-timeout S]\n"
         "                    [--worker CMD] [--scratch DIR]\n"
         "                    [--json FILE] [--canonical] [--quiet]\n"
         "                    [--cache] [--cache-max N]\n"
         "                    [--cache-snapshot IN,OUT]\n"
         "                    [--time-budget S]\n"
         "                    [--substrate auto|NAME|race:a,b,...]\n"
         "                    [--crosscheck] [--diagnose]\n"
         "                    [--max-correction-sets N] [--strict-next]\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace speccc;

  shard::CoordinatorOptions options;
  std::string json_path;
  bool canonical_output = false;
  bool quiet = false;
  bool want_cache = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_arg = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs an argument\n";
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--shards") {
      const long long n = std::atoll(next_arg().c_str());
      if (n < 1) {
        std::cerr << "--shards must be at least 1\n";
        return usage();
      }
      options.shards = static_cast<std::size_t>(n);
    } else if (arg == "--jobs-per-shard") {
      options.jobs_per_shard = std::atoi(next_arg().c_str());
      if (options.jobs_per_shard < 1) {
        std::cerr << "--jobs-per-shard must be at least 1\n";
        return usage();
      }
    } else if (arg == "--retries") {
      options.retries = std::atoi(next_arg().c_str());
      if (options.retries < 0) {
        std::cerr << "--retries must be non-negative\n";
        return usage();
      }
    } else if (arg == "--worker-timeout") {
      options.worker_timeout_seconds = std::atof(next_arg().c_str());
    } else if (arg == "--worker") {
      options.worker_command = {next_arg()};
    } else if (arg == "--scratch") {
      options.scratch_dir = next_arg();
      options.keep_scratch = true;
    } else if (arg == "--cache-snapshot") {
      const std::string spec = next_arg();
      const auto comma = spec.find(',');
      if (comma == std::string::npos) {
        std::cerr << "--cache-snapshot needs IN,OUT (either side may be "
                     "empty)\n";
        return usage();
      }
      options.snapshot_in = spec.substr(0, comma);
      options.snapshot_out = spec.substr(comma + 1);
      want_cache = true;
    } else if (arg == "--json") {
      json_path = next_arg();
    } else if (arg == "--canonical") {
      canonical_output = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--cache" || arg == "--crosscheck" ||
               arg == "--diagnose" || arg == "--strict-next") {
      if (arg == "--cache") want_cache = true;
      options.worker_args.push_back(arg);
    } else if (arg == "--cache-max" || arg == "--time-budget" ||
               arg == "--substrate" || arg == "--max-correction-sets" ||
               arg == "--manifest" || arg == "--corpus" ||
               arg == "--generate" || arg == "--seed") {
      // Valued passthrough / input options: forward the pair verbatim.
      options.worker_args.push_back(arg);
      options.worker_args.push_back(next_arg());
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return usage();
    } else {
      options.worker_args.push_back(arg);  // FILE | DIR input
    }
  }
  // --cache-snapshot implies --cache in the workers (a snapshot of a
  // store that never existed would always be empty).
  if (want_cache &&
      std::find(options.worker_args.begin(), options.worker_args.end(),
                "--cache") == options.worker_args.end()) {
    options.worker_args.push_back("--cache");
  }

  if (options.worker_args.empty()) {
    std::cerr << "no specifications to check\n";
    return usage();
  }

  shard::MergedReport report;
  try {
    report = shard::run_sharded(options);
  } catch (const util::SpecError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  std::ostream& text_out = json_path == "-" ? std::cerr : std::cout;
  if (canonical_output) {
    // The determinism contract: these bytes match the unsharded
    // `speccc_batch --canonical` run exactly. Everything else (attempt
    // history, timings, cache counters) stays off this stream.
    text_out << shard::canonical(report);
    if (!report.complete && !quiet) shard::print_summary(std::cerr, report);
  } else {
    shard::print_summary(text_out, report);
  }
  if (!json_path.empty()) {
    if (json_path == "-") {
      std::cout << shard::to_json(report);
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
      }
      out << shard::to_json(report);
      if (!quiet) std::cerr << "JSON report written to " << json_path << "\n";
    }
  }
  return report.exit_code();
}
