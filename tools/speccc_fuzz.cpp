// speccc_fuzz: the standing differential oracle for the three decision
// substrates (GPVW tableau, bounded synthesis, symbolic BDD game).
//
// Draws seeded random LTL formulas and generated specifications, runs the
// cross-check properties of difftest/oracle.hpp, and greedily shrinks any
// disagreement before reporting it. A third lane draws seeded random
// circuits and cross-checks the two AIG -> CNF encoders (cut mapper vs
// Tseitin) for equisatisfiability plus model replay (difftest/circuit.hpp).
// Every failure prints a one-command reproduction; re-running it replays
// generation, oracle randomness, and shrinking bit-for-bit.
//
//   $ ./speccc_fuzz --seed 42 --formulas 500 --specs 50
//
// Options:
//   --seed N          master seed (default 1)
//   --formulas N      random formula cases (default 500)
//   --specs N         generated specification cases (default 50)
//   --circuits N      random circuit encoder cross-checks (default 50)
//   --formula-case K  replay only formula case K
//   --spec-case K     replay only spec case K
//   --circuit-case K  replay only circuit case K
//   --max-depth D     formula depth budget (default 4)
//   --props N         proposition pool size (default 3)
//   --lassos N        random lassos per formula (default 4)
//   --no-shrink       report raw counterexamples without minimizing
//   --quiet           suppress progress narration
//
// Exit code: 0 when every cross-check holds and the formula quota was
// met, 1 on any disagreement, 2 on usage errors, 3 when mass tableau-cap
// skips left the quota unmet (a green exit must mean real coverage).
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "difftest/circuit.hpp"
#include "difftest/harness.hpp"

namespace {

int usage() {
  std::cerr << "usage: speccc_fuzz [--seed N] [--formulas N] [--specs N]\n"
               "                   [--circuits N] [--formula-case K]\n"
               "                   [--spec-case K] [--circuit-case K]\n"
               "                   [--max-depth D] [--props N] [--lassos N]\n"
               "                   [--no-shrink] [--quiet]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace speccc;
  difftest::RunOptions options;
  options.progress = &std::cerr;
  std::size_t props = 0;
  int circuit_cases = 50;
  int only_circuit_case = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_int = [&](long long min_value) -> long long {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs an argument\n";
        std::exit(usage());
      }
      char* end = nullptr;
      const long long value = std::strtoll(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || value < min_value) {
        std::cerr << arg << ": bad value " << argv[i] << "\n";
        std::exit(usage());
      }
      return value;
    };
    if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(next_int(0));
    } else if (arg == "--formulas") {
      options.formula_cases = static_cast<int>(next_int(0));
    } else if (arg == "--specs") {
      options.spec_cases = static_cast<int>(next_int(0));
    } else if (arg == "--formula-case") {
      options.only_formula_case = static_cast<int>(next_int(0));
    } else if (arg == "--circuits") {
      circuit_cases = static_cast<int>(next_int(0));
    } else if (arg == "--spec-case") {
      options.only_spec_case = static_cast<int>(next_int(0));
    } else if (arg == "--circuit-case") {
      only_circuit_case = static_cast<int>(next_int(0));
    } else if (arg == "--max-depth") {
      options.formula.max_depth = static_cast<std::size_t>(next_int(1));
    } else if (arg == "--props") {
      props = static_cast<std::size_t>(next_int(1));
    } else if (arg == "--lassos") {
      options.oracle.lassos_per_formula = static_cast<int>(next_int(1));
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--quiet") {
      options.progress = nullptr;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return usage();
    }
  }
  if (props > 0) {
    // The formula pool and the lasso pool must match, or the random-lasso
    // cross-checks would starve formulas of their propositions.
    options.formula.props = difftest::proposition_pool(props);
    options.oracle.lasso.props = options.formula.props;
  }

  // Single-case replay discipline matches the harness: replaying one case
  // of any lane runs nothing else.
  const bool single_case = options.only_formula_case >= 0 ||
                           options.only_spec_case >= 0 ||
                           only_circuit_case >= 0;
  difftest::RunReport report;
  if (only_circuit_case < 0 || options.only_formula_case >= 0 ||
      options.only_spec_case >= 0) {
    report = difftest::run(options);
    std::cout << difftest::describe(report);
  }

  difftest::CircuitReport circuits;
  if (!single_case || only_circuit_case >= 0) {
    if (options.progress != nullptr) {
      *options.progress << "circuit encoder cross-checks...\n";
    }
    const int cases = only_circuit_case >= 0 ? only_circuit_case + 1
                                             : circuit_cases;
    circuits = difftest::run_circuits(options.seed, cases, {},
                                      only_circuit_case);
    std::cout << difftest::describe(circuits);
  }

  if (!report.ok() || !circuits.ok()) {
    std::cout << "\ndifferential check FAILED\n";
    return 1;
  }
  // A green run must mean the quota was met: mass skips at the tableau cap
  // (e.g. a GPVW regression inflating node counts) must not pass CI.
  if (!single_case && report.formulas_checked < options.formula_cases) {
    std::cout << "formula quota MISSED: " << report.formulas_checked << "/"
              << options.formula_cases << " checked ("
              << report.formulas_skipped
              << " skipped at the tableau cap); raise --max-depth caps or "
                 "OracleOptions::max_tableau_nodes\n";
    return 3;
  }
  std::cout << "all substrates agree\n";
  return 0;
}
