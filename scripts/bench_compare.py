#!/usr/bin/env python3
"""Merge Google Benchmark JSON outputs and compare against a baseline.

Used by the CI bench job:

    bench_compare.py --baseline bench/BENCH_baseline.json \
        --out BENCH_latest.json fig1.json substrates.json batch.json

Merges the per-binary benchmark JSON files into one document (first file's
context wins, benchmarks arrays concatenate), writes it to --out, and
compares every benchmark's real_time against the committed baseline by
name, printing deltas worst-regression-first. Regressions beyond
--threshold percent produce warnings (GitHub
``::warning::`` annotations when running under Actions) but exit 0 --
benchmark noise on shared runners must not gate merges. Pass --strict to
exit 1 on regressions instead.

A baseline benchmark missing from the run is FATAL (exit 1) regardless of
--strict: a bench target that silently stops running (dropped from the CI
subset, renamed, or skipped by a configure failure) would otherwise let
its regressions go unnoticed forever. New benchmarks without a baseline
entry are reported but never fatal (add them to the baseline when they
stabilize).

Only the Python standard library is used.
"""
from __future__ import annotations

import argparse
import json
import os
import sys

# Normalize every reading to nanoseconds before comparing.
_TIME_UNITS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def merge(paths: list[str]) -> dict:
    merged: dict = {}
    benchmarks: list[dict] = []
    for path in paths:
        doc = load(path)
        if not merged:
            merged = {k: v for k, v in doc.items() if k != "benchmarks"}
        benchmarks.extend(doc.get("benchmarks", []))
    merged["benchmarks"] = benchmarks
    return merged


def real_times_ns(doc: dict) -> dict[str, float]:
    times: dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        value = bench.get("real_time")
        unit = _TIME_UNITS.get(bench.get("time_unit", "ns"))
        if name is None or value is None or unit is None:
            continue
        times[name] = float(value) * unit
    return times


def warn(message: str) -> None:
    if os.environ.get("GITHUB_ACTIONS") == "true":
        print(f"::warning::{message}")
    else:
        print(f"warning: {message}", file=sys.stderr)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", nargs="+",
                        help="benchmark JSON files to merge")
    parser.add_argument("--baseline", default="bench/BENCH_baseline.json",
                        help="committed baseline to compare against")
    parser.add_argument("--out", default="BENCH_latest.json",
                        help="merged output path")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="regression warning threshold in percent")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regressions instead of warning")
    args = parser.parse_args()

    latest = merge(args.results)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(latest, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out} ({len(latest['benchmarks'])} benchmarks)")

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; comparison skipped")
        return 0

    base_times = real_times_ns(load(args.baseline))
    new_times = real_times_ns(latest)

    for name in sorted(set(new_times) - set(base_times)):
        print(f"  new benchmark (no baseline): {name}")

    # Worst regression first, so the line that matters is the line you
    # read first (and the one a truncated CI log still shows).
    deltas = sorted(
        ((100.0 * (new_times[n] - base_times[n]) / base_times[n], n)
         for n in new_times if base_times.get(n, 0) > 0),
        reverse=True)
    regressions = 0
    for delta, name in deltas:
        base, new = base_times[name], new_times[name]
        marker = ""
        if delta > args.threshold:
            regressions += 1
            marker = "  <-- REGRESSION"
            warn(f"{name}: {delta:+.1f}% vs baseline "
                 f"({base / 1e6:.3f} ms -> {new / 1e6:.3f} ms)")
        print(f"  {name}: {delta:+.1f}%{marker}")
    missing = sorted(set(base_times) - set(new_times))
    for name in missing:
        warn(f"baseline benchmark missing from this run: {name}")
    if missing:
        print(f"error: {len(missing)} baseline benchmark(s) did not run: "
              + ", ".join(missing) + "; a silently-skipped bench target "
              "cannot be allowed to regress unnoticed (remove stale "
              "baseline entries deliberately)",
              file=sys.stderr)
        return 1

    if regressions:
        print(f"{regressions} benchmark(s) regressed more than "
              f"{args.threshold:.0f}% (warning only)" if not args.strict else
              f"{regressions} benchmark(s) regressed more than "
              f"{args.threshold:.0f}%")
        return 1 if args.strict else 0
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # output piped into head et al.
        sys.exit(0)
