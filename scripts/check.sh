#!/usr/bin/env bash
# Tier-1 verify in one command: configure + build + ctest + batch smoke.
#   scripts/check.sh [-j N] [-L label] [-LE label] [extra cmake args...]
#
# -L/-LE (and their long forms --label-regex/--label-exclude) are forwarded
# to ctest so label filters work through the wrapper:
#   scripts/check.sh -L tier1      # the fast per-module gate
#   scripts/check.sh -L difftest   # the differential oracle harness
# -j N overrides the build/ctest parallelism AND the worker count of the
# speccc_batch smoke (default: nproc / 2 workers).
# Everything else is passed to cmake (e.g. -DSPECCC_SANITIZE=ON).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
batch_jobs=2

cmake_args=()
ctest_args=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    -j)
      if [[ $# -lt 2 ]]; then
        echo "error: -j needs a job count" >&2
        exit 2
      fi
      jobs="$2"
      batch_jobs="$2"
      shift 2
      ;;
    -L|-LE|--label-regex|--label-exclude)
      if [[ $# -lt 2 ]]; then
        echo "error: $1 needs a label argument" >&2
        exit 2
      fi
      ctest_args+=("$1" "$2")
      shift 2
      ;;
    *)
      cmake_args+=("$1")
      shift
      ;;
  esac
done

cmake -B "$build_dir" -S "$repo_root" ${cmake_args[@]+"${cmake_args[@]}"}
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" \
  ${ctest_args[@]+"${ctest_args[@]}"}

# Batch smoke: the parallel checker over the example specification
# documents (skipped when tools were configured off). Exit code 0 means
# every example spec is consistent and no worker errored.
batch_bin="$build_dir/tools/speccc_batch"
if [[ -x "$batch_bin" ]]; then
  echo "speccc_batch smoke (--jobs $batch_jobs) over examples/specs"
  "$batch_bin" --jobs "$batch_jobs" --quiet "$repo_root/examples/specs"
  # Cache smoke: the canonical report must be byte-identical with the
  # memoization store on vs off (cache/store.hpp's determinism contract).
  echo "speccc_batch cache smoke (canonical diff, cache on vs off)"
  "$batch_bin" --jobs "$batch_jobs" --quiet --canonical \
    "$repo_root/examples/specs" > "$build_dir/batch-smoke-plain.txt"
  "$batch_bin" --jobs "$batch_jobs" --quiet --canonical --cache \
    "$repo_root/examples/specs" > "$build_dir/batch-smoke-cache.txt"
  diff "$build_dir/batch-smoke-plain.txt" "$build_dir/batch-smoke-cache.txt"
  # Race smoke: portfolio racing is verdict-transparent -- the canonical
  # report must be byte-identical racing on vs off (core/portfolio.hpp's
  # determinism contract).
  echo "speccc_batch race smoke (canonical diff, race on vs off)"
  "$batch_bin" --jobs "$batch_jobs" --quiet --canonical \
    --substrate race:tableau,bounded,symbolic \
    "$repo_root/examples/specs" > "$build_dir/batch-smoke-race.txt"
  diff "$build_dir/batch-smoke-plain.txt" "$build_dir/batch-smoke-race.txt"
  # Diagnosis smoke 1: over an all-consistent corpus, --diagnose must not
  # change a byte of the canonical report (MCS enumeration only triggers
  # on genuinely inconsistent specs; batch/batch.hpp's input-purity rule).
  echo "speccc_batch diagnosis smoke (canonical diff, --diagnose on vs off)"
  "$batch_bin" --jobs "$batch_jobs" --quiet --canonical --diagnose \
    "$repo_root/examples/specs" > "$build_dir/batch-smoke-diagnose.txt"
  diff "$build_dir/batch-smoke-plain.txt" "$build_dir/batch-smoke-diagnose.txt"
  # Diagnosis smoke 2: the hand-written multi-fault specs must come back
  # inconsistent (exit 2) with a MUS and correction sets on every row.
  echo "speccc_batch diagnosis smoke over examples/specs/faults"
  fault_report="$build_dir/batch-smoke-faults.txt"
  set +e
  "$batch_bin" --jobs "$batch_jobs" --quiet --canonical --diagnose \
    "$repo_root/examples/specs/faults" > "$fault_report"
  fault_status=$?
  set -e
  if [[ "$fault_status" -ne 2 ]]; then
    echo "error: faults corpus expected exit 2 (inconsistent), got $fault_status" >&2
    exit 1
  fi
  if grep -qv 'mus=.* mcs=' "$fault_report"; then
    echo "error: a faults row is missing its mus=/mcs= diagnosis:" >&2
    cat "$fault_report" >&2
    exit 1
  fi
  # Encoder smoke: the CNF encoder is verdict-transparent -- the Table I
  # canonical report through the SMT time-abstraction backend must be
  # byte-identical between the cut mapper and the Tseitin lane, with the
  # memoization store on or off (the cache key distinguishes encoders, so
  # a cached tseitin verdict must never answer a mapped query).
  echo "speccc_batch encoder smoke (Table I canonical diff, mapped vs tseitin, cache on/off)"
  "$batch_bin" --jobs "$batch_jobs" --quiet --canonical --corpus table1 \
    --timeabs smt --smt-encoder mapped \
    > "$build_dir/batch-smoke-enc-mapped.txt"
  "$batch_bin" --jobs "$batch_jobs" --quiet --canonical --corpus table1 \
    --timeabs smt --smt-encoder tseitin \
    > "$build_dir/batch-smoke-enc-tseitin.txt"
  diff "$build_dir/batch-smoke-enc-mapped.txt" "$build_dir/batch-smoke-enc-tseitin.txt"
  "$batch_bin" --jobs "$batch_jobs" --quiet --canonical --corpus table1 \
    --timeabs smt --smt-encoder mapped --cache \
    > "$build_dir/batch-smoke-enc-mapped-cache.txt"
  "$batch_bin" --jobs "$batch_jobs" --quiet --canonical --corpus table1 \
    --timeabs smt --smt-encoder tseitin --cache \
    > "$build_dir/batch-smoke-enc-tseitin-cache.txt"
  diff "$build_dir/batch-smoke-enc-mapped.txt" "$build_dir/batch-smoke-enc-mapped-cache.txt"
  diff "$build_dir/batch-smoke-enc-mapped.txt" "$build_dir/batch-smoke-enc-tseitin-cache.txt"
  # Shard smoke: the subprocess coordinator's interleaved merge must be
  # byte-identical to the unsharded canonical report
  # (shard/coordinator.hpp's determinism contract).
  shard_bin="$build_dir/tools/speccc_shard"
  if [[ -x "$shard_bin" ]]; then
    echo "speccc_shard smoke (canonical diff, 3 shards vs unsharded)"
    "$shard_bin" --shards 3 --jobs-per-shard "$batch_jobs" --quiet --canonical \
      "$repo_root/examples/specs" > "$build_dir/batch-smoke-shard.txt"
    diff "$build_dir/batch-smoke-plain.txt" "$build_dir/batch-smoke-shard.txt"
  fi
  # Snapshot smoke: a cold run that saves a warm-start snapshot and a warm
  # run that loads it must both match the plain canonical report, and the
  # warm run must be all hits (cache/snapshot.hpp's exactness contract).
  echo "speccc_batch snapshot smoke (save, reload, assert zero misses)"
  snap="$build_dir/batch-smoke.snap"
  rm -f "$snap"
  "$batch_bin" --jobs "$batch_jobs" --quiet --canonical \
    --cache-snapshot ",$snap" \
    "$repo_root/examples/specs" > "$build_dir/batch-smoke-snap-cold.txt"
  diff "$build_dir/batch-smoke-plain.txt" "$build_dir/batch-smoke-snap-cold.txt"
  "$batch_bin" --jobs "$batch_jobs" --quiet --canonical --cache-stats \
    --cache-snapshot "$snap," \
    "$repo_root/examples/specs" > "$build_dir/batch-smoke-snap-warm.txt" \
    2> "$build_dir/batch-smoke-snap-stats.txt"
  diff "$build_dir/batch-smoke-plain.txt" "$build_dir/batch-smoke-snap-warm.txt"
  grep -q " 0 misses, L2 " "$build_dir/batch-smoke-snap-stats.txt"
  grep -q " 0 misses, 0 evictions" "$build_dir/batch-smoke-snap-stats.txt"
else
  echo "note: $batch_bin not built (SPECCC_BUILD_TOOLS=OFF?); smoke skipped"
fi

# Serve smoke: daemon up on an ephemeral port, a short soak through the
# NDJSON protocol, verdict parity with speccc_batch byte-for-byte, then a
# SIGTERM drain that must exit 0 (tools/speccc_serve's contract).
serve_bin="$build_dir/tools/speccc_serve"
load_bin="$build_dir/tools/speccc_load"
if [[ -x "$serve_bin" && -x "$load_bin" && -x "$batch_bin" ]]; then
  echo "speccc_serve smoke (soak + canonical parity + SIGTERM drain)"
  port_file="$build_dir/serve-smoke.port"
  rm -f "$port_file"
  "$serve_bin" --port 0 --port-file "$port_file" --workers "$batch_jobs" --quiet &
  serve_pid=$!
  for _ in $(seq 1 100); do [[ -s "$port_file" ]] && break; sleep 0.1; done
  "$load_bin" --port-file "$port_file" --generate 12 --seed 3 --requests 24 \
    --connections 2 --deadline-ms 300 --deadline-fraction 0.5 --quiet
  "$load_bin" --port-file "$port_file" --generate 12 --seed 3 \
    --connections 2 --canonical-out "$build_dir/serve-smoke-canonical.txt" --quiet
  "$batch_bin" --generate 12 --seed 3 --jobs "$batch_jobs" --quiet --canonical \
    > "$build_dir/serve-smoke-batch.txt"
  diff "$build_dir/serve-smoke-batch.txt" "$build_dir/serve-smoke-canonical.txt"
  kill -TERM "$serve_pid"
  wait "$serve_pid"
else
  echo "note: $serve_bin not built (SPECCC_BUILD_TOOLS=OFF?); serve smoke skipped"
fi
