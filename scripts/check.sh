#!/usr/bin/env bash
# Tier-1 verify in one command: configure + build + ctest.
#   scripts/check.sh [extra cmake args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$build_dir" -S "$repo_root" "$@"
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
