#!/usr/bin/env python3
"""Check that every relative markdown link in README.md and docs/*.md
resolves to a real file (and, for in-file anchors, a real heading).

Used by the CI docs job; run locally with:

    python3 scripts/check_links.py

Rules:
  * inline links and images ``[text](target)`` are checked;
  * http(s)/mailto targets are skipped (no network in CI);
  * targets resolving outside the repository (e.g. the CI badge's
    ``../../actions/...`` GitHub-web path) are skipped;
  * ``#anchor``-only targets must match a heading of the same file,
    using GitHub's slug rules (lowercase, punctuation stripped, spaces
    to hyphens);
  * ``file#anchor`` targets must point at an existing file; the anchor
    is checked when the file is markdown.

Exit code 0 when every link resolves, 1 otherwise. Only the Python
standard library is used.
"""
from __future__ import annotations

import glob
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target), where text may contain one level of nested brackets —
# enough for badge-style image links ([![alt](img)](target)) and
# footnote-ish text ([see [1]](file.md)).
_LINK = re.compile(
    r"!?\[(?:[^\[\]]|\[[^\]]*\])*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->hyphens."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # links
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def markdown_files() -> list[str]:
    files = sorted(glob.glob(os.path.join(REPO_ROOT, "*.md")))
    files += sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md")))
    return files


def links_of(path: str) -> list[tuple[int, str]]:
    """(line number, target) pairs, skipping fenced code blocks."""
    found: list[tuple[int, str]] = []
    in_fence = False
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if _CODE_FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK.finditer(line):
                found.append((number, match.group(1)))
    return found


def anchors_of(path: str) -> set[str]:
    anchors: set[str] = set()
    in_fence = False
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if _CODE_FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = _HEADING.match(line)
            if match:
                anchors.add(slugify(match.group(1)))
    return anchors


def main() -> int:
    broken: list[str] = []
    checked = 0
    for md in markdown_files():
        rel_md = os.path.relpath(md, REPO_ROOT)
        for line, target in links_of(md):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            where = f"{rel_md}:{line}"

            if target.startswith("#"):
                if target[1:] not in anchors_of(md):
                    broken.append(f"{where}: no heading for anchor {target}")
                continue

            file_part, _, anchor = target.partition("#")
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md), file_part))
            if not resolved.startswith(REPO_ROOT + os.sep):
                continue  # GitHub-web path (e.g. the CI badge); not a file
            if not os.path.exists(resolved):
                broken.append(f"{where}: missing file {file_part}")
                continue
            if anchor and resolved.endswith(".md"):
                # GitHub anchors are literal case-sensitive slugs: the href
                # must equal the heading's slug exactly, so compare raw
                # (same rule as the same-file branch above).
                if anchor not in anchors_of(resolved):
                    broken.append(
                        f"{where}: no heading for anchor #{anchor} "
                        f"in {file_part}")

    for message in broken:
        print(f"BROKEN {message}", file=sys.stderr)
    print(f"{checked} relative link(s) checked, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
