// Diagnostics: error types, invariant checks, and a scoped wall-clock timer.
//
// Every SpecCC library reports user-facing failures through SpecError (and
// its subclasses) and programming errors through speccc_check(), which
// throws InternalError instead of aborting so that tests can exercise
// failure paths.
#pragma once

#include <chrono>
#include <stdexcept>
#include <string>

namespace speccc::util {

/// Base class for all user-facing SpecCC errors.
class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const std::string& what) : std::runtime_error(what) {}
};

/// A requirement sentence that does not conform to the structured-English
/// grammar, or a malformed LTL string.
class ParseError : public SpecError {
 public:
  explicit ParseError(const std::string& what) : SpecError(what) {}
};

/// A stage was invoked with inputs violating its documented precondition
/// (e.g. an infeasible time-abstraction error budget).
class InvalidInputError : public SpecError {
 public:
  explicit InvalidInputError(const std::string& what) : SpecError(what) {}
};

/// A pipeline run abandoned cooperatively: an external cancellation
/// request or an exhausted per-task budget (see core::PipelineOptions::
/// cancelled and batch::BatchOptions). Not a failure of the specification.
class CancelledError : public SpecError {
 public:
  explicit CancelledError(const std::string& what) : SpecError(what) {}
};

/// Violated internal invariant: indicates a bug in SpecCC itself.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

/// Wall-clock stopwatch used by the pipeline and the Table I harness.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Deterministic 64-bit PRNG (splitmix64). Used by the corpus generators so
/// that every Table I row is reproducible bit-for-bit across runs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// The splitmix64 finalizer: a stateless bijective mixer, also used on
  /// its own to derive decorrelated child seeds (difftest's per-case
  /// seeds) from structured inputs.
  static std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t next() { return mix(state_ += 0x9e3779b97f4a7c15ULL); }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int range(int lo, int hi) {
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability num/den.
  bool chance(unsigned num, unsigned den) { return below(den) < num; }

 private:
  std::uint64_t state_;
};

}  // namespace speccc::util

/// Invariant check that throws InternalError (never aborts). Usable in
/// constant contexts where the condition is cheap.
#define speccc_check(expr, message)                                       \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::speccc::util::check_failed(#expr, __FILE__, __LINE__, (message)); \
    }                                                                     \
  } while (false)
