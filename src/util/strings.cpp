#include "util/strings.hpp"

#include <cctype>

namespace speccc::util {

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep, bool drop_empty) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      std::string_view piece = s.substr(begin, i - begin);
      if (!piece.empty() || !drop_empty) out.emplace_back(piece);
      begin = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace speccc::util
