#include "util/diagnostics.hpp"

#include <sstream>

namespace speccc::util {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream os;
  os << "internal invariant violated: " << message << " [" << expr << " at "
     << file << ":" << line << "]";
  throw InternalError(os.str());
}

}  // namespace speccc::util
