// Small string helpers shared across the NLP and reporting code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace speccc::util {

/// Lower-case an ASCII string (the structured-English subset is ASCII).
[[nodiscard]] std::string to_lower(std::string_view s);

/// Strip leading/trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a single character, dropping empty pieces if drop_empty.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep,
                                             bool drop_empty = true);

/// Join pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               std::string_view sep);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// True if every character is an ASCII letter, digit, or underscore.
[[nodiscard]] bool is_identifier(std::string_view s);

}  // namespace speccc::util
