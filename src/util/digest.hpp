// Deterministic 128-bit content digests for the memoization layer.
//
// std::hash is implementation-defined (and seeded per process for strings
// on some standard libraries), so cache keys that must be stable across
// processes, platforms, and library versions are built here instead: a
// byte-oriented sponge over two 64-bit lanes with splitmix64 finalizers.
// Strings are length-prefixed so concatenation cannot alias ("ab","c" vs
// "a","bc"), and the total byte count is folded into the final mix.
//
// This is a content-addressing hash, not a cryptographic one: 128 bits
// keep accidental collisions out of reach for cache-sized key sets, but an
// adversary could construct collisions. Cache consumers treat a hit as
// authoritative, so feed the digest everything the cached value depends on
// (see cache/store.hpp for the key-derivation rules).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace speccc::util {

struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Digest&, const Digest&) = default;

  /// 32 lowercase hex digits (hi then lo), for logs and tests.
  [[nodiscard]] std::string hex() const;
};

/// Incremental digest builder. Append order matters; every appender is
/// domain-separated by a tag byte so u64(0) and str("") cannot collide.
class DigestBuilder {
 public:
  DigestBuilder() = default;
  /// Seed with a domain label, separating key namespaces ("sentence",
  /// "sat", ...) that might otherwise absorb identical byte streams.
  explicit DigestBuilder(std::string_view domain);

  DigestBuilder& u64(std::uint64_t v);
  DigestBuilder& str(std::string_view s);  // length-prefixed
  DigestBuilder& digest(const Digest& d);

  [[nodiscard]] Digest finalize() const;

 private:
  void absorb(std::uint64_t word);

  std::uint64_t a_ = 0x6a09e667f3bcc908ULL;  // sqrt(2), sqrt(3) fractions
  std::uint64_t b_ = 0xbb67ae8584caa73bULL;
  std::uint64_t count_ = 0;  // words absorbed
};

}  // namespace speccc::util

template <>
struct std::hash<speccc::util::Digest> {
  std::size_t operator()(const speccc::util::Digest& d) const noexcept {
    return static_cast<std::size_t>(d.lo);  // lanes are already uniform
  }
};
