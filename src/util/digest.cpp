#include "util/digest.hpp"

namespace speccc::util {

namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit permutation.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t rotl(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

// Tag bytes separating the appender domains.
constexpr std::uint64_t kTagU64 = 0x01;
constexpr std::uint64_t kTagStr = 0x02;
constexpr std::uint64_t kTagDigest = 0x03;

}  // namespace

std::string Digest::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = digits[(hi >> (4 * i)) & 0xf];
    out[31 - i] = digits[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

DigestBuilder::DigestBuilder(std::string_view domain) { str(domain); }

void DigestBuilder::absorb(std::uint64_t word) {
  ++count_;
  a_ = mix(a_ ^ word);
  b_ = mix(b_ + rotl(word, 32) + count_);
}

DigestBuilder& DigestBuilder::u64(std::uint64_t v) {
  absorb(kTagU64);
  absorb(v);
  return *this;
}

DigestBuilder& DigestBuilder::str(std::string_view s) {
  absorb(kTagStr);
  absorb(s.size());
  // Pack bytes little-endian into words; the length prefix disambiguates
  // the zero padding of the final partial word.
  std::uint64_t word = 0;
  int shift = 0;
  for (unsigned char c : s) {
    word |= static_cast<std::uint64_t>(c) << shift;
    shift += 8;
    if (shift == 64) {
      absorb(word);
      word = 0;
      shift = 0;
    }
  }
  if (shift != 0) absorb(word);
  return *this;
}

DigestBuilder& DigestBuilder::digest(const Digest& d) {
  absorb(kTagDigest);
  absorb(d.hi);
  absorb(d.lo);
  return *this;
}

Digest DigestBuilder::finalize() const {
  Digest out;
  out.hi = mix(a_ ^ rotl(b_, 17) ^ count_);
  out.lo = mix(b_ ^ rotl(a_, 29) ^ (count_ * 0x9e3779b97f4a7c15ULL));
  return out;
}

}  // namespace speccc::util
