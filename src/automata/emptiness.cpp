#include "automata/emptiness.hpp"

#include <algorithm>
#include <vector>

#include "automata/gpvw.hpp"
#include "util/diagnostics.hpp"

namespace speccc::automata {

namespace {

/// Breadth-first search for a path from `from` to `to`. When from == to and
/// at_least_one_step is set, searches for a cycle back to `from`. Returns
/// the edge labels along a shortest such path.
std::optional<std::vector<Cube>> find_path(const Buchi& automaton, int from,
                                           int to, bool at_least_one_step) {
  if (from == to && !at_least_one_step) return std::vector<Cube>{};

  const std::size_t n = automaton.num_states();
  std::vector<int> parent(n, -2);        // -2 unvisited, -1 search root
  std::vector<const Cube*> via(n, nullptr);  // label of the edge entering
  std::vector<int> queue{from};
  parent[static_cast<std::size_t>(from)] = -1;

  std::size_t head = 0;
  while (head < queue.size()) {
    const int cur = queue[head++];
    for (const Transition& t :
         automaton.transitions[static_cast<std::size_t>(cur)]) {
      if (!t.label.consistent()) continue;
      if (t.target == to) {
        // Reconstruct: labels from `from` to `cur`, then this edge. A
        // shortest path never revisits `from`, so the parent walk
        // terminates.
        std::vector<Cube> labels{t.label};
        for (int walk = cur; walk != from;
             walk = parent[static_cast<std::size_t>(walk)]) {
          speccc_check(parent[static_cast<std::size_t>(walk)] != -2,
                       "BFS parent chain broken");
          labels.push_back(*via[static_cast<std::size_t>(walk)]);
        }
        std::reverse(labels.begin(), labels.end());
        return labels;
      }
      const auto tgt = static_cast<std::size_t>(t.target);
      if (parent[tgt] == -2) {
        parent[tgt] = cur;
        via[tgt] = &t.label;
        queue.push_back(t.target);
      }
    }
  }
  return std::nullopt;
}

ltl::Valuation valuation_of(const Cube& cube) {
  ltl::Valuation v;
  for (const auto& p : cube.pos) v.insert(p);
  return v;
}

}  // namespace

std::optional<Witness> find_accepting_lasso(const Buchi& automaton) {
  const std::size_t n = automaton.num_states();
  if (n == 0) return std::nullopt;

  for (std::size_t q = 0; q < n; ++q) {
    if (!automaton.accepting[q]) continue;
    // Prefix: initial -> q; loop: q -> q (at least one step).
    const auto prefix =
        find_path(automaton, automaton.initial, static_cast<int>(q),
                  /*at_least_one_step=*/automaton.initial != static_cast<int>(q));
    if (!prefix) continue;
    const auto loop = find_path(automaton, static_cast<int>(q),
                                static_cast<int>(q), /*at_least_one_step=*/true);
    if (!loop) continue;

    std::vector<ltl::Valuation> steps;
    for (const Cube& c : *prefix) steps.push_back(valuation_of(c));
    const std::size_t loop_start = steps.size();
    for (const Cube& c : *loop) steps.push_back(valuation_of(c));
    speccc_check(!steps.empty(), "accepting lasso must have steps");
    return Witness{ltl::Lasso(std::move(steps), loop_start)};
  }
  return std::nullopt;
}

std::optional<Witness> satisfiable_witness(ltl::Formula f) {
  return find_accepting_lasso(ltl_to_nbw(f));
}

}  // namespace speccc::automata
