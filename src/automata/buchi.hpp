// Nondeterministic Buechi automata over cube-labelled transitions.
//
// Labels are conjunctions of AP literals (cubes) rather than explicit
// alphabet letters: the GPVW tableau naturally produces cubes, and the
// bounded-synthesis engine resolves them against concrete input/output
// valuations on the fly, which keeps automata small even when a
// specification mentions many propositions.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "ltl/trace.hpp"

namespace speccc::automata {

/// A conjunction of literals over proposition names. Empty cube == true.
struct Cube {
  std::set<std::string> pos;
  std::set<std::string> neg;

  /// False when some proposition occurs both positively and negatively.
  [[nodiscard]] bool consistent() const;
  /// Does a full valuation satisfy every literal?
  [[nodiscard]] bool matches(const ltl::Valuation& valuation) const;
  /// Conjunction; the result may be inconsistent.
  [[nodiscard]] Cube meet(const Cube& other) const;

  friend bool operator==(const Cube&, const Cube&) = default;
};

struct Transition {
  Cube label;
  int target = -1;
};

/// Buechi automaton with a single acceptance set (degeneralized) and a
/// single initial state. `accepting` is indexed by state.
struct Buchi {
  std::vector<std::string> aps;  // propositions mentioned anywhere, sorted
  int initial = 0;
  std::vector<std::vector<Transition>> transitions;  // indexed by state
  std::vector<bool> accepting;

  [[nodiscard]] std::size_t num_states() const { return transitions.size(); }
  [[nodiscard]] std::size_t num_transitions() const;
};

/// Does the automaton accept the ultimately periodic word? (Nondeterministic
/// membership: product graph + accepting-cycle search.) Used to cross-check
/// the tableau construction against the LTL trace semantics.
[[nodiscard]] bool accepts_lasso(const Buchi& automaton, const ltl::Lasso& lasso);

/// Remove states that cannot reach an accepting cycle (they never contribute
/// to acceptance) and states unreachable from the initial state. Keeps the
/// automaton language-equivalent; shrinks the bounded-synthesis state space.
[[nodiscard]] Buchi prune(const Buchi& automaton);

}  // namespace speccc::automata
