#include "automata/gpvw.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "ltl/rewrite.hpp"
#include "util/diagnostics.hpp"

namespace speccc::automata {

namespace {

using ltl::Formula;
using ltl::Op;

/// Rewrite into the tableau core: NNF over literals with And/Or/X/U/R only.
Formula to_core(Formula f) {
  switch (f.op()) {
    case Op::kTrue:
    case Op::kFalse:
    case Op::kAp:
      return f;
    case Op::kNot:
      speccc_check(f.child(0).op() == Op::kAp, "to_core expects NNF input");
      return f;
    case Op::kAnd: {
      std::vector<Formula> cs;
      for (Formula c : f.children()) cs.push_back(to_core(c));
      return ltl::land(std::move(cs));
    }
    case Op::kOr: {
      std::vector<Formula> cs;
      for (Formula c : f.children()) cs.push_back(to_core(c));
      return ltl::lor(std::move(cs));
    }
    case Op::kNext:
      return ltl::next(to_core(f.child(0)));
    case Op::kEventually:
      return ltl::until(ltl::tru(), to_core(f.child(0)));
    case Op::kAlways:
      return ltl::release(ltl::fls(), to_core(f.child(0)));
    case Op::kUntil:
      return ltl::until(to_core(f.child(0)), to_core(f.child(1)));
    case Op::kRelease:
      return ltl::release(to_core(f.child(0)), to_core(f.child(1)));
    case Op::kWeakUntil: {
      const Formula a = to_core(f.child(0));
      const Formula b = to_core(f.child(1));
      return ltl::release(b, ltl::lor(a, b));
    }
    case Op::kImplies:
    case Op::kIff:
      speccc_check(false, "to_core expects NNF input (no ->, <->)");
      return f;
  }
  return f;
}

using FormulaSet = std::set<Formula>;

struct TNode {
  std::set<int> incoming;  // -1 denotes the virtual initial node
  FormulaSet news;
  FormulaSet olds;
  FormulaSet nexts;
};

class GpvwBuilder {
 public:
  GpvwBuilder(Formula phi, std::size_t max_nodes,
              const std::function<bool()>& cancelled)
      : phi_(phi),
        max_nodes_(max_nodes),
        // The tableau can burn exponential work in merged/discarded
        // branches without registering new nodes, so the give-up condition
        // also bounds processed work items, proportionally to the node cap
        // (saturating: a huge cap must not overflow into a zero budget).
        work_budget_(max_nodes > SIZE_MAX / 64 ? SIZE_MAX : max_nodes * 64),
        cancelled_(cancelled) {}

  std::optional<Buchi> run() {
    collect_untils(phi_);
    TNode start;
    start.incoming.insert(-1);
    start.news.insert(phi_);
    if (!expand(std::move(start))) return std::nullopt;
    return finish();
  }

 private:
  void collect_untils(Formula f) {
    if (f.op() == Op::kUntil) untils_.insert(f);
    for (Formula c : f.children()) collect_untils(c);
  }

  static bool is_literal(Formula f) {
    return f.op() == Op::kAp ||
           (f.op() == Op::kNot && f.child(0).op() == Op::kAp);
  }

  /// Iterative tableau expansion: the classic algorithm is recursive, but
  /// Next-chain formulas (X^n from timed requirements) would nest thousands
  /// of frames, so pending nodes live on an explicit worklist.
  [[nodiscard]] bool expand(TNode start) {
    std::vector<TNode> work;
    work.push_back(std::move(start));
    while (!work.empty()) {
      if (cancelled_ && cancelled_()) {
        throw util::CancelledError("tableau construction cancelled");
      }
      if (work_budget_ == 0) return false;
      --work_budget_;
      TNode node = std::move(work.back());
      work.pop_back();
      bool discarded = false;

      while (!discarded && !node.news.empty()) {
        const Formula eta = *node.news.begin();
        node.news.erase(node.news.begin());
        if (node.olds.count(eta) > 0) continue;

        switch (eta.op()) {
          case Op::kFalse:
            discarded = true;  // contradiction: drop this node
            break;
          case Op::kTrue:
            break;
          case Op::kAp:
          case Op::kNot: {
            speccc_check(is_literal(eta), "tableau core literals only");
            if (node.olds.count(ltl::lnot(eta)) > 0) {
              discarded = true;  // inconsistent literal set
            } else {
              node.olds.insert(eta);
            }
            break;
          }
          case Op::kAnd: {
            node.olds.insert(eta);
            for (Formula c : eta.children()) {
              if (node.olds.count(c) == 0) node.news.insert(c);
            }
            break;
          }
          case Op::kOr: {
            node.olds.insert(eta);
            // Continue with the first disjunct; queue the others.
            bool first = true;
            for (Formula c : eta.children()) {
              if (first) {
                first = false;
                continue;
              }
              TNode branch = node;
              if (branch.olds.count(c) == 0) branch.news.insert(c);
              work.push_back(std::move(branch));
            }
            const Formula head = eta.child(0);
            if (node.olds.count(head) == 0) node.news.insert(head);
            break;
          }
          case Op::kNext: {
            node.olds.insert(eta);
            node.nexts.insert(eta.child(0));
            break;
          }
          case Op::kUntil: {
            // mu U psi: either mu now and the Until next, or psi now.
            const Formula mu = eta.child(0);
            const Formula psi = eta.child(1);
            node.olds.insert(eta);
            TNode right = node;
            if (right.olds.count(psi) == 0) right.news.insert(psi);
            work.push_back(std::move(right));
            if (node.olds.count(mu) == 0) node.news.insert(mu);
            node.nexts.insert(eta);
            break;
          }
          case Op::kRelease: {
            // mu R psi: psi now, and either the Release next or mu now.
            const Formula mu = eta.child(0);
            const Formula psi = eta.child(1);
            node.olds.insert(eta);
            TNode right = node;
            if (right.olds.count(mu) == 0) right.news.insert(mu);
            if (right.olds.count(psi) == 0) right.news.insert(psi);
            work.push_back(std::move(right));
            if (node.olds.count(psi) == 0) node.news.insert(psi);
            node.nexts.insert(eta);
            break;
          }
          default:
            speccc_check(false, "unexpected operator in tableau core");
        }
      }
      if (discarded) continue;

      // Saturated: merge with an existing node or register a new one and
      // queue its temporal successor. The (olds, nexts) hash index
      // replaces the classic linear scan, which is quadratic overall and
      // dominated the construction beyond a few thousand nodes; buckets
      // hold node ids, so no set is ever copied for the index.
      const std::size_t hash = node_hash(node);
      std::vector<int>& bucket = node_index_[hash];
      bool merged = false;
      for (const int candidate : bucket) {
        TNode& existing = nodes_[static_cast<std::size_t>(candidate)];
        if (existing.olds == node.olds && existing.nexts == node.nexts) {
          existing.incoming.insert(node.incoming.begin(),
                                   node.incoming.end());
          merged = true;
          break;
        }
      }
      if (merged) continue;
      if (nodes_.size() >= max_nodes_) return false;
      const int id = static_cast<int>(nodes_.size());
      bucket.push_back(id);
      TNode next;
      next.incoming.insert(id);
      next.news = node.nexts;
      nodes_.push_back(std::move(node));
      work.push_back(std::move(next));
    }
    return true;
  }

  Cube label_of(const TNode& node) const {
    Cube cube;
    for (Formula f : node.olds) {
      if (f.op() == Op::kAp) cube.pos.insert(f.ap_name());
      if (f.op() == Op::kNot) cube.neg.insert(f.child(0).ap_name());
    }
    return cube;
  }

  Buchi finish() {
    // Generalized automaton: one acceptance set per Until subformula.
    const std::vector<Formula> untils(untils_.begin(), untils_.end());
    const std::size_t k = untils.size();
    const std::size_t n = nodes_.size();

    std::vector<std::vector<bool>> in_fset(std::max<std::size_t>(k, 1),
                                           std::vector<bool>(n, true));
    for (std::size_t u = 0; u < k; ++u) {
      const Formula until = untils[u];
      const Formula psi = until.child(1);
      for (std::size_t q = 0; q < n; ++q) {
        // F_u = { q : until not in olds(q) or psi in olds(q) }.
        in_fset[u][q] =
            nodes_[q].olds.count(until) == 0 || nodes_[q].olds.count(psi) > 0;
      }
    }

    // Collect the proposition alphabet.
    std::set<std::string> ap_set;
    for (const TNode& node : nodes_) {
      const Cube c = label_of(node);
      ap_set.insert(c.pos.begin(), c.pos.end());
      ap_set.insert(c.neg.begin(), c.neg.end());
    }

    Buchi out;
    out.aps.assign(ap_set.begin(), ap_set.end());

    if (k == 0) {
      // No Until: every infinite run accepts. States: virtual init + nodes.
      out.initial = 0;
      out.transitions.assign(n + 1, {});
      out.accepting.assign(n + 1, true);
      for (std::size_t q = 0; q < n; ++q) {
        const Cube label = label_of(nodes_[q]);
        for (int src : nodes_[q].incoming) {
          const std::size_t s = src == -1 ? 0 : static_cast<std::size_t>(src) + 1;
          out.transitions[s].push_back({label, static_cast<int>(q) + 1});
        }
      }
      return prune(out);
    }

    // Degeneralization (Baier-Katoen): states (q, i), i in [0, k);
    // move from (q, i) to (q', i') with i' = (i + 1) mod k if q in F_i,
    // else i; accepting = {(q, 0) : q in F_0}. Plus a virtual initial state.
    const auto pack = [k](std::size_t q, std::size_t i) {
      return static_cast<int>(q * k + i) + 1;  // 0 reserved for init
    };
    out.initial = 0;
    out.transitions.assign(n * k + 1, {});
    out.accepting.assign(n * k + 1, false);
    for (std::size_t q = 0; q < n; ++q) {
      out.accepting[static_cast<std::size_t>(pack(q, 0))] = in_fset[0][q];
    }
    for (std::size_t q = 0; q < n; ++q) {
      const Cube label = label_of(nodes_[q]);
      for (int src : nodes_[q].incoming) {
        if (src == -1) {
          // From the virtual initial state, counters start at 0.
          out.transitions[0].push_back({label, pack(q, 0)});
          continue;
        }
        const auto s = static_cast<std::size_t>(src);
        for (std::size_t i = 0; i < k; ++i) {
          const std::size_t ni = in_fset[i][s] ? (i + 1) % k : i;
          out.transitions[static_cast<std::size_t>(pack(s, i))].push_back(
              {label, pack(q, ni)});
        }
      }
    }
    return prune(out);
  }

  /// Order-sensitive FNV-style combination of the hash-consed formula
  /// hashes; olds/nexts are ordered sets, so equal node contents hash
  /// equally.
  static std::size_t node_hash(const TNode& node) {
    std::size_t h = 14695981039346656037ULL;
    for (const Formula f : node.olds) h = (h ^ f.hash()) * 1099511628211ULL;
    h = (h ^ 0x9e3779b97f4a7c15ULL) * 1099511628211ULL;  // section break
    for (const Formula f : node.nexts) h = (h ^ f.hash()) * 1099511628211ULL;
    return h;
  }

  Formula phi_;
  std::size_t max_nodes_;
  std::size_t work_budget_;
  const std::function<bool()>& cancelled_;
  std::set<Formula> untils_;
  std::vector<TNode> nodes_;
  std::unordered_map<std::size_t, std::vector<int>> node_index_;
};

}  // namespace

std::optional<Buchi> ltl_to_nbw_bounded(ltl::Formula f, std::size_t max_nodes,
                                        const std::function<bool()>& cancelled) {
  const Formula core = to_core(ltl::nnf(f));
  if (core.op() == Op::kFalse) {
    Buchi empty;
    empty.initial = 0;
    empty.transitions.emplace_back();
    empty.accepting.push_back(false);
    return empty;
  }
  return GpvwBuilder(core, max_nodes, cancelled).run();
}

Buchi ltl_to_nbw(ltl::Formula f) {
  auto result = ltl_to_nbw_bounded(f, SIZE_MAX);
  speccc_check(result.has_value(), "unbounded tableau cannot give up");
  return *std::move(result);
}

Buchi ucw_for(ltl::Formula f) { return ltl_to_nbw(ltl::lnot(f)); }

std::optional<Buchi> ucw_for_bounded(ltl::Formula f, std::size_t max_nodes,
                                     const std::function<bool()>& cancelled) {
  return ltl_to_nbw_bounded(ltl::lnot(f), max_nodes, cancelled);
}

}  // namespace speccc::automata
