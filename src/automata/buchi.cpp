#include "automata/buchi.hpp"

#include <algorithm>

#include "util/diagnostics.hpp"

namespace speccc::automata {

bool Cube::consistent() const {
  for (const auto& p : pos) {
    if (neg.count(p) > 0) return false;
  }
  return true;
}

bool Cube::matches(const ltl::Valuation& valuation) const {
  for (const auto& p : pos) {
    if (valuation.count(p) == 0) return false;
  }
  for (const auto& n : neg) {
    if (valuation.count(n) > 0) return false;
  }
  return true;
}

Cube Cube::meet(const Cube& other) const {
  Cube out = *this;
  out.pos.insert(other.pos.begin(), other.pos.end());
  out.neg.insert(other.neg.begin(), other.neg.end());
  return out;
}

std::size_t Buchi::num_transitions() const {
  std::size_t n = 0;
  for (const auto& ts : transitions) n += ts.size();
  return n;
}

bool accepts_lasso(const Buchi& automaton, const ltl::Lasso& lasso) {
  const std::size_t n_states = automaton.num_states();
  const std::size_t n_pos = lasso.size();
  if (n_states == 0) return false;

  // Product graph node: state * n_pos + position.
  const auto node_id = [n_pos](int state, std::size_t pos) {
    return static_cast<std::size_t>(state) * n_pos + pos;
  };

  // Forward reachability from (initial, 0).
  std::vector<bool> reach(n_states * n_pos, false);
  std::vector<std::pair<int, std::size_t>> stack{{automaton.initial, 0}};
  reach[node_id(automaton.initial, 0)] = true;
  while (!stack.empty()) {
    const auto [state, pos] = stack.back();
    stack.pop_back();
    const std::size_t next_pos = lasso.successor(pos);
    for (const Transition& t : automaton.transitions[static_cast<std::size_t>(state)]) {
      if (!t.label.matches(lasso.at(pos))) continue;
      const std::size_t id = node_id(t.target, next_pos);
      if (!reach[id]) {
        reach[id] = true;
        stack.push_back({t.target, next_pos});
      }
    }
  }

  // For each reachable accepting product node, check whether it lies on a
  // cycle (reachable from itself). The product is small, so a per-node DFS
  // is fine.
  for (int state = 0; state < static_cast<int>(n_states); ++state) {
    if (!automaton.accepting[static_cast<std::size_t>(state)]) continue;
    for (std::size_t pos = lasso.loop_start(); pos < n_pos; ++pos) {
      if (!reach[node_id(state, pos)]) continue;
      // DFS from (state, pos) looking for a path back to itself.
      std::vector<bool> seen(n_states * n_pos, false);
      std::vector<std::pair<int, std::size_t>> dfs{{state, pos}};
      bool found = false;
      while (!dfs.empty() && !found) {
        const auto [s, p] = dfs.back();
        dfs.pop_back();
        const std::size_t np = lasso.successor(p);
        for (const Transition& t : automaton.transitions[static_cast<std::size_t>(s)]) {
          if (!t.label.matches(lasso.at(p))) continue;
          if (t.target == state && np == pos) {
            found = true;
            break;
          }
          const std::size_t id = node_id(t.target, np);
          if (!seen[id]) {
            seen[id] = true;
            dfs.push_back({t.target, np});
          }
        }
      }
      if (found) return true;
    }
  }
  return false;
}

Buchi prune(const Buchi& automaton) {
  const std::size_t n = automaton.num_states();

  // Backward closure: states that can reach an accepting cycle. First find
  // states on accepting cycles via repeated DFS (sizes here are small), then
  // take predecessors.
  std::vector<std::vector<int>> preds(n);
  for (std::size_t s = 0; s < n; ++s) {
    for (const Transition& t : automaton.transitions[s]) {
      preds[static_cast<std::size_t>(t.target)].push_back(static_cast<int>(s));
    }
  }

  std::vector<bool> useful(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    if (!automaton.accepting[s]) continue;
    // Is s on a cycle?
    std::vector<bool> seen(n, false);
    std::vector<int> stack;
    for (const Transition& t : automaton.transitions[s]) {
      if (!seen[static_cast<std::size_t>(t.target)]) {
        seen[static_cast<std::size_t>(t.target)] = true;
        stack.push_back(t.target);
      }
    }
    bool on_cycle = seen[s];
    while (!stack.empty() && !on_cycle) {
      const int cur = stack.back();
      stack.pop_back();
      for (const Transition& t : automaton.transitions[static_cast<std::size_t>(cur)]) {
        if (t.target == static_cast<int>(s)) {
          on_cycle = true;
          break;
        }
        if (!seen[static_cast<std::size_t>(t.target)]) {
          seen[static_cast<std::size_t>(t.target)] = true;
          stack.push_back(t.target);
        }
      }
    }
    if (on_cycle) useful[s] = true;
  }
  // Backward closure from accepting-cycle states.
  std::vector<int> work;
  for (std::size_t s = 0; s < n; ++s) {
    if (useful[s]) work.push_back(static_cast<int>(s));
  }
  while (!work.empty()) {
    const int cur = work.back();
    work.pop_back();
    for (int p : preds[static_cast<std::size_t>(cur)]) {
      if (!useful[static_cast<std::size_t>(p)]) {
        useful[static_cast<std::size_t>(p)] = true;
        work.push_back(p);
      }
    }
  }

  // Forward reachability from the initial state, restricted to useful states.
  std::vector<bool> reach(n, false);
  if (useful[static_cast<std::size_t>(automaton.initial)]) {
    reach[static_cast<std::size_t>(automaton.initial)] = true;
    work.push_back(automaton.initial);
    while (!work.empty()) {
      const int cur = work.back();
      work.pop_back();
      for (const Transition& t : automaton.transitions[static_cast<std::size_t>(cur)]) {
        const auto tgt = static_cast<std::size_t>(t.target);
        if (useful[tgt] && !reach[tgt]) {
          reach[tgt] = true;
          work.push_back(t.target);
        }
      }
    }
  }

  // Renumber.
  std::vector<int> remap(n, -1);
  Buchi out;
  out.aps = automaton.aps;
  for (std::size_t s = 0; s < n; ++s) {
    if (reach[s]) {
      remap[s] = static_cast<int>(out.transitions.size());
      out.transitions.emplace_back();
      out.accepting.push_back(automaton.accepting[s]);
    }
  }
  if (remap[static_cast<std::size_t>(automaton.initial)] == -1) {
    // Empty language: single non-accepting sink with no transitions.
    Buchi empty;
    empty.aps = automaton.aps;
    empty.initial = 0;
    empty.transitions.emplace_back();
    empty.accepting.push_back(false);
    return empty;
  }
  out.initial = remap[static_cast<std::size_t>(automaton.initial)];
  for (std::size_t s = 0; s < n; ++s) {
    if (remap[s] == -1) continue;
    for (const Transition& t : automaton.transitions[s]) {
      const int nt = remap[static_cast<std::size_t>(t.target)];
      if (nt != -1) {
        out.transitions[static_cast<std::size_t>(remap[s])].push_back({t.label, nt});
      }
    }
  }
  return out;
}

}  // namespace speccc::automata
