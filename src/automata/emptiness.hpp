// Buechi emptiness checking with lasso witnesses, and automata-based LTL
// satisfiability.
//
// Used three ways:
//   * sanity-checking translated requirements (an unsatisfiable requirement
//     can never be implemented and is reported before synthesis runs);
//   * generating witness traces for satisfiable formulas (property tests
//     cross-check the witness against the trace semantics);
//   * the model checker in synth/verify.hpp (emptiness of a product).
#pragma once

#include <optional>

#include "automata/buchi.hpp"
#include "ltl/formula.hpp"
#include "ltl/trace.hpp"

namespace speccc::automata {

/// A lasso witness of nonemptiness, as concrete valuations (propositions not
/// constrained by the accepting run's cubes default to false).
struct Witness {
  ltl::Lasso lasso;
};

/// Is the automaton's language empty? Returns a witness when it is not.
/// Linear in the product of states and transitions (nested DFS).
[[nodiscard]] std::optional<Witness> find_accepting_lasso(const Buchi& automaton);

[[nodiscard]] inline bool is_empty(const Buchi& automaton) {
  return !find_accepting_lasso(automaton).has_value();
}

/// LTL satisfiability via the tableau: satisfiable iff the NBW of f has a
/// nonempty language. The witness satisfies f (checked in tests against
/// ltl::evaluate).
[[nodiscard]] std::optional<Witness> satisfiable_witness(ltl::Formula f);

[[nodiscard]] inline bool satisfiable(ltl::Formula f) {
  return satisfiable_witness(f).has_value();
}

/// Validity: f is valid iff !f is unsatisfiable.
[[nodiscard]] inline bool valid(ltl::Formula f) {
  return !satisfiable(ltl::lnot(f));
}

}  // namespace speccc::automata
