// LTL to nondeterministic Buechi automata, via the on-the-fly tableau of
// Gerth, Peled, Vardi and Wolper (GPVW).
//
// The input formula is first normalized into the tableau core (negation
// normal form over literals, And/Or, X, U, R: F a == true U a, G a ==
// false R a, a W b == b R (a || b)). The generalized acceptance condition
// (one set per Until subformula) is then degeneralized with the standard
// counting construction (Baier & Katoen, Thm. 4.56).
//
// The synthesis engine reads the result two ways:
//   * as an NBW for emptiness/membership (tests, baselines);
//   * as a universal co-Buechi automaton (UCW) for phi by building the NBW
//     of !phi and treating its accepting states as rejecting.
#pragma once

#include "automata/buchi.hpp"
#include "ltl/formula.hpp"

namespace speccc::automata {

/// Translate an LTL formula into a degeneralized NBW.
[[nodiscard]] Buchi ltl_to_nbw(ltl::Formula f);

/// The UCW view for bounded synthesis: the NBW of !phi, whose accepting
/// states are the UCW's rejecting states. A word satisfies phi iff every
/// run of this automaton visits rejecting states only finitely often.
[[nodiscard]] Buchi ucw_for(ltl::Formula f);

}  // namespace speccc::automata
