// LTL to nondeterministic Buechi automata, via the on-the-fly tableau of
// Gerth, Peled, Vardi and Wolper (GPVW).
//
// The input formula is first normalized into the tableau core (negation
// normal form over literals, And/Or, X, U, R: F a == true U a, G a ==
// false R a, a W b == b R (a || b)). The generalized acceptance condition
// (one set per Until subformula) is then degeneralized with the standard
// counting construction (Baier & Katoen, Thm. 4.56).
//
// The synthesis engine reads the result two ways:
//   * as an NBW for emptiness/membership (tests, baselines);
//   * as a universal co-Buechi automaton (UCW) for phi by building the NBW
//     of !phi and treating its accepting states as rejecting.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>

#include "automata/buchi.hpp"
#include "ltl/formula.hpp"

namespace speccc::automata {

/// Translate an LTL formula into a degeneralized NBW.
[[nodiscard]] Buchi ltl_to_nbw(ltl::Formula f);

/// Construction-bounded variant: gives up (nullopt) once the tableau
/// registers more than max_nodes distinct nodes or exhausts a proportional
/// expansion budget, so pathological formulas (long Next chains under
/// conjoined G obligations are exponential) cost bounded time instead of
/// minutes. Callers that can live with "don't know" -- the bounded
/// synthesis engine, the differential harness -- use this. `cancelled` is
/// polled once per expanded node; returning true raises
/// util::CancelledError (portfolio racers cancel losing tableaux here).
[[nodiscard]] std::optional<Buchi> ltl_to_nbw_bounded(
    ltl::Formula f, std::size_t max_nodes,
    const std::function<bool()>& cancelled = {});

/// The UCW view for bounded synthesis: the NBW of !phi, whose accepting
/// states are the UCW's rejecting states. A word satisfies phi iff every
/// run of this automaton visits rejecting states only finitely often.
[[nodiscard]] Buchi ucw_for(ltl::Formula f);

/// Construction-bounded UCW (see ltl_to_nbw_bounded).
[[nodiscard]] std::optional<Buchi> ucw_for_bounded(
    ltl::Formula f, std::size_t max_nodes,
    const std::function<bool()>& cancelled = {});

}  // namespace speccc::automata
