#include "cache/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include <unistd.h>

namespace speccc::cache {

const char* snapshot_error_kind_name(SnapshotErrorKind kind) {
  switch (kind) {
    case SnapshotErrorKind::kIo: return "io";
    case SnapshotErrorKind::kBadMagic: return "bad-magic";
    case SnapshotErrorKind::kBadVersion: return "bad-version";
    case SnapshotErrorKind::kBadFingerprint: return "bad-fingerprint";
    case SnapshotErrorKind::kTruncated: return "truncated";
    case SnapshotErrorKind::kCorrupted: return "corrupted";
  }
  return "?";
}

SnapshotError::SnapshotError(SnapshotErrorKind kind, std::string path,
                             const std::string& message)
    : util::SpecError(path + ": " + message + " [" +
                      snapshot_error_kind_name(kind) + "]"),
      kind_(kind),
      path_(std::move(path)) {}

namespace {

constexpr char kMagic[8] = {'S', 'P', 'C', 'C', 'S', 'N', 'P', '1'};

// Artifact-kind tags (fixed, part of the format).
enum : std::uint8_t {
  kTagSentence = 1,
  kTagSatisfiable = 2,
  kTagSynthesis = 3,
  kTagRefinement = 4,
  kTagAbstraction = 5,
};

// ---- Little-endian writer ---------------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.append(s);
  }
  void digest(const util::Digest& d) {
    u64(d.hi);
    u64(d.lo);
  }

  [[nodiscard]] const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

// ---- Bounds-checked little-endian reader ------------------------------------
//
// Throws SnapshotError(kTruncated) on overrun: the checksum normally
// catches corruption first, but the reader must stay memory-safe against
// any byte stream regardless.

class Reader {
 public:
  Reader(std::string_view data, const std::string& path)
      : data_(data), path_(path) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint32_t u32() {
    std::string_view b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i])) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    std::string_view b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
    }
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint64_t n = u64();
    return std::string(take(n));
  }
  util::Digest digest() {
    util::Digest d;
    d.hi = u64();
    d.lo = u64();
    return d;
  }

  [[nodiscard]] bool done() const { return offset_ == data_.size(); }

 private:
  std::string_view take(std::uint64_t n) {
    if (n > data_.size() - offset_) {
      throw SnapshotError(SnapshotErrorKind::kTruncated, path_,
                          "snapshot body ends mid-record");
    }
    std::string_view out = data_.substr(offset_, n);
    offset_ += n;
    return out;
  }

  std::string_view data_;
  std::size_t offset_ = 0;
  const std::string& path_;
};

// ---- Value codecs -----------------------------------------------------------

template <typename T, typename Fn>
void write_vec(Writer& w, const std::vector<T>& v, Fn item) {
  w.u64(v.size());
  for (const T& x : v) item(x);
}

void write_np(Writer& w, const nlp::NounPhrase& np) {
  write_vec(w, np.words, [&](const nlp::NpWord& word) {
    w.str(word.text);
    w.u32(static_cast<std::uint32_t>(word.pos));
    w.boolean(word.capitalized);
  });
  w.boolean(np.pronoun);
}

nlp::NounPhrase read_np(Reader& r) {
  nlp::NounPhrase np;
  np.words.resize(r.u64());
  for (nlp::NpWord& word : np.words) {
    word.text = r.str();
    word.pos = static_cast<nlp::Pos>(r.u32());
    word.capitalized = r.boolean();
  }
  np.pronoun = r.boolean();
  return np;
}

void write_clause(Writer& w, const nlp::Clause& c) {
  w.str(c.modifier);
  write_vec(w, c.subjects, [&](const nlp::NounPhrase& np) { write_np(w, np); });
  w.str(c.subject_conjunction);
  w.u32(static_cast<std::uint32_t>(c.predicate.kind));
  w.str(c.predicate.verb_lemma);
  write_vec(w, c.predicate.complements, [&](const std::string& s) { w.str(s); });
  w.str(c.predicate.preposition);
  write_vec(w, c.predicate.objects,
            [&](const nlp::NounPhrase& np) { write_np(w, np); });
  w.str(c.predicate.object_conjunction);
  write_vec(w, c.predicate.modals, [&](const std::string& s) { w.str(s); });
  w.boolean(c.predicate.negated);
  w.boolean(c.predicate.future);
  w.boolean(c.constraint.has_value());
  if (c.constraint) {
    w.u32(c.constraint->value);
    w.u32(c.constraint->unit_seconds);
  }
  w.boolean(c.next_marked);
}

nlp::Clause read_clause(Reader& r) {
  nlp::Clause c;
  c.modifier = r.str();
  c.subjects.resize(r.u64());
  for (nlp::NounPhrase& np : c.subjects) np = read_np(r);
  c.subject_conjunction = r.str();
  c.predicate.kind = static_cast<nlp::PredicateKind>(r.u32());
  c.predicate.verb_lemma = r.str();
  c.predicate.complements.resize(r.u64());
  for (std::string& s : c.predicate.complements) s = r.str();
  c.predicate.preposition = r.str();
  c.predicate.objects.resize(r.u64());
  for (nlp::NounPhrase& np : c.predicate.objects) np = read_np(r);
  c.predicate.object_conjunction = r.str();
  c.predicate.modals.resize(r.u64());
  for (std::string& s : c.predicate.modals) s = r.str();
  c.predicate.negated = r.boolean();
  c.predicate.future = r.boolean();
  if (r.boolean()) {
    nlp::TimeConstraint tc;
    tc.value = r.u32();
    tc.unit_seconds = r.u32();
    c.constraint = tc;
  }
  c.next_marked = r.boolean();
  return c;
}

void write_group(Writer& w, const nlp::ClauseGroup& g) {
  w.str(g.subordinator);
  write_vec(w, g.clauses, [&](const std::pair<std::string, nlp::Clause>& entry) {
    w.str(entry.first);
    write_clause(w, entry.second);
  });
}

nlp::ClauseGroup read_group(Reader& r) {
  nlp::ClauseGroup g;
  g.subordinator = r.str();
  g.clauses.resize(r.u64());
  for (auto& entry : g.clauses) {
    entry.first = r.str();
    entry.second = read_clause(r);
  }
  return g;
}

void write_sentence(Writer& w, const nlp::Sentence& s) {
  w.str(s.text);
  write_vec(w, s.conditions,
            [&](const nlp::ClauseGroup& g) { write_group(w, g); });
  write_group(w, s.main);
  w.boolean(s.until.has_value());
  if (s.until) write_group(w, *s.until);
}

nlp::Sentence read_sentence(Reader& r) {
  nlp::Sentence s;
  s.text = r.str();
  s.conditions.resize(r.u64());
  for (nlp::ClauseGroup& g : s.conditions) g = read_group(r);
  s.main = read_group(r);
  if (r.boolean()) s.until = read_group(r);
  return s;
}

void write_mealy(Writer& w, const synth::MealyMachine& m) {
  write_vec(w, m.signature().inputs, [&](const std::string& s) { w.str(s); });
  write_vec(w, m.signature().outputs, [&](const std::string& s) { w.str(s); });
  w.u64(m.num_states());
  for (std::size_t state = 0; state < m.num_states(); ++state) {
    const auto& row = m.transitions(static_cast<int>(state));
    w.u64(row.size());
    for (const auto& [input, edge] : row) {  // std::map: deterministic order
      w.u32(input);
      w.u32(edge.first);
      w.u64(static_cast<std::uint64_t>(edge.second));
    }
  }
}

synth::MealyMachine read_mealy(Reader& r) {
  synth::IoSignature signature;
  signature.inputs.resize(r.u64());
  for (std::string& s : signature.inputs) s = r.str();
  signature.outputs.resize(r.u64());
  for (std::string& s : signature.outputs) s = r.str();
  synth::MealyMachine m(std::move(signature));
  const std::uint64_t states = r.u64();
  for (std::uint64_t state = 0; state < states; ++state) m.add_state();
  for (std::uint64_t state = 0; state < states; ++state) {
    const std::uint64_t edges = r.u64();
    for (std::uint64_t e = 0; e < edges; ++e) {
      const synth::Word input = r.u32();
      const synth::Word output = r.u32();
      const auto next = static_cast<int>(r.u64());
      m.set_transition(static_cast<int>(state), input, output, next);
    }
  }
  return m;
}

void write_synthesis(Writer& w, const synth::SynthesisResult& v) {
  w.u32(static_cast<std::uint32_t>(v.verdict));
  w.u32(static_cast<std::uint32_t>(v.engine_used));
  w.str(v.substrate_used);
  w.f64(v.seconds);
  w.u64(v.state_bits);
  w.u64(v.ucw_states);
  w.u64(v.game_positions);
  w.u64(v.peak_bdd_nodes);
  w.u64(v.bdd_stats.peak_nodes);
  w.u64(v.bdd_stats.unique_hits);
  w.u64(v.bdd_stats.cache_hits);
  w.u64(v.bdd_stats.cache_misses);
  w.u64(v.bdd_stats.cache_evictions);
  w.i64(v.iterations);
  w.boolean(v.controller.has_value());
  if (v.controller) write_mealy(w, *v.controller);
}

synth::SynthesisResult read_synthesis(Reader& r) {
  synth::SynthesisResult v;
  v.verdict = static_cast<synth::Realizability>(r.u32());
  v.engine_used = static_cast<synth::Engine>(r.u32());
  v.substrate_used = r.str();
  v.seconds = r.f64();
  v.state_bits = r.u64();
  v.ucw_states = r.u64();
  v.game_positions = r.u64();
  v.peak_bdd_nodes = r.u64();
  v.bdd_stats.peak_nodes = r.u64();
  v.bdd_stats.unique_hits = r.u64();
  v.bdd_stats.cache_hits = r.u64();
  v.bdd_stats.cache_misses = r.u64();
  v.bdd_stats.cache_evictions = r.u64();
  v.iterations = static_cast<int>(r.i64());
  if (r.boolean()) v.controller = read_mealy(r);
  return v;
}

void write_index_sets(Writer& w, const std::vector<std::size_t>& v) {
  w.u64(v.size());
  for (std::size_t x : v) w.u64(x);
}

std::vector<std::size_t> read_index_set(Reader& r) {
  std::vector<std::size_t> v(r.u64());
  for (std::size_t& x : v) x = r.u64();
  return v;
}

void write_refinement(Writer& w, const refine::RefinementOutcome& v) {
  w.boolean(v.consistent);
  w.boolean(v.adjustment.has_value());
  if (v.adjustment) {
    w.str(v.adjustment->variable);
    w.boolean(v.adjustment->now_input);
  }
  // std::set iterates in order: deterministic bytes.
  w.u64(v.partition.inputs.size());
  for (const std::string& s : v.partition.inputs) w.str(s);
  w.u64(v.partition.outputs.size());
  for (const std::string& s : v.partition.outputs) w.str(s);
  write_index_sets(w, v.localization.core);
  w.u64(v.localization.correction_sets.size());
  for (const std::vector<std::size_t>& set : v.localization.correction_sets) {
    write_index_sets(w, set);
  }
  write_index_sets(w, v.localization.related);
  w.u64(v.localization.checks);
  w.u64(v.checks);
}

refine::RefinementOutcome read_refinement(Reader& r) {
  refine::RefinementOutcome v;
  v.consistent = r.boolean();
  if (r.boolean()) {
    refine::Adjustment adj;
    adj.variable = r.str();
    adj.now_input = r.boolean();
    v.adjustment = adj;
  }
  const std::uint64_t inputs = r.u64();
  for (std::uint64_t i = 0; i < inputs; ++i) v.partition.inputs.insert(r.str());
  const std::uint64_t outputs = r.u64();
  for (std::uint64_t i = 0; i < outputs; ++i) v.partition.outputs.insert(r.str());
  v.localization.core = read_index_set(r);
  v.localization.correction_sets.resize(r.u64());
  for (std::vector<std::size_t>& set : v.localization.correction_sets) {
    set = read_index_set(r);
  }
  v.localization.related = read_index_set(r);
  v.localization.checks = r.u64();
  v.checks = r.u64();
  return v;
}

void write_abstraction(Writer& w, const timeabs::Abstraction& v) {
  w.u32(v.divisor);
  w.u64(v.reduced.size());
  for (std::uint32_t x : v.reduced) w.u32(x);
  w.u64(v.errors.size());
  for (std::int64_t x : v.errors) w.i64(x);
  w.u64(v.reduced_sum);
  w.u64(v.error_sum);
}

timeabs::Abstraction read_abstraction(Reader& r) {
  timeabs::Abstraction v;
  v.divisor = r.u32();
  v.reduced.resize(r.u64());
  for (std::uint32_t& x : v.reduced) x = r.u32();
  v.errors.resize(r.u64());
  for (std::int64_t& x : v.errors) x = r.i64();
  v.reduced_sum = r.u64();
  v.error_sum = r.u64();
  return v;
}

// ---- Section writer: collect, sort by key, emit -----------------------------

template <typename Value, typename ForEach, typename WriteValue>
std::uint64_t write_section(Writer& w, std::uint8_t tag, ForEach for_each,
                            WriteValue write_value) {
  std::vector<std::pair<util::Digest, Value>> entries;
  for_each([&](const util::Digest& key, const Value& value) {
    entries.emplace_back(key, value);
  });
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.first.hi != b.first.hi ? a.first.hi < b.first.hi
                                              : a.first.lo < b.first.lo;
            });
  w.u8(tag);
  w.u64(entries.size());
  for (const auto& [key, value] : entries) {
    w.digest(key);
    write_value(w, value);
  }
  return entries.size();
}

void expect_tag(Reader& r, std::uint8_t tag, const std::string& path) {
  if (r.u8() != tag) {
    throw SnapshotError(SnapshotErrorKind::kCorrupted, path,
                        "artifact sections out of order");
  }
}

util::Digest body_checksum(const std::string& body) {
  return util::DigestBuilder("snapshot-body").str(body).finalize();
}

}  // namespace

void save_snapshot(const Store& store, const std::string& path,
                   const util::Digest& lexicon_fingerprint) {
  Writer body;
  write_section<nlp::Sentence>(
      body, kTagSentence,
      [&](auto&& visit) { store.for_each_sentence(visit); }, write_sentence);
  write_section<bool>(
      body, kTagSatisfiable,
      [&](auto&& visit) { store.for_each_satisfiable(visit); },
      [](Writer& w, bool v) { w.boolean(v); });
  write_section<synth::SynthesisResult>(
      body, kTagSynthesis,
      [&](auto&& visit) { store.for_each_synthesis(visit); }, write_synthesis);
  write_section<refine::RefinementOutcome>(
      body, kTagRefinement,
      [&](auto&& visit) { store.for_each_refinement(visit); }, write_refinement);
  write_section<timeabs::Abstraction>(
      body, kTagAbstraction,
      [&](auto&& visit) { store.for_each_abstraction(visit); },
      write_abstraction);

  Writer file;
  for (char c : kMagic) file.u8(static_cast<std::uint8_t>(c));
  file.u32(kSnapshotVersion);
  file.digest(lexicon_fingerprint);
  file.u64(body.bytes().size());

  // Atomic publish: write a process-unique sibling, then rename. rename(2)
  // within one directory is atomic, so concurrent readers see either the
  // old complete file or the new one, never a prefix.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw SnapshotError(SnapshotErrorKind::kIo, path,
                          "cannot open temporary file " + tmp);
    }
    const util::Digest checksum = body_checksum(body.bytes());
    Writer footer;
    footer.digest(checksum);
    out.write(file.bytes().data(),
              static_cast<std::streamsize>(file.bytes().size()));
    out.write(body.bytes().data(),
              static_cast<std::streamsize>(body.bytes().size()));
    out.write(footer.bytes().data(),
              static_cast<std::streamsize>(footer.bytes().size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw SnapshotError(SnapshotErrorKind::kIo, path, "short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError(SnapshotErrorKind::kIo, path,
                        "cannot rename " + tmp + " into place");
  }
}

SnapshotMeta load_snapshot(Store& store, const std::string& path,
                           const util::Digest& expected_fingerprint) {
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw SnapshotError(SnapshotErrorKind::kIo, path, "cannot open snapshot");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof()) {
      throw SnapshotError(SnapshotErrorKind::kIo, path, "read failure");
    }
    data = std::move(buffer).str();
  }

  // Header: magic, version, fingerprint, body length.
  constexpr std::size_t kHeaderSize = 8 + 4 + 16 + 8;
  if (data.size() < kHeaderSize) {
    throw SnapshotError(SnapshotErrorKind::kTruncated, path,
                        "file shorter than the snapshot header");
  }
  Reader header(std::string_view(data).substr(0, kHeaderSize), path);
  for (char expected : kMagic) {
    if (static_cast<char>(header.u8()) != expected) {
      throw SnapshotError(SnapshotErrorKind::kBadMagic, path,
                          "not a speccc cache snapshot");
    }
  }
  SnapshotMeta meta;
  meta.version = header.u32();
  if (meta.version != kSnapshotVersion) {
    throw SnapshotError(SnapshotErrorKind::kBadVersion, path,
                        "format version " + std::to_string(meta.version) +
                            " (this build reads version " +
                            std::to_string(kSnapshotVersion) + ")");
  }
  meta.lexicon_fingerprint = header.digest();
  if (meta.lexicon_fingerprint != expected_fingerprint) {
    throw SnapshotError(
        SnapshotErrorKind::kBadFingerprint, path,
        "lexicon fingerprint " + meta.lexicon_fingerprint.hex() +
            " does not match this process's " + expected_fingerprint.hex() +
            " (snapshot from a different vocabulary; regenerate it)");
  }
  const std::uint64_t body_size = header.u64();
  if (data.size() < kHeaderSize + body_size + 16) {
    throw SnapshotError(SnapshotErrorKind::kTruncated, path,
                        "file shorter than its declared body + checksum");
  }
  const std::string body = data.substr(kHeaderSize, body_size);
  Reader footer(std::string_view(data).substr(kHeaderSize + body_size, 16),
                path);
  if (body_checksum(body) != footer.digest()) {
    throw SnapshotError(SnapshotErrorKind::kCorrupted, path,
                        "body checksum mismatch");
  }

  // Decode the whole body before touching the store, so a decoding
  // failure (possible despite the checksum only if the writer was buggy)
  // leaves the store untouched.
  Reader r(body, path);
  std::vector<std::pair<util::Digest, nlp::Sentence>> sentences;
  std::vector<std::pair<util::Digest, bool>> satisfiable;
  std::vector<std::pair<util::Digest, synth::SynthesisResult>> synthesis;
  std::vector<std::pair<util::Digest, refine::RefinementOutcome>> refinement;
  std::vector<std::pair<util::Digest, timeabs::Abstraction>> abstraction;
  const auto read_entries = [&](std::uint8_t tag, auto& out, auto read_value) {
    expect_tag(r, tag, path);
    const std::uint64_t count = r.u64();
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      util::Digest key = r.digest();
      out.emplace_back(std::move(key), read_value(r));
    }
    meta.entries += count;
  };
  read_entries(kTagSentence, sentences, read_sentence);
  read_entries(kTagSatisfiable, satisfiable,
               [](Reader& reader) { return reader.boolean(); });
  read_entries(kTagSynthesis, synthesis, read_synthesis);
  read_entries(kTagRefinement, refinement, read_refinement);
  read_entries(kTagAbstraction, abstraction, read_abstraction);
  if (!r.done()) {
    throw SnapshotError(SnapshotErrorKind::kCorrupted, path,
                        "trailing bytes after the last section");
  }

  for (const auto& [key, value] : sentences) store.put_sentence(key, value);
  for (const auto& [key, value] : satisfiable) store.put_satisfiable(key, value);
  for (const auto& [key, value] : synthesis) store.put_synthesis(key, value);
  for (const auto& [key, value] : refinement) store.put_refinement(key, value);
  for (const auto& [key, value] : abstraction) store.put_abstraction(key, value);
  return meta;
}

}  // namespace speccc::cache
