// Cross-spec memoization: a thread-safe, two-level, content-addressed
// store for the artifacts the Fig. 1 pipeline recomputes across repeated
// and revised specifications.
//
//   Level 1 (per sentence): the structured-English parse
//     (nlp::parse_sentence output), keyed by the whitespace-normalized
//     sentence text plus the lexicon fingerprint. Requirements documents
//     under revision share most of their sentences across revisions — and
//     the pipeline itself parses every sentence twice when time
//     abstraction re-translates — so this level hits even within a single
//     run.
//
//   Level 2 (per formula / per spec): decision artifacts keyed by
//     ltl::canonical_digest — per-requirement tableau satisfiability, the
//     whole-spec synthesis verdict (keyed by formulas + I/O signature +
//     engine options), the refinement outcome, and the time-abstraction
//     solution (keyed by Theta + budget + backend). A repeated spec skips
//     synthesis entirely; a revised spec still reuses every per-formula
//     artifact of its unchanged requirements.
//
// Key derivation rule: a key must cover EVERYTHING the cached value is a
// function of — the cache is authoritative on a hit and never validates.
// The *_key helpers below are the single source of truth; extend them
// (never reuse a domain string) when adding a cached artifact.
//
// Concurrency: each level is sharded over mutex-protected maps (shard =
// key bits), so batch workers (batch/batch.hpp) and serve workers
// (serve/service.hpp) share one store without serializing on a global
// lock — this is the sanctioned exception to the per-worker-isolation
// threading rule, in the same class as the formula intern arena. Values
// are returned by copy; entries are immutable once inserted. Two workers
// may race to compute the same missing entry; both compute, both insert
// the identical value, and the counters record two misses — which is why
// hit/miss statistics are diagnostics (like timings), excluded from
// canonical batch reports.
//
// Determinism: every cached computation is a pure function of its key, so
// a run with a store (fresh or warm) is byte-identical in all canonical
// outputs to a run without one; only wall-clock changes. batch_test and
// the CI cache smoke enforce this.
//
// Eviction (StoreOptions::eviction): kFifo per shard by default — FIFO
// keeps the hit path single-lock-cheap, and batch workloads sweep keys in
// waves where recency tracking buys little. Long-lived serve processes
// use kLru instead: a resident store sees the same hot specifications
// recur indefinitely, and FIFO would cycle them out on age alone.
// StoreOptions::max_entries is a GLOBAL cap per artifact kind, enforced
// exactly: per-shard caps differ by at most one and sum to max_entries
// (shards low in index take the remainder). When max_entries is positive
// but smaller than the shard count, the shards whose cap works out to
// zero decline inserts — lookups there always miss, which only costs
// recomputation.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <list>
#include <optional>
#include <string>
#include <vector>

#include "ltl/formula.hpp"
#include "nlp/syntax.hpp"
#include "refine/refine.hpp"
#include "synth/synthesizer.hpp"
#include "timeabs/abstraction.hpp"
#include "util/digest.hpp"

namespace speccc::cache {

/// Per-shard eviction policy (see the header comment for the trade-off).
enum class Eviction {
  kFifo,  ///< insertion order; get() never mutates (batch default)
  kLru,   ///< least-recently-used; get() refreshes recency (serve default)
};

[[nodiscard]] const char* eviction_name(Eviction eviction);

struct StoreOptions {
  /// Mutex shards per artifact kind; more shards = less contention.
  std::size_t shards = 16;
  /// Global entry cap per artifact kind (sentences, satisfiability,
  /// synthesis, refinement, abstraction each get their own cap), enforced
  /// exactly across shards (per-shard caps differ by at most one and sum
  /// to this). 0 means unlimited.
  std::size_t max_entries = 1 << 16;
  /// Replacement policy applied when a shard is at capacity.
  Eviction eviction = Eviction::kFifo;
};

/// Point-in-time counters. "l1" is the sentence level, "l2" aggregates the
/// formula/spec-level artifact kinds. Snapshots are monotone; subtract two
/// to scope statistics to one batch (BatchReport does this).
struct StatsSnapshot {
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] std::uint64_t hits() const { return l1_hits + l2_hits; }
  [[nodiscard]] std::uint64_t misses() const { return l1_misses + l2_misses; }
  /// this - earlier, fieldwise (for per-batch deltas).
  [[nodiscard]] StatsSnapshot since(const StatsSnapshot& earlier) const;
};

/// The one-line human rendering ("cache: L1 H hits / M misses, L2 ..."),
/// shared by the batch summary and speccc_batch --cache-stats so the two
/// cannot drift.
void print_stats(std::ostream& os, const StatsSnapshot& stats);

namespace detail {

/// One sharded evicting map. Value types must be copyable; get() copies
/// out under the shard lock (and, under kLru, refreshes the entry's
/// recency while it holds it).
template <typename Value>
class ShardedMap {
 public:
  ShardedMap(std::size_t shards, std::size_t max_entries, Eviction eviction);
  ~ShardedMap();
  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  [[nodiscard]] std::optional<Value> get(const util::Digest& key) const;
  /// Inserts unless the key is already present; evicts per the policy when
  /// the shard is at capacity (shards capped at zero decline the insert).
  /// Returns evictions made.
  std::size_t put(const util::Digest& key, const Value& value);
  [[nodiscard]] std::size_t size() const;
  /// Visit every live entry (shard by shard, insertion order within a
  /// shard; callers needing a deterministic order sort by key). The
  /// callback runs under the shard lock: keep it cheap and never call back
  /// into the same map.
  void for_each(
      const std::function<void(const util::Digest&, const Value&)>& visit) const;

 private:
  struct Shard;
  std::vector<Shard> shards_;
  std::vector<std::size_t> shard_caps_;  // empty = unlimited
  Eviction eviction_;
};

}  // namespace detail

class Store {
 public:
  explicit Store(StoreOptions options = {});

  // ---- Level 1: sentence parses --------------------------------------------
  [[nodiscard]] std::optional<nlp::Sentence> find_sentence(const util::Digest& key) const;
  void put_sentence(const util::Digest& key, const nlp::Sentence& sentence);

  // ---- Level 2: decision artifacts -----------------------------------------
  [[nodiscard]] std::optional<bool> find_satisfiable(const util::Digest& key) const;
  void put_satisfiable(const util::Digest& key, bool satisfiable);

  [[nodiscard]] std::optional<synth::SynthesisResult> find_synthesis(
      const util::Digest& key) const;
  void put_synthesis(const util::Digest& key, const synth::SynthesisResult& result);

  [[nodiscard]] std::optional<refine::RefinementOutcome> find_refinement(
      const util::Digest& key) const;
  void put_refinement(const util::Digest& key, const refine::RefinementOutcome& outcome);

  [[nodiscard]] std::optional<timeabs::Abstraction> find_abstraction(
      const util::Digest& key) const;
  void put_abstraction(const util::Digest& key, const timeabs::Abstraction& abstraction);

  [[nodiscard]] StatsSnapshot stats() const;
  /// Total live entries across every artifact kind.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const StoreOptions& options() const { return options_; }

  // ---- Enumeration + merge (the snapshot surface, cache/snapshot.hpp) ------
  // Entry visitors per artifact kind. Iteration order is unspecified (the
  // snapshot writer sorts by key); callbacks run under shard locks and do
  // not touch the hit/miss counters.
  void for_each_sentence(
      const std::function<void(const util::Digest&, const nlp::Sentence&)>& visit)
      const;
  void for_each_satisfiable(
      const std::function<void(const util::Digest&, bool)>& visit) const;
  void for_each_synthesis(
      const std::function<void(const util::Digest&, const synth::SynthesisResult&)>&
          visit) const;
  void for_each_refinement(
      const std::function<void(const util::Digest&,
                               const refine::RefinementOutcome&)>& visit) const;
  void for_each_abstraction(
      const std::function<void(const util::Digest&, const timeabs::Abstraction&)>&
          visit) const;

  /// Copy every entry of `other` absent from this store (first writer
  /// wins, like racing put()s; this store's eviction policy and caps
  /// apply). The shard coordinator merges per-shard snapshot stores with
  /// this. Returns entries added.
  std::size_t merge(const Store& other);

  /// Per-thread counters: every hit/miss/eviction any Store records on the
  /// calling thread also accumulates into a thread-local snapshot. A serve
  /// worker runs one request start-to-finish on one thread, so the delta
  /// of two thread_stats() calls is that request's exact cache accounting
  /// — no cross-worker races, unlike the shared stats() counters.
  [[nodiscard]] static StatsSnapshot thread_stats();

 private:
  StoreOptions options_;
  detail::ShardedMap<nlp::Sentence> sentences_;
  detail::ShardedMap<bool> satisfiable_;
  detail::ShardedMap<synth::SynthesisResult> synthesis_;
  detail::ShardedMap<refine::RefinementOutcome> refinement_;
  detail::ShardedMap<timeabs::Abstraction> abstraction_;

  mutable std::atomic<std::uint64_t> l1_hits_{0};
  mutable std::atomic<std::uint64_t> l1_misses_{0};
  mutable std::atomic<std::uint64_t> l2_hits_{0};
  mutable std::atomic<std::uint64_t> l2_misses_{0};
  std::atomic<std::uint64_t> evictions_{0};

  void record_eviction(std::size_t evicted);
};

// ---- Key derivation ---------------------------------------------------------
// Each helper folds in everything its artifact depends on, under a unique
// domain string. Collisions across kinds are impossible (separate maps);
// collisions within a kind are 2^-128 events.

/// Level 1: (whitespace-normalized sentence, lexicon fingerprint).
[[nodiscard]] util::Digest sentence_key(std::string_view normalized_text,
                                        const util::Digest& lexicon_fingerprint);

/// Whitespace normalization for sentence_key: trim plus collapse runs of
/// blanks to single spaces. Case is preserved — mid-sentence
/// capitalization is grammatically meaningful (proper names).
[[nodiscard]] std::string normalize_sentence(std::string_view text);

/// Level 2: per-formula tableau satisfiability.
[[nodiscard]] util::Digest satisfiability_key(ltl::Formula formula);

/// Level 2: whole-spec synthesis (formulas in order, signature, options).
[[nodiscard]] util::Digest synthesis_key(const std::vector<ltl::Formula>& formulas,
                                         const synth::IoSignature& signature,
                                         const synth::SynthesisOptions& options);

/// Level 2: synthesis under a non-auto substrate spec ("tableau",
/// "race:...", ...). The spec string is folded in because different
/// substrates are different computations (a tableau abstention must not
/// shadow auto's definite verdict). Auto keeps the untagged key above, so
/// stores warmed before the substrate layer stay valid.
[[nodiscard]] util::Digest synthesis_key(const std::vector<ltl::Formula>& formulas,
                                         const synth::IoSignature& signature,
                                         const synth::SynthesisOptions& options,
                                         std::string_view substrate_spec);

/// Level 2: stage-3 refinement (formulas, initial partition via the
/// signature it induces, synthesis options, localization options -- the
/// cached outcome embeds the MUS and correction sets, which depend on the
/// method and enumeration cap).
[[nodiscard]] util::Digest refinement_key(
    const std::vector<ltl::Formula>& formulas,
    const synth::IoSignature& signature,
    const synth::SynthesisOptions& options,
    const refine::LocalizeOptions& localize_options = {});

/// Level 2: the Section IV-E abstraction (Theta, budget, signs, backend).
[[nodiscard]] util::Digest abstraction_key(const timeabs::Request& request,
                                           int backend);

}  // namespace speccc::cache
