#include "cache/store.hpp"

#include <deque>
#include <mutex>
#include <ostream>
#include <unordered_map>

namespace speccc::cache {

StatsSnapshot StatsSnapshot::since(const StatsSnapshot& earlier) const {
  StatsSnapshot delta;
  delta.l1_hits = l1_hits - earlier.l1_hits;
  delta.l1_misses = l1_misses - earlier.l1_misses;
  delta.l2_hits = l2_hits - earlier.l2_hits;
  delta.l2_misses = l2_misses - earlier.l2_misses;
  delta.evictions = evictions - earlier.evictions;
  return delta;
}

void print_stats(std::ostream& os, const StatsSnapshot& stats) {
  os << "cache: L1 " << stats.l1_hits << " hits / " << stats.l1_misses
     << " misses, L2 " << stats.l2_hits << " hits / " << stats.l2_misses
     << " misses, " << stats.evictions << " evictions\n";
}

namespace detail {

template <typename Value>
struct ShardedMap<Value>::Shard {
  mutable std::mutex mutex;
  std::unordered_map<util::Digest, Value> map;
  std::deque<util::Digest> fifo;  // insertion order, for eviction
};

template <typename Value>
ShardedMap<Value>::ShardedMap(std::size_t shards, std::size_t max_entries)
    : shards_(shards == 0 ? 1 : shards) {
  const std::size_t n = shards_.size();
  // Ceiling split so the total cap is at least max_entries.
  per_shard_cap_ = max_entries == 0 ? 0 : (max_entries + n - 1) / n;
}

template <typename Value>
ShardedMap<Value>::~ShardedMap() = default;

template <typename Value>
std::optional<Value> ShardedMap<Value>::get(const util::Digest& key) const {
  const Shard& shard = shards_[key.hi % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return std::nullopt;
  return it->second;
}

template <typename Value>
std::size_t ShardedMap<Value>::put(const util::Digest& key, const Value& value) {
  Shard& shard = shards_[key.hi % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.map.count(key) != 0) return 0;  // racing writer got here first
  std::size_t evicted = 0;
  while (per_shard_cap_ != 0 && shard.map.size() >= per_shard_cap_) {
    shard.map.erase(shard.fifo.front());
    shard.fifo.pop_front();
    ++evicted;
  }
  shard.map.emplace(key, value);
  shard.fifo.push_back(key);
  return evicted;
}

template <typename Value>
std::size_t ShardedMap<Value>::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

template class ShardedMap<nlp::Sentence>;
template class ShardedMap<bool>;
template class ShardedMap<synth::SynthesisResult>;
template class ShardedMap<refine::RefinementOutcome>;
template class ShardedMap<timeabs::Abstraction>;

}  // namespace detail

Store::Store(StoreOptions options)
    : options_(options),
      sentences_(options.shards, options.max_entries),
      satisfiable_(options.shards, options.max_entries),
      synthesis_(options.shards, options.max_entries),
      refinement_(options.shards, options.max_entries),
      abstraction_(options.shards, options.max_entries) {}

namespace {

/// Count a lookup against the right level's counters.
void count(bool hit, std::atomic<std::uint64_t>& hits,
           std::atomic<std::uint64_t>& misses) {
  (hit ? hits : misses).fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::optional<nlp::Sentence> Store::find_sentence(const util::Digest& key) const {
  auto result = sentences_.get(key);
  count(result.has_value(), l1_hits_, l1_misses_);
  return result;  // non-const local: moves
}

void Store::put_sentence(const util::Digest& key, const nlp::Sentence& sentence) {
  evictions_.fetch_add(sentences_.put(key, sentence), std::memory_order_relaxed);
}

std::optional<bool> Store::find_satisfiable(const util::Digest& key) const {
  auto result = satisfiable_.get(key);
  count(result.has_value(), l2_hits_, l2_misses_);
  return result;  // non-const local: moves
}

void Store::put_satisfiable(const util::Digest& key, bool satisfiable) {
  evictions_.fetch_add(satisfiable_.put(key, satisfiable),
                       std::memory_order_relaxed);
}

std::optional<synth::SynthesisResult> Store::find_synthesis(
    const util::Digest& key) const {
  auto result = synthesis_.get(key);
  count(result.has_value(), l2_hits_, l2_misses_);
  return result;  // non-const local: moves
}

void Store::put_synthesis(const util::Digest& key,
                          const synth::SynthesisResult& result) {
  evictions_.fetch_add(synthesis_.put(key, result), std::memory_order_relaxed);
}

std::optional<refine::RefinementOutcome> Store::find_refinement(
    const util::Digest& key) const {
  auto result = refinement_.get(key);
  count(result.has_value(), l2_hits_, l2_misses_);
  return result;  // non-const local: moves
}

void Store::put_refinement(const util::Digest& key,
                           const refine::RefinementOutcome& outcome) {
  evictions_.fetch_add(refinement_.put(key, outcome), std::memory_order_relaxed);
}

std::optional<timeabs::Abstraction> Store::find_abstraction(
    const util::Digest& key) const {
  auto result = abstraction_.get(key);
  count(result.has_value(), l2_hits_, l2_misses_);
  return result;  // non-const local: moves
}

void Store::put_abstraction(const util::Digest& key,
                            const timeabs::Abstraction& abstraction) {
  evictions_.fetch_add(abstraction_.put(key, abstraction),
                       std::memory_order_relaxed);
}

StatsSnapshot Store::stats() const {
  StatsSnapshot snapshot;
  snapshot.l1_hits = l1_hits_.load(std::memory_order_relaxed);
  snapshot.l1_misses = l1_misses_.load(std::memory_order_relaxed);
  snapshot.l2_hits = l2_hits_.load(std::memory_order_relaxed);
  snapshot.l2_misses = l2_misses_.load(std::memory_order_relaxed);
  snapshot.evictions = evictions_.load(std::memory_order_relaxed);
  return snapshot;
}

std::size_t Store::size() const {
  return sentences_.size() + satisfiable_.size() + synthesis_.size() +
         refinement_.size() + abstraction_.size();
}

// ---- Key derivation ---------------------------------------------------------

std::string normalize_sentence(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  for (char c : text) {
    const bool blank = c == ' ' || c == '\t' || c == '\r' || c == '\n';
    if (blank) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  return out;
}

util::Digest sentence_key(std::string_view normalized_text,
                          const util::Digest& lexicon_fingerprint) {
  return util::DigestBuilder("sentence")
      .str(normalized_text)
      .digest(lexicon_fingerprint)
      .finalize();
}

util::Digest satisfiability_key(ltl::Formula formula) {
  return util::DigestBuilder("sat")
      .digest(ltl::canonical_digest(formula))
      .finalize();
}

namespace {

void fold_signature(util::DigestBuilder& builder,
                    const synth::IoSignature& signature) {
  builder.u64(signature.inputs.size());
  for (const std::string& in : signature.inputs) builder.str(in);
  builder.u64(signature.outputs.size());
  for (const std::string& out : signature.outputs) builder.str(out);
}

void fold_options(util::DigestBuilder& builder,
                  const synth::SynthesisOptions& options) {
  builder.u64(static_cast<std::uint64_t>(options.engine));
  builder.u64(static_cast<std::uint64_t>(options.bounded.max_k));
  builder.u64(options.bounded.extract ? 1 : 0);
  builder.u64(options.bounded.max_alphabet_bits);
  builder.u64(options.bounded.max_game_positions);
  builder.u64(options.bounded.max_ucw_states);
  builder.u64(options.symbolic.extract ? 1 : 0);
  builder.u64(options.symbolic.max_extract_inputs);
}

void fold_formulas(util::DigestBuilder& builder,
                   const std::vector<ltl::Formula>& formulas) {
  builder.u64(formulas.size());
  for (ltl::Formula f : formulas) builder.digest(ltl::canonical_digest(f));
}

}  // namespace

util::Digest synthesis_key(const std::vector<ltl::Formula>& formulas,
                           const synth::IoSignature& signature,
                           const synth::SynthesisOptions& options) {
  util::DigestBuilder builder("synthesis");
  fold_formulas(builder, formulas);
  fold_signature(builder, signature);
  fold_options(builder, options);
  return builder.finalize();
}

util::Digest refinement_key(const std::vector<ltl::Formula>& formulas,
                            const synth::IoSignature& signature,
                            const synth::SynthesisOptions& options,
                            const refine::LocalizeOptions& localize_options) {
  util::DigestBuilder builder("refinement");
  fold_formulas(builder, formulas);
  fold_signature(builder, signature);
  fold_options(builder, options);
  builder.u64(static_cast<std::uint64_t>(localize_options.method));
  builder.u64(localize_options.max_correction_sets);
  return builder.finalize();
}

util::Digest abstraction_key(const timeabs::Request& request, int backend) {
  util::DigestBuilder builder("abstraction");
  builder.u64(request.thetas.size());
  for (std::uint32_t theta : request.thetas) builder.u64(theta);
  builder.u64(request.error_budget);
  builder.u64(request.signs.size());
  for (timeabs::ErrorSign sign : request.signs) {
    builder.u64(static_cast<std::uint64_t>(sign));
  }
  builder.u64(static_cast<std::uint64_t>(backend));
  return builder.finalize();
}

}  // namespace speccc::cache
