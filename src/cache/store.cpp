#include "cache/store.hpp"

#include <mutex>
#include <ostream>
#include <unordered_map>

namespace speccc::cache {

const char* eviction_name(Eviction eviction) {
  switch (eviction) {
    case Eviction::kFifo: return "fifo";
    case Eviction::kLru: return "lru";
  }
  return "?";
}

StatsSnapshot StatsSnapshot::since(const StatsSnapshot& earlier) const {
  StatsSnapshot delta;
  delta.l1_hits = l1_hits - earlier.l1_hits;
  delta.l1_misses = l1_misses - earlier.l1_misses;
  delta.l2_hits = l2_hits - earlier.l2_hits;
  delta.l2_misses = l2_misses - earlier.l2_misses;
  delta.evictions = evictions - earlier.evictions;
  return delta;
}

void print_stats(std::ostream& os, const StatsSnapshot& stats) {
  os << "cache: L1 " << stats.l1_hits << " hits / " << stats.l1_misses
     << " misses, L2 " << stats.l2_hits << " hits / " << stats.l2_misses
     << " misses, " << stats.evictions << " evictions\n";
}

namespace {

/// The per-thread accumulator behind Store::thread_stats(). Plain fields:
/// only the owning thread ever touches its copy.
thread_local StatsSnapshot tls_stats;

}  // namespace

namespace detail {

template <typename Value>
struct ShardedMap<Value>::Shard {
  mutable std::mutex mutex;
  /// Eviction order: front is next to evict. kFifo appends on insert and
  /// never reorders; kLru additionally splices an entry to the back on
  /// every get() hit.
  mutable std::list<std::pair<util::Digest, Value>> entries;
  mutable std::unordered_map<util::Digest,
                             typename std::list<std::pair<util::Digest, Value>>::iterator>
      index;
};

template <typename Value>
ShardedMap<Value>::ShardedMap(std::size_t shards, std::size_t max_entries,
                              Eviction eviction)
    : shards_(shards == 0 ? 1 : shards), eviction_(eviction) {
  const std::size_t n = shards_.size();
  if (max_entries != 0) {
    // Exact global cap: per-shard caps differ by at most one and sum to
    // max_entries. Shards whose cap is zero (cap < shard count) decline
    // inserts rather than stretching the documented total.
    shard_caps_.resize(n);
    const std::size_t base = max_entries / n;
    const std::size_t remainder = max_entries % n;
    for (std::size_t i = 0; i < n; ++i) {
      shard_caps_[i] = base + (i < remainder ? 1 : 0);
    }
  }
}

template <typename Value>
ShardedMap<Value>::~ShardedMap() = default;

template <typename Value>
std::optional<Value> ShardedMap<Value>::get(const util::Digest& key) const {
  const Shard& shard = shards_[key.hi % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return std::nullopt;
  if (eviction_ == Eviction::kLru) {
    shard.entries.splice(shard.entries.end(), shard.entries, it->second);
  }
  return it->second->second;
}

template <typename Value>
std::size_t ShardedMap<Value>::put(const util::Digest& key, const Value& value) {
  const std::size_t which = key.hi % shards_.size();
  Shard& shard = shards_[which];
  const std::size_t cap =
      shard_caps_.empty() ? 0 : shard_caps_[which];  // 0 in a capped map: declined
  if (!shard_caps_.empty() && cap == 0) return 0;
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.index.count(key) != 0) return 0;  // racing writer got here first
  std::size_t evicted = 0;
  while (cap != 0 && shard.index.size() >= cap) {
    shard.index.erase(shard.entries.front().first);
    shard.entries.pop_front();
    ++evicted;
  }
  shard.entries.emplace_back(key, value);
  shard.index.emplace(key, std::prev(shard.entries.end()));
  return evicted;
}

template <typename Value>
void ShardedMap<Value>::for_each(
    const std::function<void(const util::Digest&, const Value&)>& visit) const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& entry : shard.entries) visit(entry.first, entry.second);
  }
}

template <typename Value>
std::size_t ShardedMap<Value>::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.index.size();
  }
  return total;
}

template class ShardedMap<nlp::Sentence>;
template class ShardedMap<bool>;
template class ShardedMap<synth::SynthesisResult>;
template class ShardedMap<refine::RefinementOutcome>;
template class ShardedMap<timeabs::Abstraction>;

}  // namespace detail

Store::Store(StoreOptions options)
    : options_(options),
      sentences_(options.shards, options.max_entries, options.eviction),
      satisfiable_(options.shards, options.max_entries, options.eviction),
      synthesis_(options.shards, options.max_entries, options.eviction),
      refinement_(options.shards, options.max_entries, options.eviction),
      abstraction_(options.shards, options.max_entries, options.eviction) {}

namespace {

/// Count a lookup against the right level's counters (shared atomics plus
/// the calling thread's per-request accumulator).
void count(bool hit, std::atomic<std::uint64_t>& hits,
           std::atomic<std::uint64_t>& misses, std::uint64_t StatsSnapshot::*tls_hit,
           std::uint64_t StatsSnapshot::*tls_miss) {
  (hit ? hits : misses).fetch_add(1, std::memory_order_relaxed);
  ++(tls_stats.*(hit ? tls_hit : tls_miss));
}

}  // namespace

void Store::record_eviction(std::size_t evicted) {
  if (evicted == 0) return;
  evictions_.fetch_add(evicted, std::memory_order_relaxed);
  tls_stats.evictions += evicted;
}

StatsSnapshot Store::thread_stats() { return tls_stats; }

std::optional<nlp::Sentence> Store::find_sentence(const util::Digest& key) const {
  auto result = sentences_.get(key);
  count(result.has_value(), l1_hits_, l1_misses_, &StatsSnapshot::l1_hits,
        &StatsSnapshot::l1_misses);
  return result;  // non-const local: moves
}

void Store::put_sentence(const util::Digest& key, const nlp::Sentence& sentence) {
  record_eviction(sentences_.put(key, sentence));
}

std::optional<bool> Store::find_satisfiable(const util::Digest& key) const {
  auto result = satisfiable_.get(key);
  count(result.has_value(), l2_hits_, l2_misses_, &StatsSnapshot::l2_hits,
        &StatsSnapshot::l2_misses);
  return result;  // non-const local: moves
}

void Store::put_satisfiable(const util::Digest& key, bool satisfiable) {
  record_eviction(satisfiable_.put(key, satisfiable));
}

std::optional<synth::SynthesisResult> Store::find_synthesis(
    const util::Digest& key) const {
  auto result = synthesis_.get(key);
  count(result.has_value(), l2_hits_, l2_misses_, &StatsSnapshot::l2_hits,
        &StatsSnapshot::l2_misses);
  return result;  // non-const local: moves
}

void Store::put_synthesis(const util::Digest& key,
                          const synth::SynthesisResult& result) {
  record_eviction(synthesis_.put(key, result));
}

std::optional<refine::RefinementOutcome> Store::find_refinement(
    const util::Digest& key) const {
  auto result = refinement_.get(key);
  count(result.has_value(), l2_hits_, l2_misses_, &StatsSnapshot::l2_hits,
        &StatsSnapshot::l2_misses);
  return result;  // non-const local: moves
}

void Store::put_refinement(const util::Digest& key,
                           const refine::RefinementOutcome& outcome) {
  record_eviction(refinement_.put(key, outcome));
}

std::optional<timeabs::Abstraction> Store::find_abstraction(
    const util::Digest& key) const {
  auto result = abstraction_.get(key);
  count(result.has_value(), l2_hits_, l2_misses_, &StatsSnapshot::l2_hits,
        &StatsSnapshot::l2_misses);
  return result;  // non-const local: moves
}

void Store::put_abstraction(const util::Digest& key,
                            const timeabs::Abstraction& abstraction) {
  record_eviction(abstraction_.put(key, abstraction));
}

StatsSnapshot Store::stats() const {
  StatsSnapshot snapshot;
  snapshot.l1_hits = l1_hits_.load(std::memory_order_relaxed);
  snapshot.l1_misses = l1_misses_.load(std::memory_order_relaxed);
  snapshot.l2_hits = l2_hits_.load(std::memory_order_relaxed);
  snapshot.l2_misses = l2_misses_.load(std::memory_order_relaxed);
  snapshot.evictions = evictions_.load(std::memory_order_relaxed);
  return snapshot;
}

std::size_t Store::size() const {
  return sentences_.size() + satisfiable_.size() + synthesis_.size() +
         refinement_.size() + abstraction_.size();
}

void Store::for_each_sentence(
    const std::function<void(const util::Digest&, const nlp::Sentence&)>& visit)
    const {
  sentences_.for_each(visit);
}

void Store::for_each_satisfiable(
    const std::function<void(const util::Digest&, bool)>& visit) const {
  satisfiable_.for_each(visit);
}

void Store::for_each_synthesis(
    const std::function<void(const util::Digest&, const synth::SynthesisResult&)>&
        visit) const {
  synthesis_.for_each(visit);
}

void Store::for_each_refinement(
    const std::function<void(const util::Digest&,
                             const refine::RefinementOutcome&)>& visit) const {
  refinement_.for_each(visit);
}

void Store::for_each_abstraction(
    const std::function<void(const util::Digest&, const timeabs::Abstraction&)>&
        visit) const {
  abstraction_.for_each(visit);
}

std::size_t Store::merge(const Store& other) {
  // put() is first-writer-wins, so merging never overwrites an existing
  // entry; the eviction counters still record any overflow the merge
  // causes under a capped store.
  const std::size_t before = size();
  other.for_each_sentence([this](const util::Digest& key, const nlp::Sentence& v) {
    put_sentence(key, v);
  });
  other.for_each_satisfiable(
      [this](const util::Digest& key, bool v) { put_satisfiable(key, v); });
  other.for_each_synthesis(
      [this](const util::Digest& key, const synth::SynthesisResult& v) {
        put_synthesis(key, v);
      });
  other.for_each_refinement(
      [this](const util::Digest& key, const refine::RefinementOutcome& v) {
        put_refinement(key, v);
      });
  other.for_each_abstraction(
      [this](const util::Digest& key, const timeabs::Abstraction& v) {
        put_abstraction(key, v);
      });
  const std::size_t after = size();
  return after - before;
}

// ---- Key derivation ---------------------------------------------------------

std::string normalize_sentence(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  for (char c : text) {
    const bool blank = c == ' ' || c == '\t' || c == '\r' || c == '\n';
    if (blank) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  return out;
}

util::Digest sentence_key(std::string_view normalized_text,
                          const util::Digest& lexicon_fingerprint) {
  return util::DigestBuilder("sentence")
      .str(normalized_text)
      .digest(lexicon_fingerprint)
      .finalize();
}

util::Digest satisfiability_key(ltl::Formula formula) {
  return util::DigestBuilder("sat")
      .digest(ltl::canonical_digest(formula))
      .finalize();
}

namespace {

void fold_signature(util::DigestBuilder& builder,
                    const synth::IoSignature& signature) {
  builder.u64(signature.inputs.size());
  for (const std::string& in : signature.inputs) builder.str(in);
  builder.u64(signature.outputs.size());
  for (const std::string& out : signature.outputs) builder.str(out);
}

void fold_options(util::DigestBuilder& builder,
                  const synth::SynthesisOptions& options) {
  builder.u64(static_cast<std::uint64_t>(options.engine));
  builder.u64(static_cast<std::uint64_t>(options.bounded.max_k));
  builder.u64(options.bounded.extract ? 1 : 0);
  builder.u64(options.bounded.max_alphabet_bits);
  builder.u64(options.bounded.max_game_positions);
  builder.u64(options.bounded.max_ucw_states);
  builder.u64(options.symbolic.extract ? 1 : 0);
  builder.u64(options.symbolic.max_extract_inputs);
}

void fold_formulas(util::DigestBuilder& builder,
                   const std::vector<ltl::Formula>& formulas) {
  builder.u64(formulas.size());
  for (ltl::Formula f : formulas) builder.digest(ltl::canonical_digest(f));
}

}  // namespace

util::Digest synthesis_key(const std::vector<ltl::Formula>& formulas,
                           const synth::IoSignature& signature,
                           const synth::SynthesisOptions& options) {
  util::DigestBuilder builder("synthesis");
  fold_formulas(builder, formulas);
  fold_signature(builder, signature);
  fold_options(builder, options);
  return builder.finalize();
}

util::Digest synthesis_key(const std::vector<ltl::Formula>& formulas,
                           const synth::IoSignature& signature,
                           const synth::SynthesisOptions& options,
                           std::string_view substrate_spec) {
  util::DigestBuilder builder("synthesis-substrate");
  fold_formulas(builder, formulas);
  fold_signature(builder, signature);
  fold_options(builder, options);
  builder.str(substrate_spec);
  return builder.finalize();
}

util::Digest refinement_key(const std::vector<ltl::Formula>& formulas,
                            const synth::IoSignature& signature,
                            const synth::SynthesisOptions& options,
                            const refine::LocalizeOptions& localize_options) {
  util::DigestBuilder builder("refinement");
  fold_formulas(builder, formulas);
  fold_signature(builder, signature);
  fold_options(builder, options);
  builder.u64(static_cast<std::uint64_t>(localize_options.method));
  builder.u64(localize_options.max_correction_sets);
  return builder.finalize();
}

util::Digest abstraction_key(const timeabs::Request& request, int backend) {
  util::DigestBuilder builder("abstraction");
  builder.u64(request.thetas.size());
  for (std::uint32_t theta : request.thetas) builder.u64(theta);
  builder.u64(request.error_budget);
  builder.u64(request.signs.size());
  for (timeabs::ErrorSign sign : request.signs) {
    builder.u64(static_cast<std::uint64_t>(sign));
  }
  builder.u64(static_cast<std::uint64_t>(backend));
  return builder.finalize();
}

}  // namespace speccc::cache
