// Persistent cache snapshots: serialize a cache::Store to disk so batch
// shards, CI jobs, and the serve daemon start warm instead of recomputing
// every artifact from scratch (ROADMAP item 4's "make cache::Store
// serializable to disk" half).
//
// Format (version 1): a fixed-width little-endian binary layout,
//
//   magic "SPCCSNP1" (8 bytes)
//   u32   format version
//   u64   lexicon fingerprint hi, u64 lo   (nlp::Lexicon::fingerprint())
//   u64   body length in bytes
//   body: per artifact kind (sentences, satisfiability, synthesis,
//         refinement, abstraction, in that fixed order):
//           u8 kind tag, u64 entry count,
//           entries sorted by key (hi, then lo): key hi, key lo, value
//   u64   body checksum hi, u64 lo         (util::DigestBuilder over body)
//
// Determinism: entries are sorted by key before writing, every integer is
// fixed-width little-endian, and doubles are bit-cast -- the same store
// contents produce the same bytes on every platform (cache_test pins a
// golden snapshot to guard the format).
//
// Validation is all-or-nothing and structured: save() writes to a
// temporary sibling and rename()s it into place (readers never observe a
// half-written file), and load() rejects bad magic, unknown versions,
// foreign lexicon fingerprints, truncation, and checksum mismatches with
// a SnapshotError carrying the failure kind -- never a crash and never a
// silent cold start. A snapshot is only valid against the exact lexicon
// that produced it: level-1 keys embed the fingerprint, so loading a
// stale snapshot would waste memory on unreachable entries at best and
// resurrect wrong parses at worst.
//
// Stats are not persisted: counters describe a process's lifetime, not
// the store's contents, so a loaded store starts at zero like a fresh
// one. Loading uses the target store's own options (caps, eviction) --
// loading a big snapshot into a small store simply evicts.
#pragma once

#include <cstdint>
#include <string>

#include "cache/store.hpp"
#include "util/diagnostics.hpp"
#include "util/digest.hpp"

namespace speccc::cache {

/// Current snapshot format version; load() rejects everything else.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Why a snapshot was rejected (load) or could not be written (save).
enum class SnapshotErrorKind {
  kIo,               ///< open/read/write/rename failure
  kBadMagic,         ///< not a snapshot file
  kBadVersion,       ///< written by an incompatible format version
  kBadFingerprint,   ///< produced under a different lexicon
  kTruncated,        ///< file shorter than its declared layout
  kCorrupted,        ///< checksum mismatch or inconsistent body
};

[[nodiscard]] const char* snapshot_error_kind_name(SnapshotErrorKind kind);

/// Structured snapshot failure: kind + path + human message. Tools print
/// what() and exit non-zero; tests dispatch on kind().
class SnapshotError : public util::SpecError {
 public:
  SnapshotError(SnapshotErrorKind kind, std::string path,
                const std::string& message);

  [[nodiscard]] SnapshotErrorKind kind() const { return kind_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  SnapshotErrorKind kind_;
  std::string path_;
};

/// What load() verified and restored (for logs and tests).
struct SnapshotMeta {
  std::uint32_t version = 0;
  util::Digest lexicon_fingerprint;
  std::uint64_t entries = 0;  ///< entries in the file (not net inserts)
};

/// Serialize every live entry of `store` to `path`, stamped with
/// `lexicon_fingerprint`. Atomic: the bytes land in a temporary file in
/// the same directory which is then renamed over `path`. Throws
/// SnapshotError(kIo) on filesystem failure.
void save_snapshot(const Store& store, const std::string& path,
                   const util::Digest& lexicon_fingerprint);

/// Validate the snapshot at `path` against `expected_fingerprint` and
/// insert its entries into `store` (first writer wins; the store's caps
/// and eviction policy apply). Throws SnapshotError on any rejection --
/// the store is left untouched unless the whole file validated.
SnapshotMeta load_snapshot(Store& store, const std::string& path,
                           const util::Digest& expected_fingerprint);

}  // namespace speccc::cache
