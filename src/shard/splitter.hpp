// Deterministic corpus sharding (ROADMAP item 4's distributed half,
// modeled on abc-zz's ZZ/Cluster job dealing): split an input-ordered
// task list across K process-level shards round-robin, so every shard
// gets a near-equal share and the assignment is a pure function of
// (count, shards) -- no sizes, no timings, no randomness.
//
// Round-robin by input order is the same deal rule the in-process batch
// scheduler uses for its worker deques, and it composes with the merge
// step: shard s holds global indices s, s+K, s+2K, ..., so interleaving
// the per-shard reports row by row reconstructs exactly the global input
// order (shard/coordinator.hpp relies on this).
//
// Both the coordinator (to size and validate shard reports) and
// speccc_batch's --shard-index/--shard-count filter (to select the
// shard's tasks) call these helpers, so the split rule cannot drift
// between the dealer and the workers.
#pragma once

#include <cstddef>
#include <vector>

namespace speccc::shard {

/// Which shard owns global input index `index` under `shards` shards.
/// shards must be positive.
[[nodiscard]] std::size_t shard_of(std::size_t index, std::size_t shards);

/// How many of `count` items land in shard `which`: count/shards, plus
/// one for the first count%shards shards (earlier shards take the
/// remainder, matching round-robin order).
[[nodiscard]] std::size_t shard_size(std::size_t count, std::size_t shards,
                                     std::size_t which);

/// The full assignment: result[s] lists the global indices of shard s in
/// increasing order. Sizes obey shard_size(); concatenating the shards
/// interleaved (row 0 of each shard, then row 1, ...) restores 0..count-1.
[[nodiscard]] std::vector<std::vector<std::size_t>> split_round_robin(
    std::size_t count, std::size_t shards);

}  // namespace speccc::shard
