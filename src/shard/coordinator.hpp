// Process-level shard coordinator (ROADMAP item 4, abc-zz ZZ/Cluster
// idiom): deal a corpus round-robin across K `speccc_batch` worker
// subprocesses, collect their per-shard reports, and merge them into one
// input-ordered report whose canonical rendering is byte-identical to an
// unsharded run.
//
// Wire format: the workers' existing outputs. Each worker runs
//   speccc_batch <same inputs as the unsharded run>
//       --shard-index s --shard-count K --canonical --json <shard.json>
// so stdout carries the shard's canonical rows (the determinism contract
// in printable form) and the JSON report carries the non-canonical
// statistics (verdict counts, cache counters). Because every canonical
// row is a pure function of its own task, interleaving the shard rows
// (row 0 of each shard in shard order, then row 1, ...) reconstructs the
// unsharded report exactly -- shard_test proves the bytes.
//
// Fault handling: a worker attempt is accepted only when it exits with a
// report-complete code (0 consistent / 2 inconsistent / 3 per-spec
// errors) AND its outputs parse and agree with each other. Crashes,
// unexpected exit codes, timeouts, and malformed output are retried with
// bounded exponential backoff; every attempt is recorded in the
// non-canonical shard statistics, never silently dropped. A shard that
// exhausts its retries yields a structured per-shard error and the whole
// run reports exit code 3 (like an in-batch error would).
//
// Cache snapshots: with snapshot_in set, every worker starts from the
// same on-disk cache::Store snapshot; with snapshot_out set, each worker
// persists its post-run store and the coordinator merges the per-shard
// snapshots (cache/snapshot.hpp + Store::merge) into one warm-start file
// for the next run.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "cache/store.hpp"

namespace speccc::shard {

/// One subprocess launch of one shard.
struct WorkerAttempt {
  int attempt = 0;          ///< 0-based; also exported as SPECCC_SHARD_ATTEMPT
  int exit_code = -1;       ///< wait status exit code; -1 when signalled
  bool signalled = false;   ///< terminated by a signal (crash / SIGKILL)
  int term_signal = 0;
  bool timed_out = false;   ///< killed by the coordinator's per-attempt timeout
  double seconds = 0.0;     ///< attempt wall clock
  std::string failure;      ///< why the attempt was rejected ("" = accepted)
};

/// Final state of one shard after the retry loop.
struct ShardOutcome {
  std::size_t index = 0;
  bool completed = false;  ///< an attempt was accepted
  int exit_code = -1;      ///< the accepted attempt's exit code (0/2/3)
  std::size_t specs = 0;   ///< canonical rows this shard contributed
  std::string error;       ///< structured failure when !completed
  std::vector<WorkerAttempt> attempts;

  [[nodiscard]] std::size_t retries() const {
    return attempts.empty() ? 0 : attempts.size() - 1;
  }
};

struct CoordinatorOptions {
  /// Worker subprocesses; each gets every K-th task (splitter.hpp).
  std::size_t shards = 2;
  /// --jobs passed to each worker (threads inside one shard process).
  int jobs_per_shard = 1;
  /// Per-shard retry budget: a shard may run up to retries + 1 attempts.
  int retries = 2;
  /// First retry delay; doubles per retry, capped. Deterministic (no
  /// jitter): worker attempts are keyed by SPECCC_SHARD_ATTEMPT, so
  /// reproductions replay exactly.
  double backoff_seconds = 0.05;
  double backoff_cap_seconds = 2.0;
  /// Per-attempt wall-clock limit; expired workers are SIGKILLed and the
  /// attempt counts as a failure (then retried). 0 = unlimited.
  double worker_timeout_seconds = 0.0;
  /// argv prefix of the worker command. Empty means "speccc_batch next to
  /// the current executable". Tests point this at fault-injection wrapper
  /// scripts (which see SPECCC_SHARD_INDEX / SPECCC_SHARD_ATTEMPT).
  std::vector<std::string> worker_command;
  /// Input + passthrough arguments, exactly as the equivalent unsharded
  /// speccc_batch run would receive them (files, --manifest, --corpus,
  /// --generate/--seed, --cache, --substrate, --diagnose, ...). The
  /// coordinator appends the shard selector and output plumbing itself.
  std::vector<std::string> worker_args;
  /// Directory for per-shard outputs; "" = a fresh temporary directory,
  /// removed afterwards unless keep_scratch.
  std::string scratch_dir;
  bool keep_scratch = false;
  /// Cache snapshot every worker loads before running ("" = cold start).
  std::string snapshot_in;
  /// Merged warm-start snapshot to write after the run ("" = none).
  /// Implies per-worker stores: each worker persists its shard's store
  /// and the coordinator merges them.
  std::string snapshot_out;
};

/// The merged result of a sharded run.
struct MergedReport {
  /// Canonical rows in global input order, newline included -- joined
  /// they are byte-identical to `speccc_batch --canonical` unsharded.
  /// Empty when !complete.
  std::vector<std::string> rows;
  bool complete = false;  ///< every shard completed and the merge validated
  /// Coordinator-level failure (shard-size mismatch, snapshot merge
  /// failure); "" when clean. Per-shard failures live in shards[].error.
  std::string merge_error;
  // Verdict totals summed over the shard JSON reports:
  std::size_t consistent = 0;
  std::size_t inconsistent = 0;
  std::size_t errors = 0;
  std::size_t budget_exhausted = 0;
  std::size_t cancelled = 0;
  std::size_t disagreements = 0;
  /// Cache counters summed over shards (non-canonical diagnostics, like
  /// the per-batch stats they aggregate).
  bool cache_enabled = false;
  cache::StatsSnapshot cache_stats;
  std::vector<ShardOutcome> shards;
  std::size_t worker_failures = 0;  ///< rejected attempts across shards
  std::size_t retries_used = 0;
  double wall_seconds = 0.0;

  [[nodiscard]] std::size_t specs() const { return rows.size(); }
  /// speccc_batch-compatible: 3 on any shard/coordinator failure or
  /// in-batch error, else 2 when something is inconsistent, else 0.
  [[nodiscard]] int exit_code() const;
};

/// Run the sharded batch end to end. Throws util::InvalidInputError for
/// unusable options (no shards, no worker args); worker failures never
/// throw -- they surface in the report.
[[nodiscard]] MergedReport run_sharded(const CoordinatorOptions& options);

/// The merged canonical report: rows concatenated in global input order.
[[nodiscard]] std::string canonical(const MergedReport& report);

/// Machine-readable merged report: totals, cache counters, and the full
/// per-shard attempt history (the non-canonical fault statistics).
[[nodiscard]] std::string to_json(const MergedReport& report);

/// Human summary: per-shard attempt/verdict table plus totals.
void print_summary(std::ostream& os, const MergedReport& report);

}  // namespace speccc::shard
