#include "shard/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "cache/snapshot.hpp"
#include "nlp/lexicon.hpp"
#include "serve/json.hpp"
#include "shard/splitter.hpp"
#include "util/diagnostics.hpp"

extern char** environ;

namespace fs = std::filesystem;

namespace speccc::shard {

namespace {

std::string self_directory() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (n <= 0) return {};
  buffer[n] = '\0';
  return fs::path(buffer).parent_path().string();
}

std::vector<std::string> default_worker() {
  const std::string dir = self_directory();
  if (dir.empty()) return {"speccc_batch"};
  return {(fs::path(dir) / "speccc_batch").string()};
}

std::string make_scratch_dir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr && *base != '\0' ? base : "/tmp") +
                     "/speccc-shard-XXXXXX";
  std::vector<char> buffer(tmpl.begin(), tmpl.end());
  buffer.push_back('\0');
  if (::mkdtemp(buffer.data()) == nullptr) {
    throw util::InvalidInputError(std::string("cannot create scratch dir: ") +
                                  std::strerror(errno));
  }
  return std::string(buffer.data());
}

/// Last `limit` bytes of a file, for worker-failure diagnostics.
std::string file_tail(const std::string& path, std::size_t limit = 400) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = std::move(buffer).str();
  if (text.size() > limit) text.erase(0, text.size() - limit);
  // Flatten newlines so the tail reads as one diagnostic line.
  std::replace(text.begin(), text.end(), '\n', ' ');
  while (!text.empty() && text.back() == ' ') text.pop_back();
  return text;
}

struct SpawnResult {
  pid_t pid = -1;
  std::string error;
};

/// fork + redirect stdout/stderr + execvp, with the shard/attempt
/// exported as SPECCC_SHARD_INDEX / SPECCC_SHARD_ATTEMPT (the hook
/// fault-injection wrapper scripts key on).
SpawnResult spawn_worker(const std::vector<std::string>& argv,
                         const std::string& stdout_path,
                         const std::string& stderr_path, std::size_t index,
                         int attempt) {
  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) c_argv.push_back(const_cast<char*>(arg.c_str()));
  c_argv.push_back(nullptr);

  // Build the child environment up front (fork in a multithreaded parent:
  // the child may only use async-signal-safe calls before exec).
  std::vector<std::string> env_store;
  std::vector<char*> c_env;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "SPECCC_SHARD_INDEX=", 19) == 0 ||
        std::strncmp(*e, "SPECCC_SHARD_ATTEMPT=", 21) == 0) {
      continue;
    }
    c_env.push_back(*e);
  }
  env_store.push_back("SPECCC_SHARD_INDEX=" + std::to_string(index));
  env_store.push_back("SPECCC_SHARD_ATTEMPT=" + std::to_string(attempt));
  for (std::string& entry : env_store) c_env.push_back(entry.data());
  c_env.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return {-1, std::string("fork failed: ") + std::strerror(errno)};
  }
  if (pid == 0) {
    FILE* out = std::freopen(stdout_path.c_str(), "w", stdout);
    FILE* err = std::freopen(stderr_path.c_str(), "w", stderr);
    if (out == nullptr || err == nullptr) ::_exit(127);
    ::execve(c_argv[0], c_argv.data(), c_env.data());
    // execve only returns on failure; 127 mirrors the shell convention.
    ::_exit(127);
  }
  return {pid, {}};
}

/// Wait for `pid`, enforcing the per-attempt timeout cooperatively from
/// the coordinator side (SIGKILL on expiry -- the worker holds no state
/// worth draining; its outputs are re-made by the retry).
void wait_worker(pid_t pid, double timeout_seconds, WorkerAttempt& attempt) {
  const util::Stopwatch watch;
  int status = 0;
  for (;;) {
    const pid_t done = ::waitpid(pid, &status, WNOHANG);
    if (done == pid) break;
    if (done < 0) {  // should not happen; treat as a failed attempt
      attempt.failure = std::string("waitpid failed: ") + std::strerror(errno);
      return;
    }
    if (timeout_seconds > 0 && watch.seconds() > timeout_seconds) {
      attempt.timed_out = true;
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  attempt.seconds = watch.seconds();
  if (WIFEXITED(status)) {
    attempt.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    attempt.signalled = true;
    attempt.term_signal = WTERMSIG(status);
  }
}

std::vector<std::string> read_rows(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  ok = static_cast<bool>(in);
  std::vector<std::string> rows;
  std::string line;
  while (std::getline(in, line)) rows.push_back(line + "\n");
  return rows;
}

std::uint64_t count_of(const serve::json::Value& doc, const char* key) {
  const serve::json::Value* value = doc.find(key);
  return value == nullptr ? 0 : static_cast<std::uint64_t>(value->as_number());
}

/// One shard's parsed wire output.
struct ShardReport {
  std::vector<std::string> rows;
  std::size_t consistent = 0, inconsistent = 0, errors = 0;
  std::size_t budget_exhausted = 0, cancelled = 0, disagreements = 0;
  bool cache_enabled = false;
  cache::StatsSnapshot cache;
};

/// Parse + cross-validate the canonical rows against the JSON report.
/// Returns false (with `why`) on any inconsistency: a truncated file from
/// a crashed worker must read as a failed attempt, not a short corpus.
bool parse_shard_report(const std::string& rows_path,
                        const std::string& json_path, ShardReport& report,
                        std::string& why) {
  bool rows_ok = false;
  report.rows = read_rows(rows_path, rows_ok);
  if (!rows_ok) {
    why = "missing canonical output " + rows_path;
    return false;
  }
  std::ifstream in(json_path, std::ios::binary);
  if (!in) {
    why = "missing JSON report " + json_path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  serve::json::Value doc;
  try {
    doc = serve::json::parse(buffer.str());
  } catch (const util::ParseError& e) {
    why = std::string("unparseable JSON report: ") + e.what();
    return false;
  }
  const serve::json::Value* specs = doc.find("specs");
  if (specs == nullptr || specs->kind() != serve::json::Kind::kArray) {
    why = "JSON report carries no specs array";
    return false;
  }
  if (specs->as_array().size() != report.rows.size()) {
    why = "canonical rows (" + std::to_string(report.rows.size()) +
          ") disagree with JSON specs (" +
          std::to_string(specs->as_array().size()) + ")";
    return false;
  }
  report.consistent = count_of(doc, "consistent");
  report.inconsistent = count_of(doc, "inconsistent");
  report.errors = count_of(doc, "errors");
  report.budget_exhausted = count_of(doc, "budget_exhausted");
  report.cancelled = count_of(doc, "cancelled");
  report.disagreements = count_of(doc, "disagreements");
  if (const serve::json::Value* cache = doc.find("cache"); cache != nullptr) {
    report.cache_enabled = true;
    report.cache.l1_hits = count_of(*cache, "l1_hits");
    report.cache.l1_misses = count_of(*cache, "l1_misses");
    report.cache.l2_hits = count_of(*cache, "l2_hits");
    report.cache.l2_misses = count_of(*cache, "l2_misses");
    report.cache.evictions = count_of(*cache, "evictions");
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  serve::json::write_string(out, s);
  return out;
}

}  // namespace

int MergedReport::exit_code() const {
  if (!complete || !merge_error.empty() || errors > 0 || budget_exhausted > 0 ||
      cancelled > 0 || disagreements > 0) {
    return 3;
  }
  return inconsistent > 0 ? 2 : 0;
}

MergedReport run_sharded(const CoordinatorOptions& options) {
  if (options.shards == 0) {
    throw util::InvalidInputError("shard coordinator needs at least 1 shard");
  }
  if (options.worker_args.empty()) {
    throw util::InvalidInputError(
        "shard coordinator needs worker input arguments");
  }
  const util::Stopwatch watch;
  const std::vector<std::string> worker =
      options.worker_command.empty() ? default_worker() : options.worker_command;
  const bool own_scratch = options.scratch_dir.empty();
  const std::string scratch =
      own_scratch ? make_scratch_dir() : options.scratch_dir;
  if (!own_scratch) fs::create_directories(scratch);

  MergedReport merged;
  merged.shards.resize(options.shards);
  std::vector<ShardReport> reports(options.shards);

  const int attempts_allowed = std::max(0, options.retries) + 1;
  std::vector<std::thread> runners;
  runners.reserve(options.shards);
  for (std::size_t s = 0; s < options.shards; ++s) {
    runners.emplace_back([&, s]() {
      ShardOutcome& outcome = merged.shards[s];
      outcome.index = s;
      const std::string rows_path =
          scratch + "/shard-" + std::to_string(s) + ".out";
      const std::string err_path =
          scratch + "/shard-" + std::to_string(s) + ".err";
      const std::string json_path =
          scratch + "/shard-" + std::to_string(s) + ".json";
      const std::string snap_path =
          scratch + "/shard-" + std::to_string(s) + ".snap";

      std::vector<std::string> argv = worker;
      argv.insert(argv.end(), options.worker_args.begin(),
                  options.worker_args.end());
      argv.insert(argv.end(),
                  {"--shard-index", std::to_string(s), "--shard-count",
                   std::to_string(options.shards), "--jobs",
                   std::to_string(std::max(1, options.jobs_per_shard)),
                   "--canonical", "--quiet", "--json", json_path});
      if (!options.snapshot_in.empty() || !options.snapshot_out.empty()) {
        const std::string out_side =
            options.snapshot_out.empty() ? std::string() : snap_path;
        argv.insert(argv.end(),
                    {"--cache-snapshot", options.snapshot_in + "," + out_side});
      }

      double backoff = options.backoff_seconds;
      for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
        if (attempt > 0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
          backoff = std::min(backoff * 2, options.backoff_cap_seconds);
        }
        WorkerAttempt record;
        record.attempt = attempt;
        const SpawnResult spawned =
            spawn_worker(argv, rows_path, err_path, s, attempt);
        if (spawned.pid < 0) {
          record.failure = spawned.error;
          outcome.attempts.push_back(record);
          continue;
        }
        wait_worker(spawned.pid, options.worker_timeout_seconds, record);
        if (record.timed_out) {
          record.failure = "timed out after " +
                           std::to_string(options.worker_timeout_seconds) +
                           "s (SIGKILL)";
        } else if (record.signalled) {
          record.failure =
              "killed by signal " + std::to_string(record.term_signal);
        } else if (record.exit_code != 0 && record.exit_code != 2 &&
                   record.exit_code != 3) {
          // 0/2/3 all mean "complete report" for speccc_batch; anything
          // else is a crashed or misconfigured worker.
          record.failure = "exit code " + std::to_string(record.exit_code);
          const std::string tail = file_tail(err_path);
          if (!tail.empty()) record.failure += ": " + tail;
        } else {
          std::string why;
          if (parse_shard_report(rows_path, json_path, reports[s], why)) {
            outcome.attempts.push_back(record);
            outcome.completed = true;
            outcome.exit_code = record.exit_code;
            outcome.specs = reports[s].rows.size();
            return;
          }
          record.failure = "malformed shard report: " + why;
        }
        outcome.attempts.push_back(record);
      }
      outcome.error = "shard " + std::to_string(s) + " failed after " +
                      std::to_string(attempts_allowed) + " attempts: " +
                      (outcome.attempts.empty()
                           ? std::string("never spawned")
                           : outcome.attempts.back().failure);
    });
  }
  for (std::thread& runner : runners) runner.join();

  for (const ShardOutcome& outcome : merged.shards) {
    for (const WorkerAttempt& attempt : outcome.attempts) {
      if (!attempt.failure.empty()) ++merged.worker_failures;
    }
    merged.retries_used += outcome.retries();
  }

  merged.complete =
      std::all_of(merged.shards.begin(), merged.shards.end(),
                  [](const ShardOutcome& o) { return o.completed; });

  if (merged.complete) {
    // Validate the shard sizes against the round-robin deal before
    // interleaving: if they cannot come from one corpus of size N, the
    // workers saw different inputs (e.g. a file changed mid-run) and a
    // merged report would be silently wrong.
    std::size_t total = 0;
    for (const ShardReport& report : reports) total += report.rows.size();
    for (std::size_t s = 0; s < options.shards; ++s) {
      if (reports[s].rows.size() != shard_size(total, options.shards, s)) {
        merged.merge_error =
            "shard " + std::to_string(s) + " returned " +
            std::to_string(reports[s].rows.size()) +
            " rows where the round-robin deal of " + std::to_string(total) +
            " tasks predicts " +
            std::to_string(shard_size(total, options.shards, s)) +
            " (workers disagree about the corpus)";
        merged.complete = false;
        break;
      }
    }
  }

  if (merged.complete) {
    // Interleave: row r of the merged report came from shard r % K.
    std::size_t total = 0;
    for (const ShardReport& report : reports) total += report.rows.size();
    merged.rows.reserve(total);
    for (std::size_t row = 0; merged.rows.size() < total; ++row) {
      for (std::size_t s = 0; s < options.shards; ++s) {
        if (row < reports[s].rows.size()) {
          merged.rows.push_back(reports[s].rows[row]);
        }
      }
    }
    for (const ShardReport& report : reports) {
      merged.consistent += report.consistent;
      merged.inconsistent += report.inconsistent;
      merged.errors += report.errors;
      merged.budget_exhausted += report.budget_exhausted;
      merged.cancelled += report.cancelled;
      merged.disagreements += report.disagreements;
      if (report.cache_enabled) {
        merged.cache_enabled = true;
        merged.cache_stats.l1_hits += report.cache.l1_hits;
        merged.cache_stats.l1_misses += report.cache.l1_misses;
        merged.cache_stats.l2_hits += report.cache.l2_hits;
        merged.cache_stats.l2_misses += report.cache.l2_misses;
        merged.cache_stats.evictions += report.cache.evictions;
      }
    }

    if (!options.snapshot_out.empty()) {
      // Merge the per-shard stores into one warm-start snapshot. The
      // fingerprint is the default lexicon's -- exactly what the workers
      // stamped (speccc_batch runs the builtin vocabulary).
      const util::Digest fingerprint = nlp::Lexicon::builtin().fingerprint();
      try {
        cache::Store combined(cache::StoreOptions{.max_entries = 0});
        for (std::size_t s = 0; s < options.shards; ++s) {
          cache::load_snapshot(
              combined, scratch + "/shard-" + std::to_string(s) + ".snap",
              fingerprint);
        }
        cache::save_snapshot(combined, options.snapshot_out, fingerprint);
      } catch (const cache::SnapshotError& e) {
        merged.merge_error =
            std::string("cache snapshot merge failed: ") + e.what();
      }
    }
  }

  if (own_scratch && !options.keep_scratch) {
    std::error_code ec;  // best effort; diagnostics were already read
    fs::remove_all(scratch, ec);
  }
  merged.wall_seconds = watch.seconds();
  return merged;
}

std::string canonical(const MergedReport& report) {
  std::string out;
  for (const std::string& row : report.rows) out += row;
  return out;
}

std::string to_json(const MergedReport& report) {
  std::ostringstream os;
  os << "{\n  \"shards\": " << report.shards.size()
     << ",\n  \"complete\": " << (report.complete ? "true" : "false")
     << ",\n  \"specs\": " << report.specs()
     << ",\n  \"wall_seconds\": " << report.wall_seconds
     << ",\n  \"consistent\": " << report.consistent
     << ",\n  \"inconsistent\": " << report.inconsistent
     << ",\n  \"errors\": " << report.errors
     << ",\n  \"budget_exhausted\": " << report.budget_exhausted
     << ",\n  \"cancelled\": " << report.cancelled
     << ",\n  \"disagreements\": " << report.disagreements
     << ",\n  \"worker_failures\": " << report.worker_failures
     << ",\n  \"retries\": " << report.retries_used;
  if (!report.merge_error.empty()) {
    os << ",\n  \"merge_error\": " << json_escape(report.merge_error);
  }
  if (report.cache_enabled) {
    const cache::StatsSnapshot& c = report.cache_stats;
    os << ",\n  \"cache\": {\"l1_hits\": " << c.l1_hits
       << ", \"l1_misses\": " << c.l1_misses << ", \"l2_hits\": " << c.l2_hits
       << ", \"l2_misses\": " << c.l2_misses
       << ", \"evictions\": " << c.evictions << "}";
  }
  os << ",\n  \"shard_outcomes\": [\n";
  for (std::size_t s = 0; s < report.shards.size(); ++s) {
    const ShardOutcome& o = report.shards[s];
    os << "    {\"shard\": " << o.index << ", \"completed\": "
       << (o.completed ? "true" : "false") << ", \"exit_code\": " << o.exit_code
       << ", \"specs\": " << o.specs << ", \"attempts\": [";
    for (std::size_t a = 0; a < o.attempts.size(); ++a) {
      const WorkerAttempt& attempt = o.attempts[a];
      os << (a > 0 ? ", " : "") << "{\"attempt\": " << attempt.attempt
         << ", \"exit_code\": " << attempt.exit_code << ", \"signalled\": "
         << (attempt.signalled ? "true" : "false")
         << ", \"timed_out\": " << (attempt.timed_out ? "true" : "false")
         << ", \"seconds\": " << attempt.seconds;
      if (!attempt.failure.empty()) {
        os << ", \"failure\": " << json_escape(attempt.failure);
      }
      os << "}";
    }
    os << "]";
    if (!o.error.empty()) os << ", \"error\": " << json_escape(o.error);
    os << "}" << (s + 1 < report.shards.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

void print_summary(std::ostream& os, const MergedReport& report) {
  for (const ShardOutcome& o : report.shards) {
    os << "  shard " << o.index << ": "
       << (o.completed ? "completed" : "FAILED") << " (" << o.specs
       << " specs, " << o.attempts.size() << " attempt"
       << (o.attempts.size() == 1 ? "" : "s") << ")";
    for (const WorkerAttempt& attempt : o.attempts) {
      if (!attempt.failure.empty()) {
        os << "\n    attempt " << attempt.attempt << ": " << attempt.failure;
      }
    }
    if (!o.error.empty()) os << "\n    " << o.error;
    os << "\n";
  }
  if (!report.merge_error.empty()) {
    os << "  merge error: " << report.merge_error << "\n";
  }
  os << report.specs() << " specs across " << report.shards.size()
     << " shards in " << report.wall_seconds << "s wall ("
     << report.worker_failures << " worker failures, " << report.retries_used
     << " retries): " << report.consistent << " consistent, "
     << report.inconsistent << " inconsistent, " << report.errors
     << " errors, " << report.budget_exhausted << " budget-exhausted, "
     << report.cancelled << " cancelled";
  if (report.disagreements > 0) {
    os << ", " << report.disagreements << " SUBSTRATE DISAGREEMENTS";
  }
  os << "\n";
  if (report.cache_enabled) cache::print_stats(os, report.cache_stats);
}

}  // namespace speccc::shard
