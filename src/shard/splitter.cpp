#include "shard/splitter.hpp"

#include "util/diagnostics.hpp"

namespace speccc::shard {

std::size_t shard_of(std::size_t index, std::size_t shards) {
  speccc_check(shards > 0, "shard_of: shards must be positive");
  return index % shards;
}

std::size_t shard_size(std::size_t count, std::size_t shards,
                       std::size_t which) {
  speccc_check(shards > 0, "shard_size: shards must be positive");
  speccc_check(which < shards, "shard_size: shard index out of range");
  return count / shards + (which < count % shards ? 1 : 0);
}

std::vector<std::vector<std::size_t>> split_round_robin(std::size_t count,
                                                        std::size_t shards) {
  speccc_check(shards > 0, "split_round_robin: shards must be positive");
  std::vector<std::vector<std::size_t>> assignment(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    assignment[s].reserve(shard_size(count, shards, s));
  }
  for (std::size_t index = 0; index < count; ++index) {
    assignment[index % shards].push_back(index);
  }
  return assignment;
}

}  // namespace speccc::shard
