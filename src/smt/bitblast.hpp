// Bounded-integer arithmetic bit-blasted to SAT through the AIG layer.
//
// This layer plays the role of Yices 2 in the paper (Section IV-E): the
// nonlinear constraint system (1)-(2) for time abstraction is encoded over
// unsigned bit-vectors (ripple-carry adders, shift-and-add multipliers,
// comparators) and solved through the CDCL solver, with the optimization
// objective minimized by a descending bound search under assumptions.
//
// Construction is lazy: gates land in a structural-hashed And-Inverter
// Graph (src/aig) instead of becoming clauses immediately, so sharing and
// constant folding happen across the whole circuit. CNF is emitted only at
// solve()/require-flush time, only for the transitive fan-in of asserted
// or queried bits, and through the cut-based mapper by default (per-gate
// Tseitin stays available as BuilderOptions::Encoder-selectable lane).
// The descending-bound minimize() loop therefore re-maps only each fresh
// comparator cone; everything already flushed keeps its variables and the
// solver keeps everything it learned (PR 6's incremental-assumption reuse).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "aig/cnf.hpp"
#include "sat/solver.hpp"

namespace speccc::smt {

/// A circuit bit: an AIG edge. Constants and gate outputs mix freely;
/// nothing touches the SAT solver until a flush.
using Bit = aig::Edge;

/// Unsigned bit-vector; bits[0] is the least significant bit.
struct BitVec {
  std::vector<Bit> bits;

  [[nodiscard]] std::size_t width() const { return bits.size(); }
};

struct BuilderOptions {
  aig::CnfOptions cnf;
  /// Observes every clause and variable the Builder sends to the solver
  /// (mapper output plus the Builder's own assertion units). Used by
  /// tools/speccc_cnf to dump DIMACS; null for normal solving.
  aig::ClauseSink* tee = nullptr;
};

/// Circuit builder over an AIG with deferred CNF flushing to a SAT solver.
class Builder {
 public:
  explicit Builder(sat::Solver& solver, BuilderOptions options = {});

  sat::Solver& solver() { return solver_; }
  [[nodiscard]] const aig::Aig& aig() const { return aig_; }
  [[nodiscard]] const aig::CnfStats& cnf_stats() const {
    return mapper_.stats();
  }

  [[nodiscard]] static constexpr Bit bit_true() {
    return aig::Aig::edge_true();
  }
  [[nodiscard]] static constexpr Bit bit_false() {
    return aig::Aig::edge_false();
  }

  /// Fresh boolean variable (an AIG primary input; its solver variable is
  /// allocated eagerly so models always assign it).
  [[nodiscard]] Bit fresh();

  /// Fresh unsigned bit-vector variable of the given width.
  [[nodiscard]] BitVec var(std::size_t width);

  /// Constant bit-vector. The width must be large enough for the value.
  [[nodiscard]] BitVec constant(std::uint64_t value, std::size_t width);

  // ---- Gates (structural-hashed AIG nodes) ----------------------------------
  [[nodiscard]] Bit land(Bit a, Bit b) { return aig_.mk_and(a, b); }
  [[nodiscard]] Bit lor(Bit a, Bit b) { return aig_.mk_or(a, b); }
  [[nodiscard]] Bit lxor(Bit a, Bit b) { return aig_.mk_xor(a, b); }
  [[nodiscard]] Bit mux(Bit sel, Bit then_bit, Bit else_bit) {
    return aig_.mk_mux(sel, then_bit, else_bit);
  }

  // ---- Arithmetic -------------------------------------------------------------
  /// Sum with one extra output bit (never overflows).
  [[nodiscard]] BitVec add(const BitVec& a, const BitVec& b);
  /// Product of width a.width()+b.width() (never overflows).
  [[nodiscard]] BitVec mul(const BitVec& a, const BitVec& b);
  /// a zero-extended to the given width (>= a.width()).
  [[nodiscard]] BitVec zero_extend(const BitVec& a, std::size_t width);
  /// Conditional: sel ? a : b (widths equalized by zero extension).
  [[nodiscard]] BitVec select(Bit sel, const BitVec& a, const BitVec& b);

  // ---- Comparisons -------------------------------------------------------------
  [[nodiscard]] Bit eq(const BitVec& a, const BitVec& b);
  [[nodiscard]] Bit ult(const BitVec& a, const BitVec& b);
  [[nodiscard]] Bit ule(const BitVec& a, const BitVec& b) {
    return ult(b, a).negated();
  }
  [[nodiscard]] Bit ule_const(const BitVec& a, std::uint64_t bound);

  // ---- Assertions ---------------------------------------------------------------
  /// Queue an assertion; its cone is mapped to CNF at the next flush.
  void require(Bit b) { pending_.push_back(b); }
  void require_eq(const BitVec& a, const BitVec& b) { require(eq(a, b)); }

  // ---- Solving ------------------------------------------------------------------
  /// Flush queued assertions (mapping their cones to CNF) and solve under
  /// the given assumption bits.
  sat::Result solve(const std::vector<Bit>& assumptions = {});

  /// Flush queued assertions without solving (tools/speccc_cnf dumps the
  /// CNF of a never-solved instance this way).
  void flush();

  /// The solver literal equivalent to a bit, flushing its cone if needed.
  sat::Lit literal(Bit b) { return mapper_.literal(b); }

  /// Value of a bit in the current model (call after kSat). Computed by
  /// replaying the solver's primary-input assignment through the AIG, so
  /// it is defined for every bit, flushed or not.
  [[nodiscard]] bool value(Bit b) const;

  /// Value of a bit-vector in the current model (call after kSat).
  [[nodiscard]] std::uint64_t model_value(const BitVec& v) const;

  /// Minimize `objective` subject to the asserted constraints, solving
  /// repeatedly under descending bound assumptions. Returns the minimal
  /// value, or nullopt if the constraints are unsatisfiable. After a
  /// successful call the solver holds a model attaining the minimum.
  [[nodiscard]] std::optional<std::uint64_t> minimize(const BitVec& objective);

 private:
  /// Forwards mapper output to the solver and mirrors it to the tee.
  class SolverSink : public aig::ClauseSink {
   public:
    SolverSink(sat::Solver& solver, aig::ClauseSink* tee)
        : solver_(solver), tee_(tee) {}
    int new_var() override {
      const int v = solver_.new_var();
      if (tee_ != nullptr) tee_->new_var();
      return v;
    }
    void add_clause(const sat::Clause& clause) override {
      solver_.add_clause(clause);
      if (tee_ != nullptr) tee_->add_clause(clause);
    }

   private:
    sat::Solver& solver_;
    aig::ClauseSink* tee_;
  };

  [[nodiscard]] std::vector<bool> model_inputs() const;

  sat::Solver& solver_;
  SolverSink sink_;
  aig::Aig aig_;
  aig::CnfMapper mapper_;
  sat::Lit true_;                      // pinned true variable
  std::vector<sat::Lit> input_lits_;   // PI ordinal -> solver literal
  std::vector<Bit> pending_;           // queued assertions
};

}  // namespace speccc::smt
