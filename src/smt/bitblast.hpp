// Bounded-integer arithmetic bit-blasted to SAT.
//
// This layer plays the role of Yices 2 in the paper (Section IV-E): the
// nonlinear constraint system (1)-(2) for time abstraction is encoded over
// unsigned bit-vectors (ripple-carry adders, shift-and-add multipliers,
// Tseitin-encoded comparators) and solved through the CDCL solver, with the
// optimization objective minimized by a descending bound search under
// assumptions.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sat/solver.hpp"

namespace speccc::smt {

/// Unsigned bit-vector; bits[0] is the least significant bit. Bits are SAT
/// literals, so constants and variables mix freely.
struct BitVec {
  std::vector<sat::Lit> bits;

  [[nodiscard]] std::size_t width() const { return bits.size(); }
};

/// Circuit builder over a SAT solver. All methods are pure circuit
/// constructions; constraints become clauses immediately.
class Builder {
 public:
  explicit Builder(sat::Solver& solver);

  sat::Solver& solver() { return solver_; }

  /// Literal constants (a single variable pinned at level 0).
  [[nodiscard]] sat::Lit lit_true() const { return true_; }
  [[nodiscard]] sat::Lit lit_false() const { return true_.negated(); }

  /// Fresh boolean variable.
  [[nodiscard]] sat::Lit fresh();

  /// Fresh unsigned bit-vector variable of the given width.
  [[nodiscard]] BitVec var(std::size_t width);

  /// Constant bit-vector. The width must be large enough for the value.
  [[nodiscard]] BitVec constant(std::uint64_t value, std::size_t width);

  // ---- Gates (Tseitin encoded) ----------------------------------------------
  [[nodiscard]] sat::Lit land(sat::Lit a, sat::Lit b);
  [[nodiscard]] sat::Lit lor(sat::Lit a, sat::Lit b);
  [[nodiscard]] sat::Lit lxor(sat::Lit a, sat::Lit b);
  [[nodiscard]] sat::Lit mux(sat::Lit sel, sat::Lit then_lit, sat::Lit else_lit);

  // ---- Arithmetic -------------------------------------------------------------
  /// Sum with one extra output bit (never overflows).
  [[nodiscard]] BitVec add(const BitVec& a, const BitVec& b);
  /// Product of width a.width()+b.width() (never overflows).
  [[nodiscard]] BitVec mul(const BitVec& a, const BitVec& b);
  /// a zero-extended to the given width (>= a.width()).
  [[nodiscard]] BitVec zero_extend(const BitVec& a, std::size_t width);
  /// Conditional: sel ? a : b (widths equalized by zero extension).
  [[nodiscard]] BitVec select(sat::Lit sel, const BitVec& a, const BitVec& b);

  // ---- Comparisons -------------------------------------------------------------
  [[nodiscard]] sat::Lit eq(const BitVec& a, const BitVec& b);
  [[nodiscard]] sat::Lit ult(const BitVec& a, const BitVec& b);
  [[nodiscard]] sat::Lit ule(const BitVec& a, const BitVec& b);
  [[nodiscard]] sat::Lit ule_const(const BitVec& a, std::uint64_t bound);

  // ---- Assertions ----------------------------------------------------------------
  void require(sat::Lit l) { solver_.add_unit(l); }
  void require_eq(const BitVec& a, const BitVec& b) { require(eq(a, b)); }

  // ---- Solving --------------------------------------------------------------------
  /// Value of a bit-vector in the current model (call after kSat).
  [[nodiscard]] std::uint64_t model_value(const BitVec& v) const;

  /// Minimize `objective` subject to the asserted constraints, solving
  /// repeatedly under descending bound assumptions. Returns the minimal
  /// value, or nullopt if the constraints are unsatisfiable. After a
  /// successful call the solver holds a model attaining the minimum.
  [[nodiscard]] std::optional<std::uint64_t> minimize(const BitVec& objective);

 private:
  sat::Solver& solver_;
  sat::Lit true_;
};

}  // namespace speccc::smt
