#include "smt/bitblast.hpp"

#include <algorithm>

#include "util/diagnostics.hpp"

namespace speccc::smt {

using sat::Lit;

Builder::Builder(sat::Solver& solver, BuilderOptions options)
    : solver_(solver),
      sink_(solver, options.tee),
      mapper_(aig_, sink_, options.cnf) {
  // Pin a true variable and register it with the mapper so CNF referencing
  // the constant edge shares it (and the tee sees the pinning unit).
  true_ = Lit(sink_.new_var(), true);
  sink_.add_clause({true_});
  mapper_.set_literal(bit_true(), true_);
}

Bit Builder::fresh() {
  const Bit b = aig_.add_input();
  // Inputs get their solver variable eagerly: models must assign every
  // primary input so value() can replay them through the AIG, and the
  // mapper treats registered inputs as free leaves.
  const Lit l(sink_.new_var(), true);
  mapper_.set_literal(b, l);
  input_lits_.push_back(l);
  return b;
}

BitVec Builder::var(std::size_t width) {
  BitVec out;
  out.bits.reserve(width);
  for (std::size_t i = 0; i < width; ++i) out.bits.push_back(fresh());
  return out;
}

BitVec Builder::constant(std::uint64_t value, std::size_t width) {
  speccc_check(width >= 64 || (value >> width) == 0,
               "constant does not fit in width");
  BitVec out;
  out.bits.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    const bool bit = i < 64 && ((value >> i) & 1) != 0;
    out.bits.push_back(aig::Aig::constant(bit));
  }
  return out;
}

BitVec Builder::zero_extend(const BitVec& a, std::size_t width) {
  speccc_check(width >= a.width(), "zero_extend cannot shrink");
  BitVec out = a;
  while (out.width() < width) out.bits.push_back(bit_false());
  return out;
}

BitVec Builder::add(const BitVec& a, const BitVec& b) {
  const std::size_t w = std::max(a.width(), b.width());
  const BitVec x = zero_extend(a, w);
  const BitVec y = zero_extend(b, w);
  BitVec out;
  out.bits.reserve(w + 1);
  Bit carry = bit_false();
  for (std::size_t i = 0; i < w; ++i) {
    const Bit s = lxor(lxor(x.bits[i], y.bits[i]), carry);
    const Bit c = lor(land(x.bits[i], y.bits[i]),
                      land(carry, lxor(x.bits[i], y.bits[i])));
    out.bits.push_back(s);
    carry = c;
  }
  out.bits.push_back(carry);
  return out;
}

BitVec Builder::mul(const BitVec& a, const BitVec& b) {
  const std::size_t w = a.width() + b.width();
  BitVec acc = constant(0, w);
  for (std::size_t i = 0; i < b.width(); ++i) {
    // Partial product: (a << i) gated by b[i].
    BitVec partial = constant(0, w);
    for (std::size_t j = 0; j < a.width() && i + j < w; ++j) {
      partial.bits[i + j] = land(a.bits[j], b.bits[i]);
    }
    BitVec sum = add(acc, partial);
    sum.bits.resize(w, bit_false());  // drop the (provably zero) carry
    acc = std::move(sum);
  }
  return acc;
}

BitVec Builder::select(Bit sel, const BitVec& a, const BitVec& b) {
  const std::size_t w = std::max(a.width(), b.width());
  const BitVec x = zero_extend(a, w);
  const BitVec y = zero_extend(b, w);
  BitVec out;
  out.bits.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    out.bits.push_back(mux(sel, x.bits[i], y.bits[i]));
  }
  return out;
}

Bit Builder::eq(const BitVec& a, const BitVec& b) {
  const std::size_t w = std::max(a.width(), b.width());
  const BitVec x = zero_extend(a, w);
  const BitVec y = zero_extend(b, w);
  Bit acc = bit_true();
  for (std::size_t i = 0; i < w; ++i) {
    acc = land(acc, lxor(x.bits[i], y.bits[i]).negated());
  }
  return acc;
}

Bit Builder::ult(const BitVec& a, const BitVec& b) {
  const std::size_t w = std::max(a.width(), b.width());
  const BitVec x = zero_extend(a, w);
  const BitVec y = zero_extend(b, w);
  // Ripple from LSB: lt_i = (!x_i && y_i) || (x_i == y_i && lt_{i-1}).
  Bit lt = bit_false();
  for (std::size_t i = 0; i < w; ++i) {
    const Bit bit_lt = land(x.bits[i].negated(), y.bits[i]);
    const Bit bit_eq = lxor(x.bits[i], y.bits[i]).negated();
    lt = lor(bit_lt, land(bit_eq, lt));
  }
  return lt;
}

Bit Builder::ule_const(const BitVec& a, std::uint64_t bound) {
  return ule(a, constant(bound, a.width() > 64 ? a.width() : 64));
}

void Builder::flush() {
  for (const Bit b : pending_) {
    sink_.add_clause({mapper_.literal(b)});
  }
  pending_.clear();
}

sat::Result Builder::solve(const std::vector<Bit>& assumptions) {
  flush();
  std::vector<Lit> lits;
  lits.reserve(assumptions.size());
  for (const Bit b : assumptions) lits.push_back(mapper_.literal(b));
  return solver_.solve(lits);
}

std::vector<bool> Builder::model_inputs() const {
  std::vector<bool> inputs(input_lits_.size(), false);
  for (std::size_t i = 0; i < input_lits_.size(); ++i) {
    const Lit l = input_lits_[i];
    inputs[i] = solver_.value(l.var()) == l.positive();
  }
  return inputs;
}

bool Builder::value(Bit b) const {
  return aig_.evaluate(b, model_inputs());
}

std::uint64_t Builder::model_value(const BitVec& v) const {
  speccc_check(v.width() <= 64, "model_value limited to 64 bits");
  const std::vector<bool> values = aig_.evaluate_all(model_inputs());
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < v.width(); ++i) {
    const Bit b = v.bits[i];
    if (values[b.node()] != b.complemented()) out |= (1ULL << i);
  }
  return out;
}

std::optional<std::uint64_t> Builder::minimize(const BitVec& objective) {
  if (solve() == sat::Result::kUnsat) return std::nullopt;
  std::uint64_t best = model_value(objective);
  // Binary search on the objective bound. Each probe uses a fresh selector
  // bit implying objective <= mid, passed as an assumption so failed
  // probes do not pollute the clause set permanently. Only the fresh
  // comparator cone gets mapped per probe; everything else is already
  // flushed.
  std::uint64_t lo = 0;
  std::uint64_t hi = best;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const Bit sel = fresh();
    // sel -> (objective <= mid)
    const Lit le = mapper_.literal(ule_const(objective, mid));
    sink_.add_clause({mapper_.literal(sel.negated()), le});
    if (solve({sel}) == sat::Result::kSat) {
      best = model_value(objective);
      speccc_check(best <= mid, "model exceeds assumed bound");
      hi = best;
    } else {
      sink_.add_clause({mapper_.literal(sel.negated())});  // retire selector
      lo = mid + 1;
    }
  }
  // Re-establish a model attaining the minimum (the last SAT call may have
  // been the failed probe).
  const Bit final_sel = fresh();
  sink_.add_clause({mapper_.literal(final_sel.negated()),
                    mapper_.literal(ule_const(objective, best))});
  const auto r = solve({final_sel});
  speccc_check(r == sat::Result::kSat, "minimum no longer attainable");
  return best;
}

}  // namespace speccc::smt
