#include "smt/bitblast.hpp"

#include <algorithm>

#include "util/diagnostics.hpp"

namespace speccc::smt {

using sat::Lit;

Builder::Builder(sat::Solver& solver) : solver_(solver) {
  const int v = solver_.new_var();
  true_ = Lit(v, true);
  solver_.add_unit(true_);
}

Lit Builder::fresh() { return Lit(solver_.new_var(), true); }

BitVec Builder::var(std::size_t width) {
  BitVec out;
  out.bits.reserve(width);
  for (std::size_t i = 0; i < width; ++i) out.bits.push_back(fresh());
  return out;
}

BitVec Builder::constant(std::uint64_t value, std::size_t width) {
  speccc_check(width >= 64 || (value >> width) == 0,
               "constant does not fit in width");
  BitVec out;
  out.bits.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    const bool bit = i < 64 && ((value >> i) & 1) != 0;
    out.bits.push_back(bit ? lit_true() : lit_false());
  }
  return out;
}

Lit Builder::land(Lit a, Lit b) {
  if (a == lit_true()) return b;
  if (b == lit_true()) return a;
  if (a == lit_false() || b == lit_false()) return lit_false();
  if (a == b) return a;
  if (a == b.negated()) return lit_false();
  const Lit o = fresh();
  solver_.add_binary(o.negated(), a);
  solver_.add_binary(o.negated(), b);
  solver_.add_ternary(o, a.negated(), b.negated());
  return o;
}

Lit Builder::lor(Lit a, Lit b) { return land(a.negated(), b.negated()).negated(); }

Lit Builder::lxor(Lit a, Lit b) {
  if (a == lit_false()) return b;
  if (b == lit_false()) return a;
  if (a == lit_true()) return b.negated();
  if (b == lit_true()) return a.negated();
  if (a == b) return lit_false();
  if (a == b.negated()) return lit_true();
  const Lit o = fresh();
  solver_.add_ternary(o.negated(), a, b);
  solver_.add_ternary(o.negated(), a.negated(), b.negated());
  solver_.add_ternary(o, a.negated(), b);
  solver_.add_ternary(o, a, b.negated());
  return o;
}

Lit Builder::mux(Lit sel, Lit then_lit, Lit else_lit) {
  if (sel == lit_true()) return then_lit;
  if (sel == lit_false()) return else_lit;
  if (then_lit == else_lit) return then_lit;
  return lor(land(sel, then_lit), land(sel.negated(), else_lit));
}

BitVec Builder::zero_extend(const BitVec& a, std::size_t width) {
  speccc_check(width >= a.width(), "zero_extend cannot shrink");
  BitVec out = a;
  while (out.width() < width) out.bits.push_back(lit_false());
  return out;
}

BitVec Builder::add(const BitVec& a, const BitVec& b) {
  const std::size_t w = std::max(a.width(), b.width());
  const BitVec x = zero_extend(a, w);
  const BitVec y = zero_extend(b, w);
  BitVec out;
  out.bits.reserve(w + 1);
  Lit carry = lit_false();
  for (std::size_t i = 0; i < w; ++i) {
    const Lit s = lxor(lxor(x.bits[i], y.bits[i]), carry);
    const Lit c = lor(land(x.bits[i], y.bits[i]),
                      land(carry, lxor(x.bits[i], y.bits[i])));
    out.bits.push_back(s);
    carry = c;
  }
  out.bits.push_back(carry);
  return out;
}

BitVec Builder::mul(const BitVec& a, const BitVec& b) {
  const std::size_t w = a.width() + b.width();
  BitVec acc = constant(0, w);
  for (std::size_t i = 0; i < b.width(); ++i) {
    // Partial product: (a << i) gated by b[i].
    BitVec partial = constant(0, w);
    for (std::size_t j = 0; j < a.width() && i + j < w; ++j) {
      partial.bits[i + j] = land(a.bits[j], b.bits[i]);
    }
    BitVec sum = add(acc, partial);
    sum.bits.resize(w, lit_false());  // drop the (provably zero) carry
    acc = std::move(sum);
  }
  return acc;
}

BitVec Builder::select(Lit sel, const BitVec& a, const BitVec& b) {
  const std::size_t w = std::max(a.width(), b.width());
  const BitVec x = zero_extend(a, w);
  const BitVec y = zero_extend(b, w);
  BitVec out;
  out.bits.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    out.bits.push_back(mux(sel, x.bits[i], y.bits[i]));
  }
  return out;
}

Lit Builder::eq(const BitVec& a, const BitVec& b) {
  const std::size_t w = std::max(a.width(), b.width());
  const BitVec x = zero_extend(a, w);
  const BitVec y = zero_extend(b, w);
  Lit acc = lit_true();
  for (std::size_t i = 0; i < w; ++i) {
    acc = land(acc, lxor(x.bits[i], y.bits[i]).negated());
  }
  return acc;
}

Lit Builder::ult(const BitVec& a, const BitVec& b) {
  const std::size_t w = std::max(a.width(), b.width());
  const BitVec x = zero_extend(a, w);
  const BitVec y = zero_extend(b, w);
  // Ripple from LSB: lt_i = (!x_i && y_i) || (x_i == y_i && lt_{i-1}).
  Lit lt = lit_false();
  for (std::size_t i = 0; i < w; ++i) {
    const Lit bit_lt = land(x.bits[i].negated(), y.bits[i]);
    const Lit bit_eq = lxor(x.bits[i], y.bits[i]).negated();
    lt = lor(bit_lt, land(bit_eq, lt));
  }
  return lt;
}

Lit Builder::ule(const BitVec& a, const BitVec& b) { return ult(b, a).negated(); }

Lit Builder::ule_const(const BitVec& a, std::uint64_t bound) {
  return ule(a, constant(bound, a.width() > 64 ? a.width() : 64));
}

std::uint64_t Builder::model_value(const BitVec& v) const {
  std::uint64_t out = 0;
  speccc_check(v.width() <= 64, "model_value limited to 64 bits");
  for (std::size_t i = 0; i < v.width(); ++i) {
    const Lit l = v.bits[i];
    const bool bit = solver_.value(l.var()) == l.positive();
    if (bit) out |= (1ULL << i);
  }
  return out;
}

std::optional<std::uint64_t> Builder::minimize(const BitVec& objective) {
  if (solver_.solve() == sat::Result::kUnsat) return std::nullopt;
  std::uint64_t best = model_value(objective);
  // Binary search on the objective bound. Each probe uses a fresh selector
  // literal implying objective <= mid, passed as an assumption so failed
  // probes do not pollute the clause set permanently.
  std::uint64_t lo = 0;
  std::uint64_t hi = best;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const Lit sel = fresh();
    // sel -> (objective <= mid)
    const Lit le = ule_const(objective, mid);
    solver_.add_binary(sel.negated(), le);
    if (solver_.solve({sel}) == sat::Result::kSat) {
      best = model_value(objective);
      speccc_check(best <= mid, "model exceeds assumed bound");
      hi = best;
    } else {
      solver_.add_unit(sel.negated());  // retire the selector
      lo = mid + 1;
    }
  }
  // Re-establish a model attaining the minimum (the last SAT call may have
  // been the failed probe).
  const Lit final_sel = fresh();
  solver_.add_binary(final_sel.negated(), ule_const(objective, best));
  const auto r = solver_.solve({final_sel});
  speccc_check(r == sat::Result::kSat, "minimum no longer attainable");
  return best;
}

}  // namespace speccc::smt
