// Reduced ordered binary decision diagrams.
//
// This is the symbolic backbone of the scalable synthesis engine: Table I
// specifications have 20-30 input/output variables plus monitor state bits,
// far beyond explicit-alphabet game solving. The manager is arena-based
// (no garbage collection: nodes live until the manager dies), with a unique
// table for canonicity and memoized ITE/quantification/composition. Variable
// order is fixed at creation order.
//
// Node indices: 0 is the false terminal, 1 the true terminal. A Bdd value is
// a (manager, index) pair; all operations must stay within one manager.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/diagnostics.hpp"

namespace speccc::bdd {

class Manager;

/// A handle to a BDD node. Cheap to copy; valid as long as its manager.
class Bdd {
 public:
  Bdd() = default;

  [[nodiscard]] bool is_null() const { return mgr_ == nullptr; }
  [[nodiscard]] std::uint32_t index() const { return index_; }
  [[nodiscard]] Manager* manager() const { return mgr_; }

  [[nodiscard]] bool is_false() const { return index_ == 0 && mgr_ != nullptr; }
  [[nodiscard]] bool is_true() const { return index_ == 1; }
  [[nodiscard]] bool is_terminal() const { return index_ <= 1; }

  friend bool operator==(Bdd a, Bdd b) {
    return a.mgr_ == b.mgr_ && a.index_ == b.index_;
  }
  friend bool operator!=(Bdd a, Bdd b) { return !(a == b); }

  // Operator sugar; all delegate to the manager.
  [[nodiscard]] Bdd operator!() const;
  [[nodiscard]] Bdd operator&(Bdd other) const;
  [[nodiscard]] Bdd operator|(Bdd other) const;
  [[nodiscard]] Bdd operator^(Bdd other) const;

 private:
  friend class Manager;
  Bdd(Manager* mgr, std::uint32_t index) : mgr_(mgr), index_(index) {}
  Manager* mgr_ = nullptr;
  std::uint32_t index_ = 0;
};

class Manager {
 public:
  Manager();
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  [[nodiscard]] Bdd bdd_false() { return {this, 0}; }
  [[nodiscard]] Bdd bdd_true() { return {this, 1}; }

  /// Create a fresh variable (appended at the bottom of the order). Returns
  /// its index.
  int new_var();
  [[nodiscard]] int num_vars() const { return num_vars_; }

  /// The BDD for a single variable / its negation.
  [[nodiscard]] Bdd var(int v);
  [[nodiscard]] Bdd nvar(int v);
  /// Literal: variable v with the given polarity.
  [[nodiscard]] Bdd literal(int v, bool positive) {
    return positive ? var(v) : nvar(v);
  }

  // Core operations (memoized).
  [[nodiscard]] Bdd ite(Bdd f, Bdd g, Bdd h);
  [[nodiscard]] Bdd bdd_not(Bdd f) { return ite(f, bdd_false(), bdd_true()); }
  [[nodiscard]] Bdd bdd_and(Bdd f, Bdd g) { return ite(f, g, bdd_false()); }
  [[nodiscard]] Bdd bdd_or(Bdd f, Bdd g) { return ite(f, bdd_true(), g); }
  [[nodiscard]] Bdd bdd_xor(Bdd f, Bdd g) { return ite(f, bdd_not(g), g); }
  [[nodiscard]] Bdd implies(Bdd f, Bdd g) { return ite(f, g, bdd_true()); }
  [[nodiscard]] Bdd iff(Bdd f, Bdd g) { return bdd_not(bdd_xor(f, g)); }

  /// Existential quantification over a set of variables.
  [[nodiscard]] Bdd exists(Bdd f, const std::vector<int>& vars);
  /// Universal quantification over a set of variables.
  [[nodiscard]] Bdd forall(Bdd f, const std::vector<int>& vars);

  /// Cofactor f with variable v fixed to the given value.
  [[nodiscard]] Bdd restrict_var(Bdd f, int v, bool value);

  /// Simultaneous substitution of variables by functions: every variable v
  /// in `map` (indexed by variable, null Bdd = identity) is replaced by
  /// map[v]. Used to compute S[state := delta(state, in, out)] in one pass.
  [[nodiscard]] Bdd vector_compose(Bdd f, const std::vector<Bdd>& map);

  /// One satisfying assignment (minterm over the support of f), or empty if
  /// f is false. Pairs of (variable, value), sorted by variable.
  [[nodiscard]] std::vector<std::pair<int, bool>> pick_model(Bdd f);

  /// Evaluate f under a full assignment (indexed by variable).
  [[nodiscard]] bool evaluate(Bdd f, const std::vector<bool>& assignment);

  /// Number of satisfying assignments over the first `var_count` variables.
  [[nodiscard]] double sat_count(Bdd f, int var_count);

  /// Variables appearing in f, ascending.
  [[nodiscard]] std::vector<int> support(Bdd f);

  /// Number of live nodes (diagnostics / benchmarks).
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Number of nodes reachable from f (its size).
  [[nodiscard]] std::size_t size(Bdd f);

 private:
  struct Node {
    int var;
    std::uint32_t low;
    std::uint32_t high;
  };

  struct NodeKey {
    int var;
    std::uint32_t low;
    std::uint32_t high;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::size_t h = static_cast<std::size_t>(k.var) * 0x9e3779b97f4a7c15ULL;
      h ^= (static_cast<std::size_t>(k.low) << 20) ^ k.high;
      return h ^ (h >> 29);
    }
  };
  struct TripleHash {
    std::size_t operator()(const std::array<std::uint32_t, 3>& k) const {
      std::size_t h = k[0];
      h = h * 0x100000001b3ULL ^ k[1];
      h = h * 0x100000001b3ULL ^ k[2];
      return h;
    }
  };

  std::uint32_t mk(int var, std::uint32_t low, std::uint32_t high);
  std::uint32_t ite_rec(std::uint32_t f, std::uint32_t g, std::uint32_t h);
  std::uint32_t exists_rec(std::uint32_t f, const std::vector<int>& vars,
                           std::unordered_map<std::uint32_t, std::uint32_t>& cache);
  std::uint32_t compose_rec(std::uint32_t f, const std::vector<Bdd>& map,
                            std::unordered_map<std::uint32_t, std::uint32_t>& cache);

  [[nodiscard]] int var_of(std::uint32_t n) const { return nodes_[n].var; }
  [[nodiscard]] Bdd wrap(std::uint32_t n) { return {this, n}; }

  int num_vars_ = 0;
  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, std::uint32_t, NodeKeyHash> unique_;
  std::unordered_map<std::array<std::uint32_t, 3>, std::uint32_t, TripleHash>
      ite_cache_;
};

}  // namespace speccc::bdd
