// Reduced ordered binary decision diagrams with complement edges.
//
// This is the symbolic backbone of the scalable synthesis engine: Table I
// specifications have 20-30 input/output variables plus monitor state bits,
// far beyond explicit-alphabet game solving. The production layout follows
// the classic Brace/Rudell/Bryant design (and the packed-arena engine craft
// of ABC/ZZ):
//
//   * Complement edges. An edge is `(node_index << 1) | complement`, so
//     negation is O(1) and a function and its negation share one DAG. The
//     canonical-form invariant (enforced by `mk`) is that the stored *high*
//     arc of every node is regular; `check_canonical()` audits it.
//   * Flat packed node arena. Nodes are 12-byte POD entries in one vector
//     (no garbage collection: nodes live until the manager dies), found via
//     an open-addressing unique table instead of an `unordered_map`.
//   * Bounded, lossy computed cache. One power-of-two direct-mapped table
//     memoizes ITE, quantification, relational products, composition, and
//     cube cofactors across calls; collisions overwrite (never chain), so
//     long-running fixpoints stop growing without bound. `clear_caches()`
//     drops every memoized result (safe at any point between operations);
//     `stats()` reports hit/miss/eviction counters.
//   * Fused operators. `and_exists` (the relational product), the dual
//     `forall_implies`, and the one-call `preimage`
//     (vector_compose + constrain + quantify) avoid materializing the
//     intermediate conjunction the textbook three-pass formulation builds.
//
// Quantified variable sets and substitution vectors are interned, so a
// fixpoint that re-quantifies the same cube every iteration keys the
// computed cache on a small id and reuses results across iterations.
// Variable order is fixed at creation order.
//
// Threading rule (unchanged): a Manager is single-threaded by design; use
// one Manager per worker (see batch/batch.hpp).
//
// Edges: edge 0 is the true terminal, edge 1 its complement (false). A Bdd
// value is a (manager, edge) pair; all operations must stay within one
// manager.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/diagnostics.hpp"

namespace speccc::bdd {

class Manager;

/// Operation counters for benchmarks, batch reports, and tuning. All
/// counters are cumulative over the manager's lifetime (clear_caches()
/// empties the cache but keeps the counters).
struct Stats {
  std::size_t peak_nodes = 0;       ///< arena high-water mark (nodes are never freed)
  std::size_t unique_hits = 0;      ///< mk() calls answered from the unique table
  std::size_t cache_hits = 0;       ///< computed-cache hits
  std::size_t cache_misses = 0;     ///< computed-cache misses
  std::size_t cache_evictions = 0;  ///< live entries overwritten (lossy collisions)
};

/// A handle to a BDD edge. Cheap to copy; valid as long as its manager.
class Bdd {
 public:
  Bdd() = default;

  [[nodiscard]] bool is_null() const { return mgr_ == nullptr; }
  /// The raw edge: (node index << 1) | complement bit.
  [[nodiscard]] std::uint32_t index() const { return index_; }
  [[nodiscard]] Manager* manager() const { return mgr_; }

  [[nodiscard]] bool is_true() const { return index_ == 0 && mgr_ != nullptr; }
  [[nodiscard]] bool is_false() const { return index_ == 1 && mgr_ != nullptr; }
  [[nodiscard]] bool is_terminal() const { return index_ <= 1; }

  friend bool operator==(Bdd a, Bdd b) {
    return a.mgr_ == b.mgr_ && a.index_ == b.index_;
  }
  friend bool operator!=(Bdd a, Bdd b) { return !(a == b); }

  // Operator sugar; all delegate to the manager.
  [[nodiscard]] Bdd operator!() const;
  [[nodiscard]] Bdd operator&(Bdd other) const;
  [[nodiscard]] Bdd operator|(Bdd other) const;
  [[nodiscard]] Bdd operator^(Bdd other) const;

 private:
  friend class Manager;
  Bdd(Manager* mgr, std::uint32_t index) : mgr_(mgr), index_(index) {}
  Manager* mgr_ = nullptr;
  std::uint32_t index_ = 0;
};

class Manager {
 public:
  Manager();
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  [[nodiscard]] Bdd bdd_true() { return {this, kTrueEdge}; }
  [[nodiscard]] Bdd bdd_false() { return {this, kFalseEdge}; }

  /// Create a fresh variable (appended at the bottom of the order). Returns
  /// its index.
  int new_var();
  [[nodiscard]] int num_vars() const { return num_vars_; }

  /// The BDD for a single variable / its negation.
  [[nodiscard]] Bdd var(int v);
  [[nodiscard]] Bdd nvar(int v);
  /// Literal: variable v with the given polarity.
  [[nodiscard]] Bdd literal(int v, bool positive) {
    return positive ? var(v) : nvar(v);
  }
  /// Conjunction of literals (a minterm when every variable appears).
  [[nodiscard]] Bdd cube(const std::vector<std::pair<int, bool>>& literals);

  // Core operations (memoized in the shared computed cache). Negation is
  // O(1): it only flips the complement bit of the edge.
  [[nodiscard]] Bdd ite(Bdd f, Bdd g, Bdd h);
  [[nodiscard]] Bdd bdd_not(Bdd f) {
    speccc_check(f.manager() == this, "not across managers");
    return wrap(f.index() ^ 1u);
  }
  [[nodiscard]] Bdd bdd_and(Bdd f, Bdd g) { return ite(f, g, bdd_false()); }
  [[nodiscard]] Bdd bdd_or(Bdd f, Bdd g) { return ite(f, bdd_true(), g); }
  [[nodiscard]] Bdd bdd_xor(Bdd f, Bdd g) { return ite(f, bdd_not(g), g); }
  [[nodiscard]] Bdd implies(Bdd f, Bdd g) { return ite(f, g, bdd_true()); }
  [[nodiscard]] Bdd iff(Bdd f, Bdd g) { return bdd_not(bdd_xor(f, g)); }

  /// Existential quantification over a set of variables.
  [[nodiscard]] Bdd exists(Bdd f, const std::vector<int>& vars);
  /// Universal quantification over a set of variables (two O(1) negations
  /// around one exists pass).
  [[nodiscard]] Bdd forall(Bdd f, const std::vector<int>& vars);

  /// Fused relational product: exists vars. (f && g), without building the
  /// conjunction first. The workhorse of symbolic fixpoints.
  [[nodiscard]] Bdd and_exists(Bdd f, Bdd g, const std::vector<int>& vars);
  /// Dual fused form: forall vars. (f -> g) == !exists vars. (f && !g).
  [[nodiscard]] Bdd forall_implies(Bdd f, Bdd g, const std::vector<int>& vars);

  /// Cofactor f with variable v fixed to the given value.
  [[nodiscard]] Bdd restrict_var(Bdd f, int v, bool value);
  /// Cofactor by a conjunction of literals in one pass (each variable at
  /// most once). Much cheaper than conjoining the literals one by one.
  [[nodiscard]] Bdd cofactor(Bdd f, const std::vector<std::pair<int, bool>>& literals);

  /// Simultaneous substitution of variables by functions: every variable v
  /// in `map` (indexed by variable, null Bdd = identity) is replaced by
  /// map[v]. Used to compute S[state := delta(state, in, out)] in one pass.
  [[nodiscard]] Bdd vector_compose(Bdd f, const std::vector<Bdd>& map);

  /// One-call preimage: exists exist_vars. (constraint && target∘map).
  /// Substitutes `map` into `target` (one composition pass, reused across
  /// fixpoint iterations via the interned-substitution cache key) and feeds
  /// the result straight into the fused relational product -- the
  /// three-pass and/exists/compose pipeline collapsed into one call.
  [[nodiscard]] Bdd preimage(Bdd target, const std::vector<Bdd>& map,
                             Bdd constraint, const std::vector<int>& exist_vars);

  /// One satisfying assignment (minterm over the support of f), or empty if
  /// f is false. Pairs of (variable, value), sorted by variable. The choice
  /// is deterministic: at every node the high branch is taken iff it is
  /// satisfiable.
  [[nodiscard]] std::vector<std::pair<int, bool>> pick_model(Bdd f);
  /// One satisfying assignment consistent with `fixed` (each variable at
  /// most once), or empty if none. Decides satisfiability under the
  /// partial assignment in one linear pass with a per-call memo instead
  /// of materializing cofactor(f, fixed) -- the right tool when every
  /// call fixes a different configuration (strategy extraction), where
  /// interned cofactor cubes would never be reused. Deterministic: free
  /// variables take the high branch whenever it stays satisfiable.
  [[nodiscard]] std::vector<std::pair<int, bool>> pick_model(
      Bdd f, const std::vector<std::pair<int, bool>>& fixed);

  /// Evaluate f under a full assignment (indexed by variable).
  [[nodiscard]] bool evaluate(Bdd f, const std::vector<bool>& assignment);

  /// Number of satisfying assignments over the first `var_count` variables.
  [[nodiscard]] double sat_count(Bdd f, int var_count);

  /// Variables appearing in f, ascending.
  [[nodiscard]] std::vector<int> support(Bdd f);

  /// Number of live nodes (diagnostics / benchmarks).
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Number of nodes reachable from f (its size). Complement edges make
  /// size(f) == size(!f).
  [[nodiscard]] std::size_t size(Bdd f);

  /// Operation counters (see Stats). peak_nodes is filled on read.
  [[nodiscard]] Stats stats() const;
  /// Drop every memoized operation result. Safe between any two
  /// operations; the node arena, the unique table, and all existing Bdd
  /// handles stay valid. Call between batches to bound long-run memory.
  void clear_caches();

  /// Audit the complement-edge canonical form over the whole arena: every
  /// stored high arc is regular, no node has equal arcs, and children sit
  /// strictly below their parent in the variable order. Cheap enough for
  /// tests; returns false instead of asserting.
  [[nodiscard]] bool check_canonical() const;

 private:
  using Edge = std::uint32_t;
  static constexpr Edge kTrueEdge = 0;
  static constexpr Edge kFalseEdge = 1;

  static constexpr Edge edge_not(Edge e) { return e ^ 1u; }
  static constexpr std::uint32_t edge_node(Edge e) { return e >> 1; }
  static constexpr bool edge_complement(Edge e) { return (e & 1u) != 0; }
  static constexpr Edge make_edge(std::uint32_t node, bool complement) {
    return (node << 1) | (complement ? 1u : 0u);
  }

  /// Packed arena node. The high arc is always regular (canonical form).
  struct Node {
    std::int32_t var;
    Edge low;
    Edge high;
  };

  /// Computed-cache entry: operands + tag identify the operation. The tag
  /// packs the opcode in the low bits and the interned cube/substitution
  /// id in the high bits; tag 0 means empty.
  struct CacheEntry {
    Edge a = 0;
    Edge b = 0;
    Edge c = 0;
    std::uint32_t tag = 0;
    Edge result = 0;
  };

  enum Op : std::uint32_t {
    kOpIte = 1,
    kOpExists = 2,
    kOpAndExists = 3,
    kOpCompose = 4,
    kOpCofactor = 5,
  };
  static constexpr std::uint32_t op_tag(Op op, std::uint32_t id = 0) {
    return op | (id + 1) * 8u;  // ids shifted past the opcode bits, never 0
  }

  /// An interned set of quantified variables.
  struct CubeSet {
    std::vector<int> vars;      // sorted ascending
    std::vector<bool> member;   // indexed by variable
    int max_var = -1;
  };
  /// An interned substitution (resolved edge per variable).
  struct Substitution {
    std::vector<Edge> map;      // indexed by variable; identity = var edge
    int max_mapped_var = -1;    // highest variable with a non-identity image
  };
  /// An interned signed cube (cofactor literals).
  struct SignedCube {
    std::vector<std::pair<int, bool>> literals;  // sorted by variable
    int max_var = -1;
  };

  [[nodiscard]] std::int32_t var_of(Edge e) const {
    return nodes_[edge_node(e)].var;
  }
  [[nodiscard]] Edge arc(Edge e, bool high) const {
    const Node& n = nodes_[edge_node(e)];
    const Edge child = high ? n.high : n.low;
    return edge_complement(e) ? edge_not(child) : child;
  }
  [[nodiscard]] Bdd wrap(Edge e) { return {this, e}; }

  Edge mk(std::int32_t var, Edge low, Edge high);
  void grow_unique_table();

  [[nodiscard]] bool cache_lookup(Edge a, Edge b, Edge c, std::uint32_t tag,
                                  Edge& result);
  void cache_insert(Edge a, Edge b, Edge c, std::uint32_t tag, Edge result);
  void maybe_grow_cache();

  std::uint32_t intern_cube(const std::vector<int>& vars);
  std::uint32_t intern_substitution(const std::vector<Bdd>& map);
  std::uint32_t intern_signed_cube(
      const std::vector<std::pair<int, bool>>& literals);

  Edge ite_rec(Edge f, Edge g, Edge h);
  Edge and_rec(Edge f, Edge g) { return ite_rec(f, g, kFalseEdge); }
  Edge or_rec(Edge f, Edge g) { return ite_rec(f, kTrueEdge, g); }
  Edge exists_rec(Edge f, std::uint32_t cube_id);
  Edge and_exists_rec(Edge f, Edge g, std::uint32_t cube_id);
  Edge compose_rec(Edge f, std::uint32_t sub_id);
  Edge cofactor_rec(Edge f, std::uint32_t scube_id);

  int num_vars_ = 0;
  std::vector<Node> nodes_;

  // Open-addressing unique table over node indices (0 = empty slot; the
  // terminal node is never hashed).
  std::vector<std::uint32_t> unique_table_;
  std::size_t unique_mask_ = 0;
  std::size_t unique_used_ = 0;

  // Direct-mapped lossy computed cache; grows (rehashing live entries) up
  // to kMaxCacheEntries when the miss rate says it is too small.
  std::vector<CacheEntry> cache_;
  std::size_t cache_mask_ = 0;
  std::size_t misses_at_last_resize_ = 0;
  static constexpr std::size_t kInitialCacheEntries = 1u << 12;
  static constexpr std::size_t kMaxCacheEntries = 1u << 20;

  // Interned operand registries (ids feed the computed-cache tags), each
  // with a content-hash index so repeated interning is O(contents), not
  // O(registry size).
  std::vector<CubeSet> cubes_;
  std::vector<Substitution> subs_;
  std::vector<SignedCube> signed_cubes_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cube_index_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> sub_index_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> signed_cube_index_;

  mutable Stats stats_;
};

}  // namespace speccc::bdd
