#include "bdd/bdd.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

namespace speccc::bdd {

Bdd Bdd::operator!() const {
  speccc_check(mgr_ != nullptr, "operation on null Bdd");
  return mgr_->bdd_not(*this);
}
Bdd Bdd::operator&(Bdd other) const {
  speccc_check(mgr_ != nullptr && mgr_ == other.mgr_, "manager mismatch");
  return mgr_->bdd_and(*this, other);
}
Bdd Bdd::operator|(Bdd other) const {
  speccc_check(mgr_ != nullptr && mgr_ == other.mgr_, "manager mismatch");
  return mgr_->bdd_or(*this, other);
}
Bdd Bdd::operator^(Bdd other) const {
  speccc_check(mgr_ != nullptr && mgr_ == other.mgr_, "manager mismatch");
  return mgr_->bdd_xor(*this, other);
}

namespace {

constexpr std::int32_t kTerminalVar = 1 << 30;  // sorts after every real variable

/// splitmix64-style mixer; the multiplicative constants keep consecutive
/// node indices from clustering in the open-addressing tables.
constexpr std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t h = a * 0x9e3779b97f4a7c15ULL;
  h ^= b * 0xbf58476d1ce4e5b9ULL;
  h ^= c * 0x94d049bb133111ebULL;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return h;
}

}  // namespace

Manager::Manager() {
  nodes_.push_back({kTerminalVar, 0, 0});  // node 0: the true terminal
  unique_table_.assign(1u << 12, 0);
  unique_mask_ = unique_table_.size() - 1;
  cache_.assign(kInitialCacheEntries, CacheEntry{});
  cache_mask_ = cache_.size() - 1;
}

int Manager::new_var() { return num_vars_++; }

// ---- Unique table / arena ---------------------------------------------------

void Manager::grow_unique_table() {
  std::vector<std::uint32_t> next(unique_table_.size() * 2, 0);
  const std::size_t mask = next.size() - 1;
  for (std::uint32_t index = 1; index < nodes_.size(); ++index) {
    const Node& n = nodes_[index];
    std::size_t slot = mix(static_cast<std::uint64_t>(n.var), n.low, n.high) & mask;
    while (next[slot] != 0) slot = (slot + 1) & mask;
    next[slot] = index;
  }
  unique_table_ = std::move(next);
  unique_mask_ = mask;
}

Manager::Edge Manager::mk(std::int32_t var, Edge low, Edge high) {
  if (low == high) return low;
  // Canonical form: the high arc is stored regular; a complemented high
  // arc is normalized by complementing both arcs and the resulting edge.
  bool complement_out = false;
  if (edge_complement(high)) {
    low = edge_not(low);
    high = edge_not(high);
    complement_out = true;
  }
  std::size_t slot = mix(static_cast<std::uint64_t>(var), low, high) & unique_mask_;
  while (true) {
    const std::uint32_t index = unique_table_[slot];
    if (index == 0) break;
    const Node& n = nodes_[index];
    if (n.var == var && n.low == low && n.high == high) {
      ++stats_.unique_hits;
      return make_edge(index, complement_out);
    }
    slot = (slot + 1) & unique_mask_;
  }
  nodes_.push_back({var, low, high});
  const auto index = static_cast<std::uint32_t>(nodes_.size() - 1);
  unique_table_[slot] = index;
  if (++unique_used_ * 10 >= unique_table_.size() * 7) grow_unique_table();
  return make_edge(index, complement_out);
}

Bdd Manager::var(int v) {
  speccc_check(v >= 0 && v < num_vars_, "unknown variable");
  return wrap(mk(v, kFalseEdge, kTrueEdge));
}

Bdd Manager::nvar(int v) {
  speccc_check(v >= 0 && v < num_vars_, "unknown variable");
  return wrap(edge_not(mk(v, kFalseEdge, kTrueEdge)));
}

Bdd Manager::cube(const std::vector<std::pair<int, bool>>& literals) {
  std::vector<std::pair<int, bool>> sorted = literals;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    // A repeated variable would stack two nodes on one level, silently
    // breaking the ordering invariant for the whole arena.
    speccc_check(sorted[i].first != sorted[i - 1].first,
                 "cube literal repeated");
  }
  Edge e = kTrueEdge;
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    speccc_check(it->first >= 0 && it->first < num_vars_, "unknown variable");
    e = it->second ? mk(it->first, kFalseEdge, e) : mk(it->first, e, kFalseEdge);
  }
  return wrap(e);
}

// ---- Computed cache ---------------------------------------------------------

bool Manager::cache_lookup(Edge a, Edge b, Edge c, std::uint32_t tag,
                           Edge& result) {
  const CacheEntry& entry = cache_[mix(a, b, (static_cast<std::uint64_t>(tag) << 32) | c) & cache_mask_];
  if (entry.tag == tag && entry.a == a && entry.b == b && entry.c == c) {
    ++stats_.cache_hits;
    result = entry.result;
    return true;
  }
  ++stats_.cache_misses;
  return false;
}

void Manager::cache_insert(Edge a, Edge b, Edge c, std::uint32_t tag,
                           Edge result) {
  CacheEntry& entry = cache_[mix(a, b, (static_cast<std::uint64_t>(tag) << 32) | c) & cache_mask_];
  if (entry.tag != 0 &&
      (entry.tag != tag || entry.a != a || entry.b != b || entry.c != c)) {
    ++stats_.cache_evictions;
  }
  entry = {a, b, c, tag, result};
  maybe_grow_cache();
}

void Manager::maybe_grow_cache() {
  // Lossy and direct-mapped: double (rehashing the live entries) when the
  // miss count since the last resize exceeds twice the capacity, until the
  // hard bound. Past the bound the cache stays fixed -- old entries are
  // simply overwritten, so memory is bounded no matter how long the
  // manager lives.
  if (cache_.size() >= kMaxCacheEntries) return;
  if (stats_.cache_misses - misses_at_last_resize_ <= cache_.size() * 2) return;
  std::vector<CacheEntry> next(cache_.size() * 2);
  const std::size_t mask = next.size() - 1;
  for (const CacheEntry& entry : cache_) {
    if (entry.tag == 0) continue;
    next[mix(entry.a, entry.b,
             (static_cast<std::uint64_t>(entry.tag) << 32) | entry.c) & mask] = entry;
  }
  cache_ = std::move(next);
  cache_mask_ = mask;
  misses_at_last_resize_ = stats_.cache_misses;
}

void Manager::clear_caches() {
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
  misses_at_last_resize_ = stats_.cache_misses;
}

Stats Manager::stats() const {
  Stats out = stats_;
  out.peak_nodes = nodes_.size();
  return out;
}

// ---- Interned operands ------------------------------------------------------

namespace {

template <typename Seq, typename Field>
std::uint64_t content_hash(const Seq& seq, Field&& field) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  for (const auto& item : seq) {
    h = mix(h, static_cast<std::uint64_t>(field(item)), 0x13198a2e03707344ULL);
  }
  return h;
}

}  // namespace

std::uint32_t Manager::intern_cube(const std::vector<int>& vars) {
  std::vector<int> sorted = vars;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  auto& bucket = cube_index_[content_hash(
      sorted, [](int v) { return static_cast<std::uint64_t>(v); })];
  for (const std::uint32_t id : bucket) {
    if (cubes_[id].vars == sorted) return id;
  }
  CubeSet cube;
  cube.member.assign(static_cast<std::size_t>(num_vars_), false);
  for (const int v : sorted) {
    speccc_check(v >= 0 && v < num_vars_, "quantifying an unknown variable");
    cube.member[static_cast<std::size_t>(v)] = true;
  }
  cube.max_var = sorted.empty() ? -1 : sorted.back();
  cube.vars = std::move(sorted);
  cubes_.push_back(std::move(cube));
  const auto id = static_cast<std::uint32_t>(cubes_.size() - 1);
  bucket.push_back(id);
  return id;
}

std::uint32_t Manager::intern_substitution(const std::vector<Bdd>& map) {
  std::vector<Edge> resolved(static_cast<std::size_t>(num_vars_));
  int max_mapped = -1;
  for (int v = 0; v < num_vars_; ++v) {
    const Bdd& g = map[static_cast<std::size_t>(v)];
    if (g.is_null()) {
      resolved[static_cast<std::size_t>(v)] = mk(v, kFalseEdge, kTrueEdge);
    } else {
      speccc_check(g.manager() == this, "substitution across managers");
      resolved[static_cast<std::size_t>(v)] = g.index();
      if (resolved[static_cast<std::size_t>(v)] != mk(v, kFalseEdge, kTrueEdge)) {
        max_mapped = v;
      }
    }
  }
  auto& bucket = sub_index_[content_hash(
      resolved, [](Edge e) { return static_cast<std::uint64_t>(e); })];
  for (const std::uint32_t id : bucket) {
    if (subs_[id].map == resolved) return id;
  }
  subs_.push_back({std::move(resolved), max_mapped});
  const auto id = static_cast<std::uint32_t>(subs_.size() - 1);
  bucket.push_back(id);
  return id;
}

std::uint32_t Manager::intern_signed_cube(
    const std::vector<std::pair<int, bool>>& literals) {
  std::vector<std::pair<int, bool>> sorted = literals;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    speccc_check(sorted[i].first != sorted[i - 1].first,
                 "cofactor literal repeated");
  }
  auto& bucket = signed_cube_index_[content_hash(sorted, [](const std::pair<int, bool>& lit) {
    return (static_cast<std::uint64_t>(lit.first) << 1) | (lit.second ? 1u : 0u);
  })];
  for (const std::uint32_t id : bucket) {
    if (signed_cubes_[id].literals == sorted) return id;
  }
  for (const auto& [v, value] : sorted) {
    (void)value;
    speccc_check(v >= 0 && v < num_vars_, "cofactor on an unknown variable");
  }
  SignedCube scube;
  scube.max_var = sorted.empty() ? -1 : sorted.back().first;
  scube.literals = std::move(sorted);
  signed_cubes_.push_back(std::move(scube));
  const auto id = static_cast<std::uint32_t>(signed_cubes_.size() - 1);
  bucket.push_back(id);
  return id;
}

// ---- ITE --------------------------------------------------------------------

Manager::Edge Manager::ite_rec(Edge f, Edge g, Edge h) {
  // Terminal and absorption cases.
  if (f == kTrueEdge) return g;
  if (f == kFalseEdge) return h;
  if (g == h) return g;
  if (g == f) g = kTrueEdge;
  else if (g == edge_not(f)) g = kFalseEdge;
  if (h == f) h = kFalseEdge;
  else if (h == edge_not(f)) h = kTrueEdge;
  if (g == kTrueEdge && h == kFalseEdge) return f;
  if (g == kFalseEdge && h == kTrueEdge) return edge_not(f);
  if (g == h) return g;

  // Standard-triple normalization (Brace/Rudell/Bryant): exploit the
  // symmetry of AND/OR forms so equivalent calls share one cache entry.
  if (g == kTrueEdge) {           // f || h
    if (h < f) std::swap(f, h);
  } else if (h == kFalseEdge) {   // f && g
    if (g < f) std::swap(f, g);
  } else if (h == kTrueEdge) {    // ite(f, g, 1) == ite(!g, !f, 1)
    if (edge_not(g) < f) {
      const Edge nf = edge_not(f);
      f = edge_not(g);
      g = nf;
    }
  } else if (g == kFalseEdge) {   // ite(f, 0, h) == ite(!h, 0, !f)
    if (edge_not(h) < f) {
      const Edge nf = edge_not(f);
      f = edge_not(h);
      h = nf;
    }
  }
  // The tested edge and the then-edge are kept regular; complements move
  // into the other operands / the result.
  if (edge_complement(f)) {
    f = edge_not(f);
    std::swap(g, h);
  }
  bool negate_out = false;
  if (edge_complement(g)) {
    g = edge_not(g);
    h = edge_not(h);
    negate_out = true;
  }

  Edge result;
  const std::uint32_t tag = op_tag(kOpIte);
  if (cache_lookup(f, g, h, tag, result)) {
    return negate_out ? edge_not(result) : result;
  }

  const std::int32_t top = std::min({var_of(f), var_of(g), var_of(h)});
  const auto cof = [&](Edge e, bool high) {
    return var_of(e) == top ? arc(e, high) : e;
  };
  const Edge t = ite_rec(cof(f, true), cof(g, true), cof(h, true));
  const Edge e = ite_rec(cof(f, false), cof(g, false), cof(h, false));
  result = t == e ? t : mk(top, e, t);
  cache_insert(f, g, h, tag, result);
  return negate_out ? edge_not(result) : result;
}

Bdd Manager::ite(Bdd f, Bdd g, Bdd h) {
  speccc_check(f.manager() == this && g.manager() == this && h.manager() == this,
               "ite across managers");
  return wrap(ite_rec(f.index(), g.index(), h.index()));
}

// ---- Quantification ---------------------------------------------------------

Manager::Edge Manager::exists_rec(Edge f, std::uint32_t cube_id) {
  if (edge_node(f) == 0) return f;
  const CubeSet& cube = cubes_[cube_id];
  const std::int32_t v = var_of(f);
  // Variables are ordered; once every quantified variable is above v,
  // nothing below can mention them.
  if (v > cube.max_var) return f;

  Edge result;
  const std::uint32_t tag = op_tag(kOpExists, cube_id);
  if (cache_lookup(f, 0, 0, tag, result)) return result;

  const Edge lo = exists_rec(arc(f, false), cube_id);
  if (cube.member[static_cast<std::size_t>(v)]) {
    // Early termination: lo || hi is true as soon as one side is.
    result = lo == kTrueEdge ? kTrueEdge
                             : or_rec(lo, exists_rec(arc(f, true), cube_id));
  } else {
    const Edge hi = exists_rec(arc(f, true), cube_id);
    result = lo == hi ? lo : mk(v, lo, hi);
  }
  cache_insert(f, 0, 0, tag, result);
  return result;
}

Bdd Manager::exists(Bdd f, const std::vector<int>& vars) {
  speccc_check(f.manager() == this, "exists across managers");
  if (vars.empty() || f.is_terminal()) return f;
  return wrap(exists_rec(f.index(), intern_cube(vars)));
}

Bdd Manager::forall(Bdd f, const std::vector<int>& vars) {
  return bdd_not(exists(bdd_not(f), vars));
}

Manager::Edge Manager::and_exists_rec(Edge f, Edge g, std::uint32_t cube_id) {
  // Terminal cases of the conjunction.
  if (f == kFalseEdge || g == kFalseEdge) return kFalseEdge;
  if (f == edge_not(g)) return kFalseEdge;
  if (f == kTrueEdge) return exists_rec(g, cube_id);
  if (g == kTrueEdge || f == g) return exists_rec(f, cube_id);
  if (g < f) std::swap(f, g);  // commutative: canonical operand order

  const CubeSet& cube = cubes_[cube_id];
  const std::int32_t top = std::min(var_of(f), var_of(g));
  // No quantified variable at or below the top: plain conjunction.
  if (top > cube.max_var) return and_rec(f, g);

  Edge result;
  const std::uint32_t tag = op_tag(kOpAndExists, cube_id);
  if (cache_lookup(f, g, 0, tag, result)) return result;

  const auto cof = [&](Edge e, bool high) {
    return var_of(e) == top ? arc(e, high) : e;
  };
  if (cube.member[static_cast<std::size_t>(top)]) {
    const Edge t = and_exists_rec(cof(f, true), cof(g, true), cube_id);
    // Early termination mirrors exists_rec: true absorbs the disjunction.
    result = t == kTrueEdge
                 ? kTrueEdge
                 : or_rec(t, and_exists_rec(cof(f, false), cof(g, false), cube_id));
  } else {
    const Edge t = and_exists_rec(cof(f, true), cof(g, true), cube_id);
    const Edge e = and_exists_rec(cof(f, false), cof(g, false), cube_id);
    result = t == e ? t : mk(top, e, t);
  }
  cache_insert(f, g, 0, tag, result);
  return result;
}

Bdd Manager::and_exists(Bdd f, Bdd g, const std::vector<int>& vars) {
  speccc_check(f.manager() == this && g.manager() == this,
               "and_exists across managers");
  if (vars.empty()) return bdd_and(f, g);
  return wrap(and_exists_rec(f.index(), g.index(), intern_cube(vars)));
}

Bdd Manager::forall_implies(Bdd f, Bdd g, const std::vector<int>& vars) {
  // forall vars. (f -> g) == !exists vars. (f && !g); both negations are
  // free under complement edges, so this is one fused pass.
  return bdd_not(and_exists(f, bdd_not(g), vars));
}

// ---- Composition / cofactors ------------------------------------------------

Manager::Edge Manager::compose_rec(Edge f, std::uint32_t sub_id) {
  if (edge_node(f) == 0) return f;
  const Substitution& sub = subs_[sub_id];
  const std::int32_t v = var_of(f);
  // Below the last substituted variable every node maps to itself.
  if (v > sub.max_mapped_var) return f;

  Edge result;
  const std::uint32_t tag = op_tag(kOpCompose, sub_id);
  if (cache_lookup(f, 0, 0, tag, result)) return result;

  const Edge lo = compose_rec(arc(f, false), sub_id);
  const Edge hi = compose_rec(arc(f, true), sub_id);
  // Rebuild with ite: the substituted arcs may now contain variables above
  // v, so mk alone would break the ordering invariant.
  result = ite_rec(sub.map[static_cast<std::size_t>(v)], hi, lo);
  cache_insert(f, 0, 0, tag, result);
  return result;
}

Bdd Manager::vector_compose(Bdd f, const std::vector<Bdd>& map) {
  speccc_check(f.manager() == this, "compose across managers");
  speccc_check(map.size() == static_cast<std::size_t>(num_vars_),
               "compose map must cover all variables");
  return wrap(compose_rec(f.index(), intern_substitution(map)));
}

Bdd Manager::preimage(Bdd target, const std::vector<Bdd>& map, Bdd constraint,
                      const std::vector<int>& exist_vars) {
  speccc_check(target.manager() == this && constraint.manager() == this,
               "preimage across managers");
  speccc_check(map.size() == static_cast<std::size_t>(num_vars_),
               "preimage map must cover all variables");
  const Edge composed = compose_rec(target.index(), intern_substitution(map));
  if (exist_vars.empty()) return wrap(and_rec(constraint.index(), composed));
  return wrap(
      and_exists_rec(constraint.index(), composed, intern_cube(exist_vars)));
}

Manager::Edge Manager::cofactor_rec(Edge f, std::uint32_t scube_id) {
  if (edge_node(f) == 0) return f;
  const SignedCube& scube = signed_cubes_[scube_id];
  const std::int32_t v = var_of(f);
  if (v > scube.max_var) return f;

  Edge result;
  const std::uint32_t tag = op_tag(kOpCofactor, scube_id);
  if (cache_lookup(f, 0, 0, tag, result)) return result;

  const auto it = std::lower_bound(
      scube.literals.begin(), scube.literals.end(), v,
      [](const std::pair<int, bool>& lit, std::int32_t value) {
        return lit.first < value;
      });
  if (it != scube.literals.end() && it->first == v) {
    result = cofactor_rec(arc(f, it->second), scube_id);
  } else {
    const Edge lo = cofactor_rec(arc(f, false), scube_id);
    const Edge hi = cofactor_rec(arc(f, true), scube_id);
    result = lo == hi ? lo : mk(v, lo, hi);
  }
  cache_insert(f, 0, 0, tag, result);
  return result;
}

Bdd Manager::cofactor(Bdd f,
                      const std::vector<std::pair<int, bool>>& literals) {
  speccc_check(f.manager() == this, "cofactor across managers");
  if (literals.empty() || f.is_terminal()) return f;
  return wrap(cofactor_rec(f.index(), intern_signed_cube(literals)));
}

Bdd Manager::restrict_var(Bdd f, int v, bool value) {
  return cofactor(f, {{v, value}});
}

// ---- Model queries ----------------------------------------------------------

std::vector<std::pair<int, bool>> Manager::pick_model(Bdd f) {
  speccc_check(f.manager() == this, "pick_model across managers");
  std::vector<std::pair<int, bool>> out;
  Edge e = f.index();
  if (e == kFalseEdge) return {};
  while (edge_node(e) != 0) {
    // Every edge other than constant-false is satisfiable in a reduced
    // diagram, so a greedy descent never backtracks: prefer the high arc
    // whenever it is not the false edge.
    const Edge hi = arc(e, true);
    if (hi != kFalseEdge) {
      out.emplace_back(var_of(e), true);
      e = hi;
    } else {
      out.emplace_back(var_of(e), false);
      e = arc(e, false);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<int, bool>> Manager::pick_model(
    Bdd f, const std::vector<std::pair<int, bool>>& fixed) {
  speccc_check(f.manager() == this, "pick_model across managers");
  std::vector<signed char> value(static_cast<std::size_t>(num_vars_), -1);
  for (const auto& [v, val] : fixed) {
    speccc_check(v >= 0 && v < num_vars_, "fixing an unknown variable");
    speccc_check(value[static_cast<std::size_t>(v)] == -1,
                 "pick_model literal repeated");
    value[static_cast<std::size_t>(v)] = val ? 1 : 0;
  }
  // Satisfiability under the partial assignment, memoized per edge: the
  // greedy model walk below never backtracks because it only enters
  // branches this oracle has already proven satisfiable.
  std::unordered_map<Edge, bool> sat_memo;
  const std::function<bool(Edge)> sat = [&](Edge e) -> bool {
    if (edge_node(e) == 0) return e == kTrueEdge;
    const auto it = sat_memo.find(e);
    if (it != sat_memo.end()) return it->second;
    const signed char fix = value[static_cast<std::size_t>(var_of(e))];
    bool ok;
    if (fix >= 0) {
      ok = sat(arc(e, fix == 1));
    } else {
      ok = sat(arc(e, true)) || sat(arc(e, false));
    }
    sat_memo.emplace(e, ok);
    return ok;
  };
  if (!sat(f.index())) return {};

  std::vector<std::pair<int, bool>> out;
  Edge e = f.index();
  while (edge_node(e) != 0) {
    const std::int32_t v = var_of(e);
    const signed char fix = value[static_cast<std::size_t>(v)];
    bool take_high;
    if (fix >= 0) {
      take_high = fix == 1;
    } else {
      // Same deterministic rule as the unconstrained pick_model: high
      // whenever it stays satisfiable.
      take_high = sat(arc(e, true));
    }
    out.emplace_back(v, take_high);
    e = arc(e, take_high);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Manager::evaluate(Bdd f, const std::vector<bool>& assignment) {
  speccc_check(f.manager() == this, "evaluate across managers");
  Edge e = f.index();
  while (edge_node(e) != 0) {
    const std::int32_t v = var_of(e);
    speccc_check(static_cast<std::size_t>(v) < assignment.size(),
                 "assignment does not cover variable");
    e = arc(e, assignment[static_cast<std::size_t>(v)]);
  }
  return e == kTrueEdge;
}

double Manager::sat_count(Bdd f, int var_count) {
  speccc_check(f.manager() == this, "sat_count across managers");
  // Satisfaction probability per regular node; complements are 1 - p at
  // the edge level, which complement edges make exact and gap-free.
  std::unordered_map<std::uint32_t, double> prob;
  const std::function<double(Edge)> pe = [&](Edge e) -> double {
    if (edge_node(e) == 0) return edge_complement(e) ? 0.0 : 1.0;
    double p;
    const auto it = prob.find(edge_node(e));
    if (it != prob.end()) {
      p = it->second;
    } else {
      const Node& n = nodes_[edge_node(e)];
      p = 0.5 * pe(n.low) + 0.5 * pe(n.high);
      prob.emplace(edge_node(e), p);
    }
    return edge_complement(e) ? 1.0 - p : p;
  };
  double scale = 1.0;
  for (int i = 0; i < var_count; ++i) scale *= 2.0;
  return pe(f.index()) * scale;
}

std::vector<int> Manager::support(Bdd f) {
  speccc_check(f.manager() == this, "support across managers");
  std::vector<bool> seen_node(nodes_.size(), false);
  std::vector<bool> in_support(static_cast<std::size_t>(num_vars_), false);
  std::vector<Edge> stack{f.index()};
  while (!stack.empty()) {
    const std::uint32_t n = edge_node(stack.back());
    stack.pop_back();
    if (n == 0 || seen_node[n]) continue;
    seen_node[n] = true;
    in_support[static_cast<std::size_t>(nodes_[n].var)] = true;
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  std::vector<int> out;
  for (int v = 0; v < num_vars_; ++v) {
    if (in_support[static_cast<std::size_t>(v)]) out.push_back(v);
  }
  return out;
}

std::size_t Manager::size(Bdd f) {
  speccc_check(f.manager() == this, "size across managers");
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<Edge> stack{f.index()};
  std::size_t count = 0;
  while (!stack.empty()) {
    const std::uint32_t n = edge_node(stack.back());
    stack.pop_back();
    if (n == 0 || seen[n]) continue;
    seen[n] = true;
    ++count;
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  return count;
}

bool Manager::check_canonical() const {
  for (std::uint32_t index = 1; index < nodes_.size(); ++index) {
    const Node& n = nodes_[index];
    if (edge_complement(n.high)) return false;           // high arc regular
    if (n.low == n.high) return false;                   // reduced
    if (n.var < 0 || n.var >= num_vars_) return false;   // real variable
    if (var_of(n.low) <= n.var || var_of(n.high) <= n.var) {
      return false;                                      // ordered
    }
  }
  return true;
}

}  // namespace speccc::bdd
