#include "bdd/bdd.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace speccc::bdd {

Bdd Bdd::operator!() const {
  speccc_check(mgr_ != nullptr, "operation on null Bdd");
  return mgr_->bdd_not(*this);
}
Bdd Bdd::operator&(Bdd other) const {
  speccc_check(mgr_ != nullptr && mgr_ == other.mgr_, "manager mismatch");
  return mgr_->bdd_and(*this, other);
}
Bdd Bdd::operator|(Bdd other) const {
  speccc_check(mgr_ != nullptr && mgr_ == other.mgr_, "manager mismatch");
  return mgr_->bdd_or(*this, other);
}
Bdd Bdd::operator^(Bdd other) const {
  speccc_check(mgr_ != nullptr && mgr_ == other.mgr_, "manager mismatch");
  return mgr_->bdd_xor(*this, other);
}

namespace {
constexpr int kTerminalVar = 1 << 30;  // sorts after every real variable
}

Manager::Manager() {
  nodes_.push_back({kTerminalVar, 0, 0});  // index 0: false
  nodes_.push_back({kTerminalVar, 1, 1});  // index 1: true
}

int Manager::new_var() { return num_vars_++; }

std::uint32_t Manager::mk(int var, std::uint32_t low, std::uint32_t high) {
  if (low == high) return low;
  const NodeKey key{var, low, high};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  nodes_.push_back({var, low, high});
  const auto index = static_cast<std::uint32_t>(nodes_.size() - 1);
  unique_.emplace(key, index);
  return index;
}

Bdd Manager::var(int v) {
  speccc_check(v >= 0 && v < num_vars_, "unknown variable");
  return wrap(mk(v, 0, 1));
}

Bdd Manager::nvar(int v) {
  speccc_check(v >= 0 && v < num_vars_, "unknown variable");
  return wrap(mk(v, 1, 0));
}

std::uint32_t Manager::ite_rec(std::uint32_t f, std::uint32_t g,
                               std::uint32_t h) {
  // Terminal cases.
  if (f == 1) return g;
  if (f == 0) return h;
  if (g == h) return g;
  if (g == 1 && h == 0) return f;

  const std::array<std::uint32_t, 3> key{f, g, h};
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const int top = std::min({var_of(f), var_of(g), var_of(h)});
  const auto cof = [&](std::uint32_t n, bool hi) -> std::uint32_t {
    if (var_of(n) != top) return n;
    return hi ? nodes_[n].high : nodes_[n].low;
  };
  const std::uint32_t t = ite_rec(cof(f, true), cof(g, true), cof(h, true));
  const std::uint32_t e = ite_rec(cof(f, false), cof(g, false), cof(h, false));
  const std::uint32_t result = mk(top, e, t);
  ite_cache_.emplace(key, result);
  return result;
}

Bdd Manager::ite(Bdd f, Bdd g, Bdd h) {
  speccc_check(f.manager() == this && g.manager() == this && h.manager() == this,
               "ite across managers");
  return wrap(ite_rec(f.index(), g.index(), h.index()));
}

std::uint32_t Manager::exists_rec(
    std::uint32_t f, const std::vector<int>& vars,
    std::unordered_map<std::uint32_t, std::uint32_t>& cache) {
  if (f <= 1) return f;
  const int v = var_of(f);
  // Variables are sorted; if every quantified variable is above v in the
  // order, nothing below can mention them.
  if (v > vars.back()) return f;
  auto it = cache.find(f);
  if (it != cache.end()) return it->second;

  const std::uint32_t lo = exists_rec(nodes_[f].low, vars, cache);
  const std::uint32_t hi = exists_rec(nodes_[f].high, vars, cache);
  std::uint32_t result;
  if (std::binary_search(vars.begin(), vars.end(), v)) {
    result = ite_rec(lo, 1, hi);  // lo || hi
  } else {
    result = mk(v, lo, hi);
  }
  cache.emplace(f, result);
  return result;
}

Bdd Manager::exists(Bdd f, const std::vector<int>& vars) {
  speccc_check(f.manager() == this, "exists across managers");
  if (vars.empty() || f.is_terminal()) return f;
  std::vector<int> sorted = vars;
  std::sort(sorted.begin(), sorted.end());
  std::unordered_map<std::uint32_t, std::uint32_t> cache;
  return wrap(exists_rec(f.index(), sorted, cache));
}

Bdd Manager::forall(Bdd f, const std::vector<int>& vars) {
  return bdd_not(exists(bdd_not(f), vars));
}

Bdd Manager::restrict_var(Bdd f, int v, bool value) {
  std::vector<Bdd> map(static_cast<std::size_t>(num_vars_));
  map[static_cast<std::size_t>(v)] = value ? bdd_true() : bdd_false();
  return vector_compose(f, map);
}

std::uint32_t Manager::compose_rec(
    std::uint32_t f, const std::vector<Bdd>& map,
    std::unordered_map<std::uint32_t, std::uint32_t>& cache) {
  if (f <= 1) return f;
  auto it = cache.find(f);
  if (it != cache.end()) return it->second;

  const int v = var_of(f);
  const std::uint32_t lo = compose_rec(nodes_[f].low, map, cache);
  const std::uint32_t hi = compose_rec(nodes_[f].high, map, cache);
  std::uint32_t result;
  const Bdd& g = map[static_cast<std::size_t>(v)];
  if (g.is_null()) {
    // Identity: rebuild with ite to keep ordering canonical (lo/hi may now
    // contain variables above v).
    const std::uint32_t v_bdd = mk(v, 0, 1);
    result = ite_rec(v_bdd, hi, lo);
  } else {
    result = ite_rec(g.index(), hi, lo);
  }
  cache.emplace(f, result);
  return result;
}

Bdd Manager::vector_compose(Bdd f, const std::vector<Bdd>& map) {
  speccc_check(f.manager() == this, "compose across managers");
  speccc_check(map.size() == static_cast<std::size_t>(num_vars_),
               "compose map must cover all variables");
  std::unordered_map<std::uint32_t, std::uint32_t> cache;
  return wrap(compose_rec(f.index(), map, cache));
}

std::vector<std::pair<int, bool>> Manager::pick_model(Bdd f) {
  speccc_check(f.manager() == this, "pick_model across managers");
  std::vector<std::pair<int, bool>> out;
  std::uint32_t n = f.index();
  while (n > 1) {
    const Node& node = nodes_[n];
    if (node.high != 0) {
      out.emplace_back(node.var, true);
      n = node.high;
    } else {
      out.emplace_back(node.var, false);
      n = node.low;
    }
  }
  if (n == 0) return {};  // f is false
  std::sort(out.begin(), out.end());
  return out;
}

bool Manager::evaluate(Bdd f, const std::vector<bool>& assignment) {
  speccc_check(f.manager() == this, "evaluate across managers");
  std::uint32_t n = f.index();
  while (n > 1) {
    const Node& node = nodes_[n];
    speccc_check(static_cast<std::size_t>(node.var) < assignment.size(),
                 "assignment does not cover variable");
    n = assignment[static_cast<std::size_t>(node.var)] ? node.high : node.low;
  }
  return n == 1;
}

double Manager::sat_count(Bdd f, int var_count) {
  speccc_check(f.manager() == this, "sat_count across managers");
  std::unordered_map<std::uint32_t, double> cache;
  // Count models over variables [0, var_count).
  auto rec = [&](auto&& self, std::uint32_t n) -> double {
    if (n == 0) return 0.0;
    if (n == 1) return 1.0;
    auto it = cache.find(n);
    if (it != cache.end()) return it->second;
    const Node& node = nodes_[n];
    const double lo = self(self, node.low);
    const double hi = self(self, node.high);
    const int lo_var = node.low <= 1 ? var_count : var_of(node.low);
    const int hi_var = node.high <= 1 ? var_count : var_of(node.high);
    const double result = lo * std::pow(2.0, lo_var - node.var - 1) +
                          hi * std::pow(2.0, hi_var - node.var - 1);
    cache.emplace(n, result);
    return result;
  };
  if (f.is_terminal()) {
    return f.is_true() ? std::pow(2.0, var_count) : 0.0;
  }
  return rec(rec, f.index()) * std::pow(2.0, var_of(f.index()));
}

std::vector<int> Manager::support(Bdd f) {
  speccc_check(f.manager() == this, "support across managers");
  std::vector<bool> seen_node(nodes_.size(), false);
  std::vector<bool> in_support(static_cast<std::size_t>(num_vars_), false);
  std::vector<std::uint32_t> stack{f.index()};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (n <= 1 || seen_node[n]) continue;
    seen_node[n] = true;
    in_support[static_cast<std::size_t>(nodes_[n].var)] = true;
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  std::vector<int> out;
  for (int v = 0; v < num_vars_; ++v) {
    if (in_support[static_cast<std::size_t>(v)]) out.push_back(v);
  }
  return out;
}

std::size_t Manager::size(Bdd f) {
  speccc_check(f.manager() == this, "size across managers");
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<std::uint32_t> stack{f.index()};
  std::size_t count = 0;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (n <= 1 || seen[n]) continue;
    seen[n] = true;
    ++count;
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  return count;
}

}  // namespace speccc::bdd
