#include "core/pipeline.hpp"

#include <map>

#include "automata/emptiness.hpp"
#include "ltl/rewrite.hpp"

#include "util/diagnostics.hpp"

namespace speccc::core {

Pipeline::Pipeline(PipelineOptions options)
    : options_(std::move(options)),
      lexicon_(options_.lexicon.value_or(nlp::Lexicon::builtin())),
      dictionary_(
          options_.dictionary.value_or(semantics::AntonymDictionary::builtin())) {}

PipelineResult Pipeline::run(
    const std::string& name,
    const std::vector<translate::RequirementText>& requirements) const {
  PipelineResult result;
  result.name = name;

  const auto poll_cancel = [&](const char* stage) {
    if (options_.cancelled && options_.cancelled()) {
      throw util::CancelledError("pipeline run '" + name +
                                 "' cancelled before " + stage);
    }
  };

  const translate::Translator translator(lexicon_, dictionary_,
                                         options_.translation);

  // ---- Stage 1: translation ---------------------------------------------------
  poll_cancel("translation");
  util::Stopwatch stage1;
  result.translation = translator.translate(requirements);

  // Time abstraction: harvest Theta, optimize, re-translate with the mapper.
  const auto thetas = result.translation.thetas();
  if (options_.time_abstraction && !thetas.empty()) {
    timeabs::Request request;
    request.thetas = thetas;
    request.error_budget = options_.error_budget;
    const auto abstraction = timeabs::optimize(request, options_.timeabs_backend);
    speccc_check(abstraction.has_value(), "abstraction always has d=1 fallback");
    result.abstraction = abstraction;

    std::map<unsigned, unsigned> remap;
    for (std::size_t i = 0; i < thetas.size(); ++i) {
      remap[thetas[i]] = abstraction->reduced[i];
    }
    const translate::TickMapper mapper = [remap](unsigned ticks) -> unsigned {
      const auto it = remap.find(ticks);
      return it == remap.end() ? ticks : it->second;
    };
    result.translation = translator.translate(requirements, mapper);
  }

  const std::vector<ltl::Formula> formulas = result.translation.formulas();
  result.partition = partition::unify(formulas, options_.partition_overrides);

  // Per-requirement satisfiability screening: an unsatisfiable requirement
  // makes the whole specification unimplementable regardless of the
  // partition, so it is reported as early diagnostics.
  if (options_.satisfiability_check) {
    for (const auto& req : result.translation.requirements) {
      if (ltl::max_next_chain(req.formula) > options_.satisfiability_chain_cap) {
        continue;
      }
      if (!automata::satisfiable(req.formula)) {
        result.unsatisfiable_requirements.push_back(req.id);
      }
    }
  }
  result.translation_seconds = stage1.seconds();

  // ---- Stage 2: realizability -------------------------------------------------
  poll_cancel("synthesis");
  synth::IoSignature signature;
  signature.inputs.assign(result.partition.inputs.begin(),
                          result.partition.inputs.end());
  signature.outputs.assign(result.partition.outputs.begin(),
                           result.partition.outputs.end());

  util::Stopwatch stage2;
  result.synthesis = synth::synthesize(formulas, signature, options_.synthesis);
  result.synthesis_seconds = stage2.seconds();
  result.consistent =
      result.synthesis.verdict == synth::Realizability::kRealizable;

  // ---- Stage 3: refinement loop -------------------------------------------------
  if (!result.consistent && options_.refine_on_failure) {
    poll_cancel("refinement");
    util::Stopwatch stage3;
    result.refinement =
        refine::refine(formulas, result.partition, options_.synthesis);
    result.refinement_seconds = stage3.seconds();
    if (result.refinement->consistent) {
      result.consistent = true;
      result.partition = result.refinement->partition;
    }
  }
  return result;
}

}  // namespace speccc::core
