#include "core/pipeline.hpp"

#include <map>

#include "automata/emptiness.hpp"
#include "ltl/rewrite.hpp"

#include "util/diagnostics.hpp"

namespace speccc::core {

Pipeline::Pipeline(PipelineOptions options)
    : options_(std::move(options)),
      lexicon_(options_.lexicon.value_or(nlp::Lexicon::builtin())),
      dictionary_(
          options_.dictionary.value_or(semantics::AntonymDictionary::builtin())),
      translator_(lexicon_, dictionary_, options_.translation,
                  options_.cache.get()) {}

PipelineResult Pipeline::run(
    const std::string& name,
    const std::vector<translate::RequirementText>& requirements,
    const SubstrateSpec* substrate_override) const {
  PipelineResult result;
  result.name = name;

  const auto poll_cancel = [&](const char* stage) {
    if (options_.cancelled && options_.cancelled()) {
      throw util::CancelledError("pipeline run '" + name +
                                 "' cancelled before " + stage);
    }
  };

  cache::Store* const store = options_.cache.get();

  // ---- Stage 1: translation ---------------------------------------------------
  poll_cancel("translation");
  util::Stopwatch stage1;
  result.translation = translator_.translate(requirements);

  // Time abstraction: harvest Theta, optimize, re-translate with the mapper.
  const auto thetas = result.translation.thetas();
  if (options_.time_abstraction && !thetas.empty()) {
    timeabs::Request request;
    request.thetas = thetas;
    request.error_budget = options_.error_budget;
    std::optional<timeabs::Abstraction> abstraction;
    // The cache key folds the encoder only for the SMT backend (as an
    // offset past the backend enum), so enumeration-backed keys -- and the
    // pinned snapshot digests built on them -- are unchanged. Distinct
    // keys per encoder keep the cross-encoder smoke honest: each lane
    // computes its own abstraction instead of reusing the other's entry.
    int key_backend = static_cast<int>(options_.timeabs_backend);
    if (options_.timeabs_backend == timeabs::Backend::kSmt &&
        options_.smt_encoder == timeabs::SmtEncoder::kTseitin) {
      key_backend += 2;
    }
    if (store != nullptr) {
      const util::Digest key = cache::abstraction_key(request, key_backend);
      abstraction = store->find_abstraction(key);
      if (!abstraction.has_value()) {
        abstraction = timeabs::optimize(request, options_.timeabs_backend,
                                        options_.smt_encoder);
        if (abstraction.has_value()) store->put_abstraction(key, *abstraction);
      }
    } else {
      abstraction = timeabs::optimize(request, options_.timeabs_backend,
                                      options_.smt_encoder);
    }
    speccc_check(abstraction.has_value(), "abstraction always has d=1 fallback");
    result.abstraction = abstraction;

    std::map<unsigned, unsigned> remap;
    for (std::size_t i = 0; i < thetas.size(); ++i) {
      remap[thetas[i]] = abstraction->reduced[i];
    }
    const translate::TickMapper mapper = [remap](unsigned ticks) -> unsigned {
      const auto it = remap.find(ticks);
      return it == remap.end() ? ticks : it->second;
    };
    result.translation = translator_.translate(requirements, mapper);
  }

  const std::vector<ltl::Formula> formulas = result.translation.formulas();
  result.partition = partition::unify(formulas, options_.partition_overrides);

  // Per-requirement satisfiability screening: an unsatisfiable requirement
  // makes the whole specification unimplementable regardless of the
  // partition, so it is reported as early diagnostics.
  if (options_.satisfiability_check) {
    for (const auto& req : result.translation.requirements) {
      if (ltl::max_next_chain(req.formula) > options_.satisfiability_chain_cap) {
        continue;
      }
      bool satisfiable;
      if (store != nullptr) {
        const util::Digest key = cache::satisfiability_key(req.formula);
        if (const auto hit = store->find_satisfiable(key)) {
          satisfiable = *hit;
        } else {
          satisfiable = automata::satisfiable(req.formula);
          store->put_satisfiable(key, satisfiable);
        }
      } else {
        satisfiable = automata::satisfiable(req.formula);
      }
      if (!satisfiable) {
        result.unsatisfiable_requirements.push_back(req.id);
      }
    }
  }
  result.translation_seconds = stage1.seconds();

  // ---- Stage 2: realizability -------------------------------------------------
  poll_cancel("synthesis");
  synth::IoSignature signature;
  signature.inputs.assign(result.partition.inputs.begin(),
                          result.partition.inputs.end());
  signature.outputs.assign(result.partition.outputs.begin(),
                           result.partition.outputs.end());

  // Effective substrate spec: the per-run override beats the configured
  // spec; an auto spec with the deprecated engine enum set maps through the
  // from_engine shim so old callers keep their engine choice.
  SubstrateSpec effective =
      substrate_override != nullptr ? *substrate_override : options_.substrate;
  if (effective.is_auto() && options_.synthesis.engine != synth::Engine::kAuto) {
    effective = SubstrateSpec::from_engine(options_.synthesis.engine);
  }

  // Stage-2 dispatch. Auto takes synth::synthesize exactly as before (and
  // the pre-substrate cache key, so warmed stores stay valid); solo and
  // race go through the registry. Any spec yields the same canonical
  // verdict -- the substrates agree (core/substrate.hpp), and a race
  // tie-breaks deterministically -- so only timings and diagnostics differ.
  const auto check_realizability = [&]() -> synth::SynthesisResult {
    if (effective.is_auto()) {
      return synth::synthesize(formulas, signature, options_.synthesis);
    }
    if (effective.mode == SubstrateSpec::Mode::kSolo) {
      const Substrate* substrate =
          SubstrateRegistry::global().find(effective.substrates.front());
      speccc_check(substrate != nullptr, "spec names a registered substrate");
      return substrate->check(formulas, signature, options_.synthesis,
                              options_.cancelled);
    }
    PortfolioStats stats;
    synth::SynthesisResult raced =
        PortfolioRunner(SubstrateRegistry::global(), effective)
            .run(formulas, signature, options_.synthesis, options_.cancelled,
                 &stats);
    result.portfolio = std::move(stats);
    return raced;
  };

  util::Stopwatch stage2;
  if (store != nullptr) {
    // Verdict and engine statistics are pure functions of the key; the
    // result's embedded `seconds` is the original computation's timing (the
    // caller-visible stage clock below is always fresh). Non-auto specs
    // fold the spec string into the key: a tableau abstention and a raced
    // verdict are different computations than auto's.
    const util::Digest key =
        effective.is_auto()
            ? cache::synthesis_key(formulas, signature, options_.synthesis)
            : cache::synthesis_key(formulas, signature, options_.synthesis,
                                   effective.to_string());
    if (auto hit = store->find_synthesis(key)) {
      result.synthesis = *std::move(hit);
    } else {
      result.synthesis = check_realizability();
      store->put_synthesis(key, result.synthesis);
    }
  } else {
    result.synthesis = check_realizability();
  }
  result.synthesis_seconds = stage2.seconds();
  result.consistent =
      result.synthesis.verdict == synth::Realizability::kRealizable;

  // ---- Stage 3: refinement loop -------------------------------------------------
  if (!result.consistent && options_.refine_on_failure) {
    poll_cancel("refinement");
    util::Stopwatch stage3;
    if (store != nullptr) {
      const util::Digest key = cache::refinement_key(
          formulas, signature, options_.synthesis, options_.localization);
      if (auto hit = store->find_refinement(key)) {
        result.refinement = *std::move(hit);
      } else {
        result.refinement = refine::refine(formulas, result.partition,
                                           options_.synthesis,
                                           options_.localization);
        store->put_refinement(key, *result.refinement);
      }
    } else {
      result.refinement = refine::refine(
          formulas, result.partition, options_.synthesis, options_.localization);
    }
    result.refinement_seconds = stage3.seconds();
    if (result.refinement->consistent) {
      result.consistent = true;
      result.partition = result.refinement->partition;
    }
  }
  return result;
}

}  // namespace speccc::core
