#include "core/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace speccc::core {

TableRow to_row(const std::string& group, const std::string& number,
                const PipelineResult& result, double paper_seconds) {
  TableRow row;
  row.group = group;
  row.number = number;
  row.name = result.name;
  row.formulas = result.num_formulas();
  row.inputs = result.num_inputs();
  row.outputs = result.num_outputs();
  row.seconds = result.synthesis_seconds + result.refinement_seconds;
  row.paper_seconds = paper_seconds;
  row.consistent = result.consistent;
  row.refined = result.refinement.has_value() &&
                result.refinement->consistent &&
                result.refinement->adjustment.has_value();
  return row;
}

void print_table(std::ostream& os, const std::vector<TableRow>& rows) {
  os << std::left << std::setw(7) << "Group" << std::setw(7) << "No."
     << std::setw(34) << "Specification" << std::right << std::setw(9)
     << "formulas" << std::setw(5) << "in" << std::setw(5) << "out"
     << std::setw(12) << "time(s)" << std::setw(12) << "paper(s)"
     << "  verdict\n";
  os << std::string(100, '-') << "\n";
  for (const TableRow& r : rows) {
    os << std::left << std::setw(7) << r.group << std::setw(7) << r.number
       << std::setw(34) << r.name << std::right << std::setw(9) << r.formulas
       << std::setw(5) << r.inputs << std::setw(5) << r.outputs << std::setw(12)
       << std::fixed << std::setprecision(4) << r.seconds << std::setw(12)
       << std::setprecision(0) << r.paper_seconds << "  "
       << (r.consistent ? (r.refined ? "consistent (after repartition)"
                                     : "consistent")
                        : "INCONSISTENT")
       << "\n";
  }
}

std::string describe(const PipelineResult& result) {
  std::ostringstream os;
  os << "specification: " << result.name << "\n";
  os << "  requirements: " << result.num_formulas() << "\n";
  os << "  propositions: " << result.translation.propositions.size() << " ("
     << result.num_inputs() << " inputs, " << result.num_outputs()
     << " outputs)\n";
  if (result.abstraction.has_value()) {
    os << "  time abstraction: d = " << result.abstraction->divisor
       << ", sum theta' = " << result.abstraction->reduced_sum
       << ", sum |Delta| = " << result.abstraction->error_sum << "\n";
  }
  if (!result.unsatisfiable_requirements.empty()) {
    os << "  UNSATISFIABLE requirements:";
    for (const auto& id : result.unsatisfiable_requirements) os << " " << id;
    os << "\n";
  }
  os << "  semantic reasoning: " << result.translation.reasoning.pairs.size()
     << " antonym pairs\n";
  os << "  stage 1 (translation): " << std::fixed << std::setprecision(4)
     << result.translation_seconds << " s\n";
  os << "  stage 2 (synthesis):   " << result.synthesis_seconds
     << " s, substrate "
     << (!result.synthesis.substrate_used.empty()
             ? result.synthesis.substrate_used
             : (result.synthesis.engine_used == synth::Engine::kSymbolic
                    ? "symbolic"
                    : "bounded"))
     << "\n";
  if (result.portfolio.has_value() && !result.portfolio->winner.empty()) {
    os << "    portfolio race won by " << result.portfolio->winner << " ("
       << result.portfolio->runs.size() << " racers)\n";
  }
  if (result.refinement.has_value()) {
    os << "  stage 3 (refinement):  " << result.refinement_seconds << " s, "
       << result.refinement->checks << " realizability checks\n";
    if (!result.refinement->localization.core.empty()) {
      os << "    inconsistent core:";
      for (std::size_t i : result.refinement->localization.core) {
        os << " " << result.translation.requirements[i].id;
      }
      os << "\n";
    }
    if (result.refinement->adjustment.has_value()) {
      os << "    repartitioned: " << result.refinement->adjustment->variable
         << " -> " << (result.refinement->adjustment->now_input ? "input" : "output")
         << "\n";
    }
  }
  os << "  verdict: " << (result.consistent ? "consistent" : "INCONSISTENT")
     << "\n";
  return os.str();
}

}  // namespace speccc::core
