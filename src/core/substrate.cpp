#include "core/substrate.hpp"

#include <algorithm>

#include "automata/emptiness.hpp"
#include "automata/gpvw.hpp"
#include "util/diagnostics.hpp"

namespace speccc::core {

namespace {

/// Node cap of the tableau substrate's NBW construction: generous for the
/// translator's pattern fragment (Table I conjunctions stay in the
/// hundreds), small enough that a pathological Next-chain blowup abstains
/// in bounded time instead of stalling a race.
constexpr std::size_t kTableauMaxNodes = 20'000;

[[nodiscard]] std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ',';
    out += parts[i];
  }
  return out;
}

/// Satisfiability screening as a substrate: an unsatisfiable conjunction
/// has no implementation under ANY partition, so emptiness of its NBW is a
/// sound kUnrealizable; a satisfiable (or over-cap) conjunction proves
/// nothing about realizability, so the tableau abstains with kUnknown. It
/// never answers kRealizable -- in a race it can only win inconsistent
/// specs, which is exactly where it is fast.
class TableauSubstrate final : public Substrate {
 public:
  [[nodiscard]] std::string_view name() const override { return "tableau"; }

  [[nodiscard]] synth::SynthesisResult check(
      const std::vector<ltl::Formula>& formulas,
      const synth::IoSignature& /*signature*/,
      const synth::SynthesisOptions& /*options*/,
      const CancelFn& cancelled) const override {
    if (formulas.empty()) {
      throw util::InvalidInputError(
          "cannot synthesize from an empty specification");
    }
    util::Stopwatch timer;
    synth::SynthesisResult result;
    result.engine_used = synth::Engine::kAuto;  // neither synthesis engine
    result.substrate_used = "tableau";
    const auto nbw = automata::ltl_to_nbw_bounded(ltl::land(formulas),
                                                  kTableauMaxNodes, cancelled);
    if (nbw.has_value()) {
      result.ucw_states = nbw->num_states();
      result.verdict = automata::find_accepting_lasso(*nbw).has_value()
                           ? synth::Realizability::kUnknown
                           : synth::Realizability::kUnrealizable;
    }
    result.seconds = timer.seconds();
    return result;
  }
};

/// The explicit bounded-synthesis engine behind the Substrate interface,
/// with the cancel predicate wired into the UCW construction, the arena
/// frontier, and the k-escalation loop.
class BoundedSubstrate final : public Substrate {
 public:
  [[nodiscard]] std::string_view name() const override { return "bounded"; }

  [[nodiscard]] synth::SynthesisResult check(
      const std::vector<ltl::Formula>& formulas,
      const synth::IoSignature& signature,
      const synth::SynthesisOptions& options,
      const CancelFn& cancelled) const override {
    if (formulas.empty()) {
      throw util::InvalidInputError(
          "cannot synthesize from an empty specification");
    }
    util::Stopwatch timer;
    synth::BoundedOptions bounded = options.bounded;
    bounded.cancelled = cancelled;
    const auto outcome =
        synth::bounded_synthesize(ltl::land(formulas), signature, bounded);
    synth::SynthesisResult result;
    result.verdict = outcome.verdict;
    result.engine_used = synth::Engine::kBounded;
    result.substrate_used = "bounded";
    result.ucw_states = outcome.ucw_states;
    result.game_positions = outcome.game_positions;
    result.iterations = outcome.k_used;
    result.controller = outcome.controller;
    result.seconds = timer.seconds();
    return result;
  }
};

/// The symbolic monitor-composition engine behind the Substrate interface.
/// Exact within its pattern fragment; outside it the substrate is
/// inapplicable and throws (a race treats that as one racer erroring, not
/// a verdict).
class SymbolicSubstrate final : public Substrate {
 public:
  [[nodiscard]] std::string_view name() const override { return "symbolic"; }

  [[nodiscard]] synth::SynthesisResult check(
      const std::vector<ltl::Formula>& formulas,
      const synth::IoSignature& signature,
      const synth::SynthesisOptions& options,
      const CancelFn& cancelled) const override {
    if (formulas.empty()) {
      throw util::InvalidInputError(
          "cannot synthesize from an empty specification");
    }
    util::Stopwatch timer;
    synth::SymbolicOptions symbolic = options.symbolic;
    symbolic.cancelled = cancelled;
    const auto outcome =
        synth::symbolic_synthesize(formulas, signature, symbolic);
    if (!outcome.has_value()) {
      throw util::InvalidInputError(
          "specification is outside the symbolic engine's pattern fragment "
          "or mentions propositions missing from the signature");
    }
    synth::SynthesisResult result;
    result.verdict = outcome->verdict;
    result.engine_used = synth::Engine::kSymbolic;
    result.substrate_used = "symbolic";
    result.state_bits = outcome->state_bits;
    result.peak_bdd_nodes = outcome->peak_bdd_nodes;
    result.bdd_stats = outcome->bdd_stats;
    result.iterations = outcome->fixpoint_iterations;
    result.controller = outcome->controller;
    result.seconds = timer.seconds();
    return result;
  }
};

}  // namespace

const std::vector<std::string>& builtin_substrate_names() {
  static const std::vector<std::string> names = {"tableau", "bounded",
                                                 "symbolic"};
  return names;
}

SubstrateSpec SubstrateSpec::parse(std::string_view text) {
  const auto known = [](std::string_view name) {
    const auto& builtins = builtin_substrate_names();
    return std::find(builtins.begin(), builtins.end(), name) != builtins.end();
  };

  SubstrateSpec spec;
  if (text == "auto") return spec;

  constexpr std::string_view kRacePrefix = "race:";
  if (text.substr(0, kRacePrefix.size()) == kRacePrefix) {
    spec.mode = Mode::kRace;
    std::string_view rest = text.substr(kRacePrefix.size());
    while (true) {
      const std::size_t comma = rest.find(',');
      const std::string_view token = rest.substr(0, comma);
      if (token.empty()) {
        throw util::InvalidInputError(
            "substrate spec \"" + std::string(text) +
            "\": empty racer name (expected race:a,b,...)");
      }
      if (!known(token)) {
        throw util::InvalidInputError(
            "substrate spec \"" + std::string(text) + "\": unknown substrate \"" +
            std::string(token) + "\" (known: " +
            join(builtin_substrate_names()) + ")");
      }
      if (std::find(spec.substrates.begin(), spec.substrates.end(), token) !=
          spec.substrates.end()) {
        throw util::InvalidInputError("substrate spec \"" + std::string(text) +
                                      "\": duplicate racer \"" +
                                      std::string(token) + "\"");
      }
      spec.substrates.emplace_back(token);
      if (comma == std::string_view::npos) break;
      rest = rest.substr(comma + 1);
    }
    if (spec.substrates.size() < 2) {
      throw util::InvalidInputError(
          "substrate spec \"" + std::string(text) +
          "\": a race needs at least two substrates (use the name alone "
          "for a solo run)");
    }
    return spec;
  }

  if (!known(text)) {
    throw util::InvalidInputError(
        "substrate spec \"" + std::string(text) +
        "\": expected auto, a substrate name (" +
        join(builtin_substrate_names()) + "), or race:a,b,...");
  }
  spec.mode = Mode::kSolo;
  spec.substrates.emplace_back(text);
  return spec;
}

SubstrateSpec SubstrateSpec::from_engine(synth::Engine engine) {
  SubstrateSpec spec;
  switch (engine) {
    case synth::Engine::kAuto:
      return spec;
    case synth::Engine::kSymbolic:
      spec.mode = Mode::kSolo;
      spec.substrates = {"symbolic"};
      return spec;
    case synth::Engine::kBounded:
      spec.mode = Mode::kSolo;
      spec.substrates = {"bounded"};
      return spec;
  }
  return spec;
}

std::string SubstrateSpec::to_string() const {
  switch (mode) {
    case Mode::kAuto:
      return "auto";
    case Mode::kSolo:
      speccc_check(substrates.size() == 1, "solo spec has one substrate");
      return substrates.front();
    case Mode::kRace:
      return "race:" + join(substrates);
  }
  return "auto";
}

void SubstrateRegistry::add(std::unique_ptr<Substrate> substrate) {
  speccc_check(substrate != nullptr, "cannot register a null substrate");
  if (find(substrate->name()) != nullptr) {
    throw util::InvalidInputError("substrate \"" +
                                  std::string(substrate->name()) +
                                  "\" is already registered");
  }
  substrates_.push_back(std::move(substrate));
}

const Substrate* SubstrateRegistry::find(std::string_view name) const {
  for (const auto& substrate : substrates_) {
    if (substrate->name() == name) return substrate.get();
  }
  return nullptr;
}

std::vector<const Substrate*> SubstrateRegistry::resolve(
    const SubstrateSpec& spec) const {
  if (spec.is_auto()) {
    throw util::InvalidInputError(
        "an auto substrate spec does not resolve to concrete substrates");
  }
  std::vector<const Substrate*> out;
  out.reserve(spec.substrates.size());
  for (const std::string& name : spec.substrates) {
    const Substrate* substrate = find(name);
    if (substrate == nullptr) {
      throw util::InvalidInputError("substrate \"" + name +
                                    "\" is not registered");
    }
    out.push_back(substrate);
  }
  return out;
}

std::vector<std::string> SubstrateRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(substrates_.size());
  for (const auto& substrate : substrates_) {
    out.emplace_back(substrate->name());
  }
  return out;
}

const SubstrateRegistry& SubstrateRegistry::global() {
  static const SubstrateRegistry* registry = [] {
    auto* r = new SubstrateRegistry();
    r->add(std::make_unique<TableauSubstrate>());
    r->add(std::make_unique<BoundedSubstrate>());
    r->add(std::make_unique<SymbolicSubstrate>());
    return r;
  }();
  return *registry;
}

}  // namespace speccc::core
