// Reporting: Table I-style rows and human-readable consistency reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace speccc::core {

/// One reproduced Table I row.
struct TableRow {
  std::string group;   // CARA / TELE / Robot
  std::string number;  // "2.1.1"
  std::string name;
  std::size_t formulas = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  double seconds = 0.0;        // measured realizability-check time
  double paper_seconds = 0.0;  // the published number
  bool consistent = false;
  bool refined = false;  // consistency restored by partition adjustment
};

[[nodiscard]] TableRow to_row(const std::string& group, const std::string& number,
                              const PipelineResult& result, double paper_seconds);

/// Print rows in the paper's Table I layout plus measured columns.
void print_table(std::ostream& os, const std::vector<TableRow>& rows);

/// Multi-line report of one pipeline run: stage timings, partition,
/// abstraction, verdict, refinement trace.
[[nodiscard]] std::string describe(const PipelineResult& result);

}  // namespace speccc::core
