// First-verdict-wins substrate racing (ROADMAP item 4).
//
// PortfolioRunner races the substrates of a kRace SubstrateSpec on one
// thread each (racer 0 runs inline on the caller's thread). The first
// racer to reach a *definite* verdict (kRealizable/kUnrealizable) wins:
// it flips the shared race flag, the losers observe it through their
// CancelFn at the next engine poll point and unwind with CancelledError,
// and every racer thread is joined before run() returns -- no thread or
// budget outlives the call.
//
// Determinism: the difftest oracle contract (definite verdicts never
// disagree across substrates; kUnknown never disagrees with anything)
// makes the winning verdict independent of race timing. When nobody is
// definite, the tie-break is spec order, not arrival order: the
// first-listed racer that completed with kUnknown supplies the result, so
// canonical output stays byte-identical across machines and runs. Which
// racer won, and each racer's wall time, are timing-dependent and
// therefore surface only as non-canonical diagnostics (PortfolioStats).
//
// Threading rule: racers share nothing but the race flag, the external
// cancel predicate, and (one level up, via the pipeline's memoization)
// the thread-safe cache::Store. Each check() builds its own engines.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/substrate.hpp"

namespace speccc::core {

/// One racer's outcome, for the non-canonical report fields.
struct SubstrateRunStats {
  std::string name;
  /// Verdict the racer reached; kUnknown for cancelled/errored racers.
  synth::Realizability verdict = synth::Realizability::kUnknown;
  double wall_seconds = 0.0;
  bool won = false;
  /// Unwound with CancelledError after the winner flipped the race flag
  /// (or the external cancel fired).
  bool cancelled = false;
  /// Error text when the racer threw a non-cancellation SpecError (e.g.
  /// symbolic outside its fragment); empty otherwise.
  std::string error;
};

struct PortfolioStats {
  std::string winner;          // empty when no racer completed
  double wall_seconds = 0.0;   // whole-race wall time
  std::vector<SubstrateRunStats> runs;  // spec order
};

/// Race the substrates of `spec` (mode kRace, or kSolo as a degenerate
/// one-lane race) resolved against `registry`.
class PortfolioRunner {
 public:
  PortfolioRunner(const SubstrateRegistry& registry, SubstrateSpec spec);

  /// Race substrates on the conjunction. Returns the winner's result
  /// (substrate name in SynthesisResult::substrate_used) and fills
  /// `stats` (may be null) with per-racer diagnostics.
  ///
  /// No definite verdict: if the external cancel fired, throws
  /// util::CancelledError (preserving the solo kCancelled/kBudget
  /// mapping); otherwise returns the first-listed racer that completed
  /// with kUnknown, and if every racer errored, rethrows the
  /// first-listed racer's error.
  [[nodiscard]] synth::SynthesisResult run(
      const std::vector<ltl::Formula>& formulas,
      const synth::IoSignature& signature,
      const synth::SynthesisOptions& options, const CancelFn& external,
      PortfolioStats* stats = nullptr) const;

 private:
  const SubstrateRegistry& registry_;
  SubstrateSpec spec_;
};

}  // namespace speccc::core
