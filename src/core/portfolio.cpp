#include "core/portfolio.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <utility>

#include "util/diagnostics.hpp"

namespace speccc::core {

namespace {

[[nodiscard]] bool definite(synth::Realizability verdict) {
  return verdict == synth::Realizability::kRealizable ||
         verdict == synth::Realizability::kUnrealizable;
}

/// Per-racer slot, written only by its own thread until the join barrier.
struct RacerSlot {
  std::optional<synth::SynthesisResult> result;
  std::exception_ptr error;
  double wall_seconds = 0.0;
  bool cancelled = false;
};

}  // namespace

PortfolioRunner::PortfolioRunner(const SubstrateRegistry& registry,
                                 SubstrateSpec spec)
    : registry_(registry), spec_(std::move(spec)) {
  speccc_check(!spec_.is_auto(),
               "PortfolioRunner needs a solo or race substrate spec");
}

synth::SynthesisResult PortfolioRunner::run(
    const std::vector<ltl::Formula>& formulas,
    const synth::IoSignature& signature, const synth::SynthesisOptions& options,
    const CancelFn& external, PortfolioStats* stats) const {
  const std::vector<const Substrate*> racers = registry_.resolve(spec_);
  speccc_check(!racers.empty(), "a substrate spec resolves to >= 1 racers");

  util::Stopwatch race_timer;
  std::atomic<bool> race_over{false};
  std::atomic<int> winner{-1};
  std::vector<RacerSlot> slots(racers.size());

  const auto drive = [&](std::size_t index) {
    RacerSlot& slot = slots[index];
    // Losers see the winner's flag (or the external cancel) at their next
    // engine poll point and unwind with CancelledError.
    const CancelFn racer_cancel = [&race_over, &external]() {
      return race_over.load(std::memory_order_relaxed) ||
             (external && external());
    };
    util::Stopwatch timer;
    try {
      synth::SynthesisResult result =
          racers[index]->check(formulas, signature, options, racer_cancel);
      slot.wall_seconds = timer.seconds();
      if (definite(result.verdict)) {
        int expected = -1;
        if (winner.compare_exchange_strong(expected,
                                           static_cast<int>(index))) {
          race_over.store(true, std::memory_order_relaxed);
        }
      }
      slot.result = std::move(result);
    } catch (const util::CancelledError&) {
      slot.wall_seconds = timer.seconds();
      slot.cancelled = true;
    } catch (...) {
      slot.wall_seconds = timer.seconds();
      slot.error = std::current_exception();
    }
  };

  // Racer 0 runs inline so a one-lane "race" costs no thread, and so the
  // caller's thread does useful work instead of blocking on a join.
  std::vector<std::thread> threads;
  threads.reserve(racers.size() > 0 ? racers.size() - 1 : 0);
  for (std::size_t i = 1; i < racers.size(); ++i) {
    threads.emplace_back(drive, i);
  }
  drive(0);
  for (std::thread& thread : threads) thread.join();

  const int winner_index = winner.load(std::memory_order_relaxed);

  if (stats != nullptr) {
    stats->winner.clear();
    stats->wall_seconds = race_timer.seconds();
    stats->runs.clear();
    stats->runs.reserve(racers.size());
    for (std::size_t i = 0; i < racers.size(); ++i) {
      SubstrateRunStats run_stats;
      run_stats.name = std::string(racers[i]->name());
      run_stats.wall_seconds = slots[i].wall_seconds;
      run_stats.cancelled = slots[i].cancelled;
      run_stats.won = static_cast<int>(i) == winner_index;
      if (slots[i].result.has_value()) {
        run_stats.verdict = slots[i].result->verdict;
      }
      if (slots[i].error) {
        try {
          std::rethrow_exception(slots[i].error);
        } catch (const std::exception& e) {
          run_stats.error = e.what();
        } catch (...) {
          run_stats.error = "unknown error";
        }
      }
      stats->runs.push_back(std::move(run_stats));
      if (stats->runs.back().won) stats->winner = stats->runs.back().name;
    }
  }

  // A definite verdict is THE verdict (the oracle contract): return it
  // even if the external cancel also fired -- solo semantics likewise let
  // a completed stage stand, and the pipeline's next stage-boundary poll
  // still honors the cancellation.
  if (winner_index >= 0) {
    synth::SynthesisResult result =
        std::move(*slots[static_cast<std::size_t>(winner_index)].result);
    result.substrate_used = std::string(racers[winner_index]->name());
    return result;
  }

  // No winner. If the external cancel fired, every racer was torn down by
  // it (race_over is only set by a winner), so surface the cancellation.
  if (external && external()) {
    throw util::CancelledError("portfolio race cancelled before any verdict");
  }

  // Everyone abstained or errored: deterministic tie-break in spec order.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].result.has_value()) {
      synth::SynthesisResult result = std::move(*slots[i].result);
      result.substrate_used = std::string(racers[i]->name());
      return result;
    }
  }
  for (const RacerSlot& slot : slots) {
    if (slot.error) std::rethrow_exception(slot.error);
  }
  // All racers reported CancelledError with no winner and no external
  // cancel: a substrate polled a stale flag. Treat as cancellation.
  throw util::CancelledError("portfolio race ended with no result");
}

}  // namespace speccc::core
