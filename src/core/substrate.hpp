// The unified decision-substrate interface (ROADMAP item 4).
//
// The paper decides consistency through three interchangeable substrates --
// the GPVW tableau (satisfiability screening: an unsatisfiable conjunction
// is unrealizable for every partition), bounded synthesis (full LTL on
// small signatures, k-escalation), and symbolic synthesis (exact
// generalized-Buechi games over pattern monitors). The difftest oracle
// proves they agree: opposite *definite* verdicts are a substrate bug,
// kUnknown never disagrees. That agreement contract is what makes
// portfolio racing (core/portfolio.hpp) deterministic: whichever substrate
// answers first, a definite verdict is THE verdict.
//
// A Substrate is stateless and const: one instance may be checked from
// many racer threads concurrently (each check builds its own engines --
// per-call bdd::Manager, per-call game arenas; the only shared mutable
// state underneath is the mutex-protected formula intern arena).
//
// SubstrateSpec is the one user-facing configuration knob, replacing the
// scattered synth::Engine enum plumbing: a parseable string
//   "auto"                        symbolic when applicable, else bounded
//   "tableau" | "bounded" | "symbolic"   exactly one substrate
//   "race:tableau,bounded,symbolic"      first-verdict-wins portfolio
// carried through PipelineOptions, batch::RunLimits (per-request serve
// override), and the --substrate flag of every CLI.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "synth/synthesizer.hpp"

namespace speccc::core {

/// Cooperative cancellation predicate: polled inside substrate engines
/// (tableau expansion, bounded-game frontier, symbolic fixpoint rounds).
/// Returning true makes the engine throw util::CancelledError at its next
/// poll point. A null functor is never cancelled. Must be safe to call
/// concurrently from racer threads (the batch BudgetState and the
/// portfolio race flag both are).
using CancelFn = std::function<bool()>;

/// How the pipeline picks its decision substrate(s). Parse/to_string round
/// trip; from_engine() is the deprecated shim mapping the old synth::Engine
/// enum values so existing callers migrate in one sweep.
struct SubstrateSpec {
  enum class Mode { kAuto, kSolo, kRace };

  Mode mode = Mode::kAuto;
  /// Substrate names: empty for kAuto, exactly one for kSolo, >= 2 unique
  /// names in race order for kRace (race order breaks ties
  /// deterministically when nobody reaches a definite verdict).
  std::vector<std::string> substrates;

  /// Parse "auto", a substrate name, or "race:a,b,...". Throws
  /// util::InvalidInputError naming the offending token on an unknown
  /// substrate, a duplicate racer, or a race with fewer than two entries.
  [[nodiscard]] static SubstrateSpec parse(std::string_view text);

  /// Deprecated shim: the old engine enum as a spec (kAuto -> "auto",
  /// kSymbolic -> "symbolic", kBounded -> "bounded").
  [[nodiscard]] static SubstrateSpec from_engine(synth::Engine engine);

  /// Round trip of parse(): "auto", "<name>", or "race:a,b,...".
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool is_auto() const { return mode == Mode::kAuto; }

  friend bool operator==(const SubstrateSpec& a, const SubstrateSpec& b) {
    return a.mode == b.mode && a.substrates == b.substrates;
  }
  friend bool operator!=(const SubstrateSpec& a, const SubstrateSpec& b) {
    return !(a == b);
  }
};

/// Per-run limits, polled cooperatively at pipeline stage boundaries (and,
/// through CancelFn plumbing, inside substrate engines). Shared by batch
/// workers and the serve layer (batch::RunLimits is an alias).
struct RunLimits {
  /// Wall-clock budget in seconds for this run; 0 means unlimited. The
  /// serve layer derives it from the request deadline.
  double budget_seconds = 0.0;
  /// External cancellation (batch-wide cancel, serve shutdown); null
  /// means never cancelled.
  const std::atomic<bool>* cancel = nullptr;
  /// Per-run substrate override (serve's per-request "substrate" field);
  /// null means the pipeline's configured spec. Not owned; must outlive
  /// the run.
  const SubstrateSpec* substrate = nullptr;
};

/// One decision substrate: name + a pure check. Implementations are
/// stateless; `check` may run concurrently on many threads.
class Substrate {
 public:
  virtual ~Substrate() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Decide realizability of the conjunction of `formulas` under
  /// `signature`. Definite verdicts (kRealizable/kUnrealizable) are exact;
  /// kUnknown is an abstention (caps hit, or the substrate only proves one
  /// direction -- the tableau never proves realizability). Throws
  /// util::CancelledError when `cancelled` fires mid-check and
  /// util::SpecError subclasses on inapplicable inputs (e.g. the symbolic
  /// substrate outside its pattern fragment).
  [[nodiscard]] virtual synth::SynthesisResult check(
      const std::vector<ltl::Formula>& formulas,
      const synth::IoSignature& signature,
      const synth::SynthesisOptions& options,
      const CancelFn& cancelled) const = 0;
};

/// Name -> Substrate lookup. The process-wide global() registry holds the
/// three builtins; tests build local registries with custom substrates
/// (slow, instant, abstaining) to pin the portfolio semantics.
class SubstrateRegistry {
 public:
  SubstrateRegistry() = default;

  /// Register a substrate under its name(). Throws util::InvalidInputError
  /// on a duplicate name.
  void add(std::unique_ptr<Substrate> substrate);

  /// Lookup by name; nullptr when absent.
  [[nodiscard]] const Substrate* find(std::string_view name) const;

  /// Resolve a solo/race spec to substrates in spec order. Throws
  /// util::InvalidInputError on an auto spec or an unregistered name.
  [[nodiscard]] std::vector<const Substrate*> resolve(
      const SubstrateSpec& spec) const;

  /// Registered names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// The builtin registry: tableau, bounded, symbolic.
  [[nodiscard]] static const SubstrateRegistry& global();

 private:
  std::vector<std::unique_ptr<Substrate>> substrates_;
};

/// The builtin substrate names, in the registry's registration order.
/// SubstrateSpec::parse validates against this list.
[[nodiscard]] const std::vector<std::string>& builtin_substrate_names();

}  // namespace speccc::core
