// The SpecCC pipeline (paper Fig. 1): the paper's primary contribution,
// wiring the three stages into the requirement-consistency maintenance loop.
//
//   stage 1: structured English -> LTL (translation + semantic reasoning +
//            time abstraction + input/output partition);
//   stage 2: realizability checking via synthesis;
//   stage 3: heuristic refinement on failure (inconsistency localization and
//            partition adjustment), feeding back into stage 2.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/store.hpp"
#include "core/portfolio.hpp"
#include "partition/partition.hpp"
#include "refine/refine.hpp"
#include "semantics/antonyms.hpp"
#include "synth/synthesizer.hpp"
#include "timeabs/abstraction.hpp"
#include "translate/translator.hpp"

namespace speccc::core {

struct PipelineOptions {
  translate::Options translation;
  /// Section IV-E: rewrite Next chains with the optimal divisor abstraction.
  bool time_abstraction = true;
  std::uint32_t error_budget = 5;  // the paper's B
  timeabs::Backend timeabs_backend = timeabs::Backend::kEnumeration;
  /// CNF encoder when timeabs_backend is kSmt (cut-mapped by default; the
  /// Tseitin lane exists for cross-checking). Canonical output is
  /// byte-identical across encoders -- the abstraction is unique.
  timeabs::SmtEncoder smt_encoder = timeabs::SmtEncoder::kCutMap;
  synth::SynthesisOptions synthesis;
  /// Stage-2 decision substrate(s): "auto" (symbolic when applicable, else
  /// bounded -- exactly the old kAuto behavior), a solo substrate name, or
  /// "race:a,b,..." for first-verdict-wins portfolio racing
  /// (core/substrate.hpp). When this is auto but synthesis.engine is the
  /// deprecated kSymbolic/kBounded enum, the enum maps through
  /// SubstrateSpec::from_engine. Canonical output is byte-identical for
  /// every spec (the substrates agree; see core/portfolio.hpp).
  SubstrateSpec substrate;
  partition::Overrides partition_overrides;
  /// Stage 3: run localization + partition adjustment when unrealizable.
  bool refine_on_failure = true;
  /// Stage-3 localization knobs: MUS method (diag cores vs. the legacy
  /// greedy path) and how many minimal correction sets to enumerate for
  /// genuinely inconsistent specifications.
  refine::LocalizeOptions localization;
  /// Flag individually unsatisfiable requirements (tableau emptiness) before
  /// synthesis. Requirements whose abstracted Next chains still exceed
  /// satisfiability_chain_cap are skipped (the tableau is exponential in
  /// the chain length).
  bool satisfiability_check = true;
  std::size_t satisfiability_chain_cap = 12;
  /// Custom vocabulary; defaults to the builtins (see corpus/loaders.hpp for
  /// file-based extension).
  std::optional<nlp::Lexicon> lexicon;
  std::optional<semantics::AntonymDictionary> dictionary;
  /// Cooperative cancellation: polled at stage boundaries (before
  /// translation, synthesis, and refinement). When it returns true the run
  /// throws util::CancelledError. A stage already in flight runs to
  /// completion -- use the synthesis caps (BoundedOptions) to bound the
  /// stages themselves. Null means never cancelled.
  std::function<bool()> cancelled;
  /// Cross-spec memoization (cache/store.hpp); null disables caching.
  /// The store is thread-safe and content-addressed: share ONE store
  /// across pipelines and batch workers (batch does this automatically
  /// when this option is set). Every cached computation is a pure
  /// function of its key, so results are identical with the cache on or
  /// off — only wall-clock changes.
  std::shared_ptr<cache::Store> cache;
};

struct PipelineResult {
  std::string name;
  translate::TranslationResult translation;
  std::optional<timeabs::Abstraction> abstraction;
  partition::Partition partition;       // final partition (post-refinement)
  synth::SynthesisResult synthesis;     // the initial stage-2 verdict
  /// Per-racer diagnostics when stage 2 actually raced (kRace spec, cache
  /// miss). Non-canonical: which racer wins is timing-dependent.
  std::optional<PortfolioStats> portfolio;
  std::optional<refine::RefinementOutcome> refinement;
  /// Requirements that are unsatisfiable on their own (no implementation of
  /// the whole specification can exist; reported before synthesis).
  std::vector<std::string> unsatisfiable_requirements;
  /// Realizable, possibly after refinement (the paper's "consistent").
  bool consistent = false;
  double translation_seconds = 0.0;  // stage 1 wall clock
  double synthesis_seconds = 0.0;    // stage 2 wall clock (Table I column)
  double refinement_seconds = 0.0;   // stage 3 wall clock

  [[nodiscard]] std::size_t num_formulas() const {
    return translation.requirements.size();
  }
  [[nodiscard]] std::size_t num_inputs() const { return partition.inputs.size(); }
  [[nodiscard]] std::size_t num_outputs() const { return partition.outputs.size(); }
};

class Pipeline {
 public:
  Pipeline() : Pipeline(PipelineOptions{}) {}
  explicit Pipeline(PipelineOptions options);

  // Not copyable/movable: the translator member refers to the pipeline's
  // own lexicon/dictionary (prvalue returns still work via elision).
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Run the full loop on a named specification. `substrate_override`
  /// (serve's per-request "substrate" field) replaces options().substrate
  /// for this run only; not owned, may be null.
  [[nodiscard]] PipelineResult run(
      const std::string& name,
      const std::vector<translate::RequirementText>& requirements,
      const SubstrateSpec* substrate_override = nullptr) const;

  [[nodiscard]] const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
  nlp::Lexicon lexicon_;
  semantics::AntonymDictionary dictionary_;
  // Built once: with a cache attached, construction also fingerprints the
  // lexicon (the level-1 key component), which must not recur per run.
  translate::Translator translator_;
};

}  // namespace speccc::core
