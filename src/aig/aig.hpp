// Structural-hashed And-Inverter Graph with complement edges.
//
// The circuit representation beneath the bit-blasting layer (smt/bitblast):
// every gate the Builder constructs lands here as an AND node over two
// complementable edges, so the CNF the solver eventually sees can be chosen
// *after* the whole circuit exists -- the cut-based mapper in aig/cnf.hpp
// covers the DAG with k-input super-gates instead of emitting per-gate
// Tseitin triples the instant a gate is built.
//
// The layout follows the packed-arena craft of src/bdd (and ABC/ZZ's Gig):
//
//   * Complement edges. An edge is `(node_index << 1) | complement`, so
//     negation is O(1) and a function and its negation share one node.
//     Node 0 is the constant-true node: edge 0 = true, edge 1 = false.
//   * Flat packed node arena. Nodes are 8-byte POD entries (two fanin edge
//     codes) in one vector; primary inputs are marked by a sentinel fanin
//     and carry their input ordinal in the other slot. Nodes are created
//     in topological order by construction (fanins always precede users),
//     which every downstream traversal exploits.
//   * Structural hashing. `mk_and` normalizes operand order and folds
//     constants and trivial identities (a&a, a&!a, a&1, a&0) before
//     consulting an open-addressing unique table, so equivalent gates
//     share one node and dead logic never reaches the mapper.
//
// An Aig is single-threaded by design (one per Builder / worker, mirroring
// the bdd::Manager threading rule).
#pragma once

#include <cstdint>
#include <vector>

#include "util/diagnostics.hpp"

namespace speccc::aig {

/// A complementable reference to an AIG node. Cheap value type; valid for
/// the lifetime of the Aig that created it. Default-constructed edges are
/// the constant true (edge code 0).
class Edge {
 public:
  constexpr Edge() = default;

  [[nodiscard]] constexpr std::uint32_t code() const { return code_; }
  [[nodiscard]] constexpr std::uint32_t node() const { return code_ >> 1; }
  [[nodiscard]] constexpr bool complemented() const { return (code_ & 1u) != 0; }
  [[nodiscard]] constexpr Edge negated() const { return Edge(code_ ^ 1u); }
  [[nodiscard]] constexpr bool is_constant() const { return node() == 0; }

  static constexpr Edge from_code(std::uint32_t code) { return Edge(code); }

  friend constexpr bool operator==(Edge a, Edge b) { return a.code_ == b.code_; }
  friend constexpr bool operator!=(Edge a, Edge b) { return a.code_ != b.code_; }

 private:
  explicit constexpr Edge(std::uint32_t code) : code_(code) {}
  std::uint32_t code_ = 0;
};

class Aig {
 public:
  Aig();
  Aig(const Aig&) = delete;
  Aig& operator=(const Aig&) = delete;

  [[nodiscard]] static constexpr Edge edge_true() { return Edge::from_code(0); }
  [[nodiscard]] static constexpr Edge edge_false() { return Edge::from_code(1); }
  [[nodiscard]] static constexpr Edge constant(bool value) {
    return value ? edge_true() : edge_false();
  }

  /// Create a fresh primary input; returns its (regular) edge. Inputs are
  /// numbered 0.. in creation order (see input_index).
  Edge add_input();

  /// Structural-hashed AND with constant propagation: a&1=a, a&0=0, a&a=a,
  /// a&!a=0, operands ordered canonically before the unique-table lookup.
  Edge mk_and(Edge a, Edge b);
  Edge mk_or(Edge a, Edge b) {
    return mk_and(a.negated(), b.negated()).negated();
  }
  Edge mk_xor(Edge a, Edge b) {
    return mk_or(mk_and(a, b.negated()), mk_and(a.negated(), b));
  }
  Edge mk_mux(Edge sel, Edge then_edge, Edge else_edge) {
    if (then_edge == else_edge) return then_edge;
    return mk_or(mk_and(sel, then_edge), mk_and(sel.negated(), else_edge));
  }

  // ---- Node inspection (for the mapper and for simulation) -----------------
  /// Total nodes in the arena (constant + inputs + ANDs).
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_inputs() const { return num_inputs_; }
  [[nodiscard]] std::size_t num_ands() const {
    return nodes_.size() - 1 - num_inputs_;
  }

  [[nodiscard]] bool is_constant(std::uint32_t node) const { return node == 0; }
  [[nodiscard]] bool is_input(std::uint32_t node) const {
    return nodes_[node].fanin0 == kInputMark;
  }
  [[nodiscard]] bool is_and(std::uint32_t node) const {
    return node != 0 && nodes_[node].fanin0 != kInputMark;
  }
  /// Ordinal of a primary input node (0-based creation order).
  [[nodiscard]] std::uint32_t input_index(std::uint32_t node) const {
    speccc_check(is_input(node), "input_index on a non-input node");
    return nodes_[node].fanin1;
  }
  [[nodiscard]] Edge fanin0(std::uint32_t node) const {
    speccc_check(is_and(node), "fanin of a non-AND node");
    return Edge::from_code(nodes_[node].fanin0);
  }
  [[nodiscard]] Edge fanin1(std::uint32_t node) const {
    speccc_check(is_and(node), "fanin of a non-AND node");
    return Edge::from_code(nodes_[node].fanin1);
  }

  /// Evaluate every node under a primary-input assignment (indexed by
  /// input ordinal; missing inputs read false). Entry [n] is the value of
  /// node n's regular edge. One linear arena pass -- the replay primitive
  /// the difftest circuit lane uses to validate satisfying assignments.
  [[nodiscard]] std::vector<bool> evaluate_all(
      const std::vector<bool>& inputs) const;
  /// Evaluate a single edge under an input assignment (runs evaluate_all).
  [[nodiscard]] bool evaluate(Edge e, const std::vector<bool>& inputs) const {
    const std::vector<bool> values = evaluate_all(inputs);
    return values[e.node()] != e.complemented();
  }

  /// Unique-table hits (gates answered without creating a node) -- the
  /// structural-sharing win the benches report.
  [[nodiscard]] std::size_t strash_hits() const { return strash_hits_; }

 private:
  static constexpr std::uint32_t kInputMark = 0xFFFFFFFFu;

  /// Packed arena node: two fanin edge codes for ANDs; inputs store
  /// kInputMark in fanin0 and their ordinal in fanin1; node 0 (constant)
  /// stores kInputMark in both.
  struct Node {
    std::uint32_t fanin0;
    std::uint32_t fanin1;
  };

  void grow_unique_table();
  [[nodiscard]] static std::uint64_t hash_pair(std::uint32_t a, std::uint32_t b);

  std::vector<Node> nodes_;
  std::size_t num_inputs_ = 0;
  std::size_t strash_hits_ = 0;

  // Open-addressing unique table over AND node indices (0 = empty slot;
  // the constant node and inputs are never hashed).
  std::vector<std::uint32_t> unique_table_;
  std::size_t unique_mask_ = 0;
  std::size_t unique_used_ = 0;
};

}  // namespace speccc::aig
