// Cut-based CNF generation over the AIG, in the style of ABC/ZZ's CnfMap.
//
// Instead of Tseitin-encoding every AND gate into three clauses and one
// auxiliary variable, the mapper covers the DAG with k-input "super-gates":
//
//   1. Enumerate k-feasible cuts (default k = 4, configurable up to 6)
//      bottom-up, keeping the best few per node, with the cut function
//      tracked as a <= 64-bit truth table.
//   2. Choose a cover by area flow, where a cut's area is its real CNF
//      cost -- the clause count of an irredundant sum-of-products (ISOP,
//      Minato-Morreale) of the cut function and its complement -- divided
//      over the node's fanout.
//   3. Emit one variable and one ISOP clause set per *mapped* node only;
//      interior nodes of a chosen cut get neither.
//
// The mapper is incremental: literal(edge) emits CNF for exactly the
// not-yet-flushed transitive fan-in of that edge, so a bound-search loop
// that keeps adding comparators to the same circuit re-maps only the new
// cone and reuses every variable already handed out. Boundary nodes of
// earlier flushes act as free leaves for later ones.
//
// A Tseitin fallback lane (CnfOptions::Encoder::kTseitin) emits the
// classic per-gate triples through the same incremental interface, so the
// two encodings can be raced, difftested, and dumped side by side.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "sat/solver.hpp"

namespace speccc::aig {

/// Destination for generated CNF: the solver adapter in smt::Builder, or a
/// collecting sink for DIMACS dumps (tools/speccc_cnf).
class ClauseSink {
 public:
  virtual ~ClauseSink() = default;
  /// Allocate a fresh variable; returns its 0-based index.
  virtual int new_var() = 0;
  virtual void add_clause(const sat::Clause& clause) = 0;
};

struct CnfOptions {
  enum class Encoder {
    kCutMap,   ///< cut-based super-gate mapping (the default)
    kTseitin,  ///< per-gate triples (the seed encoder, kept as a lane)
  };
  Encoder encoder = Encoder::kCutMap;
  /// Cut width k (2..6); truth tables are 64-bit so 6 is the hard cap.
  int cut_size = 4;
  /// Cuts kept per node after pruning by area flow.
  int cuts_per_node = 8;
};

struct CnfStats {
  std::size_t vars = 0;          ///< variables the mapper allocated
  std::size_t clauses = 0;       ///< clauses emitted
  std::size_t literals = 0;      ///< total literal occurrences emitted
  std::size_t mapped_gates = 0;  ///< AND nodes that received a variable
  std::size_t covered_gates = 0; ///< AND nodes inside some chosen cut (incl. mapped)
  std::size_t flushes = 0;       ///< incremental cone flushes
};

/// One cube of an irredundant sum-of-products over <= 6 variables: `mask`
/// says which variables appear, `value` their required phase.
struct Cube {
  std::uint8_t mask = 0;
  std::uint8_t value = 0;
};

/// Minato-Morreale ISOP of the incompletely specified function
/// [on, upper]: covers every minterm of `on`, stays inside `upper`
/// (on must be a subset of upper). Truth tables use the low 2^num_vars
/// bits. Appends the cubes to `out` and returns the cover's truth table.
std::uint64_t isop(std::uint64_t on, std::uint64_t upper, int num_vars,
                   std::vector<Cube>& out);

/// Truth-table helpers (low 2^num_vars bits).
[[nodiscard]] std::uint64_t tt_full(int num_vars);
[[nodiscard]] std::uint64_t tt_var(int var, int num_vars);

/// Incremental AIG -> CNF mapper over a ClauseSink.
class CnfMapper {
 public:
  CnfMapper(const Aig& aig, ClauseSink& sink, CnfOptions options = {});

  /// The sat literal equivalent to `e`, emitting CNF for the not-yet-
  /// flushed part of its transitive fan-in first.
  sat::Lit literal(Edge e);

  /// The literal for `e` if its node was already flushed (no emission).
  [[nodiscard]] std::optional<sat::Lit> existing_literal(Edge e) const;

  /// Pre-register a literal for an input or constant edge (the Builder
  /// registers its eagerly created PI variables and its pinned true
  /// literal here, so mapper and builder agree on the variable space).
  void set_literal(Edge e, sat::Lit lit);

  [[nodiscard]] const CnfStats& stats() const { return stats_; }
  [[nodiscard]] const CnfOptions& options() const { return options_; }

 private:
  [[nodiscard]] bool has_literal(std::uint32_t node) const {
    return node < lits_.size() && lits_[node] != kNoLit;
  }
  [[nodiscard]] sat::Lit node_literal(std::uint32_t node) const {
    return sat::Lit::from_code(lits_[node]);
  }
  void record_literal(std::uint32_t node, sat::Lit regular_lit);
  sat::Lit leaf_literal(std::uint32_t node);
  void flush_cone(std::uint32_t root);
  void flush_tseitin(const std::vector<std::uint32_t>& cone);
  void flush_mapped(const std::vector<std::uint32_t>& cone);
  void emit(sat::Clause clause);
  void emit_supergate(sat::Lit out, const std::vector<sat::Lit>& leaf_lits,
                      std::uint64_t tt, int num_vars);
  /// ISOP clause count over both output phases; memoized by truth table
  /// for num_vars <= 4 (the default cut width), where the whole function
  /// space fits a 64 KiB table.
  std::uint32_t cut_cost(std::uint64_t tt, int num_vars);

  const Aig& aig_;
  ClauseSink& sink_;
  CnfOptions options_;
  CnfStats stats_;

  static constexpr int kNoLit = -1;
  std::vector<int> lits_;  // node -> literal code of its regular edge

  // Scratch reused across flushes.
  std::vector<std::uint32_t> cone_;
  std::vector<std::uint32_t> stamp_;   // stamp_[n] == stamp_id_: n in cone
  std::vector<std::uint32_t> slot_;    // cone slot of n when stamped
  std::uint32_t stamp_id_ = 0;
  std::vector<Cube> cubes_;
  std::vector<std::uint8_t> cost_memo_;  // 0xFF = not yet computed
};

}  // namespace speccc::aig
