#include "aig/aig.hpp"

namespace speccc::aig {

Aig::Aig() {
  nodes_.push_back({kInputMark, kInputMark});  // node 0: constant true
  unique_table_.assign(1u << 10, 0);
  unique_mask_ = unique_table_.size() - 1;
}

Edge Aig::add_input() {
  const auto node = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back({kInputMark, static_cast<std::uint32_t>(num_inputs_)});
  ++num_inputs_;
  return Edge::from_code(node << 1);
}

std::uint64_t Aig::hash_pair(std::uint32_t a, std::uint32_t b) {
  std::uint64_t h = (static_cast<std::uint64_t>(a) << 32) | b;
  // splitmix64 finalizer: cheap, well-distributed for the open table.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

void Aig::grow_unique_table() {
  std::vector<std::uint32_t> old = std::move(unique_table_);
  unique_table_.assign(old.size() * 2, 0);
  unique_mask_ = unique_table_.size() - 1;
  for (const std::uint32_t node : old) {
    if (node == 0) continue;
    std::size_t slot =
        hash_pair(nodes_[node].fanin0, nodes_[node].fanin1) & unique_mask_;
    while (unique_table_[slot] != 0) slot = (slot + 1) & unique_mask_;
    unique_table_[slot] = node;
  }
}

Edge Aig::mk_and(Edge a, Edge b) {
  // Constant propagation and trivial identities.
  if (a == edge_true()) return b;
  if (b == edge_true()) return a;
  if (a == edge_false() || b == edge_false()) return edge_false();
  if (a == b) return a;
  if (a == b.negated()) return edge_false();
  // Canonical operand order for structural hashing.
  if (a.code() > b.code()) {
    const Edge t = a;
    a = b;
    b = t;
  }

  std::size_t slot = hash_pair(a.code(), b.code()) & unique_mask_;
  while (unique_table_[slot] != 0) {
    const std::uint32_t node = unique_table_[slot];
    if (nodes_[node].fanin0 == a.code() && nodes_[node].fanin1 == b.code()) {
      ++strash_hits_;
      return Edge::from_code(node << 1);
    }
    slot = (slot + 1) & unique_mask_;
  }

  const auto node = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back({a.code(), b.code()});
  unique_table_[slot] = node;
  if (++unique_used_ * 2 > unique_table_.size()) grow_unique_table();
  return Edge::from_code(node << 1);
}

std::vector<bool> Aig::evaluate_all(const std::vector<bool>& inputs) const {
  std::vector<bool> values(nodes_.size(), false);
  values[0] = true;  // the constant node's regular edge is true
  for (std::uint32_t n = 1; n < nodes_.size(); ++n) {
    const Node& node = nodes_[n];
    if (node.fanin0 == kInputMark) {
      values[n] = node.fanin1 < inputs.size() && inputs[node.fanin1];
      continue;
    }
    const Edge f0 = Edge::from_code(node.fanin0);
    const Edge f1 = Edge::from_code(node.fanin1);
    values[n] = (values[f0.node()] != f0.complemented()) &&
                (values[f1.node()] != f1.complemented());
  }
  return values;
}

}  // namespace speccc::aig
