#include "aig/cnf.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "util/diagnostics.hpp"

namespace speccc::aig {
namespace {

// A candidate cut during enumeration. Plain value type with inline leaf
// storage so the inner merge loop never touches the heap.
struct Cut {
  std::array<std::uint32_t, 6> leaves{};  // sorted ascending; [0, size)
  std::uint64_t tt = 0;                   // function over leaves (low 2^size bits)
  double flow = 0.0;                      // area flow of the cut
  std::uint32_t cost = 0;                 // ISOP clause count, both phases
  std::uint8_t size = 0;

  [[nodiscard]] bool same_leaves(const Cut& other) const {
    if (size != other.size) return false;
    for (unsigned i = 0; i < size; ++i) {
      if (leaves[i] != other.leaves[i]) return false;
    }
    return true;
  }

  [[nodiscard]] std::uint64_t leaves_hash() const {
    std::uint64_t h = size;
    for (unsigned i = 0; i < size; ++i) {
      h = h * 0x9e3779b97f4a7c15ULL + leaves[i] + 1;
      h ^= h >> 29;
    }
    return h;
  }
};

Cut trivial_cut(std::uint32_t node) {
  Cut cut;
  cut.size = 1;
  cut.leaves[0] = node;
  cut.tt = 0b10ULL;  // identity of the single leaf
  return cut;
}

// Cofactor masks: bit m of masks[v] is set iff (m >> v) & 1 == 0.
constexpr std::uint64_t kCofMask[6] = {
    0x5555555555555555ULL, 0x3333333333333333ULL, 0x0F0F0F0F0F0F0F0FULL,
    0x00FF00FF00FF00FFULL, 0x0000FFFF0000FFFFULL, 0x00000000FFFFFFFFULL,
};

std::uint64_t cofactor0(std::uint64_t tt, int var) {
  const std::uint64_t lo = tt & kCofMask[var];
  return lo | (lo << (1u << var));
}

std::uint64_t cofactor1(std::uint64_t tt, int var) {
  const std::uint64_t hi = tt & ~kCofMask[var];
  return hi | (hi >> (1u << var));
}

// All truth tables of one isop() invocation live in the low 2^num_vars
// bits; recursion narrows the set of splittable variables (var_limit)
// instead of shrinking the word, so cofactors (which duplicate across
// both halves of the split variable) stay directly comparable.
std::uint64_t isop_rec(std::uint64_t on, std::uint64_t upper, int num_vars,
                       int var_limit, std::vector<Cube>& out) {
  if (on == 0) return 0;
  const std::uint64_t full = tt_full(num_vars);
  if (upper == full) {
    out.push_back(Cube{});  // tautology within this subspace
    return full;
  }
  // Split on the highest still-splittable variable either bound depends on.
  int var = var_limit - 1;
  while (var >= 0 && cofactor0(on, var) == cofactor1(on, var) &&
         cofactor0(upper, var) == cofactor1(upper, var)) {
    --var;
  }
  speccc_check(var >= 0, "isop: constant function fell through");
  const std::uint64_t on0 = cofactor0(on, var);
  const std::uint64_t on1 = cofactor1(on, var);
  const std::uint64_t up0 = cofactor0(upper, var);
  const std::uint64_t up1 = cofactor1(upper, var);

  // Minterms only coverable with a ~var cube, then only with a var cube.
  const std::size_t neg_begin = out.size();
  const std::uint64_t cov0 = isop_rec(on0 & ~up1, up0, num_vars, var, out);
  const std::size_t pos_begin = out.size();
  const std::uint64_t cov1 = isop_rec(on1 & ~up0, up1, num_vars, var, out);
  for (std::size_t i = neg_begin; i < pos_begin; ++i) {
    out[i].mask |= static_cast<std::uint8_t>(1u << var);
  }
  for (std::size_t i = pos_begin; i < out.size(); ++i) {
    out[i].mask |= static_cast<std::uint8_t>(1u << var);
    out[i].value |= static_cast<std::uint8_t>(1u << var);
  }

  // Remainder is coverable without mentioning var at all.
  const std::uint64_t rem = (on0 & ~cov0) | (on1 & ~cov1);
  const std::uint64_t cov2 = isop_rec(rem, up0 & up1, num_vars, var, out);

  const std::uint64_t vmask = tt_var(var, num_vars);
  return (cov0 & ~vmask) | (cov1 & vmask) | cov2;
}

}  // namespace

std::uint64_t tt_full(int num_vars) {
  return num_vars >= 6 ? ~0ULL : ((1ULL << (1u << num_vars)) - 1);
}

std::uint64_t tt_var(int var, int num_vars) {
  return ~kCofMask[var] & tt_full(num_vars);
}

std::uint64_t isop(std::uint64_t on, std::uint64_t upper, int num_vars,
                   std::vector<Cube>& out) {
  speccc_check((on & ~upper) == 0, "isop: on-set escapes the upper bound");
  return isop_rec(on, upper, num_vars, num_vars, out);
}

CnfMapper::CnfMapper(const Aig& aig, ClauseSink& sink, CnfOptions options)
    : aig_(aig), sink_(sink), options_(options) {
  speccc_check(options_.cut_size >= 2 && options_.cut_size <= 6,
               "cut_size must be in 2..6");
  speccc_check(options_.cuts_per_node >= 1, "cuts_per_node must be positive");
}

void CnfMapper::record_literal(std::uint32_t node, sat::Lit regular_lit) {
  if (node >= lits_.size()) lits_.resize(aig_.num_nodes(), kNoLit);
  speccc_check(lits_[node] == kNoLit, "node literal registered twice");
  lits_[node] = regular_lit.code();
}

void CnfMapper::set_literal(Edge e, sat::Lit lit) {
  record_literal(e.node(), e.complemented() ? lit.negated() : lit);
}

std::optional<sat::Lit> CnfMapper::existing_literal(Edge e) const {
  if (!has_literal(e.node())) return std::nullopt;
  const sat::Lit lit = node_literal(e.node());
  return e.complemented() ? lit.negated() : lit;
}

sat::Lit CnfMapper::leaf_literal(std::uint32_t node) {
  if (has_literal(node)) return node_literal(node);
  if (aig_.is_constant(node)) {
    // A standalone dump can reach the constant without the Builder having
    // pinned it; allocate and assert a true variable on demand.
    const sat::Lit t(sink_.new_var(), true);
    ++stats_.vars;
    record_literal(node, t);
    emit({t});
    return t;
  }
  speccc_check(aig_.is_input(node), "leaf_literal on an unflushed AND");
  const sat::Lit lit(sink_.new_var(), true);
  ++stats_.vars;
  record_literal(node, lit);
  return lit;
}

sat::Lit CnfMapper::literal(Edge e) {
  const std::uint32_t node = e.node();
  if (!has_literal(node)) {
    if (aig_.is_and(node)) {
      flush_cone(node);
    } else {
      leaf_literal(node);
    }
  }
  const sat::Lit lit = node_literal(node);
  return e.complemented() ? lit.negated() : lit;
}

void CnfMapper::emit(sat::Clause clause) {
  stats_.literals += clause.size();
  ++stats_.clauses;
  sink_.add_clause(clause);
}

void CnfMapper::emit_supergate(sat::Lit out,
                               const std::vector<sat::Lit>& leaf_lits,
                               std::uint64_t tt, int num_vars) {
  // Cubes of ISOP(f) force the output high: (out | ~cube). Cubes of
  // ISOP(~f) force it low: (~out | ~cube).
  const std::uint64_t full = tt_full(num_vars);
  for (int phase = 0; phase < 2; ++phase) {
    const std::uint64_t on = phase == 0 ? (full & ~tt) : tt;
    cubes_.clear();
    isop(on, on, num_vars, cubes_);
    const sat::Lit head = phase == 0 ? out.negated() : out;
    for (const Cube& cube : cubes_) {
      sat::Clause clause;
      clause.push_back(head);
      for (int v = 0; v < num_vars; ++v) {
        if ((cube.mask >> v) & 1u) {
          const bool positive = (cube.value >> v) & 1u;
          clause.push_back(positive ? leaf_lits[v].negated() : leaf_lits[v]);
        }
      }
      emit(std::move(clause));
    }
  }
}

void CnfMapper::flush_cone(std::uint32_t root) {
  ++stats_.flushes;
  // Collect the not-yet-flushed AND cone below root, in ascending (= topo)
  // node order. Inputs, constants, and previously flushed ANDs are
  // boundaries.
  cone_.clear();
  if (stamp_.size() < aig_.num_nodes()) stamp_.resize(aig_.num_nodes(), 0);
  ++stamp_id_;
  std::vector<std::uint32_t> stack{root};
  stamp_[root] = stamp_id_;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    cone_.push_back(n);
    for (const Edge f : {aig_.fanin0(n), aig_.fanin1(n)}) {
      const std::uint32_t child = f.node();
      if (stamp_[child] == stamp_id_ || !aig_.is_and(child) ||
          has_literal(child)) {
        continue;
      }
      stamp_[child] = stamp_id_;
      stack.push_back(child);
    }
  }
  std::sort(cone_.begin(), cone_.end());
  if (slot_.size() < stamp_.size()) slot_.resize(stamp_.size(), 0);
  for (std::size_t s = 0; s < cone_.size(); ++s) {
    slot_[cone_[s]] = static_cast<std::uint32_t>(s);
  }

  if (options_.encoder == CnfOptions::Encoder::kTseitin) {
    flush_tseitin(cone_);
  } else {
    flush_mapped(cone_);
  }
}

void CnfMapper::flush_tseitin(const std::vector<std::uint32_t>& cone) {
  for (const std::uint32_t n : cone) {
    const sat::Lit a = [&] {
      const Edge f = aig_.fanin0(n);
      const sat::Lit lit = leaf_literal(f.node());
      return f.complemented() ? lit.negated() : lit;
    }();
    const sat::Lit b = [&] {
      const Edge f = aig_.fanin1(n);
      const sat::Lit lit = leaf_literal(f.node());
      return f.complemented() ? lit.negated() : lit;
    }();
    const sat::Lit o(sink_.new_var(), true);
    ++stats_.vars;
    ++stats_.mapped_gates;
    ++stats_.covered_gates;
    record_literal(n, o);
    emit({o.negated(), a});
    emit({o.negated(), b});
    emit({o, a.negated(), b.negated()});
  }
}

std::uint32_t CnfMapper::cut_cost(std::uint64_t tt, int num_vars) {
  // For num_vars <= 4 the function space is at most 2^16 tables, so a flat
  // byte array memoizes every cost ever computed (shared across flushes --
  // circuits repeat the same local functions, e.g. full-adder sum/carry).
  static constexpr std::size_t kOffset[5] = {0, 2, 6, 22, 278};
  static constexpr std::size_t kMemoSize = 278 + 65536;
  const bool memoize = num_vars <= 4;
  std::size_t index = 0;
  if (memoize) {
    if (cost_memo_.empty()) cost_memo_.assign(kMemoSize, 0xFF);
    index = kOffset[num_vars] + static_cast<std::size_t>(tt);
    if (cost_memo_[index] != 0xFF) return cost_memo_[index];
  }
  const std::uint64_t full = tt_full(num_vars);
  cubes_.clear();
  isop(full & ~tt, full & ~tt, num_vars, cubes_);
  std::size_t cost = cubes_.size();
  cubes_.clear();
  isop(tt, tt, num_vars, cubes_);
  cost += cubes_.size();
  if (memoize) {
    cost_memo_[index] = static_cast<std::uint8_t>(cost);  // <= 16 for k<=4
  }
  return static_cast<std::uint32_t>(cost);
}

void CnfMapper::flush_mapped(const std::vector<std::uint32_t>& cone) {
  const unsigned k = static_cast<unsigned>(options_.cut_size);
  const std::size_t keep = static_cast<std::size_t>(options_.cuts_per_node);

  // Dense per-cone indexing via the stamp/slot arrays flush_cone filled:
  // O(1) node -> cone slot, -1 when outside the cone.
  const auto slot_find = [&](std::uint32_t node) -> std::ptrdiff_t {
    if (stamp_[node] != stamp_id_) return -1;
    return static_cast<std::ptrdiff_t>(slot_[node]);
  };

  // Fanout refs within this cone; the root (last node) gets one external
  // reference so its flow never divides by zero.
  std::vector<std::uint32_t> refs(cone.size(), 0);
  for (const std::uint32_t n : cone) {
    for (const Edge f : {aig_.fanin0(n), aig_.fanin1(n)}) {
      const std::ptrdiff_t s = slot_find(f.node());
      if (s >= 0) ++refs[static_cast<std::size_t>(s)];
    }
  }
  refs.back() += 1;

  // Expand a child cut's truth table onto a merged leaf set: OR together
  // the merged-space minterm masks of the child's set minterms (iterating
  // the sparser phase), so each minterm costs `size` word ops instead of a
  // bit poke per merged-space row.
  const auto expand_tt = [](const Cut& cut, bool complement,
                            const Cut& merged) {
    const std::uint64_t child_full = tt_full(cut.size);
    const std::uint64_t merged_full = tt_full(merged.size);
    std::uint64_t child_tt = complement ? (child_full & ~cut.tt) : cut.tt;
    // Merged-space truth table of each child variable.
    std::uint64_t vm[6];
    for (unsigned i = 0, p = 0; i < cut.size; ++i, ++p) {
      while (merged.leaves[p] != cut.leaves[i]) ++p;
      vm[i] = tt_var(static_cast<int>(p), merged.size);
    }
    bool invert = false;
    if (2 * static_cast<unsigned>(__builtin_popcountll(child_tt)) >
        (1u << cut.size)) {
      child_tt = child_full & ~child_tt;
      invert = true;
    }
    std::uint64_t tt = 0;
    while (child_tt != 0) {
      const unsigned cm = static_cast<unsigned>(__builtin_ctzll(child_tt));
      child_tt &= child_tt - 1;
      std::uint64_t m = merged_full;
      for (unsigned i = 0; i < cut.size; ++i) {
        m &= ((cm >> i) & 1u) ? vm[i] : ~vm[i];
      }
      tt |= m;
    }
    return invert ? (merged_full & ~tt) : tt;
  };

  // Bottom-up cut enumeration. cuts[slot] holds the pruned candidate list
  // for that cone node; boundary fanins contribute a single trivial cut.
  std::vector<std::vector<Cut>> cuts(cone.size());
  std::vector<double> node_flow(cone.size(), 0.0);
  std::vector<std::size_t> best(cone.size(), 0);
  std::vector<Cut> cand;
  cand.reserve(2 * (keep + 1) * (keep + 1));

  for (std::size_t s = 0; s < cone.size(); ++s) {
    const std::uint32_t n = cone[s];
    const Edge f0 = aig_.fanin0(n);
    const Edge f1 = aig_.fanin1(n);

    // Candidate cut lists of each fanin: the fanin's enumerated cuts when
    // it is inside the cone, else just its trivial cut.
    // Multi-fanout nodes are hard mapping boundaries: their signal is
    // shared, so absorbing them into a user's cut would duplicate logic
    // and -- worse for the SAT search -- erase a variable the solver's
    // learned clauses want to talk about. Only fanout-free chains melt
    // into super-gates.
    const Cut trivial0 = trivial_cut(f0.node());
    const Cut trivial1 = trivial_cut(f1.node());
    const std::ptrdiff_t s0 = slot_find(f0.node());
    const std::ptrdiff_t s1 = slot_find(f1.node());
    const bool open0 = s0 >= 0 && refs[static_cast<std::size_t>(s0)] < 2;
    const bool open1 = s1 >= 0 && refs[static_cast<std::size_t>(s1)] < 2;
    const Cut* list0 = open0 ? cuts[static_cast<std::size_t>(s0)].data()
                             : &trivial0;
    const Cut* list1 = open1 ? cuts[static_cast<std::size_t>(s1)].data()
                             : &trivial1;
    const std::size_t count0 =
        open0 ? cuts[static_cast<std::size_t>(s0)].size() : 1;
    const std::size_t count1 =
        open1 ? cuts[static_cast<std::size_t>(s1)].size() : 1;

    // Small open-addressing table over candidate leaf sets, so duplicate
    // detection is O(1) per merge instead of a scan of all candidates.
    std::uint16_t dedup[256];
    std::memset(dedup, 0, sizeof dedup);  // 0 = empty, else cand index + 1
    cand.clear();

    for (std::size_t i = 0; i < count0; ++i) {
      const Cut& c0 = list0[i];
      for (std::size_t j = 0; j < count1; ++j) {
        const Cut& c1 = list1[j];
        // Merge the sorted leaf sets in place; skip if wider than k.
        Cut cut;
        {
          unsigned a = 0, b = 0;
          bool too_wide = false;
          while (a < c0.size || b < c1.size) {
            std::uint32_t next;
            if (b >= c1.size ||
                (a < c0.size && c0.leaves[a] < c1.leaves[b])) {
              next = c0.leaves[a++];
            } else if (a >= c0.size || c1.leaves[b] < c0.leaves[a]) {
              next = c1.leaves[b++];
            } else {
              next = c0.leaves[a];
              ++a;
              ++b;
            }
            if (cut.size == k) {
              too_wide = true;
              break;
            }
            cut.leaves[cut.size++] = next;
          }
          if (too_wide) continue;
        }
        // Duplicate leaf sets compute the same function; keep the first.
        unsigned slot = static_cast<unsigned>(cut.leaves_hash()) & 255u;
        bool duplicate = false;
        while (dedup[slot] != 0) {
          if (cand[dedup[slot] - 1].same_leaves(cut)) {
            duplicate = true;
            break;
          }
          slot = (slot + 1) & 255u;
        }
        if (duplicate) continue;

        cut.tt = expand_tt(c0, f0.complemented(), cut) &
                 expand_tt(c1, f1.complemented(), cut);
        cut.cost = cut_cost(cut.tt, cut.size);
        cut.flow = 1.0 + cut.cost;
        for (unsigned l = 0; l < cut.size; ++l) {
          const std::ptrdiff_t ls = slot_find(cut.leaves[l]);
          if (ls >= 0) cut.flow += node_flow[static_cast<std::size_t>(ls)];
        }
        dedup[slot] = static_cast<std::uint16_t>(cand.size() + 1);
        cand.push_back(cut);
      }
    }
    speccc_check(!cand.empty(), "cut enumeration produced no cuts");
    const auto better = [](const Cut& a, const Cut& b) {
      if (a.flow != b.flow) return a.flow < b.flow;
      return a.size < b.size;
    };
    if (cand.size() > keep) {
      std::nth_element(cand.begin(), cand.begin() + keep, cand.end(), better);
      cand.resize(keep);
    }
    std::sort(cand.begin(), cand.end(), better);
    best[s] = 0;
    node_flow[s] = cand[0].flow / static_cast<double>(std::max<std::uint32_t>(
                                      refs[s], 1));
    // The trivial self-cut lets users stop at this node; it is a merge
    // candidate only, never the mapping cut (best[s] stays in the merged
    // portion above).
    Cut self = trivial_cut(n);
    self.flow = node_flow[s];
    cand.push_back(self);
    cuts[s].assign(cand.begin(), cand.end());
  }

  // Cover extraction: required nodes, root first, walking descending so a
  // node's requirement is settled before it is visited.
  std::vector<char> required(cone.size(), 0);
  required.back() = 1;
  for (std::size_t s = cone.size(); s-- > 0;) {
    if (!required[s]) continue;
    const Cut& cut = cuts[s][best[s]];
    for (unsigned l = 0; l < cut.size; ++l) {
      const std::ptrdiff_t ls = slot_find(cut.leaves[l]);
      if (ls >= 0) required[static_cast<std::size_t>(ls)] = 1;
    }
  }

  // Emission in ascending order: leaves before users.
  for (std::size_t s = 0; s < cone.size(); ++s) {
    if (required[s]) {
      const Cut& cut = cuts[s][best[s]];
      std::vector<sat::Lit> leaf_lits;
      leaf_lits.reserve(cut.size);
      for (unsigned l = 0; l < cut.size; ++l) {
        leaf_lits.push_back(leaf_literal(cut.leaves[l]));
      }
      const sat::Lit o(sink_.new_var(), true);
      ++stats_.vars;
      ++stats_.mapped_gates;
      record_literal(cone[s], o);
      emit_supergate(o, leaf_lits, cut.tt, cut.size);
    }
    ++stats_.covered_gates;
  }
}

}  // namespace speccc::aig
