#include "difftest/shrink.hpp"

#include <algorithm>

#include "util/diagnostics.hpp"

namespace speccc::difftest {

namespace {

using ltl::Formula;
using ltl::Op;

/// Rebuild f with child i replaced by g, going through the factory
/// functions so normalization reapplies.
Formula replace_child(Formula f, std::size_t i, Formula g) {
  std::vector<Formula> kids = f.children();
  kids[i] = g;
  switch (f.op()) {
    case Op::kNot: return ltl::lnot(kids[0]);
    case Op::kAnd: return ltl::land(std::move(kids));
    case Op::kOr: return ltl::lor(std::move(kids));
    case Op::kImplies: return ltl::implies(kids[0], kids[1]);
    case Op::kIff: return ltl::iff(kids[0], kids[1]);
    case Op::kNext: return ltl::next(kids[0]);
    case Op::kEventually: return ltl::eventually(kids[0]);
    case Op::kAlways: return ltl::always(kids[0]);
    case Op::kUntil: return ltl::until(kids[0], kids[1]);
    case Op::kWeakUntil: return ltl::weak_until(kids[0], kids[1]);
    case Op::kRelease: return ltl::release(kids[0], kids[1]);
    case Op::kTrue:
    case Op::kFalse:
    case Op::kAp:
      break;
  }
  speccc_check(false, "replace_child on a leaf");
  return f;  // unreachable
}

/// Rebuild an n-ary And/Or with operand i removed (arity must stay >= 1).
Formula drop_operand(Formula f, std::size_t i) {
  std::vector<Formula> kids = f.children();
  kids.erase(kids.begin() + static_cast<std::ptrdiff_t>(i));
  return f.op() == Op::kAnd ? ltl::land(std::move(kids))
                            : ltl::lor(std::move(kids));
}

}  // namespace

std::vector<Formula> shrink_candidates(Formula f) {
  std::vector<Formula> out;
  const auto push = [&](Formula g) {
    if (!g.is_null() && g != f && g.length() < f.length()) out.push_back(g);
  };
  push(ltl::tru());
  push(ltl::fls());
  for (std::size_t i = 0; i < f.arity(); ++i) push(f.child(i));
  if ((f.op() == Op::kAnd || f.op() == Op::kOr) && f.arity() > 2) {
    for (std::size_t i = 0; i < f.arity(); ++i) push(drop_operand(f, i));
  }
  for (std::size_t i = 0; i < f.arity(); ++i) {
    for (Formula g : shrink_candidates(f.child(i))) {
      push(replace_child(f, i, g));
    }
  }
  std::sort(out.begin(), out.end(), [](Formula a, Formula b) {
    if (a.length() != b.length()) return a.length() < b.length();
    return a.id() < b.id();
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Formula shrink_formula(Formula f, const FormulaPredicate& fails,
                       std::size_t max_evaluations) {
  std::size_t evals = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (Formula cand : shrink_candidates(f)) {
      if (evals >= max_evaluations) return f;
      ++evals;
      if (fails(cand)) {
        f = cand;
        progress = true;
        break;  // restart from the smaller formula
      }
    }
  }
  return f;
}

std::vector<Formula> shrink_spec(std::vector<Formula> spec,
                                 const SpecPredicate& fails,
                                 std::size_t max_evaluations) {
  std::size_t evals = 0;
  // Phase 1: greedily drop whole requirements.
  bool progress = true;
  while (progress && spec.size() > 1) {
    progress = false;
    for (std::size_t i = 0; i < spec.size(); ++i) {
      std::vector<Formula> cand = spec;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      if (evals >= max_evaluations) return spec;
      ++evals;
      if (fails(cand)) {
        spec = std::move(cand);
        progress = true;
        break;
      }
    }
  }
  // Phase 2: shrink each surviving requirement in place.
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const std::size_t budget =
        max_evaluations > evals ? max_evaluations - evals : 0;
    std::size_t used = 0;
    spec[i] = shrink_formula(
        spec[i],
        [&](Formula g) {
          ++used;
          std::vector<Formula> cand = spec;
          cand[i] = g;
          return fails(cand);
        },
        budget);
    evals += used;
  }
  return spec;
}

}  // namespace speccc::difftest
