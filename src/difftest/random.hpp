// Seeded random-input generators for the differential oracle harness.
//
// Everything here is a pure function of a util::Rng stream, so a single
// 64-bit seed reproduces any generated formula, lasso, or specification
// scale bit-for-bit. The harness (difftest/harness.hpp) derives one seed
// per case, which is what makes every reported failure a one-command
// reproduction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/generator.hpp"
#include "ltl/formula.hpp"
#include "ltl/trace.hpp"
#include "util/diagnostics.hpp"

namespace speccc::difftest {

/// Shape of random formulas: a proposition pool, a depth budget, and the
/// operator mix (temporal vs. boolean connectives, constant leaves).
struct FormulaConfig {
  std::vector<std::string> props = {"p", "q", "r"};
  std::size_t max_depth = 4;
  /// Chance (percent) that an inner node is temporal (X/F/G/U/W/R) rather
  /// than a boolean connective (!/&&/||/->/<->).
  unsigned temporal_percent = 55;
  /// Chance (percent) that a leaf is a constant (true/false) instead of a
  /// proposition.
  unsigned constant_percent = 8;
  /// Chance (percent) of cutting a branch short before max_depth, biasing
  /// toward small formulas so counterexamples start near minimal.
  unsigned early_leaf_percent = 20;
};

/// "p0", "p1", ... -- a pool of n distinct proposition names.
[[nodiscard]] std::vector<std::string> proposition_pool(std::size_t n);

/// Draw a random formula. Hash-consing may fold the draw into something
/// smaller than the nominal shape (e.g. p && p), which is fine: the oracle
/// properties are closed under simplification.
[[nodiscard]] ltl::Formula random_formula(util::Rng& rng,
                                          const FormulaConfig& config);

/// Shape of random ultimately periodic words.
struct LassoConfig {
  std::vector<std::string> props = {"p", "q", "r"};
  std::size_t max_prefix = 3;  // prefix length in [0, max_prefix]
  std::size_t max_loop = 4;    // loop length in [1, max_loop]
};

/// Draw a random lasso: each position is an independent uniform valuation
/// over the pool.
[[nodiscard]] ltl::Lasso random_lasso(util::Rng& rng, const LassoConfig& config);

/// Shape of random generated specifications, kept inside the bounded
/// engine's comfort zone (alphabet enumeration is exponential in I+O).
struct SpecConfig {
  int min_formulas = 3;
  int max_formulas = 7;
  int min_inputs = 2;
  int max_inputs = 3;
  int min_outputs = 2;
  int max_outputs = 3;
  unsigned response_percent = 25;  // F obligations
  unsigned timed_percent = 25;     // "in N seconds" deadlines
};

/// Draw a corpus::SpecScale; `seed` becomes the scale's own generator seed
/// so the sentence text is reproducible from the case seed alone.
[[nodiscard]] corpus::SpecScale random_scale(util::Rng& rng,
                                             const SpecConfig& config,
                                             std::string name,
                                             std::uint64_t seed);

/// Shape of planted-fault specifications: a consistent generated base spec
/// with known inconsistent sentence groups injected, the ground truth the
/// diag localization engine is tested against.
struct FaultConfig {
  /// Shape of the consistent base (corpus::generate_spec is realizable by
  /// construction: inputs only in antecedents, consequents positive
  /// except the dedicated negative-only slot).
  SpecConfig base;
  /// Faults per spec. At least 2 ("multi-fault"): a single-variable
  /// partition flip can dissolve one fault, but never two at once, so
  /// multi-fault specs are genuinely inconsistent end to end.
  int min_faults = 2;
  int max_faults = 4;
  /// Chance (percent) a fault is a 3-sentence implication chain (pairwise
  /// consistent, jointly inconsistent) instead of a direct 2-sentence
  /// contradiction.
  unsigned triple_percent = 35;
};

struct PlantedSpec {
  std::string name;
  std::vector<translate::RequirementText> requirements;
  /// Requirement indices (sorted) of each planted fault. Every fault uses
  /// its own fresh vocabulary, disjoint from the base and from the other
  /// faults, so requirement subsets decompose into independent games:
  /// every minimal inconsistent subset of the spec is exactly one of
  /// these index sets.
  std::vector<std::vector<std::size_t>> faults;
};

/// Generate a base spec and weave `FaultConfig`-many known inconsistent
/// sentence groups into it at random positions. `base_seed` becomes the
/// base scale's generator seed (cf. random_scale).
[[nodiscard]] PlantedSpec plant_faults(util::Rng& rng,
                                       const FaultConfig& config,
                                       std::string name,
                                       std::uint64_t base_seed);

}  // namespace speccc::difftest
