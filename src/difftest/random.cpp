#include "difftest/random.hpp"

#include <algorithm>
#include <iterator>

namespace speccc::difftest {

std::vector<std::string> proposition_pool(std::size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back("p" + std::to_string(i));
  return out;
}

namespace {

ltl::Formula random_leaf(util::Rng& rng, const FormulaConfig& config) {
  if (rng.chance(config.constant_percent, 100)) {
    return rng.chance(1, 2) ? ltl::tru() : ltl::fls();
  }
  return ltl::ap(config.props[rng.below(config.props.size())]);
}

ltl::Formula random_at(util::Rng& rng, const FormulaConfig& config,
                       std::size_t depth) {
  if (depth >= config.max_depth ||
      rng.chance(config.early_leaf_percent, 100)) {
    return random_leaf(rng, config);
  }
  const auto sub = [&] { return random_at(rng, config, depth + 1); };
  if (rng.chance(config.temporal_percent, 100)) {
    switch (rng.below(6)) {
      case 0: return ltl::next(sub());
      case 1: return ltl::eventually(sub());
      case 2: return ltl::always(sub());
      case 3: return ltl::until(sub(), sub());
      case 4: return ltl::weak_until(sub(), sub());
      default: return ltl::release(sub(), sub());
    }
  }
  switch (rng.below(5)) {
    case 0: return ltl::lnot(sub());
    case 1: {
      // Binary or ternary conjunction/disjunction, exercising flattening.
      const bool ternary = rng.chance(1, 4);
      std::vector<ltl::Formula> fs = {sub(), sub()};
      if (ternary) fs.push_back(sub());
      return ltl::land(std::move(fs));
    }
    case 2: {
      const bool ternary = rng.chance(1, 4);
      std::vector<ltl::Formula> fs = {sub(), sub()};
      if (ternary) fs.push_back(sub());
      return ltl::lor(std::move(fs));
    }
    case 3: return ltl::implies(sub(), sub());
    default: return ltl::iff(sub(), sub());
  }
}

}  // namespace

ltl::Formula random_formula(util::Rng& rng, const FormulaConfig& config) {
  speccc_check(!config.props.empty(), "formula config needs propositions");
  return random_at(rng, config, 0);
}

ltl::Lasso random_lasso(util::Rng& rng, const LassoConfig& config) {
  speccc_check(config.max_loop >= 1, "lasso loop must allow length >= 1");
  const std::size_t prefix = rng.below(config.max_prefix + 1);
  const std::size_t loop = 1 + rng.below(config.max_loop);
  std::vector<ltl::Valuation> steps;
  steps.reserve(prefix + loop);
  for (std::size_t i = 0; i < prefix + loop; ++i) {
    ltl::Valuation v;
    for (const auto& p : config.props) {
      if (rng.chance(1, 2)) v.insert(p);
    }
    steps.push_back(std::move(v));
  }
  return ltl::Lasso(std::move(steps), prefix);
}

PlantedSpec plant_faults(util::Rng& rng, const FaultConfig& config,
                         std::string name, std::uint64_t base_seed) {
  speccc_check(config.min_faults >= 1 &&
                   config.max_faults >= config.min_faults,
               "fault config needs a sane fault range");
  PlantedSpec out;
  out.name = std::move(name);

  const corpus::SpecScale scale =
      random_scale(rng, config.base, out.name, base_seed);
  const corpus::Theme theme = rng.chance(1, 2) ? corpus::device_theme()
                                               : corpus::application_theme();
  std::vector<translate::RequirementText> requirements =
      corpus::generate_spec(scale, theme);

  // Each fault speaks its own fresh dialect: a per-fault modifier word on
  // nouns neither theme uses, so fault propositions are disjoint from the
  // base spec and from every other fault. The partition heuristics keep
  // the "<modifier> relay" an input (antecedents only) and the beacon and
  // siren outputs (consequents; the chain's beacon antecedent is covered
  // by the conflict-resolution rule).
  static const char* const kModifiers[] = {
      "alpha", "beta",  "gamma", "delta", "epsilon", "zeta",
      "theta", "kappa", "lambda", "sigma", "omega",  "nova"};
  const int pool = static_cast<int>(std::size(kModifiers));
  const int fault_count =
      std::min(rng.range(config.min_faults, config.max_faults), pool);

  // Parallel fault tags: -1 for base sentences, else the fault index.
  std::vector<int> tags(requirements.size(), -1);
  for (int f = 0; f < fault_count; ++f) {
    const std::string m = kModifiers[f];
    const bool triple = rng.chance(config.triple_percent, 100);
    std::vector<std::string> texts;
    if (triple) {
      // Pairwise consistent, jointly inconsistent implication chain.
      texts = {"If the " + m + " relay is detected, the " + m +
                   " beacon is triggered.",
               "If the " + m + " beacon is triggered, the " + m +
                   " siren is issued.",
               "If the " + m + " relay is detected, the " + m +
                   " siren is not issued."};
    } else {
      texts = {"If the " + m + " relay is detected, the " + m +
                   " beacon is triggered.",
               "If the " + m + " relay is detected, the " + m +
                   " beacon is not triggered."};
    }
    static const char* const kLetters = "abc";
    for (std::size_t s = 0; s < texts.size(); ++s) {
      // Weave the fault sentence into a random position so localization
      // cannot lean on sentence order.
      const std::size_t at = rng.below(requirements.size() + 1);
      requirements.insert(
          requirements.begin() + static_cast<std::ptrdiff_t>(at),
          {out.name + "-f" + std::to_string(f + 1) + kLetters[s],
           std::move(texts[s])});
      tags.insert(tags.begin() + static_cast<std::ptrdiff_t>(at), f);
    }
  }

  out.requirements = std::move(requirements);
  out.faults.assign(static_cast<std::size_t>(fault_count), {});
  for (std::size_t i = 0; i < tags.size(); ++i) {
    if (tags[i] >= 0) {
      out.faults[static_cast<std::size_t>(tags[i])].push_back(i);
    }
  }
  return out;
}

corpus::SpecScale random_scale(util::Rng& rng, const SpecConfig& config,
                               std::string name, std::uint64_t seed) {
  corpus::SpecScale scale;
  scale.name = std::move(name);
  scale.formulas = rng.range(config.min_formulas, config.max_formulas);
  scale.inputs = rng.range(config.min_inputs, config.max_inputs);
  scale.outputs = rng.range(config.min_outputs, config.max_outputs);
  // Keep the scale inside the generator's per-requirement budget
  // (at most 3 fresh inputs and 2 fresh outputs per sentence).
  scale.inputs = std::min(scale.inputs, 3 * scale.formulas);
  scale.outputs = std::min(scale.outputs, 2 * scale.formulas);
  scale.seed = seed;
  scale.response_percent = config.response_percent;
  scale.timed_percent = config.timed_percent;
  return scale;
}

}  // namespace speccc::difftest
