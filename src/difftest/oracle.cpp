#include "difftest/oracle.hpp"

#include <algorithm>
#include <map>

#include "automata/emptiness.hpp"
#include "automata/gpvw.hpp"
#include "partition/partition.hpp"
#include "synth/symbolic_engine.hpp"
#include "synth/verify.hpp"
#include "timeabs/abstraction.hpp"
#include "util/diagnostics.hpp"

namespace speccc::difftest {

namespace {

using ltl::Formula;
using synth::Realizability;

const char* verdict_name(Realizability v) {
  switch (v) {
    case Realizability::kRealizable: return "realizable";
    case Realizability::kUnrealizable: return "unrealizable";
    case Realizability::kUnknown: return "unknown";
  }
  return "?";
}

bool definite(Realizability v) { return v != Realizability::kUnknown; }

Evaluator resolve(const OracleOptions& options) {
  if (options.evaluate) return options.evaluate;
  return [](Formula f, const ltl::Lasso& lasso) {
    return ltl::evaluate(f, lasso);
  };
}

std::string show(Formula f) { return ltl::to_string(f); }

}  // namespace

std::optional<std::string> check_formula(Formula f, util::Rng& rng,
                                         const OracleOptions& options,
                                         bool* skipped) {
  if (skipped != nullptr) *skipped = false;
  const Evaluator eval = resolve(options);
  const Formula nf = ltl::lnot(f);

  // Tableau construction, bounded: a pathological draw (GPVW is
  // exponential) skips the case instead of stalling the run.
  const auto nbw_f = automata::ltl_to_nbw_bounded(f, options.max_tableau_nodes);
  const auto nbw_nf =
      automata::ltl_to_nbw_bounded(nf, options.max_tableau_nodes);
  if (!nbw_f || !nbw_nf) {
    if (skipped != nullptr) *skipped = true;
    return std::nullopt;
  }

  // Tableau witnesses must satisfy their formula under trace semantics.
  const auto wf = automata::find_accepting_lasso(*nbw_f);
  if (wf && !eval(f, wf->lasso)) {
    return "tableau witness for `" + show(f) +
           "` is rejected by trace evaluation";
  }
  const auto wn = automata::find_accepting_lasso(*nbw_nf);
  if (wn && !eval(nf, wn->lasso)) {
    return "tableau witness for `" + show(nf) +
           "` is rejected by trace evaluation";
  }
  // At least one of f, !f is satisfiable in any sane logic.
  if (!wf && !wn) {
    return "tableau reports both `" + show(f) + "` and its negation "
           "unsatisfiable";
  }

  // Random lassos: trace semantics must respect negation, and a concrete
  // (non-)model refutes the tableau's (un)satisfiability verdicts.
  for (int i = 0; i < options.lassos_per_formula; ++i) {
    const ltl::Lasso lasso = random_lasso(rng, options.lasso);
    const bool sat_f = eval(f, lasso);
    const bool sat_nf = eval(nf, lasso);
    if (sat_f == sat_nf) {
      return "trace evaluation assigns `" + show(f) +
             "` and its negation the same value on a random lasso";
    }
    if (sat_f && !wf) {
      return "random lasso satisfies `" + show(f) +
             "` but the tableau reports it unsatisfiable";
    }
    if (!sat_f && !wn) {
      return "random lasso falsifies `" + show(f) +
             "` but the tableau reports it valid";
    }
  }
  return std::nullopt;
}

SpecCase build_spec_case(
    const std::vector<translate::RequirementText>& texts) {
  const auto lexicon = nlp::Lexicon::builtin();
  const auto dictionary = semantics::AntonymDictionary::builtin();
  const translate::Translator translator(lexicon, dictionary);

  auto translation = translator.translate(texts);
  const auto thetas = translation.thetas();
  if (!thetas.empty()) {
    timeabs::Request request;
    request.thetas = thetas;
    request.error_budget = 5;
    const timeabs::Abstraction abstraction = timeabs::optimize_exact(request);
    std::map<unsigned, unsigned> remap;
    for (std::size_t i = 0; i < thetas.size(); ++i) {
      remap[thetas[i]] = abstraction.reduced[i];
    }
    // Both the GPVW tableau and the counter game are exponential in the
    // Next-chain length, so deadlines are additionally clamped to a few
    // ticks. The clamp is part of case *generation* -- every substrate sees
    // the same clamped formulas -- so the cross-check stays meaningful
    // while the worst case stays time-bounded.
    static constexpr unsigned kMaxChain = 4;
    const translate::TickMapper mapper = [remap](unsigned ticks) -> unsigned {
      const auto it = remap.find(ticks);
      const unsigned reduced = it == remap.end() ? ticks : it->second;
      return std::min(reduced, kMaxChain);
    };
    translation = translator.translate(texts, mapper);
  }

  SpecCase result;
  result.requirements = translation.formulas();
  const partition::Partition part = partition::unify(result.requirements);
  result.signature.inputs.assign(part.inputs.begin(), part.inputs.end());
  result.signature.outputs.assign(part.outputs.begin(), part.outputs.end());
  return result;
}

namespace {

/// Model-check and replay one extracted controller against the spec.
std::optional<std::string> check_controller(
    const synth::MealyMachine& machine, const char* engine,
    const SpecCase& spec, Formula conjunction, util::Rng& rng,
    const OracleOptions& options, const Evaluator& eval) {
  if (machine.num_states() <= options.max_verify_states) {
    const auto verification = synth::verify(machine, conjunction);
    if (!verification.holds) {
      // Name the violated requirement for the report.
      for (const Formula req : spec.requirements) {
        if (!synth::verify(machine, req).holds) {
          return std::string(engine) + " controller violates `" + show(req) +
                 "` under model checking";
        }
      }
      return std::string(engine) +
             " controller violates the conjoined specification under model "
             "checking";
    }
  }
  const std::size_t input_bits = spec.signature.inputs.size();
  speccc_check(input_bits < 31, "input signature too wide for replay");
  for (int i = 0; i < options.replays_per_controller; ++i) {
    std::vector<synth::Word> prefix;
    std::vector<synth::Word> loop;
    const std::size_t np = rng.below(3);
    const std::size_t nl = 1 + rng.below(3);
    for (std::size_t j = 0; j < np; ++j) {
      prefix.push_back(static_cast<synth::Word>(rng.below(1u << input_bits)));
    }
    for (std::size_t j = 0; j < nl; ++j) {
      loop.push_back(static_cast<synth::Word>(rng.below(1u << input_bits)));
    }
    const ltl::Lasso trace = machine.lasso(prefix, loop);
    for (const Formula req : spec.requirements) {
      if (!eval(req, trace)) {
        return std::string(engine) + " controller trace violates `" +
               show(req) + "` on a random input replay";
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> check_spec(const SpecCase& spec, util::Rng& rng,
                                      const OracleOptions& options) {
  if (spec.requirements.empty()) return std::nullopt;
  const Evaluator eval = resolve(options);
  const Formula conjunction = ltl::land(spec.requirements);

  synth::SymbolicOptions symbolic_options;
  symbolic_options.extract = true;
  const auto symbolic = synth::symbolic_synthesize(
      spec.requirements, spec.signature, symbolic_options);

  synth::BoundedOptions bounded_options = options.bounded;
  bounded_options.extract = true;
  const auto bounded =
      synth::bounded_synthesize(conjunction, spec.signature, bounded_options);

  // Engine agreement: opposite definite verdicts are a substrate bug.
  if (symbolic && definite(symbolic->verdict) && definite(bounded.verdict) &&
      symbolic->verdict != bounded.verdict) {
    return std::string("engine disagreement: symbolic says ") +
           verdict_name(symbolic->verdict) + ", bounded says " +
           verdict_name(bounded.verdict);
  }

  // Controller compliance: every extracted controller must implement the
  // specification, proven by model checking and sampled by replay.
  if (bounded.controller) {
    if (auto failure = check_controller(*bounded.controller, "bounded", spec,
                                        conjunction, rng, options, eval)) {
      return failure;
    }
  }
  if (symbolic && symbolic->controller) {
    if (auto failure = check_controller(*symbolic->controller, "symbolic",
                                        spec, conjunction, rng, options,
                                        eval)) {
      return failure;
    }
  }
  return std::nullopt;
}

}  // namespace speccc::difftest
