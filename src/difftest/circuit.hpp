// Differential testing of the AIG -> CNF encoders: seeded random circuits
// are encoded through both the cut-based mapper and the Tseitin lane, the
// two must be equisatisfiable, and every SAT model must replay to true
// through the circuit semantics themselves (aig::Aig::evaluate_all). This
// is the standing oracle for src/aig/cnf.cpp -- a super-gate emitted with
// a wrong truth table shows up here as an encoder disagreement or a model
// that fails replay, pinned to a one-command reproduction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace speccc::difftest {

/// Shape of random circuits: a primary-input pool and a gate budget. Gates
/// draw uniformly from AND/OR/XOR/MUX over random (possibly complemented)
/// earlier signals, so structural hashing and constant folding both get
/// exercised -- a draw may collapse to an existing node or a constant.
struct CircuitConfig {
  std::size_t inputs = 8;
  std::size_t gates = 120;
  /// Assertions per case. Each assertion root is a random signal asserted
  /// in its own solve() round, so later roots exercise the incremental
  /// flush path (earlier cones act as free leaves).
  std::size_t roots = 3;
};

/// Cross-check one seeded random circuit. Returns a failure description
/// (encoder disagreement or model-replay mismatch), or nullopt when the
/// case holds.
[[nodiscard]] std::optional<std::string> check_circuit(
    std::uint64_t case_seed, const CircuitConfig& config = {});

struct CircuitFailure {
  int index = 0;
  std::uint64_t case_seed = 0;
  std::string detail;
  std::string reproduce;  // one command replaying exactly this case
};

struct CircuitReport {
  int checked = 0;
  std::vector<CircuitFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Run `cases` circuit cross-checks with per-case seeds derived from
/// `master_seed` (same derivation discipline as the formula/spec lanes:
/// any failure replays alone via its index). `only_case` >= 0 restricts
/// the run to that single index.
[[nodiscard]] CircuitReport run_circuits(std::uint64_t master_seed, int cases,
                                         const CircuitConfig& config = {},
                                         int only_case = -1);

/// Human-readable report of a circuit sweep.
[[nodiscard]] std::string describe(const CircuitReport& report);

}  // namespace speccc::difftest
