#include "difftest/harness.hpp"

#include <ostream>
#include <sstream>

#include "difftest/shrink.hpp"
#include "util/diagnostics.hpp"

namespace speccc::difftest {

namespace {

// splitmix64 finalizer: decorrelates (seed, kind, index) triples.
constexpr auto mix = util::Rng::mix;

}  // namespace

std::uint64_t case_seed(std::uint64_t master_seed, CaseKind kind, int index) {
  std::uint64_t kind_salt = 0;
  switch (kind) {
    case CaseKind::kFormula: kind_salt = 0x666f726d756c6130ULL; break;
    case CaseKind::kSpec: kind_salt = 0x7370656343617365ULL; break;
    case CaseKind::kPlanted: kind_salt = 0x706c616e74656421ULL; break;
  }
  return mix(master_seed + 0x9e3779b97f4a7c15ULL *
                               (static_cast<std::uint64_t>(index) + 1) +
             kind_salt);
}

GeneratedSpec generated_spec(std::uint64_t master_seed, int index,
                             const SpecConfig& config) {
  const std::uint64_t cs = case_seed(master_seed, CaseKind::kSpec, index);
  util::Rng generation(cs);
  const corpus::SpecScale scale = random_scale(
      generation, config, "fuzz" + std::to_string(index), mix(cs + 1));
  const corpus::Theme theme = generation.chance(1, 2)
                                  ? corpus::device_theme()
                                  : corpus::application_theme();
  return {scale.name, corpus::generate_spec(scale, theme)};
}

PlantedSpec generated_planted_spec(std::uint64_t master_seed, int index,
                                   const FaultConfig& config) {
  const std::uint64_t cs = case_seed(master_seed, CaseKind::kPlanted, index);
  util::Rng generation(cs);
  return plant_faults(generation, config,
                      "planted" + std::to_string(index), mix(cs + 1));
}

namespace {

void narrate(const RunOptions& options, const std::string& line) {
  if (options.progress != nullptr) *options.progress << line << "\n";
}

std::string reproduce_command(const RunOptions& options, CaseKind kind,
                              int index) {
  // Replay must regenerate the exact same case, so every generation/oracle
  // knob that differs from its default travels with the command.
  static const RunOptions defaults;
  std::ostringstream out;
  out << "speccc_fuzz --seed " << options.seed;
  if (options.formula.max_depth != defaults.formula.max_depth) {
    out << " --max-depth " << options.formula.max_depth;
  }
  if (options.formula.props != defaults.formula.props) {
    out << " --props " << options.formula.props.size();
  }
  if (options.oracle.lassos_per_formula !=
      defaults.oracle.lassos_per_formula) {
    out << " --lassos " << options.oracle.lassos_per_formula;
  }
  if (!options.shrink) out << " --no-shrink";
  out << " " << (kind == CaseKind::kFormula ? "--formula-case" : "--spec-case")
      << " " << index;
  return out.str();
}

void run_formula_case(const RunOptions& options, int index, RunReport& report) {
  const std::uint64_t cs = case_seed(options.seed, CaseKind::kFormula, index);
  util::Rng generation(cs);
  const ltl::Formula formula = random_formula(generation, options.formula);

  // The oracle rng is re-seeded per predicate call so that the shrinker's
  // re-checks are deterministic and the original failure reproduces.
  const std::uint64_t oracle_seed = mix(cs);
  const auto oracle_message =
      [&](ltl::Formula f) -> std::optional<std::string> {
    util::Rng rng(oracle_seed);
    return check_formula(f, rng, options.oracle);
  };

  bool skipped = false;
  util::Rng first_rng(oracle_seed);
  const auto message =
      check_formula(formula, first_rng, options.oracle, &skipped);
  if (skipped) {
    ++report.formulas_skipped;
    narrate(options, "skip formula case " + std::to_string(index) +
                         " (tableau cap)");
    return;
  }
  ++report.formulas_checked;
  if (!message) return;

  CaseFailure failure;
  failure.kind = CaseKind::kFormula;
  failure.index = index;
  failure.case_seed = cs;
  failure.detail = *message;
  failure.reproduce = reproduce_command(options, CaseKind::kFormula, index);
  failure.shrunk = formula;
  if (options.shrink) {
    failure.shrunk = shrink_formula(
        formula, [&](ltl::Formula f) { return oracle_message(f).has_value(); });
  }
  failure.shrunk_detail = oracle_message(failure.shrunk).value_or(*message);
  narrate(options, "FAIL formula case " + std::to_string(index) + ": " +
                       failure.shrunk_detail);
  report.failures.push_back(std::move(failure));
}

void run_spec_case(const RunOptions& options, int index, RunReport& report) {
  const std::uint64_t cs = case_seed(options.seed, CaseKind::kSpec, index);
  const SpecCase spec = build_spec_case(
      generated_spec(options.seed, index, options.spec).requirements);

  const std::uint64_t oracle_seed = mix(cs);
  const auto oracle_message = [&](const std::vector<ltl::Formula>& requirements)
      -> std::optional<std::string> {
    util::Rng rng(oracle_seed);
    return check_spec({requirements, spec.signature}, rng, options.oracle);
  };

  ++report.specs_checked;
  const auto message = oracle_message(spec.requirements);
  if (!message) return;

  CaseFailure failure;
  failure.kind = CaseKind::kSpec;
  failure.index = index;
  failure.case_seed = cs;
  failure.detail = *message;
  failure.reproduce = reproduce_command(options, CaseKind::kSpec, index);
  failure.shrunk_spec = spec.requirements;
  if (options.shrink) {
    failure.shrunk_spec = shrink_spec(
        spec.requirements, [&](const std::vector<ltl::Formula>& requirements) {
          return oracle_message(requirements).has_value();
        });
  }
  failure.shrunk_detail = oracle_message(failure.shrunk_spec).value_or(*message);
  narrate(options, "FAIL spec case " + std::to_string(index) + ": " +
                       failure.shrunk_detail);
  report.failures.push_back(std::move(failure));
}

}  // namespace

RunReport run(const RunOptions& options) {
  RunReport report;
  const int progress_stride = 100;
  // Single-case replay: when either only_* index is set, nothing else
  // runs -- not the other kind's cases either.
  if (options.only_formula_case >= 0 || options.only_spec_case >= 0) {
    if (options.only_formula_case >= 0) {
      run_formula_case(options, options.only_formula_case, report);
    }
    if (options.only_spec_case >= 0) {
      run_spec_case(options, options.only_spec_case, report);
    }
    return report;
  }
  {
    // Keep drawing cases until `formula_cases` formulas were genuinely
    // checked, topping up past tableau-cap skips (bounded attempts so a
    // degenerate configuration -- e.g. a depth/cap combination that skips
    // almost everything -- still terminates; a shortfall is reported, not
    // hidden).
    const int max_attempts = 2 * options.formula_cases + 64;
    for (int i = 0; i < max_attempts &&
                    report.formulas_checked < options.formula_cases;
         ++i) {
      if (static_cast<int>(report.failures.size()) >= options.max_failures) {
        break;
      }
      if (i > 0 && i % progress_stride == 0) {
        narrate(options, "formula case " + std::to_string(i) + "/" +
                             std::to_string(options.formula_cases));
      }
      run_formula_case(options, i, report);
    }
    if (report.formulas_checked < options.formula_cases &&
        static_cast<int>(report.failures.size()) < options.max_failures) {
      narrate(options,
              "WARNING: only " + std::to_string(report.formulas_checked) +
                  " of " + std::to_string(options.formula_cases) +
                  " formula cases checked (" +
                  std::to_string(report.formulas_skipped) +
                  " skipped at the tableau cap); raise max_tableau_nodes or "
                  "lower the formula depth");
    }
  }
  for (int i = 0; i < options.spec_cases; ++i) {
    if (static_cast<int>(report.failures.size()) >= options.max_failures) {
      break;
    }
    run_spec_case(options, i, report);
  }
  return report;
}

std::string describe(const RunReport& report) {
  std::ostringstream out;
  out << report.formulas_checked << " formula case(s)";
  if (report.formulas_skipped > 0) {
    out << " (+" << report.formulas_skipped << " skipped at the tableau cap)";
  }
  out << ", " << report.specs_checked << " spec case(s), "
      << report.failures.size() << " failure(s)\n";
  for (const CaseFailure& failure : report.failures) {
    out << "\n"
        << (failure.kind == CaseKind::kFormula ? "formula" : "spec")
        << " case " << failure.index << " (case seed " << failure.case_seed
        << ")\n"
        << "  property:  " << failure.detail << "\n";
    if (failure.kind == CaseKind::kFormula) {
      out << "  minimized: " << ltl::to_string(failure.shrunk) << "\n";
    } else {
      out << "  minimized:\n";
      for (const ltl::Formula f : failure.shrunk_spec) {
        out << "    " << ltl::to_string(f) << "\n";
      }
    }
    if (failure.shrunk_detail != failure.detail) {
      out << "  which now fails as: " << failure.shrunk_detail << "\n";
    }
    out << "  reproduce: " << failure.reproduce << "\n";
  }
  return out.str();
}

}  // namespace speccc::difftest
