// The differential fuzzing harness: seeded case generation, oracle
// checking, and shrinking, shared by tests/difftest_test.cpp and the
// standalone speccc_fuzz driver.
//
// Reproducibility contract: every case's inputs derive from
// case_seed(master_seed, kind, index) alone, so a failure report's
// `reproduce` field ("speccc_fuzz --seed S --formula-case K") replays
// exactly one case -- generation, oracle randomness, and shrinking
// included -- without re-running the cases before it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "difftest/oracle.hpp"
#include "difftest/random.hpp"

namespace speccc::difftest {

enum class CaseKind { kFormula, kSpec, kPlanted };

struct RunOptions {
  std::uint64_t seed = 1;
  int formula_cases = 500;
  int spec_cases = 50;
  FormulaConfig formula;
  SpecConfig spec;
  OracleOptions oracle;
  bool shrink = true;
  /// Stop after this many failures (shrinking each is expensive).
  int max_failures = 10;
  /// Run only one case of the given index; -1 means all. When either is
  /// set, nothing else runs (the other kind's cases included).
  int only_formula_case = -1;
  int only_spec_case = -1;
  /// Optional progress narration (the fuzz driver passes std::cerr).
  std::ostream* progress = nullptr;
};

struct CaseFailure {
  CaseKind kind = CaseKind::kFormula;
  int index = 0;
  std::uint64_t case_seed = 0;
  std::string detail;          // oracle message for the original case
  std::string reproduce;       // one command to replay exactly this case
  ltl::Formula shrunk;                    // kFormula: minimized formula
  std::vector<ltl::Formula> shrunk_spec;  // kSpec: minimized requirements
  std::string shrunk_detail;   // oracle message for the minimized case
};

struct RunReport {
  int formulas_checked = 0;
  /// Formula cases abandoned because the tableau outgrew
  /// OracleOptions::max_tableau_nodes (reported, never silent).
  int formulas_skipped = 0;
  int specs_checked = 0;
  std::vector<CaseFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Derived per-case seed (splitmix64 of master seed and case index).
[[nodiscard]] std::uint64_t case_seed(std::uint64_t master_seed, CaseKind kind,
                                      int index);

/// The generated requirement texts of spec case `index` under
/// `master_seed` -- the single home of the scale/theme derivation, shared
/// by run(), speccc_batch --generate, and batch_test, so "batch task k ==
/// fuzz spec case k" stays true by construction.
struct GeneratedSpec {
  std::string name;  // "fuzz<index>"
  std::vector<translate::RequirementText> requirements;
};
[[nodiscard]] GeneratedSpec generated_spec(std::uint64_t master_seed,
                                           int index,
                                           const SpecConfig& config = {});

/// Planted-fault spec case `index` under `master_seed`: a consistent base
/// spec with known inconsistent sentence groups woven in (see
/// random.hpp's plant_faults). Its own CaseKind salt, so planted cases
/// never collide with the ordinary spec stream of the same seed. This is
/// the ground-truth workload for the diag localization oracle tests.
[[nodiscard]] PlantedSpec generated_planted_spec(std::uint64_t master_seed,
                                                 int index,
                                                 const FaultConfig& config = {});

/// Run the harness: formula cases first, then spec cases.
[[nodiscard]] RunReport run(const RunOptions& options);

/// Human-readable report: every failure with its minimized form and
/// reproduction command.
[[nodiscard]] std::string describe(const RunReport& report);

}  // namespace speccc::difftest
