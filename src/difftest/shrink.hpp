// Greedy counterexample minimization for the differential oracle harness.
//
// When a cross-check property fails on a random formula (or a generated
// specification), the raw counterexample is usually dozens of nodes of
// noise around a small core. The shrinker repeatedly replaces the failing
// input with a strictly smaller variant that still fails, so reports show
// the minimal disagreement (typically a handful of nodes) instead of the
// original draw.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "ltl/formula.hpp"

namespace speccc::difftest {

/// One-step structural reductions of f, each strictly smaller than f by
/// length(): the constants true/false, every direct subformula, and f with
/// one child replaced by one of that child's own reductions. Sorted by
/// ascending length so greedy search tries the most aggressive cut first.
[[nodiscard]] std::vector<ltl::Formula> shrink_candidates(ltl::Formula f);

/// Predicate over formulas; true means "still fails" (keep shrinking).
/// Must be deterministic: the harness re-seeds the oracle's RNG per call.
using FormulaPredicate = std::function<bool(ltl::Formula)>;

/// Greedy minimization: while some candidate still satisfies `fails`, step
/// to the smallest such candidate. `max_evaluations` bounds the number of
/// predicate calls (each call may re-run a synthesis engine). The result
/// satisfies `fails` whenever the input does.
[[nodiscard]] ltl::Formula shrink_formula(ltl::Formula f,
                                          const FormulaPredicate& fails,
                                          std::size_t max_evaluations = 2000);

/// Predicate over requirement lists; true means "still fails".
using SpecPredicate = std::function<bool(const std::vector<ltl::Formula>&)>;

/// Specification minimization: first greedily drop whole requirements,
/// then shrink each surviving formula in place with shrink_formula. The
/// result satisfies `fails` whenever the input does.
[[nodiscard]] std::vector<ltl::Formula> shrink_spec(
    std::vector<ltl::Formula> spec, const SpecPredicate& fails,
    std::size_t max_evaluations = 2000);

}  // namespace speccc::difftest
