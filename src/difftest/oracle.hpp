// Cross-check properties over the three decision substrates.
//
// The consistency verdict of the paper rests on independent engines
// agreeing: the GPVW tableau decides LTL satisfiability, bounded synthesis
// decides realizability by explicit safety games, and the symbolic engine
// decides it by BDD fixpoints over pattern monitors. The oracle pits them
// against each other and against the textbook lasso semantics of
// ltl/trace.hpp:
//
//   check_formula(f):
//     * a satisfiability witness for f (and for !f) must satisfy the
//       formula under trace evaluation;
//     * f and !f cannot both be unsatisfiable;
//     * for random lassos L: evaluate(f, L) != evaluate(!f, L), a lasso
//       satisfying f refutes "f unsatisfiable", and a lasso refuting f
//       refutes "f valid".
//
//   check_spec(spec, signature):
//     * bounded and symbolic synthesis must not return opposite definite
//       realizability verdicts (kUnknown never counts as disagreement);
//     * every extracted Mealy controller must model-check (synth/verify)
//       against the conjoined specification and each requirement;
//     * controllers replayed on random input lassos must produce traces
//       satisfying every requirement under trace evaluation.
//
// The trace evaluator is injectable so tests can plant a broken substrate
// and watch the harness catch and shrink it.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "difftest/random.hpp"
#include "ltl/formula.hpp"
#include "ltl/trace.hpp"
#include "synth/bounded.hpp"
#include "synth/mealy.hpp"
#include "translate/translator.hpp"

namespace speccc::difftest {

/// Trace-evaluation substrate. Null means ltl::evaluate.
using Evaluator = std::function<bool(ltl::Formula, const ltl::Lasso&)>;

struct OracleOptions {
  /// Random lassos evaluated per formula (tableau vs. trace cross-check).
  int lassos_per_formula = 4;
  /// Give up on a formula case when its tableau exceeds this many nodes:
  /// GPVW is exponential, and a rare adversarial draw (deeply nested W/R)
  /// must not stall the whole run. Skips are counted, never silent.
  std::size_t max_tableau_nodes = 2'000;
  LassoConfig lasso;
  /// Random input replays per extracted controller.
  int replays_per_controller = 2;
  /// Exhaustive model checking (synth/verify) of a controller is an
  /// explicit product construction; controllers above this state count
  /// are checked by random replay only (monitor compositions can reach
  /// tens of thousands of states, where the product no longer terminates
  /// in reasonable time).
  std::size_t max_verify_states = 1'000;
  /// The k and arena caps keep pathological X-chain conjunctions
  /// time-bounded: the bounded engine degrades to kUnknown (never counted
  /// as a disagreement) instead of exploring millions of counter
  /// positions. Generated realizable specs decide at k <= 2 in practice.
  synth::BoundedOptions bounded = {.max_k = 4,
                                   .max_game_positions = 20'000,
                                   .max_ucw_states = 150,
                                   .cancelled = {}};
  Evaluator evaluate;  // test injection point; defaults to ltl::evaluate
};

/// Cross-check one formula. Returns a description of the first violated
/// property, or nullopt when every property holds. Deterministic given the
/// rng state. When the tableau of f or !f exceeds max_tableau_nodes the
/// case is skipped (nullopt) and *skipped, if given, is set.
[[nodiscard]] std::optional<std::string> check_formula(
    ltl::Formula f, util::Rng& rng, const OracleOptions& options = {},
    bool* skipped = nullptr);

/// A realizability test case: requirement formulas plus the input/output
/// signature both synthesis engines must agree on.
struct SpecCase {
  std::vector<ltl::Formula> requirements;
  synth::IoSignature signature;
};

/// Stage-1 pipeline over generated requirement sentences: translate with
/// the builtin lexicon/dictionary, abstract timing constants (so "in 120
/// seconds" does not bury the bounded engine in Next chains), and derive
/// the input/output partition.
[[nodiscard]] SpecCase build_spec_case(
    const std::vector<translate::RequirementText>& texts);

/// Cross-check one specification across both synthesis engines. Returns a
/// description of the first violated property, or nullopt.
[[nodiscard]] std::optional<std::string> check_spec(
    const SpecCase& spec, util::Rng& rng, const OracleOptions& options = {});

}  // namespace speccc::difftest
