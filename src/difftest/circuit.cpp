#include "difftest/circuit.hpp"

#include <sstream>

#include "sat/solver.hpp"
#include "smt/bitblast.hpp"
#include "util/diagnostics.hpp"

namespace speccc::difftest {
namespace {

// One drawn gate: operands index the signal pool (inputs first, then gate
// outputs in creation order), with per-operand complement flags.
struct GateDraw {
  int kind = 0;  // 0 and, 1 or, 2 xor, 3 mux
  std::size_t a = 0, b = 0, c = 0;
  bool na = false, nb = false, nc = false;
};

struct CircuitDraw {
  std::vector<GateDraw> gates;
  std::vector<std::size_t> roots;  // pool indices asserted in order
  std::vector<bool> root_neg;
};

// The whole case derives from the Rng stream up front, so both encoder
// runs replay the identical circuit.
CircuitDraw draw_circuit(util::Rng& rng, const CircuitConfig& config) {
  CircuitDraw draw;
  std::size_t pool = config.inputs;
  for (std::size_t g = 0; g < config.gates; ++g) {
    GateDraw gate;
    gate.kind = static_cast<int>(rng.below(4));
    gate.a = rng.below(pool);
    gate.b = rng.below(pool);
    gate.c = rng.below(pool);
    gate.na = rng.chance(1, 2);
    gate.nb = rng.chance(1, 2);
    gate.nc = rng.chance(1, 2);
    draw.gates.push_back(gate);
    ++pool;
  }
  for (std::size_t r = 0; r < config.roots; ++r) {
    // Bias roots toward late gates so the asserted cones are deep.
    const std::size_t lo = pool > pool / 4 ? pool - pool / 4 : 0;
    draw.roots.push_back(lo + rng.below(pool - lo));
    draw.root_neg.push_back(rng.chance(1, 2));
  }
  return draw;
}

struct EncoderRun {
  std::vector<sat::Result> results;  // one per assertion round
  std::vector<std::string> replay_errors;
  std::size_t clauses = 0;
  std::size_t vars = 0;
};

EncoderRun run_encoder(const CircuitDraw& draw, const CircuitConfig& config,
                       aig::CnfOptions::Encoder encoder) {
  sat::Solver solver;
  smt::BuilderOptions options;
  options.cnf.encoder = encoder;
  smt::Builder builder(solver, options);

  std::vector<smt::Bit> pool;
  pool.reserve(config.inputs + draw.gates.size());
  for (std::size_t i = 0; i < config.inputs; ++i) {
    pool.push_back(builder.fresh());
  }
  for (const GateDraw& gate : draw.gates) {
    const smt::Bit a = gate.na ? pool[gate.a].negated() : pool[gate.a];
    const smt::Bit b = gate.nb ? pool[gate.b].negated() : pool[gate.b];
    const smt::Bit c = gate.nc ? pool[gate.c].negated() : pool[gate.c];
    switch (gate.kind) {
      case 0: pool.push_back(builder.land(a, b)); break;
      case 1: pool.push_back(builder.lor(a, b)); break;
      case 2: pool.push_back(builder.lxor(a, b)); break;
      default: pool.push_back(builder.mux(a, b, c)); break;
    }
  }

  EncoderRun run;
  for (std::size_t r = 0; r < draw.roots.size(); ++r) {
    const smt::Bit root = draw.root_neg[r] ? pool[draw.roots[r]].negated()
                                           : pool[draw.roots[r]];
    builder.require(root);
    const sat::Result result = builder.solve();
    run.results.push_back(result);
    if (result == sat::Result::kSat) {
      // Model replay: evaluate the circuit under the solver's PI
      // assignment. Every asserted root so far must come out true.
      for (std::size_t k = 0; k <= r; ++k) {
        const smt::Bit earlier = draw.root_neg[k]
                                     ? pool[draw.roots[k]].negated()
                                     : pool[draw.roots[k]];
        if (!builder.value(earlier)) {
          run.replay_errors.push_back(
              "model fails circuit replay of assertion " + std::to_string(k) +
              " after round " + std::to_string(r));
        }
      }
    }
    if (result == sat::Result::kUnsat) break;  // later rounds stay UNSAT
  }
  run.clauses = builder.cnf_stats().clauses;
  run.vars = builder.cnf_stats().vars;
  return run;
}

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::optional<std::string> check_circuit(std::uint64_t case_seed,
                                         const CircuitConfig& config) {
  util::Rng rng(case_seed);
  const CircuitDraw draw = draw_circuit(rng, config);
  const EncoderRun mapped =
      run_encoder(draw, config, aig::CnfOptions::Encoder::kCutMap);
  const EncoderRun tseitin =
      run_encoder(draw, config, aig::CnfOptions::Encoder::kTseitin);

  std::ostringstream problems;
  if (mapped.results != tseitin.results) {
    problems << "encoders disagree:";
    for (std::size_t r = 0;
         r < std::max(mapped.results.size(), tseitin.results.size()); ++r) {
      const auto name = [](const EncoderRun& run, std::size_t i) {
        if (i >= run.results.size()) return std::string("-");
        return std::string(run.results[i] == sat::Result::kSat ? "sat"
                                                               : "unsat");
      };
      problems << " round" << r << "=(mapped " << name(mapped, r)
               << ", tseitin " << name(tseitin, r) << ")";
    }
    problems << "; ";
  }
  for (const std::string& error : mapped.replay_errors) {
    problems << "mapped: " << error << "; ";
  }
  for (const std::string& error : tseitin.replay_errors) {
    problems << "tseitin: " << error << "; ";
  }
  const std::string text = problems.str();
  if (text.empty()) return std::nullopt;
  return text + "(mapped " + std::to_string(mapped.vars) + "v/" +
         std::to_string(mapped.clauses) + "c, tseitin " +
         std::to_string(tseitin.vars) + "v/" + std::to_string(tseitin.clauses) +
         "c)";
}

CircuitReport run_circuits(std::uint64_t master_seed, int cases,
                           const CircuitConfig& config, int only_case) {
  CircuitReport report;
  for (int i = 0; i < cases; ++i) {
    if (only_case >= 0 && i != only_case) continue;
    // Same salted-splitmix discipline as harness case_seed(), with a
    // circuit-lane salt so circuit cases never collide with the formula
    // or spec streams of the same master seed.
    const std::uint64_t cs =
        mix(master_seed +
            0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(i) + 1) +
            0x63697263756974ULL);
    ++report.checked;
    if (const auto failure = check_circuit(cs, config)) {
      CircuitFailure f;
      f.index = i;
      f.case_seed = cs;
      f.detail = *failure;
      f.reproduce = "speccc_fuzz --seed " + std::to_string(master_seed) +
                    " --circuit-case " + std::to_string(i);
      report.failures.push_back(std::move(f));
    }
  }
  return report;
}

std::string describe(const CircuitReport& report) {
  std::ostringstream out;
  out << report.checked << " circuit case(s), " << report.failures.size()
      << " failure(s)\n";
  for (const CircuitFailure& failure : report.failures) {
    out << "\ncircuit case " << failure.index << " (case seed "
        << failure.case_seed << ")\n"
        << "  property:  " << failure.detail << "\n"
        << "  reproduce: " << failure.reproduce << "\n";
  }
  return out.str();
}

}  // namespace speccc::difftest
