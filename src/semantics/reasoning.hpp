// Semantic reasoning over specifications (paper Section IV-D, Algorithm 1)
// and the proposition-reduction decisions derived from it.
//
// Algorithm 1, faithfully: antonym candidates (adjectives/adverbs) are
// grouped by the subject they depend on; within each group of size > 1 the
// dictionary is consulted (falling back to the injectable `online` resolver
// for unknown words) and semantically contrasting words are paired. Words
// are colored green (no antonym found in the group) or blue (paired).
//
// Proposition reduction: the appendix abbreviates any dictionary-polarized
// candidate against its subject -- available_pulse_wave becomes pulse_wave,
// unavailable/lost/not-valid become the negation. Blue-paired words always
// reduce (that is Algorithm 1's purpose); in addition, a candidate whose
// polarity the dictionary already knows reduces even when its partner never
// occurs in the specification ("Air Ok signal remains low" => !air_ok_signal
// without "high"/"ok" appearing as a complement anywhere). This
// polarity-driven extension is required to reproduce the paper's appendix
// and is flagged by Reduction::by_polarity_only.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "nlp/syntax.hpp"
#include "semantics/antonyms.hpp"

namespace speccc::semantics {

enum class Color { kGreen, kBlue };

struct WordInfo {
  std::set<std::string> antonyms;  // from the dictionary / online resolver
  Color color = Color::kGreen;
};

struct ReasoningResult {
  /// subject -> its antonym candidates (the paper's `subject` map).
  std::map<std::string, std::set<std::string>> subjects;
  /// candidate word -> info (the paper's `wordset`).
  std::map<std::string, WordInfo> wordset;
  /// Pairs (positive, negative) discovered inside some subject group.
  std::vector<std::pair<std::string, std::string>> pairs;
  /// Number of calls to the external resolver (the paper's online lookups).
  std::size_t resolver_calls = 0;
};

/// Algorithm 1 over a parsed specification. `online` resolves words missing
/// from the dictionary; pass nullptr to disable external lookup.
[[nodiscard]] ReasoningResult reason(const std::vector<nlp::Sentence>& spec,
                                     const AntonymDictionary& dictionary,
                                     const AntonymResolver& online = nullptr);

/// How a candidate word combines into its subject's proposition.
struct Reduction {
  bool fold = false;    // word disappears from the proposition name
  bool negate = false;  // word contributes a logical negation
  bool by_polarity_only = false;  // reduced without a partner in the spec
};

/// Reduction decisions derived from a reasoning result.
class PropositionReducer {
 public:
  PropositionReducer(ReasoningResult reasoning, const AntonymDictionary& dictionary);

  /// Decision for `word` occurring as a candidate on `subject`.
  [[nodiscard]] Reduction decide(const std::string& subject,
                                 const std::string& word) const;

  [[nodiscard]] const ReasoningResult& reasoning() const { return reasoning_; }

 private:
  ReasoningResult reasoning_;
  const AntonymDictionary& dictionary_;
};

}  // namespace speccc::semantics
