// Antonym dictionary (paper Section IV-D).
//
// The paper looks antonyms up in "an antonym dictionary specified by users",
// falling back to online lookup. We ship an offline dictionary seeded with
// the corpus vocabulary; the lookup function is injectable so tests can
// model the online path (including its failure modes).
//
// Each pair carries a polarity: the paper chooses the positive form
// "randomly"; we make the choice deterministic (the first element of every
// registered pair is positive) so that translations are reproducible --
// documented deviation, same semantics.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>

namespace speccc::semantics {

enum class Polarity { kPositive, kNegative, kUnknown };

class AntonymDictionary {
 public:
  /// Dictionary covering the CARA / TELEPROMISE / robot corpora.
  static AntonymDictionary builtin();

  AntonymDictionary() = default;

  /// Register a pair; `positive` becomes the positive form. A word may
  /// participate in several pairs ("low" vs "high" and vs "ok"), but its
  /// polarity must stay consistent; contradictions throw InvalidInputError.
  void add_pair(const std::string& positive, const std::string& negative);

  [[nodiscard]] bool contains(const std::string& word) const;
  [[nodiscard]] std::set<std::string> antonyms(const std::string& word) const;
  [[nodiscard]] Polarity polarity(const std::string& word) const;

  /// The positive form associated with a word (itself if positive, its
  /// first registered antonym if negative). Empty for unknown words.
  [[nodiscard]] std::string positive_form(const std::string& word) const;

 private:
  std::map<std::string, std::set<std::string>> antonyms_;
  std::map<std::string, Polarity> polarity_;
};

/// Signature of an external (e.g. online) antonym resolver, Algorithm 1's
/// `online(w)`.
using AntonymResolver = std::function<std::set<std::string>(const std::string&)>;

}  // namespace speccc::semantics
