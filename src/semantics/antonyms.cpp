#include "semantics/antonyms.hpp"

#include "util/diagnostics.hpp"

namespace speccc::semantics {

void AntonymDictionary::add_pair(const std::string& positive,
                                 const std::string& negative) {
  if (positive == negative) {
    throw util::InvalidInputError("a word cannot be its own antonym: " + positive);
  }
  const auto set_polarity = [this](const std::string& word, Polarity p) {
    const auto it = polarity_.find(word);
    if (it != polarity_.end() && it->second != p) {
      throw util::InvalidInputError("contradictory polarity for '" + word +
                                    "' in antonym dictionary");
    }
    polarity_[word] = p;
  };
  set_polarity(positive, Polarity::kPositive);
  set_polarity(negative, Polarity::kNegative);
  antonyms_[positive].insert(negative);
  antonyms_[negative].insert(positive);
}

bool AntonymDictionary::contains(const std::string& word) const {
  return polarity_.count(word) > 0;
}

std::set<std::string> AntonymDictionary::antonyms(const std::string& word) const {
  const auto it = antonyms_.find(word);
  return it == antonyms_.end() ? std::set<std::string>{} : it->second;
}

Polarity AntonymDictionary::polarity(const std::string& word) const {
  const auto it = polarity_.find(word);
  return it == polarity_.end() ? Polarity::kUnknown : it->second;
}

std::string AntonymDictionary::positive_form(const std::string& word) const {
  switch (polarity(word)) {
    case Polarity::kPositive:
      return word;
    case Polarity::kNegative: {
      const auto& anto = antonyms_.at(word);
      speccc_check(!anto.empty(), "negative word with no antonyms");
      return *anto.begin();
    }
    case Polarity::kUnknown:
      return "";
  }
  return "";
}

AntonymDictionary AntonymDictionary::builtin() {
  AntonymDictionary dict;
  // CARA vocabulary (appendix): these pairs drive the appendix reductions --
  // available pulse wave -> pulse_wave, unavailable -> !pulse_wave, etc.
  // Note "ready", "clear" and "operational" are deliberately absent: the
  // appendix keeps ready_infusate, clear_occlusion_line, operational_cara.
  dict.add_pair("available", "unavailable");
  dict.add_pair("available", "lost");
  dict.add_pair("valid", "invalid");
  dict.add_pair("ok", "low");
  dict.add_pair("high", "low");
  dict.add_pair("enabled", "disabled");
  // TELEPROMISE / robot / generator vocabulary.
  dict.add_pair("online", "offline");
  dict.add_pair("open", "closed");
  dict.add_pair("present", "absent");
  dict.add_pair("visible", "hidden");
  dict.add_pair("active", "inactive");
  dict.add_pair("connected", "disconnected");
  return dict;
}

}  // namespace speccc::semantics
