#include "semantics/reasoning.hpp"

#include <algorithm>

#include "nlp/dependency.hpp"
#include "util/diagnostics.hpp"

namespace speccc::semantics {

ReasoningResult reason(const std::vector<nlp::Sentence>& spec,
                       const AntonymDictionary& dictionary,
                       const AntonymResolver& online) {
  ReasoningResult result;

  // Line 2 of Algorithm 1: extract the dependency relation; candidates start
  // green with empty antonym sets.
  for (const nlp::Sentence& sentence : spec) {
    for (const auto& [subject, dependents] : nlp::subject_dependents(sentence)) {
      auto& group = result.subjects[subject];
      for (const std::string& w : dependents) {
        group.insert(w);
        result.wordset.emplace(w, WordInfo{});
      }
    }
  }

  // Main loop: only groups with more than one candidate can contain a pair.
  for (auto& [subject, group] : result.subjects) {
    if (group.size() <= 1) continue;
    for (const std::string& w : group) {
      WordInfo& info = result.wordset.at(w);
      // Lines 4-5: fetch antonyms on first touch (dictionary, then online).
      if (info.antonyms.empty()) {
        info.antonyms = dictionary.antonyms(w);
        if (info.antonyms.empty() && online != nullptr) {
          ++result.resolver_calls;
          info.antonyms = online(w);
        }
      }
      // Line 6: intersect with the group.
      std::set<std::string> hits;
      std::set_intersection(group.begin(), group.end(), info.antonyms.begin(),
                            info.antonyms.end(),
                            std::inserter(hits, hits.begin()));
      if (hits.empty()) continue;
      // Lines 7-9: color the pair blue and complete the symmetric antonym
      // information.
      info.color = Color::kBlue;
      for (const std::string& partner : hits) {
        WordInfo& pinfo = result.wordset.at(partner);
        pinfo.color = Color::kBlue;
        pinfo.antonyms.insert(w);
        // Record the pair once, ordered (positive, negative) when the
        // dictionary knows the polarity, lexicographically otherwise.
        std::string pos = w;
        std::string neg = partner;
        if (dictionary.polarity(w) == Polarity::kNegative ||
            dictionary.polarity(partner) == Polarity::kPositive) {
          std::swap(pos, neg);
        } else if (dictionary.polarity(w) == Polarity::kUnknown && neg < pos) {
          std::swap(pos, neg);
        }
        const auto pair = std::make_pair(pos, neg);
        if (std::find(result.pairs.begin(), result.pairs.end(), pair) ==
            result.pairs.end()) {
          result.pairs.push_back(pair);
        }
      }
    }
  }
  return result;
}

PropositionReducer::PropositionReducer(ReasoningResult reasoning,
                                       const AntonymDictionary& dictionary)
    : reasoning_(std::move(reasoning)), dictionary_(dictionary) {}

Reduction PropositionReducer::decide(const std::string& subject,
                                     const std::string& word) const {
  Reduction out;

  // Blue-colored words (paired within this or another subject group) always
  // reduce; polarity decides the sign.
  const auto info = reasoning_.wordset.find(word);
  const bool blue = info != reasoning_.wordset.end() &&
                    info->second.color == Color::kBlue;

  const Polarity polarity = dictionary_.polarity(word);
  if (polarity == Polarity::kUnknown) {
    // Unknown to the dictionary: only reducible when Algorithm 1 paired it
    // and an ordered pair exists; sign = second element of its pair.
    if (!blue) return out;
    for (const auto& [pos, neg] : reasoning_.pairs) {
      if (pos == word) {
        out.fold = true;
        return out;
      }
      if (neg == word) {
        out.fold = true;
        out.negate = true;
        return out;
      }
    }
    return out;
  }

  // Dictionary-polarized candidates reduce unconditionally (the appendix's
  // abbreviation rule). Flag the ones Algorithm 1 alone would not have
  // caught.
  out.fold = true;
  out.negate = polarity == Polarity::kNegative;
  out.by_polarity_only = !blue;
  (void)subject;
  return out;
}

}  // namespace speccc::semantics
