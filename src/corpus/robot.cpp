#include "corpus/robot.hpp"

#include <cctype>

#include "util/diagnostics.hpp"

namespace speccc::corpus {

namespace {

std::string subject(int robots, int robot) {
  return robots == 1 ? "the robot" : "robot " + std::to_string(robot);
}

std::string room(int i) { return "room " + std::to_string(i); }

}  // namespace

RobotSpec robot_spec(int robots, int rooms) {
  speccc_check(robots == 1 || robots == 2, "one or two robots");
  speccc_check(rooms >= 2, "at least two rooms");

  RobotSpec spec;
  spec.robots = robots;
  spec.rooms = rooms;
  spec.name = (robots == 1 ? "A robot with " : "Two robots with ") +
              std::to_string(rooms) + " rooms";

  int id = 0;
  const auto add = [&spec, &id](const std::string& text) {
    spec.requirements.push_back({"Robot-" + std::to_string(++id), text});
  };

  // Movement on a ring of rooms: stay or advance.
  for (int r = 1; r <= robots; ++r) {
    for (int i = 1; i <= rooms; ++i) {
      const int succ = i % rooms + 1;
      add("If " + subject(robots, r) + " is in " + room(i) + ", next " +
          subject(robots, r) + " is in " + room(i) + " or " + room(succ) + ".");
    }
  }
  // Mutual exclusion (two robots only): "two robots cannot be in the same
  // room at the same time".
  if (robots == 2) {
    for (int i = 1; i <= rooms; ++i) {
      add("If robot 1 is in " + room(i) + ", robot 2 is not in " + room(i) + ".");
    }
  }
  // Aliveness: each robot is somewhere.
  for (int r = 1; r <= robots; ++r) {
    std::string text = subject(robots, r) + " is in " + room(1);
    // Capitalize the sentence start.
    text[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(text[0])));
    for (int i = 2; i <= rooms; ++i) text += " or " + room(i);
    add(text + ".");
  }
  // Search and rescue.
  add("If the injured person is visible, eventually the injured person is "
      "carried.");
  add("When the injured person is carried, eventually " + subject(robots, 1) +
      " is in " + room(1) + ".");
  add("If the medic is ready, eventually " + subject(robots, 1) + " is in " +
      room(2) + ".");
  if (robots == 1) {
    // One patrol existence obligation (the farthest room).
    add("Eventually the robot is in " + room(rooms > 2 ? 3 : 2) + ".");
  } else {
    // Robot 2 must eventually visit every room.
    for (int i = 1; i <= rooms; ++i) {
      add("Eventually robot 2 is in " + room(i) + ".");
    }
  }
  return spec;
}

std::vector<RobotSpec> robot_specs() {
  std::vector<RobotSpec> out;
  RobotSpec a = robot_spec(1, 4);
  a.table_formulas = 9;
  a.table_inputs = 2;
  a.table_outputs = 5;
  a.table_seconds = 1.0;
  out.push_back(std::move(a));

  RobotSpec b = robot_spec(1, 9);
  b.table_formulas = 14;
  b.table_inputs = 2;
  b.table_outputs = 10;
  b.table_seconds = 1.0;
  out.push_back(std::move(b));

  RobotSpec c = robot_spec(2, 5);
  c.table_formulas = 25;
  c.table_inputs = 2;
  c.table_outputs = 11;
  c.table_seconds = 7.0;
  out.push_back(std::move(c));
  return out;
}

}  // namespace speccc::corpus
