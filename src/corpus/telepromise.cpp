#include "corpus/telepromise.hpp"

#include "corpus/generator.hpp"
#include "util/diagnostics.hpp"

namespace speccc::corpus {

namespace {

/// Append the partition trap: a status proposition occurring only in
/// antecedents (hence classified input) that the system must actually
/// control for the specification to be realizable.
///
/// Adds 3 requirements, 2 heuristic-inputs (the trap variable + one fresh
/// button) and 2 outputs. The trap variable appears in two antecedents so
/// the refiner's occurrence ranking targets it first.
void append_trap(std::vector<translate::RequirementText>& spec,
                 const std::string& name, const std::string& trap_subject,
                 const std::string& button, const std::string& out_a,
                 const std::string& out_b) {
  spec.push_back({name + "-trap-1", "If the " + trap_subject +
                                        " is active, the " + out_a +
                                        " is stored."});
  spec.push_back({name + "-trap-2", "If the " + trap_subject +
                                        " is active, the " + out_b +
                                        " is displayed."});
  spec.push_back({name + "-trap-3", "If the " + button +
                                        " is pressed, the " + out_a +
                                        " is not stored."});
}

}  // namespace

std::vector<TeleSpec> telepromise_specs() {
  std::vector<TeleSpec> out;
  const Theme theme = application_theme();

  // Published Table I scales: name, formulas, in, out, seconds.
  // Shopping 29/11/24 (8s), Article processing 17/3/13 (1s),
  // On-line reservation 6/3/4 (1s), Information 15/8/14 (1s),
  // Local bulletin board 17/7/16 (1s).
  {
    TeleSpec s;
    s.name = "Shopping";
    s.table_formulas = 29;
    s.table_inputs = 11;
    s.table_outputs = 24;
    s.table_seconds = 8.0;
    SpecScale scale{"TELE-Shop", 29, 11, 24, /*seed=*/101,
                    /*response_percent=*/25, /*timed_percent=*/15};
    s.requirements = generate_spec(scale, theme);
    out.push_back(std::move(s));
  }
  {
    TeleSpec s;
    s.name = "Article processing";
    s.table_formulas = 17;
    s.table_inputs = 3;
    s.table_outputs = 13;
    s.table_seconds = 1.0;
    SpecScale scale{"TELE-Article", 17, 3, 13, 102, 10, 10};
    s.requirements = generate_spec(scale, theme);
    out.push_back(std::move(s));
  }
  {
    TeleSpec s;
    s.name = "On-line reservation";
    s.table_formulas = 6;
    s.table_inputs = 3;
    s.table_outputs = 4;
    s.table_seconds = 1.0;
    SpecScale scale{"TELE-Reserve", 6, 3, 4, 103, 15, 15};
    s.requirements = generate_spec(scale, theme);
    out.push_back(std::move(s));
  }
  {
    // Partition trap: generator covers 15-3 = 12 formulas, 8-1 = 7 inputs,
    // 14-3 = 11 outputs; the trap adds 3 formulas, inputs {session(trap),
    // reset button} and outputs {draft archive, editor panel}. After the
    // refinement flip the final partition matches the published 8/14.
    TeleSpec s;
    s.name = "Information";
    s.table_formulas = 15;
    s.table_inputs = 8;
    s.table_outputs = 14;
    s.table_seconds = 1.0;
    s.partition_trap = true;
    SpecScale scale{"TELE-Info", 12, 7, 11, 104, 10, 10};
    s.requirements = generate_spec(scale, theme);
    append_trap(s.requirements, "TELE-Info", "session", "reset button",
                "draft archive", "editor panel");
    out.push_back(std::move(s));
  }
  {
    TeleSpec s;
    s.name = "Local bulletin board";
    s.table_formulas = 17;
    s.table_inputs = 7;
    s.table_outputs = 16;
    s.table_seconds = 1.0;
    s.partition_trap = true;
    SpecScale scale{"TELE-Board", 14, 6, 13, 105, 10, 10};
    s.requirements = generate_spec(scale, theme);
    append_trap(s.requirements, "TELE-Board", "channel", "moderator button",
                "posting ledger", "board banner");
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace speccc::corpus
