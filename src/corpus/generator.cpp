#include "corpus/generator.hpp"

#include <algorithm>

#include "util/diagnostics.hpp"

namespace speccc::corpus {

Theme device_theme() {
  Theme t;
  t.nouns = {"pump",   "valve",  "sensor", "line",    "signal", "monitor",
             "button", "alarm",  "reading", "source",  "rate",   "status",
             "mode",   "battery", "supply", "detector", "light",  "door"};
  t.input_verbs = {"pressed", "detected", "received", "selected", "requested",
                   "measured"};
  t.output_verbs = {"triggered", "displayed", "issued", "updated",
                    "raised",    "activated", "sent",   "confirmed"};
  return t;
}

Theme application_theme() {
  Theme t;
  t.nouns = {"order",   "cart",    "item",    "page",    "account", "payment",
             "card",    "catalog", "request", "message", "notice",  "session",
             "query",   "record",  "review",  "draft",   "seat",    "ticket",
             "posting", "schedule"};
  t.input_verbs = {"pressed", "submitted", "received", "selected", "requested",
                   "detected"};
  t.output_verbs = {"displayed", "confirmed", "sent",   "updated",
                    "stored",    "issued",    "queued", "posted"};
  return t;
}

namespace {

struct PropPhrase {
  std::string determiner_noun;  // "the order button"
  std::string verb;             // "pressed"
};

/// Distinct noun phrases: single nouns first, then pairs.
std::vector<std::string> noun_phrases(const Theme& theme, std::size_t count,
                                      util::Rng& rng) {
  std::vector<std::string> out;
  const auto& nouns = theme.nouns;
  for (std::size_t i = 0; i < nouns.size() && out.size() < count; ++i) {
    out.push_back(nouns[i]);
  }
  for (std::size_t i = 0; out.size() < count; ++i) {
    const std::size_t a = i % nouns.size();
    const std::size_t b = (i / nouns.size() + a + 1) % nouns.size();
    if (a == b) continue;
    out.push_back(nouns[a] + " " + nouns[b]);
  }
  // Shuffle deterministically for variety across seeds.
  for (std::size_t i = out.size(); i > 1; --i) {
    std::swap(out[i - 1], out[rng.below(i)]);
  }
  return out;
}

}  // namespace

std::vector<translate::RequirementText> generate_spec(const SpecScale& scale,
                                                      const Theme& theme) {
  if (scale.formulas <= 0 || scale.inputs <= 0 || scale.outputs <= 0) {
    throw util::InvalidInputError("spec scale must be positive");
  }
  if (scale.inputs > 3 * scale.formulas) {
    throw util::InvalidInputError(
        "too many inputs for the formula budget (max 3 per requirement)");
  }
  if (scale.outputs > 2 * scale.formulas) {
    throw util::InvalidInputError(
        "too many outputs for the formula budget (max 2 per requirement)");
  }

  util::Rng rng(scale.seed * 0x9e3779b97f4a7c15ULL + 17);

  // Build distinct input and output phrases. A proposition's identity is
  // verb_nounphrase, so phrases must not repeat a (verb, noun) combination.
  const auto in_nps = noun_phrases(theme, static_cast<std::size_t>(scale.inputs), rng);
  const auto out_nps = noun_phrases(theme, static_cast<std::size_t>(scale.outputs), rng);
  std::vector<PropPhrase> inputs;
  std::vector<PropPhrase> outputs;
  for (int i = 0; i < scale.inputs; ++i) {
    inputs.push_back({"the " + in_nps[static_cast<std::size_t>(i)],
                      theme.input_verbs[static_cast<std::size_t>(i) %
                                        theme.input_verbs.size()]});
  }
  for (int i = 0; i < scale.outputs; ++i) {
    outputs.push_back({"the " + out_nps[static_cast<std::size_t>(i)],
                       theme.output_verbs[static_cast<std::size_t>(i) %
                                          theme.output_verbs.size()]});
  }

  // The last output is reserved for negative consequents only (never forced
  // positive), keeping the specification realizable.
  const std::size_t negative_only =
      outputs.size() > 3 ? outputs.size() - 1 : outputs.size();

  std::vector<translate::RequirementText> spec;
  std::size_t next_input = 0;
  std::size_t next_output = 0;
  const std::vector<unsigned> deadlines = {5, 10, 30, 60, 120};

  for (int f = 0; f < scale.formulas; ++f) {
    const int remaining = scale.formulas - f;
    const std::size_t inputs_left = inputs.size() - next_input;
    const std::size_t outputs_left = outputs.size() - next_output;

    // How many fresh inputs/outputs this requirement must absorb to fit the
    // budget.
    std::size_t k_in = (inputs_left + static_cast<std::size_t>(remaining) - 1) /
                       static_cast<std::size_t>(remaining);
    k_in = std::clamp<std::size_t>(k_in, 1, 3);
    std::size_t k_out = (outputs_left + static_cast<std::size_t>(remaining) - 1) /
                        static_cast<std::size_t>(remaining);
    k_out = std::clamp<std::size_t>(k_out, 1, 2);

    const auto take_input = [&]() -> const PropPhrase& {
      if (next_input < inputs.size()) return inputs[next_input++];
      return inputs[rng.below(inputs.size())];
    };
    const auto take_output = [&](bool allow_negative_slot) -> std::size_t {
      if (next_output < outputs.size()) return next_output++;
      // Reuse, avoiding the negative-only slot for positive consequents.
      const std::size_t limit =
          allow_negative_slot ? outputs.size() : negative_only;
      return rng.below(limit);
    };

    // Response and timed obligations only combine with a single consequent:
    // the pattern fragment (and the paper's templates) attach F / X^n to the
    // whole consequent.
    const bool response = k_out == 1 && rng.below(100) < scale.response_percent;
    const bool timed =
        k_out == 1 && !response && rng.below(100) < scale.timed_percent;

    std::string text = response ? "When " : "If ";
    for (std::size_t k = 0; k < k_in; ++k) {
      const PropPhrase& in = take_input();
      if (k > 0) text += ", and ";
      text += in.determiner_noun + " is " + in.verb;
    }
    text += ", ";

    for (std::size_t k = 0; k < k_out; ++k) {
      std::size_t oi = take_output(/*allow_negative_slot=*/true);
      const bool negative = oi >= negative_only;
      if (k > 0) text += " and ";
      if (k == 0 && response) text += "eventually ";
      text += outputs[oi].determiner_noun + " is " +
              (negative ? "not " : "") + outputs[oi].verb;
    }
    if (timed) {
      text += " in " +
              std::to_string(deadlines[rng.below(deadlines.size())]) +
              " seconds";
    }
    text += ".";
    spec.push_back({scale.name + "-" + std::to_string(f + 1), text});
  }
  return spec;
}

}  // namespace speccc::corpus
