// The rescue-robot scenario (paper Section VI, third case study), modified
// from Kress-Gazit et al. [10]: robots patrol a row of rooms, search for an
// injured person, and deliver them to a medic, with the constraint that two
// robots cannot be in the same room at the same time.
//
// Generated at the three Table I scales:
//   1 robot / 4 rooms   ->  9 formulas, 2 in,  5 out
//   1 robot / 9 rooms   -> 14 formulas, 2 in, 10 out
//   2 robots / 5 rooms  -> 25 formulas, 2 in, 11 out
//
// Unlike the CARA corpus this one is translated in strict Next mode: the
// movement requirements ("next the robot is in room i or room i+1") encode
// the room-graph dynamics with a real X operator.
#pragma once

#include <string>
#include <vector>

#include "translate/translator.hpp"

namespace speccc::corpus {

struct RobotSpec {
  std::string name;
  int robots = 0;
  int rooms = 0;
  std::vector<translate::RequirementText> requirements;
  int table_formulas = 0;
  int table_inputs = 0;
  int table_outputs = 0;
  double table_seconds = 0.0;
};

/// One scenario. rooms >= 2; robots in {1, 2}.
[[nodiscard]] RobotSpec robot_spec(int robots, int rooms);

/// The three Table I rows.
[[nodiscard]] std::vector<RobotSpec> robot_specs();

}  // namespace speccc::corpus
