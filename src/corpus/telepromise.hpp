// The TELEPROMISE case study (paper Section VI).
//
// Five generic applications: Shopping, Article processing, On-line
// reservation, Information, Local bulletin board. The functional
// specification itself is no longer archived (the paper's URL is dead), so
// the specifications are regenerated at exactly Table I's scale with the
// web-application theme.
//
// The paper reports that G4LTL failed on the last two specifications
// because of the input/output variable classification, and that after
// adjusting the partition they became consistent. The Information and
// Bulletin-board specifications therefore embed a partition trap: a
// system-controlled status proposition ("the session is active") that the
// Section IV-F heuristics classify as input because it only ever occurs in
// antecedents. With it misclassified the specification is unrealizable; the
// refinement stage flips it to an output and consistency is restored,
// reproducing the published behaviour. Table I's (in, out) counts are met
// after the flip.
#pragma once

#include <string>
#include <vector>

#include "translate/translator.hpp"

namespace speccc::corpus {

struct TeleSpec {
  std::string name;
  std::vector<translate::RequirementText> requirements;
  int table_formulas = 0;
  int table_inputs = 0;   // published counts (post-adjustment for traps)
  int table_outputs = 0;
  double table_seconds = 0.0;  // the paper's reported time
  bool partition_trap = false;  // initially unrealizable, fixed by refinement
};

/// All five TELEPROMISE application specifications (Table I / TELE).
[[nodiscard]] std::vector<TeleSpec> telepromise_specs();

}  // namespace speccc::corpus
