// Seeded structured-English specification generator.
//
// The paper evaluates 13 CARA component specifications and 5 TELEPROMISE
// application specifications whose texts are not publicly archived; Table I
// only reports their scale (#formulas, #inputs, #outputs). This generator
// reproduces that scale exactly: given a target (F, I, O) and a vocabulary
// theme it emits F grammatical requirement sentences that translate to
// exactly I input propositions and O output propositions under the
// Section IV-F partition heuristics.
//
// Construction invariants:
//   * input propositions appear only in antecedents (passive sensor events:
//     "the order button is pressed");
//   * output propositions appear in consequents (and sometimes antecedents,
//     exercising the conflict-resolution rule, which keeps them outputs);
//   * consequents are positive except for dedicated negative-only outputs,
//     so every generated specification is realizable by construction;
//   * a configurable fraction of requirements are response ("eventually")
//     or timed ("in N seconds") obligations, driving the Buechi/monitor
//     machinery exactly like the paper's expensive rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "translate/translator.hpp"

namespace speccc::corpus {

struct Theme {
  /// Nouns combined pairwise into distinct noun phrases.
  std::vector<std::string> nouns;
  /// Past participles for input events ("pressed", "received", ...).
  std::vector<std::string> input_verbs;
  /// Past participles for output actions ("displayed", "triggered", ...).
  std::vector<std::string> output_verbs;
};

/// A generic embedded-controller theme and a web-application theme.
[[nodiscard]] Theme device_theme();
[[nodiscard]] Theme application_theme();

struct SpecScale {
  std::string name;
  int formulas = 0;
  int inputs = 0;
  int outputs = 0;
  std::uint64_t seed = 1;
  /// Fraction (percent) of requirements carrying an F obligation.
  unsigned response_percent = 10;
  /// Fraction (percent) of requirements carrying an "in N seconds" deadline.
  unsigned timed_percent = 10;
};

/// Generate a specification at exactly the given scale.
[[nodiscard]] std::vector<translate::RequirementText> generate_spec(
    const SpecScale& scale, const Theme& theme);

}  // namespace speccc::corpus
