// Text-format loaders so downstream users can extend the vocabulary and
// check their own requirement documents without recompiling.
//
// Requirement files: one requirement sentence per line; blank lines and
// lines starting with '#' are ignored. A line of the form "id: sentence"
// sets an explicit identifier, otherwise "L<line-number>" is used.
//
// Lexicon extension files: lines "word <pos>" with pos in {noun, verb,
// adjective, adverb}; verbs register a lemma (inflections come from
// morphology).
//
// Antonym dictionary files: lines "positive negative".
#pragma once

#include <istream>
#include <vector>

#include "nlp/lexicon.hpp"
#include "semantics/antonyms.hpp"
#include "translate/translator.hpp"

namespace speccc::corpus {

/// Parse a requirement document. Throws util::ParseError on malformed lines.
[[nodiscard]] std::vector<translate::RequirementText> load_requirements(
    std::istream& in);

/// Extend a lexicon from a word list. Throws util::ParseError on unknown
/// part-of-speech tags.
void load_lexicon(std::istream& in, nlp::Lexicon& lexicon);

/// Extend an antonym dictionary from pair lines. Propagates
/// util::InvalidInputError on contradictory polarities.
void load_antonyms(std::istream& in, semantics::AntonymDictionary& dictionary);

}  // namespace speccc::corpus
