#include "corpus/cara.hpp"

#include "corpus/generator.hpp"

namespace speccc::corpus {

std::vector<GoldenRequirement> cara_working_mode() {
  return {
      {"Req-01",
       "The CARA will be operational whenever the LSTAT is powered on.",
       "G (power_lstat -> F operational_cara)", ""},
      {"Req-02",
       "If the pump is turned off, next wait mode is started.",
       "G (turn_pump -> start_wait_mode)", ""},
      {"Req-07",
       "If an occlusion is detected, and auto control mode is running, auto "
       "control mode will be terminated.",
       "G (detect_occlusion && run_auto_control_mode -> F "
       "terminate_auto_control_mode)",
       ""},
      {"Req-08",
       "If Air Ok signal remains low, auto control mode is terminated in 3 "
       "seconds.",
       "G (!air_ok_signal -> terminate_auto_control_mode)",
       "G (!air_ok_signal -> X X X terminate_auto_control_mode)"},
      {"Req-13.1",
       "If arterial line and pulse wave are corroborated, and cuff is "
       "available, next arterial line is selected.",
       "G (corroborate_arterial_line && corroborate_pulse_wave && cuff -> "
       "select_arterial_line)",
       ""},
      {"Req-13.2",
       "If pulse wave is corroborated, and cuff is available, and arterial "
       "line is not corroborated, next pulse wave is selected.",
       "G (corroborate_pulse_wave && cuff && !corroborate_arterial_line -> "
       "select_pulse_wave)",
       ""},
      {"Req-13.3",
       "If arterial line is not corroborated, and pulse wave is not "
       "corroborated, and cuff is available, then cuff is selected.",
       "G (!corroborate_arterial_line && !corroborate_pulse_wave && cuff -> "
       "select_cuff)",
       ""},
      {"Req-16",
       "If a pump is plugged in, and an infusate is ready, and the occlusion "
       "line is clear, auto control mode can be started.",
       "G (plug_pump && ready_infusate && clear_occlusion_line -> "
       "start_auto_control_mode)",
       ""},
      {"Req-17.1",
       "When auto control mode is running, eventually the cuff will be "
       "inflated.",
       "G (run_auto_control_mode -> F inflate_cuff)", ""},
      {"Req-17.2",
       "If start auto control button is pressed, and cuff is not available, "
       "an alarm is issued and override selection is provided.",
       "G (press_start_auto_control_button && !cuff -> issue_alarm && "
       "provide_override_selection)",
       ""},
      {"Req-17.3",
       "If alarm reset button is pressed, the alarm is disabled.",
       "G (press_alarm_reset_button -> !alarm)", ""},
      {"Req-17.4",
       "If override selection is provided, if override yes is pressed, and "
       "arterial line is not corroborated, next arterial line is selected.",
       "G (provide_override_selection -> press_override_yes && "
       "!corroborate_arterial_line -> select_arterial_line)",
       ""},
      {"Req-17.5",
       "If override selection is provided, if override yes is pressed, and "
       "arterial line is corroborated, and pulse wave is not corroborated, "
       "next pulse wave is selected.",
       "G (provide_override_selection -> press_override_yes && "
       "corroborate_arterial_line && !corroborate_pulse_wave -> "
       "select_pulse_wave)",
       ""},
      {"Req-17.6",
       "If override selection is provided, if override no is pressed, next "
       "manual mode is started.",
       "G (provide_override_selection -> press_override_no -> "
       "start_manual_mode)",
       ""},
      {"Req-17.7",
       "If cuff and arterial line and pulse wave are not available, next "
       "manual mode is started.",
       "G (!cuff && !arterial_line && !pulse_wave -> start_manual_mode)", ""},
      {"Req-20",
       "If manual mode is running and start auto control button is pressed, "
       "next corroboration is triggered.",
       "G (run_manual_mode && press_start_auto_control_button -> "
       "trigger_corroboration)",
       ""},
      {"Req-28",
       "If a valid blood pressure is unavailable in 180 seconds, manual mode "
       "should be triggered.",
       "G (X X X !blood_pressure -> trigger_manual_mode)", ""},
      {"Req-32.1",
       "If pulse wave or arterial line is available, and cuff is selected, "
       "corroboration is triggered.",
       "G ((pulse_wave || arterial_line) && select_cuff -> "
       "trigger_corroboration)",
       ""},
      {"Req-32.2",
       "If pulse wave is selected, and arterial line is available, "
       "corroboration is triggered.",
       "G (select_pulse_wave && arterial_line -> trigger_corroboration)", ""},
      {"Req-34",
       "When auto control mode is running, terminate auto control button "
       "should be available.",
       "G (run_auto_control_mode -> terminate_auto_control_button)", ""},
      {"Req-42",
       "When auto control mode is running, and the arterial line, or pulse "
       "wave or cuff is lost, an alarm should sound in 60 seconds.",
       "G (run_auto_control_mode && (!arterial_line || !pulse_wave || !cuff) "
       "-> X sound_alarm)",
       ""},
      {"Req-44",
       "If pulse wave and arterial line are unavailable, and cuff is "
       "selected, and blood pressure is not valid, next manual mode is "
       "started.",
       "G (!pulse_wave && !arterial_line && select_cuff && !blood_pressure "
       "-> start_manual_mode)",
       ""},
      {"Req-48.1",
       "Whenever termiante auto control button is selected, a confirmation "
       "button is available.",
       "G (select_termiante_auto_control_button -> confirmation_button)", ""},
      {"Req-48.2",
       "If a confirmation button is available, and confirmation yes is "
       "pressed, manual mode is started.",
       "G (confirmation_button && press_confirmation_yes -> "
       "start_manual_mode)",
       ""},
      {"Req-48.3",
       "If a confirmation button is available, and confirmation no is "
       "pressed, auto control mode is running.",
       "G (confirmation_button && press_confirmation_no -> "
       "run_auto_control_mode)",
       ""},
      {"Req-48.4",
       "If a confirmation button is available, and confirmation yes is "
       "pressed, next confirmation yes is disabled.",
       "G (confirmation_button && press_confirmation_yes -> "
       "!confirmation_yes)",
       ""},
      {"Req-48.5",
       "If a confirmation button is available, and confirmation no is "
       "pressed, next confirmation no is disabled.",
       "G (confirmation_button && press_confirmation_no -> "
       "!confirmation_no)",
       ""},
      {"Req-48.6",
       "If a confirmation button is available, and terminating auto control "
       "button is pressed, next terminating auto control button is "
       "disabled.",
       "G (confirmation_button && press_terminating_auto_control_button -> "
       "!terminating_auto_control_button)",
       ""},
      {"Req-49",
       "When a start auto control button is enabled, the start auto control "
       "button is enabled until it is pressed.",
       "G (start_auto_control_button -> !press_start_auto_control_button -> "
       "start_auto_control_button W press_start_auto_control_button)",
       ""},
      {"Req-54",
       "If auto control mode is running, and impedance reading is "
       "unavailable, next auto control mode is terminated.",
       "G (run_auto_control_mode && !impedance_reading -> "
       "terminate_auto_control_mode)",
       ""},
  };
}

std::vector<translate::RequirementText> cara_working_mode_texts() {
  std::vector<translate::RequirementText> out;
  for (const GoldenRequirement& g : cara_working_mode()) {
    out.push_back({g.id, g.text});
  }
  return out;
}

std::vector<ComponentSpec> cara_component_specs() {
  struct Row {
    const char* number;
    const char* name;
    int formulas, in, out;
    double seconds;
    unsigned response_percent;
    unsigned timed_percent;
    std::uint64_t seed;
  };
  // Published Table I scales; response rates follow the published cost
  // profile (rows 2.2.2 / 2.2.7 / 3.2 / 3.1 are the expensive ones).
  const Row rows[] = {
      {"1", "Pump Monitor", 20, 9, 14, 2, 15, 15, 11},
      {"2.1.1", "BPM: cuff detector", 14, 13, 12, 1, 8, 10, 12},
      {"2.1.2", "BPM: AL detector", 15, 11, 14, 2, 12, 10, 13},
      {"2.1.3", "BPM: pulse wave detector", 14, 9, 12, 1, 8, 10, 14},
      {"2.2.1", "BPM: initial auto control", 16, 14, 15, 1, 8, 10, 15},
      {"2.2.2", "BPM: first corroboration", 19, 11, 16, 29, 45, 15, 16},
      {"2.2.3", "BPM: valid ctrl blood pressure", 13, 11, 10, 2, 12, 10, 17},
      {"2.2.4", "BPM: cuff source handler", 11, 9, 10, 2, 12, 10, 18},
      {"2.2.5", "BPM: arterial line blood pressure", 16, 9, 13, 1, 8, 10, 19},
      {"2.2.6", "BPM: arterial line corroboration", 12, 8, 13, 1, 8, 10, 20},
      {"2.2.7", "BPM: pulse wave handler", 20, 10, 21, 23, 40, 15, 21},
      {"3.1", "(PA) Model ctrl algorithm", 9, 15, 11, 3, 30, 15, 22},
      {"3.2", "(PA) Polling algorithm", 56, 12, 20, 11, 25, 15, 23},
  };

  std::vector<ComponentSpec> out;
  const Theme theme = device_theme();
  for (const Row& row : rows) {
    ComponentSpec spec;
    spec.number = row.number;
    spec.name = row.name;
    spec.table_formulas = row.formulas;
    spec.table_inputs = row.in;
    spec.table_outputs = row.out;
    spec.table_seconds = row.seconds;
    SpecScale scale{std::string("CARA-") + row.number, row.formulas, row.in,
                    row.out, row.seed, row.response_percent, row.timed_percent};
    spec.requirements = generate_spec(scale, theme);
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace speccc::corpus
