// The CARA infusion-pump corpus (paper Section III and appendix).
//
// cara_working_mode() returns the requirements the paper checked for the
// working-mode specification (Table I row "0"), together with the published
// LTL formulas as golden expectations.
//
// Normalizations against the published appendix (each preserves the paper's
// proposition identities so that Table I's "consistent" verdict is
// reproduced; see EXPERIMENTS.md):
//   * Req-48.1 keeps the published "termiante" typo (its proposition is
//     distinct from Req-34's button in the paper's own formulas);
//   * Req-48.6 uses "terminating auto control button" so its propositions
//     match the published formula (press_terminating_..., the paper's
//     appendix writes exactly that);
//   * Req-54's "auto control model" typo is normalized to "mode" (its
//     proposition only occurs in consequents, so the merge is conflict-free);
//   * one mode-transition requirement (Req-02) is added to reach the
//     published formula count of 30 (the appendix lists 29).
#pragma once

#include <string>
#include <vector>

#include "translate/translator.hpp"

namespace speccc::corpus {

struct GoldenRequirement {
  std::string id;
  std::string text;
  /// Expected canonical ASCII rendering of the translated formula after
  /// time abstraction with the paper's parameters (d = 60); empty when the
  /// requirement is our documented addition.
  std::string expected;
  /// Expected rendering before abstraction ("" when identical or too long
  /// to enumerate, e.g. Req-28's 180 X operators).
  std::string expected_raw;
};

/// The working-mode requirement list (Table I row CARA/0): 30 requirements.
[[nodiscard]] std::vector<GoldenRequirement> cara_working_mode();

/// As translator input.
[[nodiscard]] std::vector<translate::RequirementText> cara_working_mode_texts();

/// A CARA component specification (Table I rows 1 to 3.2). The component
/// texts are not publicly archived; these are regenerated at exactly the
/// published scale with the device vocabulary (see generator.hpp). Rows the
/// paper reports as expensive (2.2.2, 2.2.7, 3.2) carry proportionally more
/// response obligations, which is what drives the synthesis cost.
struct ComponentSpec {
  std::string number;  // Table I numbering: "1", "2.1.1", ..., "3.2"
  std::string name;
  std::vector<translate::RequirementText> requirements;
  int table_formulas = 0;
  int table_inputs = 0;
  int table_outputs = 0;
  double table_seconds = 0.0;
};

/// The 13 component rows of Table I / CARA (all except row 0).
[[nodiscard]] std::vector<ComponentSpec> cara_component_specs();

}  // namespace speccc::corpus
