#include "corpus/loaders.hpp"

#include <string>

#include "util/diagnostics.hpp"
#include "util/strings.hpp"

namespace speccc::corpus {

std::vector<translate::RequirementText> load_requirements(std::istream& in) {
  std::vector<translate::RequirementText> out;
  std::string line;
  std::size_t number = 0;
  while (std::getline(in, line)) {
    ++number;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    // Optional "id: sentence" prefix: an identifier before the first colon
    // with no spaces.
    const std::size_t colon = trimmed.find(':');
    if (colon != std::string_view::npos && colon > 0 &&
        trimmed.substr(0, colon).find(' ') == std::string_view::npos) {
      const std::string_view body = util::trim(trimmed.substr(colon + 1));
      if (body.empty()) {
        throw util::ParseError("requirement line " + std::to_string(number) +
                               " has an id but no sentence");
      }
      out.push_back({std::string(trimmed.substr(0, colon)), std::string(body)});
    } else {
      out.push_back({"L" + std::to_string(number), std::string(trimmed)});
    }
  }
  return out;
}

void load_lexicon(std::istream& in, nlp::Lexicon& lexicon) {
  std::string line;
  std::size_t number = 0;
  while (std::getline(in, line)) {
    ++number;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto parts = util::split(trimmed, ' ');
    if (parts.size() != 2) {
      throw util::ParseError("lexicon line " + std::to_string(number) +
                             ": expected 'word pos'");
    }
    const std::string& word = parts[0];
    const std::string& pos = parts[1];
    if (pos == "noun") {
      lexicon.add(word, nlp::Pos::kNoun);
    } else if (pos == "verb") {
      lexicon.add_verb(word);
    } else if (pos == "adjective") {
      lexicon.add(word, nlp::Pos::kAdjective);
    } else if (pos == "adverb") {
      lexicon.add(word, nlp::Pos::kAdverb);
    } else {
      throw util::ParseError("lexicon line " + std::to_string(number) +
                             ": unknown part of speech '" + pos + "'");
    }
  }
}

void load_antonyms(std::istream& in, semantics::AntonymDictionary& dictionary) {
  std::string line;
  std::size_t number = 0;
  while (std::getline(in, line)) {
    ++number;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto parts = util::split(trimmed, ' ');
    if (parts.size() != 2) {
      throw util::ParseError("antonym line " + std::to_string(number) +
                             ": expected 'positive negative'");
    }
    dictionary.add_pair(parts[0], parts[1]);
  }
}

}  // namespace speccc::corpus
