#include "ltl/trace.hpp"

#include <unordered_map>

#include "util/diagnostics.hpp"

namespace speccc::ltl {

Lasso::Lasso(std::vector<Valuation> steps, std::size_t loop_start)
    : steps_(std::move(steps)), loop_start_(loop_start) {
  speccc_check(!steps_.empty(), "lasso must have at least one step");
  speccc_check(loop_start_ < steps_.size(), "loop start out of range");
}

const Valuation& Lasso::at(std::size_t pos) const {
  speccc_check(pos < steps_.size(), "lasso position out of range");
  return steps_[pos];
}

std::size_t Lasso::successor(std::size_t pos) const {
  speccc_check(pos < steps_.size(), "lasso position out of range");
  return pos + 1 < steps_.size() ? pos + 1 : loop_start_;
}

bool Lasso::holds(const std::string& name, std::size_t pos) const {
  return at(pos).count(name) > 0;
}

namespace {

using SatVec = std::vector<bool>;

class Evaluator {
 public:
  explicit Evaluator(const Lasso& lasso) : lasso_(lasso), n_(lasso.size()) {}

  const SatVec& sat(Formula f) {
    auto it = memo_.find(f);
    if (it != memo_.end()) return it->second;
    SatVec result = compute(f);
    return memo_.emplace(f, std::move(result)).first->second;
  }

 private:
  SatVec compute(Formula f) {
    SatVec out(n_, false);
    switch (f.op()) {
      case Op::kTrue:
        out.assign(n_, true);
        break;
      case Op::kFalse:
        break;
      case Op::kAp:
        for (std::size_t i = 0; i < n_; ++i) out[i] = lasso_.holds(f.ap_name(), i);
        break;
      case Op::kNot: {
        const SatVec& c = sat(f.child(0));
        for (std::size_t i = 0; i < n_; ++i) out[i] = !c[i];
        break;
      }
      case Op::kAnd: {
        out.assign(n_, true);
        for (Formula child : f.children()) {
          const SatVec& c = sat(child);
          for (std::size_t i = 0; i < n_; ++i) out[i] = out[i] && c[i];
        }
        break;
      }
      case Op::kOr: {
        for (Formula child : f.children()) {
          const SatVec& c = sat(child);
          for (std::size_t i = 0; i < n_; ++i) out[i] = out[i] || c[i];
        }
        break;
      }
      case Op::kImplies: {
        const SatVec& a = sat(f.child(0));
        const SatVec& b = sat(f.child(1));
        for (std::size_t i = 0; i < n_; ++i) out[i] = !a[i] || b[i];
        break;
      }
      case Op::kIff: {
        const SatVec& a = sat(f.child(0));
        const SatVec& b = sat(f.child(1));
        for (std::size_t i = 0; i < n_; ++i) out[i] = a[i] == b[i];
        break;
      }
      case Op::kNext: {
        const SatVec& c = sat(f.child(0));
        for (std::size_t i = 0; i < n_; ++i) out[i] = c[lasso_.successor(i)];
        break;
      }
      case Op::kEventually: {
        // Least fixpoint of out = c || X out.
        const SatVec& c = sat(f.child(0));
        out = fixpoint(/*init=*/false, [&](const SatVec& cur, std::size_t i) {
          return c[i] || cur[lasso_.successor(i)];
        });
        break;
      }
      case Op::kAlways: {
        // Greatest fixpoint of out = c && X out.
        const SatVec& c = sat(f.child(0));
        out = fixpoint(/*init=*/true, [&](const SatVec& cur, std::size_t i) {
          return c[i] && cur[lasso_.successor(i)];
        });
        break;
      }
      case Op::kUntil: {
        const SatVec& a = sat(f.child(0));
        const SatVec& b = sat(f.child(1));
        out = fixpoint(false, [&](const SatVec& cur, std::size_t i) {
          return b[i] || (a[i] && cur[lasso_.successor(i)]);
        });
        break;
      }
      case Op::kWeakUntil: {
        const SatVec& a = sat(f.child(0));
        const SatVec& b = sat(f.child(1));
        out = fixpoint(true, [&](const SatVec& cur, std::size_t i) {
          return b[i] || (a[i] && cur[lasso_.successor(i)]);
        });
        break;
      }
      case Op::kRelease: {
        // a R b: b holds until and including the step where a holds; if a
        // never holds, b holds forever. Greatest fixpoint of
        // out = b && (a || X out).
        const SatVec& a = sat(f.child(0));
        const SatVec& b = sat(f.child(1));
        out = fixpoint(true, [&](const SatVec& cur, std::size_t i) {
          return b[i] && (a[i] || cur[lasso_.successor(i)]);
        });
        break;
      }
    }
    return out;
  }

  template <typename Step>
  SatVec fixpoint(bool init, Step step) {
    SatVec cur(n_, init);
    for (bool changed = true; changed;) {
      changed = false;
      // Iterate backwards for faster convergence on the prefix.
      for (std::size_t k = n_; k-- > 0;) {
        const bool v = step(cur, k);
        if (v != cur[k]) {
          cur[k] = v;
          changed = true;
        }
      }
    }
    return cur;
  }

  const Lasso& lasso_;
  std::size_t n_;
  std::unordered_map<Formula, SatVec> memo_;
};

}  // namespace

bool evaluate(Formula f, const Lasso& lasso, std::size_t pos) {
  speccc_check(pos < lasso.size(), "position out of range");
  Evaluator ev(lasso);
  return ev.sat(f)[pos];
}

}  // namespace speccc::ltl
