#include "ltl/rewrite.hpp"

#include <algorithm>

#include "util/diagnostics.hpp"

namespace speccc::ltl {

namespace {

Formula nnf_impl(Formula f, bool negate) {
  switch (f.op()) {
    case Op::kTrue:
      return negate ? fls() : tru();
    case Op::kFalse:
      return negate ? tru() : fls();
    case Op::kAp:
      return negate ? lnot(f) : f;
    case Op::kNot:
      return nnf_impl(f.child(0), !negate);
    case Op::kAnd: {
      std::vector<Formula> cs;
      cs.reserve(f.arity());
      for (Formula c : f.children()) cs.push_back(nnf_impl(c, negate));
      return negate ? lor(std::move(cs)) : land(std::move(cs));
    }
    case Op::kOr: {
      std::vector<Formula> cs;
      cs.reserve(f.arity());
      for (Formula c : f.children()) cs.push_back(nnf_impl(c, negate));
      return negate ? land(std::move(cs)) : lor(std::move(cs));
    }
    case Op::kImplies: {
      // a -> b == !a || b
      Formula a = f.child(0);
      Formula b = f.child(1);
      if (negate) return land(nnf_impl(a, false), nnf_impl(b, true));
      return lor(nnf_impl(a, true), nnf_impl(b, false));
    }
    case Op::kIff: {
      // a <-> b == (a && b) || (!a && !b)
      Formula a = f.child(0);
      Formula b = f.child(1);
      Formula both = land(nnf_impl(a, false), nnf_impl(b, false));
      Formula neither = land(nnf_impl(a, true), nnf_impl(b, true));
      Formula one = land(nnf_impl(a, false), nnf_impl(b, true));
      Formula other = land(nnf_impl(a, true), nnf_impl(b, false));
      return negate ? lor(one, other) : lor(both, neither);
    }
    case Op::kNext:
      return next(nnf_impl(f.child(0), negate));
    case Op::kEventually:
      return negate ? always(nnf_impl(f.child(0), true))
                    : eventually(nnf_impl(f.child(0), false));
    case Op::kAlways:
      return negate ? eventually(nnf_impl(f.child(0), true))
                    : always(nnf_impl(f.child(0), false));
    case Op::kUntil: {
      Formula a = f.child(0);
      Formula b = f.child(1);
      if (negate) return release(nnf_impl(a, true), nnf_impl(b, true));
      return until(nnf_impl(a, false), nnf_impl(b, false));
    }
    case Op::kRelease: {
      Formula a = f.child(0);
      Formula b = f.child(1);
      if (negate) return until(nnf_impl(a, true), nnf_impl(b, true));
      return release(nnf_impl(a, false), nnf_impl(b, false));
    }
    case Op::kWeakUntil: {
      // a W b == b R (a || b); !(a W b) == !b U (!a && !b)
      Formula a = f.child(0);
      Formula b = f.child(1);
      if (negate) {
        return until(nnf_impl(b, true),
                     land(nnf_impl(a, true), nnf_impl(b, true)));
      }
      return release(nnf_impl(b, false),
                     lor(nnf_impl(a, false), nnf_impl(b, false)));
    }
  }
  speccc_check(false, "unhandled op in nnf");
  return f;
}

}  // namespace

Formula nnf(Formula f) { return nnf_impl(f, false); }

Formula eliminate_weak_until(Formula f) {
  switch (f.op()) {
    case Op::kTrue:
    case Op::kFalse:
    case Op::kAp:
      return f;
    case Op::kWeakUntil: {
      Formula a = eliminate_weak_until(f.child(0));
      Formula b = eliminate_weak_until(f.child(1));
      return release(b, lor(a, b));
    }
    default: {
      std::vector<Formula> cs;
      cs.reserve(f.arity());
      bool changed = false;
      for (Formula c : f.children()) {
        Formula r = eliminate_weak_until(c);
        changed = changed || r != c;
        cs.push_back(r);
      }
      if (!changed) return f;
      switch (f.op()) {
        case Op::kNot: return lnot(cs[0]);
        case Op::kAnd: return land(std::move(cs));
        case Op::kOr: return lor(std::move(cs));
        case Op::kImplies: return implies(cs[0], cs[1]);
        case Op::kIff: return iff(cs[0], cs[1]);
        case Op::kNext: return next(cs[0]);
        case Op::kEventually: return eventually(cs[0]);
        case Op::kAlways: return always(cs[0]);
        case Op::kUntil: return until(cs[0], cs[1]);
        case Op::kRelease: return release(cs[0], cs[1]);
        default: break;
      }
      speccc_check(false, "unhandled op in eliminate_weak_until");
      return f;
    }
  }
}

Formula substitute(Formula f,
                   const std::unordered_map<std::string, Formula>& map) {
  switch (f.op()) {
    case Op::kTrue:
    case Op::kFalse:
      return f;
    case Op::kAp: {
      auto it = map.find(f.ap_name());
      return it == map.end() ? f : it->second;
    }
    default: {
      std::vector<Formula> cs;
      cs.reserve(f.arity());
      for (Formula c : f.children()) cs.push_back(substitute(c, map));
      switch (f.op()) {
        case Op::kNot: return lnot(cs[0]);
        case Op::kAnd: return land(std::move(cs));
        case Op::kOr: return lor(std::move(cs));
        case Op::kImplies: return implies(cs[0], cs[1]);
        case Op::kIff: return iff(cs[0], cs[1]);
        case Op::kNext: return next(cs[0]);
        case Op::kEventually: return eventually(cs[0]);
        case Op::kAlways: return always(cs[0]);
        case Op::kUntil: return until(cs[0], cs[1]);
        case Op::kWeakUntil: return weak_until(cs[0], cs[1]);
        case Op::kRelease: return release(cs[0], cs[1]);
        default: break;
      }
      speccc_check(false, "unhandled op in substitute");
      return f;
    }
  }
}

std::size_t max_next_chain(Formula f) {
  if (f.op() == Op::kNext) {
    std::size_t chain = 0;
    Formula cur = f;
    while (cur.op() == Op::kNext) {
      ++chain;
      cur = cur.child(0);
    }
    return std::max(chain, max_next_chain(cur));
  }
  std::size_t best = 0;
  for (Formula c : f.children()) best = std::max(best, max_next_chain(c));
  return best;
}

std::size_t temporal_operator_count(Formula f) {
  std::size_t n = is_temporal(f.op()) ? 1 : 0;
  for (Formula c : f.children()) n += temporal_operator_count(c);
  return n;
}

namespace {

bool safety_nnf(Formula f) {
  switch (f.op()) {
    case Op::kUntil:
    case Op::kEventually:
      return false;
    default:
      for (Formula c : f.children()) {
        if (!safety_nnf(c)) return false;
      }
      return true;
  }
}

}  // namespace

bool is_syntactic_safety(Formula f) { return safety_nnf(nnf(f)); }

}  // namespace speccc::ltl
