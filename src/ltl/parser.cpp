#include "ltl/parser.hpp"

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "util/diagnostics.hpp"

namespace speccc::ltl {

namespace {

enum class TokKind {
  kAtom, kTrue, kFalse,
  kNot, kAnd, kOr, kImplies, kIff,
  kNext, kEventually, kAlways, kUntil, kWeakUntil, kRelease,
  kLParen, kRParen, kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  std::size_t pos;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_space();
      if (pos_ >= text_.size()) break;
      const std::size_t start = pos_;
      const char c = text_[pos_];
      if (c == '(') { out.push_back({TokKind::kLParen, "(", start}); ++pos_; continue; }
      if (c == ')') { out.push_back({TokKind::kRParen, ")", start}); ++pos_; continue; }
      if (c == '!') { out.push_back({TokKind::kNot, "!", start}); ++pos_; continue; }
      if (c == '&') { expect2('&'); out.push_back({TokKind::kAnd, "&&", start}); continue; }
      if (c == '|') { expect2('|'); out.push_back({TokKind::kOr, "||", start}); continue; }
      if (c == '-') {
        ++pos_;
        if (pos_ >= text_.size() || text_[pos_] != '>') fail(start, "expected '->'");
        ++pos_;
        out.push_back({TokKind::kImplies, "->", start});
        continue;
      }
      if (c == '<') {
        if (pos_ + 2 >= text_.size() || text_[pos_ + 1] != '-' || text_[pos_ + 2] != '>')
          fail(start, "expected '<->'");
        pos_ += 3;
        out.push_back({TokKind::kIff, "<->", start});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        std::string word;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '_')) {
          word.push_back(text_[pos_++]);
        }
        out.push_back({classify(word), word, start});
        continue;
      }
      fail(start, std::string("unexpected character '") + c + "'");
    }
    out.push_back({TokKind::kEnd, "", text_.size()});
    return out;
  }

 private:
  static TokKind classify(const std::string& word) {
    if (word == "true") return TokKind::kTrue;
    if (word == "false") return TokKind::kFalse;
    if (word == "X") return TokKind::kNext;
    if (word == "F") return TokKind::kEventually;
    if (word == "G") return TokKind::kAlways;
    if (word == "U") return TokKind::kUntil;
    if (word == "W") return TokKind::kWeakUntil;
    if (word == "R") return TokKind::kRelease;
    return TokKind::kAtom;
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  void expect2(char c) {
    if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != c)
      fail(pos_, std::string("expected '") + c + c + "'");
    pos_ += 2;
  }

  [[noreturn]] void fail(std::size_t pos, const std::string& message) {
    std::ostringstream os;
    os << "LTL parse error at offset " << pos << ": " << message;
    throw util::ParseError(os.str());
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Formula run() {
    Formula f = parse_iff();
    expect(TokKind::kEnd, "end of input");
    return f;
  }

 private:
  const Token& peek() const { return tokens_[index_]; }
  Token advance() { return tokens_[index_++]; }

  bool accept(TokKind kind) {
    if (peek().kind == kind) {
      ++index_;
      return true;
    }
    return false;
  }

  void expect(TokKind kind, const char* what) {
    if (!accept(kind)) {
      std::ostringstream os;
      os << "LTL parse error at offset " << peek().pos << ": expected " << what
         << ", found '" << peek().text << "'";
      throw util::ParseError(os.str());
    }
  }

  Formula parse_iff() {
    Formula lhs = parse_implies();
    if (accept(TokKind::kIff)) return iff(lhs, parse_iff());
    return lhs;
  }

  Formula parse_implies() {
    Formula lhs = parse_binary_temporal();
    if (accept(TokKind::kImplies)) return implies(lhs, parse_implies());
    return lhs;
  }

  Formula parse_binary_temporal() {
    Formula lhs = parse_or();
    if (accept(TokKind::kUntil)) return until(lhs, parse_binary_temporal());
    if (accept(TokKind::kWeakUntil)) return weak_until(lhs, parse_binary_temporal());
    if (accept(TokKind::kRelease)) return release(lhs, parse_binary_temporal());
    return lhs;
  }

  Formula parse_or() {
    std::vector<Formula> parts{parse_and()};
    while (accept(TokKind::kOr)) parts.push_back(parse_and());
    return parts.size() == 1 ? parts.front() : lor(std::move(parts));
  }

  Formula parse_and() {
    std::vector<Formula> parts{parse_unary()};
    while (accept(TokKind::kAnd)) parts.push_back(parse_unary());
    return parts.size() == 1 ? parts.front() : land(std::move(parts));
  }

  Formula parse_unary() {
    if (accept(TokKind::kNot)) return lnot(parse_unary());
    if (accept(TokKind::kNext)) return next(parse_unary());
    if (accept(TokKind::kEventually)) return eventually(parse_unary());
    if (accept(TokKind::kAlways)) return always(parse_unary());
    return parse_atom();
  }

  Formula parse_atom() {
    if (accept(TokKind::kTrue)) return tru();
    if (accept(TokKind::kFalse)) return fls();
    if (peek().kind == TokKind::kAtom) return ap(advance().text);
    if (accept(TokKind::kLParen)) {
      Formula f = parse_iff();
      expect(TokKind::kRParen, "')'");
      return f;
    }
    std::ostringstream os;
    os << "LTL parse error at offset " << peek().pos
       << ": expected a formula, found '" << peek().text << "'";
    throw util::ParseError(os.str());
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
};

}  // namespace

Formula parse(std::string_view text) {
  return Parser(Lexer(text).run()).run();
}

}  // namespace speccc::ltl
