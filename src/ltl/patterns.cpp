#include "ltl/patterns.hpp"

namespace speccc::ltl {

Formula universality(Formula p) { return always(p); }

Formula existence(Formula p) { return eventually(p); }

Formula implication(Formula trigger, Formula resp) {
  return always(implies(trigger, resp));
}

Formula delayed_implication(Formula trigger, Formula resp, std::size_t delay) {
  return always(implies(trigger, next_n(resp, delay)));
}

Formula response(Formula trigger, Formula resp) {
  return always(implies(trigger, eventually(resp)));
}

Formula until_template(Formula cond, Formula hold, Formula rel) {
  return always(implies(cond, implies(lnot(rel), weak_until(hold, rel))));
}

namespace {

/// Strip X operators from the front; returns the stripped count.
std::size_t strip_next(Formula& f) {
  std::size_t n = 0;
  while (f.op() == Op::kNext) {
    ++n;
    f = f.child(0);
  }
  return n;
}

/// Normalize nested implications: (g1 -> (g2 -> body)) => guard g1&&g2.
/// Returns the final body; accumulates guards into `guard`.
Formula peel_guards(Formula f, std::vector<Formula>& guards) {
  while (f.op() == Op::kImplies && f.child(0).is_propositional()) {
    guards.push_back(f.child(0));
    f = f.child(1);
  }
  return f;
}

}  // namespace

std::optional<PatternInstance> recognize_pattern(Formula f) {
  // F p (Existence).
  if (f.op() == Op::kEventually && f.child(0).is_propositional()) {
    PatternInstance p;
    p.kind = PatternKind::kExistence;
    p.guard = f.child(0);
    return p;
  }
  if (f.op() != Op::kAlways) return std::nullopt;

  Formula body = f.child(0);

  // G p with no implication structure at all (Invariant).
  if (body.is_propositional() && body.op() != Op::kImplies) {
    PatternInstance p;
    p.kind = PatternKind::kInvariant;
    p.guard = body;
    return p;
  }

  // X^n inside the *antecedent* (the paper's Req-28 shape,
  // G (XXX !blood_pressure -> trigger_manual_mode)): at step t the guard is
  // evaluated n steps in the future while the consequent is due now. Read
  // causally, a violation becomes observable at step t+n as
  //   guard(t+n) && !consequent(t),
  // so a deterministic safety monitor only needs to remember the last n
  // values of the consequent -- no clairvoyance required.
  if (body.op() == Op::kImplies) {
    Formula ante = body.child(0);
    Formula post = body.child(1);
    const std::size_t ante_delay = strip_next(ante);
    if (ante_delay > 0 && ante.is_propositional() && post.is_propositional()) {
      PatternInstance p;
      p.kind = PatternKind::kGuardDelayed;
      p.guard = ante;
      p.consequent = post;
      p.delay = ante_delay;
      return p;
    }
  }

  std::vector<Formula> guards;
  Formula rest = peel_guards(body, guards);
  Formula guard = guards.empty() ? tru() : land(guards);

  if (rest.op() == Op::kImplies) {
    // peel_guards stopped because the antecedent is temporal; unsupported.
    return std::nullopt;
  }

  // G (guard -> F c) (Response).
  if (rest.op() == Op::kEventually && rest.child(0).is_propositional()) {
    PatternInstance p;
    p.kind = PatternKind::kResponse;
    p.guard = guard;
    p.consequent = rest.child(0);
    return p;
  }

  // G (guard -> (p W q)) / (p U q).
  if (rest.op() == Op::kWeakUntil || rest.op() == Op::kUntil) {
    Formula hold = rest.child(0);
    Formula rel = rest.child(1);
    if (hold.is_propositional() && rel.is_propositional()) {
      PatternInstance p;
      p.kind = rest.op() == Op::kWeakUntil ? PatternKind::kWeakUntil
                                           : PatternKind::kStrongUntil;
      p.guard = guard;
      p.consequent = hold;
      p.release = rel;
      return p;
    }
    return std::nullopt;
  }

  // G (guard -> X^n c) (possibly n = 0).
  {
    Formula cons = rest;
    std::size_t delay = strip_next(cons);
    if (cons.is_propositional()) {
      PatternInstance p;
      p.kind = PatternKind::kImplication;
      p.guard = guard;
      p.consequent = cons;
      p.delay = delay;
      return p;
    }
    // Mixed temporal consequent, e.g. X F c: recognize X^n (F c) as a
    // delayed response.
    if (cons.op() == Op::kEventually && cons.child(0).is_propositional()) {
      PatternInstance p;
      p.kind = PatternKind::kResponse;
      p.guard = guard;
      p.consequent = cons.child(0);
      // A delayed F is absorbed: G(g -> X^n F c) == G(g -> F c) only for
      // n == 0; for n > 0 the deadline is weaker, and since F has no
      // deadline at all the two coincide for realizability *and* for
      // language equality... in fact X F c == F X c and F X c is implied by
      // F c only one way. Precisely: X^n F c == "c holds at some step
      // >= n". For a response monitor the obligation simply starts n steps
      // later; with no deadline this is equivalent to F c when n steps of
      // slack always exist, i.e. the languages differ only on the first n
      // steps of c. We keep exactness by refusing n > 0 here.
      if (delay == 0) return p;
      return std::nullopt;
    }
    return std::nullopt;
  }
}

}  // namespace speccc::ltl
