// Formula rewriting: negation normal form, implication elimination,
// substitution, and structural queries used by the synthesis engines.
#pragma once

#include <cstddef>
#include <unordered_map>

#include "ltl/formula.hpp"

namespace speccc::ltl {

/// Negation normal form: negations pushed to the atoms, -> and <-> expanded.
/// Uses the dualities !X f == X !f, !(a U b) == !a R !b, !(a R b) == !a U !b,
/// !(a W b) == (a && !b) U (!a && !b), !F f == G !f, !G f == F !f.
[[nodiscard]] Formula nnf(Formula f);

/// Rewrite W and derived operators into the core set {X, U, R, F, G}:
/// a W b == b R (a || b). Implications/Iff are preserved.
[[nodiscard]] Formula eliminate_weak_until(Formula f);

/// Replace every occurrence of each key proposition with its mapped formula.
[[nodiscard]] Formula substitute(
    Formula f, const std::unordered_map<std::string, Formula>& map);

/// The number of X operators in the longest chain of directly nested Next
/// operators anywhere in the formula (0 when no Next occurs). Section IV-E's
/// abstraction works on these chain lengths.
[[nodiscard]] std::size_t max_next_chain(Formula f);

/// Count of temporal operators (X, F, G, U, W, R) in the tree unfolding.
[[nodiscard]] std::size_t temporal_operator_count(Formula f);

/// True if the formula is a syntactic safety candidate: NNF contains no
/// U, F; only X, G, W, R over propositional structure.
[[nodiscard]] bool is_syntactic_safety(Formula f);

}  // namespace speccc::ltl
