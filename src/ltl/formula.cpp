#include "ltl/formula.hpp"

#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/diagnostics.hpp"

namespace speccc::ltl {

const char* op_name(Op op) {
  switch (op) {
    case Op::kTrue: return "true";
    case Op::kFalse: return "false";
    case Op::kAp: return "ap";
    case Op::kNot: return "not";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kImplies: return "implies";
    case Op::kIff: return "iff";
    case Op::kNext: return "next";
    case Op::kEventually: return "eventually";
    case Op::kAlways: return "always";
    case Op::kUntil: return "until";
    case Op::kWeakUntil: return "weak_until";
    case Op::kRelease: return "release";
  }
  return "?";
}

bool is_temporal(Op op) {
  switch (op) {
    case Op::kNext:
    case Op::kEventually:
    case Op::kAlways:
    case Op::kUntil:
    case Op::kWeakUntil:
    case Op::kRelease:
      return true;
    default:
      return false;
  }
}

namespace {

std::size_t combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

struct NodeKey {
  Op op;
  std::string ap_name;
  std::vector<const detail::Node*> children;

  bool operator==(const NodeKey& other) const = default;
};

struct NodeKeyHash {
  std::size_t operator()(const NodeKey& k) const {
    std::size_t h = static_cast<std::size_t>(k.op);
    h = combine(h, std::hash<std::string>{}(k.ap_name));
    for (const auto* c : k.children) {
      h = combine(h, std::hash<const void*>{}(c));
    }
    return h;
  }
};

}  // namespace

/// Process-wide intern arena. Nodes are kept alive for the lifetime of the
/// process; formulas are small and specifications are bounded, so this is a
/// deliberate leak-until-exit design (the arena is a Meyers singleton whose
/// destructor releases everything at shutdown).
class Arena {
 public:
  static Arena& instance() {
    static Arena arena;
    return arena;
  }

  Formula intern(Op op, std::string ap_name, std::vector<Formula> children) {
    NodeKey key;
    key.op = op;
    key.ap_name = ap_name;
    key.children.reserve(children.size());
    for (Formula c : children) {
      speccc_check(!c.is_null(), "child formula must not be null");
      key.children.push_back(c.node_);
    }

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = table_.find(key);
    if (it != table_.end()) return Formula(it->second);

    auto node = std::make_unique<detail::Node>();
    node->op = op;
    node->ap_name = std::move(ap_name);
    node->children = std::move(children);
    node->id = next_id_++;
    node->hash = NodeKeyHash{}(key);
    node->length = 1;
    for (Formula c : node->children) node->length += c.length();

    const detail::Node* raw = node.get();
    nodes_.push_back(std::move(node));
    table_.emplace(std::move(key), raw);
    return Formula(raw);
  }

 private:
  Arena() = default;
  std::mutex mutex_;
  std::uint64_t next_id_ = 1;
  std::vector<std::unique_ptr<detail::Node>> nodes_;
  std::unordered_map<NodeKey, const detail::Node*, NodeKeyHash> table_;
};

Op Formula::op() const {
  speccc_check(node_ != nullptr, "null formula");
  return node_->op;
}

const std::string& Formula::ap_name() const {
  speccc_check(node_ != nullptr && node_->op == Op::kAp,
               "ap_name on non-proposition");
  return node_->ap_name;
}

const std::vector<Formula>& Formula::children() const {
  speccc_check(node_ != nullptr, "null formula");
  return node_->children;
}

Formula Formula::child(std::size_t i) const {
  const auto& cs = children();
  speccc_check(i < cs.size(), "child index out of range");
  return cs[i];
}

std::size_t Formula::arity() const { return children().size(); }

std::size_t Formula::length() const {
  speccc_check(node_ != nullptr, "null formula");
  return node_->length;
}

std::uint64_t Formula::id() const {
  speccc_check(node_ != nullptr, "null formula");
  return node_->id;
}

std::size_t Formula::hash() const {
  speccc_check(node_ != nullptr, "null formula");
  return node_->hash;
}

std::set<std::string> Formula::atoms() const {
  std::set<std::string> out;
  std::vector<Formula> stack{*this};
  while (!stack.empty()) {
    Formula f = stack.back();
    stack.pop_back();
    if (f.op() == Op::kAp) {
      out.insert(f.ap_name());
    } else {
      for (Formula c : f.children()) stack.push_back(c);
    }
  }
  return out;
}

bool Formula::is_propositional() const {
  if (is_temporal(op())) return false;
  for (Formula c : children()) {
    if (!c.is_propositional()) return false;
  }
  return true;
}

// ---- Factories --------------------------------------------------------------

Formula tru() { return Arena::instance().intern(Op::kTrue, "", {}); }
Formula fls() { return Arena::instance().intern(Op::kFalse, "", {}); }

Formula ap(const std::string& name) {
  speccc_check(!name.empty(), "proposition name must be non-empty");
  return Arena::instance().intern(Op::kAp, name, {});
}

Formula lnot(Formula f) {
  if (f.op() == Op::kTrue) return fls();
  if (f.op() == Op::kFalse) return tru();
  if (f.op() == Op::kNot) return f.child(0);  // double negation
  return Arena::instance().intern(Op::kNot, "", {f});
}

namespace {

/// Flatten nested n-ary nodes of the same op, fold constants.
/// `unit` is the neutral element, `zero` the absorbing element.
Formula nary(Op op, std::vector<Formula> fs, Formula unit, Formula zero) {
  std::vector<Formula> flat;
  flat.reserve(fs.size());
  for (Formula f : fs) {
    speccc_check(!f.is_null(), "null operand");
    if (f == zero) return zero;
    if (f == unit) continue;
    if (f.op() == op) {
      for (Formula c : f.children()) flat.push_back(c);
    } else {
      flat.push_back(f);
    }
  }
  // Drop exact duplicates while preserving first-occurrence order.
  std::vector<Formula> dedup;
  for (Formula f : flat) {
    bool seen = false;
    for (Formula g : dedup) {
      if (f == g) {
        seen = true;
        break;
      }
    }
    if (!seen) dedup.push_back(f);
  }
  if (dedup.empty()) return unit;
  if (dedup.size() == 1) return dedup.front();
  return Arena::instance().intern(op, "", std::move(dedup));
}

}  // namespace

Formula land(std::vector<Formula> fs) { return nary(Op::kAnd, std::move(fs), tru(), fls()); }
Formula land(Formula a, Formula b) { return land(std::vector<Formula>{a, b}); }
Formula lor(std::vector<Formula> fs) { return nary(Op::kOr, std::move(fs), fls(), tru()); }
Formula lor(Formula a, Formula b) { return lor(std::vector<Formula>{a, b}); }

Formula implies(Formula a, Formula b) {
  if (a.op() == Op::kTrue) return b;
  if (a.op() == Op::kFalse) return tru();
  if (b.op() == Op::kTrue) return tru();
  return Arena::instance().intern(Op::kImplies, "", {a, b});
}

Formula iff(Formula a, Formula b) {
  if (a == b) return tru();
  return Arena::instance().intern(Op::kIff, "", {a, b});
}

Formula next(Formula f) { return Arena::instance().intern(Op::kNext, "", {f}); }

Formula next_n(Formula f, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) f = next(f);
  return f;
}

Formula eventually(Formula f) {
  if (f.op() == Op::kEventually) return f;  // FF phi == F phi
  if (f.op() == Op::kTrue || f.op() == Op::kFalse) return f;
  return Arena::instance().intern(Op::kEventually, "", {f});
}

Formula always(Formula f) {
  if (f.op() == Op::kAlways) return f;  // GG phi == G phi
  if (f.op() == Op::kTrue || f.op() == Op::kFalse) return f;
  return Arena::instance().intern(Op::kAlways, "", {f});
}

Formula until(Formula a, Formula b) {
  if (b.op() == Op::kTrue || b.op() == Op::kFalse) return b;
  if (a.op() == Op::kFalse) return b;
  return Arena::instance().intern(Op::kUntil, "", {a, b});
}

Formula weak_until(Formula a, Formula b) {
  if (a.op() == Op::kTrue) return tru();
  if (b.op() == Op::kTrue) return tru();
  if (a.op() == Op::kFalse) return b;
  return Arena::instance().intern(Op::kWeakUntil, "", {a, b});
}

Formula release(Formula a, Formula b) {
  if (b.op() == Op::kTrue || b.op() == Op::kFalse) return b;
  if (a.op() == Op::kTrue) return b;
  return Arena::instance().intern(Op::kRelease, "", {a, b});
}

// ---- Canonical digest -------------------------------------------------------

util::Digest canonical_digest(Formula f) {
  speccc_check(!f.is_null(), "cannot digest a null formula");
  // Iterative post-order over the DAG with per-call memoization keyed by
  // the node id: sharing keeps the walk linear in distinct subformulas,
  // and deep Next chains (timed requirements reach hundreds of X's) never
  // touch the call stack.
  std::unordered_map<std::uint64_t, util::Digest> memo;
  std::vector<std::pair<Formula, bool>> stack{{f, false}};
  while (!stack.empty()) {
    auto [node, children_done] = stack.back();
    stack.pop_back();
    if (memo.count(node.id()) != 0) continue;
    if (!children_done) {
      stack.push_back({node, true});
      for (Formula c : node.children()) stack.push_back({c, false});
      continue;
    }
    util::DigestBuilder builder("ltl");
    builder.u64(static_cast<std::uint64_t>(node.op()));
    if (node.op() == Op::kAp) builder.str(node.ap_name());
    builder.u64(node.arity());
    for (Formula c : node.children()) builder.digest(memo.at(c.id()));
    memo.emplace(node.id(), builder.finalize());
  }
  return memo.at(f.id());
}

// ---- Printing ---------------------------------------------------------------

namespace {

struct Symbols {
  const char* tru;
  const char* fls;
  const char* nt;
  const char* an;
  const char* orr;
  const char* imp;
  const char* iff;
  const char* nxt;
  const char* ev;
  const char* alw;
  const char* until;
  const char* wuntil;
  const char* release;
};

constexpr Symbols kAsciiSyms{"true", "false", "!",  "&&", "||", "->",
                             "<->",  "X",     "F",  "G",  "U",  "W",
                             "R"};
constexpr Symbols kPaperSyms{"true", "false", "¬", "&&", "||",
                             "→", "↔", "X", "♦", "□",
                             "U", "W", "R"};

// Precedence, higher binds tighter.
int precedence(Op op) {
  switch (op) {
    case Op::kIff: return 1;
    case Op::kImplies: return 2;
    case Op::kUntil:
    case Op::kWeakUntil:
    case Op::kRelease: return 3;
    case Op::kOr: return 4;
    case Op::kAnd: return 5;
    default: return 6;  // unary and atoms
  }
}

void print(std::ostream& os, Formula f, const Symbols& sym, int parent_prec) {
  const int prec = precedence(f.op());
  const bool need_parens = prec < parent_prec;
  if (need_parens) os << '(';
  switch (f.op()) {
    case Op::kTrue: os << sym.tru; break;
    case Op::kFalse: os << sym.fls; break;
    case Op::kAp: os << f.ap_name(); break;
    case Op::kNot: {
      os << sym.nt;
      Formula c = f.child(0);
      const bool bare = c.arity() == 0 || c.op() == Op::kNot ||
                        c.op() == Op::kNext || c.op() == Op::kEventually ||
                        c.op() == Op::kAlways;
      if (bare) {
        print(os, c, sym, 0);
      } else {
        os << '(';
        print(os, c, sym, 0);
        os << ')';
      }
      break;
    }
    case Op::kAnd:
    case Op::kOr: {
      const char* s = f.op() == Op::kAnd ? sym.an : sym.orr;
      for (std::size_t i = 0; i < f.arity(); ++i) {
        if (i > 0) os << ' ' << s << ' ';
        print(os, f.child(i), sym, prec + 1);
      }
      break;
    }
    case Op::kImplies:
    case Op::kIff: {
      const char* s = f.op() == Op::kImplies ? sym.imp : sym.iff;
      print(os, f.child(0), sym, prec + 1);
      os << ' ' << s << ' ';
      print(os, f.child(1), sym, prec);  // right associative
      break;
    }
    case Op::kUntil:
    case Op::kWeakUntil:
    case Op::kRelease: {
      const char* s = f.op() == Op::kUntil     ? sym.until
                      : f.op() == Op::kWeakUntil ? sym.wuntil
                                                 : sym.release;
      print(os, f.child(0), sym, prec + 1);
      os << ' ' << s << ' ';
      print(os, f.child(1), sym, prec + 1);
      break;
    }
    case Op::kNext:
    case Op::kEventually:
    case Op::kAlways: {
      const char* s = f.op() == Op::kNext        ? sym.nxt
                      : f.op() == Op::kEventually ? sym.ev
                                                  : sym.alw;
      os << s << ' ';
      // Unary temporal operators parenthesize everything except atoms and
      // chained unary operators: "G (a -> b)", "X X c", "F !p".
      Formula c = f.child(0);
      const bool bare = c.arity() == 0 || c.op() == Op::kNot ||
                        c.op() == Op::kNext || c.op() == Op::kEventually ||
                        c.op() == Op::kAlways;
      if (bare) {
        print(os, c, sym, 0);
      } else {
        os << '(';
        print(os, c, sym, 0);
        os << ')';
      }
      break;
    }
  }
  if (need_parens) os << ')';
}

}  // namespace

std::string to_string(Formula f, Style style) {
  speccc_check(!f.is_null(), "cannot print a null formula");
  std::ostringstream os;
  print(os, f, style == Style::kAscii ? kAsciiSyms : kPaperSyms, 0);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, Formula f) {
  return os << to_string(f);
}

}  // namespace speccc::ltl
