// Parser for the ASCII LTL syntax produced by to_string(..., Style::kAscii).
//
//   phi ::= phi '<->' phi          (lowest precedence, right assoc)
//         | phi '->' phi           (right assoc)
//         | phi ('U'|'W'|'R') phi  (right assoc)
//         | phi '||' phi
//         | phi '&&' phi
//         | '!' phi | 'X' phi | 'F' phi | 'G' phi
//         | 'true' | 'false' | identifier | '(' phi ')'
//
// Throws util::ParseError with position information on malformed input.
#pragma once

#include <string_view>

#include "ltl/formula.hpp"

namespace speccc::ltl {

[[nodiscard]] Formula parse(std::string_view text);

}  // namespace speccc::ltl
