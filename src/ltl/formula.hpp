// Linear temporal logic formulas (paper Section IV-A).
//
// Formulas are immutable, hash-consed DAG nodes: building the same formula
// twice yields the same node, so equality is a pointer comparison and
// structural sharing is automatic. Construction goes through the free
// factory functions (ap, lnot, land, always, ...) which perform only
// *neutral* normalizations (flattening of nested conjunctions/disjunctions,
// constant folding) so that the printed form of a translated requirement
// matches the paper's appendix.
//
// The grammar follows the paper:
//   phi ::= p | !phi | phi || phi | X phi | F phi | G phi | phi U phi
// extended with the derived operators &&, ->, <->, W (weak until) and R
// (release) that the translator and the synthesis engines use directly.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "util/digest.hpp"

namespace speccc::ltl {

enum class Op : std::uint8_t {
  kTrue,
  kFalse,
  kAp,        // atomic proposition
  kNot,
  kAnd,       // n-ary, order-preserving
  kOr,        // n-ary, order-preserving
  kImplies,   // binary
  kIff,       // binary
  kNext,      // X
  kEventually,  // F / "eventually"
  kAlways,      // G / "always"
  kUntil,       // U (strong)
  kWeakUntil,   // W
  kRelease,     // R
};

[[nodiscard]] const char* op_name(Op op);
[[nodiscard]] bool is_temporal(Op op);

class Formula;

namespace detail {
struct Node {
  Op op;
  std::string ap_name;          // only for kAp
  std::vector<Formula> children;
  std::uint64_t id = 0;         // stable creation index (total order)
  std::size_t hash = 0;
  std::size_t length = 1;       // node count of the DAG unfolded as a tree
};
}  // namespace detail

/// Lightweight immutable handle to a hash-consed formula node.
///
/// A default-constructed Formula is a null handle; all factory functions
/// return non-null handles. Nodes live for the duration of the process
/// (interned in a global arena), so handles are trivially copyable.
class Formula {
 public:
  Formula() = default;

  [[nodiscard]] bool is_null() const { return node_ == nullptr; }
  [[nodiscard]] Op op() const;
  [[nodiscard]] const std::string& ap_name() const;
  [[nodiscard]] const std::vector<Formula>& children() const;
  [[nodiscard]] Formula child(std::size_t i) const;
  [[nodiscard]] std::size_t arity() const;
  /// Number of operators/propositions when the DAG is unfolded as a tree.
  /// This is the "length of a formula" that Section VI reports G4LTL to be
  /// sensitive to.
  [[nodiscard]] std::size_t length() const;
  /// Stable total order (creation index); used for deterministic containers.
  [[nodiscard]] std::uint64_t id() const;

  friend bool operator==(Formula a, Formula b) { return a.node_ == b.node_; }
  friend bool operator!=(Formula a, Formula b) { return a.node_ != b.node_; }
  friend bool operator<(Formula a, Formula b) { return a.id() < b.id(); }

  [[nodiscard]] std::size_t hash() const;

  /// All atomic proposition names in the formula, sorted.
  [[nodiscard]] std::set<std::string> atoms() const;

  /// True if the formula contains no temporal operator.
  [[nodiscard]] bool is_propositional() const;

 private:
  friend class Arena;
  explicit Formula(const detail::Node* node) : node_(node) {}
  const detail::Node* node_ = nullptr;
};

// ---- Factory functions (the only way to build formulas) --------------------

[[nodiscard]] Formula tru();
[[nodiscard]] Formula fls();
[[nodiscard]] Formula ap(const std::string& name);
[[nodiscard]] Formula lnot(Formula f);
[[nodiscard]] Formula land(std::vector<Formula> fs);
[[nodiscard]] Formula land(Formula a, Formula b);
[[nodiscard]] Formula lor(std::vector<Formula> fs);
[[nodiscard]] Formula lor(Formula a, Formula b);
[[nodiscard]] Formula implies(Formula a, Formula b);
[[nodiscard]] Formula iff(Formula a, Formula b);
[[nodiscard]] Formula next(Formula f);
/// X^n f : n nested Next operators (paper Section IV-E time encoding).
[[nodiscard]] Formula next_n(Formula f, std::size_t n);
[[nodiscard]] Formula eventually(Formula f);
[[nodiscard]] Formula always(Formula f);
[[nodiscard]] Formula until(Formula a, Formula b);
[[nodiscard]] Formula weak_until(Formula a, Formula b);
[[nodiscard]] Formula release(Formula a, Formula b);

// ---- Canonical digest -------------------------------------------------------

/// Stable 128-bit structural digest of a formula: a pure function of the
/// operator tree (ops, proposition names, child order), independent of the
/// intern arena's creation order, the process, and the platform — unlike
/// id() (a creation index) and hash() (std::hash-seeded). Structurally
/// equal formulas always collide; structurally different formulas collide
/// with probability ~2^-128. This is the level-2 cache key of
/// cache/store.hpp: any artifact derived from a formula alone (tableau
/// satisfiability, an NBW, a synthesis verdict given a signature) may be
/// memoized under it.
[[nodiscard]] util::Digest canonical_digest(Formula f);

// ---- Printing ---------------------------------------------------------------

/// Printing style. kAscii is the canonical machine-readable form accepted by
/// parse(); kPaper mimics the appendix of the paper (□, ♦, ¬, →).
enum class Style { kAscii, kPaper };

[[nodiscard]] std::string to_string(Formula f, Style style = Style::kAscii);
std::ostream& operator<<(std::ostream& os, Formula f);

}  // namespace speccc::ltl

template <>
struct std::hash<speccc::ltl::Formula> {
  std::size_t operator()(speccc::ltl::Formula f) const noexcept {
    return f.is_null() ? 0 : f.hash();
  }
};
