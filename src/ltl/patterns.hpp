// Property-pattern templates (Dwyer et al. [6], Salamah et al. [19]).
//
// The paper's translator instantiates the Universality and Existence
// patterns plus the implication/response shapes that the structured-English
// subordinators induce. These templates are also what the symbolic synthesis
// engine recognizes when compiling a specification into deterministic
// monitors, so they are shared here.
#pragma once

#include <cstddef>
#include <optional>

#include "ltl/formula.hpp"

namespace speccc::ltl {

// ---- Template constructors (used by the translator) ------------------------

/// Universality, global scope: G p.
[[nodiscard]] Formula universality(Formula p);

/// Existence, global scope: F p.
[[nodiscard]] Formula existence(Formula p);

/// Immediate implication: G (trigger -> response).
[[nodiscard]] Formula implication(Formula trigger, Formula response);

/// Delayed implication: G (trigger -> X^n response); Section IV-E's timed
/// requirements produce this shape.
[[nodiscard]] Formula delayed_implication(Formula trigger, Formula response,
                                          std::size_t delay);

/// Response: G (trigger -> F response).
[[nodiscard]] Formula response(Formula trigger, Formula response);

/// The paper's "until" template (Req-49): once `cond` holds, if `release`
/// has not happened yet then `hold` persists weakly until `release`:
/// G (cond -> (!release -> (hold W release))).
[[nodiscard]] Formula until_template(Formula cond, Formula hold,
                                     Formula release);

// ---- Pattern recognition (used by the symbolic engine) ---------------------

enum class PatternKind {
  kInvariant,        // G p                      (safety)
  kImplication,      // G (g -> X^n c)           (safety; n >= 0)
  kGuardDelayed,     // G (X^n g -> c)           (safety; n >= 1)
  kResponse,         // G (g -> F c)             (liveness)
  kWeakUntil,        // G (g -> (p W q))         (safety)
  kStrongUntil,      // G (g -> (p U q))         (safety + liveness)
  kExistence,        // F p                      (liveness)
};

/// A recognized pattern instance. guard/left/right are propositional.
struct PatternInstance {
  PatternKind kind;
  Formula guard;       // kInvariant/kExistence: the body; otherwise the trigger
  Formula consequent;  // kImplication: c; kResponse: c; kUntil: the hold part p
  Formula release;     // kUntil kinds only: q
  std::size_t delay = 0;  // kImplication only: n
};

/// Try to recognize `f` as one of the monitorable patterns. Nested
/// implications in the consequent are normalized into the guard
/// (g1 -> (g2 -> c) becomes (g1 && g2) -> c). Returns std::nullopt when the
/// formula falls outside the fragment; callers then fall back to the
/// general bounded-synthesis engine.
[[nodiscard]] std::optional<PatternInstance> recognize_pattern(Formula f);

}  // namespace speccc::ltl
