// LTL semantics over ultimately periodic words (lassos).
//
// A lasso w = u . v^omega is given by a finite sequence of valuations and a
// loop start index: positions [0, loop_start) form the prefix u, positions
// [loop_start, size) form the loop v which repeats forever. Every
// omega-regular counterexample and every run of a finite-state controller is
// of this shape, so lassos suffice for the property tests that cross-check
// the tableau construction and both synthesis engines against the textbook
// semantics of Section IV-A.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "ltl/formula.hpp"

namespace speccc::ltl {

/// One time step: the set of atomic propositions that hold.
using Valuation = std::set<std::string>;

class Lasso {
 public:
  /// steps must be non-empty; loop_start must be < steps.size().
  Lasso(std::vector<Valuation> steps, std::size_t loop_start);

  [[nodiscard]] std::size_t size() const { return steps_.size(); }
  [[nodiscard]] std::size_t loop_start() const { return loop_start_; }
  [[nodiscard]] const Valuation& at(std::size_t pos) const;

  /// Successor position: pos+1, wrapping from the last position back to
  /// loop_start.
  [[nodiscard]] std::size_t successor(std::size_t pos) const;

  /// Does proposition `name` hold at position pos?
  [[nodiscard]] bool holds(const std::string& name, std::size_t pos) const;

 private:
  std::vector<Valuation> steps_;
  std::size_t loop_start_;
};

/// Does the lasso satisfy f at position pos (default: at the start)?
///
/// Computed bottom-up over subformulas with fixpoint iteration on the lasso
/// graph: least fixpoints for U and F, greatest fixpoints for R, W and G.
[[nodiscard]] bool evaluate(Formula f, const Lasso& lasso, std::size_t pos = 0);

}  // namespace speccc::ltl
