// Parallel batch checking: many specifications through the Fig. 1 pipeline
// concurrently (cf. Vuotto 2018 on continuously checked requirement sets).
//
// Threading rule: everything mutable is per worker. Each worker owns its
// own core::Pipeline (hence its own lexicon/dictionary copies and, inside
// every synthesis call, its own bdd::Manager -- the manager is
// single-threaded by design) and its own diagnostics sink (failures are
// captured into the task's result, never a shared stream). The only shared
// mutable state the workers touch is the formula intern arena, which is
// mutex-protected, and the scheduler's own deques.
//
// Scheduling is work-stealing: tasks are dealt round-robin across
// per-worker deques; a worker pops its own deque in input order and, when
// empty, steals from the back of a victim's deque, so long specifications
// (e.g. Table I's rows 2.2.2 / 3.2) do not serialize the tail of a batch
// and a one-worker batch degenerates to exactly the sequential loop.
//
// Determinism contract: the report lists results in input order, and every
// non-timing field of every result is a pure function of the task -- the
// same batch yields byte-identical canonical() output for any worker
// count. Timings, worker ids, and steal counts are diagnostics and are
// excluded from the canonical form.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bdd/bdd.hpp"
#include "cache/store.hpp"
#include "core/pipeline.hpp"
#include "core/substrate.hpp"
#include "synth/bounded.hpp"
#include "translate/translator.hpp"

namespace speccc::batch {

/// One unit of work: a named specification, checked by a whole-spec
/// pipeline run.
struct SpecTask {
  std::string name;
  std::vector<translate::RequirementText> requirements;
};

enum class TaskStatus {
  kConsistent,        // realizable (possibly after refinement)
  kInconsistent,      // definitively unrealizable
  kError,             // the pipeline threw (parse error, internal error, ...)
  kBudgetExhausted,   // the per-task time budget ran out at a stage boundary
  kCancelled,         // the batch-wide cancel flag was raised
};

[[nodiscard]] const char* status_name(TaskStatus status);

/// Substrate cross-check (optional): the same spec re-decided by every
/// registered substrate separately. Mirrors the difftest oracle's
/// agreement property: opposite *definite* verdicts are a disagreement,
/// kUnknown never is.
struct AgreementStats {
  bool checked = false;
  /// (substrate name, verdict) in registry order (tableau, bounded,
  /// symbolic for the builtins). Inapplicable substrates abstain with
  /// kUnknown. Input-pure, so part of canonical().
  std::vector<std::pair<std::string, synth::Realizability>> verdicts;

  /// The verdict of one substrate; kUnknown when absent.
  [[nodiscard]] synth::Realizability verdict_of(std::string_view name) const {
    for (const auto& entry : verdicts) {
      if (entry.first == name) return entry.second;
    }
    return synth::Realizability::kUnknown;
  }

  [[nodiscard]] bool agree() const {
    using R = synth::Realizability;
    bool realizable = false;
    bool unrealizable = false;
    for (const auto& entry : verdicts) {
      realizable |= entry.second == R::kRealizable;
      unrealizable |= entry.second == R::kUnrealizable;
    }
    return !checked || !(realizable && unrealizable);
  }
};

struct TaskResult {
  std::string name;
  TaskStatus status = TaskStatus::kError;
  std::string detail;  // error message / cancellation reason
  std::size_t formulas = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  bool refined = false;  // consistency restored by partition adjustment
  std::vector<std::string> unsatisfiable_requirements;
  /// Requirement ids of the stage-3 minimal inconsistent subset (MUS),
  /// present whenever refinement ran (even when an adjustment then
  /// restored consistency -- the MUS names the sentences that clashed
  /// under the original partition). Input-pure, so part of canonical().
  std::vector<std::string> mus;
  /// Requirement ids of each minimal correction set, smallest first;
  /// filled for genuinely inconsistent specs when the pipeline's
  /// LocalizeOptions asked for them (speccc_batch --diagnose). Input-pure,
  /// part of canonical().
  std::vector<std::vector<std::string>> correction_sets;
  AgreementStats agreement;
  // Diagnostics (excluded from the canonical form):
  /// Which substrate produced the stage-2 verdict ("tableau", "bounded",
  /// "symbolic"; empty for errored/cancelled tasks and pre-substrate cache
  /// hits). Under a race spec this is the winner -- timing-dependent, so a
  /// diagnostic like the timings.
  std::string substrate;
  /// Per-racer wall/verdict stats when stage 2 actually raced (kRace spec,
  /// cache miss); see core/portfolio.hpp.
  std::optional<core::PortfolioStats> portfolio;
  /// Per-task cache accounting (thread-local deltas, see
  /// cache::Store::thread_stats()): exact hits/misses/evictions this task
  /// caused, meaningful only when the pipeline ran with a store attached.
  /// Diagnostics like the timings -- two workers racing on a miss make
  /// these input-impure.
  cache::StatsSnapshot cache;
  double seconds = 0.0;  // whole-task wall clock on its worker
  double translation_seconds = 0.0;
  double synthesis_seconds = 0.0;
  double refinement_seconds = 0.0;
  int worker = -1;  // which worker ran it
  /// BDD-manager counters of the task's initial synthesis (zero when the
  /// bounded engine decided it). Every worker owns its managers, so these
  /// are per-task-deterministic, but they are engine diagnostics like the
  /// timings and stay out of canonical().
  bdd::Stats bdd;
};

/// Batch-wide BDD engine aggregate: counters summed over every task that
/// ran the symbolic engine, peak nodes as the max over tasks (managers are
/// per-call, so sums of peaks would be meaningless).
struct BddAggregate {
  std::size_t tasks = 0;  ///< tasks decided by the symbolic engine
  std::size_t peak_nodes_max = 0;
  std::size_t unique_hits = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_evictions = 0;
};

/// Configuration of one warm task-execution engine (TaskRunner below):
/// the per-worker slice of BatchOptions, reused by the serve worker pool.
struct RunnerOptions {
  /// Pipeline configuration. PipelineOptions::cancelled is overwritten by
  /// the runner (it carries the budget/cancel polling); cache, when set,
  /// may be shared across runners (the store is thread-safe).
  core::PipelineOptions pipeline;
  /// Re-decide every spec with both synthesis engines and record
  /// agreement (see BatchOptions::check_agreement).
  bool check_agreement = false;
  /// Caps for the agreement pass's bounded run.
  synth::BoundedOptions agreement_bounded = {.max_k = 4,
                                             .extract = false,
                                             .max_game_positions = 20'000,
                                             .max_ucw_states = 150,
                                             .cancelled = {}};
};

/// Per-run limits, polled cooperatively at pipeline stage boundaries.
/// Now defined next to the substrate layer it carries the per-request
/// override for (budget_seconds, cancel, substrate).
using RunLimits = core::RunLimits;

/// A warm per-worker execution engine: one core::Pipeline built once
/// (lexicon/dictionary/translator construction is the expensive part),
/// then reused across tasks with per-run budget/cancel wiring. This is
/// the unit both batch::check workers and serve::Service workers are made
/// of. Not thread-safe: one runner belongs to one thread.
class TaskRunner {
 public:
  TaskRunner(int worker_id, const RunnerOptions& options);
  ~TaskRunner();
  TaskRunner(const TaskRunner&) = delete;
  TaskRunner& operator=(const TaskRunner&) = delete;

  /// Run one task under the given limits. Never throws for per-task
  /// failures (they become kError/kBudgetExhausted/kCancelled results).
  [[nodiscard]] TaskResult run(const SpecTask& task,
                               const RunLimits& limits = {});

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct BatchOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  int jobs = 0;
  /// Per-worker pipeline configuration. PipelineOptions::cancelled is
  /// overwritten by the scheduler (it carries the budget/cancel polling).
  /// PipelineOptions::cache, when set, is shared by every worker (the
  /// store is sharded and thread-safe -- the sanctioned exception to the
  /// per-worker-isolation rule); persist one store across batches for
  /// cross-batch reuse. Repeated and revised specifications then skip
  /// re-parsing unchanged sentences and re-deciding unchanged formulas.
  core::PipelineOptions pipeline;
  /// Per-task wall-clock budget in seconds; 0 means unlimited. Polled at
  /// pipeline stage boundaries (cooperative -- a stage in flight finishes).
  /// Bound the stages themselves with pipeline.synthesis.bounded caps.
  double task_time_budget_seconds = 0.0;
  /// Batch-wide cancellation: raise to drain the queue. Running tasks stop
  /// at their next stage boundary; queued tasks are marked kCancelled
  /// without running.
  const std::atomic<bool>* cancel = nullptr;
  /// Re-decide every spec with both synthesis engines and record
  /// agreement (roughly doubles the cost; the bounded engine gives up as
  /// kUnknown beyond its caps, which never counts as disagreement). The
  /// agreement pass always runs the engines directly -- it is never
  /// answered from pipeline.cache, so a cached batch still cross-checks
  /// for real.
  bool check_agreement = false;
  /// Caps for the agreement pass's bounded run. Defaults mirror the
  /// difftest oracle's give-up caps -- the pipeline's own unbounded
  /// defaults would let one adversarial spec stall the whole batch.
  synth::BoundedOptions agreement_bounded = {.max_k = 4,
                                             .extract = false,
                                             .max_game_positions = 20'000,
                                             .max_ucw_states = 150,
                                             .cancelled = {}};
  /// Completion callback, invoked under the scheduler lock in completion
  /// order (not input order). Keep it cheap; it may run on any worker.
  std::function<void(const TaskResult&)> on_result;
};

struct BatchReport {
  std::vector<TaskResult> results;  // input order, always same size as tasks
  int jobs = 1;
  double wall_seconds = 0.0;  // whole-batch wall clock
  std::size_t steals = 0;     // scheduler diagnostics
  std::size_t consistent = 0;
  std::size_t inconsistent = 0;
  std::size_t errors = 0;
  std::size_t budget_exhausted = 0;
  std::size_t cancelled = 0;
  std::size_t disagreements = 0;  // only when check_agreement
  /// Cache statistics scoped to this batch (stats delta over the run);
  /// meaningful only when cache_enabled. Diagnostics, like timings and
  /// steal counts: concurrent workers race on misses (two workers can
  /// both miss the same key and both compute it), so the counters are not
  /// a pure function of the inputs and are excluded from canonical().
  bool cache_enabled = false;
  cache::StatsSnapshot cache_stats;
  /// Per-worker bdd::Manager counters aggregated over the batch (see
  /// BddAggregate). Diagnostics; excluded from canonical().
  BddAggregate bdd;

  [[nodiscard]] bool all_consistent() const {
    return consistent == results.size();
  }
  /// Aggregate CPU seconds across tasks (compare against wall_seconds for
  /// the effective speedup).
  [[nodiscard]] double cpu_seconds() const;
};

/// Check every task. Deterministic in everything but timings/worker ids;
/// never throws for per-task failures (they become kError results).
[[nodiscard]] BatchReport check(const std::vector<SpecTask>& tasks,
                                const BatchOptions& options = {});

/// The determinism contract in printable form: name, status, scale,
/// refinement, unsatisfiable requirements, and agreement verdicts of every
/// result in input order -- no timings, worker ids, or steal counts. Equal
/// strings for any jobs count, including jobs=1.
[[nodiscard]] std::string canonical(const BatchReport& report);

/// One result's canonical rendering (a single newline-terminated line),
/// exactly the line canonical() emits for it. The serve protocol embeds
/// this so daemon verdicts are byte-comparable with speccc_batch output.
[[nodiscard]] std::string canonical_line(const TaskResult& result);

/// Machine-readable report (timings included) for CI artifacts.
[[nodiscard]] std::string to_json(const BatchReport& report);

/// Human-readable per-spec table plus totals.
void print_summary(std::ostream& os, const BatchReport& report);

}  // namespace speccc::batch
