#include "batch/corpus_tasks.hpp"

#include "corpus/cara.hpp"
#include "corpus/robot.hpp"
#include "corpus/telepromise.hpp"

namespace speccc::batch {

std::vector<SpecTask> cara_tasks() {
  std::vector<SpecTask> tasks;
  tasks.push_back({"CARA/0 Working mode and switching",
                   corpus::cara_working_mode_texts()});
  for (const corpus::ComponentSpec& component :
       corpus::cara_component_specs()) {
    tasks.push_back(
        {"CARA/" + component.number + " " + component.name,
         component.requirements});
  }
  return tasks;
}

std::vector<SpecTask> telepromise_tasks() {
  std::vector<SpecTask> tasks;
  for (const corpus::TeleSpec& spec : corpus::telepromise_specs()) {
    tasks.push_back({"TELE " + spec.name, spec.requirements});
  }
  return tasks;
}

std::vector<SpecTask> robot_tasks() {
  std::vector<SpecTask> tasks;
  for (const corpus::RobotSpec& spec : corpus::robot_specs()) {
    tasks.push_back({"Robot " + spec.name, spec.requirements});
  }
  return tasks;
}

std::vector<SpecTask> table1_tasks() {
  std::vector<SpecTask> tasks = cara_tasks();
  for (SpecTask& t : telepromise_tasks()) tasks.push_back(std::move(t));
  for (SpecTask& t : robot_tasks()) tasks.push_back(std::move(t));
  return tasks;
}

}  // namespace speccc::batch
